package graphflow

import (
	"strings"
	"testing"
)

// tinyDB builds a 5-vertex graph with one triangle and a tail.
func tinyDB(t *testing.T) *DB {
	t.Helper()
	b := NewBuilder(5)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(0, 2, 0)
	b.AddEdge(2, 3, 0)
	b.AddEdge(3, 4, 0)
	db, err := b.Open(&Options{CatalogueZ: 50})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCountTriangle(t *testing.T) {
	db := tinyDB(t)
	n, err := db.Count("a->b, b->c, a->c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("triangles = %d, want 1", n)
	}
}

func TestCountStats(t *testing.T) {
	db := tinyDB(t)
	n, st, err := db.CountStats("a->b, b->c, a->c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || st.Matches != 1 {
		t.Errorf("matches = %d/%d", n, st.Matches)
	}
	if st.PlanKind != "wco" {
		t.Errorf("triangle plan kind = %q", st.PlanKind)
	}
	if !strings.Contains(st.Plan, "SCAN") {
		t.Errorf("plan description missing SCAN:\n%s", st.Plan)
	}
}

func TestMatchNames(t *testing.T) {
	db := tinyDB(t)
	var got []map[string]uint32
	err := db.Match("x->y, y->z, x->z", func(m map[string]uint32) bool {
		cp := map[string]uint32{}
		for k, v := range m {
			cp[k] = v
		}
		got = append(got, cp)
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	m := got[0]
	if m["x"] != 0 || m["y"] != 1 || m["z"] != 2 {
		t.Errorf("assignment = %v", m)
	}
}

func TestMatchEarlyStop(t *testing.T) {
	db := tinyDB(t)
	calls := 0
	err := db.Match("a->b", func(map[string]uint32) bool {
		calls++
		return false
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("early stop made %d calls", calls)
	}
}

func TestExplain(t *testing.T) {
	db := tinyDB(t)
	st, err := db.Explain("a->b, b->c, c->d")
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan == "" || st.PlanKind == "" {
		t.Errorf("explain = %+v", st)
	}
}

func TestEstimateCardinality(t *testing.T) {
	db := tinyDB(t)
	est, err := db.EstimateCardinality("a->b")
	if err != nil {
		t.Fatal(err)
	}
	if est != 5 {
		t.Errorf("edge estimate = %v, want 5", est)
	}
}

func TestQueryOptionVariants(t *testing.T) {
	db, err := NewFromDataset("Epinions", 1, &Options{CatalogueZ: 200})
	if err != nil {
		t.Fatal(err)
	}
	pattern := "a->b, b->c, a->c, b->d, c->d" // diamond-X
	base, err := db.Count(pattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	variants := []*QueryOptions{
		{Workers: 4},
		{Adaptive: true},
		{WCOOnly: true},
		{DisableCache: true},
	}
	for i, qo := range variants {
		n, err := db.Count(pattern, qo)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if n != base {
			t.Errorf("variant %d: count = %d, want %d", i, n, base)
		}
	}
	capped, err := db.Count(pattern, &QueryOptions{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if capped != 3 {
		t.Errorf("limit count = %d, want 3", capped)
	}
}

func TestNewFromEdgeList(t *testing.T) {
	in := strings.NewReader("0 1\n1 2\n0 2\n")
	db, err := NewFromEdgeList(in, &Options{CatalogueZ: 10})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumVertices() != 3 || db.NumEdges() != 3 {
		t.Errorf("loaded %d/%d", db.NumVertices(), db.NumEdges())
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := NewFromDataset("nope", 1, nil); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestGraphStats(t *testing.T) {
	db := tinyDB(t)
	st := db.GraphStats()
	if st.Vertices != 5 || st.Edges != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAnalyze(t *testing.T) {
	db := tinyDB(t)
	st, err := db.Analyze("a->b, b->c, a->c")
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != 1 {
		t.Errorf("analyze matches = %d, want 1", st.Matches)
	}
	if !strings.Contains(st.Plan, "out=") || !strings.Contains(st.Plan, "SCAN") {
		t.Errorf("analyze plan missing counters:\n%s", st.Plan)
	}
}

func TestDistinctSemantics(t *testing.T) {
	// A 2-cycle graph: the 4-cycle query has 2 homomorphisms that fold onto
	// the two vertices, but no injective (isomorphism) matches.
	b := NewBuilder(2)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 0, 0)
	db, err := b.Open(&Options{CatalogueZ: 10})
	if err != nil {
		t.Fatal(err)
	}
	pattern := "a->b, b->c, c->d, d->a"
	hom, err := db.Count(pattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hom != 2 {
		t.Errorf("homomorphism count = %d, want 2", hom)
	}
	iso, err := db.Count(pattern, &QueryOptions{Distinct: true})
	if err != nil {
		t.Fatal(err)
	}
	if iso != 0 {
		t.Errorf("distinct count = %d, want 0", iso)
	}
}

func TestCypherQuery(t *testing.T) {
	db := tinyDB(t)
	n, err := db.Count("MATCH (a)-->(b), (b)-->(c), (a)-->(c) RETURN count(*)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("cypher triangle count = %d, want 1", n)
	}
}

func TestBadPattern(t *testing.T) {
	db := tinyDB(t)
	if _, err := db.Count("a->a", nil); err == nil {
		t.Error("self loop should error")
	}
	if _, err := db.Count("", nil); err == nil {
		t.Error("empty pattern should error")
	}
}
