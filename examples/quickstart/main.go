// Quickstart: build a small graph by hand, ask the optimizer for a plan,
// and count and enumerate triangle matches.
package main

import (
	"fmt"
	"graphflow/internal/logx"

	"graphflow"
)

func main() {
	// A 6-vertex graph: a triangle (0,1,2), a diamond over (1,2,3,4), and
	// a pendant vertex 5.
	b := graphflow.NewBuilder(6)
	edges := [][2]uint32{
		{0, 1}, {1, 2}, {0, 2}, // triangle
		{1, 3}, {2, 3}, {1, 4}, {3, 4}, // diamond-ish
		{4, 5},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1], 0)
	}
	db, err := b.Open(&graphflow.Options{CatalogueZ: 100})
	if err != nil {
		logx.Fatal(err.Error())
	}

	// Count asymmetric triangles.
	n, stats, err := db.CountStats("a->b, b->c, a->c", nil)
	if err != nil {
		logx.Fatal(err.Error())
	}
	fmt.Printf("triangles: %d (plan kind %s, i-cost %d)\n", n, stats.PlanKind, stats.ICost)
	fmt.Println(stats.Plan)

	// Enumerate them with vertex bindings.
	err = db.Match("a->b, b->c, a->c", func(m map[string]uint32) bool {
		fmt.Printf("  match: a=%d b=%d c=%d\n", m["a"], m["b"], m["c"])
		return true
	}, nil)
	if err != nil {
		logx.Fatal(err.Error())
	}

	// EXPLAIN a larger pattern without running it.
	st, err := db.Explain("a->b, b->c, c->d, a->d")
	if err != nil {
		logx.Fatal(err.Error())
	}
	fmt.Printf("4-cycle plan (%s):\n%s", st.PlanKind, st.Plan)
}
