// Fraud detection: cyclic patterns in a transaction network indicate
// money cycling through accounts and back (the paper's fraud-detection
// motivation). This example synthesises a payment graph with a few
// planted rings, then hunts directed 4-cycles and reports the accounts
// involved.
package main

import (
	"fmt"
	"graphflow/internal/logx"
	"math/rand"

	"graphflow"
)

func main() {
	const accounts = 3000
	rng := rand.New(rand.NewSource(99))
	b := graphflow.NewBuilder(accounts)

	// Background traffic: random payments, mostly acyclic (higher to lower
	// IDs pay forward).
	for i := 0; i < accounts*6; i++ {
		src := uint32(rng.Intn(accounts))
		dst := uint32(rng.Intn(accounts))
		if src != dst {
			b.AddEdge(src, dst, 0)
		}
	}
	// Planted fraud rings: money hops around 4 accounts and returns.
	rings := [][]uint32{
		{11, 57, 301, 78},
		{1200, 1201, 1340, 1288},
		{2000, 2750, 2222, 2100},
	}
	for _, ring := range rings {
		for i := range ring {
			b.AddEdge(ring[i], ring[(i+1)%len(ring)], 0)
		}
	}

	db, err := b.Open(&graphflow.Options{CatalogueZ: 500})
	if err != nil {
		logx.Fatal(err.Error())
	}
	fmt.Printf("transaction graph: %d accounts, %d payments\n", db.NumVertices(), db.NumEdges())

	// Directed 4-cycle: a pays b pays c pays d pays a.
	pattern := "a->b, b->c, c->d, d->a"
	n, stats, err := db.CountStats(pattern, &graphflow.QueryOptions{Workers: 4})
	if err != nil {
		logx.Fatal(err.Error())
	}
	// Each 4-cycle is found once per rotation; 4 rotations per ring.
	fmt.Printf("4-cycle matches: %d (plan kind %s)\n", n, stats.PlanKind)

	// Show a handful of distinct rings.
	seen := map[[4]uint32]bool{}
	err = db.Match(pattern, func(m map[string]uint32) bool {
		ring := [4]uint32{m["a"], m["b"], m["c"], m["d"]}
		// Canonical rotation so each ring prints once.
		min := 0
		for i := 1; i < 4; i++ {
			if ring[i] < ring[min] {
				min = i
			}
		}
		var canon [4]uint32
		for i := 0; i < 4; i++ {
			canon[i] = ring[(min+i)%4]
		}
		if !seen[canon] {
			seen[canon] = true
			fmt.Printf("  suspicious ring: %v\n", canon)
		}
		return len(seen) < 10
	}, nil)
	if err != nil {
		logx.Fatal(err.Error())
	}
	fmt.Printf("distinct rings reported: %d (3 planted)\n", len(seen))
}
