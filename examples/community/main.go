// Community detection signal: clique-like structures in social networks
// indicate communities (the paper's community motivation). This example
// counts 4-cliques on a social graph with the optimizer's plan, compares
// WCO-only against the full plan space, and shows adaptive evaluation.
package main

import (
	"fmt"
	"graphflow/internal/logx"
	"time"

	"graphflow"
)

func main() {
	db, err := graphflow.NewFromDataset("LiveJournal", 1, &graphflow.Options{CatalogueZ: 800})
	if err != nil {
		logx.Fatal(err.Error())
	}
	fmt.Printf("social graph: %d users, %d edges\n", db.NumVertices(), db.NumEdges())

	// Acyclically-oriented 4-clique (Q6 of the paper).
	clique := "a1->a2, a1->a3, a1->a4, a2->a3, a2->a4, a3->a4"

	start := time.Now()
	n, stats, err := db.CountStats(clique, &graphflow.QueryOptions{Workers: 4})
	if err != nil {
		logx.Fatal(err.Error())
	}
	fmt.Printf("4-cliques: %d in %v (plan kind %s, i-cost %d, cache hits %d)\n",
		n, time.Since(start).Round(time.Millisecond), stats.PlanKind, stats.ICost, stats.CacheHits)

	// The same count with adaptive ordering selection.
	start = time.Now()
	n2, err := db.Count(clique, &graphflow.QueryOptions{Adaptive: true})
	if err != nil {
		logx.Fatal(err.Error())
	}
	fmt.Printf("adaptive evaluation: %d in %v\n", n2, time.Since(start).Round(time.Millisecond))
	if n != n2 {
		logx.Fatal("adaptive disagreed", "plan", n, "adaptive", n2)
	}

	// Community seeds: feedback triangles (directed 3-cycles), the tightest
	// reciprocal structure expressible without parallel edges.
	seeds := "a->b, b->c, c->a"
	ns, err := db.Count(seeds, nil)
	if err != nil {
		logx.Fatal(err.Error())
	}
	fmt.Printf("feedback triangles (community seeds): %d\n", ns)
}
