// Recommendations: diamonds in a follower network (the paper's Twitter
// motivation — "Twitter searches for diamonds in their follower network
// for recommendations"). A diamond a1->{a2,a3}->a4 means two accounts a1
// follows both lead to a4: a strong signal to recommend a4 to a1.
package main

import (
	"fmt"
	"graphflow/internal/logx"
	"sort"

	"graphflow"
)

func main() {
	// A follower network with hubs and communities.
	db, err := graphflow.NewFromDataset("Epinions", 1, &graphflow.Options{CatalogueZ: 500})
	if err != nil {
		logx.Fatal(err.Error())
	}
	fmt.Printf("follower graph: %d users, %d follows\n", db.NumVertices(), db.NumEdges())

	// Diamond: a1 follows a2 and a3, who both follow a4 (a4 != a1 not
	// enforced by join semantics; filter below).
	pattern := "a1->a2, a1->a3, a2->a4, a3->a4"
	st, err := db.Explain(pattern)
	if err != nil {
		logx.Fatal(err.Error())
	}
	fmt.Printf("diamond plan (%s):\n%s", st.PlanKind, st.Plan)

	// Tally recommendation strength: how many diamonds point user a1 at a4.
	type rec struct{ from, to uint32 }
	strength := map[rec]int{}
	err = db.Match(pattern, func(m map[string]uint32) bool {
		if m["a1"] == m["a4"] || m["a2"] == m["a3"] {
			return true // degenerate diamonds
		}
		strength[rec{m["a1"], m["a4"]}]++
		return true
	}, nil)
	if err != nil {
		logx.Fatal(err.Error())
	}

	type scored struct {
		r rec
		n int
	}
	var top []scored
	for r, n := range strength {
		top = append(top, scored{r, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	fmt.Printf("recommendation pairs: %d\n", len(top))
	for i := 0; i < len(top) && i < 5; i++ {
		fmt.Printf("  recommend user %d to user %d (%d independent paths)\n",
			top[i].r.to, top[i].r.from, top[i].n)
	}
}
