// Command gfserver serves subgraph queries over HTTP: load or generate a
// graph, build the catalogue once, then answer /query, /prepare,
// /execute/{name}, /explain, /ingest, /compact, /stats, /metrics and
// /healthz requests (see internal/server for the endpoint contracts).
// Every query runs under a per-request deadline through the ctx-aware
// execution core, admission is a bounded priority queue with
// per-tenant quotas (saturation sheds with Retry-After), per-query
// memory budgets abort runaway queries with 422, and SIGINT/SIGTERM
// trigger a graceful drain that refuses late work before the store
// closes.
//
// The graph is live: /ingest applies mutation batches (each one becomes
// a new epoch with snapshot isolation for queries already running) and a
// background compactor folds the delta overlay into a fresh CSR base
// once it outgrows -compact-threshold. Edge-list files may be
// gzip-compressed (detected by magic bytes).
//
// Observability: GET /metrics serves Prometheus text covering request
// latency histograms, plan-cache hit counters, live-store/WAL gauges
// and per-stage executor timings; -slow-query-ms logs queries over the
// threshold with their plan digest and stage breakdown; -log-format
// selects human-readable text or JSON structured logs.
//
// Usage:
//
//	gfserver -dataset Epinions -addr :8090
//	gfserver -data graph.txt.gz -timeout 10s -max-concurrent 32
//
//	curl -s localhost:8090/query -d '{"pattern":"a->b, b->c, a->c"}'
//	curl -s localhost:8090/prepare -d '{"name":"tri","pattern":"a->b, b->c, a->c"}'
//	curl -s localhost:8090/execute/tri -d '{"workers":4}'
//	curl -s localhost:8090/ingest -d '{"add_edges":[{"src":1,"dst":2,"label":0}]}'
//	curl -s 'localhost:8090/explain?pattern=a->b,b->c,a->c&analyze=true'
//	curl -s localhost:8090/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only by -debug-addr
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"graphflow"
	"graphflow/internal/logx"
	"graphflow/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		dataFile  = flag.String("data", "", "edge-list file to load, optionally gzip-compressed (see internal/graph format)")
		dsName    = flag.String("dataset", "", "built-in dataset name (Amazon, Epinions, LiveJournal, Twitter, BerkStan, Google, Human)")
		scale     = flag.Int("scale", 1, "dataset scale factor")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-query execution deadline")
		maxTime   = flag.Duration("max-timeout", 5*time.Minute, "ceiling on request-supplied timeouts")
		maxConc   = flag.Int("max-concurrent", 64, "admission limit on concurrently executing queries")
		maxRows   = flag.Int("max-rows", 10000, "ceiling on rows returned by one match request")
		maxWork   = flag.Int("max-workers", 16, "ceiling on request-supplied worker counts")
		catZ      = flag.Int("catz", 1000, "catalogue sample size z")
		catH      = flag.Int("cath", 3, "catalogue max subquery size h")
		drain     = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
		compact   = flag.Int("compact-threshold", 0, "delta-overlay mutations before background compaction (0 = default 16384, negative disables)")
		hubTh     = flag.Int("hub-threshold", 0, "adjacency-partition size that gets a bitset hub index for degree-adaptive intersections (0 = default 256, negative disables)")
		batchSz   = flag.Int("batch-size", 0, "vectorized executor batch rows (0 = plan-adaptive, negative = tuple-at-a-time oracle engine)")
		noFact    = flag.Bool("no-factorize", false, "disable factorized execution of star-shaped query suffixes")
		debug     = flag.String("debug-addr", "", "optional listener for net/http/pprof, e.g. localhost:6060 (disabled when empty; keep it on a loopback or otherwise private address)")
		dataDir   = flag.String("data-dir", "", "durability directory: WAL + checkpoints; /ingest batches survive restarts and are recovered on boot (empty = in-memory only)")
		fsync     = flag.String("fsync", "batch", `WAL fsync policy: "batch" (fsync before every acknowledged batch), "interval", or "off"`)
		fsyncInt  = flag.Duration("fsync-interval", 0, "period of the interval fsync policy (0 = default 100ms)")
		maxBody   = flag.Int64("max-body-bytes", 0, "request-body cap for query endpoints (0 = default 1 MiB)")
		maxIngBd  = flag.Int64("max-ingest-body-bytes", 0, "request-body cap for /ingest (0 = default 64 MiB)")
		logFmt    = flag.String("log-format", "text", `structured log rendering: "text" or "json"`)
		slowMS    = flag.Int64("slow-query-ms", 0, "log queries slower than this many milliseconds with plan digest and stage breakdown (0 disables)")
		memBudget = flag.Int64("mem-budget-bytes", 0, "per-query memory budget: queries whose metered allocations exceed it abort with 422 (0 = unlimited)")
		memGlobal = flag.Int64("mem-global-bytes", 0, "process-wide query-memory ceiling shared by all in-flight queries (0 = unlimited)")
		queueDep  = flag.Int("queue-depth", 0, "admission queue depth at saturation (0 = default 2x max-concurrent, negative disables queueing)")
		queueWait = flag.Duration("queue-wait", 0, "longest a request may queue for an admission slot before 429 (0 = default 1s, negative disables queueing)")
		tenantHdr = flag.String("tenant-header", "", `request header naming the tenant for quota accounting (default "X-Tenant")`)
		tenantQ   = flag.String("tenant-quotas", "", `per-tenant concurrent-slot quotas as "name=n,name=n" (empty = none)`)
		tenantDef = flag.Int("tenant-default-quota", 0, "concurrent-slot quota for tenants not listed in -tenant-quotas (0 = unlimited)")
	)
	flag.Parse()

	logger, err := logx.Setup(*logFmt, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gfserver:", err)
		os.Exit(2)
	}

	quotas, err := parseTenantQuotas(*tenantQ)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gfserver:", err)
		os.Exit(2)
	}

	opts := &graphflow.Options{
		CatalogueH: *catH, CatalogueZ: *catZ,
		CompactThreshold: *compact, HubDegreeThreshold: *hubTh,
		DataDir: *dataDir, Fsync: *fsync, FsyncInterval: *fsyncInt,
		MemBudgetBytes: *memBudget, MemGlobalBytes: *memGlobal,
	}
	var db *graphflow.DB
	switch {
	case *dataFile != "":
		f, ferr := os.Open(*dataFile)
		if ferr != nil {
			logger.Error("opening data file", "err", ferr)
			os.Exit(1)
		}
		db, err = graphflow.NewFromEdgeList(f, opts)
		f.Close()
	case *dsName != "":
		db, err = graphflow.NewFromDataset(*dsName, *scale, opts)
	default:
		fmt.Fprintln(os.Stderr, "gfserver: one of -data or -dataset is required")
		os.Exit(2)
	}
	if err != nil {
		logger.Error("loading graph", "err", err)
		os.Exit(1)
	}
	logger.Info("graph loaded", "vertices", db.NumVertices(), "edges", db.NumEdges())
	if ls := db.LiveStats(); ls.WALEnabled {
		logger.Info("durable store recovered",
			"dir", *dataDir, "epoch", ls.Epoch, "replayed_batches", ls.ReplayedBatches,
			"checkpoint_epoch", ls.CheckpointEpoch, "torn_tail_dropped", ls.WALTornTail)
	}

	srv, err := server.New(server.Config{
		DB:                 db,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTime,
		MaxConcurrent:      *maxConc,
		MaxRows:            *maxRows,
		MaxWorkers:         *maxWork,
		BatchSize:          *batchSz,
		NoFactorize:        *noFact,
		MaxBodyBytes:       *maxBody,
		MaxIngestBodyBytes: *maxIngBd,
		SlowQueryThreshold: time.Duration(*slowMS) * time.Millisecond,
		Logger:             logger,
		MaxQueueDepth:      *queueDep,
		MaxQueueWait:       *queueWait,
		TenantHeader:       *tenantHdr,
		TenantQuotas:       quotas,
		DefaultTenantQuota: *tenantDef,
	})
	if err != nil {
		logger.Error("building server", "err", err)
		os.Exit(1)
	}

	// The pprof listener is separate from the query listener on purpose:
	// profiles of the vectorized batch path can be captured in production
	// without exposing /debug/pprof to query traffic. It is a real
	// http.Server (not a fire-and-forget ListenAndServe) so the drain
	// path below can shut it down instead of leaking the listener.
	var debugSrv *http.Server
	if *debug != "" {
		debugSrv = &http.Server{
			Addr:              *debug,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof debug listener started", "addr", *debug)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener", "err", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// ReadHeaderTimeout guards against slowloris clients holding
		// connections open without sending a request.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops accepting
	// new connections and waits for in-flight requests — whose query
	// contexts keep running until their own deadlines — up to the drain
	// budget, after which Close cancels whatever remains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("gfserver listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("signal received; draining", "budget", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the admission controller first: queued waiters are shed with
	// Retry-After, new arrivals (including late /ingest batches) get 503,
	// and the call returns once every in-flight slot is released — so by
	// the time the DB closes below, no request can still be mutating it.
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("admission drain budget exhausted", "err", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("drain budget exhausted, closing", "err", err)
		_ = httpSrv.Close()
	}
	// The debug listener drains inside the same budget: profiles in
	// flight (e.g. a 30s CPU profile) are abandoned once the budget is
	// spent rather than pinning the process.
	if debugSrv != nil {
		if err := debugSrv.Shutdown(drainCtx); err != nil {
			_ = debugSrv.Close()
		}
	}
	// Close the DB after the HTTP drain so every acknowledged ingest is
	// synced to the WAL before exit.
	if err := db.Close(); err != nil {
		logger.Error("closing store", "err", err)
	}
	logger.Info("gfserver stopped")
}

// parseTenantQuotas parses the -tenant-quotas flag: a comma-separated
// list of name=n pairs, each n a positive concurrent-slot count.
func parseTenantQuotas(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	quotas := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-quotas: %q is not name=n", pair)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-tenant-quotas: %q needs a positive slot count", pair)
		}
		quotas[name] = n
	}
	return quotas, nil
}
