// Command gfvet is the repo's own static-analysis gate: it loads the
// enclosing module from source (stdlib go/parser + go/types only, no
// external tooling) and enforces the engine's structural invariants —
// zero-alloc hot paths (noalloc), amortized cancellation polling
// (ctxpoll), atomic access discipline (atomicfield), logging hygiene
// (logdiscipline) and compile-time Prometheus naming rules (metricreg).
//
// Usage:
//
//	gfvet [-only a,b] [-list] [packages]
//
// The package arguments are accepted for symmetry with go vet but the
// whole module is always analyzed: the invariants are program-wide
// (noalloc follows calls across packages, atomicfield and metricreg
// aggregate facts across the module), so partial runs would under-
// report. Exit status: 0 clean, 1 findings, 2 load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphflow/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", ".", "directory inside the module to analyze")
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	run := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		run = run[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "gfvet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			run = append(run, a)
		}
	}

	prog, err := analysis.Load(analysis.Config{Dir: *dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gfvet:", err)
		os.Exit(2)
	}
	diags := analysis.Run(prog, run)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gfvet: %d finding(s) in module %s\n", len(diags), prog.ModulePath)
		os.Exit(1)
	}
}
