// Command gfload drives a weighted query + ingest mix against a running
// gfserver and reports latency percentiles and achieved throughput.
// The default scenario mixes triangle and star counts, a row-returning
// path match, and a ~10% stream of random mutation batches; -qps paces
// the aggregate request rate open-loop (0 = closed-loop, as fast as
// responses return).
//
// Usage:
//
//	gfserver -dataset Epinions -data-dir /tmp/gf &
//	gfload -url http://localhost:8090 -duration 30s -qps 200 -c 8
//	gfload -url http://localhost:8090 -json bench.json
//
// With -json the report is written in the repo's BENCH_*.json envelope
// (generated_at / scale / results), one row per template plus an
// overall row with p50/p95/p99 latency and achieved QPS. When the
// target serves /metrics, the driver scrapes it before and after the
// run and adds per-endpoint server-side p50/p95/p99 rows (from the
// request-histogram bucket deltas), so the envelope separates queueing
// and network overhead from time actually spent in the server.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"graphflow/internal/load"
	"graphflow/internal/logx"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8090", "base URL of the target gfserver")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		maxReq   = flag.Int64("max-requests", 0, "stop after this many requests (0 = duration only)")
		conc     = flag.Int("c", 8, "concurrent workers")
		qps      = flag.Float64("qps", 0, "target aggregate QPS (0 = closed loop)")
		seed     = flag.Int64("seed", 1, "seed for template selection and ingest batches")
		jsonPath = flag.String("json", "", "write the report as BENCH-envelope JSON to this file instead of text output")
		logFmt   = flag.String("log-format", "text", `structured log rendering: "text" or "json"`)
		retries  = flag.Int("retries", 0, "retries per shed (429/503) request, honouring Retry-After with capped exponential backoff (0 = default 3, negative disables)")
		backoff  = flag.Duration("backoff-cap", 0, "ceiling on one retry backoff sleep (0 = default 2s)")
	)
	flag.Parse()

	if _, err := logx.Setup(*logFmt, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gfload:", err)
		os.Exit(2)
	}

	rep, err := load.Run(load.Config{
		BaseURL:     *url,
		Templates:   load.DefaultTemplates(),
		Duration:    *duration,
		MaxRequests: *maxReq,
		Concurrency: *conc,
		TargetQPS:   *qps,
		Seed:        *seed,
		MaxRetries:  *retries,
		BackoffCap:  *backoff,
	})
	if err != nil {
		slog.Error("load run failed", "err", err)
		os.Exit(1)
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			slog.Error("encoding report", "err", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			slog.Error("writing report", "err", err)
			os.Exit(1)
		}
		slog.Info("report written", "path", *jsonPath, "server_rows", len(rep.Server))
		return
	}
	fmt.Printf("%-18s %9s %7s %6s %7s %9s %9s %9s %9s %10s\n",
		"template", "requests", "errors", "sheds", "retries", "p50(ms)", "p95(ms)", "p99(ms)", "mean(ms)", "qps")
	for _, r := range rep.Results {
		fmt.Printf("%-18s %9d %7d %6d %7d %9.2f %9.2f %9.2f %9.2f %10.1f\n",
			r.Name, r.Requests, r.Errors, r.Sheds, r.Retries, r.P50MS, r.P95MS, r.P99MS, r.MeanMS, r.AchievedQPS)
	}
	if len(rep.Server) > 0 {
		fmt.Printf("\nserver-side (from /metrics bucket deltas):\n")
		fmt.Printf("%-18s %9s %9s %9s %9s %9s\n",
			"endpoint", "requests", "p50(ms)", "p95(ms)", "p99(ms)", "mean(ms)")
		for _, r := range rep.Server {
			fmt.Printf("%-18s %9d %9.2f %9.2f %9.2f %9.2f\n",
				r.Endpoint, r.Requests, r.P50MS, r.P95MS, r.P99MS, r.MeanMS)
		}
	}
}
