// Command gfbench regenerates the paper's tables and figures (see
// DESIGN.md section 4 for the experiment index) and records the repo's
// machine-readable perf trajectory.
//
// Usage:
//
//	gfbench -exp table9
//	gfbench -exp all -scale 2
//	gfbench -json BENCH_5.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"graphflow/internal/bench"
	"graphflow/internal/logx"
)

// jsonReport is the BENCH_*.json file shape: a stamped header plus one
// row per (workload, engine) pair.
type jsonReport struct {
	GeneratedAt string              `json:"generated_at"`
	Scale       int                 `json:"scale"`
	Results     []bench.MicroResult `json:"results"`
}

func runJSON(path string, scale int) error {
	results, err := bench.Micro(scale)
	if err != nil {
		return err
	}
	rep := jsonReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       scale,
		Results:     results,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-14s %-12s %-6s workers=%d  %12.0f ns/op %8d allocs/op  matches=%d\n",
			r.Name, r.Graph, r.Engine, r.Workers, r.NsPerOp, r.AllocsPerOp, r.Matches)
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(results))
	return nil
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (table3..table13, fig7..fig11) or 'all'")
		ablation = flag.String("ablation", "", "ablation id (see -list) or 'all'")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		list     = flag.Bool("list", false, "list available experiments and ablations")
		jsonOut  = flag.String("json", "", "run the machine-readable micro suite and write results to this file")
		logFmt   = flag.String("log-format", "text", `structured log rendering: "text" or "json"`)
	)
	flag.Parse()
	if _, err := logx.Setup(*logFmt, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gfbench:", err)
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := runJSON(*jsonOut, *scale); err != nil {
			slog.Error("micro suite failed", "err", err)
			os.Exit(1)
		}
		return
	}
	if *list || (*exp == "" && *ablation == "") {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.Name, e.About)
		}
		fmt.Println("available ablations (-ablation):")
		for _, a := range bench.Ablations() {
			fmt.Printf("  %-16s %s\n", a.Name, a.About)
		}
		if *exp == "" && *ablation == "" {
			os.Exit(2)
		}
		return
	}
	if *ablation != "" {
		if err := bench.RunAblation(*ablation, os.Stdout, *scale); err != nil {
			slog.Error("ablation failed", "ablation", *ablation, "err", err)
			os.Exit(1)
		}
		return
	}
	if err := bench.Run(*exp, os.Stdout, *scale); err != nil {
		slog.Error("experiment failed", "exp", *exp, "err", err)
		os.Exit(1)
	}
}
