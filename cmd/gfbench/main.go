// Command gfbench regenerates the paper's tables and figures (see
// DESIGN.md section 4 for the experiment index).
//
// Usage:
//
//	gfbench -exp table9
//	gfbench -exp all -scale 2
package main

import (
	"flag"
	"fmt"
	"os"

	"graphflow/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (table3..table13, fig7..fig11) or 'all'")
		ablation = flag.String("ablation", "", "ablation id (see -list) or 'all'")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		list     = flag.Bool("list", false, "list available experiments and ablations")
	)
	flag.Parse()
	if *list || (*exp == "" && *ablation == "") {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.Name, e.About)
		}
		fmt.Println("available ablations (-ablation):")
		for _, a := range bench.Ablations() {
			fmt.Printf("  %-16s %s\n", a.Name, a.About)
		}
		if *exp == "" && *ablation == "" {
			os.Exit(2)
		}
		return
	}
	if *ablation != "" {
		if err := bench.RunAblation(*ablation, os.Stdout, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "gfbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := bench.Run(*exp, os.Stdout, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "gfbench:", err)
		os.Exit(1)
	}
}
