// Command gfcatalogue builds, saves, and inspects subgraph catalogues
// (paper Section 5).
//
// Usage:
//
//	gfcatalogue -dataset Amazon -z 1000 -h 3 -out amazon.cat
//	gfcatalogue -in amazon.cat -inspect
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"

	"graphflow/internal/catalogue"
	"graphflow/internal/datagen"
	"graphflow/internal/graph"
	"graphflow/internal/logx"
)

func main() {
	var (
		dataFile = flag.String("data", "", "edge-list file to load")
		dsName   = flag.String("dataset", "", "built-in dataset name")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		z        = flag.Int("z", 1000, "sampled edges per chain")
		h        = flag.Int("h", 3, "max base subquery size")
		out      = flag.String("out", "", "write the catalogue as JSON to this file")
		in       = flag.String("in", "", "load a catalogue from this file instead of building")
		inspect  = flag.Bool("inspect", false, "print a summary of the catalogue")
		logFmt   = flag.String("log-format", "text", `structured log rendering: "text" or "json"`)
	)
	flag.Parse()
	if _, err := logx.Setup(*logFmt, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gfcatalogue:", err)
		os.Exit(2)
	}

	var cat *catalogue.Catalogue
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		cat, err = catalogue.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		var g *graph.Graph
		switch {
		case *dataFile != "":
			f, err := os.Open(*dataFile)
			if err != nil {
				fatal(err)
			}
			var lerr error
			g, lerr = graph.LoadEdgeList(f)
			f.Close()
			if lerr != nil {
				fatal(lerr)
			}
		case *dsName != "":
			g = datagen.ByName(*dsName, *scale)
			if g == nil {
				fatal(fmt.Errorf("unknown dataset %q", *dsName))
			}
		default:
			fmt.Fprintln(os.Stderr, "gfcatalogue: one of -data, -dataset or -in is required")
			os.Exit(2)
		}
		fmt.Printf("building catalogue (h=%d z=%d) for %v...\n", *h, *z, g)
		cat = catalogue.Build(g, catalogue.Config{H: *h, Z: *z})
	}

	fmt.Printf("catalogue: %d extension entries, %d vertices indexed\n", cat.Len(), cat.NumVertices)
	if *inspect {
		type row struct {
			key string
			mu  float64
		}
		var rows []row
		for k, e := range cat.Entries {
			rows = append(rows, row{k, e.Mu})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].mu > rows[j].mu })
		if len(rows) > 20 {
			rows = rows[:20]
		}
		fmt.Println("top entries by selectivity µ:")
		for _, r := range rows {
			fmt.Printf("  µ=%8.3f  %s\n", r.mu, r.key)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := cat.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	slog.Error("gfcatalogue failed", "err", err)
	os.Exit(1)
}
