// Command gfquery runs subgraph queries end to end: load or generate a
// graph, build the catalogue, optimize, execute, and report the plan and
// statistics. Queries are compiled once with the prepared-query API and
// run from the compiled form; -repeat shows planning amortizing away
// across repeated executions.
//
// Usage:
//
//	gfquery -dataset Epinions -query "a->b, b->c, a->c"
//	gfquery -data graph.txt -query "a->b, b->c" -workers 8 -explain
//	gfquery -dataset Epinions -query "a->b, b->c, a->c" -repeat 5
//	gfquery -dataset Epinions            # interactive: one pattern per line
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"graphflow"
)

func main() {
	var (
		dataFile = flag.String("data", "", "edge-list file to load, optionally gzip-compressed (see internal/graph format)")
		dsName   = flag.String("dataset", "", "built-in dataset name (Amazon, Epinions, LiveJournal, Twitter, BerkStan, Google, Human)")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		pattern  = flag.String("query", "", "query pattern, e.g. \"a->b, b->c, a->c\"; empty starts an interactive loop")
		workers  = flag.Int("workers", 1, "parallel workers")
		adaptive = flag.Bool("adaptive", false, "adaptive query-vertex-ordering selection")
		wcoOnly  = flag.Bool("wco", false, "restrict the optimizer to WCO plans")
		noCache  = flag.Bool("nocache", false, "disable the intersection cache")
		limit    = flag.Int64("limit", 0, "stop after this many matches (0 = all)")
		repeat   = flag.Int("repeat", 1, "execute the prepared query this many times")
		explain  = flag.Bool("explain", false, "print the plan without executing")
		analyze  = flag.Bool("analyze", false, "run and print per-operator statistics")
		catZ     = flag.Int("catz", 1000, "catalogue sample size z")
		catH     = flag.Int("cath", 3, "catalogue max subquery size h")
	)
	flag.Parse()

	opts := &graphflow.Options{CatalogueH: *catH, CatalogueZ: *catZ}
	var db *graphflow.DB
	var err error
	switch {
	case *dataFile != "":
		f, ferr := os.Open(*dataFile)
		if ferr != nil {
			fatal(ferr)
		}
		db, err = graphflow.NewFromEdgeList(f, opts)
		f.Close()
	case *dsName != "":
		db, err = graphflow.NewFromDataset(*dsName, *scale, opts)
	default:
		fmt.Fprintln(os.Stderr, "gfquery: one of -data or -dataset is required")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", db.NumVertices(), db.NumEdges())

	qo := &graphflow.QueryOptions{
		Workers:      *workers,
		Adaptive:     *adaptive,
		WCOOnly:      *wcoOnly,
		DisableCache: *noCache,
		Limit:        *limit,
	}

	if *pattern == "" {
		repl(db, qo)
		return
	}

	if *explain {
		pq, err := prepareFor(db, qo)(*pattern)
		if err != nil {
			fatal(err)
		}
		st := pq.Stats()
		fmt.Printf("plan kind: %s\n%s", st.PlanKind, st.Plan)
		if est, err := db.EstimateCardinality(*pattern); err == nil {
			fmt.Printf("estimated matches: %.1f\n", est)
		}
		return
	}
	if *analyze {
		if err := runAnalyze(db, *pattern); err != nil {
			fatal(err)
		}
		return
	}

	if err := runPrepared(db, *pattern, qo, *repeat); err != nil {
		fatal(err)
	}
}

// runAnalyze is EXPLAIN ANALYZE at the CLI: execute single-threaded and
// print the operator tree annotated with actual tuples, i-cost, cache
// hits and attributed wall time, followed by the per-stage breakdown.
func runAnalyze(db *graphflow.DB, pattern string) error {
	start := time.Now()
	st, err := db.Analyze(pattern)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("matches: %d\nplan kind: %s\n%s", st.Matches, st.PlanKind, st.Plan)
	total := st.StageScanNanos + st.StageExtendNanos + st.StageProbeNanos +
		st.StageFactorizedNanos + st.StageBuildNanos + st.StageEmitNanos
	if total > 0 {
		ms := func(n int64) float64 { return float64(n) / 1e6 }
		fmt.Printf("stage times: scan %.2fms  extend %.2fms  probe %.2fms  factorized %.2fms  build %.2fms  emit %.2fms\n",
			ms(st.StageScanNanos), ms(st.StageExtendNanos), ms(st.StageProbeNanos),
			ms(st.StageFactorizedNanos), ms(st.StageBuildNanos), ms(st.StageEmitNanos))
	}
	fmt.Printf("elapsed: %v\n", elapsed)
	return nil
}

// runPrepared compiles the pattern once, runs it repeat times, and
// reports per-run wall time: with the compiled plan reused, every run
// after the first pays execution cost only.
// prepareFor selects the Prepare variant matching the session's planning
// options (-wco restricts the plan space at compile time).
func prepareFor(db *graphflow.DB, qo *graphflow.QueryOptions) func(string) (*graphflow.PreparedQuery, error) {
	if qo.WCOOnly {
		return db.PrepareWCO
	}
	return db.Prepare
}

func runPrepared(db *graphflow.DB, pattern string, qo *graphflow.QueryOptions, repeat int) error {
	planStart := time.Now()
	pq, err := prepareFor(db, qo)(pattern)
	if err != nil {
		return err
	}
	planTime := time.Since(planStart)
	if repeat < 1 {
		repeat = 1
	}
	var st graphflow.Stats
	var n int64
	for i := 0; i < repeat; i++ {
		runStart := time.Now()
		n, st, err = pq.CountStats(qo)
		if err != nil {
			return err
		}
		if repeat > 1 {
			fmt.Printf("run %d: %d matches in %v\n", i+1, n, time.Since(runStart))
		}
	}
	fmt.Printf("matches: %d\n", n)
	fmt.Printf("plan kind: %s  (planned+compiled once in %v)\nintermediate: %d  i-cost: %d  cache hits: %d\n%s",
		st.PlanKind, planTime, st.Intermediate, st.ICost, st.CacheHits, st.Plan)
	return nil
}

// repl reads one pattern per line and evaluates it through the DB's plan
// cache, so re-issuing a query (or an isomorphic spelling of it) skips
// re-optimization. Commands: ":explain <pattern>", ":cache", ":quit".
func repl(db *graphflow.DB, qo *graphflow.QueryOptions) {
	fmt.Println(`interactive mode - enter a pattern ("a->b, b->c, a->c"), ":explain <pattern>", ":analyze <pattern>", ":cache" or ":quit"`)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("gfquery> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ":quit" || line == ":q" || line == ":exit":
			return
		case line == ":cache":
			cs := db.PlanCacheStats()
			fmt.Printf("plan cache: %d entries, %d hits, %d misses, %d evictions\n",
				cs.Entries, cs.Hits, cs.Misses, cs.Evictions)
		case strings.HasPrefix(line, ":analyze "):
			if err := runAnalyze(db, strings.TrimSpace(strings.TrimPrefix(line, ":analyze "))); err != nil {
				fmt.Println("error:", err)
			}
		case strings.HasPrefix(line, ":explain "):
			// Plan in the same space queries execute in (-wco applies).
			pq, err := prepareFor(db, qo)(strings.TrimSpace(strings.TrimPrefix(line, ":explain ")))
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			st := pq.Stats()
			fmt.Printf("plan kind: %s\n%s", st.PlanKind, st.Plan)
		default:
			start := time.Now()
			n, st, err := db.CountStats(line, qo)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("matches: %d  (%v, plan kind %s)\n", n, time.Since(start), st.PlanKind)
		}
		fmt.Print("gfquery> ")
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfquery:", err)
	os.Exit(1)
}
