// Command gfquery runs a subgraph query end to end: load or generate a
// graph, build the catalogue, optimize, execute, and report the plan and
// statistics.
//
// Usage:
//
//	gfquery -dataset Epinions -query "a->b, b->c, a->c"
//	gfquery -data graph.txt -query "a->b, b->c" -workers 8 -explain
package main

import (
	"flag"
	"fmt"
	"os"

	"graphflow"
)

func main() {
	var (
		dataFile = flag.String("data", "", "edge-list file to load (see internal/graph format)")
		dsName   = flag.String("dataset", "", "built-in dataset name (Amazon, Epinions, LiveJournal, Twitter, BerkStan, Google, Human)")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		pattern  = flag.String("query", "", "query pattern, e.g. \"a->b, b->c, a->c\"")
		workers  = flag.Int("workers", 1, "parallel workers")
		adaptive = flag.Bool("adaptive", false, "adaptive query-vertex-ordering selection")
		wcoOnly  = flag.Bool("wco", false, "restrict the optimizer to WCO plans")
		noCache  = flag.Bool("nocache", false, "disable the intersection cache")
		limit    = flag.Int64("limit", 0, "stop after this many matches (0 = all)")
		explain  = flag.Bool("explain", false, "print the plan without executing")
		analyze  = flag.Bool("analyze", false, "run and print per-operator statistics")
		catZ     = flag.Int("catz", 1000, "catalogue sample size z")
		catH     = flag.Int("cath", 3, "catalogue max subquery size h")
	)
	flag.Parse()
	if *pattern == "" {
		fmt.Fprintln(os.Stderr, "gfquery: -query is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := &graphflow.Options{CatalogueH: *catH, CatalogueZ: *catZ}
	var db *graphflow.DB
	var err error
	switch {
	case *dataFile != "":
		f, ferr := os.Open(*dataFile)
		if ferr != nil {
			fatal(ferr)
		}
		db, err = graphflow.NewFromEdgeList(f, opts)
		f.Close()
	case *dsName != "":
		db, err = graphflow.NewFromDataset(*dsName, *scale, opts)
	default:
		fmt.Fprintln(os.Stderr, "gfquery: one of -data or -dataset is required")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", db.NumVertices(), db.NumEdges())

	if *explain {
		st, err := db.Explain(*pattern)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("plan kind: %s\n%s", st.PlanKind, st.Plan)
		if est, err := db.EstimateCardinality(*pattern); err == nil {
			fmt.Printf("estimated matches: %.1f\n", est)
		}
		return
	}
	if *analyze {
		st, err := db.Analyze(*pattern)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("matches: %d\nplan kind: %s\n%s", st.Matches, st.PlanKind, st.Plan)
		return
	}

	qo := &graphflow.QueryOptions{
		Workers:      *workers,
		Adaptive:     *adaptive,
		WCOOnly:      *wcoOnly,
		DisableCache: *noCache,
		Limit:        *limit,
	}
	n, st, err := db.CountStats(*pattern, qo)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("matches: %d\n", n)
	fmt.Printf("plan kind: %s\nintermediate: %d  i-cost: %d  cache hits: %d\n%s",
		st.PlanKind, st.Intermediate, st.ICost, st.CacheHits, st.Plan)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfquery:", err)
	os.Exit(1)
}
