module graphflow

go 1.24
