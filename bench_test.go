package graphflow

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark runs the experiment's code path on a trimmed workload
// (bench.Quick) so `go test -bench=.` completes in minutes; the full
// experiments — the exact rows the paper reports — are regenerated with
// `go run ./cmd/gfbench -exp <id>` (see DESIGN.md section 4 and
// EXPERIMENTS.md).

import (
	"io"
	"testing"

	"graphflow/internal/bench"
)

func quick(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := bench.Quick(name, io.Discard, 1); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// BenchmarkTable3IntersectionCache: intersection cache on/off across all
// WCO plans of the diamond-X query (paper Table 3).
func BenchmarkTable3IntersectionCache(b *testing.B) { quick(b, "table3") }

// BenchmarkTable4TriangleQVO: adjacency-list direction effects on the
// asymmetric triangle (paper Table 4).
func BenchmarkTable4TriangleQVO(b *testing.B) { quick(b, "table4") }

// BenchmarkTable5TailedTriangle: intermediate-result effects on the tailed
// triangle (paper Table 5).
func BenchmarkTable5TailedTriangle(b *testing.B) { quick(b, "table5") }

// BenchmarkTable6CacheHits: cache-hit effects on the symmetric diamond-X
// (paper Table 6).
func BenchmarkTable6CacheHits(b *testing.B) { quick(b, "table6") }

// BenchmarkFig7Spectrum: plan-spectrum generation and execution with the
// optimizer's pick marked (paper Figure 7).
func BenchmarkFig7Spectrum(b *testing.B) { quick(b, "fig7") }

// BenchmarkFig8Adaptive: fixed vs adaptive WCO plan execution (paper
// Figure 8).
func BenchmarkFig8Adaptive(b *testing.B) { quick(b, "fig8") }

// BenchmarkFig9EHSpectrum: EmptyHeaded spectra vs Graphflow spectra (paper
// Figure 9).
func BenchmarkFig9EHSpectrum(b *testing.B) { quick(b, "fig9") }

// BenchmarkTable9EH: Graphflow vs EmptyHeaded with good and bad orderings
// (paper Table 9).
func BenchmarkTable9EH(b *testing.B) { quick(b, "table9") }

// BenchmarkFig11Scalability: speedup across worker counts (paper Figure
// 11).
func BenchmarkFig11Scalability(b *testing.B) { quick(b, "fig11") }

// BenchmarkTable10QErrorZ: catalogue q-error vs sample size z (paper
// Table 10).
func BenchmarkTable10QErrorZ(b *testing.B) { quick(b, "table10") }

// BenchmarkTable11QErrorH: catalogue q-error vs maximum subgraph size h,
// with the PostgreSQL-style baseline (paper Table 11).
func BenchmarkTable11QErrorH(b *testing.B) { quick(b, "table11") }

// BenchmarkTable12CFL: CFL-style matcher vs Graphflow on random labelled
// query sets (paper Table 12).
func BenchmarkTable12CFL(b *testing.B) { quick(b, "table12") }

// BenchmarkTable13BJBaseline: edge-at-a-time binary-join baseline vs
// Graphflow (paper Table 13).
func BenchmarkTable13BJBaseline(b *testing.B) { quick(b, "table13") }

// Micro-benchmarks of the core operators, for ablation beyond the paper's
// tables.

func BenchmarkTriangleCountWCO(b *testing.B) {
	db, err := NewFromDataset("Epinions", 1, &Options{CatalogueZ: 300})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Count("a->b, b->c, a->c", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiamondXParallel(b *testing.B) {
	db, err := NewFromDataset("Amazon", 1, &Options{CatalogueZ: 300})
	if err != nil {
		b.Fatal(err)
	}
	pattern := "a1->a2, a1->a3, a2->a3, a2->a4, a3->a4"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Count(pattern, &QueryOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeSevenClique(b *testing.B) {
	db, err := NewFromDataset("Amazon", 1, &Options{CatalogueZ: 300})
	if err != nil {
		b.Fatal(err)
	}
	pattern := "a1->a2, a1->a3, a1->a4, a1->a5, a1->a6, a1->a7," +
		"a2->a3, a2->a4, a2->a5, a2->a6, a2->a7," +
		"a3->a4, a3->a5, a3->a6, a3->a7," +
		"a4->a5, a4->a6, a4->a7, a5->a6, a5->a7, a6->a7"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain(pattern); err != nil {
			b.Fatal(err)
		}
	}
}
