package graphflow

import (
	"sync"
	"testing"
)

func TestPreparedCountMatchesAdhoc(t *testing.T) {
	db := tinyDB(t)
	pq, err := db.Prepare("a->b, b->c, a->c")
	if err != nil {
		t.Fatal(err)
	}
	n, err := pq.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("prepared count = %d, want 1", n)
	}
	// Stats without running.
	st := pq.Stats()
	if st.PlanKind == "" || st.Plan == "" {
		t.Errorf("Stats() incomplete: %+v", st)
	}
	// Options still apply per run.
	if n, err = pq.Count(&QueryOptions{Workers: 4}); err != nil || n != 1 {
		t.Errorf("parallel prepared count = %d/%v, want 1", n, err)
	}
	if n, err = pq.Count(&QueryOptions{Distinct: true}); err != nil || n != 1 {
		t.Errorf("distinct prepared count = %d/%v, want 1", n, err)
	}
	if n, err = pq.Count(&QueryOptions{Limit: 1}); err != nil || n != 1 {
		t.Errorf("limited prepared count = %d/%v, want 1", n, err)
	}
}

func TestPreparedMatchNames(t *testing.T) {
	db := tinyDB(t)
	pq, err := db.Prepare("x->y, y->z, x->z")
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]uint32
	err = pq.Match(func(m map[string]uint32) bool {
		got = map[string]uint32{}
		for k, v := range m {
			got[k] = v
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The triangle is 0->1->2 with 0->2: x=0, y=1, z=2 regardless of the
	// canonical renumbering used internally.
	want := map[string]uint32{"x": 0, "y": 1, "z": 2}
	if len(got) != 3 {
		t.Fatalf("match binds %d names, want 3: %v", len(got), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d, want %d (full: %v)", k, got[k], v, got)
		}
	}
}

func TestMatchEarlyTermination(t *testing.T) {
	// Graph with many triangles: a fan around vertex 0.
	b := NewBuilder(42)
	for i := uint32(1); i < 41; i += 2 {
		b.AddEdge(0, i, 0)
		b.AddEdge(i, i+1, 0)
		b.AddEdge(0, i+1, 0)
	}
	db, err := b.Open(&Options{CatalogueZ: 50})
	if err != nil {
		t.Fatal(err)
	}
	total, err := db.Count("a->b, b->c, a->c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if total < 10 {
		t.Fatalf("fan graph has only %d triangles", total)
	}
	calls := 0
	err = db.Match("a->b, b->c, a->c", func(map[string]uint32) bool {
		calls++
		return calls < 3
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("callback invoked %d times, want exactly 3 (stop must halt the runner)", calls)
	}
}

func TestMatchHonorsDistinctAndLimit(t *testing.T) {
	db := tinyDB(t)
	pq, err := db.Prepare("a->b, b->c")
	if err != nil {
		t.Fatal(err)
	}
	countMatches := func(opts *QueryOptions) int64 {
		var n int64
		if err := pq.Match(func(map[string]uint32) bool { n++; return true }, opts); err != nil {
			t.Fatal(err)
		}
		return n
	}
	plain, err := pq.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	distinct, err := pq.Count(&QueryOptions{Distinct: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := countMatches(nil); got != plain {
		t.Errorf("Match delivered %d tuples, Count says %d", got, plain)
	}
	if got := countMatches(&QueryOptions{Distinct: true}); got != distinct {
		t.Errorf("distinct Match delivered %d tuples, Count says %d", got, distinct)
	}
	if plain < 2 {
		t.Fatalf("need >=2 matches to exercise Limit, have %d", plain)
	}
	if got := countMatches(&QueryOptions{Limit: plain - 1}); got != plain-1 {
		t.Errorf("limited Match delivered %d tuples, want %d", got, plain-1)
	}
}

func TestDistinctParallelNoRace(t *testing.T) {
	// Distinct counting across workers must agree with sequential; run
	// under -race this also proves the counter is synchronised.
	db := tinyDB(t)
	seq, err := db.Count("a->b, b->c", &QueryOptions{Distinct: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.Count("a->b, b->c", &QueryOptions{Distinct: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("distinct count: sequential %d != parallel %d", seq, par)
	}
}

func TestPlanCacheHitsOnRepeatAndIsomorphicSpelling(t *testing.T) {
	db := tinyDB(t)
	if _, err := db.Count("a->b, b->c, a->c", nil); err != nil {
		t.Fatal(err)
	}
	before := db.PlanCacheStats()
	if before.Entries == 0 || before.Misses == 0 {
		t.Fatalf("first query should miss and fill the cache: %+v", before)
	}
	if _, err := db.Count("a->b, b->c, a->c", nil); err != nil {
		t.Fatal(err)
	}
	// Isomorphic spelling with different names and edge order.
	if _, err := db.Count("y->z, x->y, x->z", nil); err != nil {
		t.Fatal(err)
	}
	after := db.PlanCacheStats()
	if after.Hits < before.Hits+2 {
		t.Errorf("repeat + isomorphic spelling should both hit: before %+v after %+v", before, after)
	}
	if after.Entries != before.Entries {
		t.Errorf("isomorphic spelling added a cache entry: before %+v after %+v", before, after)
	}
	// A WCO-restricted run plans in a different space and must not
	// collide with the cached full-space plan.
	if _, err := db.Count("a->b, b->c, a->c", &QueryOptions{WCOOnly: true}); err != nil {
		t.Fatal(err)
	}
	wco := db.PlanCacheStats()
	if wco.Entries != after.Entries+1 {
		t.Errorf("WCOOnly should occupy its own cache entry: %+v -> %+v", after, wco)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(0, 2, 0)
	db, err := b.Open(&Options{CatalogueZ: 50, PlanCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Count("a->b, b->c, a->c", nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.PlanCacheStats(); st.Hits != 0 || st.Entries != 0 {
		t.Errorf("disabled cache recorded activity: %+v", st)
	}
}

func TestSkipPlanCache(t *testing.T) {
	db := tinyDB(t)
	for i := 0; i < 2; i++ {
		if _, err := db.Count("a->b, b->c, a->c", &QueryOptions{SkipPlanCache: true}); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.PlanCacheStats(); st.Hits != 0 {
		t.Errorf("SkipPlanCache still hit the cache: %+v", st)
	}
}

// TestConcurrentQueriesSharedDB is the headline concurrency test: many
// goroutines issue overlapping prepared and ad-hoc queries against one
// shared DB. Run with -race in CI.
func TestConcurrentQueriesSharedDB(t *testing.T) {
	db := tinyDB(t)
	patterns := []string{
		"a->b, b->c, a->c",
		"x->y, y->z, x->z", // isomorphic spelling, shares the cached plan
		"a->b, b->c",
		"a->b, b->c, c->d",
	}
	want := make([]int64, len(patterns))
	for i, p := range patterns {
		n, err := db.Count(p, &QueryOptions{SkipPlanCache: true})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = n
	}
	pq, err := db.Prepare(patterns[0])
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 256)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				pi := (g + i) % len(patterns)
				var n int64
				var err error
				switch i % 3 {
				case 0: // shared prepared query
					n, err = pq.Count(&QueryOptions{Workers: 1 + i%2})
					pi = 0
				case 1: // ad-hoc through the plan cache
					n, err = db.Count(patterns[pi], nil)
				case 2: // goroutine-local prepared query
					var local *PreparedQuery
					local, err = db.Prepare(patterns[pi])
					if err == nil {
						n, err = local.Count(nil)
					}
				}
				if err != nil {
					errCh <- err
					return
				}
				if n != want[pi] {
					errCh <- errMismatch(patterns[pi], n, want[pi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

type countMismatch struct {
	pattern    string
	got, wantN int64
}

func (e countMismatch) Error() string {
	return "count mismatch for " + e.pattern
}

func errMismatch(p string, got, want int64) error {
	return countMismatch{pattern: p, got: got, wantN: want}
}
