package baseline

import (
	"math"
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/graph"
	"graphflow/internal/query"
)

var testGraphs = map[string]*graph.Graph{
	"copurchase": datagen.CoPurchase(datagen.CoPurchaseConfig{N: 300, K: 4, Rewire: 0.25, Seed: 31}),
	"social":     datagen.Social(datagen.SocialConfig{N: 250, MPerV: 5, Closure: 0.3, Reciprocal: 0.3, Seed: 32}),
}

func TestBJCountMatchesReference(t *testing.T) {
	for name, g := range testGraphs {
		for _, j := range []int{1, 2, 3, 4, 8, 11} {
			q := query.Benchmark(j)
			got, stats, err := BJCount(g, q, BJConfig{})
			if err != nil {
				t.Fatalf("%s Q%d: %v", name, j, err)
			}
			want := query.RefCount(g, q)
			if got != want {
				t.Errorf("%s Q%d: BJ count = %d, want %d", name, j, got, want)
			}
			if stats.Intermediate == 0 {
				t.Errorf("%s Q%d: no intermediates recorded", name, j)
			}
		}
	}
}

func TestBJEagerCloseSameResultLessWork(t *testing.T) {
	g := testGraphs["social"]
	q := query.Q4()
	lazy, lazyStats, err := BJCount(g, q, BJConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eager, eagerStats, err := BJCount(g, q, BJConfig{EagerClose: true})
	if err != nil {
		t.Fatal(err)
	}
	if lazy != eager {
		t.Fatalf("eager close changed result: %d vs %d", eager, lazy)
	}
	if eagerStats.Intermediate > lazyStats.Intermediate {
		t.Errorf("eager close should not increase intermediates: eager=%d lazy=%d",
			eagerStats.Intermediate, lazyStats.Intermediate)
	}
}

func TestBJMaxIntermediate(t *testing.T) {
	g := testGraphs["social"]
	_, _, err := BJCount(g, query.Q4(), BJConfig{MaxIntermediate: 10})
	if err != ErrTooLarge {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

func TestBJExplicitOrder(t *testing.T) {
	g := testGraphs["copurchase"]
	q := query.Q1()
	// Close the triangle last: edges 0 (a1a2), 1 (a2a3), then 2 (a1a3).
	got, _, err := BJCount(g, q, BJConfig{EdgeOrder: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if want := query.RefCount(g, q); got != want {
		t.Errorf("explicit order count = %d, want %d", got, want)
	}
	// Bad orders are rejected.
	if _, _, err := BJCount(g, q, BJConfig{EdgeOrder: []int{0}}); err == nil {
		t.Error("short edge order should error")
	}
}

func TestCFLCountMatchesReference(t *testing.T) {
	for name, g := range testGraphs {
		for _, j := range []int{1, 2, 3, 4, 5, 8, 10, 11, 13} {
			q := query.Benchmark(j)
			got := CFLCount(g, q)
			want := query.RefCount(g, q)
			if got != want {
				t.Errorf("%s Q%d: CFL count = %d, want %d", name, j, got, want)
			}
		}
	}
}

func TestCFLLabeled(t *testing.T) {
	g := datagen.Relabel(testGraphs["social"], 3, 4, 41)
	q := query.WithRandomEdgeLabels(query.Q3(), 4, 42)
	// Also label the query vertices.
	q.Vertices[0].Label = 1
	got := CFLCount(g, q)
	want := query.RefCount(g, q)
	if got != want {
		t.Errorf("labeled CFL count = %d, want %d", got, want)
	}
}

func TestCFLCore(t *testing.T) {
	// Tailed triangle: core is the triangle, a4 in the forest.
	core := coreMask(query.Q3())
	if core != query.Bit(0)|query.Bit(1)|query.Bit(2) {
		t.Errorf("Q3 core = %b, want triangle", core)
	}
	// Path: core collapses to one vertex.
	core = coreMask(query.Q11())
	if popcount(core) != 1 {
		t.Errorf("path core = %b, want single vertex", core)
	}
	// 6-cycle: everything is core.
	core = coreMask(query.Q12())
	if core != query.AllMask(6) {
		t.Errorf("6-cycle core = %b, want all", core)
	}
}

func popcount(m query.Mask) int {
	c := 0
	for m != 0 {
		m &= m - 1
		c++
	}
	return c
}

func TestCFLCountUpTo(t *testing.T) {
	g := testGraphs["copurchase"]
	q := query.Q11() // plenty of path matches
	full := CFLCount(g, q)
	if full < 100 {
		t.Skipf("too few matches (%d) for cap test", full)
	}
	capped := CFLCountUpTo(g, q, 50)
	if capped != 50 {
		t.Errorf("capped count = %d, want 50", capped)
	}
}

func TestPGEstimateSingleEdge(t *testing.T) {
	g := testGraphs["copurchase"]
	q := query.MustParse("a->b")
	if got := PGEstimate(g, q); got != float64(g.NumEdges()) {
		t.Errorf("PG single edge = %v, want %d", got, g.NumEdges())
	}
}

func TestPGEstimateTriangleIndependence(t *testing.T) {
	g := testGraphs["copurchase"]
	q := query.Q1()
	m, n := float64(g.NumEdges()), float64(g.NumVertices())
	want := m * m * m / (n * n * n)
	if got := PGEstimate(g, q); math.Abs(got-want) > 1e-6*want {
		t.Errorf("PG triangle = %v, want %v", got, want)
	}
}

func TestQError(t *testing.T) {
	if q := QError(10, 5); q != 2 {
		t.Errorf("QError(10,5) = %v", q)
	}
	if q := QError(5, 10); q != 2 {
		t.Errorf("QError(5,10) = %v", q)
	}
	if q := QError(0, 0); q != 1 {
		t.Errorf("QError(0,0) = %v", q)
	}
	if q := QError(0, 5); !math.IsInf(q, 1) {
		t.Errorf("QError(0,5) = %v", q)
	}
}
