package baseline

import (
	"math"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// PGEstimate returns the textbook System-R/PostgreSQL-style cardinality
// estimate for q on g, the q-error baseline of Appendix B: the product of
// the per-edge-relation sizes, multiplied by an independence selectivity
// of 1/|V| for every join predicate. A query with nq vertices and mq edges
// has 2*mq variable occurrences collapsing into nq variables, hence
// 2*mq - nq equality predicates:
//
//	|Q| ≈ Π_e |E_e| / |V|^(2m - n)
//
// Per-edge sizes honour the edge and endpoint labels exactly, mirroring
// PostgreSQL statistics on an indexed Edge(from,to) relation.
func PGEstimate(g *graph.Graph, q *query.Graph) float64 {
	n := g.NumVertices()
	if n == 0 || len(q.Edges) == 0 {
		return 0
	}
	counts := edgeCountsByLabels(g)
	est := 1.0
	for _, e := range q.Edges {
		key := labelTriple{e.Label, q.Vertices[e.From].Label, q.Vertices[e.To].Label}
		est *= float64(counts[key])
	}
	predicates := 2*len(q.Edges) - q.NumVertices()
	if predicates > 0 {
		est /= math.Pow(float64(n), float64(predicates))
	}
	return est
}

type labelTriple struct {
	el, sl, dl graph.Label
}

func edgeCountsByLabels(g *graph.Graph) map[labelTriple]int64 {
	counts := map[labelTriple]int64{}
	g.Edges(func(src, dst graph.VertexID, el graph.Label) bool {
		counts[labelTriple{el, g.VertexLabel(src), g.VertexLabel(dst)}]++
		return true
	})
	return counts
}

// QError returns the q-error of an estimate against the true cardinality:
// max(est/true, true/est), at least 1; estimates or truths of zero give
// +Inf unless both are zero (error 1).
func QError(est, truth float64) float64 {
	if est <= 0 && truth <= 0 {
		return 1
	}
	if est <= 0 || truth <= 0 {
		return math.Inf(1)
	}
	return math.Max(est/truth, truth/est)
}
