package baseline

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

var quickG = func() *graph.Graph {
	rng := rand.New(rand.NewSource(41))
	b := graph.NewBuilder(80)
	for v := 0; v < 80; v++ {
		b.SetVertexLabel(graph.VertexID(v), graph.Label(rng.Intn(2)))
	}
	for i := 0; i < 500; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(80)), graph.VertexID(rng.Intn(80)), graph.Label(rng.Intn(2)))
	}
	return b.MustBuild()
}()

// smallQuery generates random labelled connected queries of 3-5 vertices.
type smallQuery struct{ Q *query.Graph }

// Generate implements quick.Generator.
func (smallQuery) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 3 + rng.Intn(3)
	q := &query.Graph{}
	for i := 0; i < n; i++ {
		q.Vertices = append(q.Vertices, query.Vertex{Label: graph.Label(rng.Intn(2))})
	}
	seen := map[[2]int]bool{}
	add := func(a, b int) {
		if a == b {
			return
		}
		k := [2]int{a, b}
		if a > b {
			k = [2]int{b, a}
		}
		if seen[k] {
			return
		}
		seen[k] = true
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		q.Edges = append(q.Edges, query.Edge{From: a, To: b, Label: graph.Label(rng.Intn(2))})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
	}
	for k := 0; k < rng.Intn(n); k++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	return reflect.ValueOf(smallQuery{q})
}

// TestQuickEnginesAgree: the three independent baseline engines (BJ
// edge-at-a-time, CFL-style, and the reference backtracker) agree on
// arbitrary labelled queries — cross-validation of three separate
// implementations of the same semantics.
func TestQuickEnginesAgree(t *testing.T) {
	f := func(sq smallQuery) bool {
		q := sq.Q
		want := query.RefCount(quickG, q)
		bj, _, err := BJCount(quickG, q, BJConfig{})
		if err != nil || bj != want {
			return false
		}
		bjEager, _, err := BJCount(quickG, q, BJConfig{EagerClose: true})
		if err != nil || bjEager != want {
			return false
		}
		return CFLCount(quickG, q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPGEstimateWellFormed: the estimator never yields negatives or
// NaN on arbitrary queries.
func TestQuickPGEstimateWellFormed(t *testing.T) {
	f := func(sq smallQuery) bool {
		est := PGEstimate(quickG, sq.Q)
		return est >= 0 && est == est
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickCFLCapMonotone: capped counts never exceed the cap nor the
// true count.
func TestQuickCFLCapMonotone(t *testing.T) {
	f := func(sq smallQuery, capRaw uint16) bool {
		capN := int64(capRaw%200) + 1
		full := CFLCount(quickG, sq.Q)
		capped := CFLCountUpTo(quickG, sq.Q, capN)
		if capped > capN && capped > full {
			return false
		}
		if full <= capN {
			return capped == full
		}
		return capped <= capN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
