// Package baseline implements the comparison systems of the paper's
// evaluation: an edge-at-a-time binary-join engine standing in for Neo4j
// (Appendix D), a CFL-style subgraph matcher (Appendix C), and a
// PostgreSQL-style independence-assumption cardinality estimator
// (Appendix B). See DESIGN.md substitutions #3-#5.
package baseline

import (
	"fmt"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// BJStats profiles one edge-at-a-time evaluation.
type BJStats struct {
	// Intermediate is the total number of intermediate tuples
	// materialised across join steps.
	Intermediate int64
	// Expansions counts adjacency expansions; Filters counts edge-
	// existence checks used to close cycles.
	Expansions, Filters int64
}

// BJConfig controls the binary-join baseline.
type BJConfig struct {
	// EdgeOrder fixes the join order (indices into q.Edges); nil picks a
	// greedy connected order that expands before closing, the plan shape
	// the paper attributes to BJ-only optimizers on cyclic queries (open
	// triangles first, then closing filters).
	EdgeOrder []int
	// MaxIntermediate aborts when an intermediate relation exceeds this
	// many tuples (0 = unlimited), emulating the paper's Mm (out of
	// memory) entries.
	MaxIntermediate int64
	// EagerClose applies closing edges as soon as both endpoints are
	// bound (a smarter BJ optimizer); false postpones them to the end,
	// the open-triangle behaviour.
	EagerClose bool
}

// ErrTooLarge is returned when MaxIntermediate is exceeded.
var ErrTooLarge = fmt.Errorf("baseline: intermediate result exceeds limit")

// BJCount evaluates q on g one query edge at a time using only binary
// joins over edge lists — no multiway intersections, no sorted-list
// assumptions. This is the query-edge(s)-at-a-time approach of Section 1.
func BJCount(g *graph.Graph, q *query.Graph, cfg BJConfig) (int64, BJStats, error) {
	var stats BJStats
	order := cfg.EdgeOrder
	if order == nil {
		order = greedyEdgeOrder(q, cfg.EagerClose)
	}
	if len(order) != len(q.Edges) {
		return 0, stats, fmt.Errorf("baseline: edge order must cover all %d edges", len(q.Edges))
	}

	// Current relation: tuples over the bound vertex set.
	bound := map[int]int{} // query vertex -> slot
	var tuples [][]graph.VertexID

	first := q.Edges[order[0]]
	bound[first.From] = 0
	bound[first.To] = 1
	g.Edges(func(src, dst graph.VertexID, el graph.Label) bool {
		if el != first.Label {
			return true
		}
		if g.VertexLabel(src) != q.Vertices[first.From].Label || g.VertexLabel(dst) != q.Vertices[first.To].Label {
			return true
		}
		tuples = append(tuples, []graph.VertexID{src, dst})
		return true
	})
	stats.Intermediate += int64(len(tuples))

	for _, ei := range order[1:] {
		e := q.Edges[ei]
		fromSlot, fromBound := bound[e.From]
		toSlot, toBound := bound[e.To]
		var next [][]graph.VertexID
		switch {
		case fromBound && toBound:
			// Closing join: filter by edge existence.
			for _, t := range tuples {
				stats.Filters++
				if g.HasEdge(t[fromSlot], t[toSlot], e.Label) {
					next = append(next, t)
				}
			}
		case fromBound:
			// Expand forward.
			slot := len(bound)
			bound[e.To] = slot
			for _, t := range tuples {
				stats.Expansions++
				for _, w := range g.Neighbors(t[fromSlot], graph.Forward, e.Label, q.Vertices[e.To].Label, nil) {
					nt := make([]graph.VertexID, len(t)+1)
					copy(nt, t)
					nt[slot] = w
					next = append(next, nt)
				}
			}
		case toBound:
			// Expand backward.
			slot := len(bound)
			bound[e.From] = slot
			for _, t := range tuples {
				stats.Expansions++
				for _, w := range g.Neighbors(t[toSlot], graph.Backward, e.Label, q.Vertices[e.From].Label, nil) {
					nt := make([]graph.VertexID, len(t)+1)
					copy(nt, t)
					nt[slot] = w
					next = append(next, nt)
				}
			}
		default:
			return 0, stats, fmt.Errorf("baseline: edge order disconnects at edge %d", ei)
		}
		tuples = next
		stats.Intermediate += int64(len(tuples))
		if cfg.MaxIntermediate > 0 && int64(len(tuples)) > cfg.MaxIntermediate {
			return 0, stats, ErrTooLarge
		}
	}
	return int64(len(tuples)), stats, nil
}

// greedyEdgeOrder returns a connected edge order. With eagerClose, closing
// edges (both endpoints bound) are taken as soon as available; otherwise
// they are postponed until no expansion remains — producing the
// open-cycle-then-close plans of BJ-only systems.
func greedyEdgeOrder(q *query.Graph, eagerClose bool) []int {
	n := len(q.Edges)
	used := make([]bool, n)
	var order []int
	var boundMask query.Mask

	take := func(i int) {
		used[i] = true
		order = append(order, i)
		boundMask |= query.Bit(q.Edges[i].From) | query.Bit(q.Edges[i].To)
	}
	take(0)
	for len(order) < n {
		closing, expanding := -1, -1
		for i, e := range q.Edges {
			if used[i] {
				continue
			}
			fb := boundMask&query.Bit(e.From) != 0
			tb := boundMask&query.Bit(e.To) != 0
			switch {
			case fb && tb:
				if closing < 0 {
					closing = i
				}
			case fb || tb:
				if expanding < 0 {
					expanding = i
				}
			}
		}
		switch {
		case eagerClose && closing >= 0:
			take(closing)
		case expanding >= 0:
			take(expanding)
		case closing >= 0:
			take(closing)
		default:
			// Disconnected query (unsupported upstream); take anything to
			// terminate, BJCount will report the error.
			for i := range used {
				if !used[i] {
					take(i)
					break
				}
			}
		}
	}
	return order
}
