package baseline

import (
	"math/bits"
	"sort"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// CFLCount evaluates q on g with the CFL-style strategy of Appendix C
// (Bi et al., SIGMOD 2016): decompose the query into a dense core and a
// forest; match the core first by candidate-filtered backtracking (fewer
// matches, less independence); then *count* the forest per core match
// with postponed Cartesian products — independent subtrees contribute
// multiplicatively without being enumerated.
//
// The count it returns uses the same homomorphism semantics as the rest of
// the repository, so it is directly comparable with every other engine.
func CFLCount(g *graph.Graph, q *query.Graph) int64 {
	return CFLCountUpTo(g, q, 0)
}

// CFLCountUpTo is CFLCount with an output cap: evaluation stops once the
// count reaches limit (0 = unlimited), matching the 10^5/10^8 output caps
// of the Appendix C experiment.
func CFLCountUpTo(g *graph.Graph, q *query.Graph, limit int64) int64 {
	core := coreMask(q)
	forestChildren, order := forestStructure(q, core)

	// Candidate filters per query vertex. Under homomorphism (join)
	// semantics distinct query edges may map to the same data edge, so
	// only direction-presence degree filters are sound: a query vertex
	// with any out-edge needs a data vertex with at least one out-edge.
	hasOut := make([]bool, q.NumVertices())
	hasIn := make([]bool, q.NumVertices())
	for _, e := range q.Edges {
		hasOut[e.From] = true
		hasIn[e.To] = true
	}
	candOK := func(u int, v graph.VertexID) bool {
		if g.VertexLabel(v) != q.Vertices[u].Label {
			return false
		}
		if hasOut[u] && g.OutDegree(v) == 0 {
			return false
		}
		if hasIn[u] && g.InDegree(v) == 0 {
			return false
		}
		return true
	}

	// treeCount counts matches of the subtree rooted at query vertex u,
	// given u is matched to v (postponed Cartesian products: children are
	// independent given v). Memoised per (u, v): different core matches
	// sharing a vertex reuse the subtree count.
	memo := map[uint64]int64{}
	var treeCount func(u int, v graph.VertexID) int64
	treeCount = func(u int, v graph.VertexID) int64 {
		if len(forestChildren[u]) == 0 {
			return 1
		}
		key := uint64(u)<<32 | uint64(v)
		if c, ok := memo[key]; ok {
			return c
		}
		total := int64(1)
		for _, ce := range forestChildren[u] {
			child := ce.child
			var sum int64
			for _, w := range g.Neighbors(v, ce.dir, ce.label, q.Vertices[child].Label, nil) {
				sum += treeCount(child, w)
			}
			total *= sum
			if total == 0 {
				break
			}
		}
		memo[key] = total
		return total
	}

	// Match the core by backtracking in the given order; multiply forest
	// counts at the end of each full core match.
	coreVerts := order
	assign := make([]graph.VertexID, q.NumVertices())
	boundMask := query.Mask(0)
	var total int64

	var rec func(pos int)
	rec = func(pos int) {
		if limit > 0 && total >= limit {
			return
		}
		if pos == len(coreVerts) {
			prod := int64(1)
			for _, u := range coreVerts {
				prod *= treeCount(u, assign[u])
				if prod == 0 {
					return
				}
			}
			total += prod
			return
		}
		u := coreVerts[pos]
		cands := coreCandidates(g, q, u, assign, boundMask, candOK)
		for _, v := range cands {
			if limit > 0 && total >= limit {
				return
			}
			if !coreConsistent(g, q, u, v, assign, boundMask) {
				continue
			}
			assign[u] = v
			boundMask |= query.Bit(u)
			rec(pos + 1)
			boundMask &^= query.Bit(u)
		}
	}
	rec(0)
	if limit > 0 && total > limit {
		total = limit
	}
	return total
}

// coreMask returns the 2-core of the query (undirected view): repeatedly
// strip degree-<2 vertices. Acyclic queries have an empty 2-core; the
// densest vertex then serves as a single-vertex core.
func coreMask(q *query.Graph) query.Mask {
	n := q.NumVertices()
	alive := query.AllMask(n)
	for {
		removed := false
		for v := 0; v < n; v++ {
			if alive&query.Bit(v) == 0 {
				continue
			}
			deg := 0
			for _, e := range q.Edges {
				if e.From == v && alive&query.Bit(e.To) != 0 {
					deg++
				}
				if e.To == v && alive&query.Bit(e.From) != 0 {
					deg++
				}
			}
			if deg < 2 {
				alive &^= query.Bit(v)
				removed = true
			}
		}
		if !removed {
			break
		}
	}
	if alive == 0 {
		// Tree query: root at the max-degree vertex.
		best, bestDeg := 0, -1
		for v := 0; v < n; v++ {
			if d := q.Degree(v); d > bestDeg {
				best, bestDeg = v, d
			}
		}
		alive = query.Bit(best)
	}
	return alive
}

type forestEdge struct {
	child int
	dir   graph.Direction
	label graph.Label
}

// forestStructure assigns every non-core vertex to a parent (its unique
// path toward the core) and returns, per vertex, its forest children,
// plus a connected matching order of the core vertices.
func forestStructure(q *query.Graph, core query.Mask) (map[int][]forestEdge, []int) {
	n := q.NumVertices()
	children := map[int][]forestEdge{}
	visited := core
	frontier := core
	for visited != query.AllMask(n) {
		var next query.Mask
		for _, e := range q.Edges {
			fb, tb := query.Bit(e.From), query.Bit(e.To)
			if visited&fb != 0 && visited&tb == 0 && frontier&fb != 0 {
				if next&tb == 0 {
					children[e.From] = append(children[e.From], forestEdge{child: e.To, dir: graph.Forward, label: e.Label})
					next |= tb
				}
			} else if visited&tb != 0 && visited&fb == 0 && frontier&tb != 0 {
				if next&fb == 0 {
					children[e.To] = append(children[e.To], forestEdge{child: e.From, dir: graph.Backward, label: e.Label})
					next |= fb
				}
			}
		}
		if next == 0 {
			break // disconnected (rejected upstream)
		}
		visited |= next
		frontier = next
	}

	// Core matching order: max-degree first, then connected expansion.
	var order []int
	var mask query.Mask
	for mask != core {
		best, bestDeg := -1, -1
		for v := 0; v < n; v++ {
			if core&query.Bit(v) == 0 || mask&query.Bit(v) != 0 {
				continue
			}
			connected := mask == 0 || len(q.EdgesBetween(mask, v)) > 0
			if !connected && bits.OnesCount32(mask) > 0 {
				continue
			}
			if d := q.Degree(v); d > bestDeg {
				best, bestDeg = v, d
			}
		}
		if best < 0 {
			break
		}
		order = append(order, best)
		mask |= query.Bit(best)
	}
	return children, order
}

func coreCandidates(g *graph.Graph, q *query.Graph, u int, assign []graph.VertexID, bound query.Mask, candOK func(int, graph.VertexID) bool) []graph.VertexID {
	var best []graph.VertexID
	have := false
	for _, e := range q.Edges {
		var list []graph.VertexID
		if e.From == u && bound&query.Bit(e.To) != 0 {
			list = g.Neighbors(assign[e.To], graph.Backward, e.Label, q.Vertices[u].Label, nil)
		} else if e.To == u && bound&query.Bit(e.From) != 0 {
			list = g.Neighbors(assign[e.From], graph.Forward, e.Label, q.Vertices[u].Label, nil)
		} else {
			continue
		}
		if !have || len(list) < len(best) {
			best, have = list, true
		}
	}
	if have {
		var out []graph.VertexID
		for _, v := range best {
			if candOK(u, v) {
				out = append(out, v)
			}
		}
		return out
	}
	var out []graph.VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if candOK(u, graph.VertexID(v)) {
			out = append(out, graph.VertexID(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func coreConsistent(g *graph.Graph, q *query.Graph, u int, v graph.VertexID, assign []graph.VertexID, bound query.Mask) bool {
	for _, e := range q.Edges {
		if e.From == u && bound&query.Bit(e.To) != 0 {
			if !g.HasEdge(v, assign[e.To], e.Label) {
				return false
			}
		} else if e.To == u && bound&query.Bit(e.From) != 0 {
			if !g.HasEdge(assign[e.From], v, e.Label) {
				return false
			}
		}
	}
	return true
}
