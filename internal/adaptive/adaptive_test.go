package adaptive

import (
	"testing"

	"graphflow/internal/catalogue"
	"graphflow/internal/datagen"
	"graphflow/internal/exec"
	"graphflow/internal/graph"
	"graphflow/internal/optimizer"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

var (
	testG   = datagen.Amazon(1)
	testCat = catalogue.Build(testG, catalogue.Config{H: 3, Z: 300, MaxInstances: 200, Seed: 11})
)

// fixedWCO builds the WCO plan for q in the given order.
func fixedWCO(t testing.TB, q *query.Graph, order []int) *plan.Plan {
	t.Helper()
	var first *query.Edge
	for i := range q.Edges {
		e := q.Edges[i]
		if (e.From == order[0] && e.To == order[1]) || (e.From == order[1] && e.To == order[0]) {
			first = &e
			break
		}
	}
	if first == nil {
		t.Fatal("order does not start at an edge")
	}
	var node plan.Node = plan.NewScan(q, *first)
	for _, v := range order[2:] {
		ext, err := plan.NewExtend(q, node, v)
		if err != nil {
			t.Fatal(err)
		}
		node = ext
	}
	return &plan.Plan{Query: q, Root: node}
}

func TestAdaptable(t *testing.T) {
	q4 := query.Q4()
	p := fixedWCO(t, q4, []int{1, 2, 0, 3})
	if !Adaptable(p) {
		t.Error("diamond-X WCO plan (2 extends) should be adaptable")
	}
	tri := fixedWCO(t, query.Q1(), []int{0, 1, 2})
	if Adaptable(tri) {
		t.Error("triangle plan (1 extend) should not be adaptable")
	}
}

func TestAdaptiveMatchesFixedCounts(t *testing.T) {
	ev := &Evaluator{Graph: testG, Catalogue: testCat}
	for _, j := range []int{2, 3, 4, 5, 6} {
		q := query.Benchmark(j)
		plans, err := optimizer.EnumerateWCOPlans(q, optimizer.Options{Catalogue: testCat})
		if err != nil {
			t.Fatalf("Q%d: %v", j, err)
		}
		p := plans[0].Plan
		want, _, err := (&exec.Runner{Graph: testG}).Count(p)
		if err != nil {
			t.Fatal(err)
		}
		got, prof, err := ev.Count(p)
		if err != nil {
			t.Fatalf("Q%d adaptive: %v", j, err)
		}
		if got != want {
			t.Errorf("Q%d: adaptive count = %d, fixed = %d", j, got, want)
		}
		if prof.Matches != got {
			t.Errorf("Q%d: profile matches = %d, want %d", j, prof.Matches, got)
		}
	}
}

func TestAdaptiveRefCorrectness(t *testing.T) {
	small := datagen.CoPurchase(datagen.CoPurchaseConfig{N: 250, K: 4, Rewire: 0.25, Seed: 13})
	cat := catalogue.Build(small, catalogue.Config{H: 2, Z: 150, MaxInstances: 100, Seed: 5})
	ev := &Evaluator{Graph: small, Catalogue: cat}
	q := query.Q4()
	p := fixedWCO(t, q, []int{0, 1, 2, 3})
	got, _, err := ev.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := query.RefCount(small, q); got != want {
		t.Errorf("adaptive diamond-X = %d, reference = %d", got, want)
	}
}

func TestAdaptiveFallsBackWithoutChain(t *testing.T) {
	ev := &Evaluator{Graph: testG, Catalogue: testCat}
	p := fixedWCO(t, query.Q1(), []int{0, 1, 2})
	got, _, err := ev.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := (&exec.Runner{Graph: testG}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fallback count = %d, want %d", got, want)
	}
}

func TestAdaptiveHybridChain(t *testing.T) {
	// Q9-style: extends above a hash join are adapted; join below runs
	// fixed. Build triangles joined on a3, then two extends would be
	// needed; Q9 has one extend for a6 — use Q10 with the diamond as a
	// 2-extend chain above a join-free source instead: join triangle
	// (a4,a5,a6) with edge scan... Simplest hybrid with a >=2 E/I chain on
	// top: scan(a4->a5), extend a6, then extends a3, a2, a1 over Q10 won't
	// stay connected without a4... Use the optimizer to get any plan and
	// check adaptive agrees.
	q := query.Q10()
	p, err := optimizer.Optimize(q, optimizer.Options{Catalogue: testCat})
	if err != nil {
		t.Fatal(err)
	}
	ev := &Evaluator{Graph: testG, Catalogue: testCat}
	got, _, err := ev.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := (&exec.Runner{Graph: testG}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("adaptive hybrid = %d, fixed = %d", got, want)
	}
}

func TestAdaptiveEmitLayoutDocumented(t *testing.T) {
	// Emitted tuples start with the source layout; the chain's vertices
	// follow in per-tuple order. We verify tuple width and that all source
	// slots hold the scanned edge.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 0)
	b.AddEdge(0, 2, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(1, 3, 0)
	b.AddEdge(2, 3, 0)
	g := b.MustBuild()
	cat := catalogue.Build(g, catalogue.Config{H: 2, Z: 10, MaxInstances: 10, Seed: 1})
	q := query.Q4()
	p := fixedWCO(t, q, []int{0, 1, 2, 3})
	ev := &Evaluator{Graph: g, Catalogue: cat}
	n := 0
	_, err := ev.Run(p, func(tu []graph.VertexID) {
		n++
		if len(tu) != 4 {
			t.Errorf("tuple width = %d, want 4", len(tu))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int(query.RefCount(g, q)) {
		t.Errorf("emitted %d, want %d", n, query.RefCount(g, q))
	}
}

// TestAdaptiveBatchSizesAgree checks that batch-boundary re-estimation
// is routing-only: every batch size (including the per-tuple legacy
// cadence) must produce the same counts as the fixed executor.
func TestAdaptiveBatchSizesAgree(t *testing.T) {
	q := query.Q4()
	p := fixedWCO(t, q, []int{1, 2, 0, 3})
	want, _, err := (&exec.Runner{Graph: testG}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{-1, 1, 3, 64, 1024} {
		ev := &Evaluator{Graph: testG, Catalogue: testCat, Config: Config{BatchSize: bs}}
		got, _, err := ev.Count(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("batch size %d: adaptive count = %d, fixed = %d", bs, got, want)
		}
	}
}
