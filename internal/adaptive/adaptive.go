// Package adaptive implements the adaptive WCO plan evaluation of Section
// 6: when a plan contains a chain of two or more EXTEND/INTERSECT
// operators, the chain's query-vertex ordering is re-chosen for every
// input tuple using the tuple's actual adjacency-list sizes instead of the
// catalogue's averages.
//
// The non-adapted part of the plan (the SCAN of a WCO plan, or everything
// below the topmost E/I chain of a hybrid plan) runs on the regular
// executor; each of its output tuples is routed to the candidate ordering
// whose re-estimated i-cost is lowest (Example 6.2's re-estimation rule),
// and flows through that ordering's own operator chain with its own
// intersection cache.
package adaptive

import (
	"context"
	"fmt"
	"math"

	"graphflow/internal/catalogue"
	"graphflow/internal/exec"
	"graphflow/internal/faultinject"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
	"graphflow/internal/resource"
)

// Config controls adaptive evaluation.
type Config struct {
	// MaxOrderings caps the number of candidate orderings per adaptive
	// chain (default 48): cliques have factorially many near-identical
	// orderings with little adaptation benefit (Section 8.3's Q6 note).
	MaxOrderings int
	// Workers parallelises the non-adapted source pipeline.
	Workers int
	// HubThreshold is the store's hub bitset indexing knob (0 takes
	// graph.DefaultHubThreshold, negative means no indexes); the
	// re-estimation rule prices candidate orderings with it so adaptation
	// and the executor agree on what an intersection costs.
	HubThreshold int
	// BatchSize is the number of source tuples buffered per adaptive
	// batch. Ordering re-estimation runs once per distinct route-key run
	// within a batch (consecutive tuples that agree on every slot any
	// candidate ordering's first step reads — their re-estimates are
	// provably identical) instead of once per tuple, mirroring the
	// executor's batch-boundary amortization. 0 picks a plan-adaptive
	// size from the adapted suffix depth (exec.AdaptiveBatchSize);
	// negative values clamp to 1 (per-tuple re-estimation, the
	// pre-vectorization behavior).
	BatchSize int
	// MemBudget meters the evaluation's buffers — the source batch and
	// every step's intersection cache — alongside the source pipeline's
	// own accounting (see exec.RunConfig.MemBudget). Exhaustion stops
	// the chain at its amortized poll and surfaces as the budget's
	// structured error.
	MemBudget *resource.Budget
	// Faults is the fault-injection hook threaded to the source
	// pipeline (see exec.RunConfig.Faults).
	Faults *faultinject.Injector
}

func (c Config) withDefaults() Config {
	if c.MaxOrderings <= 0 {
		c.MaxOrderings = 48
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.BatchSize < 0 {
		c.BatchSize = 1
	}
	return c
}

// Evaluator adapts and runs plans against one graph + catalogue pair.
type Evaluator struct {
	Graph     graph.View
	Catalogue *catalogue.Catalogue
	Config    Config
}

// Adaptable reports whether p has an adaptive part: a chain of at least two
// E/I operators at the top of its driver pipeline.
func Adaptable(p *plan.Plan) bool {
	chain, _ := splitChain(p.Root)
	return len(chain) >= 2
}

// splitChain peels consecutive Extend operators off the root, returning
// them bottom-up together with the source subplan below them.
func splitChain(root plan.Node) ([]*plan.Extend, plan.Node) {
	var chain []*plan.Extend
	cur := root
	for {
		ext, ok := cur.(*plan.Extend)
		if !ok {
			break
		}
		chain = append(chain, ext)
		cur = ext.Child
	}
	// chain is top-down; reverse to bottom-up.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, cur
}

// Count evaluates p adaptively and returns the match count and profile.
// Plans without an adaptable chain fall back to fixed execution.
func (e *Evaluator) Count(p *plan.Plan) (int64, exec.Profile, error) {
	return e.CountCtx(context.Background(), p)
}

// CountCtx is Count bounded by ctx: evaluation stops promptly once ctx is
// cancelled and the partial count is returned alongside ctx's error.
func (e *Evaluator) CountCtx(ctx context.Context, p *plan.Plan) (int64, exec.Profile, error) {
	var n int64
	prof, err := e.RunCtx(ctx, p, func([]graph.VertexID) { n++ })
	return n, prof, err
}

// Run evaluates p adaptively, calling emit for every match. Tuple layout
// is the source layout followed by the chain's target vertices in the
// order the chosen QVO matched them (orderings differ per tuple, so
// callers needing vertex identities should index via the final layout
// passed to Layout).
func (e *Evaluator) Run(p *plan.Plan, emit func([]graph.VertexID)) (exec.Profile, error) {
	return e.RunCtx(context.Background(), p, emit)
}

// RunCtx is Run bounded by ctx. The source pipeline polls ctx through the
// executor's amortized check; the adaptive chains additionally poll it
// every few thousand extensions so a single source tuple with a massive
// chain fan-out cannot delay cancellation.
func (e *Evaluator) RunCtx(ctx context.Context, p *plan.Plan, emit func([]graph.VertexID)) (exec.Profile, error) {
	cfg := e.Config.withDefaults()
	if err := p.Validate(); err != nil {
		return exec.Profile{}, err
	}
	chain, source := splitChain(p.Root)
	runner := &exec.Runner{Graph: e.Graph, Workers: cfg.Workers, MemBudget: cfg.MemBudget, Faults: cfg.Faults}
	if len(chain) < 2 {
		return runner.RunPlanCtx(ctx, p, emit)
	}
	ad, err := newAdaptiveChain(e.Graph, e.Catalogue, p.Query, source, chain, cfg)
	if err != nil {
		return exec.Profile{}, err
	}
	ad.ctx = ctx
	ad.mem = cfg.MemBudget
	// Drive the source; adaptation is stateful per ordering, so the source
	// must feed tuples sequentially. Tuples buffer into a columnar batch
	// and the chain consumes it at batch boundaries.
	srcRunner := &exec.Runner{Graph: e.Graph, Workers: cfg.Workers, MemBudget: cfg.MemBudget, Faults: cfg.Faults}
	prof, err := srcRunner.RunSubplanCtx(ctx, source, func(t []graph.VertexID) {
		ad.process(t, emit)
	})
	// Drain the tail batch (a no-op when cancelled).
	ad.flush(emit)
	// Merge the chain's counters before returning so cancellation still
	// reports the partial profile (matching the executor's contract).
	// Source outputs were counted as Matches by RunSubplan; they are
	// intermediate here.
	prof.Intermediate += prof.Matches
	prof.Matches = 0
	ad.profile.Kernels.Add(ad.it.Counters)
	ad.it.Counters = graph.KernelCounters{}
	prof.Add(ad.profile)
	if err != nil {
		return prof, err
	}
	// The chain may have latched budget exhaustion after the source
	// pipeline finished (mid-flush); surface it like the executor does.
	if berr := cfg.MemBudget.Err(); berr != nil {
		return prof, berr
	}
	if ctx != nil && ctx.Err() != nil {
		return prof, ctx.Err()
	}
	return prof, nil
}

// ordering is one candidate QVO for the adaptive chain, with its compiled
// steps and static estimates.
type ordering struct {
	vertices []int  // remaining query vertices in match order
	steps    []step // one per vertex
}

// step is one E/I level of an ordering.
type step struct {
	target      int
	targetLabel graph.Label
	descs       []desc
	estSizes    []float64 // catalogue average list sizes per desc
	estICost    float64   // EffectiveICost(estSizes) under the hub threshold
	estMu       float64
	// Per-step intersection cache.
	cacheKey   []graph.VertexID
	cacheValid bool
	cacheBuf   []graph.VertexID
	scratch    []graph.VertexID
	// meteredCap is the cache/scratch capacity (vertices) already charged
	// to the memory budget; only growth beyond it is reserved.
	meteredCap int
}

type desc struct {
	slot  int // slot in the evolving tuple
	dir   graph.Direction
	label graph.Label
}

type adaptiveChain struct {
	g      graph.View
	q      *query.Graph
	orders []*ordering
	width  int // source tuple width
	tuple  []graph.VertexID
	lists  [][]graph.VertexID
	bits   []*graph.Bitset
	// Source-tuple batching: tuples accumulate row-major (stride width)
	// and the chain drains them per batch, re-picking the ordering only
	// at route-key run boundaries.
	batchCap   int
	batchBuf   []graph.VertexID
	batchRows  int
	routeSlots []int // union of every ordering's first-step descriptor slots
	lastKey    []graph.VertexID
	lastValid  bool
	lastBest   int
	// it is the degree-adaptive intersection engine shared by every
	// ordering's steps; its kernel counters merge into the profile when
	// the run finishes.
	it           graph.Intersector
	actualSizes  []float64
	hubThreshold int
	// nWords is the graph's bitset word count, for the bitset-candidate
	// pre-check (mirrors the executor's E/I stage).
	nWords  int
	profile exec.Profile
	// ctx, when non-nil, bounds the chain's own extension work; cancelled
	// short-circuits runStep so in-flight recursion unwinds quickly and
	// later source tuples become no-ops while the source pipeline stops.
	ctx             context.Context
	cancelled       bool
	cancelCountdown int
	// mem meters the chain's buffers (source batch, per-step caches)
	// against the query's memory budget; exhaustion — latched here or by
	// any other allocator sharing the budget — cancels the chain at its
	// amortized poll. meteredBatchCap tracks the batch capacity already
	// charged, so the steady state pays one compare per buffered tuple.
	mem             *resource.Budget
	meteredBatchCap int
}

// cancelCheckInterval matches the executor's amortized polling cadence.
const cancelCheckInterval = 4096

func newAdaptiveChain(g graph.View, cat *catalogue.Catalogue, q *query.Graph, source plan.Node, chain []*plan.Extend, cfg Config) (*adaptiveChain, error) {
	baseMask := plan.CoverMask(source)
	baseOut := source.Out()
	var remaining []int
	for _, ext := range chain {
		remaining = append(remaining, ext.TargetVertex)
	}
	batchCap := cfg.BatchSize
	if batchCap == 0 {
		// Shallow adapted suffixes re-estimate rarely, so large buffers only
		// add cache pressure; deep ones amortize across more stages.
		batchCap = exec.AdaptiveBatchSize(len(chain))
	}
	ad := &adaptiveChain{
		g: g, q: q, width: len(baseOut), hubThreshold: cfg.HubThreshold,
		nWords:   (g.NumVertices() + 63) / 64,
		batchCap: batchCap,
	}

	// Enumerate connected orderings of the remaining vertices.
	var orderings [][]int
	var rec func(cur []int, mask query.Mask)
	rec = func(cur []int, mask query.Mask) {
		if len(orderings) >= cfg.MaxOrderings {
			return
		}
		if len(cur) == len(remaining) {
			orderings = append(orderings, append([]int(nil), cur...))
			return
		}
		for _, v := range remaining {
			if mask&query.Bit(v) != 0 {
				continue
			}
			if len(q.EdgesBetween(mask, v)) == 0 {
				continue
			}
			rec(append(cur, v), mask|query.Bit(v))
		}
	}
	rec(nil, baseMask)
	if len(orderings) == 0 {
		return nil, fmt.Errorf("adaptive: no connected orderings")
	}

	for _, ov := range orderings {
		o := &ordering{vertices: ov}
		slotOf := map[int]int{}
		for s, v := range baseOut {
			slotOf[v] = s
		}
		mask := baseMask
		width := len(baseOut)
		for _, v := range ov {
			st := step{target: v, targetLabel: q.Vertices[v].Label}
			// Build descriptors and fetch catalogue estimates.
			base, orig := q.Project(mask)
			newIdx := map[int]int{}
			for ni, ovx := range orig {
				newIdx[ovx] = ni
			}
			targetIdx := base.NumVertices()
			var extEdges []query.Edge
			for _, e := range q.EdgesBetween(mask, v) {
				if e.From == v {
					st.descs = append(st.descs, desc{slot: slotOf[e.To], dir: graph.Backward, label: e.Label})
					extEdges = append(extEdges, query.Edge{From: targetIdx, To: newIdx[e.To], Label: e.Label})
				} else {
					st.descs = append(st.descs, desc{slot: slotOf[e.From], dir: graph.Forward, label: e.Label})
					extEdges = append(extEdges, query.Edge{From: newIdx[e.From], To: targetIdx, Label: e.Label})
				}
			}
			sizes, mu, _ := cat.ExtensionStats(base, extEdges, st.targetLabel)
			st.estSizes = sizes
			st.estICost = catalogue.EffectiveICost(sizes, cfg.HubThreshold)
			st.estMu = mu
			o.steps = append(o.steps, st)
			slotOf[v] = width
			width++
			mask |= query.Bit(v)
		}
		ad.orders = append(ad.orders, o)
	}
	// routeSlots is every tuple slot any ordering's first step reads: two
	// tuples agreeing on all of them re-estimate identically, so a run of
	// them shares one re-estimation (and one routing decision).
	seen := map[int]bool{}
	for _, o := range ad.orders {
		for _, d := range o.steps[0].descs {
			if !seen[d.slot] {
				seen[d.slot] = true
				ad.routeSlots = append(ad.routeSlots, d.slot)
			}
		}
	}
	return ad, nil
}

// process buffers one source tuple, draining the batch when it fills.
func (ad *adaptiveChain) process(t []graph.VertexID, emit func([]graph.VertexID)) {
	if ad.cancelled {
		return
	}
	ad.batchBuf = append(ad.batchBuf, t...)
	if c := cap(ad.batchBuf); c > ad.meteredBatchCap {
		ad.mem.Reserve(int64(c-ad.meteredBatchCap) * 4)
		ad.meteredBatchCap = c
	}
	ad.batchRows++
	if ad.batchRows >= ad.batchCap {
		ad.flush(emit)
	}
}

// sameRoute reports whether t agrees with the previous routing key on
// every route slot.
func (ad *adaptiveChain) sameRoute(t []graph.VertexID) bool {
	for i, s := range ad.routeSlots {
		if ad.lastKey[i] != t[s] {
			return false
		}
	}
	return true
}

// flush drains the buffered source batch through the chain: the
// candidate orderings are re-estimated once per distinct route-key run
// (Example 6.2's rule, amortized across the run), the batch is the
// cancellation poll granularity, and each tuple then flows through the
// chosen ordering's own operator chain.
func (ad *adaptiveChain) flush(emit func([]graph.VertexID)) {
	rows := ad.batchRows
	ad.batchRows = 0
	if rows == 0 || ad.cancelled {
		ad.batchBuf = ad.batchBuf[:0]
		return
	}
	if ad.ctx != nil && ad.ctx.Err() != nil {
		ad.cancelled = true
		ad.batchBuf = ad.batchBuf[:0]
		return
	}
	w := ad.width
	for r := 0; r < rows && !ad.cancelled; r++ {
		t := ad.batchBuf[r*w : (r+1)*w]
		if !ad.lastValid || !ad.sameRoute(t) {
			best, bestCost := 0, math.Inf(1)
			for i, o := range ad.orders {
				if c := ad.reestimate(o, t); c < bestCost {
					best, bestCost = i, c
				}
			}
			ad.lastBest = best
			ad.lastKey = ad.lastKey[:0]
			for _, s := range ad.routeSlots {
				ad.lastKey = append(ad.lastKey, t[s])
			}
			ad.lastValid = true
		}
		ad.tuple = append(ad.tuple[:0], t...)
		ad.runStep(ad.orders[ad.lastBest], 0, emit)
	}
	ad.batchBuf = ad.batchBuf[:0]
}

// reestimate recomputes the ordering's i-cost for this tuple: the first
// step's list sizes are replaced by the tuple's actual adjacency-list
// sizes, and its µ is rescaled by the actual/estimated size ratios
// (Example 6.2); later steps keep catalogue estimates.
func (ad *adaptiveChain) reestimate(o *ordering, t []graph.VertexID) float64 {
	first := &o.steps[0]
	muScale := 1.0
	ad.actualSizes = ad.actualSizes[:0]
	for i, d := range first.descs {
		actual := float64(ad.g.Degree(t[d.slot], d.dir, d.label, first.targetLabel))
		ad.actualSizes = append(ad.actualSizes, actual)
		if est := first.estSizes[i]; est > 0 {
			muScale *= actual / est
		} else if actual == 0 {
			muScale = 0
		}
	}
	// The first step is priced from the tuple's actual list sizes, the
	// later ones from the catalogue averages — both through the
	// hub-aware effective i-cost the executor's kernels realise.
	cost := catalogue.EffectiveICost(ad.actualSizes, ad.hubThreshold)
	card := first.estMu * muScale
	for s := 1; s < len(o.steps); s++ {
		st := &o.steps[s]
		cost += card * st.estICost
		card *= st.estMu
	}
	return cost
}

// runStep pushes the current tuple through step s of ordering o.
func (ad *adaptiveChain) runStep(o *ordering, s int, emit func([]graph.VertexID)) {
	ad.cancelCountdown--
	if ad.cancelCountdown <= 0 {
		ad.cancelCountdown = cancelCheckInterval
		if ad.mem.Exceeded() {
			ad.cancelled = true
		}
		if ad.ctx != nil && ad.ctx.Err() != nil {
			ad.cancelled = true
		}
	}
	if ad.cancelled {
		return
	}
	if s == len(o.steps) {
		ad.profile.Matches++
		if emit != nil {
			emit(ad.tuple)
		}
		return
	}
	st := &o.steps[s]
	// Intersection cache per step (consecutive tuples routed to the same
	// ordering still benefit).
	hit := false
	if st.cacheValid && len(st.cacheKey) == len(st.descs) {
		hit = true
		for i, d := range st.descs {
			if st.cacheKey[i] != ad.tuple[d.slot] {
				hit = false
				break
			}
		}
	}
	var ext []graph.VertexID
	if hit {
		ad.profile.CacheHits++
		ext = st.cacheBuf
	} else {
		st.cacheKey = st.cacheKey[:0]
		ad.lists = ad.lists[:0]
		for _, d := range st.descs {
			st.cacheKey = append(st.cacheKey, ad.tuple[d.slot])
			list := ad.g.Neighbors(ad.tuple[d.slot], d.dir, d.label, st.targetLabel, nil)
			ad.profile.ICost += int64(len(list))
			ad.lists = append(ad.lists, list)
		}
		if len(ad.lists) == 1 {
			st.cacheBuf = append(st.cacheBuf[:0], ad.lists[0]...)
		} else {
			// Fetch hub bitsets only for the lists the shared pre-filter
			// says could win a bitset kernel.
			ad.bits = ad.bits[:0]
			if floor, ok := graph.BitsetFetchFloor(ad.lists, ad.nWords); ok {
				for i, d := range st.descs {
					var bs *graph.Bitset
					if len(ad.lists[i]) >= floor {
						bs = ad.g.NeighborBitset(ad.tuple[d.slot], d.dir, d.label, st.targetLabel)
					}
					ad.bits = append(ad.bits, bs)
				}
			}
			st.cacheBuf, st.scratch = ad.it.IntersectK(ad.lists, ad.bits, st.cacheBuf[:0], st.scratch)
		}
		// Charge cache growth (capacity deltas only; a warm cache pays one
		// compare). Exhaustion is observed at the amortized poll above.
		if c := cap(st.cacheBuf) + cap(st.scratch); c > st.meteredCap {
			ad.mem.Reserve(int64(c-st.meteredCap) * 4)
			st.meteredCap = c
		}
		st.cacheValid = true
		ext = st.cacheBuf
	}
	base := len(ad.tuple)
	for i := 0; i < len(ext); i++ {
		ad.tuple = append(ad.tuple[:base], ext[i])
		if s < len(o.steps)-1 {
			ad.profile.Intermediate++
		}
		ad.runStep(o, s+1, emit)
		// Deeper steps may have clobbered cacheBuf? No: each step owns its
		// buffer, and recursion only touches deeper steps' buffers.
	}
	ad.tuple = ad.tuple[:base]
}
