package adaptive

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphflow/internal/catalogue"
	"graphflow/internal/exec"
	"graphflow/internal/graph"
	"graphflow/internal/optimizer"
	"graphflow/internal/query"
)

var (
	quickG = func() *graph.Graph {
		rng := rand.New(rand.NewSource(31))
		b := graph.NewBuilder(100)
		for i := 0; i < 600; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(100)), graph.VertexID(rng.Intn(100)), 0)
		}
		return b.MustBuild()
	}()
	quickCat = catalogue.Build(quickG, catalogue.Config{H: 2, Z: 100, MaxInstances: 80, Seed: 3})
)

// adaptableQuery generates random 4-5 vertex connected queries (so WCO
// plans have chains of >=2 E/I operators).
type adaptableQuery struct{ Q *query.Graph }

// Generate implements quick.Generator.
func (adaptableQuery) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 4 + rng.Intn(2)
	q := &query.Graph{}
	for i := 0; i < n; i++ {
		q.Vertices = append(q.Vertices, query.Vertex{})
	}
	seen := map[[2]int]bool{}
	add := func(a, b int) {
		if a == b {
			return
		}
		k := [2]int{a, b}
		if a > b {
			k = [2]int{b, a}
		}
		if seen[k] {
			return
		}
		seen[k] = true
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		q.Edges = append(q.Edges, query.Edge{From: a, To: b})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
	}
	for k := 0; k < 1+rng.Intn(n); k++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	return reflect.ValueOf(adaptableQuery{q})
}

// TestQuickAdaptiveAlwaysMatchesFixed: per-tuple ordering changes never
// change results, for arbitrary queries and every enumerated WCO plan.
func TestQuickAdaptiveAlwaysMatchesFixed(t *testing.T) {
	ev := &Evaluator{Graph: quickG, Catalogue: quickCat}
	f := func(aq adaptableQuery) bool {
		plans, err := optimizer.EnumerateWCOPlans(aq.Q, optimizer.Options{Catalogue: quickCat})
		if err != nil || len(plans) == 0 {
			return false
		}
		want, _, err := (&exec.Runner{Graph: quickG}).Count(plans[0].Plan)
		if err != nil {
			return false
		}
		// Check up to three plans across the cost range.
		idxs := []int{0, len(plans) / 2, len(plans) - 1}
		for _, i := range idxs {
			got, _, err := ev.Count(plans[i].Plan)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickAdaptiveCapOne: with a single candidate ordering the adaptive
// evaluator degenerates to fixed execution and must still be correct.
func TestQuickAdaptiveCapOne(t *testing.T) {
	ev := &Evaluator{Graph: quickG, Catalogue: quickCat, Config: Config{MaxOrderings: 1}}
	f := func(aq adaptableQuery) bool {
		plans, err := optimizer.EnumerateWCOPlans(aq.Q, optimizer.Options{Catalogue: quickCat})
		if err != nil || len(plans) == 0 {
			return false
		}
		want := query.RefCount(quickG, aq.Q)
		got, _, err := ev.Count(plans[0].Plan)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
