package resource

import (
	"errors"
	"sync"
	"testing"
)

func TestNilBudgetIsUnmetered(t *testing.T) {
	var b *Budget
	if !b.Reserve(1 << 40) {
		t.Error("nil budget refused a reservation")
	}
	if b.Exceeded() {
		t.Error("nil budget reports exceeded")
	}
	if err := b.Err(); err != nil {
		t.Errorf("nil budget Err = %v", err)
	}
	b.Close() // must not panic
}

func TestPerQueryLimit(t *testing.T) {
	b := NewBudget(100, nil)
	if !b.Reserve(60) || !b.Reserve(40) {
		t.Fatal("reservations within the limit refused")
	}
	if b.Exceeded() {
		t.Fatal("exceeded latched before the limit was crossed")
	}
	if b.Reserve(1) {
		t.Fatal("reservation past the limit accepted")
	}
	if !b.Exceeded() {
		t.Fatal("exceeded not latched")
	}
	// The failed claim must have been rolled back.
	if got := b.Used(); got != 100 {
		t.Errorf("Used = %d after rollback, want 100", got)
	}
	// Sticky: even a tiny reservation now fails.
	if b.Reserve(0) {
		t.Error("Reserve(0) on an exceeded budget reported ok")
	}
	var be *BudgetError
	err := b.Err()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err = %v, want ErrBudgetExceeded via Is", err)
	}
	if !errors.As(err, &be) || be.Limit != 100 || be.Global {
		t.Errorf("Err = %+v, want per-query BudgetError with Limit 100", err)
	}
}

func TestGovernorCeiling(t *testing.T) {
	gov := NewGovernor(150)
	a := NewBudget(0, gov)
	b := NewBudget(0, gov)
	if !a.Reserve(100) {
		t.Fatal("first reservation refused")
	}
	if b.Reserve(100) {
		t.Fatal("reservation past the global ceiling accepted")
	}
	var be *BudgetError
	if err := b.Err(); !errors.As(err, &be) || !be.Global {
		t.Fatalf("Err = %v, want Global BudgetError", b.Err())
	}
	if a.Exceeded() {
		t.Error("sibling budget was poisoned by the governor abort")
	}
	if got := gov.InUse(); got != 100 {
		t.Errorf("governor InUse = %d, want 100 (failed claim rolled back)", got)
	}
	// Close returns the pool; a second Close must not double-release.
	a.Close()
	a.Close()
	b.Close()
	if got := gov.InUse(); got != 0 {
		t.Errorf("governor InUse = %d after Close, want 0", got)
	}
	// With headroom back, a fresh budget reserves fine.
	c := NewBudget(0, gov)
	defer c.Close()
	if !c.Reserve(150) {
		t.Error("reservation refused after pool was returned")
	}
}

func TestConcurrentReserveAccounting(t *testing.T) {
	gov := NewGovernor(0) // unlimited: pure accounting
	b := NewBudget(0, gov)
	const goroutines, per, n = 8, 1000, 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Reserve(n)
			}
		}()
	}
	wg.Wait()
	want := int64(goroutines * per * n)
	if got := b.Used(); got != want {
		t.Errorf("Used = %d, want %d", got, want)
	}
	if got := gov.InUse(); got != want {
		t.Errorf("governor InUse = %d, want %d", got, want)
	}
	b.Close()
	if got := gov.InUse(); got != 0 {
		t.Errorf("governor InUse = %d after Close, want 0", got)
	}
}

func TestReserveAllocFree(t *testing.T) {
	gov := NewGovernor(1 << 30)
	b := NewBudget(1<<30, gov)
	defer b.Close()
	if allocs := testing.AllocsPerRun(100, func() {
		b.Reserve(64)
		b.Exceeded()
	}); allocs != 0 {
		t.Errorf("Reserve+Exceeded allocated %v per op, want 0", allocs)
	}
}
