// Package resource implements per-query memory budgets and the
// process-wide governor that apportions a global ceiling across
// in-flight queries.
//
// A Budget meters the real allocators of one query — hash-join build
// tables, factorized extension-set caches, batch checkouts from worker
// pools, adaptive buffers — via Reserve calls at the allocation sites.
// Reserve never blocks and never allocates: it adds to two atomic
// counters (the query's own and, when a Governor is attached, the
// process pool) and latches a sticky exceeded flag the engine's
// amortized //gf:pollpoint checks observe. The query then unwinds
// through its normal early-termination machinery and surfaces a
// structured *BudgetError wrapping ErrBudgetExceeded, instead of the
// process OOMing.
//
// Accounting is intentionally coarse (bytes of tuple storage, not
// malloc-exact): the point is a bounded blast radius per query under a
// shared ceiling, not an allocator shadow. Reservations are returned
// wholesale by Close when the query finishes — per-site releases would
// buy precision the abort check does not need at the cost of hot-path
// traffic on the shared pool.
package resource

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrBudgetExceeded is the sentinel wrapped by every budget abort.
// Callers classify with errors.Is(err, resource.ErrBudgetExceeded).
var ErrBudgetExceeded = errors.New("resource: query memory budget exceeded")

// BudgetError is the structured budget-abort error: which ceiling was
// hit and how much had been reserved when it was.
type BudgetError struct {
	// Limit is the per-query ceiling in bytes (0 when only the global
	// ceiling was hit).
	Limit int64
	// Reserved is the query's reserved bytes at abort time.
	Reserved int64
	// Global reports that the process-wide governor pool, not the
	// per-query limit, was exhausted.
	Global bool
}

func (e *BudgetError) Error() string {
	if e.Global {
		return fmt.Sprintf("resource: query memory budget exceeded: global ceiling exhausted with %d bytes reserved by this query", e.Reserved)
	}
	return fmt.Sprintf("resource: query memory budget exceeded: %d bytes reserved, limit %d", e.Reserved, e.Limit)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) hold.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Governor is the process-wide memory pool. Budgets attached to it
// reserve from the shared ceiling first-come-first-served; a query that
// cannot get its next reservation aborts (Global=true) even if its own
// per-query limit still has headroom.
type Governor struct {
	limit int64
	used  atomic.Int64
}

// NewGovernor returns a governor with the given global ceiling in
// bytes. limit <= 0 means unlimited (the governor only tracks usage).
func NewGovernor(limit int64) *Governor {
	return &Governor{limit: limit}
}

// Limit reports the global ceiling (0 = unlimited).
func (g *Governor) Limit() int64 {
	if g == nil {
		return 0
	}
	return g.limit
}

// InUse reports the bytes currently reserved across all live budgets.
func (g *Governor) InUse() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// reserve claims n bytes from the pool, reporting false (with the claim
// rolled back) when the ceiling would be crossed.
func (g *Governor) reserve(n int64) bool {
	if g == nil {
		return true
	}
	if used := g.used.Add(n); g.limit > 0 && used > g.limit {
		g.used.Add(-n)
		return false
	}
	return true
}

// release returns n bytes to the pool.
func (g *Governor) release(n int64) {
	if g != nil && n != 0 {
		g.used.Add(-n)
	}
}

// Budget is one query's memory allowance. The zero value is unusable;
// a nil *Budget is valid everywhere and means "unmetered". Reserve and
// Exceeded are safe for concurrent use by the query's workers.
type Budget struct {
	limit    int64
	gov      *Governor
	used     atomic.Int64
	exceeded atomic.Bool
	global   atomic.Bool // the abort was the governor's, not ours
	closed   atomic.Bool
}

// NewBudget returns a budget with the given per-query ceiling in bytes
// (<= 0 means no per-query limit) drawing on gov (nil means no global
// ceiling). A budget with neither limit still meters usage, which keeps
// the threading uniform; callers that want zero overhead pass a nil
// *Budget instead.
func NewBudget(limit int64, gov *Governor) *Budget {
	return &Budget{limit: limit, gov: gov}
}

// Reserve claims n more bytes for the query. It reports false — and
// latches the sticky exceeded state — when the per-query or global
// ceiling is crossed; the claim that crossed a ceiling is rolled back
// so accounting stays exact for the survivors. Reserving on an already
// exceeded budget reports false immediately. n <= 0 is a no-op.
func (b *Budget) Reserve(n int64) bool {
	if b == nil {
		return true
	}
	if n <= 0 {
		return !b.exceeded.Load()
	}
	if b.exceeded.Load() {
		return false
	}
	if used := b.used.Add(n); b.limit > 0 && used > b.limit {
		b.used.Add(-n)
		b.exceeded.Store(true)
		return false
	}
	if !b.gov.reserve(n) {
		b.used.Add(-n)
		b.global.Store(true)
		b.exceeded.Store(true)
		return false
	}
	return true
}

// Exceeded reports whether any Reserve has failed. It is the cheap
// (single atomic load) check the engine's pollpoints use.
func (b *Budget) Exceeded() bool {
	return b != nil && b.exceeded.Load()
}

// Used reports the bytes currently reserved by the query.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Limit reports the per-query ceiling (0 = none).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Err returns the structured abort error when the budget has been
// exceeded, nil otherwise.
func (b *Budget) Err() error {
	if b == nil || !b.exceeded.Load() {
		return nil
	}
	return &BudgetError{Limit: b.limit, Reserved: b.used.Load(), Global: b.global.Load()}
}

// Close returns every reserved byte to the governor. Idempotent; the
// budget must not be reserved against afterwards. Nil-safe.
func (b *Budget) Close() {
	if b == nil || !b.closed.CompareAndSwap(false, true) {
		return
	}
	b.gov.release(b.used.Load())
}
