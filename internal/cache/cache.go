// Package cache provides a sharded, size-bounded, LRU-evicting map used
// by the DB to memoise compiled query plans keyed by canonical pattern.
// All operations are safe for concurrent use; sharding keeps lock
// contention low when many goroutines plan queries at once.
package cache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// numShards is the fixed shard count; a power of two so the hash can be
// masked. 16 shards keep contention negligible up to hundreds of
// concurrent queriers while costing a few hundred bytes when idle.
const numShards = 16

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Evictions counts entries dropped to respect the size bound.
	Evictions int64
	// Entries is the current number of cached values.
	Entries int
}

// Cache is a sharded string-keyed LRU cache holding values of type V.
type Cache[V any] struct {
	shards   [numShards]shard[V]
	perShard int
	seed     maphash.Seed

	hits, misses, evictions atomic.Int64
}

type shard[V any] struct {
	mu      sync.Mutex
	entries map[string]*list.Element // value: *entry[V]
	order   *list.List               // front = most recently used
}

type entry[V any] struct {
	key string
	val V
}

// New returns a cache bounded to at most capacity entries (rounded up to
// a multiple of the shard count; minimum one entry per shard).
func New[V any](capacity int) *Cache[V] {
	per := (capacity + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache[V]{perShard: per, seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[maphash.String(c.seed, key)&(numShards-1)]
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	s.order.MoveToFront(el)
	v := el.Value.(*entry[V]).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores val under key, evicting the shard's least recently used
// entry if the shard is full. Storing an existing key refreshes its value
// and recency.
func (c *Cache[V]) Put(key string, val V) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*entry[V]).val = val
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	if s.order.Len() >= c.perShard {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*entry[V]).key)
			c.evictions.Add(1)
		}
	}
	s.entries[key] = s.order.PushFront(&entry[V]{key: key, val: val})
	s.mu.Unlock()
}

// Clear drops every entry, returning how many were removed (counted as
// evictions). The DB calls it on graph-epoch bumps: epoch-versioned keys
// mean old entries can never be looked up again, so dropping them
// eagerly releases the snapshots they pin instead of waiting for LRU
// aging.
func (c *Cache[V]) Clear() int {
	removed := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		removed += s.order.Len()
		s.entries = make(map[string]*list.Element)
		s.order.Init()
		s.mu.Unlock()
	}
	c.evictions.Add(int64(removed))
	return removed
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
