package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int](64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d/%v, want 1/true", v, ok)
	}
	c.Put("a", 3) // refresh
	if v, _ := c.Get("a"); v != 3 {
		t.Fatalf("Get(a) after refresh = %d, want 3", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

func TestSizeBound(t *testing.T) {
	const capacity = 32
	c := New[int](capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	// Each shard is bounded to capacity/numShards entries, so the total
	// can never exceed capacity regardless of key distribution.
	if n := c.Len(); n > capacity {
		t.Fatalf("Len = %d exceeds capacity %d", n, capacity)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions after overfilling")
	}
}

func TestLRUEviction(t *testing.T) {
	// One entry per shard: inserting two keys landing in the same shard
	// must evict the older, keeping the newer.
	c := New[int](1)
	// Find two keys in the same shard.
	shardOf := func(k string) *shard[int] { return c.shardFor(k) }
	base := "k0"
	var collide string
	for i := 1; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if shardOf(k) == shardOf(base) {
			collide = k
			break
		}
	}
	c.Put(base, 1)
	c.Put(collide, 2)
	if _, ok := c.Get(base); ok {
		t.Fatalf("%q should have been evicted", base)
	}
	if v, ok := c.Get(collide); !ok || v != 2 {
		t.Fatalf("%q missing after eviction of older entry", collide)
	}
}

func TestLRURecency(t *testing.T) {
	// Capacity two per shard; touching the older key should make the
	// middle key the eviction victim.
	c := New[int](2 * numShards)
	var keys []string
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("r%d", i)
		if c.shardFor(k) == c.shardFor("r-base") {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 0)
	c.Put(keys[1], 1)
	c.Get(keys[0]) // refresh 0; 1 becomes LRU
	c.Put(keys[2], 2)
	if _, ok := c.Get(keys[1]); ok {
		t.Fatalf("%q should have been evicted as LRU", keys[1])
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatalf("%q was refreshed and must survive", keys[0])
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%200)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("corrupt value")
					return
				}
				c.Put(k, i)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}
