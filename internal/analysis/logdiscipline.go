package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Logdiscipline bans the legacy stdlib "log" package module-wide in
// favor of internal/logx (the process-wide log/slog spine): a stray
// log.Printf bypasses the -log-format text|json decision and breaks
// downstream log ingestion, and log.Fatal skips the graceful-drain
// path. The println/print builtins are flagged too — they are debug
// leftovers by definition. log/slog itself is fine; internal/logx is
// the one place allowed to decide how records are rendered.
var Logdiscipline = &Analyzer{
	Name: "logdiscipline",
	Doc:  `the stdlib "log" package and println/print builtins are banned; log through internal/logx (log/slog)`,
	Run:  runLogdiscipline,
}

func runLogdiscipline(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "log" {
					report(imp.Pos(), `import of "log" is banned; log through internal/logx (log/slog)`)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.SelectorExpr:
					if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok &&
						fn.Pkg() != nil && fn.Pkg().Path() == "log" {
						report(call.Pos(), "call to log.%s; use internal/logx (log/slog) instead", fn.Name())
					}
				case *ast.Ident:
					if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok &&
						(b.Name() == "println" || b.Name() == "print") {
						report(call.Pos(), "%s builtin left in; use internal/logx (log/slog)", b.Name())
					}
				}
				return true
			})
		}
	}
}
