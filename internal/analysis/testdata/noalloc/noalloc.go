// Package sandbox seeds one violation of every construct the noalloc
// analyzer flags, plus the compliant idioms it must stay quiet on.
package sandbox

import "fmt"

type payload struct{ a, b int }

type sentinel struct{}

type view interface {
	degree(v int) int
}

var global any

//gf:noalloc
func constructs(n int) {
	_ = make([]int, n) // want "make allocates"
	_ = new(payload)   // want "new allocates"
	_ = []int{1, 2, 3} // want "slice literal allocates"
	_ = map[int]int{}  // want "map literal allocates"
	_ = &payload{a: 1} // want "address-taken composite literal allocates"
	f := func() {}     // want "function literal allocates a closure"
	f()
	go noop() // want "go statement allocates a goroutine"
}

//gf:noalloc
func values(x int, s string, bs []byte) {
	_ = s + s       // want "string concatenation allocates"
	_ = string(bs)  // want "conversion to string allocates"
	_ = []byte(s)   // want "string to slice conversion allocates"
	global = x      // want "interface boxing of int"
	fmt.Println(&x) // want "call to fmt.Println allocates"
}

//gf:noalloc
func appends(xs, ys []int) []int {
	xs = append(xs, 1)     // amortized self-append: allowed
	xs = append(xs[:0], 2) // resliced self-append: allowed
	zs := append(ys, 3)    // want "append result does not feed back"
	_ = zs
	return xs
}

//gf:noalloc
func root() {
	helper()
}

func helper() {
	_ = new(int) // want "new allocates in helper"
}

// values flowing through a plain struct literal stay on the stack.
//
//gf:noalloc
func structValue(a, b int) payload {
	return payload{a: a, b: b}
}

// A guarded warm-up growth is waived line by line, with a reason.
//
//gf:noalloc
func warm(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //gf:allowalloc one-time warm-up growth, amortized across runs
	}
	return buf[:n]
}

// A cold branch of a hot caller is pruned from the traversal.
//
//gf:allowalloc hub-split side path, parallel runs only
func coldSplit() []int {
	return make([]int, 64)
}

//gf:noalloc
func hotCaller(split bool) {
	if split {
		coldSplit()
	}
}

// A function-level waiver without a reason is itself a finding.
//
//gf:allowalloc
func badWaiver() { // want "//gf:allowalloc on badWaiver needs a reason"
	_ = make([]int, 1)
}

//gf:noalloc
func reachesBadWaiver() {
	badWaiver()
}

// Zero-size sentinel panics (the stopRun unwind idiom) are exempt;
// boxing a sized value into panic is not.
//
//gf:noalloc
func panics(x int, bad bool) {
	if !bad {
		panic(sentinel{})
	}
	panic(x) // want "interface boxing of int"
}

// Interface-method calls are a traversal boundary, not a finding.
//
//gf:noalloc
func throughInterface(g view, v int) int {
	return g.degree(v)
}

func noop() {}
