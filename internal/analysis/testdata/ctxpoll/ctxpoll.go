// Package sandbox seeds stage loops that do and do not reach a
// cancellation poll, mirroring the executor's pushBatch stage shape.
package sandbox

type batch struct{ n int }

// poll stands in for the executor's pollCancel.
//
//gf:pollpoint
func poll() {}

// helper reaches the poll one static call deep.
func helper() { poll() }

// run invokes its argument, as worker.recovered does.
func run(f func()) { f() }

type stage struct{}

func (s *stage) pushBatch(b *batch) {
	for i := 0; i < b.n; i++ { // compliant: reaches poll via helper
		helper()
	}
	for i := 0; i < b.n; i++ { // want "never reaches a cancellation poll"
		_ = i
	}
	//gf:nopoll bounded by batch capacity; caller polled in dispatch
	for i := 0; i < b.n; i++ {
		_ = i
	}
	//gf:nopoll
	for i := 0; i < b.n; i++ { // want "//gf:nopoll needs a reason"
		_ = i
	}
}

func (s *stage) flush() {}

// A closure passed along the call path is followed.
//
//gf:stage
func scanLoop(n int) {
	for i := 0; i < n; i++ { // compliant: the literal's body reaches poll
		run(func() { helper() })
	}
}

// Inner loops inherit the outer loop's verdict; exactly one finding.
//
//gf:stage
func nested(n int) {
	for i := 0; i < n; i++ { // want "never reaches a cancellation poll"
		for j := 0; j < n; j++ {
			_ = j
		}
	}
}

// Range loops are loops too.
//
//gf:stage
func ranges(xs []int) {
	for range xs { // want "never reaches a cancellation poll"
	}
}

// Ordinary functions are not stages; their loops are unchecked.
func notAStage(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}
