// Package sandbox mirrors the repo's metrics.Registry registration
// surface so metricreg's compile-time naming rules can be exercised in
// isolation.
package sandbox

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

type CounterVec struct{}

type GaugeVec struct{}

type HistogramVec struct{}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram { return &Histogram{} }

func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{}
}

func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec { return &GaugeVec{} }

func (r *Registry) HistogramVec(name, help string, bounds []float64, labelKeys ...string) *HistogramVec {
	return &HistogramVec{}
}

func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {}

func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {}

func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {}
