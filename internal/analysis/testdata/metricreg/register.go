package sandbox

const constName = "app_const_named_total"

func register(r *Registry, dyn string) {
	// Compliant registrations.
	r.Counter("app_requests_total", "requests served")
	r.Counter(constName, "named-constant name is fine")
	r.Gauge("app_in_flight", "current in-flight requests")
	r.Histogram("app_latency_seconds", "request latency", nil)
	r.HistogramVec("app_stage_seconds", "per-stage latency", nil, "stage")
	r.RegisterHistogram("app_fsync_seconds", "fsync latency", &Histogram{})

	// Naming-rule violations.
	r.Counter("app_requests", "no unit")                // want "counter \"app_requests\" must end in _total"
	r.Gauge("app_stuff_total", "gauge in disguise")     // want "must not end in _total"
	r.Histogram("app_latency", "no unit suffix", nil)   // want "must carry a unit suffix"
	r.Counter("2bad_total", "leading digit")            // want "invalid metric name"
	r.Gauge("app_foo_bucket", "collides with samples")  // want "reserved histogram suffix"
	r.CounterVec(dyn, "runtime-assembled name", "code") // want "must be a compile-time string constant"

	// Func-series of one kind share a family by design.
	r.CounterFunc("app_shared_total", "series one", nil, "k", "a")
	r.CounterFunc("app_shared_total", "series two", nil, "k", "b")

	// Everything else may not collide.
	r.Gauge("app_dup", "first")
	r.Gauge("app_dup", "second") // want "duplicate registration of metric family"
}
