// Package sandbox seeds the legacy logging forms logdiscipline bans.
package sandbox

import (
	"log"      // want "import of \"log\" is banned"
	"log/slog" // the sanctioned spine
)

func boom(err error) {
	log.Fatal(err)          // want "call to log.Fatal"
	log.Printf("x %v", err) // want "call to log.Printf"
	println("debug")        // want "println builtin left in"
	slog.Error("failed", "err", err)
}
