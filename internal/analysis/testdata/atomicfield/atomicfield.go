// Package sandbox seeds mixed atomic/plain field accesses — the bug
// class atomicfield exists for — plus the sanctioned access forms.
package sandbox

import "sync/atomic"

type counters struct {
	legacy int64
	typed  atomic.Int64
	plain  int
}

func (c *counters) inc() {
	atomic.AddInt64(&c.legacy, 1)
	c.typed.Add(1)
	c.plain++ // never touched atomically; plain access is fine
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.legacy)
}

func (c *counters) mixed() int64 {
	x := c.legacy // want "plain access to field legacy"
	c.legacy = 0  // want "plain access to field legacy"
	return x
}

func newCounters() *counters {
	c := &counters{}
	c.legacy = 42 //gf:nonatomic not yet published; no concurrent reader exists
	return c
}

func (c *counters) typedMisuse() {
	c.typed = atomic.Int64{} // want "assigns over atomic-typed field typed"
	v := c.typed             // want "copies atomic-typed field typed"
	_ = v
}

func (c *counters) typedSanctioned() int64 {
	p := &c.typed
	return p.Load() + c.typed.Load()
}
