package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxpoll enforces the engine's amortized-cancellation contract:
// executor stage bodies — methods named pushBatch (the vectorized
// stage interface) and functions annotated //gf:stage — must not
// contain an outermost loop that can spin without ever consulting the
// run's context. A loop complies when a cancellation poll is reachable
// from its body: a call, possibly through a chain of same-module
// static calls (function literals passed along the way are followed),
// to a function annotated //gf:pollpoint. Deliberately unpolled loops
// (bounded by batch capacity, polled by their caller) carry
// //gf:nopoll with a reason.
//
// Reachability is control-flow-insensitive: a conditional poll counts,
// because amortized polling is inherently conditional (the countdown
// only reaches zero every few thousand tuples).
var Ctxpoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "outermost loops in executor stage bodies must reach a //gf:pollpoint cancellation poll",
	Run:  runCtxpoll,
}

func runCtxpoll(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				_, isStage := FuncDirective(fd, "stage")
				if !isStage {
					isStage = fd.Name.Name == "pushBatch" && fd.Recv != nil
				}
				if !isStage {
					continue
				}
				checkStageLoops(prog, pkg, fd, report)
			}
		}
	}
}

// checkStageLoops verifies every outermost loop of one stage body.
func checkStageLoops(prog *Program, pkg *Package, fd *ast.FuncDecl, report Reporter) {
	WalkParents(fd.Body, func(n ast.Node, parents []ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		// Only outermost loops: nested loops are covered by their
		// enclosing loop's per-iteration poll.
		for _, p := range parents {
			switch p.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			}
		}
		if reason, waived := prog.DirectiveAt(n.Pos(), "nopoll"); waived {
			if reason == "" {
				report(n.Pos(), "//gf:nopoll needs a reason")
			}
			return false
		}
		if !reachesPollpoint(prog, pkg, body, make(map[*types.Func]bool)) {
			report(n.Pos(), "loop in stage %s never reaches a cancellation poll (//gf:pollpoint); annotate //gf:nopoll <reason> if it is bounded", fd.Name.Name)
		}
		return false // inner loops inherit the verdict
	})
}

// reachesPollpoint reports whether any call reachable from node —
// through same-module static callees and function literals — targets a
// //gf:pollpoint function.
func reachesPollpoint(prog *Program, pkg *Package, node ast.Node, visited map[*types.Func]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := StaticCallee(pkg.Info, call)
		fi := prog.FuncDecl(callee)
		if fi == nil {
			return true
		}
		if _, isPoll := FuncDirective(fi.Decl, "pollpoint"); isPoll {
			found = true
			return false
		}
		if fi.Decl.Body != nil && !visited[callee] {
			visited[callee] = true
			if reachesPollpoint(prog, fi.Pkg, fi.Decl.Body, visited) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
