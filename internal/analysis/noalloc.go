package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloc enforces the engine's zero-alloc hot-path contract: a
// function annotated //gf:noalloc — the E/I kernels, the batch
// pipeline stages, the factorized count loop — must not contain
// allocation-causing constructs, and neither may any same-module
// function it statically calls. The check complements the dynamic
// AllocsPerRun guards: those prove one benchmarked entry point is
// clean on one input; this proves the whole transitive closure has no
// construct that *could* allocate on any input.
//
// Flagged constructs: make and new, slice/map composite literals,
// address-taken composite literals, function literals (closure
// capture), appends that do not feed back into their own operand (the
// amortized-growth idiom `x = append(x, ...)` and `x = append(x[:n],
// ...)` is allowed), string concatenation and string<->byte/rune
// conversions, interface boxing of concrete non-pointer values
// (zero-size types are exempt: boxing them costs nothing), go
// statements, and calls into allocation-heavy stdlib packages (fmt,
// errors, sort, strings, strconv, bytes, regexp, reflect, log).
//
// Known limits, by design: calls through interfaces and function
// values are not followed (the View seam is the main such boundary —
// its implementations carry their own annotations), and a waived
// warm-up allocation (//gf:allowalloc with a reason) is trusted, not
// proven amortized. The dynamic guards backstop both holes.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//gf:noalloc functions and their same-module callees must be free of allocation-causing constructs",
	Run:  runNoalloc,
}

// allocHeavyStdlib are stdlib packages whose exported API virtually
// always allocates; a call into one from a hot path is a finding even
// though the framework does not traverse stdlib bodies.
var allocHeavyStdlib = map[string]bool{
	"bytes": true, "errors": true, "fmt": true, "log": true,
	"reflect": true, "regexp": true, "sort": true, "strconv": true,
	"strings": true,
}

func runNoalloc(prog *Program, report Reporter) {
	type workItem struct {
		fn   *FuncInfo
		root string
	}
	var queue []workItem
	visited := make(map[*types.Func]bool)

	enqueue := func(fn *FuncInfo, root string) {
		if fn == nil || fn.Decl.Body == nil || visited[fn.Obj] {
			return
		}
		visited[fn.Obj] = true
		queue = append(queue, workItem{fn, root})
	}

	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if _, ok := FuncDirective(fd, "noalloc"); !ok {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					enqueue(prog.FuncDecl(obj), fd.Name.Name)
				}
			}
		}
	}

	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		checkNoallocFunc(prog, item.fn, item.root, report, func(callee *types.Func) {
			fi := prog.FuncDecl(callee)
			if fi == nil {
				return
			}
			if reason, cold := FuncDirective(fi.Decl, "allowalloc"); cold {
				if reason == "" {
					report(fi.Decl.Pos(), "//gf:allowalloc on %s needs a reason", fi.Obj.Name())
				}
				return
			}
			enqueue(fi, item.root)
		})
	}
}

// checkNoallocFunc inspects one function body for allocation-causing
// constructs and feeds same-module static callees to traverse.
func checkNoallocFunc(prog *Program, fn *FuncInfo, root string, report Reporter, traverse func(*types.Func)) {
	info := fn.Pkg.Info
	where := fn.Obj.Name()
	if where != root {
		where = fmt.Sprintf("%s (hot path via //gf:noalloc %s)", where, root)
	}

	flag := func(pos token.Pos, format string, args ...any) {
		if reason, ok := prog.DirectiveAt(pos, "allowalloc"); ok {
			if reason == "" {
				report(pos, "//gf:allowalloc needs a reason")
			}
			return
		}
		report(pos, format+" in "+where, args...)
	}

	WalkParents(fn.Decl.Body, func(n ast.Node, parents []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNoallocCall(prog, info, n, parents, flag, traverse)
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				flag(n.Pos(), "slice literal allocates")
			case *types.Map:
				flag(n.Pos(), "map literal allocates")
			default:
				if p := nearestParent(parents); p != nil {
					if u, ok := p.(*ast.UnaryExpr); ok && u.Op == token.AND {
						flag(n.Pos(), "address-taken composite literal allocates")
					}
				}
			}
		case *ast.FuncLit:
			flag(n.Pos(), "function literal allocates a closure")
			return false // its body runs at another time; do not double-report
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && isStringType(tv.Type) {
					flag(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.GoStmt:
			flag(n.Pos(), "go statement allocates a goroutine")
		case *ast.ReturnStmt:
			sig, _ := fn.Obj.Type().(*types.Signature)
			if sig == nil || len(n.Results) != sig.Results().Len() {
				return true
			}
			for i, res := range n.Results {
				checkBoxing(prog, info, res, sig.Results().At(i).Type(), flag)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if lt, ok := info.Types[n.Lhs[i]]; ok {
					checkBoxing(prog, info, rhs, lt.Type, flag)
				}
			}
		}
		return true
	})
}

// checkNoallocCall handles every call form: builtins, conversions,
// static calls (traversed or denylisted) and boxing at argument
// positions.
func checkNoallocCall(prog *Program, info *types.Info, call *ast.CallExpr, parents []ast.Node, flag Reporter, traverse func(*types.Func)) {
	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		to := tv.Type
		av, ok := info.Types[call.Args[0]]
		if !ok {
			return
		}
		from := av.Type
		switch {
		case isStringType(to) && !isStringType(from) && !isUntyped(from):
			flag(call.Pos(), "conversion to string allocates")
		case isStringType(from) && isByteOrRuneSlice(to):
			flag(call.Pos(), "string to slice conversion allocates")
		default:
			checkBoxing(prog, info, call.Args[0], to, flag)
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				checkAppend(info, call, parents, flag)
			case "panic":
				// The unwind value is boxed; zero-size sentinel types (the
				// stopRun idiom) are exempt via checkBoxing.
				for _, arg := range call.Args {
					checkBoxing(prog, info, arg, types.NewInterfaceType(nil, nil), flag)
				}
			}
			return
		}
	}

	// Boxing at argument positions, for every call with a signature
	// (including interface-method and func-value calls we cannot
	// traverse).
	if ftv, ok := info.Types[call.Fun]; ok {
		if sig, ok := ftv.Type.Underlying().(*types.Signature); ok {
			checkCallArgsBoxing(prog, info, call, sig, flag)
		}
	}

	callee := StaticCallee(info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	if prog.FuncDecl(callee) != nil {
		traverse(callee)
		return
	}
	if allocHeavyStdlib[callee.Pkg().Path()] {
		flag(call.Pos(), "call to %s.%s allocates", callee.Pkg().Name(), callee.Name())
	}
}

// checkAppend allows only the amortized-growth idiom: the append's
// result must be assigned back to the expression it appends to (a
// reslice of it counts), so growth is retained and amortizes to zero.
func checkAppend(info *types.Info, call *ast.CallExpr, parents []ast.Node, flag Reporter) {
	if len(call.Args) == 0 {
		return
	}
	operand := ast.Unparen(call.Args[0])
	if sl, ok := operand.(*ast.SliceExpr); ok {
		operand = ast.Unparen(sl.X)
	}
	if p := nearestParent(parents); p != nil {
		if as, ok := p.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
			for i, rhs := range as.Rhs {
				if ast.Unparen(rhs) == call && i < len(as.Lhs) &&
					ExprString(as.Lhs[i]) == ExprString(operand) {
					return
				}
			}
		}
	}
	flag(call.Pos(), "append result does not feed back into %q; growth is not amortized", ExprString(operand))
}

// checkCallArgsBoxing flags concrete non-pointer values passed to
// interface-typed parameters.
func checkCallArgsBoxing(prog *Program, info *types.Info, call *ast.CallExpr, sig *types.Signature, flag Reporter) {
	np := sig.Params().Len()
	if np == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < np-1 || (!sig.Variadic() && i < np):
			pt = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = sig.Params().At(np - 1).Type()
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		default:
			continue
		}
		checkBoxing(prog, info, arg, pt, flag)
	}
}

// checkBoxing reports arg when assigning it to target requires an
// interface box that heap-allocates: target is an interface, arg's
// type is concrete and not pointer-shaped, its size is non-zero, and
// it is not a constant (small constants are interned by the runtime).
func checkBoxing(prog *Program, info *types.Info, arg ast.Expr, target types.Type, flag Reporter) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	av, ok := info.Types[arg]
	if !ok || av.Value != nil { // constants: interned or compile-time folded
		return
	}
	at := av.Type
	if at == nil || isUntyped(at) {
		return
	}
	if _, isParam := at.(*types.TypeParam); isParam {
		return
	}
	if types.IsInterface(at.Underlying()) {
		return
	}
	if isPointerShaped(at) {
		return
	}
	if prog.Sizes != nil && prog.Sizes.Sizeof(at) == 0 {
		return
	}
	flag(arg.Pos(), "interface boxing of %s allocates", types.TypeString(at, types.RelativeTo(nil)))
}

// nearestParent returns the closest ancestor that is not a ParenExpr.
func nearestParent(parents []ast.Node) ast.Node {
	for i := len(parents) - 1; i >= 0; i-- {
		if _, ok := parents[i].(*ast.ParenExpr); ok {
			continue
		}
		return parents[i]
	}
	return nil
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntyped(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsUntyped != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports types whose interface representation reuses
// the value itself — no heap box needed.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}
