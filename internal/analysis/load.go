package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Config parameterizes Load.
type Config struct {
	// Dir is any directory inside the module to analyze. Load walks up
	// to the enclosing go.mod. Empty means the current directory.
	Dir string
}

// cgoOff disables cgo in the shared build context exactly once, before
// the first stdlib source import: the source importer type-checks
// dependencies from GOROOT source, and the pure-Go build of packages
// like net is the one that type-checks without running cgo.
var cgoOff sync.Once

// Load parses and type-checks every package of the enclosing module
// (test files and testdata trees excluded) in dependency order.
// Module-internal imports resolve to the freshly checked packages;
// standard-library imports are type-checked from GOROOT source, so the
// loader needs no pre-built export data and no tooling beyond the
// stdlib. Type errors do not abort the load — they are recorded per
// package (and surfaced by Run as "typecheck" diagnostics) so the
// analyzers can still inspect the parts that did check.
func Load(cfg Config) (*Program, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}

	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		ModuleDir:  modDir,
		byPath:     make(map[string]*Package),
	}
	if prog.Sizes = types.SizesFor("gc", build.Default.GOARCH); prog.Sizes == nil {
		prog.Sizes = types.SizesFor("gc", "amd64")
	}

	// Discover and parse packages.
	pkgs := make(map[string]*parsedPkg)
	walkErr := filepath.Walk(modDir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if path != modDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		pdir := filepath.Dir(path)
		rel, err := filepath.Rel(modDir, pdir)
		if err != nil {
			return err
		}
		ipath := modPath
		if rel != "." {
			ipath = modPath + "/" + filepath.ToSlash(rel)
		}
		p := pkgs[ipath]
		if p == nil {
			p = &parsedPkg{
				pkg:     &Package{Path: ipath, Dir: pdir},
				imports: make(map[string]bool),
			}
			pkgs[ipath] = p
		}
		f, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		p.pkg.Files = append(p.pkg.Files, f)
		for _, imp := range f.Imports {
			if ip, err := strconv.Unquote(imp.Path.Value); err == nil {
				p.imports[ip] = true
			}
		}
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no Go packages under %s", modDir)
	}

	// Topological order over module-internal imports.
	order, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}

	cgoOff.Do(func() { build.Default.CgoEnabled = false })
	std := importer.ForCompiler(prog.Fset, "source", nil)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := prog.byPath[path]; ok && p.Pkg != nil {
			return p.Pkg, nil
		}
		return std.Import(path)
	})

	for _, ipath := range order {
		p := pkgs[ipath]
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { p.pkg.TypeErrors = append(p.pkg.TypeErrors, err) },
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		// Check returns an error on any type problem; partial results are
		// still delivered, and the problems are already in TypeErrors.
		tpkg, _ := conf.Check(ipath, prog.Fset, p.pkg.Files, info)
		p.pkg.Pkg = tpkg
		p.pkg.Info = info
		prog.byPath[ipath] = p.pkg
		prog.Packages = append(prog.Packages, p.pkg)
	}
	prog.buildIndexes()
	return prog, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// findModule walks up from dir to the enclosing go.mod and returns its
// directory and module path.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// parsedPkg pairs a parsed package with its import set during loading.
type parsedPkg struct {
	pkg     *Package
	imports map[string]bool
}

// topoSort orders import paths so that every module-internal import
// precedes its importer, detecting cycles.
func topoSort(pkgs map[string]*parsedPkg) ([]string, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(pkgs))
	order := make([]string, 0, len(pkgs))
	var visit func(ip string, path []string) error
	visit = func(ip string, path []string) error {
		switch state[ip] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle: %s", strings.Join(append(path, ip), " -> "))
		}
		state[ip] = visiting
		p := pkgs[ip]
		deps := make([]string, 0, len(p.imports))
		for d := range p.imports {
			if _, internal := pkgs[d]; internal {
				deps = append(deps, d)
			}
		}
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d, append(path, ip)); err != nil {
				return err
			}
		}
		state[ip] = done
		order = append(order, ip)
		return nil
	}
	roots := make([]string, 0, len(pkgs))
	for ip := range pkgs {
		roots = append(roots, ip)
	}
	sort.Strings(roots)
	for _, ip := range roots {
		if err := visit(ip, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}
