package analysis_test

import (
	"path/filepath"
	"testing"

	"graphflow/internal/analysis"
	"graphflow/internal/analysis/analysistest"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "noalloc"), analysis.Noalloc)
}

func TestCtxpoll(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "ctxpoll"), analysis.Ctxpoll)
}

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "atomicfield"), analysis.Atomicfield)
}

func TestLogdiscipline(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "logdiscipline"), analysis.Logdiscipline)
}

func TestMetricreg(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "metricreg"), analysis.Metricreg)
}

// TestLoaderShape sanity-checks the loader itself: dependency order
// and package discovery over a testdata module.
func TestLoaderShape(t *testing.T) {
	prog, err := analysis.Load(analysis.Config{Dir: filepath.Join("testdata", "noalloc")})
	if err != nil {
		t.Fatal(err)
	}
	if prog.ModulePath != "sandbox" {
		t.Fatalf("module path = %q, want sandbox", prog.ModulePath)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("got %d packages, want 1", len(prog.Packages))
	}
	for _, pkg := range prog.Packages {
		if pkg.Pkg == nil || pkg.Info == nil {
			t.Fatalf("package %s not type-checked", pkg.Path)
		}
	}
}

// TestSelfModule is the acceptance gate in test form: the repo's own
// module must load, type-check and come back clean from the full
// analyzer suite. Skipped under -short (CI runs gfvet directly as its
// own blocking step); run it when touching hot-path code locally.
func TestSelfModule(t *testing.T) {
	if testing.Short() {
		t.Skip("self-module analysis runs as the gfvet CI step")
	}
	prog, err := analysis.Load(analysis.Config{Dir: filepath.Join("..", "..")})
	if err != nil {
		t.Fatal(err)
	}
	if prog.ModulePath != "graphflow" {
		t.Fatalf("module path = %q, want graphflow", prog.ModulePath)
	}
	for _, d := range analysis.Run(prog, analysis.All()) {
		t.Errorf("gfvet finding on the repo: %s", d)
	}
}
