package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicfield enforces atomic access discipline on struct fields — the
// bug class the lock-free metrics registry and the live store's epoch
// pointer are exposed to: one goroutine updating a counter through
// sync/atomic while another reads the same field with a plain load is
// a data race the race detector only catches when both paths run in
// the same test.
//
// Two field populations are checked, program-wide:
//
//   - A field whose address is ever passed to a sync/atomic function
//     (atomic.AddInt64(&s.n, 1), ...) must be accessed through
//     sync/atomic everywhere; any plain read or write is flagged.
//   - A field of an atomic.* type (atomic.Int64, atomic.Pointer[T],
//     atomic.Value, ...) may only be used through its methods or by
//     address; assigning it, or copying it out by value, is flagged.
//
// Deliberate plain accesses (e.g. a constructor initializing a field
// before the value is published) carry //gf:nonatomic with a reason.
// Composite-literal keys are exempt: a literal builds a value no other
// goroutine can see yet.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic anywhere must never be read or written plainly elsewhere",
	Run:  runAtomicfield,
}

func runAtomicfield(prog *Program, report Reporter) {
	// Phase 1, program-wide: find fields used with sync/atomic
	// functions, remembering the exact selector nodes of those sanctioned
	// uses.
	atomicFields := make(map[*types.Var]token.Pos) // field -> first atomic use
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := StaticCallee(pkg.Info, call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if fv := fieldVar(pkg.Info, sel); fv != nil {
						if _, seen := atomicFields[fv]; !seen {
							atomicFields[fv] = sel.Pos()
						}
						sanctioned[sel] = true
					}
				}
				return true
			})
		}
	}

	// Phase 2: flag plain accesses of phase-1 fields, and misuse of
	// atomic.*-typed fields.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			WalkParents(f, func(n ast.Node, parents []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fv := fieldVar(pkg.Info, sel)
				if fv == nil {
					return true
				}
				if _, mixed := atomicFields[fv]; mixed && !sanctioned[sel] {
					flagPlain(prog, report, sel, fv)
					return true
				}
				if isAtomicType(fv.Type()) {
					checkAtomicTypedUse(prog, pkg, report, sel, fv, parents)
				}
				return true
			})
		}
	}
}

// flagPlain reports a non-atomic access to a sync/atomic-managed
// field, honoring the //gf:nonatomic waiver.
func flagPlain(prog *Program, report Reporter, sel *ast.SelectorExpr, fv *types.Var) {
	if reason, ok := prog.DirectiveAt(sel.Pos(), "nonatomic"); ok {
		if reason == "" {
			report(sel.Pos(), "//gf:nonatomic needs a reason")
		}
		return
	}
	report(sel.Pos(), "plain access to field %s, which is accessed via sync/atomic elsewhere", fv.Name())
}

// checkAtomicTypedUse flags assignments to and value copies of an
// atomic.*-typed field; method calls and address-taking are the
// sanctioned uses.
func checkAtomicTypedUse(prog *Program, pkg *Package, report Reporter, sel *ast.SelectorExpr, fv *types.Var, parents []ast.Node) {
	p := nearestParent(parents)
	if p == nil {
		return
	}
	bad := ""
	switch p := p.(type) {
	case *ast.SelectorExpr:
		// sel.Method(...) — the sanctioned access.
	case *ast.UnaryExpr:
		if p.Op != token.AND {
			bad = "operates on"
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				bad = "assigns over"
			}
		}
		if bad == "" {
			bad = "copies"
		}
	case *ast.ValueSpec, *ast.CallExpr, *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		bad = "copies"
	case *ast.StarExpr:
		// Part of a type expression or deref chain; harmless.
	}
	if bad == "" {
		return
	}
	if reason, ok := prog.DirectiveAt(sel.Pos(), "nonatomic"); ok {
		if reason == "" {
			report(sel.Pos(), "//gf:nonatomic needs a reason")
		}
		return
	}
	report(sel.Pos(), "%s atomic-typed field %s; use its methods", bad, fv.Name())
}

// fieldVar resolves a selector to the struct field it names, or nil.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// isAtomicType reports named types from sync/atomic (Int64, Bool,
// Pointer[T], Value, ...).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
