package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Metricreg moves promlint's naming rules from scrape time to compile
// time: every metric family registered on a metrics.Registry must use
// a compile-time string constant as its name (so the exposition
// surface is statically known), the name must be well-formed, counters
// must end in _total, histograms in a unit suffix (_seconds or
// _bytes), gauges must not pretend to be counters, no family may end
// in a reserved histogram sample suffix, and no two distinct
// registration sites may claim the same family — except func-series
// registrations of the same kind, which share a family by design (that
// is how multi-series func metrics are assembled).
var Metricreg = &Analyzer{
	Name: "metricreg",
	Doc:  "metric registration names must be constants that satisfy the Prometheus naming rules, with no duplicate families",
	Run:  runMetricreg,
}

// registryMethods maps Registry registration methods to the metric
// kind they create and whether they are shareable func-series
// registrations.
var registryMethods = map[string]struct {
	kind   string
	isFunc bool
}{
	"Counter":           {"counter", false},
	"CounterVec":        {"counter", false},
	"CounterFunc":       {"counter", true},
	"Gauge":             {"gauge", false},
	"GaugeVec":          {"gauge", false},
	"GaugeFunc":         {"gauge", true},
	"Histogram":         {"histogram", false},
	"HistogramVec":      {"histogram", false},
	"RegisterHistogram": {"histogram", false},
}

// reservedSuffixes are the histogram sample suffixes the text
// exposition appends itself; a family name ending in one collides with
// its own samples.
var reservedSuffixes = []string{"_bucket", "_sum", "_count"}

func runMetricreg(prog *Program, report Reporter) {
	type site struct {
		pos    token.Pos
		name   string
		kind   string
		isFunc bool
	}
	var sites []site

	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				m, isReg := registryMethods[sel.Sel.Name]
				if !isReg || !isRegistryRecv(pkg.Info, sel) {
					return true
				}
				nameArg := call.Args[0]
				tv, ok := pkg.Info.Types[nameArg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					report(nameArg.Pos(), "metric name passed to %s must be a compile-time string constant", sel.Sel.Name)
					return true
				}
				name := constant.StringVal(tv.Value)
				checkMetricName(report, nameArg.Pos(), name, m.kind)
				sites = append(sites, site{nameArg.Pos(), name, m.kind, m.isFunc})
				return true
			})
		}
	}

	// Duplicate families across distinct registration sites. Func-series
	// sites may share a family of the same kind; everything else is a
	// collision.
	byName := make(map[string][]site)
	for _, s := range sites {
		byName[s.name] = append(byName[s.name], s)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		group := byName[n]
		if len(group) < 2 {
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i].pos < group[j].pos })
		allFuncSameKind := true
		for _, s := range group {
			if !s.isFunc || s.kind != group[0].kind {
				allFuncSameKind = false
				break
			}
		}
		if allFuncSameKind {
			continue
		}
		first := prog.Fset.Position(group[0].pos)
		for _, s := range group[1:] {
			report(s.pos, "duplicate registration of metric family %q (first registered at %s)", n, first)
		}
	}
}

// checkMetricName applies the promlint naming rules to one family name
// at compile time.
func checkMetricName(report Reporter, pos token.Pos, name, kind string) {
	if !validMetricName(name) {
		report(pos, "invalid metric name %q: must match [a-zA-Z_:][a-zA-Z0-9_:]*", name)
		return
	}
	for _, suf := range reservedSuffixes {
		if strings.HasSuffix(name, suf) {
			report(pos, "metric name %q ends in reserved histogram suffix %q", name, suf)
			return
		}
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			report(pos, "counter %q must end in _total", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			report(pos, "gauge %q must not end in _total (that suffix marks counters)", name)
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			report(pos, "histogram %q must carry a unit suffix (_seconds or _bytes)", name)
		}
	}
}

// isRegistryRecv reports whether the method's receiver is a (pointer
// to a) named type called Registry — the repo's metrics registry; the
// name-based match keeps the analyzer loadable over testdata modules.
func isRegistryRecv(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == "Registry"
}

// validMetricName mirrors the registry's runtime validName check.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
