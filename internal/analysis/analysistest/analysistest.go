// Package analysistest is the // want comment harness for the gfvet
// analyzers: it loads a self-contained testdata module, runs analyzers
// over it, and matches every diagnostic against `// want "regexp"`
// comments in the testdata source. Each want must be satisfied by
// exactly one diagnostic on its line, and every diagnostic must be
// wanted — so the harness proves both that seeded violations are
// caught and that compliant code stays clean.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"graphflow/internal/analysis"
)

// wantRe matches `// want "..."` with a quoted Go string (so testdata
// can escape quotes and backslashes).
var wantRe = regexp.MustCompile(`// want (".*")\s*$`)

// Run loads the module rooted at dir, runs the analyzers, and checks
// the diagnostics against the module's // want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	prog, err := analysis.Load(analysis.Config{Dir: dir})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	for _, pkg := range prog.Packages {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("testdata must type-check; %s: %v", pkg.Path, terr)
		}
	}

	type want struct {
		file    string
		line    int
		re      *regexp.Regexp
		matched bool
	}
	var wants []*want
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			collectWants(t, prog, f, func(file string, line int, re *regexp.Regexp) {
				wants = append(wants, &want{file: file, line: line, re: re})
			})
		}
	}

	diags := analysis.Run(prog, analyzers)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// collectWants extracts the // want expectations of one file.
func collectWants(t *testing.T, prog *analysis.Program, f *ast.File, add func(string, int, *regexp.Regexp)) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				if strings.Contains(c.Text, "// want") {
					t.Errorf("%s: malformed want comment: %s", prog.Fset.Position(c.Pos()), c.Text)
				}
				continue
			}
			pattern, err := strconv.Unquote(m[1])
			if err != nil {
				t.Errorf("%s: unquoting want: %v", prog.Fset.Position(c.Pos()), err)
				continue
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Errorf("%s: compiling want %q: %v", prog.Fset.Position(c.Pos()), pattern, err)
				continue
			}
			pos := prog.Fset.Position(c.Pos())
			add(pos.Filename, pos.Line, re)
		}
	}
}

// RunClean asserts the module at dir produces no diagnostics at all —
// used to prove the analyzers stay quiet on compliant code.
func RunClean(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	prog, err := analysis.Load(analysis.Config{Dir: dir})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags := analysis.Run(prog, analyzers)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic on clean module: %s", d)
	}
	if len(diags) > 0 {
		t.Logf("module: %s", fmt.Sprint(prog.ModulePath))
	}
}
