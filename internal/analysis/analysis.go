// Package analysis is the repo-native static-analysis framework behind
// cmd/gfvet. It is deliberately zero-dependency — stdlib go/parser,
// go/ast and go/types only, no golang.org/x/tools — because the suite
// is itself a CI gate and must build everywhere the engine builds.
//
// The framework loads the enclosing module from source (Load), type-
// checking packages in dependency order, and hands the resulting
// Program to analyzers. Analyzers enforce the engine's structural
// invariants (zero-alloc hot paths, cancellation polling, atomic
// discipline, logging and metric-registration hygiene); each reports
// position-anchored diagnostics through a Reporter.
//
// Source annotations drive and waive the checks:
//
//	//gf:noalloc                — this function (and every same-module
//	                              function it statically calls) must not
//	                              contain allocation-causing constructs.
//	//gf:allowalloc <reason>    — on a line: waive noalloc findings on
//	                              that line (e.g. a guarded warm-up
//	                              make). On a function declaration: the
//	                              noalloc traversal does not descend
//	                              into this function (a known cold
//	                              branch of a hot caller).
//	//gf:stage                  — this function is an executor stage
//	                              body: its outermost loops must reach a
//	                              cancellation poll (see ctxpoll).
//	//gf:pollpoint              — calling this function counts as
//	                              polling for cancellation.
//	//gf:nopoll <reason>        — on a loop: waive ctxpoll for it.
//	//gf:nonatomic <reason>     — on a line: waive atomicfield for a
//	                              deliberate plain access to an
//	                              atomically-used field.
//
// Waivers with a <reason> placeholder require one; an empty reason is
// itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check over a loaded Program.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and -only.
	Name string
	// Doc is a one-line description shown by gfvet -list.
	Doc string
	// Run inspects the program and reports findings.
	Run func(prog *Program, report Reporter)
}

// Reporter receives one diagnostic at a source position.
type Reporter func(pos token.Pos, format string, args ...any)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one parsed, type-checked package of the loaded module.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the package's source directory.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package (possibly partial on type errors).
	Pkg *types.Package
	// Info carries the type-checker's expression, definition, use and
	// selection facts for Files.
	Info *types.Info
	// TypeErrors are the type-checking problems encountered, if any.
	TypeErrors []error
}

// FuncInfo pairs a declared function with its body and home package.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Program is a fully loaded module: every package parsed and
// type-checked in dependency order over one shared FileSet.
type Program struct {
	Fset *token.FileSet
	// Packages in dependency order (imports precede importers).
	Packages []*Package
	// ModulePath is the module's declared path (from go.mod).
	ModulePath string
	// ModuleDir is the directory containing go.mod.
	ModuleDir string
	// Sizes is the target's memory layout, for zero-size exemptions.
	Sizes types.Sizes

	byPath map[string]*Package
	funcs  map[*types.Func]*FuncInfo
	// directives maps filename -> line -> directive name -> argument.
	directives map[string]map[int]map[string]string
}

// PackageOf returns the loaded package with the given import path, or
// nil.
func (p *Program) PackageOf(path string) *Package { return p.byPath[path] }

// FuncDecl resolves a types.Func to its declaration within the module,
// or nil for functions declared outside it (stdlib, interface methods).
func (p *Program) FuncDecl(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return p.funcs[fn]
}

// buildIndexes populates the function and directive indexes after type
// checking.
func (p *Program) buildIndexes() {
	p.funcs = make(map[*types.Func]*FuncInfo)
	p.directives = make(map[string]map[int]map[string]string)
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.funcs[obj] = &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					name, arg, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					byLine := p.directives[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]string)
						p.directives[pos.Filename] = byLine
					}
					m := byLine[pos.Line]
					if m == nil {
						m = make(map[string]string)
						byLine[pos.Line] = m
					}
					m[name] = arg
				}
			}
		}
	}
}

// parseDirective splits "//gf:name arg..." into (name, arg, true).
func parseDirective(text string) (name, arg string, ok bool) {
	const prefix = "//gf:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i+1:]), true
	}
	return rest, "", true
}

// DirectiveAt reports whether the named directive annotates the line of
// pos — either as a trailing comment on that line or as a comment on
// the line directly above — and returns its argument.
func (p *Program) DirectiveAt(pos token.Pos, name string) (arg string, ok bool) {
	position := p.Fset.Position(pos)
	byLine := p.directives[position.Filename]
	if byLine == nil {
		return "", false
	}
	for _, line := range [2]int{position.Line, position.Line - 1} {
		if m := byLine[line]; m != nil {
			if a, ok := m[name]; ok {
				return a, true
			}
		}
	}
	return "", false
}

// FuncDirective reports whether the function declaration carries the
// named directive in its doc comment and returns its argument.
func FuncDirective(fd *ast.FuncDecl, name string) (arg string, ok bool) {
	if fd == nil || fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		if n, a, isDir := parseDirective(c.Text); isDir && n == name {
			return a, true
		}
	}
	return "", false
}

// StaticCallee resolves a call expression to the declared function it
// statically invokes: a package-level function or a method on a
// concrete receiver. Interface-method calls, calls through function
// values and built-ins resolve to nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// A method expression or method value on a concrete type still
			// names its declared *types.Func; interface methods do too, but
			// their "declaration" lives outside the module, so FuncDecl
			// resolution naturally prunes them.
			if fn, ok := sel.Obj().(*types.Func); ok {
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// WalkParents traverses root in depth-first order, calling visit with
// each node and the stack of its ancestors (nearest last). Returning
// false skips the node's children.
func WalkParents(root ast.Node, visit func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !visit(n, stack) {
			// Inspect delivers no matching nil for a pruned node, so the
			// stack must not grow here.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// ExprString renders the subset of expressions the analyzers compare
// structurally (identifiers, selectors, index, slice, star, paren).
// Unsupported forms render as a unique placeholder so they never
// compare equal.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.BinaryExpr:
		// Deterministic arithmetic indexes (cols[pw+i]) must compare equal
		// across the two sides of a self-feed append.
		return ExprString(e.X) + e.Op.String() + ExprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + ExprString(e.X)
	}
	return fmt.Sprintf("<%T@%d>", e, e.Pos())
}

// Run executes the analyzers over the program and returns their
// diagnostics sorted by position. Type errors surface first, as
// "typecheck" diagnostics: an analyzer verdict over a package that did
// not type-check is not trustworthy.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, err := range pkg.TypeErrors {
			d := Diagnostic{Analyzer: "typecheck", Message: err.Error()}
			if terr, ok := err.(types.Error); ok {
				d.Pos = terr.Fset.Position(terr.Pos)
				d.Message = terr.Msg
			}
			diags = append(diags, d)
		}
	}
	for _, a := range analyzers {
		name := a.Name
		a.Run(prog, func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:      prog.Fset.Position(pos),
				Analyzer: name,
				Message:  fmt.Sprintf(format, args...),
			})
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Noalloc, Ctxpoll, Atomicfield, Logdiscipline, Metricreg}
}
