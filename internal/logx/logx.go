// Package logx configures the process-wide structured logger. Every
// binary in this repository logs through log/slog; logx owns the single
// decision of how those records are rendered (human-readable text or
// machine-parseable JSON) so the flag wiring is identical across cmds.
package logx

import (
	"fmt"
	"io"
	"log/slog"
	"os"
)

// Fatal logs msg and args at error level through the default slog
// logger and exits with status 1 — the structured replacement for
// log.Fatal in binaries and examples (gfvet's logdiscipline analyzer
// bans the stdlib log package module-wide). Servers with a drain path
// should not use it; it is for startup failures where no cleanup is
// owed.
func Fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// Setup builds a slog.Logger writing to w in the requested format
// ("text" or "json"; "" defaults to text), installs it as the slog
// default — so package-level slog.Info and the stdlib log bridge both
// route through it — and returns it. An unknown format is an error, not
// a silent fallback: a typoed -log-format on a production server would
// otherwise quietly break downstream log ingestion.
func Setup(format string, w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("logx: unknown log format %q (want \"text\" or \"json\")", format)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}
