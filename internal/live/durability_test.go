package live

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"graphflow/internal/graph"
)

// reopen closes db and opens a fresh store over the same dir and base.
func reopen(t *testing.T, db *DB, base *graph.Graph, cfg Config) *DB {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	nd, err := Open(base, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return nd
}

func TestDurableRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := randomBase(rng, 20)
	cfg := Config{CompactThreshold: -1, Dir: t.TempDir()}
	db, err := Open(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := db.Apply(randomBatch(rng, db.Snapshot())); err != nil {
			t.Fatal(err)
		}
	}
	wantEdges := collectEdges(db.Snapshot())
	wantEpoch := db.Epoch()
	wantV := db.Snapshot().NumVertices()

	db = reopen(t, db, base, cfg)
	defer db.Close()
	s := db.Snapshot()
	if s.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", s.Epoch(), wantEpoch)
	}
	if s.NumVertices() != wantV {
		t.Fatalf("recovered %d vertices, want %d", s.NumVertices(), wantV)
	}
	if !reflect.DeepEqual(collectEdges(s), wantEdges) {
		t.Fatal("recovered edge set differs")
	}
	ws := db.WALStats()
	if !ws.Enabled || ws.Replayed != 8 || ws.TornTailDropped {
		t.Fatalf("WALStats after recovery: %+v", ws)
	}
	// The recovered store must keep accepting and logging batches.
	if _, err := db.Apply(randomBatch(rng, db.Snapshot())); err != nil {
		t.Fatal(err)
	}
	if db.WALStats().Appended != 1 {
		t.Fatalf("appended %d batches after recovery, want 1", db.WALStats().Appended)
	}
}

func TestCheckpointAtCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := randomBase(rng, 25)
	cfg := Config{CompactThreshold: -1, Dir: t.TempDir()}
	db, err := Open(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := db.Apply(randomBatch(rng, db.Snapshot())); err != nil {
			t.Fatal(err)
		}
	}
	wantEdges := collectEdges(db.Snapshot())
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	ws := db.WALStats()
	if ws.Checkpoints != 1 || ws.CheckpointEpoch != db.Epoch() {
		t.Fatalf("after compaction: %+v, epoch %d", ws, db.Epoch())
	}
	// Pre-checkpoint segments are pruned, so the live WAL is empty.
	if ws.Bytes != 0 {
		t.Fatalf("WAL holds %d bytes after checkpoint, want 0", ws.Bytes)
	}
	// Post-compaction batches land in the new segment and survive too.
	if _, err := db.Apply(randomBatch(rng, db.Snapshot())); err != nil {
		t.Fatal(err)
	}
	wantEdges2 := collectEdges(db.Snapshot())
	wantEpoch := db.Epoch()

	// The checkpoint, not the caller's base, is the recovery root now:
	// reopen with a deliberately empty base to prove it is ignored.
	db = reopen(t, db, graph.NewBuilder(0).MustBuild(), cfg)
	defer db.Close()
	if db.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", db.Epoch(), wantEpoch)
	}
	if !reflect.DeepEqual(collectEdges(db.Snapshot()), wantEdges2) {
		t.Fatal("recovered edge set differs after checkpoint + tail replay")
	}
	if ws := db.WALStats(); ws.Replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (the post-checkpoint batch): %+v", ws.Replayed, ws)
	}
	_ = wantEdges
}

func TestTornTailDroppedOnRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randomBase(rng, 15)
	dir := t.TempDir()
	cfg := Config{CompactThreshold: -1, Dir: dir}
	db, err := Open(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Apply(randomBatch(rng, db.Snapshot())); err != nil {
			t.Fatal(err)
		}
	}
	afterTwo := uint64(2)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop a few bytes off the single segment.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".log") {
			seg = filepath.Join(dir, e.Name())
		}
	}
	if seg == "" {
		t.Fatal("no WAL segment found")
	}
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ws := db2.WALStats()
	if !ws.TornTailDropped || ws.Replayed != 2 {
		t.Fatalf("torn-tail recovery stats: %+v", ws)
	}
	if db2.Epoch() != afterTwo {
		t.Fatalf("recovered epoch %d, want %d", db2.Epoch(), afterTwo)
	}
}

func TestApplyAfterCloseFails(t *testing.T) {
	db, err := Open(graph.NewBuilder(2).MustBuild(), Config{CompactThreshold: -1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddVertex(0); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply(Batch{AddVertices: []graph.Label{0}}); err == nil {
		t.Fatal("Apply succeeded on a closed store")
	}
	// Reads still work.
	if db.Snapshot().NumVertices() != 3 {
		t.Fatalf("snapshot lost after close: %d vertices", db.Snapshot().NumVertices())
	}
}
