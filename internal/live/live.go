package live

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"graphflow/internal/graph"
	"graphflow/internal/metrics"
	"graphflow/internal/wal"
)

// DefaultCompactThreshold is the overlay size (mutations since the last
// base build) at which the background compactor folds the delta into a
// fresh CSR.
const DefaultCompactThreshold = 1 << 14

// Config tunes a live DB.
type Config struct {
	// CompactThreshold is the overlay mutation count that triggers
	// background compaction. 0 takes DefaultCompactThreshold; a negative
	// value disables automatic compaction (Compact still works).
	CompactThreshold int
	// HubThreshold is the adjacency-partition size at which compaction
	// rebuilds materialise hub bitset indexes in the fresh CSR base (0
	// takes graph.DefaultHubThreshold; negative disables indexing). It
	// should match the threshold the initial base was built with.
	HubThreshold int
	// OnEpoch, when non-nil, is called after every epoch publication
	// (mutation batch or compaction) with the new snapshot, outside the
	// writer lock. The DB layer uses it to drop stale plan-cache entries.
	OnEpoch func(*Snapshot)
	// Dir, when non-empty, makes the store durable: every mutation batch
	// is appended (length-prefixed, CRC32-checksummed) to a write-ahead
	// log in this directory before its epoch is published, compaction
	// writes an atomic full-graph checkpoint and prunes the log, and Open
	// recovers by loading the newest checkpoint and replaying the WAL
	// tail (a torn final record is dropped). Empty disables durability.
	Dir string
	// Sync selects the WAL fsync policy (per-batch, interval or off);
	// SyncInterval is the interval policy's period (0 takes the wal
	// package default). Both ignored when Dir is empty.
	Sync         wal.SyncPolicy
	SyncInterval time.Duration
}

// EdgeOp names one directed labelled edge in a Batch.
type EdgeOp struct {
	Src, Dst graph.VertexID
	Label    graph.Label
}

// Batch is one atomic group of mutations. Vertices are appended first, so
// AddEdges/DeleteEdges may reference vertices created by the same batch.
type Batch struct {
	// AddVertices appends one vertex per label; IDs are assigned
	// sequentially from the current vertex count.
	AddVertices []graph.Label
	AddEdges    []EdgeOp
	DeleteEdges []EdgeOp
}

// ApplyResult reports what one batch did.
type ApplyResult struct {
	// Epoch is the snapshot version the batch produced.
	Epoch uint64
	// FirstNewVertex is the ID of the first appended vertex (meaningful
	// only when AddedVertices > 0; subsequent IDs are consecutive).
	FirstNewVertex graph.VertexID
	AddedVertices  int
	// AddedEdges counts edges actually inserted (duplicates and self-loops
	// are dropped, matching the frozen Builder's semantics).
	AddedEdges int
	// DeletedEdges counts edges actually removed (deleting an absent edge
	// is a no-op).
	DeletedEdges int
	// Vertices and Edges are the post-batch live counts, read atomically
	// with the epoch so the triple is self-consistent even under
	// concurrent writers.
	Vertices, Edges int
}

// DB is the mutable, versioned graph store. Readers obtain an immutable
// Snapshot with a single atomic load and never block; writers serialise
// on an internal mutex and publish each batch as a new epoch with an
// atomic pointer swap.
type DB struct {
	mu        sync.Mutex // serialises writers and the compaction swap
	cur       atomic.Pointer[Snapshot]
	threshold int
	onEpoch   func(*Snapshot)

	compacting  atomic.Bool
	compactions atomic.Int64
	compactWG   sync.WaitGroup
	// compactSeconds observes full compaction-pass durations (rebuild
	// through publish, including the checkpoint write for durable
	// stores). Owned here so it records regardless of whether a metrics
	// registry is attached; exposed via CompactionHistogram.
	compactSeconds *metrics.Histogram

	// Durability state; log is nil for an ephemeral store.
	log      *wal.Log
	dir      string
	closed   atomic.Bool
	replayed int  // WAL records replayed at open
	tornTail bool // open dropped a torn final record
	// checkpointEpoch is the epoch covered by the newest durable
	// checkpoint (0 when the implicit checkpoint is the boot-time base);
	// checkpoints counts checkpoint files written by this process.
	checkpointEpoch atomic.Uint64
	checkpoints     atomic.Int64
	// checkpointTime is when the newest durable checkpoint was written
	// (UnixNano; 0 = no checkpoint yet), feeding the checkpoint-age
	// gauge.
	checkpointTime atomic.Int64
}

// compactBuckets spans compaction-pass durations: sub-millisecond
// overlay folds on small graphs up to multi-second full rebuilds.
var compactBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CompactionHistogram exposes the store's compaction-duration histogram
// for registration in a metrics registry.
func (db *DB) CompactionHistogram() *metrics.Histogram { return db.compactSeconds }

// FsyncHistogram exposes the WAL's fsync-latency histogram, or nil for
// an ephemeral store.
func (db *DB) FsyncHistogram() *metrics.Histogram {
	if db.log == nil {
		return nil
	}
	return db.log.FsyncHistogram()
}

// CheckpointTime reports when the newest durable checkpoint was
// written; ok is false when none exists (recovery would replay from the
// boot-time base).
func (db *DB) CheckpointTime() (time.Time, bool) {
	ns := db.checkpointTime.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// Open wraps a frozen base graph in a live DB. Without Config.Dir the
// store starts at epoch 0 over base and loses every mutation on process
// exit. With Config.Dir, Open recovers the durable state: the newest
// checkpoint in the directory replaces base (when one exists), the WAL
// tail past the checkpoint's epoch is replayed into the overlay, a torn
// final record is truncated away, and the returned store resumes at the
// recovered epoch with every subsequent batch logged before publication.
// The caller must pass the same logical base graph across restarts —
// until the first checkpoint lands, base itself is the recovery root.
func Open(base *graph.Graph, cfg Config) (*DB, error) {
	th := cfg.CompactThreshold
	if th == 0 {
		th = DefaultCompactThreshold
	}
	db := &DB{threshold: th, onEpoch: cfg.OnEpoch, compactSeconds: metrics.NewHistogram(compactBuckets)}
	if cfg.Dir == "" {
		s := newBaseSnapshot(base, 0)
		s.hubThreshold = cfg.HubThreshold
		db.cur.Store(s)
		return db, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: data dir: %w", err)
	}
	wal.RemoveStaleTemp(cfg.Dir)
	ckpt, ckptEpoch, ok, err := wal.LoadNewestCheckpoint(cfg.Dir, cfg.HubThreshold)
	if err != nil {
		return nil, err
	}
	start := uint64(0)
	if ok {
		base, start = ckpt, ckptEpoch
	}
	cur := newBaseSnapshot(base, start)
	cur.hubThreshold = cfg.HubThreshold
	replayed := 0
	log, info, err := wal.Open(cfg.Dir, start, wal.Options{Policy: cfg.Sync, Interval: cfg.SyncInterval}, func(rec wal.Record) error {
		if rec.Epoch <= start {
			// Covered by the checkpoint: the segment holding it was rotated
			// out before the checkpoint landed but not yet pruned.
			return nil
		}
		ns, _, err := applyBatch(cur, batchFromRecord(rec))
		if err != nil {
			return fmt.Errorf("live: wal replay epoch %d: %w", rec.Epoch, err)
		}
		if ns != cur {
			// Epochs can skip numbers across compactions (which publish an
			// epoch without a WAL record), so trust the logged epoch.
			ns.epoch = rec.Epoch
			cur = ns
		}
		replayed++
		return nil
	})
	if err != nil {
		return nil, err
	}
	db.log, db.dir = log, cfg.Dir
	db.replayed, db.tornTail = replayed, info.TornTail
	db.checkpointEpoch.Store(start)
	if ok {
		if mt, found := wal.CheckpointModTime(cfg.Dir, start); found {
			db.checkpointTime.Store(mt.UnixNano())
		}
	}
	db.cur.Store(cur)
	return db, nil
}

// batchFromRecord converts a logged record back into a Batch.
func batchFromRecord(rec wal.Record) Batch {
	b := Batch{AddVertices: rec.AddVertices}
	if len(rec.AddEdges) > 0 {
		b.AddEdges = make([]EdgeOp, len(rec.AddEdges))
		for i, e := range rec.AddEdges {
			b.AddEdges[i] = EdgeOp{Src: e.Src, Dst: e.Dst, Label: e.Label}
		}
	}
	if len(rec.DeleteEdges) > 0 {
		b.DeleteEdges = make([]EdgeOp, len(rec.DeleteEdges))
		for i, e := range rec.DeleteEdges {
			b.DeleteEdges[i] = EdgeOp{Src: e.Src, Dst: e.Dst, Label: e.Label}
		}
	}
	return b
}

// recordFromBatch converts a batch (plus the epoch its application will
// publish) into its WAL record.
func recordFromBatch(epoch uint64, b Batch) wal.Record {
	rec := wal.Record{Epoch: epoch, AddVertices: b.AddVertices}
	if len(b.AddEdges) > 0 {
		rec.AddEdges = make([]wal.EdgeOp, len(b.AddEdges))
		for i, e := range b.AddEdges {
			rec.AddEdges[i] = wal.EdgeOp{Src: e.Src, Dst: e.Dst, Label: e.Label}
		}
	}
	if len(b.DeleteEdges) > 0 {
		rec.DeleteEdges = make([]wal.EdgeOp, len(b.DeleteEdges))
		for i, e := range b.DeleteEdges {
			rec.DeleteEdges[i] = wal.EdgeOp{Src: e.Src, Dst: e.Dst, Label: e.Label}
		}
	}
	return rec
}

// Close waits for background compaction and closes the WAL (syncing any
// buffered appends). Apply fails afterwards; reads keep working against
// the last snapshot. A nil error is returned for an ephemeral store.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	db.compactWG.Wait()
	if db.log != nil {
		return db.log.Close()
	}
	return nil
}

// WALStats reports the durability layer's state; Enabled is false (and
// the rest zero) for an ephemeral store.
type WALStats struct {
	Enabled bool
	// Bytes is the live WAL size across segments; Appended counts batches
	// logged by this process.
	Bytes    int64
	Appended int64
	// Replayed is the number of WAL records recovered at open, and
	// TornTailDropped whether a torn final record was discarded.
	Replayed        int
	TornTailDropped bool
	// CheckpointEpoch is the newest durable checkpoint's epoch (0 = the
	// boot-time base); Checkpoints counts checkpoints this process wrote.
	CheckpointEpoch uint64
	Checkpoints     int64
}

// WALStats reports the durability layer's state.
func (db *DB) WALStats() WALStats {
	if db.log == nil {
		return WALStats{}
	}
	return WALStats{
		Enabled:         true,
		Bytes:           db.log.Size(),
		Appended:        db.log.Appended(),
		Replayed:        db.replayed,
		TornTailDropped: db.tornTail,
		CheckpointEpoch: db.checkpointEpoch.Load(),
		Checkpoints:     db.checkpoints.Load(),
	}
}

// notifyEpoch invokes the epoch hook; callers must not hold db.mu.
func (db *DB) notifyEpoch(s *Snapshot) {
	if db.onEpoch != nil {
		db.onEpoch(s)
	}
}

// Snapshot returns the current epoch's immutable view. The caller may
// hold it for arbitrarily long; later mutations never disturb it.
func (db *DB) Snapshot() *Snapshot { return db.cur.Load() }

// Epoch returns the current epoch number.
func (db *DB) Epoch() uint64 { return db.cur.Load().epoch }

// Compactions returns how many compaction passes have completed.
func (db *DB) Compactions() int64 { return db.compactions.Load() }

// AddVertex appends a vertex with the given label and returns its ID.
func (db *DB) AddVertex(label graph.Label) (graph.VertexID, error) {
	res, err := db.Apply(Batch{AddVertices: []graph.Label{label}})
	if err != nil {
		return 0, err
	}
	return res.FirstNewVertex, nil
}

// AddEdge inserts the directed edge src->dst with the given label. It
// reports whether the edge was new (false: duplicate or self-loop, both
// dropped to preserve the frozen Builder's semantics).
func (db *DB) AddEdge(src, dst graph.VertexID, label graph.Label) (bool, error) {
	res, err := db.Apply(Batch{AddEdges: []EdgeOp{{src, dst, label}}})
	if err != nil {
		return false, err
	}
	return res.AddedEdges > 0, nil
}

// DeleteEdge removes the directed edge src->dst with the given (exact)
// label, reporting whether it existed.
func (db *DB) DeleteEdge(src, dst graph.VertexID, label graph.Label) (bool, error) {
	res, err := db.Apply(Batch{DeleteEdges: []EdgeOp{{src, dst, label}}})
	if err != nil {
		return false, err
	}
	return res.DeletedEdges > 0, nil
}

// Apply runs one batch atomically: either the whole batch is published as
// a single new epoch, or (on validation error) nothing changes. A batch
// whose operations are all no-ops (duplicate adds, self-loops, absent
// deletes) publishes nothing: the graph is logically unchanged, so
// cached plans and catalogue statistics stay valid. In-flight readers
// keep their snapshot.
func (db *DB) Apply(b Batch) (ApplyResult, error) {
	if db.closed.Load() {
		return ApplyResult{}, fmt.Errorf("live: store is closed")
	}
	db.mu.Lock()
	s := db.cur.Load()
	ns, res, err := applyBatch(s, b)
	if err != nil {
		db.mu.Unlock()
		return ApplyResult{}, err
	}
	published := ns != s && (res.AddedVertices > 0 || res.AddedEdges > 0 || res.DeletedEdges > 0)
	if published && db.log != nil {
		// Durability point: the raw client batch is logged (replay re-drops
		// duplicates and absent deletes deterministically) and made durable
		// per the sync policy before the epoch becomes visible, so an
		// acknowledged batch can never outrun the log.
		if err := db.log.Append(recordFromBatch(ns.epoch, b)); err != nil {
			db.mu.Unlock()
			return ApplyResult{}, err
		}
	}
	if published {
		db.cur.Store(ns)
	}
	cur := db.cur.Load()
	res.Epoch = cur.epoch
	res.Vertices = cur.NumVertices()
	res.Edges = cur.NumEdges()
	db.mu.Unlock()
	if published {
		db.notifyEpoch(cur)
	}
	db.maybeCompact()
	return res, nil
}

// applyBatch builds the next epoch's snapshot from s without publishing it.
func applyBatch(s *Snapshot, b Batch) (*Snapshot, ApplyResult, error) {
	var res ApplyResult
	nAfter := s.NumVertices() + len(b.AddVertices)
	for _, l := range b.AddVertices {
		if l == graph.WildcardLabel {
			return nil, res, fmt.Errorf("live: vertex uses reserved wildcard label")
		}
	}
	for _, e := range b.AddEdges {
		if e.Label == graph.WildcardLabel {
			return nil, res, fmt.Errorf("live: edge (%d->%d) uses reserved wildcard label", e.Src, e.Dst)
		}
		if int(e.Src) >= nAfter || int(e.Dst) >= nAfter {
			return nil, res, fmt.Errorf("live: edge (%d->%d) references vertex beyond %d", e.Src, e.Dst, nAfter-1)
		}
	}
	for _, e := range b.DeleteEdges {
		if e.Label == graph.WildcardLabel {
			return nil, res, fmt.Errorf("live: delete (%d->%d) uses reserved wildcard label", e.Src, e.Dst)
		}
		if int(e.Src) >= nAfter || int(e.Dst) >= nAfter {
			return nil, res, fmt.Errorf("live: delete (%d->%d) references vertex beyond %d", e.Src, e.Dst, nAfter-1)
		}
	}
	if len(b.AddVertices) == 0 && len(b.AddEdges) == 0 && len(b.DeleteEdges) == 0 {
		return s, res, nil
	}

	ns := s.clone()
	if len(b.AddVertices) > 0 {
		res.FirstNewVertex = graph.VertexID(ns.NumVertices())
		res.AddedVertices = len(b.AddVertices)
		for _, l := range b.AddVertices {
			ns.extra = append(ns.extra, l)
			if int(l)+1 > ns.numVertexLabels {
				ns.numVertexLabels = int(l) + 1
			}
		}
	}
	// touched tracks which adjacencies are already private to ns, so a
	// batch touching the same vertex repeatedly clones it once.
	touchedF := map[graph.VertexID]bool{}
	touchedB := map[graph.VertexID]bool{}
	for _, e := range b.AddEdges {
		if e.Src == e.Dst {
			continue // self-loops dropped: subgraph queries bind distinct vertices
		}
		if ns.HasEdge(e.Src, e.Dst, e.Label) {
			continue
		}
		ns.materialize(graph.Forward, e.Src, touchedF).insert(e.Label, ns.VertexLabel(e.Dst), e.Dst)
		ns.materialize(graph.Backward, e.Dst, touchedB).insert(e.Label, ns.VertexLabel(e.Src), e.Src)
		ns.m++
		ns.deltaOps++
		if int(e.Label)+1 > ns.numEdgeLabels {
			ns.numEdgeLabels = int(e.Label) + 1
		}
		res.AddedEdges++
	}
	for _, e := range b.DeleteEdges {
		if !ns.HasEdge(e.Src, e.Dst, e.Label) {
			continue
		}
		ns.materialize(graph.Forward, e.Src, touchedF).remove(e.Label, ns.VertexLabel(e.Dst), e.Dst)
		ns.materialize(graph.Backward, e.Dst, touchedB).remove(e.Label, ns.VertexLabel(e.Src), e.Src)
		ns.m--
		ns.deltaOps++
		res.DeletedEdges++
	}
	return ns, res, nil
}

// materialize returns a private (mutable) vadj for v in dir, cloning the
// published overlay entry or materialising the base adjacency on first
// touch.
func (s *Snapshot) materialize(dir graph.Direction, v graph.VertexID, touched map[graph.VertexID]bool) *vadj {
	ov := s.overlay(dir)
	if touched[v] {
		return ov[v]
	}
	var a *vadj
	switch {
	case ov[v] != nil:
		a = ov[v].clone()
	case int(v) < s.nBase:
		a = fromPartitions(s.base, v, dir)
	default:
		a = &vadj{}
	}
	ov[v] = a
	touched[v] = true
	return a
}

// maybeCompact kicks off a background compaction pass when the overlay
// has outgrown the threshold and no pass is already running.
func (db *DB) maybeCompact() {
	if db.threshold <= 0 || db.closed.Load() {
		return
	}
	if db.cur.Load().deltaOps < db.threshold {
		return
	}
	if !db.compacting.CompareAndSwap(false, true) {
		return
	}
	db.compactWG.Add(1)
	go func() {
		defer db.compactWG.Done()
		defer db.compacting.Store(false)
		// The overlay only grows until a compaction lands, so an error here
		// (impossible for overlays built through Apply, which validates)
		// just leaves the delta in place for the next trigger.
		_ = db.compactOnce()
	}()
}

// Compact folds the current overlay into a fresh CSR base synchronously
// and bumps the epoch. A no-op when the overlay is empty.
func (db *DB) Compact() error { return db.compactOnce() }

// WaitCompaction blocks until any in-flight background compaction pass
// finishes — a test and shutdown aid.
func (db *DB) WaitCompaction() { db.compactWG.Wait() }

// compactOnce rebuilds the base CSR from the current snapshot. The
// rebuild runs without the writer lock (queries and writers proceed);
// the swap retries if a writer published a new epoch mid-rebuild, and
// after repeated conflicts rebuilds once more under the lock so the pass
// terminates even under a sustained write load.
func (db *DB) compactOnce() error {
	t0 := time.Now()
	defer func() { db.compactSeconds.ObserveDuration(time.Since(t0)) }()
	for tries := 0; ; tries++ {
		s := db.cur.Load()
		if s.deltaOps == 0 && len(s.extra) == 0 {
			return nil
		}
		g, err := Rebuild(s)
		if err != nil {
			return err
		}
		db.mu.Lock()
		if db.cur.Load() == s {
			return db.publishCompacted(s, g) // unlocks db.mu
		}
		if tries >= 2 {
			s = db.cur.Load()
			if s.deltaOps == 0 && len(s.extra) == 0 {
				// A concurrent pass already landed; publishing a rebuild of
				// an empty overlay would bump the epoch for no logical change.
				db.mu.Unlock()
				return nil
			}
			g, err = Rebuild(s)
			if err != nil {
				db.mu.Unlock()
				return err
			}
			return db.publishCompacted(s, g) // unlocks db.mu
		}
		db.mu.Unlock()
	}
}

// publishCompacted swaps in the rebuilt base as a new epoch and, for a
// durable store, rotates the WAL onto a fresh segment while still under
// the writer lock — no append can land between the swap and the
// rotation, so the old segments hold exactly the records the new base
// covers. The expensive part, serialising the checkpoint, then runs
// outside the lock; only once it is durable are the covered segments and
// older checkpoints pruned. A crash anywhere in between recovers from
// the previous checkpoint plus the retained segments. Called with db.mu
// held; always unlocks it.
func (db *DB) publishCompacted(s *Snapshot, g *graph.Graph) error {
	ns := newBaseSnapshot(g, s.epoch+1)
	ns.hubThreshold = s.hubThreshold
	db.cur.Store(ns)
	var rotateErr error
	if db.log != nil {
		rotateErr = db.log.Rotate(ns.epoch)
	}
	db.mu.Unlock()
	db.compactions.Add(1)
	db.notifyEpoch(ns)
	if db.log == nil {
		return nil
	}
	if rotateErr != nil {
		// The in-memory swap already happened; durability just lags — the
		// current segment keeps accumulating records, all replayable from
		// the previous checkpoint. Skip the checkpoint and surface it.
		return rotateErr
	}
	if err := wal.WriteCheckpoint(db.dir, ns.epoch, g); err != nil {
		// Keep every segment: recovery still reaches the current state
		// from the previous checkpoint plus the full log.
		return err
	}
	db.checkpointEpoch.Store(ns.epoch)
	db.checkpoints.Add(1)
	db.checkpointTime.Store(time.Now().UnixNano())
	if err := db.log.DropSegmentsBefore(ns.epoch); err != nil {
		return err
	}
	return wal.DropCheckpointsBefore(db.dir, ns.epoch)
}
