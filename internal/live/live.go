package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"graphflow/internal/graph"
)

// DefaultCompactThreshold is the overlay size (mutations since the last
// base build) at which the background compactor folds the delta into a
// fresh CSR.
const DefaultCompactThreshold = 1 << 14

// Config tunes a live DB.
type Config struct {
	// CompactThreshold is the overlay mutation count that triggers
	// background compaction. 0 takes DefaultCompactThreshold; a negative
	// value disables automatic compaction (Compact still works).
	CompactThreshold int
	// HubThreshold is the adjacency-partition size at which compaction
	// rebuilds materialise hub bitset indexes in the fresh CSR base (0
	// takes graph.DefaultHubThreshold; negative disables indexing). It
	// should match the threshold the initial base was built with.
	HubThreshold int
	// OnEpoch, when non-nil, is called after every epoch publication
	// (mutation batch or compaction) with the new snapshot, outside the
	// writer lock. The DB layer uses it to drop stale plan-cache entries.
	OnEpoch func(*Snapshot)
}

// EdgeOp names one directed labelled edge in a Batch.
type EdgeOp struct {
	Src, Dst graph.VertexID
	Label    graph.Label
}

// Batch is one atomic group of mutations. Vertices are appended first, so
// AddEdges/DeleteEdges may reference vertices created by the same batch.
type Batch struct {
	// AddVertices appends one vertex per label; IDs are assigned
	// sequentially from the current vertex count.
	AddVertices []graph.Label
	AddEdges    []EdgeOp
	DeleteEdges []EdgeOp
}

// ApplyResult reports what one batch did.
type ApplyResult struct {
	// Epoch is the snapshot version the batch produced.
	Epoch uint64
	// FirstNewVertex is the ID of the first appended vertex (meaningful
	// only when AddedVertices > 0; subsequent IDs are consecutive).
	FirstNewVertex graph.VertexID
	AddedVertices  int
	// AddedEdges counts edges actually inserted (duplicates and self-loops
	// are dropped, matching the frozen Builder's semantics).
	AddedEdges int
	// DeletedEdges counts edges actually removed (deleting an absent edge
	// is a no-op).
	DeletedEdges int
	// Vertices and Edges are the post-batch live counts, read atomically
	// with the epoch so the triple is self-consistent even under
	// concurrent writers.
	Vertices, Edges int
}

// DB is the mutable, versioned graph store. Readers obtain an immutable
// Snapshot with a single atomic load and never block; writers serialise
// on an internal mutex and publish each batch as a new epoch with an
// atomic pointer swap.
type DB struct {
	mu        sync.Mutex // serialises writers and the compaction swap
	cur       atomic.Pointer[Snapshot]
	threshold int
	onEpoch   func(*Snapshot)

	compacting  atomic.Bool
	compactions atomic.Int64
	compactWG   sync.WaitGroup
}

// Open wraps a frozen base graph in a live DB at epoch 0.
func Open(base *graph.Graph, cfg Config) *DB {
	th := cfg.CompactThreshold
	if th == 0 {
		th = DefaultCompactThreshold
	}
	db := &DB{threshold: th, onEpoch: cfg.OnEpoch}
	s := newBaseSnapshot(base, 0)
	s.hubThreshold = cfg.HubThreshold
	db.cur.Store(s)
	return db
}

// notifyEpoch invokes the epoch hook; callers must not hold db.mu.
func (db *DB) notifyEpoch(s *Snapshot) {
	if db.onEpoch != nil {
		db.onEpoch(s)
	}
}

// Snapshot returns the current epoch's immutable view. The caller may
// hold it for arbitrarily long; later mutations never disturb it.
func (db *DB) Snapshot() *Snapshot { return db.cur.Load() }

// Epoch returns the current epoch number.
func (db *DB) Epoch() uint64 { return db.cur.Load().epoch }

// Compactions returns how many compaction passes have completed.
func (db *DB) Compactions() int64 { return db.compactions.Load() }

// AddVertex appends a vertex with the given label and returns its ID.
func (db *DB) AddVertex(label graph.Label) (graph.VertexID, error) {
	res, err := db.Apply(Batch{AddVertices: []graph.Label{label}})
	if err != nil {
		return 0, err
	}
	return res.FirstNewVertex, nil
}

// AddEdge inserts the directed edge src->dst with the given label. It
// reports whether the edge was new (false: duplicate or self-loop, both
// dropped to preserve the frozen Builder's semantics).
func (db *DB) AddEdge(src, dst graph.VertexID, label graph.Label) (bool, error) {
	res, err := db.Apply(Batch{AddEdges: []EdgeOp{{src, dst, label}}})
	if err != nil {
		return false, err
	}
	return res.AddedEdges > 0, nil
}

// DeleteEdge removes the directed edge src->dst with the given (exact)
// label, reporting whether it existed.
func (db *DB) DeleteEdge(src, dst graph.VertexID, label graph.Label) (bool, error) {
	res, err := db.Apply(Batch{DeleteEdges: []EdgeOp{{src, dst, label}}})
	if err != nil {
		return false, err
	}
	return res.DeletedEdges > 0, nil
}

// Apply runs one batch atomically: either the whole batch is published as
// a single new epoch, or (on validation error) nothing changes. A batch
// whose operations are all no-ops (duplicate adds, self-loops, absent
// deletes) publishes nothing: the graph is logically unchanged, so
// cached plans and catalogue statistics stay valid. In-flight readers
// keep their snapshot.
func (db *DB) Apply(b Batch) (ApplyResult, error) {
	db.mu.Lock()
	s := db.cur.Load()
	ns, res, err := applyBatch(s, b)
	if err != nil {
		db.mu.Unlock()
		return ApplyResult{}, err
	}
	published := ns != s && (res.AddedVertices > 0 || res.AddedEdges > 0 || res.DeletedEdges > 0)
	if published {
		db.cur.Store(ns)
	}
	cur := db.cur.Load()
	res.Epoch = cur.epoch
	res.Vertices = cur.NumVertices()
	res.Edges = cur.NumEdges()
	db.mu.Unlock()
	if published {
		db.notifyEpoch(cur)
	}
	db.maybeCompact()
	return res, nil
}

// applyBatch builds the next epoch's snapshot from s without publishing it.
func applyBatch(s *Snapshot, b Batch) (*Snapshot, ApplyResult, error) {
	var res ApplyResult
	nAfter := s.NumVertices() + len(b.AddVertices)
	for _, l := range b.AddVertices {
		if l == graph.WildcardLabel {
			return nil, res, fmt.Errorf("live: vertex uses reserved wildcard label")
		}
	}
	for _, e := range b.AddEdges {
		if e.Label == graph.WildcardLabel {
			return nil, res, fmt.Errorf("live: edge (%d->%d) uses reserved wildcard label", e.Src, e.Dst)
		}
		if int(e.Src) >= nAfter || int(e.Dst) >= nAfter {
			return nil, res, fmt.Errorf("live: edge (%d->%d) references vertex beyond %d", e.Src, e.Dst, nAfter-1)
		}
	}
	for _, e := range b.DeleteEdges {
		if e.Label == graph.WildcardLabel {
			return nil, res, fmt.Errorf("live: delete (%d->%d) uses reserved wildcard label", e.Src, e.Dst)
		}
		if int(e.Src) >= nAfter || int(e.Dst) >= nAfter {
			return nil, res, fmt.Errorf("live: delete (%d->%d) references vertex beyond %d", e.Src, e.Dst, nAfter-1)
		}
	}
	if len(b.AddVertices) == 0 && len(b.AddEdges) == 0 && len(b.DeleteEdges) == 0 {
		return s, res, nil
	}

	ns := s.clone()
	if len(b.AddVertices) > 0 {
		res.FirstNewVertex = graph.VertexID(ns.NumVertices())
		res.AddedVertices = len(b.AddVertices)
		for _, l := range b.AddVertices {
			ns.extra = append(ns.extra, l)
			if int(l)+1 > ns.numVertexLabels {
				ns.numVertexLabels = int(l) + 1
			}
		}
	}
	// touched tracks which adjacencies are already private to ns, so a
	// batch touching the same vertex repeatedly clones it once.
	touchedF := map[graph.VertexID]bool{}
	touchedB := map[graph.VertexID]bool{}
	for _, e := range b.AddEdges {
		if e.Src == e.Dst {
			continue // self-loops dropped: subgraph queries bind distinct vertices
		}
		if ns.HasEdge(e.Src, e.Dst, e.Label) {
			continue
		}
		ns.materialize(graph.Forward, e.Src, touchedF).insert(e.Label, ns.VertexLabel(e.Dst), e.Dst)
		ns.materialize(graph.Backward, e.Dst, touchedB).insert(e.Label, ns.VertexLabel(e.Src), e.Src)
		ns.m++
		ns.deltaOps++
		if int(e.Label)+1 > ns.numEdgeLabels {
			ns.numEdgeLabels = int(e.Label) + 1
		}
		res.AddedEdges++
	}
	for _, e := range b.DeleteEdges {
		if !ns.HasEdge(e.Src, e.Dst, e.Label) {
			continue
		}
		ns.materialize(graph.Forward, e.Src, touchedF).remove(e.Label, ns.VertexLabel(e.Dst), e.Dst)
		ns.materialize(graph.Backward, e.Dst, touchedB).remove(e.Label, ns.VertexLabel(e.Src), e.Src)
		ns.m--
		ns.deltaOps++
		res.DeletedEdges++
	}
	return ns, res, nil
}

// materialize returns a private (mutable) vadj for v in dir, cloning the
// published overlay entry or materialising the base adjacency on first
// touch.
func (s *Snapshot) materialize(dir graph.Direction, v graph.VertexID, touched map[graph.VertexID]bool) *vadj {
	ov := s.overlay(dir)
	if touched[v] {
		return ov[v]
	}
	var a *vadj
	switch {
	case ov[v] != nil:
		a = ov[v].clone()
	case int(v) < s.nBase:
		a = fromPartitions(s.base, v, dir)
	default:
		a = &vadj{}
	}
	ov[v] = a
	touched[v] = true
	return a
}

// maybeCompact kicks off a background compaction pass when the overlay
// has outgrown the threshold and no pass is already running.
func (db *DB) maybeCompact() {
	if db.threshold <= 0 {
		return
	}
	if db.cur.Load().deltaOps < db.threshold {
		return
	}
	if !db.compacting.CompareAndSwap(false, true) {
		return
	}
	db.compactWG.Add(1)
	go func() {
		defer db.compactWG.Done()
		defer db.compacting.Store(false)
		// The overlay only grows until a compaction lands, so an error here
		// (impossible for overlays built through Apply, which validates)
		// just leaves the delta in place for the next trigger.
		_ = db.compactOnce()
	}()
}

// Compact folds the current overlay into a fresh CSR base synchronously
// and bumps the epoch. A no-op when the overlay is empty.
func (db *DB) Compact() error { return db.compactOnce() }

// WaitCompaction blocks until any in-flight background compaction pass
// finishes — a test and shutdown aid.
func (db *DB) WaitCompaction() { db.compactWG.Wait() }

// compactOnce rebuilds the base CSR from the current snapshot. The
// rebuild runs without the writer lock (queries and writers proceed);
// the swap retries if a writer published a new epoch mid-rebuild, and
// after repeated conflicts rebuilds once more under the lock so the pass
// terminates even under a sustained write load.
func (db *DB) compactOnce() error {
	for tries := 0; ; tries++ {
		s := db.cur.Load()
		if s.deltaOps == 0 && len(s.extra) == 0 {
			return nil
		}
		g, err := Rebuild(s)
		if err != nil {
			return err
		}
		db.mu.Lock()
		if db.cur.Load() == s {
			ns := newBaseSnapshot(g, s.epoch+1)
			ns.hubThreshold = s.hubThreshold
			db.cur.Store(ns)
			db.mu.Unlock()
			db.compactions.Add(1)
			db.notifyEpoch(ns)
			return nil
		}
		if tries >= 2 {
			s = db.cur.Load()
			if s.deltaOps == 0 && len(s.extra) == 0 {
				// A concurrent pass already landed; publishing a rebuild of
				// an empty overlay would bump the epoch for no logical change.
				db.mu.Unlock()
				return nil
			}
			g, err = Rebuild(s)
			if err != nil {
				db.mu.Unlock()
				return err
			}
			ns := newBaseSnapshot(g, s.epoch+1)
			ns.hubThreshold = s.hubThreshold
			db.cur.Store(ns)
			db.mu.Unlock()
			db.compactions.Add(1)
			db.notifyEpoch(ns)
			return nil
		}
		db.mu.Unlock()
	}
}
