// Package live is the versioned storage subsystem over the immutable CSR
// store: a mutable delta overlay (per-vertex sorted adjacency rebuilt
// copy-on-write for mutated vertices, plus appended vertices) layered on
// a frozen graph.Graph base, exposed through epoch-stamped Snapshots that
// satisfy graph.View. Compiled plans run unmodified against a Snapshot:
// every read keeps the base layout's sorted-adjacency invariants, so the
// executor's Intersect/IntersectK kernels and the WCO extenders work on
// overlay vertices exactly as they do on base vertices.
//
// Writers go through DB (AddVertex/AddEdge/DeleteEdge/Apply); each batch
// publishes a fresh Snapshot with an atomic pointer swap, so in-flight
// queries keep the epoch they started on (snapshot isolation) and readers
// never take a lock. A background compactor folds the overlay into a new
// CSR base once it exceeds a size threshold.
package live

import (
	"graphflow/internal/graph"
)

// vadj is one mutated vertex's fully materialised adjacency in one
// direction: the same (edge label, neighbour label, ID)-sorted layout as
// the base CSR, but private to the vertex. Partition i spans
// nbrs[pStart[i]:end] where end is pStart[i+1] (or len(nbrs) for the
// last). A vadj is immutable once its snapshot is published.
type vadj struct {
	nbrs   []graph.VertexID
	pE, pN []graph.Label
	pStart []int
}

// clone deep-copies the adjacency so a new epoch can modify it without
// disturbing published snapshots.
func (a *vadj) clone() *vadj {
	return &vadj{
		nbrs:   append([]graph.VertexID(nil), a.nbrs...),
		pE:     append([]graph.Label(nil), a.pE...),
		pN:     append([]graph.Label(nil), a.pN...),
		pStart: append([]int(nil), a.pStart...),
	}
}

// end returns the exclusive end of partition i.
func (a *vadj) end(i int) int {
	if i+1 < len(a.pStart) {
		return a.pStart[i+1]
	}
	return len(a.nbrs)
}

// findPartition returns the directory index whose (eLabel, nLabel) is the
// first >= the given pair, and whether it matches exactly.
func (a *vadj) findPartition(e, nl graph.Label) (int, bool) {
	lo, hi := 0, len(a.pE)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.pE[mid] < e || (a.pE[mid] == e && a.pN[mid] < nl) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(a.pE) && a.pE[lo] == e && a.pN[lo] == nl
}

// neighbors mirrors Graph.Neighbors over the private layout.
func (a *vadj) neighbors(e, nl graph.Label, buf []graph.VertexID) []graph.VertexID {
	if e != graph.WildcardLabel && nl != graph.WildcardLabel {
		if i, ok := a.findPartition(e, nl); ok {
			return a.nbrs[a.pStart[i]:a.end(i)]
		}
		return buf[:0]
	}
	var runs [][]graph.VertexID
	for i := range a.pE {
		if e != graph.WildcardLabel && a.pE[i] != e {
			continue
		}
		if nl != graph.WildcardLabel && a.pN[i] != nl {
			continue
		}
		if s, en := a.pStart[i], a.end(i); s < en {
			runs = append(runs, a.nbrs[s:en])
		}
	}
	switch len(runs) {
	case 0:
		return buf[:0]
	case 1:
		return runs[0]
	}
	return graph.MergeRuns(runs, buf)
}

// degree mirrors Graph.Degree.
func (a *vadj) degree(e, nl graph.Label) int {
	if e != graph.WildcardLabel && nl != graph.WildcardLabel {
		if i, ok := a.findPartition(e, nl); ok {
			return a.end(i) - a.pStart[i]
		}
		return 0
	}
	total := 0
	for i := range a.pE {
		if e != graph.WildcardLabel && a.pE[i] != e {
			continue
		}
		if nl != graph.WildcardLabel && a.pN[i] != nl {
			continue
		}
		total += a.end(i) - a.pStart[i]
	}
	return total
}

// lowerBound returns the first index in nbrs[lo:hi) whose value is >= x
// (hi if none) — the shared kernel of contains/insert/remove.
func (a *vadj) lowerBound(lo, hi int, x graph.VertexID) int {
	for lo < hi {
		mid := (lo + hi) / 2
		if a.nbrs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// contains reports whether partition i holds x, by binary search.
func (a *vadj) contains(i int, x graph.VertexID) bool {
	k := a.lowerBound(a.pStart[i], a.end(i), x)
	return k < a.end(i) && a.nbrs[k] == x
}

// hasEdge reports whether the (e, nl) partition holds dst; e may be
// WildcardLabel (nl is the destination's fixed vertex label).
func (a *vadj) hasEdge(e, nl graph.Label, dst graph.VertexID) bool {
	if e != graph.WildcardLabel {
		i, ok := a.findPartition(e, nl)
		return ok && a.contains(i, dst)
	}
	for i := range a.pE {
		if a.pN[i] == nl && a.contains(i, dst) {
			return true
		}
	}
	return false
}

// edges calls fn for every (src, nbr, eLabel) triple in directory order,
// returning false if fn stopped the iteration.
func (a *vadj) edges(src graph.VertexID, fn graph.EdgeFunc) bool {
	for i := range a.pE {
		el := a.pE[i]
		for _, dst := range a.nbrs[a.pStart[i]:a.end(i)] {
			if !fn(src, dst, el) {
				return false
			}
		}
	}
	return true
}

// insert adds (e, nl, x) keeping the sorted layout; false if already
// present. Only called on private (cloned, unpublished) adjacencies.
func (a *vadj) insert(e, nl graph.Label, x graph.VertexID) bool {
	i, ok := a.findPartition(e, nl)
	var pos int
	if ok {
		pos = a.lowerBound(a.pStart[i], a.end(i), x)
		if pos < a.end(i) && a.nbrs[pos] == x {
			return false
		}
	} else {
		// New partition directory entry at i; its run starts where the next
		// partition currently starts (or at the end).
		if i < len(a.pStart) {
			pos = a.pStart[i]
		} else {
			pos = len(a.nbrs)
		}
		a.pE = append(a.pE, 0)
		copy(a.pE[i+1:], a.pE[i:])
		a.pE[i] = e
		a.pN = append(a.pN, 0)
		copy(a.pN[i+1:], a.pN[i:])
		a.pN[i] = nl
		a.pStart = append(a.pStart, 0)
		copy(a.pStart[i+1:], a.pStart[i:])
		a.pStart[i] = pos
	}
	a.nbrs = append(a.nbrs, 0)
	copy(a.nbrs[pos+1:], a.nbrs[pos:])
	a.nbrs[pos] = x
	for j := i + 1; j < len(a.pStart); j++ {
		a.pStart[j]++
	}
	return true
}

// remove deletes (e, nl, x); false if absent. Only called on private
// adjacencies.
func (a *vadj) remove(e, nl graph.Label, x graph.VertexID) bool {
	i, ok := a.findPartition(e, nl)
	if !ok {
		return false
	}
	k := a.lowerBound(a.pStart[i], a.end(i), x)
	if k >= a.end(i) || a.nbrs[k] != x {
		return false
	}
	a.nbrs = append(a.nbrs[:k], a.nbrs[k+1:]...)
	for j := i + 1; j < len(a.pStart); j++ {
		a.pStart[j]--
	}
	if a.pStart[i] == a.end(i) {
		a.pE = append(a.pE[:i], a.pE[i+1:]...)
		a.pN = append(a.pN[:i], a.pN[i+1:]...)
		a.pStart = append(a.pStart[:i], a.pStart[i+1:]...)
	}
	return true
}

// fromPartitions materialises a base vertex's adjacency into a private vadj.
func fromPartitions(g *graph.Graph, v graph.VertexID, dir graph.Direction) *vadj {
	a := &vadj{}
	g.Partitions(v, dir, func(e, nl graph.Label, nbrs []graph.VertexID) bool {
		a.pE = append(a.pE, e)
		a.pN = append(a.pN, nl)
		a.pStart = append(a.pStart, len(a.nbrs))
		a.nbrs = append(a.nbrs, nbrs...)
		return true
	})
	return a
}

// Snapshot is one consistent epoch of the live graph: the immutable base
// CSR plus the overlay of mutated and appended vertices. It satisfies
// graph.View, is immutable after publication, and is safe for unbounded
// concurrent reads — queries compiled against a Snapshot observe exactly
// its epoch regardless of later mutations.
type Snapshot struct {
	base  *graph.Graph
	epoch uint64
	nBase int
	// extra holds the labels of vertices appended past the base; vertex
	// nBase+i carries extra[i].
	extra []graph.Label
	// fwd/bwd map mutated vertices to their private adjacency. A missing
	// entry means the base's adjacency (or empty, for appended vertices).
	fwd, bwd                       map[graph.VertexID]*vadj
	m                              int // live directed edge count
	deltaOps                       int // overlay mutations since the base was built
	numVertexLabels, numEdgeLabels int
	// hubThreshold is the hub bitset indexing knob carried from the store's
	// Config so compaction rebuilds index their fresh base the same way.
	hubThreshold int
}

var _ graph.View = (*Snapshot)(nil)

func newBaseSnapshot(g *graph.Graph, epoch uint64) *Snapshot {
	return &Snapshot{
		base:            g,
		epoch:           epoch,
		nBase:           g.NumVertices(),
		fwd:             map[graph.VertexID]*vadj{},
		bwd:             map[graph.VertexID]*vadj{},
		m:               g.NumEdges(),
		numVertexLabels: g.NumVertexLabels(),
		numEdgeLabels:   g.NumEdgeLabels(),
	}
}

// clone starts the next epoch: scalar state is copied, the overlay maps
// are shallow-copied (vadj values are cloned lazily on first touch).
func (s *Snapshot) clone() *Snapshot {
	ns := *s
	ns.epoch = s.epoch + 1
	ns.extra = append([]graph.Label(nil), s.extra...)
	ns.fwd = make(map[graph.VertexID]*vadj, len(s.fwd))
	for v, a := range s.fwd {
		ns.fwd[v] = a
	}
	ns.bwd = make(map[graph.VertexID]*vadj, len(s.bwd))
	for v, a := range s.bwd {
		ns.bwd[v] = a
	}
	return &ns
}

// Epoch returns the snapshot's version number; it increases by one per
// applied mutation batch and per compaction.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Base returns the immutable CSR under the overlay.
func (s *Snapshot) Base() *graph.Graph { return s.base }

// DeltaOps returns the number of overlay mutations applied since the base
// was last (re)built — the compaction trigger metric.
func (s *Snapshot) DeltaOps() int { return s.deltaOps }

// NumVertices implements graph.View.
func (s *Snapshot) NumVertices() int { return s.nBase + len(s.extra) }

// NumEdges implements graph.View: the live (post-mutation) edge count.
func (s *Snapshot) NumEdges() int { return s.m }

// NumVertexLabels implements graph.View.
func (s *Snapshot) NumVertexLabels() int { return s.numVertexLabels }

// NumEdgeLabels implements graph.View.
func (s *Snapshot) NumEdgeLabels() int { return s.numEdgeLabels }

// VertexLabel implements graph.View.
func (s *Snapshot) VertexLabel(v graph.VertexID) graph.Label {
	if int(v) < s.nBase {
		return s.base.VertexLabel(v)
	}
	return s.extra[int(v)-s.nBase]
}

func (s *Snapshot) overlay(dir graph.Direction) map[graph.VertexID]*vadj {
	if dir == graph.Forward {
		return s.fwd
	}
	return s.bwd
}

// Neighbors implements graph.View. Vertices without overlay entries read
// straight from the base CSR (the common case after compaction), so
// unmutated regions pay one map lookup over the frozen store.
//
//gf:noalloc
func (s *Snapshot) Neighbors(v graph.VertexID, dir graph.Direction, e, nl graph.Label, buf []graph.VertexID) []graph.VertexID {
	if a := s.overlay(dir)[v]; a != nil {
		return a.neighbors(e, nl, buf)
	}
	if int(v) < s.nBase {
		return s.base.Neighbors(v, dir, e, nl, buf)
	}
	return buf[:0]
}

// NeighborBitset implements graph.View: vertices whose adjacency is
// served by the base CSR expose its hub bitset index; overlay-resident
// (mutated or appended) vertices return nil and fall back to the sorted
// kernels until the next compaction folds them into a fresh indexed
// base. Base bitsets never contain appended vertices, and Bitset.Contains
// reports IDs beyond the base universe as absent, so probing overlay IDs
// into a base bitset is safe.
//
//gf:noalloc
func (s *Snapshot) NeighborBitset(v graph.VertexID, dir graph.Direction, e, nl graph.Label) *graph.Bitset {
	if s.overlay(dir)[v] != nil || int(v) >= s.nBase {
		return nil
	}
	return s.base.NeighborBitset(v, dir, e, nl)
}

// Degree implements graph.View.
//
//gf:noalloc
func (s *Snapshot) Degree(v graph.VertexID, dir graph.Direction, e, nl graph.Label) int {
	if a := s.overlay(dir)[v]; a != nil {
		return a.degree(e, nl)
	}
	if int(v) < s.nBase {
		return s.base.Degree(v, dir, e, nl)
	}
	return 0
}

// OutDegree implements graph.View.
func (s *Snapshot) OutDegree(v graph.VertexID) int {
	if a := s.fwd[v]; a != nil {
		return len(a.nbrs)
	}
	if int(v) < s.nBase {
		return s.base.OutDegree(v)
	}
	return 0
}

// InDegree implements graph.View.
func (s *Snapshot) InDegree(v graph.VertexID) int {
	if a := s.bwd[v]; a != nil {
		return len(a.nbrs)
	}
	if int(v) < s.nBase {
		return s.base.InDegree(v)
	}
	return 0
}

// HasEdge implements graph.View.
//
//gf:noalloc
func (s *Snapshot) HasEdge(src, dst graph.VertexID, e graph.Label) bool {
	if a := s.fwd[src]; a != nil {
		return a.hasEdge(e, s.VertexLabel(dst), dst)
	}
	if int(src) < s.nBase && int(dst) < s.nBase {
		return s.base.HasEdge(src, dst, e)
	}
	// A vertex without an overlay entry has no edges beyond the base, and
	// the base cannot reference appended vertices.
	return false
}

// Edges implements graph.View.
func (s *Snapshot) Edges(fn graph.EdgeFunc) {
	n := s.NumVertices()
	stopped := false
	wrap := func(src, dst graph.VertexID, l graph.Label) bool {
		if !fn(src, dst, l) {
			stopped = true
			return false
		}
		return true
	}
	for v := 0; v < n && !stopped; v++ {
		s.EdgesOf(graph.VertexID(v), wrap)
	}
}

// EdgesOf implements graph.View.
func (s *Snapshot) EdgesOf(src graph.VertexID, fn graph.EdgeFunc) {
	if a := s.fwd[src]; a != nil {
		a.edges(src, fn)
		return
	}
	if int(src) < s.nBase {
		s.base.EdgesOf(src, fn)
	}
}

// Rebuild materialises the snapshot's logical graph as a fresh immutable
// CSR — the compaction step, also used by tests to cross-check overlay
// reads against a from-scratch build. The rebuilt base carries a hub
// bitset index at the store's configured threshold, so overlay vertices
// regain their fast-intersection representation at every compaction.
func Rebuild(s *Snapshot) (*graph.Graph, error) {
	b := graph.NewBuilder(s.NumVertices())
	b.SetHubThreshold(s.hubThreshold)
	for v := 0; v < s.NumVertices(); v++ {
		b.SetVertexLabel(graph.VertexID(v), s.VertexLabel(graph.VertexID(v)))
	}
	s.Edges(func(src, dst graph.VertexID, l graph.Label) bool {
		b.AddEdge(src, dst, l)
		return true
	})
	return b.Build()
}
