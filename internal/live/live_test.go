package live

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"graphflow/internal/graph"
)

// mustOpen wraps Open for tests that use ephemeral (non-durable)
// configs, where Open cannot fail.
func mustOpen(t *testing.T, base *graph.Graph, cfg Config) *DB {
	t.Helper()
	db, err := Open(base, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// randomBase builds a random labelled base graph.
func randomBase(rng *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetVertexLabel(graph.VertexID(v), graph.Label(rng.Intn(3)))
	}
	for i := 0; i < n*3; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), graph.Label(rng.Intn(2)))
	}
	return b.MustBuild()
}

// randomBatch draws mutations against a snapshot's current dimensions:
// vertex appends, edge adds (including duplicates, self-loops and edges
// to brand-new vertices) and deletes (existing and absent).
func randomBatch(rng *rand.Rand, s *Snapshot) Batch {
	var b Batch
	for i := rng.Intn(3); i > 0; i-- {
		b.AddVertices = append(b.AddVertices, graph.Label(rng.Intn(3)))
	}
	nAfter := s.NumVertices() + len(b.AddVertices)
	for i := rng.Intn(20); i > 0; i-- {
		b.AddEdges = append(b.AddEdges, EdgeOp{
			Src:   graph.VertexID(rng.Intn(nAfter)),
			Dst:   graph.VertexID(rng.Intn(nAfter)),
			Label: graph.Label(rng.Intn(2)),
		})
	}
	// Deletes: mostly existing edges, some absent ones.
	var existing []EdgeOp
	s.Edges(func(src, dst graph.VertexID, l graph.Label) bool {
		existing = append(existing, EdgeOp{src, dst, l})
		return true
	})
	for i := rng.Intn(12); i > 0 && len(existing) > 0; i-- {
		b.DeleteEdges = append(b.DeleteEdges, existing[rng.Intn(len(existing))])
	}
	for i := rng.Intn(4); i > 0; i-- {
		b.DeleteEdges = append(b.DeleteEdges, EdgeOp{
			Src:   graph.VertexID(rng.Intn(nAfter)),
			Dst:   graph.VertexID(rng.Intn(nAfter)),
			Label: graph.Label(rng.Intn(2)),
		})
	}
	return b
}

// collectEdges drains a View's Edges iterator.
func collectEdges(g graph.View) []EdgeOp {
	var out []EdgeOp
	g.Edges(func(src, dst graph.VertexID, l graph.Label) bool {
		out = append(out, EdgeOp{src, dst, l})
		return true
	})
	return out
}

// checkEquivalent verifies that the snapshot and a from-scratch rebuild
// of its logical graph agree across the whole View surface.
func checkEquivalent(t *testing.T, s *Snapshot, rng *rand.Rand) {
	t.Helper()
	want, err := Rebuild(s)
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if s.NumVertices() != want.NumVertices() {
		t.Fatalf("NumVertices %d, rebuild %d", s.NumVertices(), want.NumVertices())
	}
	if s.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges %d, rebuild %d", s.NumEdges(), want.NumEdges())
	}
	if !reflect.DeepEqual(collectEdges(s), collectEdges(want)) {
		t.Fatalf("Edges iteration diverges from rebuild")
	}
	n := s.NumVertices()
	labels := []graph.Label{0, 1, 2, graph.WildcardLabel}
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		if s.VertexLabel(id) != want.VertexLabel(id) {
			t.Fatalf("VertexLabel(%d) = %d, rebuild %d", v, s.VertexLabel(id), want.VertexLabel(id))
		}
		if s.OutDegree(id) != want.OutDegree(id) || s.InDegree(id) != want.InDegree(id) {
			t.Fatalf("degree mismatch at %d: out %d/%d in %d/%d",
				v, s.OutDegree(id), want.OutDegree(id), s.InDegree(id), want.InDegree(id))
		}
		for _, dir := range []graph.Direction{graph.Forward, graph.Backward} {
			for _, el := range labels {
				for _, nl := range labels {
					got := s.Neighbors(id, dir, el, nl, nil)
					ref := want.Neighbors(id, dir, el, nl, nil)
					if len(got) != len(ref) {
						t.Fatalf("Neighbors(%d,%v,%d,%d): %v vs rebuild %v", v, dir, el, nl, got, ref)
					}
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("Neighbors(%d,%v,%d,%d): %v vs rebuild %v", v, dir, el, nl, got, ref)
						}
					}
					if d, rd := s.Degree(id, dir, el, nl), want.Degree(id, dir, el, nl); d != rd {
						t.Fatalf("Degree(%d,%v,%d,%d) = %d, rebuild %d", v, dir, el, nl, d, rd)
					}
				}
			}
		}
	}
	for i := 0; i < 200; i++ {
		src := graph.VertexID(rng.Intn(n))
		dst := graph.VertexID(rng.Intn(n))
		for _, el := range labels {
			if s.HasEdge(src, dst, el) != want.HasEdge(src, dst, el) {
				t.Fatalf("HasEdge(%d,%d,%d) = %v, rebuild %v",
					src, dst, el, s.HasEdge(src, dst, el), want.HasEdge(src, dst, el))
			}
		}
	}
}

func TestOverlayMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := mustOpen(t, randomBase(rng, 20+rng.Intn(20)), Config{CompactThreshold: -1})
		for batch := 0; batch < 6; batch++ {
			if _, err := db.Apply(randomBatch(rng, db.Snapshot())); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			checkEquivalent(t, db.Snapshot(), rng)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := mustOpen(t, randomBase(rng, 30), Config{CompactThreshold: -1})
	before := db.Snapshot()
	edgesBefore := collectEdges(before)
	mBefore := before.NumEdges()

	for i := 0; i < 5; i++ {
		if _, err := db.Apply(randomBatch(rng, db.Snapshot())); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if before.NumEdges() != mBefore {
		t.Fatalf("old snapshot's edge count changed: %d -> %d", mBefore, before.NumEdges())
	}
	if !reflect.DeepEqual(collectEdges(before), edgesBefore) {
		t.Fatal("old snapshot's edges changed after later mutations and compaction")
	}
	if db.Epoch() <= before.Epoch() {
		t.Fatalf("epoch did not advance: %d vs %d", db.Epoch(), before.Epoch())
	}
}

func TestCompactionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := mustOpen(t, randomBase(rng, 25), Config{CompactThreshold: -1})
	for i := 0; i < 4; i++ {
		if _, err := db.Apply(randomBatch(rng, db.Snapshot())); err != nil {
			t.Fatal(err)
		}
	}
	beforeEdges := collectEdges(db.Snapshot())
	epoch := db.Epoch()
	if err := db.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	s := db.Snapshot()
	if s.Epoch() != epoch+1 {
		t.Fatalf("compaction epoch %d, want %d", s.Epoch(), epoch+1)
	}
	if s.DeltaOps() != 0 || len(s.fwd) != 0 {
		t.Fatalf("compacted snapshot still has an overlay: %d ops, %d dirty", s.DeltaOps(), len(s.fwd))
	}
	if !reflect.DeepEqual(collectEdges(s), beforeEdges) {
		t.Fatal("compaction changed the logical edge set")
	}
	// Compacting an empty overlay is a no-op and must not bump the epoch.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != s.Epoch() {
		t.Fatalf("no-op compaction bumped epoch to %d", db.Epoch())
	}
}

func TestAddVertexAndEdgesToNewVertices(t *testing.T) {
	db := mustOpen(t, graph.NewBuilder(2).MustBuild(), Config{CompactThreshold: -1})
	v, err := db.AddVertex(2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("new vertex ID %d, want 2", v)
	}
	if added, err := db.AddEdge(0, v, 1); err != nil || !added {
		t.Fatalf("AddEdge to new vertex: added=%v err=%v", added, err)
	}
	// Batch that creates a vertex and wires it in one epoch.
	res, err := db.Apply(Batch{
		AddVertices: []graph.Label{1},
		AddEdges:    []EdgeOp{{Src: 3, Dst: 0, Label: 0}, {Src: 2, Dst: 3, Label: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AddedVertices != 1 || res.FirstNewVertex != 3 || res.AddedEdges != 2 {
		t.Fatalf("batch result %+v", res)
	}
	s := db.Snapshot()
	if !s.HasEdge(3, 0, 0) || !s.HasEdge(2, 3, 0) {
		t.Fatal("edges to batch-created vertex missing")
	}
	if s.NumVertexLabels() < 3 || s.NumEdgeLabels() < 2 {
		t.Fatalf("label counts not raised: v=%d e=%d", s.NumVertexLabels(), s.NumEdgeLabels())
	}
	// Dedup and self-loop semantics match the frozen Builder.
	if added, err := db.AddEdge(0, 2, 1); err != nil || added {
		t.Fatalf("duplicate edge reported as added=%v err=%v", added, err)
	}
	if added, err := db.AddEdge(1, 1, 0); err != nil || added {
		t.Fatalf("self-loop reported as added=%v err=%v", added, err)
	}
	if del, err := db.DeleteEdge(0, 1, 0); err != nil || del {
		t.Fatalf("absent delete reported as deleted=%v err=%v", del, err)
	}
}

func TestApplyValidation(t *testing.T) {
	db := mustOpen(t, graph.NewBuilder(3).MustBuild(), Config{CompactThreshold: -1})
	epoch := db.Epoch()
	cases := []Batch{
		{AddEdges: []EdgeOp{{Src: 0, Dst: 99, Label: 0}}},
		{AddEdges: []EdgeOp{{Src: 0, Dst: 1, Label: graph.WildcardLabel}}},
		{AddVertices: []graph.Label{graph.WildcardLabel}},
		{DeleteEdges: []EdgeOp{{Src: 0, Dst: 99, Label: 0}}},
	}
	for i, b := range cases {
		if _, err := db.Apply(b); err == nil {
			t.Errorf("case %d: Apply succeeded, want error", i)
		}
	}
	if db.Epoch() != epoch {
		t.Fatalf("failed batches moved the epoch: %d -> %d", epoch, db.Epoch())
	}
	// An empty batch is a no-op, not an epoch bump.
	if _, err := db.Apply(Batch{}); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != epoch {
		t.Fatalf("empty batch moved the epoch: %d -> %d", epoch, db.Epoch())
	}
}

// TestConcurrentReadersWritersCompaction drives writers, readers and the
// background compactor together; run under -race this checks the
// copy-on-write publication discipline.
func TestConcurrentReadersWritersCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := mustOpen(t, randomBase(rng, 40), Config{CompactThreshold: 25})
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := db.Snapshot()
				n := s.NumVertices()
				// A consistency invariant that holds within any single
				// snapshot: every edge seen by Edges is visible to HasEdge.
				cnt := 0
				s.Edges(func(src, dst graph.VertexID, l graph.Label) bool {
					cnt++
					if cnt > 50 {
						return false
					}
					if !s.HasEdge(src, dst, l) {
						t.Errorf("edge %d->%d (%d) iterated but not found", src, dst, l)
						return false
					}
					return true
				})
				v := graph.VertexID(rng.Intn(n))
				_ = s.Neighbors(v, graph.Forward, graph.WildcardLabel, graph.WildcardLabel, nil)
				_ = s.InDegree(v)
			}
		}(int64(r))
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed * 131))
			for i := 0; i < 60; i++ {
				if _, err := db.Apply(randomBatch(rng, db.Snapshot())); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	db.WaitCompaction()
	if db.Compactions() == 0 {
		t.Log("no background compaction triggered (load-dependent; not an error)")
	}
	checkEquivalent(t, db.Snapshot(), rng)
}
