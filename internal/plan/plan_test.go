package plan

import (
	"strings"
	"testing"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// wcoPlan builds the WCO chain for q following the vertex order given.
func wcoPlan(t *testing.T, q *query.Graph, order []int) *Plan {
	t.Helper()
	var e *query.Edge
	for i := range q.Edges {
		ed := q.Edges[i]
		if (ed.From == order[0] && ed.To == order[1]) || (ed.From == order[1] && ed.To == order[0]) {
			e = &ed
			break
		}
	}
	if e == nil {
		t.Fatalf("first two vertices not adjacent")
	}
	var node Node = NewScan(q, *e)
	for _, v := range order[2:] {
		ext, err := NewExtend(q, node, v)
		if err != nil {
			t.Fatalf("NewExtend(a%d): %v", v+1, err)
		}
		node = ext
	}
	return &Plan{Query: q, Root: node}
}

func TestWCOPlanStructure(t *testing.T) {
	q := query.Q1()
	p := wcoPlan(t, q, []int{0, 1, 2})
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !p.IsWCO() || p.Kind() != "wco" {
		t.Errorf("kind = %q, want wco", p.Kind())
	}
	ext := p.Root.(*Extend)
	if len(ext.Descriptors) != 2 {
		t.Fatalf("triangle close should intersect 2 lists, got %d", len(ext.Descriptors))
	}
	// a1->a3 gives forward list of slot 0; a2->a3 forward of slot 1.
	for _, d := range ext.Descriptors {
		if d.Dir != graph.Forward {
			t.Errorf("asymmetric triangle close should use forward lists, got %v", d)
		}
	}
}

func TestExtendDirections(t *testing.T) {
	// Query a1->a2, a3->a2: extending {a1,a2} by a3 uses a2's backward list.
	q := query.MustParse("a1->a2, a3->a2")
	p := wcoPlan(t, q, []int{0, 1, 2})
	ext := p.Root.(*Extend)
	if len(ext.Descriptors) != 1 || ext.Descriptors[0].Dir != graph.Backward {
		t.Errorf("descriptors = %v, want one backward", ext.Descriptors)
	}
	if ext.Descriptors[0].TupleIdx != 1 {
		t.Errorf("descriptor should read slot 1 (a2), got %d", ext.Descriptors[0].TupleIdx)
	}
}

func TestExtendErrors(t *testing.T) {
	q := query.Q1()
	scan := NewScan(q, q.Edges[0]) // a1->a2
	if _, err := NewExtend(q, scan, 0); err == nil {
		t.Error("extending by an already-matched vertex should fail")
	}
	q2 := query.Q11() // path a1..a5
	scan2 := NewScan(q2, q2.Edges[0])
	if _, err := NewExtend(q2, scan2, 4); err == nil {
		t.Error("extending by a non-adjacent vertex should fail")
	}
}

func TestHashJoinStructure(t *testing.T) {
	q := query.Q8()                             // two triangles sharing a3
	left := wcoPlan(t, q, []int{0, 1, 2}).Root  // a1,a2,a3 triangle
	right := wcoPlan(t, q, []int{2, 3, 4}).Root // a3,a4,a5 triangle
	hj, err := NewHashJoin(left, right)
	if err != nil {
		t.Fatalf("NewHashJoin: %v", err)
	}
	if len(hj.JoinVertices) != 1 || hj.JoinVertices[0] != 2 {
		t.Errorf("join vertices = %v, want [a3]", hj.JoinVertices)
	}
	p := &Plan{Query: q, Root: hj}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Kind() != "hybrid" {
		t.Errorf("kind = %q, want hybrid (joins + intersections)", p.Kind())
	}
	if len(hj.Out()) != 5 {
		t.Errorf("output width = %d, want 5", len(hj.Out()))
	}
	// Output must contain each query vertex exactly once.
	seen := map[int]bool{}
	for _, v := range hj.Out() {
		if seen[v] {
			t.Errorf("vertex a%d duplicated in output", v+1)
		}
		seen[v] = true
	}
}

func TestHashJoinErrors(t *testing.T) {
	q := query.Q8()
	left := wcoPlan(t, q, []int{0, 1, 2}).Root
	if _, err := NewHashJoin(left, left); err == nil {
		t.Error("join of identical covers should fail")
	}
	sub := wcoPlan(t, q, []int{0, 1}).Root // a1,a2 edge: subset of left
	if _, err := NewHashJoin(left, sub); err == nil {
		t.Error("join where one side covers the other should fail")
	}
}

func TestValidateRejectsPartialRoot(t *testing.T) {
	q := query.Q1()
	scan := NewScan(q, q.Edges[0])
	p := &Plan{Query: q, Root: scan}
	if err := p.Validate(); err == nil {
		t.Error("root not covering query should fail validation")
	}
}

func TestDescribe(t *testing.T) {
	q := query.Q1()
	p := wcoPlan(t, q, []int{0, 1, 2})
	d := p.Describe()
	if !strings.Contains(d, "SCAN") || !strings.Contains(d, "EXTEND") {
		t.Errorf("Describe output missing operators:\n%s", d)
	}
}

func TestKindBJ(t *testing.T) {
	// Path a1->a2->a3->a4: bushy join of two edges is a BJ plan.
	q := query.MustParse("a1->a2, a2->a3, a3->a4")
	left := NewScan(q, q.Edges[0])
	right := NewScan(q, q.Edges[2])
	mid, err := NewExtend(q, left, 2) // a1,a2 extend to a3 (single list)
	if err != nil {
		t.Fatal(err)
	}
	hj, err := NewHashJoin(right, mid)
	if err != nil {
		t.Fatalf("NewHashJoin: %v", err)
	}
	p := &Plan{Query: q, Root: hj}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Kind() != "bj" {
		t.Errorf("kind = %q, want bj", p.Kind())
	}
}
