// Package plan defines the physical query plans of Section 3.1 and 4.1:
// rooted trees of SCAN, EXTEND/INTERSECT (E/I) and HASH-JOIN operators.
// Leaves match a single query edge; an internal node with one child extends
// its child's matches by one query vertex via a multiway intersection; an
// internal node with two children joins its children's matches on their
// common query vertices. Every node is labelled with a projection of the
// query onto a subset of query vertices (the projection constraint).
package plan

import (
	"fmt"
	"strings"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// Descriptor describes one adjacency list an E/I operator intersects: the
// list of the vertex at tuple slot TupleIdx, in direction Dir, restricted to
// edge label EdgeLabel (paper Section 3.1: the (i, dir, le) triple).
type Descriptor struct {
	TupleIdx  int
	Dir       graph.Direction
	EdgeLabel graph.Label
}

// String implements fmt.Stringer.
func (d Descriptor) String() string {
	if d.EdgeLabel != 0 {
		return fmt.Sprintf("(%d,%s,%d)", d.TupleIdx, d.Dir, d.EdgeLabel)
	}
	return fmt.Sprintf("(%d,%s)", d.TupleIdx, d.Dir)
}

// Node is a plan operator. Every node reports its output tuple layout: a
// slice mapping tuple slot -> query vertex index.
type Node interface {
	// Out returns the output tuple layout (slot -> query vertex index).
	Out() []int
	// Children returns the child operators (0 for Scan, 1 for Extend, 2 for
	// HashJoin).
	Children() []Node
	fmt.Stringer
}

// Scan matches a single query edge by scanning the graph's forward
// adjacency lists restricted to the edge and endpoint labels. Output layout
// is [SrcVertex, DstVertex].
type Scan struct {
	SrcVertex, DstVertex int // query vertex indices
	EdgeLabel            graph.Label
	SrcLabel, DstLabel   graph.Label
	out                  [2]int
}

// NewScan builds a SCAN for the given query edge.
func NewScan(q *query.Graph, e query.Edge) *Scan {
	return &Scan{
		SrcVertex: e.From,
		DstVertex: e.To,
		EdgeLabel: e.Label,
		SrcLabel:  q.Vertices[e.From].Label,
		DstLabel:  q.Vertices[e.To].Label,
		out:       [2]int{e.From, e.To},
	}
}

// Out implements Node.
func (s *Scan) Out() []int { return s.out[:] }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// String implements fmt.Stringer.
func (s *Scan) String() string {
	return fmt.Sprintf("SCAN(a%d->a%d, el=%d)", s.SrcVertex+1, s.DstVertex+1, s.EdgeLabel)
}

// Extend is the EXTEND/INTERSECT operator: it extends each input tuple by
// one query vertex, computed as the intersection of the adjacency lists
// named by Descriptors, restricted to vertices labelled TargetLabel.
type Extend struct {
	Child        Node
	Descriptors  []Descriptor
	TargetVertex int // query vertex index of the new vertex
	TargetLabel  graph.Label
	out          []int
}

// NewExtend builds an E/I node extending child by query vertex target,
// using one descriptor per query edge between target and the child's
// vertices.
func NewExtend(q *query.Graph, child Node, target int) (*Extend, error) {
	childOut := child.Out()
	slotOf := make(map[int]int, len(childOut))
	mask := query.Mask(0)
	for slot, v := range childOut {
		slotOf[v] = slot
		mask |= query.Bit(v)
	}
	if mask&query.Bit(target) != 0 {
		return nil, fmt.Errorf("plan: target a%d already matched", target+1)
	}
	edges := q.EdgesBetween(mask, target)
	if len(edges) == 0 {
		return nil, fmt.Errorf("plan: target a%d not adjacent to child", target+1)
	}
	ext := &Extend{
		Child:        child,
		TargetVertex: target,
		TargetLabel:  q.Vertices[target].Label,
		out:          append(append([]int(nil), childOut...), target),
	}
	for _, e := range edges {
		if e.From == target {
			// target -> existing: follow existing vertex's backward list.
			ext.Descriptors = append(ext.Descriptors, Descriptor{
				TupleIdx: slotOf[e.To], Dir: graph.Backward, EdgeLabel: e.Label,
			})
		} else {
			ext.Descriptors = append(ext.Descriptors, Descriptor{
				TupleIdx: slotOf[e.From], Dir: graph.Forward, EdgeLabel: e.Label,
			})
		}
	}
	return ext, nil
}

// Out implements Node.
func (e *Extend) Out() []int { return e.out }

// Children implements Node.
func (e *Extend) Children() []Node { return []Node{e.Child} }

// String implements fmt.Stringer.
func (e *Extend) String() string {
	ds := make([]string, len(e.Descriptors))
	for i, d := range e.Descriptors {
		ds[i] = d.String()
	}
	return fmt.Sprintf("EXTEND(a%d <- %s)", e.TargetVertex+1, strings.Join(ds, "∩"))
}

// HashJoin joins the matches of Build and Probe on their common query
// vertices. Output layout is the probe layout followed by the build-only
// vertices in build-layout order.
type HashJoin struct {
	Build, Probe Node
	// JoinVertices are the query vertices common to both sides.
	JoinVertices []int
	out          []int
}

// NewHashJoin builds a HASH-JOIN of two subplans. The sides must overlap on
// at least one query vertex and neither may cover the other.
func NewHashJoin(build, probe Node) (*HashJoin, error) {
	bm, pm := CoverMask(build), CoverMask(probe)
	common := bm & pm
	if common == 0 {
		return nil, fmt.Errorf("plan: hash join sides share no vertices")
	}
	if bm|pm == bm || bm|pm == pm {
		return nil, fmt.Errorf("plan: hash join side covers the other")
	}
	hj := &HashJoin{Build: build, Probe: probe}
	for _, v := range build.Out() {
		if common&query.Bit(v) != 0 {
			hj.JoinVertices = append(hj.JoinVertices, v)
		}
	}
	hj.out = append(hj.out, probe.Out()...)
	for _, v := range build.Out() {
		if common&query.Bit(v) == 0 {
			hj.out = append(hj.out, v)
		}
	}
	return hj, nil
}

// Out implements Node.
func (h *HashJoin) Out() []int { return h.out }

// Children implements Node.
func (h *HashJoin) Children() []Node { return []Node{h.Build, h.Probe} }

// String implements fmt.Stringer.
func (h *HashJoin) String() string {
	vs := make([]string, len(h.JoinVertices))
	for i, v := range h.JoinVertices {
		vs[i] = fmt.Sprintf("a%d", v+1)
	}
	return fmt.Sprintf("HASHJOIN(on %s)", strings.Join(vs, ","))
}

// CoverMask returns the set of query vertices matched by the subplan.
func CoverMask(n Node) query.Mask {
	m := query.Mask(0)
	for _, v := range n.Out() {
		m |= query.Bit(v)
	}
	return m
}

// Plan wraps a root operator with the query it answers.
type Plan struct {
	Query *query.Graph
	Root  Node
	// EstimatedCost and EstimatedCardinality are filled by the optimizer
	// (i-cost units; expected number of matches).
	EstimatedCost        float64
	EstimatedCardinality float64
}

// Describe renders the plan tree, one operator per line, children indented.
func (p *Plan) Describe() string {
	var sb strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(p.Root, 0)
	return sb.String()
}

// Validate checks structural invariants: layouts are consistent, the root
// covers the whole query, and every node's vertex set induces a connected
// projection (the projection constraint of Section 4.1 is enforced by
// construction: nodes always carry *all* induced query edges because E/I
// descriptors and scans are derived from the query itself).
func (p *Plan) Validate() error {
	var rec func(n Node) error
	rec = func(n Node) error {
		seen := map[int]bool{}
		for _, v := range n.Out() {
			if v < 0 || v >= p.Query.NumVertices() {
				return fmt.Errorf("plan: slot references vertex %d out of range", v)
			}
			if seen[v] {
				return fmt.Errorf("plan: vertex a%d appears twice in layout", v+1)
			}
			seen[v] = true
		}
		if !p.Query.IsConnected(CoverMask(n)) {
			return fmt.Errorf("plan: node %s covers a disconnected projection", n)
		}
		for _, c := range n.Children() {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(p.Root); err != nil {
		return err
	}
	if CoverMask(p.Root) != query.AllMask(p.Query.NumVertices()) {
		return fmt.Errorf("plan: root does not cover the query")
	}
	return nil
}

// IsWCO reports whether the plan uses only SCAN and E/I operators (a
// query-vertex-at-a-time plan).
func (p *Plan) IsWCO() bool {
	ok := true
	Walk(p.Root, func(n Node) {
		if _, isJoin := n.(*HashJoin); isJoin {
			ok = false
		}
	})
	return ok
}

// Kind classifies the plan as "wco", "bj" or "hybrid" following the paper's
// Figure 7 legend (W/B/H): no hash join means WCO; hash joins with only
// single-list extensions (which are binary-join-convertible lookups) means
// BJ; hash joins plus genuine multiway intersections means hybrid.
func (p *Plan) Kind() string {
	hasJoin, hasIntersect := false, false
	Walk(p.Root, func(n Node) {
		switch op := n.(type) {
		case *HashJoin:
			hasJoin = true
		case *Extend:
			if len(op.Descriptors) > 1 {
				hasIntersect = true
			}
		}
	})
	switch {
	case !hasJoin:
		return "wco"
	case !hasIntersect:
		return "bj"
	default:
		return "hybrid"
	}
}

// StarSuffixLen reports the length of n's star-shaped suffix: the
// maximal trailing run of E/I operators whose target vertices are all
// leaves hanging off the prefix — every descriptor of every operator in
// the run reads a tuple slot bound *before* the run starts. Because an
// E/I operator carries one descriptor per query edge into its target,
// this simultaneously guarantees that no suffix vertex anchors another:
// the suffix vertices are pairwise non-adjacent leaves, so the matches
// above the prefix are exactly the cross-product set₁ × … × setₖ of the
// leaves' extension sets. The factorized execution tier evaluates such a
// suffix as one set computation per leaf per prefix tuple instead of
// enumerating the product; 0 means the node has no factorizable suffix.
func StarSuffixLen(n Node) int {
	width := len(n.Out())
	// chain[0] is the topmost (last-executed) operator.
	var chain []*Extend
	for cur := n; ; {
		ext, ok := cur.(*Extend)
		if !ok {
			break
		}
		chain = append(chain, ext)
		cur = ext.Child
	}
	best := 0
	for l := 1; l <= len(chain); l++ {
		prefixWidth := width - l
		ok := true
		for i := 0; i < l && ok; i++ {
			for _, d := range chain[i].Descriptors {
				if d.TupleIdx >= prefixWidth {
					ok = false
					break
				}
			}
		}
		if !ok {
			break
		}
		best = l
	}
	return best
}

// Walk visits every node of the subtree in pre-order.
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}
