package bench

import (
	"fmt"
	"io"
	"time"

	"graphflow/internal/adaptive"
	"graphflow/internal/datagen"
	"graphflow/internal/exec"
	"graphflow/internal/graph"
	"graphflow/internal/optimizer"
	"graphflow/internal/query"
)

// Ablations isolate the design choices DESIGN.md calls out, beyond the
// paper's own tables: cache-conscious costing, factorized counting,
// galloping intersections, hash-join build orientation, beam width, and
// the adaptive ordering cap.

// Ablation is a runnable design-choice study.
type Ablation struct {
	Name  string
	About string
	Run   func(w io.Writer, scale int) error
}

// Ablations returns the registry.
func Ablations() []Ablation {
	return []Ablation{
		{"cache-conscious", "optimizer pick quality with and without cache-aware costing (Section 5.2)", AblationCacheConscious},
		{"fast-count", "factorized counting vs full enumeration of the last extension", AblationFastCount},
		{"galloping", "galloping vs pure merge intersections on skewed lists", AblationGalloping},
		{"adaptive-kernels", "degree-adaptive bitset kernels vs sorted-only intersections on a hub-heavy graph", AblationAdaptiveKernels},
		{"beam-width", "plan cost vs beam width for large queries (Section 4.4)", AblationBeamWidth},
		{"adaptive-cap", "adaptive speedup vs the candidate-ordering cap", AblationAdaptiveCap},
	}
}

// RunAblation executes the named ablation ("all" for every one).
func RunAblation(name string, w io.Writer, scale int) error {
	if name == "all" {
		for _, a := range Ablations() {
			fmt.Fprintf(w, "=== %s: %s ===\n", a.Name, a.About)
			if err := a.Run(w, scale); err != nil {
				return fmt.Errorf("%s: %w", a.Name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	for _, a := range Ablations() {
		if a.Name == name {
			return a.Run(w, scale)
		}
	}
	return fmt.Errorf("bench: unknown ablation %q", name)
}

// AblationCacheConscious compares the runtime of the plan picked by the
// cache-conscious optimizer against the cache-oblivious one on the
// cache-sensitive queries (Q4, Q5): the paper's Section 5.2 claim is that
// obliviousness picks slower orderings.
func AblationCacheConscious(w io.Writer, scale int) error {
	g := dataset("Amazon", scale, 1)
	c := cat("Amazon", scale, 1)
	fmt.Fprintf(w, "%-6s %14s %14s\n", "query", "conscious(s)", "oblivious(s)")
	for _, j := range []int{4, 5} {
		q := query.Benchmark(j)
		conscious, err := optimizer.Optimize(q, optimizer.Options{Catalogue: c})
		if err != nil {
			return err
		}
		oblivious, err := optimizer.Optimize(q, optimizer.Options{Catalogue: c, CacheOblivious: true})
		if err != nil {
			return err
		}
		cs, _, _, err := timeRun(g, conscious, 1, false)
		if err != nil {
			return err
		}
		os, _, _, err := timeRun(g, oblivious, 1, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Q%-5d %14.3f %14.3f\n", j, cs, os)
	}
	return nil
}

// AblationFastCount measures factorized counting against full enumeration
// for count-only workloads.
func AblationFastCount(w io.Writer, scale int) error {
	g := dataset("Epinions", scale, 1)
	c := cat("Epinions", scale, 1)
	fmt.Fprintf(w, "%-6s %12s %12s %10s\n", "query", "enumerate(s)", "factorized(s)", "matches")
	for _, j := range []int{1, 3, 4, 6} {
		q := query.Benchmark(j)
		p, err := optimizer.Optimize(q, optimizer.Options{Catalogue: c, WCOOnly: true})
		if err != nil {
			return err
		}
		start := time.Now()
		slow, _, err := (&exec.Runner{Graph: g}).Count(p)
		if err != nil {
			return err
		}
		slowS := time.Since(start).Seconds()
		start = time.Now()
		fast, _, err := (&exec.Runner{Graph: g, FastCount: true}).Count(p)
		if err != nil {
			return err
		}
		fastS := time.Since(start).Seconds()
		if fast != slow {
			return fmt.Errorf("fast count mismatch on Q%d: %d vs %d", j, fast, slow)
		}
		fmt.Fprintf(w, "Q%-5d %12.3f %12.3f %10d\n", j, slowS, fastS, slow)
	}
	return nil
}

// AblationGalloping compares the intersection kernel with galloping
// enabled (production) against a pure merge on a skewed web graph, via
// triangle closing where hub lists meet tiny lists.
func AblationGalloping(w io.Writer, scale int) error {
	g := dataset("BerkStan", scale, 1)
	// Collect list pairs from real extensions: edges' forward lists.
	type pair struct{ a, b []graph.VertexID }
	var pairs []pair
	g.Edges(func(src, dst graph.VertexID, _ graph.Label) bool {
		a := g.Neighbors(src, graph.Forward, 0, 0, nil)
		b := g.Neighbors(dst, graph.Forward, 0, 0, nil)
		if len(a) > 0 && len(b) > 0 {
			pairs = append(pairs, pair{a, b})
		}
		return len(pairs) < 200000
	})
	var out []graph.VertexID
	start := time.Now()
	var total int
	for _, p := range pairs {
		out = graph.Intersect(p.a, p.b, out)
		total += len(out)
	}
	gallop := time.Since(start).Seconds()
	start = time.Now()
	var total2 int
	for _, p := range pairs {
		out = mergeIntersect(p.a, p.b, out)
		total2 += len(out)
	}
	merge := time.Since(start).Seconds()
	if total != total2 {
		return fmt.Errorf("galloping results differ: %d vs %d", total, total2)
	}
	fmt.Fprintf(w, "pairs=%d galloping=%.3fs merge-only=%.3fs speedup=%.2fx\n",
		len(pairs), gallop, merge, merge/gallop)
	return nil
}

// AblationAdaptiveKernels runs WCO plans end-to-end on a skewed web
// graph twice — once with hub bitset indexes at the default threshold,
// once with indexing disabled (sorted merge/gallop only) — and reports
// wall time plus the per-kernel dispatch counters of the indexed run,
// showing how much of the intersection work the degree-adaptive engine
// routes to the bitset kernels.
func AblationAdaptiveKernels(w io.Writer, scale int) error {
	// Private builds: the shared dataset cache must not have its hub
	// index rebuilt under other experiments.
	gOn := datagen.ByName("BerkStan", scale)
	gOff := datagen.ByName("BerkStan", scale)
	gOff.RebuildHubIndex(-1)
	c := cat("BerkStan", scale, 1)
	hub := gOn.HubIndexStats()
	fmt.Fprintf(w, "hub index: %d partitions, %.1f MiB (threshold %d)\n",
		hub.Partitions, float64(hub.Bytes)/(1<<20), hub.Threshold)
	fmt.Fprintf(w, "%-12s %10s %10s %8s %10s %10s %10s %10s\n",
		"query", "bitset(s)", "sorted(s)", "speedup", "probe", "and", "merge", "gallop")
	// Web-graph workloads whose intersections meet the in-degree hubs:
	// co-citation closes triangles through backward lists, and the
	// co-citation diamond intersects two hub in-lists pairwise (the
	// word-AND sweet spot).
	patterns := []struct{ name, pattern string }{
		{"tri", "a->b, b->c, a->c"},
		{"co-cite", "b->a, c->a, b->c"},
		{"diamond-in", "c->a, c->b, d->a, d->b"},
	}
	for _, pt := range patterns {
		q, err := query.ParseAny(pt.pattern)
		if err != nil {
			return err
		}
		p, err := optimizer.Optimize(q, optimizer.Options{Catalogue: c, WCOOnly: true})
		if err != nil {
			return err
		}
		onS, nOn, profOn, err := timeRun(gOn, p, 1, false)
		if err != nil {
			return err
		}
		offS, nOff, _, err := timeRun(gOff, p, 1, false)
		if err != nil {
			return err
		}
		if nOn != nOff {
			return fmt.Errorf("adaptive kernels changed %s's count: %d vs %d", pt.name, nOn, nOff)
		}
		k := profOn.Kernels
		fmt.Fprintf(w, "%-12s %10.3f %10.3f %7.2fx %10d %10d %10d %10d\n",
			pt.name, onS, offS, offS/onS, k.BitsetProbe, k.BitsetAnd, k.Merge, k.Gallop)
	}
	return nil
}

// mergeIntersect is the galloping-free reference kernel.
func mergeIntersect(a, b, out []graph.VertexID) []graph.VertexID {
	out = out[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// AblationBeamWidth sweeps the beam width of the large-query path on a
// 12-vertex query and reports estimated plan cost: wider beams should
// never produce worse plans.
func AblationBeamWidth(w io.Writer, scale int) error {
	c := cat("Amazon", scale, 1)
	// A 12-vertex "caterpillar": a path with pendant vertices.
	pattern := "a1->a2, a2->a3, a3->a4, a4->a5, a5->a6," +
		"a1->b1, a2->b2, a3->b3, a4->b4, a5->b5, a6->b6"
	q := query.MustParse(pattern)
	fmt.Fprintf(w, "%-6s %16s\n", "beam", "estimated cost")
	for _, bw := range []int{1, 2, 5, 10} {
		p, err := optimizer.Optimize(q, optimizer.Options{Catalogue: c, BeamWidth: bw})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6d %16.1f\n", bw, p.EstimatedCost)
	}
	return nil
}

// AblationAdaptiveCap sweeps the adaptive evaluator's candidate-ordering
// cap on the diamond-X query.
func AblationAdaptiveCap(w io.Writer, scale int) error {
	g := dataset("Google", scale, 1)
	c := cat("Google", scale, 1)
	q := query.Q4()
	plans, err := optimizer.EnumerateWCOPlans(q, optimizer.Options{Catalogue: c})
	if err != nil {
		return err
	}
	p := plans[len(plans)-1].Plan // the worst fixed plan benefits most
	fixed, _, _, err := timeRun(g, p, 1, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fixed(worst)=%.3fs\n", fixed)
	fmt.Fprintf(w, "%-6s %12s\n", "cap", "adaptive(s)")
	for _, cap := range []int{1, 2, 8, 48} {
		ev := &adaptive.Evaluator{Graph: g, Catalogue: c, Config: adaptive.Config{MaxOrderings: cap}}
		start := time.Now()
		if _, _, err := ev.Count(p); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6d %12.3f\n", cap, time.Since(start).Seconds())
	}
	return nil
}
