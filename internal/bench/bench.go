// Package bench regenerates every table and figure of the paper's
// evaluation (Section 8 and Appendices B-D) on the synthetic datasets of
// internal/datagen. Each experiment prints rows shaped like the paper's
// tables; EXPERIMENTS.md records how the measured shapes compare with the
// published ones.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"graphflow/internal/catalogue"
	"graphflow/internal/datagen"
	"graphflow/internal/exec"
	"graphflow/internal/graph"
	"graphflow/internal/optimizer"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	Name  string
	About string
	Run   func(w io.Writer, scale int) error
}

// Experiments returns the registry, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table3", "intersection cache on/off across diamond-X WCO plans", Table3},
		{"table4", "adjacency-list direction effects on the asymmetric triangle", Table4},
		{"table5", "intermediate-result effects on the tailed triangle", Table5},
		{"table6", "intersection-cache-hit effects on the symmetric diamond-X", Table6},
		{"fig7", "plan spectra with the optimizer's pick marked", Fig7},
		{"fig8", "fixed vs adaptive WCO plan spectra", Fig8},
		{"fig9", "EmptyHeaded plan spectra vs Graphflow spectra", Fig9},
		{"table9", "Graphflow vs EmptyHeaded (good/bad orderings)", Table9},
		{"fig11", "scalability across worker counts", Fig11},
		{"table10", "catalogue q-error vs sample size z", Table10},
		{"table11", "catalogue q-error vs maximum subgraph size h", Table11},
		{"table12", "CFL-style matcher vs Graphflow on labelled query sets", Table12},
		{"table13", "binary-join (Neo4j-style) baseline vs Graphflow", Table13},
	}
}

// Run executes the named experiment ("all" runs every one).
func Run(name string, w io.Writer, scale int) error {
	if name == "all" {
		for _, e := range Experiments() {
			fmt.Fprintf(w, "=== %s: %s ===\n", e.Name, e.About)
			if err := e.Run(w, scale); err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.Name == name {
			return e.Run(w, scale)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q", name)
}

// env caches datasets and catalogues across experiments within a process.
type envKey struct {
	dataset string
	scale   int
	labels  int
}

var (
	graphCache = map[envKey]*graph.Graph{}
	catCache   = map[envKey]*catalogue.Catalogue{}
)

// dataset returns the named graph with the given number of random edge
// labels (1 = unlabeled), memoised.
func dataset(name string, scale, labels int) *graph.Graph {
	key := envKey{name, scale, labels}
	if g, ok := graphCache[key]; ok {
		return g
	}
	g := datagen.ByName(name, scale)
	if g == nil {
		panic("bench: unknown dataset " + name)
	}
	if labels > 1 {
		g = datagen.Relabel(g, 1, labels, int64(labels)*7919)
	}
	graphCache[key] = g
	return g
}

// cat returns the default catalogue for a dataset, memoised.
func cat(name string, scale, labels int) *catalogue.Catalogue {
	key := envKey{name, scale, labels}
	if c, ok := catCache[key]; ok {
		return c
	}
	c := catalogue.Build(dataset(name, scale, labels), catalogue.Config{H: 3, Z: 1000, MaxInstances: 500, Seed: 4242})
	catCache[key] = c
	return c
}

// timeRun executes the plan and returns elapsed seconds plus the profile.
func timeRun(g *graph.Graph, p *plan.Plan, workers int, noCache bool) (float64, int64, exec.Profile, error) {
	r := &exec.Runner{Graph: g, Workers: workers, DisableCache: noCache}
	start := time.Now()
	n, prof, err := r.Count(p)
	return time.Since(start).Seconds(), n, prof, err
}

// labelQuery applies the QJi workload labelling to q (labels <= 1 returns
// q unchanged).
func labelQuery(q *query.Graph, labels int) *query.Graph {
	return query.WithRandomEdgeLabels(q, labels, int64(labels)*104729)
}

// orderName renders a QVO as the paper writes them (a2a3a1a4).
func orderName(order []int) string {
	s := ""
	for _, v := range order {
		s += fmt.Sprintf("a%d", v+1)
	}
	return s
}

// RandomQueryFromGraph draws a connected query with numVertices vertices
// whose structure and labels come from a random-walk sample of g, so the
// query is guaranteed to have at least one match (the CFL paper's query
// workload methodology). Dense queries keep all induced edges; sparse ones
// keep a spanning tree plus a few extras (average degree <= 3).
func RandomQueryFromGraph(g *graph.Graph, numVertices int, dense bool, rng *rand.Rand) *query.Graph {
	for attempt := 0; attempt < 100; attempt++ {
		verts := sampleConnectedVertices(g, numVertices, rng)
		if len(verts) < numVertices {
			continue
		}
		q := induceQuery(g, verts, dense, rng)
		if q != nil && q.Validate() == nil && noParallelEdges(q) {
			return q
		}
	}
	return nil
}

func sampleConnectedVertices(g *graph.Graph, n int, rng *rand.Rand) []graph.VertexID {
	if g.NumVertices() == 0 {
		return nil
	}
	start := graph.VertexID(rng.Intn(g.NumVertices()))
	seen := map[graph.VertexID]bool{start: true}
	order := []graph.VertexID{start}
	frontier := []graph.VertexID{start}
	for len(order) < n && len(frontier) > 0 {
		v := frontier[rng.Intn(len(frontier))]
		var nbrs []graph.VertexID
		nbrs = append(nbrs, g.Neighbors(v, graph.Forward, graph.WildcardLabel, graph.WildcardLabel, nil)...)
		nbrs = append(nbrs, g.Neighbors(v, graph.Backward, graph.WildcardLabel, graph.WildcardLabel, nil)...)
		added := false
		rng.Shuffle(len(nbrs), func(i, j int) { nbrs[i], nbrs[j] = nbrs[j], nbrs[i] })
		for _, w := range nbrs {
			if !seen[w] {
				seen[w] = true
				order = append(order, w)
				frontier = append(frontier, w)
				added = true
				break
			}
		}
		if !added {
			// Remove exhausted frontier vertex.
			for i, f := range frontier {
				if f == v {
					frontier = append(frontier[:i], frontier[i+1:]...)
					break
				}
			}
		}
	}
	return order
}

func induceQuery(g *graph.Graph, verts []graph.VertexID, dense bool, rng *rand.Rand) *query.Graph {
	idx := map[graph.VertexID]int{}
	q := &query.Graph{}
	for i, v := range verts {
		idx[v] = i
		q.Vertices = append(q.Vertices, query.Vertex{
			Name:  fmt.Sprintf("a%d", i+1),
			Label: g.VertexLabel(v),
		})
	}
	type pair struct{ a, b int }
	used := map[pair]bool{}
	var candidates []query.Edge
	for _, v := range verts {
		g.EdgesOf(v, func(src, dst graph.VertexID, el graph.Label) bool {
			j, ok := idx[dst]
			if !ok {
				return true
			}
			i := idx[src]
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			if used[pair{a, b}] {
				return true
			}
			used[pair{a, b}] = true
			candidates = append(candidates, query.Edge{From: i, To: j, Label: el})
			return true
		})
	}
	if len(candidates) < len(verts)-1 {
		return nil
	}
	if dense {
		q.Edges = candidates
		return q
	}
	// Sparse: spanning structure plus extras up to ~1.3x vertices.
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	target := len(verts) + len(verts)/3
	connected := make([]bool, len(verts))
	var edges []query.Edge
	connected[0] = true
	// Greedy spanning: repeatedly add an edge touching the connected part.
	for {
		added := false
		for _, e := range candidates {
			if len(edges) >= len(verts)-1 {
				break
			}
			if connected[e.From] != connected[e.To] {
				edges = append(edges, e)
				connected[e.From], connected[e.To] = true, true
				added = true
			}
		}
		if !added {
			break
		}
	}
	for _, e := range candidates {
		if len(edges) >= target {
			break
		}
		dup := false
		for _, have := range edges {
			if have == e {
				dup = true
				break
			}
		}
		if !dup {
			edges = append(edges, e)
		}
	}
	q.Edges = edges
	if !q.IsConnected(query.AllMask(len(verts))) {
		return nil
	}
	return q
}

func noParallelEdges(q *query.Graph) bool {
	seen := map[[2]int]bool{}
	for _, e := range q.Edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return false
		}
		seen[[2]int{a, b}] = true
	}
	return true
}

// optimizeAndRun is the Graphflow side of every comparison: plan with the
// DP optimizer, execute, time.
func optimizeAndRun(g *graph.Graph, c *catalogue.Catalogue, q *query.Graph, workers int) (float64, int64, *plan.Plan, error) {
	p, err := optimizer.Optimize(q, optimizer.Options{Catalogue: c})
	if err != nil {
		return 0, 0, nil, err
	}
	secs, n, _, err := timeRun(g, p, workers, false)
	return secs, n, p, err
}

// spectrumPoint is one executed plan of a spectrum.
type spectrumPoint struct {
	Kind    string
	Seconds float64
	Picked  bool
	// Capped marks plans that hit the match or build-row cap (the paper's
	// TL/Mm spectrum entries); Seconds then holds the time until the cap.
	Capped bool
}

// spectrum run caps keep pathological plans (giant binary joins on skewed
// graphs) from stalling the harness.
const (
	spectrumMatchCap = int64(10_000_000)
	spectrumBuildCap = int64(5_000_000)
)

func runSpectrum(g *graph.Graph, c *catalogue.Catalogue, q *query.Graph, maxPlans int) ([]spectrumPoint, error) {
	plans, err := optimizer.EnumeratePlans(q, optimizer.Options{Catalogue: c}, 12)
	if err != nil {
		return nil, err
	}
	if maxPlans > 0 && len(plans) > maxPlans {
		plans = plans[:maxPlans]
	}
	picked, err := optimizer.Optimize(q, optimizer.Options{Catalogue: c})
	if err != nil {
		return nil, err
	}
	pickedCost := picked.EstimatedCost
	var out []spectrumPoint
	marked := false
	for _, sp := range plans {
		r := &exec.Runner{Graph: g, MaxBuildRows: spectrumBuildCap}
		start := time.Now()
		n, _, err := r.CountUpTo(sp.Plan, spectrumMatchCap)
		secs := time.Since(start).Seconds()
		pt := spectrumPoint{Kind: sp.Kind, Seconds: secs}
		switch {
		case err == exec.ErrBuildTooLarge, n >= spectrumMatchCap:
			pt.Capped = true
		case err != nil:
			return nil, err
		}
		if !marked && sp.Cost <= pickedCost+1e-9 && sp.Kind == picked.Kind() {
			pt.Picked = true
			marked = true
		}
		out = append(out, pt)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Capped != out[j].Capped {
			return !out[i].Capped
		}
		return out[i].Seconds < out[j].Seconds
	})
	return out, nil
}

// Quick runs a trimmed variant of the named experiment: the same code
// paths on a reduced workload, sized for the repository's testing.B
// benchmarks (bench_test.go at the module root). The full experiments are
// available through Run and cmd/gfbench.
func Quick(name string, w io.Writer, scale int) error {
	switch name {
	case "table3":
		return Table3(w, scale)
	case "table4":
		return Table4(w, scale)
	case "table5":
		return Table5(w, scale)
	case "table6":
		return Table6(w, scale)
	case "fig7":
		return fig7Run(w, scale, []fig7Workload{{"Amazon", 1, []int{4}}})
	case "fig8":
		return fig8Run(w, scale, []fig8Workload{{"Amazon", []int{3}}})
	case "fig9":
		return fig9Run(w, scale, []int{3, 8})
	case "table9":
		return table9Run(w, scale, []string{"Amazon"}, []int{1}, []int{1, 3, 8})
	case "fig11":
		return fig11Run(w, scale, []fig11Load{{"LiveJournal", 1}, {"Google", 14}})
	case "table10":
		return table10Run(w, scale, []dsCfg{{"Amazon", 1}}, []int{100, 1000}, 10)
	case "table11":
		return table11Run(w, scale, []dsCfg{{"Amazon", 1}}, []int{2, 3}, 10)
	case "table12":
		return table12Run(w, []int64{100_000}, []int{10, 15}, 4)
	case "table13":
		return Table13(w, scale)
	}
	return fmt.Errorf("bench: unknown experiment %q", name)
}
