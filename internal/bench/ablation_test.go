package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationRegistry(t *testing.T) {
	as := Ablations()
	if len(as) != 6 {
		t.Fatalf("ablation registry has %d entries, want 6", len(as))
	}
	var buf bytes.Buffer
	if err := RunAblation("nope", &buf, 1); err == nil {
		t.Error("unknown ablation should error")
	}
}

func TestAblationFastCountSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationFastCount(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "factorized") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestAblationGallopingSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationGalloping(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestAblationAdaptiveKernelsSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationAdaptiveKernels(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hub index") || !strings.Contains(buf.String(), "probe") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestAblationBeamWidthSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationBeamWidth(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "beam") || strings.Count(out, "\n") < 4 {
		t.Errorf("output:\n%s", out)
	}
}

func TestAblationCacheConsciousSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationCacheConscious(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "oblivious") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestQuickVariantsCoverAllExperiments(t *testing.T) {
	// Every experiment id must have a Quick variant (the root benchmarks
	// depend on it).
	for _, e := range Experiments() {
		switch e.Name {
		// The quickest experiments run in full; everything must at least
		// dispatch without "unknown experiment".
		default:
			var buf bytes.Buffer
			err := Quick(e.Name, &buf, 1)
			if err != nil && strings.Contains(err.Error(), "unknown") {
				t.Errorf("no Quick variant for %s", e.Name)
			}
			// Only dispatch is checked here; heavy Quick variants run in
			// the benchmarks. Stop after dispatch for slow ones.
			if testing.Short() {
				return
			}
			return // one full Quick run (table3) suffices as a smoke test
		}
	}
}
