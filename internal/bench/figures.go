package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"graphflow/internal/adaptive"
	"graphflow/internal/catalogue"
	"graphflow/internal/exec"
	"graphflow/internal/ghd"
	"graphflow/internal/graph"
	"graphflow/internal/optimizer"
	"graphflow/internal/query"
)

// fig7Workloads mirrors Section 8.2: spectra are generated on the
// unlabeled Amazon-like graph, the Epinions-like graph with 3 labels, and
// the Google-like graph with 5 labels. Q12/Q13 on Epinions are omitted as
// in the paper (prohibitively many plans at spectrum granularity).
type fig7Workload struct {
	dataset string
	labels  int
	queries []int
}

var fig7Workloads = []fig7Workload{
	{"Amazon", 1, []int{1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13}},
	{"Epinions", 3, []int{1, 2, 3, 4, 5, 6, 7, 8, 11}},
	{"Google", 5, []int{1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13}},
}

// Fig7 regenerates the plan-spectrum charts: for each query/dataset, the
// runtime of every plan in the spectrum (classified W/B/H), with the
// optimizer's chosen plan marked with '*'. The paper's claim to check:
// the pick is optimal or near-optimal across spectra, and different plan
// classes win on different queries.
func Fig7(w io.Writer, scale int) error {
	return fig7Run(w, scale, fig7Workloads)
}

// fig7Run is the parameterised core of Fig7, reused by Quick.
func fig7Run(w io.Writer, scale int, workloads []fig7Workload) error {
	for _, wl := range workloads {
		g := dataset(wl.dataset, scale, wl.labels)
		c := cat(wl.dataset, scale, wl.labels)
		for _, j := range wl.queries {
			q := labelQuery(query.Benchmark(j), wl.labels)
			points, err := runSpectrum(g, c, q, 20)
			if err != nil {
				return fmt.Errorf("Q%d on %s: %w", j, wl.dataset, err)
			}
			fmt.Fprintf(w, "Q%d on %s (%d labels): %d plans\n", j, wl.dataset, wl.labels, len(points))
			for _, pt := range points {
				mark := " "
				if pt.Picked {
					mark = "*"
				}
				suffix := ""
				if pt.Capped {
					suffix = " (capped)"
				}
				fmt.Fprintf(w, "  %s %-7s %8.3fs%s\n", mark, pt.Kind, pt.Seconds, suffix)
			}
		}
	}
	return nil
}

// Fig8 regenerates the adaptive spectra: for each WCO plan of the
// adaptable queries, fixed vs adaptive runtime. The paper's claims: the
// spread between best and worst narrows, and most plans improve (cliques
// are the exception).
func Fig8(w io.Writer, scale int) error {
	return fig8Run(w, scale, []fig8Workload{
		{"Amazon", []int{2, 3, 4, 5, 6, 10}},
		{"Epinions", []int{2, 3, 4, 5, 6}},
		{"Google", []int{2, 3, 4, 5, 6, 10}},
	})
}

type fig8Workload struct {
	dataset string
	queries []int
}

// fig8Run is the parameterised core of Fig8, reused by Quick.
func fig8Run(w io.Writer, scale int, workloads []fig8Workload) error {
	for _, wl := range workloads {
		g := dataset(wl.dataset, scale, 1)
		c := cat(wl.dataset, scale, 1)
		for _, j := range wl.queries {
			q := query.Benchmark(j)
			plans, err := optimizer.EnumerateWCOPlans(q, optimizer.Options{Catalogue: c})
			if err != nil {
				return err
			}
			if len(plans) > 12 {
				plans = plans[:12]
			}
			ev := &adaptive.Evaluator{Graph: g, Catalogue: c}
			fmt.Fprintf(w, "Q%d on %s: %d WCO plans\n", j, wl.dataset, len(plans))
			for _, wp := range plans {
				if !adaptive.Adaptable(wp.Plan) {
					continue
				}
				fixedSecs, _, _, err := timeRun(g, wp.Plan, 1, false)
				if err != nil {
					return err
				}
				start := time.Now()
				if _, _, err := ev.Count(wp.Plan); err != nil {
					return err
				}
				adaptSecs := time.Since(start).Seconds()
				speedup := fixedSecs / adaptSecs
				fmt.Fprintf(w, "  %-14s fixed %8.3fs adaptive %8.3fs (%.2fx)\n",
					orderName(wp.Order), fixedSecs, adaptSecs, speedup)
			}
		}
	}
	return nil
}

// Fig9 regenerates the EmptyHeaded spectra: for Q3, Q7 and Q8, every
// min-width GHD under a sample of bag orderings, next to Graphflow's own
// spectrum. The paper's claim: EH's spread is wide because it does not
// optimize QVOs; Graphflow's best beats EH's best or matches it.
func Fig9(w io.Writer, scale int) error {
	return fig9Run(w, scale, []int{3, 7, 8})
}

// fig9Run is the parameterised core of Fig9, reused by Quick.
func fig9Run(w io.Writer, scale int, queries []int) error {
	g := dataset("Amazon", scale, 1)
	c := cat("Amazon", scale, 1)
	for _, j := range queries {
		q := query.Benchmark(j)
		// Graphflow spectrum.
		gf, err := runSpectrum(g, c, q, 12)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Q%d Graphflow spectrum (%d plans):", j, len(gf))
		for _, pt := range gf {
			fmt.Fprintf(w, " %.3f", pt.Seconds)
		}
		fmt.Fprintln(w)
		// EH spectrum: min-width GHDs x per-bag ordering variants.
		times, err := ehSpectrum(g, c, q, 12)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Q%d EmptyHeaded spectrum (%d plans):", j, len(times))
		for _, t := range times {
			fmt.Fprintf(w, " %.3f", t)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ehSpectrum evaluates up to maxPlans EH plan variants: every min-width
// GHD with every combination of per-bag WCO orderings (the effect of
// issuing the query with different variable names).
func ehSpectrum(g *graph.Graph, c *catalogue.Catalogue, q *query.Graph, maxPlans int) ([]float64, error) {
	var times []float64
	for _, d := range ghd.MinWidth(ghd.Enumerate(q, 2)) {
		// Per-bag ordering candidates.
		bagOrders := make([][][]int, len(d.Bags))
		for i, bag := range d.Bags {
			sub, orig := q.Project(bag)
			plans, err := optimizer.EnumerateWCOPlans(sub, optimizer.Options{Catalogue: c})
			if err != nil {
				return nil, err
			}
			for _, wp := range plans {
				order := make([]int, len(wp.Order))
				for k, v := range wp.Order {
					order[k] = orig[v]
				}
				bagOrders[i] = append(bagOrders[i], order)
				if len(bagOrders[i]) >= 4 {
					break
				}
			}
		}
		// Cartesian product of bag orderings.
		var combos [][][]int
		var recCombo func(i int, cur [][]int)
		recCombo = func(i int, cur [][]int) {
			if len(combos) >= maxPlans {
				return
			}
			if i == len(bagOrders) {
				combos = append(combos, append([][]int(nil), cur...))
				return
			}
			for _, o := range bagOrders[i] {
				recCombo(i+1, append(cur, o))
			}
		}
		recCombo(0, nil)
		for _, combo := range combos {
			orders := map[int][]int{}
			for i, o := range combo {
				orders[i] = o
			}
			p, err := ghd.BuildPlan(q, d, orders)
			if err != nil {
				continue
			}
			secs, _, _, err := timeRun(g, p, 1, false)
			if err != nil {
				return nil, err
			}
			times = append(times, secs)
			if len(times) >= maxPlans {
				return times, nil
			}
		}
	}
	return times, nil
}

// Fig11 regenerates the scalability experiment: worker counts 1..2x cores
// on the heavy queries (Q1 on Twitter- and LiveJournal-like graphs, Q2 on
// LiveJournal-like, Q14 on Google-like). The paper's claim: near-linear
// scaling to the physical core count.
func Fig11(w io.Writer, scale int) error {
	return fig11Run(w, scale, []fig11Load{
		{"Twitter", 1},
		{"LiveJournal", 1},
		{"LiveJournal", 2},
		{"Google", 14},
	})
}

type fig11Load struct {
	dataset string
	qj      int
}

// fig11Run is the parameterised core of Fig11, reused by Quick.
func fig11Run(w io.Writer, scale int, runs []fig11Load) error {
	workers := []int{1, 2, 4, 8, 16, 32}
	maxW := runtime.NumCPU() * 2
	for _, r := range runs {
		g := dataset(r.dataset, scale, 1)
		c := cat(r.dataset, scale, 1)
		q := query.Benchmark(r.qj)
		p, err := optimizer.Optimize(q, optimizer.Options{Catalogue: c})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Q%d on %s (cores=%d):\n", r.qj, r.dataset, runtime.NumCPU())
		var base float64
		for _, nw := range workers {
			if nw > maxW {
				break
			}
			runner := &exec.Runner{Graph: g, Workers: nw}
			start := time.Now()
			if _, _, err := runner.Count(p); err != nil {
				return err
			}
			secs := time.Since(start).Seconds()
			if nw == 1 {
				base = secs
			}
			speedup := base / secs
			fmt.Fprintf(w, "  workers=%-3d %8.3fs  speedup %.1fx\n", nw, secs, speedup)
		}
	}
	return nil
}
