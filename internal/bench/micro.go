package bench

import (
	"fmt"
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/exec"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// MicroResult is one machine-readable benchmark row — the BENCH_*.json
// record format gfbench -json emits so the repo's perf trajectory is
// tracked across PRs.
type MicroResult struct {
	Name        string  `json:"name"`
	Graph       string  `json:"graph"`
	Query       string  `json:"query"`
	Engine      string  `json:"engine"` // "batch" (vectorized), "factorized" (batch + star-suffix factorization) or "tuple" (oracle)
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Matches     int64   `json:"matches"`
}

// microCase is one workload of the micro suite, run once per engine.
type microCase struct {
	name    string
	graph   string
	g       *graph.Graph
	pattern string
	order   []int
	workers int
}

// wcoPlan builds the WCO plan for q in the given connected vertex order.
func wcoPlan(q *query.Graph, order []int) (*plan.Plan, error) {
	var first *query.Edge
	for i := range q.Edges {
		e := q.Edges[i]
		if (e.From == order[0] && e.To == order[1]) || (e.From == order[1] && e.To == order[0]) {
			first = &e
			break
		}
	}
	if first == nil {
		return nil, fmt.Errorf("order %v does not start with an edge", order)
	}
	var node plan.Node = plan.NewScan(q, *first)
	for _, v := range order[2:] {
		ext, err := plan.NewExtend(q, node, v)
		if err != nil {
			return nil, err
		}
		node = ext
	}
	return &plan.Plan{Query: q, Root: node}, nil
}

// microCases is the fixed workload set: the paper's core query shapes
// plus the deep skew-heavy pipelines the vectorized engine targets.
func microCases(scale int) []microCase {
	web := datagen.Web(datagen.WebConfig{N: 2500 * scale, OutDeg: 8, Copy: 0.6, Seed: 5})
	skew := datagen.Web(datagen.WebConfig{N: 8000 * scale, OutDeg: 10, Copy: 0.85, Seed: 9})
	return []microCase{
		{
			name: "triangle", graph: "Epinions", g: datagen.Epinions(scale),
			pattern: "a->b, b->c, a->c", order: []int{0, 1, 2}, workers: 1,
		},
		{
			name: "diamondX", graph: "Amazon", g: datagen.Amazon(scale),
			pattern: "a->b, a->c, b->c, b->d, c->d", order: []int{0, 1, 2, 3}, workers: 1,
		},
		{
			name: "tri-star", graph: "Epinions", g: datagen.Epinions(scale),
			pattern: "a->b, a->c, a->d", order: []int{0, 1, 2, 3}, workers: 1,
		},
		{
			name: "deep-tristar", graph: "Web-skewed", g: web,
			pattern: "a->b, a->c, b->c, a->d, a->e, a->f", order: []int{0, 1, 2, 3, 4, 5}, workers: 1,
		},
		{
			name: "deep-chain", graph: "Web-skewed", g: web,
			pattern: "a->b, a->c, b->c, c->d, d->e, e->f", order: []int{0, 1, 2, 3, 4, 5}, workers: 1,
		},
		{
			name: "skew-parallel", graph: "Web-hubheavy", g: skew,
			pattern: "a->b, a->c, b->c, c->d, d->e, e->f", order: []int{0, 1, 2, 3, 4, 5}, workers: 4,
		},
	}
}

// Micro runs the machine-readable micro suite: every workload under the
// vectorized engine (with star-suffix factorization off and on) and the
// tuple-at-a-time oracle, fast counting, reporting ns/op, bytes/op,
// allocs/op and the (engine-independent) match count.
func Micro(scale int) ([]MicroResult, error) {
	if scale < 1 {
		scale = 1
	}
	var out []MicroResult
	for _, mc := range microCases(scale) {
		q, err := query.Parse(mc.pattern)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mc.name, err)
		}
		p, err := wcoPlan(q, mc.order)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mc.name, err)
		}
		cp, err := exec.Compile(mc.g, p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mc.name, err)
		}
		for _, engine := range []string{"batch", "factorized", "tuple"} {
			cfg := exec.RunConfig{
				FastCount:    true,
				Workers:      mc.workers,
				TupleAtATime: engine == "tuple",
				Factorized:   engine == "factorized",
			}
			matches, _, err := cp.Count(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s (%s): %w", mc.name, engine, err)
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := cp.Count(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			out = append(out, MicroResult{
				Name:        mc.name,
				Graph:       mc.graph,
				Query:       mc.pattern,
				Engine:      engine,
				Workers:     mc.workers,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				Matches:     matches,
			})
		}
	}
	return out, nil
}
