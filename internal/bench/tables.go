package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"graphflow/internal/baseline"
	"graphflow/internal/catalogue"
	"graphflow/internal/datagen"
	"graphflow/internal/exec"
	"graphflow/internal/ghd"
	"graphflow/internal/graph"
	"graphflow/internal/optimizer"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// Table3 reproduces the intersection-cache experiment: every WCO plan of
// the diamond-X query (Q4) on the Amazon-like graph, cache on vs off.
func Table3(w io.Writer, scale int) error {
	g := dataset("Amazon", scale, 1)
	c := cat("Amazon", scale, 1)
	plans, err := optimizer.EnumerateWCOPlans(query.Q4(), optimizer.Options{Catalogue: c})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %12s %12s %10s\n", "QVO", "cache-on(s)", "cache-off(s)", "hits")
	for _, wp := range plans {
		on, _, prof, err := timeRun(g, wp.Plan, 1, false)
		if err != nil {
			return err
		}
		off, _, _, err := timeRun(g, wp.Plan, 1, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12.3f %12.3f %10d\n", orderName(wp.Order), on, off, prof.CacheHits)
	}
	return nil
}

// qvoTable runs every WCO plan of q on the named datasets and prints the
// paper's (time, partial matches, i-cost) rows. Used by Tables 4-6.
func qvoTable(w io.Writer, q *query.Graph, datasets []string, scale int, noCache bool, only []string) error {
	for _, name := range datasets {
		g := dataset(name, scale, 1)
		c := cat(name, scale, 1)
		plans, err := optimizer.EnumerateWCOPlans(q, optimizer.Options{Catalogue: c})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- %s ---\n", name)
		fmt.Fprintf(w, "%-14s %10s %12s %14s\n", "QVO", "time(s)", "part.m.", "i-cost")
		for _, wp := range plans {
			qname := orderName(wp.Order)
			if only != nil {
				keep := false
				for _, o := range only {
					if o == qname {
						keep = true
					}
				}
				if !keep {
					continue
				}
			}
			secs, _, prof, err := timeRun(g, wp.Plan, 1, noCache)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-14s %10.3f %12d %14d\n", qname, secs, prof.Intermediate, prof.ICost)
		}
	}
	return nil
}

// Table4 reproduces the adjacency-list-direction experiment: the three
// QVOs of the asymmetric triangle on web-like and social graphs.
func Table4(w io.Writer, scale int) error {
	return qvoTable(w, query.Q1(), []string{"BerkStan", "LiveJournal"}, scale, false, nil)
}

// Table5 reproduces the intermediate-result experiment: tailed-triangle
// QVOs (EDGE-TRIANGLE vs EDGE-2PATH groups), cache disabled as in the
// paper.
func Table5(w io.Writer, scale int) error {
	return qvoTable(w, query.Q3(), []string{"Amazon", "Epinions"}, scale, true, nil)
}

// Table6 reproduces the cache-hit experiment: the two representative QVO
// groups of the symmetric diamond-X.
func Table6(w io.Writer, scale int) error {
	return qvoTable(w, query.Q5(), []string{"Amazon", "Epinions"}, scale, false,
		[]string{"a2a3a1a4", "a2a3a4a1", "a1a2a3a4", "a2a3a2a4"})
}

// table9Queries are the queries of the EmptyHeaded comparison.
var table9Queries = []int{1, 3, 5, 7, 8, 9, 12, 13}

// Table9 reproduces the Graphflow vs EmptyHeaded comparison: for each
// query and dataset, Graphflow's optimized plan vs the EH plan with bad
// (lexicographic) orderings and with good (Graphflow-chosen) orderings.
// TL marks runs beyond the per-run timeout.
func Table9(w io.Writer, scale int) error {
	return table9Run(w, scale, []string{"Amazon", "Google", "Epinions"}, []int{1, 2}, table9Queries)
}

// table9Run is the parameterised core of Table9, reused by Quick.
func table9Run(w io.Writer, scale int, datasets []string, labelCounts, queries []int) error {
	const timeout = 60 * time.Second
	for _, labels := range labelCounts {
		fmt.Fprintf(w, "--- %d label(s) ---\n", labels)
		fmt.Fprintf(w, "%-12s %-6s %10s %10s %10s\n", "dataset", "query", "EH-b(s)", "EH-g(s)", "GF(s)")
		for _, ds := range datasets {
			g := dataset(ds, scale, labels)
			c := cat(ds, scale, labels)
			for _, j := range queries {
				q := labelQuery(query.Benchmark(j), labels)
				ehb := runEH(g, c, q, EHWorst, timeout)
				ehg := runEH(g, c, q, EHGood, timeout)
				gf := runGF(g, c, q, timeout)
				fmt.Fprintf(w, "%-12s Q%-5d %10s %10s %10s\n", ds, j, ehb, ehg, gf)
			}
		}
	}
	return nil
}

// table9 caps bound individual runs: a run producing more than matchCap
// results is reported TL (the paper's 30-minute limit scaled to our
// datasets); a hash-join build side over buildCap rows is reported Mm.
const (
	table9MatchCap = int64(20_000_000)
	table9BuildCap = int64(5_000_000)
)

func fmtSecs(secs float64, err error, budget time.Duration) string {
	if err != nil {
		return "err"
	}
	if secs > budget.Seconds() {
		return "TL"
	}
	return fmt.Sprintf("%.3f", secs)
}

// runCapped executes p under the Table 9 caps, mapping outcomes onto the
// paper's TL/Mm notation.
func runCapped(g *graph.Graph, p *plan.Plan, budget time.Duration) string {
	r := &exec.Runner{Graph: g, MaxBuildRows: table9BuildCap}
	start := time.Now()
	n, _, err := r.CountUpTo(p, table9MatchCap)
	secs := time.Since(start).Seconds()
	if err == exec.ErrBuildTooLarge {
		return "Mm"
	}
	if err != nil {
		return "err"
	}
	if n >= table9MatchCap {
		return "TL"
	}
	return fmtSecs(secs, nil, budget)
}

func runGF(g *graph.Graph, c *catalogue.Catalogue, q *query.Graph, budget time.Duration) string {
	p, err := optimizer.Optimize(q, optimizer.Options{Catalogue: c})
	if err != nil {
		return "err"
	}
	return runCapped(g, p, budget)
}

// runEH evaluates q with the EmptyHeaded strategy: the minimum-width GHD
// with the given bag-ordering mode.
func runEH(g *graph.Graph, c *catalogue.Catalogue, q *query.Graph, mode EHOrderMode, budget time.Duration) string {
	p, err := BuildEHPlan(q, c, mode)
	if err != nil {
		return "err"
	}
	return runCapped(g, p, budget)
}

// EHOrderMode selects the bag query-vertex orderings of an EmptyHeaded
// plan. EmptyHeaded itself does not optimise orderings — it uses the
// lexicographic order of the user's variable names — so by renaming
// variables a user can force any ordering. The paper's EH-b rows use the
// worst-performing ordering of the picked GHD, EH-g the ordering
// Graphflow's cost model picks (Section 8.4).
type EHOrderMode int

const (
	// EHLexicographic is EmptyHeaded's default: variable-name order.
	EHLexicographic EHOrderMode = iota
	// EHGood plugs Graphflow's best WCO ordering into each bag.
	EHGood
	// EHWorst plugs the worst estimated ordering into each bag.
	EHWorst
)

// BuildEHPlan constructs the EmptyHeaded-style plan for q: the min-width
// GHD with bag orderings chosen per mode.
func BuildEHPlan(q *query.Graph, c *catalogue.Catalogue, mode EHOrderMode) (*plan.Plan, error) {
	ds := ghd.MinWidth(ghd.Enumerate(q, 2))
	if len(ds) == 0 {
		return nil, fmt.Errorf("no GHD")
	}
	d := ds[0]
	orders := ghd.LexicographicOrders(q, d)
	if mode != EHLexicographic {
		for i, bag := range d.Bags {
			if o := rankedBagOrder(q, c, bag, mode == EHWorst); o != nil {
				orders[i] = o
			}
		}
	}
	return ghd.BuildPlan(q, d, orders)
}

// rankedBagOrder returns Graphflow's best (or worst) WCO ordering for the
// bag's projection, mapped back to whole-query vertex indices.
func rankedBagOrder(q *query.Graph, c *catalogue.Catalogue, bag query.Mask, worst bool) []int {
	sub, orig := q.Project(bag)
	plans, err := optimizer.EnumerateWCOPlans(sub, optimizer.Options{Catalogue: c})
	if err != nil || len(plans) == 0 {
		return nil
	}
	pick := plans[0]
	if worst {
		pick = plans[len(plans)-1]
	}
	order := make([]int, len(pick.Order))
	for i, v := range pick.Order {
		order[i] = orig[v]
	}
	return order
}

// Table10 reproduces the q-error vs sample-size experiment: catalogues
// with z in {100, 500, 1000, 5000} on the Amazon-like (unlabeled) and
// Google-like (3-label) graphs, evaluated on random 5-vertex queries. Rows
// are cumulative q-error distributions plus construction time.
func Table10(w io.Writer, scale int) error {
	return table10Run(w, scale, []dsCfg{{"Amazon", 1}, {"Google", 3}}, []int{100, 500, 1000, 5000}, 24)
}

// dsCfg names a dataset with a label count.
type dsCfg struct {
	name   string
	labels int
}

// table10Run is the parameterised core of Table10, reused by Quick.
func table10Run(w io.Writer, scale int, cfgs []dsCfg, zs []int, nQueries int) error {
	taus := []float64{2, 3, 5, 10, 20}
	for _, cfg := range cfgs {
		g := dataset(cfg.name, scale, cfg.labels)
		queries, truths := qerrorWorkload(g, nQueries)
		fmt.Fprintf(w, "--- %s (%d labels), %d queries ---\n", cfg.name, cfg.labels, len(queries))
		fmt.Fprintf(w, "%-6s %9s", "z", "build(s)")
		for _, tau := range taus {
			fmt.Fprintf(w, " %8s", fmt.Sprintf("<=%.0f", tau))
		}
		fmt.Fprintf(w, " %8s\n", ">20")
		for _, z := range zs {
			start := time.Now()
			c := catalogue.Build(g, catalogue.Config{H: 3, Z: z, MaxInstances: 500, Seed: 9})
			buildSecs := time.Since(start).Seconds()
			dist := qerrorDistribution(c, nil, g, queries, truths, taus)
			fmt.Fprintf(w, "%-6d %9.2f", z, buildSecs)
			for _, d := range dist {
				fmt.Fprintf(w, " %8d", d)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Table11 reproduces the q-error vs h experiment, with the
// PostgreSQL-style estimator as the baseline row.
func Table11(w io.Writer, scale int) error {
	return table11Run(w, scale, []dsCfg{{"Amazon", 1}, {"Google", 3}}, []int{2, 3, 4}, 24)
}

// table11Run is the parameterised core of Table11, reused by Quick.
func table11Run(w io.Writer, scale int, cfgs []dsCfg, hs []int, nQueries int) error {
	taus := []float64{2, 3, 5, 10, 20}
	for _, cfg := range cfgs {
		g := dataset(cfg.name, scale, cfg.labels)
		queries, truths := qerrorWorkload(g, nQueries)
		fmt.Fprintf(w, "--- %s (%d labels), %d queries ---\n", cfg.name, cfg.labels, len(queries))
		fmt.Fprintf(w, "%-6s %9s", "h", "entries")
		for _, tau := range taus {
			fmt.Fprintf(w, " %8s", fmt.Sprintf("<=%.0f", tau))
		}
		fmt.Fprintf(w, " %8s\n", ">20")
		for _, h := range hs {
			c := catalogue.Build(g, catalogue.Config{H: h, Z: 1000, MaxInstances: 500, Seed: 9})
			dist := qerrorDistribution(c, nil, g, queries, truths, taus)
			fmt.Fprintf(w, "%-6d %9d", h, c.Len())
			for _, d := range dist {
				fmt.Fprintf(w, " %8d", d)
			}
			fmt.Fprintln(w)
		}
		// PostgreSQL-style baseline.
		dist := qerrorDistribution(nil, func(q *query.Graph) float64 { return baseline.PGEstimate(g, q) }, g, queries, truths, taus)
		fmt.Fprintf(w, "%-6s %9s", "PG", "-")
		for _, d := range dist {
			fmt.Fprintf(w, " %8d", d)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// qerrorWorkload draws random 5-vertex queries from g and computes their
// true cardinalities once (shared across catalogue configurations).
func qerrorWorkload(g *graph.Graph, n int) ([]*query.Graph, []float64) {
	rng := rand.New(rand.NewSource(12345))
	truthCat := catalogue.Build(g, catalogue.Config{H: 2, Z: 200, MaxInstances: 200, Seed: 1})
	var queries []*query.Graph
	var truths []float64
	for len(queries) < n {
		dense := len(queries)%2 == 1
		q := RandomQueryFromGraph(g, 5, dense, rng)
		if q == nil {
			continue
		}
		p, err := optimizer.Optimize(q, optimizer.Options{Catalogue: truthCat})
		if err != nil {
			continue
		}
		count, _, err := (&exec.Runner{Graph: g}).Count(p)
		if err != nil || count == 0 {
			continue
		}
		queries = append(queries, q)
		truths = append(truths, float64(count))
	}
	return queries, truths
}

// qerrorDistribution returns cumulative counts of queries within each
// q-error bound, plus the count beyond the last bound.
func qerrorDistribution(c *catalogue.Catalogue, estFn func(*query.Graph) float64, g *graph.Graph, queries []*query.Graph, truths []float64, taus []float64) []int {
	out := make([]int, len(taus)+1)
	for i, q := range queries {
		var est float64
		if estFn != nil {
			est = estFn(q)
		} else {
			est = c.EstimateCardinality(q)
		}
		qe := baseline.QError(est, truths[i])
		placed := false
		for t, tau := range taus {
			if qe <= tau {
				for tt := t; tt < len(taus); tt++ {
					out[tt]++
				}
				placed = true
				break
			}
		}
		if !placed {
			out[len(taus)]++
		}
	}
	return out
}

// Table12 reproduces the CFL comparison: random sparse and dense query
// sets of 10, 15 and 20 vertices on the human-like labelled graph, with
// output caps, reporting average runtimes per query set.
func Table12(w io.Writer, scale int) error {
	return table12Run(w, []int64{100_000, 1_000_000}, []int{10, 15, 20}, 10)
}

// table12Run is the parameterised core of Table12, reused by Quick.
func table12Run(w io.Writer, caps []int64, sizes []int, queriesPerSet int) error {
	g := datagen.Human()
	c := catalogue.Build(g, catalogue.Config{H: 2, Z: 500, MaxInstances: 300, Seed: 77})
	rng := rand.New(rand.NewSource(4567))

	for _, capN := range caps {
		fmt.Fprintf(w, "--- output cap %d ---\n", capN)
		fmt.Fprintf(w, "%-8s %6s %12s %12s\n", "set", "n", "GF(s)", "CFL(s)")
		for _, dense := range []bool{false, true} {
			for _, nv := range sizes {
				var gfTotal, cflTotal float64
				ran := 0
				for i := 0; i < queriesPerSet; i++ {
					q := RandomQueryFromGraph(g, nv, dense, rng)
					if q == nil {
						continue
					}
					p, err := optimizer.Optimize(q, optimizer.Options{Catalogue: c})
					if err != nil {
						continue
					}
					start := time.Now()
					gfCount, _, err := (&exec.Runner{Graph: g}).CountUpTo(p, capN)
					if err != nil {
						continue
					}
					gfSecs := time.Since(start).Seconds()
					start = time.Now()
					cflCount := baseline.CFLCountUpTo(g, q, capN)
					cflSecs := time.Since(start).Seconds()
					if gfCount != cflCount {
						// Caps may truncate differently only at the cap.
						if gfCount < capN && cflCount < capN {
							return fmt.Errorf("table12: GF=%d CFL=%d disagree on %s", gfCount, cflCount, q)
						}
					}
					gfTotal += gfSecs
					cflTotal += cflSecs
					ran++
				}
				label := "sparse"
				if dense {
					label = "dense"
				}
				if ran == 0 {
					continue
				}
				fmt.Fprintf(w, "%-8s %6d %12.4f %12.4f\n", label, nv, gfTotal/float64(ran), cflTotal/float64(ran))
			}
		}
	}
	return nil
}

// Table13 reproduces the Neo4j-style comparison: the edge-at-a-time
// binary-join engine (open cycles, no intersections) vs Graphflow on Q1,
// Q2 and Q4.
func Table13(w io.Writer, scale int) error {
	fmt.Fprintf(w, "%-12s %-6s %12s %14s %12s\n", "dataset", "query", "GF(s)", "BJ-baseline(s)", "ratio")
	for _, ds := range []string{"Amazon", "Epinions"} {
		g := dataset(ds, scale, 1)
		c := cat(ds, scale, 1)
		for _, j := range []int{1, 2, 4} {
			q := query.Benchmark(j)
			gfSecs, gfCount, _, err := optimizeAndRun(g, c, q, 1)
			if err != nil {
				return err
			}
			start := time.Now()
			bjCount, _, err := baseline.BJCount(g, q, baseline.BJConfig{MaxIntermediate: 200_000_000})
			bjSecs := time.Since(start).Seconds()
			bjStr := fmt.Sprintf("%.3f", bjSecs)
			ratio := "-"
			if err == baseline.ErrTooLarge {
				bjStr = "Mm"
			} else if err != nil {
				return err
			} else {
				if bjCount != gfCount {
					return fmt.Errorf("table13: GF=%d BJ=%d disagree on Q%d/%s", gfCount, bjCount, j, ds)
				}
				if gfSecs > 0 {
					ratio = fmt.Sprintf("%.1fx", bjSecs/gfSecs)
				}
			}
			fmt.Fprintf(w, "%-12s Q%-5d %12.3f %14s %12s\n", ds, j, gfSecs, bjStr, ratio)
		}
	}
	return nil
}
