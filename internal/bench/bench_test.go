package bench

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/query"
)

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 13 {
		t.Fatalf("registry has %d experiments, want 13 (every table and figure)", len(exps))
	}
	want := map[string]bool{
		"table3": true, "table4": true, "table5": true, "table6": true,
		"fig7": true, "fig8": true, "fig9": true, "table9": true,
		"fig11": true, "table10": true, "table11": true, "table12": true, "table13": true,
	}
	for _, e := range exps {
		if !want[e.Name] {
			t.Errorf("unexpected experiment %q", e.Name)
		}
		delete(want, e.Name)
	}
	for name := range want {
		t.Errorf("missing experiment %q", name)
	}
	var buf bytes.Buffer
	if err := Run("nope", &buf, 1); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestTable3Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cache-on") || strings.Count(out, "\n") < 4 {
		t.Errorf("table3 output too small:\n%s", out)
	}
}

func TestTable6Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table6(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "i-cost") {
		t.Errorf("table6 output:\n%s", buf.String())
	}
}

func TestTable13Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table13(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "BJ-baseline") {
		t.Errorf("table13 output:\n%s", out)
	}
}

func TestFig11Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig11(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workers=1") {
		t.Errorf("fig11 output:\n%s", buf.String())
	}
}

func TestRandomQueryFromGraph(t *testing.T) {
	g := datagen.Epinions(1)
	rng := rand.New(rand.NewSource(3))
	for _, dense := range []bool{false, true} {
		for _, nv := range []int{5, 10} {
			q := RandomQueryFromGraph(g, nv, dense, rng)
			if q == nil {
				t.Fatalf("no query generated (dense=%v nv=%d)", dense, nv)
			}
			if q.NumVertices() != nv {
				t.Errorf("query has %d vertices, want %d", q.NumVertices(), nv)
			}
			if err := q.Validate(); err != nil {
				t.Errorf("invalid query: %v", err)
			}
			if !noParallelEdges(q) {
				t.Error("parallel edges present")
			}
			if dense {
				// Dense queries come from induced subgraphs: average degree
				// should exceed sparse ones on a dense social graph.
				if 2*q.NumEdges() < 3*nv/2 {
					t.Logf("dense query unexpectedly sparse: %d edges on %d vertices", q.NumEdges(), nv)
				}
			}
		}
	}
}

// TestRandomQueryHasMatches: random-walk queries must match at least once
// (their source instance).
func TestRandomQueryHasMatches(t *testing.T) {
	g := datagen.CoPurchase(datagen.CoPurchaseConfig{N: 400, K: 4, Rewire: 0.2, Seed: 51})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		q := RandomQueryFromGraph(g, 4, i%2 == 0, rng)
		if q == nil {
			continue
		}
		if query.RefCount(g, q) == 0 {
			t.Errorf("random query has no matches: %s", q)
		}
	}
}

func TestBuildEHPlanCorrectness(t *testing.T) {
	g := datagen.CoPurchase(datagen.CoPurchaseConfig{N: 300, K: 4, Rewire: 0.2, Seed: 61})
	c := cat("Amazon", 1, 1) // catalogue stats need not match the graph for correctness
	for _, j := range []int{1, 3, 8} {
		q := query.Benchmark(j)
		for _, mode := range []EHOrderMode{EHLexicographic, EHGood, EHWorst} {
			p, err := BuildEHPlan(q, c, mode)
			if err != nil {
				t.Fatalf("Q%d mode=%v: %v", j, mode, err)
			}
			secs, n, _, err := timeRun(g, p, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			_ = secs
			if want := query.RefCount(g, q); n != want {
				t.Errorf("Q%d mode=%v: EH count = %d, want %d", j, mode, n, want)
			}
		}
	}
}
