// Package load is a closed+open-loop load driver for a running
// gfserver: a weighted mix of query templates and ingest mutation
// batches is fired at the HTTP API from a pool of workers, optionally
// paced to a target aggregate QPS, and per-template latency percentiles
// (p50/p95/p99), error counts and achieved throughput are reported in
// the repo's BENCH_*.json envelope. The server's /metrics exposition is
// scraped before and after the run, so the report also carries the
// server-side latency distribution of each endpoint (reconstructed from
// histogram bucket deltas) next to the client-observed numbers — the
// gap between the two is pure network/encode overhead. The cmd/gfload
// wrapper adds flags; the package itself is driven in-process by tests
// against an httptest-mounted server.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphflow/internal/metrics"
)

// Template is one weighted request generator of the mix. Exactly one of
// Query or Ingest semantics applies: a template with Ingest true draws a
// random mutation batch each call instead of posting Body to /query.
type Template struct {
	// Name labels the template in the report.
	Name string
	// Weight is the template's share of the mix (relative to the sum of
	// all weights; non-positive templates are dropped).
	Weight int
	// Body is the /query request body (pattern, mode, workers, ...).
	// Ignored for ingest templates.
	Body map[string]any
	// Ingest marks the template as a mutation generator: each call posts
	// a random small batch (edge adds and deletes over the live vertex
	// range) to /ingest.
	Ingest bool
}

// Config tunes one load run.
type Config struct {
	// BaseURL roots the target server, e.g. "http://localhost:8090".
	BaseURL string
	// Templates is the weighted mix; at least one entry required.
	Templates []Template
	// Duration bounds the run (default 10s). The run also stops once
	// MaxRequests have been issued, when positive.
	Duration    time.Duration
	MaxRequests int64
	// Concurrency is the worker-pool size (default 8).
	Concurrency int
	// TargetQPS paces the aggregate request rate across workers; 0 runs
	// closed-loop (every worker fires as fast as responses return).
	TargetQPS float64
	// Seed drives template selection and ingest batch generation.
	Seed int64
	// Client overrides the HTTP client (tests inject an httptest one).
	Client *http.Client
	// Vertices is the live vertex-ID range ingest batches draw from; 0
	// asks the server's /stats once at startup.
	Vertices int
	// MaxRetries bounds how many times one shed request (429/503) is
	// re-issued, honouring the server's Retry-After with capped
	// exponential backoff. Default 3; negative disables retries.
	MaxRetries int
	// BackoffCap clamps one backoff sleep (default 2s). The server's
	// Retry-After seeds the delay when present, else 100ms, doubling per
	// attempt up to this cap, with up to 25% jitter.
	BackoffCap time.Duration
}

// Result is one template's (or the overall) aggregate outcome — a row
// of the BENCH_*.json results array.
type Result struct {
	Name        string  `json:"name"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MeanMS      float64 `json:"mean_ms"`
	AchievedQPS float64 `json:"achieved_qps"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	// Sheds counts 429/503 responses the server returned for this
	// template (including ones a retry then got through); Retries counts
	// re-issued requests; ShedRate is Sheds over issued requests
	// (requests + retries), the fraction of sends the server refused.
	Sheds    int64   `json:"sheds,omitempty"`
	Retries  int64   `json:"retries,omitempty"`
	ShedRate float64 `json:"shed_rate,omitempty"`
}

// ServerResult is one endpoint's server-side latency distribution over
// the run, reconstructed from the /metrics request histograms scraped
// before and after (the quantiles interpolate within bucket-count
// deltas, so they are exact to bucket resolution, not sample-exact).
type ServerResult struct {
	Endpoint string  `json:"endpoint"`
	Requests int64   `json:"requests"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MeanMS   float64 `json:"mean_ms"`
}

// Report is the BENCH_*.json envelope gfload emits. Server is empty
// when the target exposes no /metrics endpoint (older builds) — the
// client-side rows still stand alone.
type Report struct {
	GeneratedAt string         `json:"generated_at"`
	Scale       int            `json:"scale"`
	Results     []Result       `json:"results"`
	Server      []ServerResult `json:"server,omitempty"`
}

// DefaultTemplates is the standard mixed scenario: two count shapes the
// paper's plan spectrum keys on, a row-returning match, and a mutation
// stream — roughly 10% writes.
func DefaultTemplates() []Template {
	return []Template{
		{Name: "tri-count", Weight: 5, Body: map[string]any{"pattern": "a->b, b->c, a->c"}},
		{Name: "star-count", Weight: 2, Body: map[string]any{"pattern": "a->b, a->c, a->d"}},
		{Name: "path-match", Weight: 2, Body: map[string]any{"pattern": "a->b, b->c", "mode": "match", "limit": 64}},
		{Name: "ingest", Weight: 1, Ingest: true},
	}
}

// sample is one recorded request.
type sample struct {
	tpl     int
	latency time.Duration
	err     bool
}

// Run drives the configured mix and aggregates the report rows. The
// returned Report's GeneratedAt is left empty for the caller to stamp.
func Run(cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("load: BaseURL required")
	}
	var tpls []Template
	for _, t := range cfg.Templates {
		if t.Weight > 0 {
			tpls = append(tpls, t)
		}
	}
	if len(tpls) == 0 {
		return nil, errors.New("load: no templates with positive weight")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	vertices := cfg.Vertices
	if vertices <= 0 {
		v, err := fetchVertexCount(client, cfg.BaseURL)
		if err != nil {
			return nil, fmt.Errorf("load: fetching vertex range: %w", err)
		}
		vertices = v
	}
	if vertices < 2 {
		return nil, fmt.Errorf("load: server graph has %d vertices; need at least 2 for ingest templates", vertices)
	}

	totalWeight := 0
	for _, t := range tpls {
		totalWeight += t.Weight
	}
	// Pre-marshal static query bodies once.
	bodies := make([][]byte, len(tpls))
	for i, t := range tpls {
		if !t.Ingest {
			b, err := json.Marshal(t.Body)
			if err != nil {
				return nil, fmt.Errorf("load: template %s: %w", t.Name, err)
			}
			bodies[i] = b
		}
	}

	// Scrape the server's request-latency histograms before firing any
	// load; the post-run scrape diffs against this baseline so only this
	// run's requests land in the server-side rows. A nil scrape (no
	// /metrics endpoint) simply omits them.
	before := scrapeRequestLatency(client, cfg.BaseURL)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	var (
		tickets atomic.Int64 // issued-request counter, also the pacing ticket
		mu      sync.Mutex
		samples []sample
	)
	shedCounts := make([]atomic.Int64, len(tpls))
	retryCounts := make([]atomic.Int64, len(tpls))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919))
			local := make([]sample, 0, 1024)
			for {
				n := tickets.Add(1) - 1
				if cfg.MaxRequests > 0 && n >= cfg.MaxRequests {
					break
				}
				if cfg.TargetQPS > 0 {
					// Open-loop pacing: ticket n is due at start + n/QPS.
					due := start.Add(time.Duration(float64(n) / cfg.TargetQPS * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
						}
					}
				}
				if ctx.Err() != nil {
					break
				}
				// Weighted template draw.
				pick := rng.Intn(totalWeight)
				ti := 0
				for i, t := range tpls {
					if pick < t.Weight {
						ti = i
						break
					}
					pick -= t.Weight
				}
				var path string
				var body []byte
				if tpls[ti].Ingest {
					path, body = "/ingest", ingestBody(rng, vertices)
				} else {
					path, body = "/query", bodies[ti]
				}
				t0 := time.Now()
				ok, sheds, retries := post(ctx, client, cfg.BaseURL+path, body, rng, &cfg)
				lat := time.Since(t0)
				shedCounts[ti].Add(sheds)
				retryCounts[ti].Add(retries)
				if ctx.Err() != nil {
					// Don't count a request the deadline chopped mid-flight.
					break
				}
				local = append(local, sample{tpl: ti, latency: lat, err: !ok})
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Scale: 1}
	perTpl := make([][]time.Duration, len(tpls))
	errCounts := make([]int64, len(tpls))
	var all []time.Duration
	var allErrs int64
	for _, s := range samples {
		if s.err {
			errCounts[s.tpl]++
			allErrs++
			continue
		}
		perTpl[s.tpl] = append(perTpl[s.tpl], s.latency)
		all = append(all, s.latency)
	}
	var totalSheds, totalRetries int64
	for i, t := range tpls {
		row := aggregate("load/"+t.Name, perTpl[i], errCounts[i], elapsed, 0)
		row.Sheds = shedCounts[i].Load()
		row.Retries = retryCounts[i].Load()
		row.ShedRate = shedRate(row.Sheds, row.Requests+row.Retries)
		totalSheds += row.Sheds
		totalRetries += row.Retries
		rep.Results = append(rep.Results, row)
	}
	overall := aggregate("load/overall", all, allErrs, elapsed, cfg.TargetQPS)
	overall.Sheds = totalSheds
	overall.Retries = totalRetries
	overall.ShedRate = shedRate(totalSheds, overall.Requests+totalRetries)
	rep.Results = append(rep.Results, overall)
	if before != nil {
		if after := scrapeRequestLatency(client, cfg.BaseURL); after != nil {
			rep.Server = serverDelta(before, after)
		}
	}
	return rep, nil
}

// serverHist is one endpoint's scraped request histogram: de-cumulated
// bucket counts (last = +Inf) plus the _sum/_count pair.
type serverHist struct {
	bounds []float64
	counts []int64
	sum    float64
	count  int64
}

// scrapeRequestLatency fetches and parses /metrics, returning the
// graphflow_http_request_seconds state keyed by endpoint. nil on any
// failure — scraping is best-effort and must never fail a load run
// against a server that predates the metrics endpoint.
func scrapeRequestLatency(client *http.Client, baseURL string) map[string]serverHist {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	fams, err := metrics.ParseText(resp.Body)
	if err != nil {
		return nil
	}
	var fam *metrics.ParsedFamily
	for _, f := range fams {
		if f.Name == "graphflow_http_request_seconds" {
			fam = f
			break
		}
	}
	if fam == nil {
		return nil
	}
	endpoints := make(map[string]bool)
	for _, s := range fam.Series {
		if ep := s.Labels["endpoint"]; ep != "" {
			endpoints[ep] = true
		}
	}
	out := make(map[string]serverHist, len(endpoints))
	for ep := range endpoints {
		bounds, counts, ok := fam.Buckets(map[string]string{"endpoint": ep})
		if !ok {
			continue
		}
		h := serverHist{bounds: bounds, counts: counts}
		for _, s := range fam.Series {
			if s.Labels["endpoint"] != ep {
				continue
			}
			switch s.Labels["__suffix__"] {
			case "sum":
				h.sum = s.Value
			case "count":
				h.count = int64(s.Value)
			}
		}
		out[ep] = h
	}
	return out
}

// serverDelta subtracts the pre-run scrape from the post-run one and
// folds each endpoint's bucket-count delta into percentile rows.
// Endpoints with no traffic during the run are dropped; an endpoint
// whose bucket layout changed between scrapes (server restart) is
// skipped rather than reported wrong.
func serverDelta(before, after map[string]serverHist) []ServerResult {
	eps := make([]string, 0, len(after))
	for ep := range after {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	var out []ServerResult
	for _, ep := range eps {
		a := after[ep]
		b := before[ep] // zero value when the endpoint is new since the baseline
		if b.counts != nil && len(b.counts) != len(a.counts) {
			continue
		}
		d := make([]int64, len(a.counts))
		var n int64
		for i := range a.counts {
			d[i] = a.counts[i]
			if b.counts != nil {
				d[i] -= b.counts[i]
			}
			n += d[i]
		}
		if n <= 0 {
			continue
		}
		q := func(p float64) float64 { return metrics.QuantileFromBuckets(a.bounds, d, p) * 1000 }
		r := ServerResult{Endpoint: ep, Requests: n, P50MS: q(0.50), P95MS: q(0.95), P99MS: q(0.99)}
		if dc := a.count - b.count; dc > 0 {
			r.MeanMS = (a.sum - b.sum) / float64(dc) * 1000
		}
		out = append(out, r)
	}
	return out
}

// aggregate folds one latency set into a Result row.
func aggregate(name string, lats []time.Duration, errs int64, elapsed time.Duration, targetQPS float64) Result {
	r := Result{Name: name, Requests: int64(len(lats)) + errs, Errors: errs, TargetQPS: targetQPS}
	if len(lats) == 0 {
		return r
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) float64 {
		idx := int(q*float64(len(lats))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lats) {
			idx = len(lats) - 1
		}
		return float64(lats[idx].Microseconds()) / 1000
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	r.P50MS = pct(0.50)
	r.P95MS = pct(0.95)
	r.P99MS = pct(0.99)
	r.MeanMS = float64(sum.Microseconds()) / float64(len(lats)) / 1000
	if elapsed > 0 {
		r.AchievedQPS = float64(len(lats)) / elapsed.Seconds()
	}
	return r
}

// ingestBody draws one small random mutation batch: a handful of edge
// adds and deletes over the live vertex range (adds and deletes overlap
// on purpose, so delete-heavy semantics stay exercised).
func ingestBody(rng *rand.Rand, vertices int) []byte {
	type edge struct {
		Src   int `json:"src"`
		Dst   int `json:"dst"`
		Label int `json:"label"`
	}
	var adds, dels []edge
	for i := 1 + rng.Intn(4); i > 0; i-- {
		adds = append(adds, edge{Src: rng.Intn(vertices), Dst: rng.Intn(vertices), Label: rng.Intn(2)})
	}
	for i := rng.Intn(3); i > 0; i-- {
		e := edge{Src: rng.Intn(vertices), Dst: rng.Intn(vertices), Label: rng.Intn(2)}
		if len(adds) > 0 && rng.Intn(2) == 0 {
			e = adds[rng.Intn(len(adds))] // delete something this batch added
		}
		dels = append(dels, e)
	}
	b, _ := json.Marshal(map[string]any{"add_edges": adds, "delete_edges": dels})
	return b
}

// shedRate is sheds over issued sends, 0 when nothing was sent.
func shedRate(sheds, issued int64) float64 {
	if issued <= 0 {
		return 0
	}
	return float64(sheds) / float64(issued)
}

// post issues one request, honouring load-shedding responses (429 and
// 503) by re-issuing up to cfg.MaxRetries times with capped exponential
// backoff: the server's Retry-After seeds the delay when present (else
// 100ms), doubling per attempt, clamped to cfg.BackoffCap, plus up to
// 25% jitter from the worker's rng so synchronized workers do not
// re-converge on the saturated server. Reports success plus how many
// sheds were observed and how many sends were retries.
func post(ctx context.Context, client *http.Client, url string, body []byte, rng *rand.Rand, cfg *Config) (ok bool, sheds, retries int64) {
	delay := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		status, retryAfter := postOnce(ctx, client, url, body)
		if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			return status >= 200 && status < 300, sheds, retries
		}
		sheds++
		if attempt >= cfg.MaxRetries || ctx.Err() != nil {
			return false, sheds, retries
		}
		d := delay
		if retryAfter > 0 {
			d = retryAfter
		}
		if d > cfg.BackoffCap {
			d = cfg.BackoffCap
		}
		d += time.Duration(rng.Int63n(int64(d)/4 + 1))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return false, sheds, retries
		}
		retries++
		delay *= 2
	}
}

// postOnce issues one request, reporting the status code (0 on
// transport error) and any Retry-After hint the response carried.
func postOnce(ctx context.Context, client *http.Client, url string, body []byte) (status int, retryAfter time.Duration) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter
}

// fetchVertexCount reads the live vertex count from /stats.
func fetchVertexCount(client *http.Client, baseURL string) (int, error) {
	resp, err := client.Get(baseURL + "/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/stats returned %d", resp.StatusCode)
	}
	var st struct {
		Graph struct {
			Vertices int `json:"vertices"`
		} `json:"graph"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	return st.Graph.Vertices, nil
}
