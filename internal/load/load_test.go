package load

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"graphflow"
	"graphflow/internal/server"
)

// testServer mounts a real gfserver handler over a small durable graph.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	b := graphflow.NewBuilder(32)
	for v := uint32(0); v < 32; v++ {
		for d := uint32(1); d <= 3; d++ {
			b.AddEdge(v, (v+d)%32, 0)
		}
	}
	db, err := b.Open(&graphflow.Options{CatalogueZ: 50, CatalogueH: 2, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv, err := server.New(server.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRunMixedScenario(t *testing.T) {
	ts := testServer(t)
	rep, err := Run(Config{
		BaseURL:     ts.URL,
		Templates:   DefaultTemplates(),
		Duration:    5 * time.Second,
		MaxRequests: 300,
		Concurrency: 4,
		Seed:        1,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(DefaultTemplates())+1 {
		t.Fatalf("%d result rows, want %d", len(rep.Results), len(DefaultTemplates())+1)
	}
	overall := rep.Results[len(rep.Results)-1]
	if overall.Name != "load/overall" || overall.Requests == 0 {
		t.Fatalf("overall row %+v", overall)
	}
	if overall.Errors != 0 {
		t.Fatalf("%d errors against in-process server", overall.Errors)
	}
	if overall.P50MS <= 0 || overall.P99MS < overall.P50MS {
		t.Fatalf("percentiles not monotone: %+v", overall)
	}
	if overall.AchievedQPS <= 0 {
		t.Fatalf("achieved QPS %v", overall.AchievedQPS)
	}
	// Every template must have been exercised.
	for _, r := range rep.Results[:len(rep.Results)-1] {
		if r.Requests == 0 {
			t.Fatalf("template %s never ran: %+v", r.Name, rep.Results)
		}
	}
	// The target serves /metrics, so the report must carry server-side
	// percentile rows reconstructed from the request-histogram deltas,
	// covering at least the /query endpoint the mix hammers.
	if len(rep.Server) == 0 {
		t.Fatal("no server-side rows despite a /metrics-serving target")
	}
	var query *ServerResult
	for i := range rep.Server {
		if rep.Server[i].Endpoint == "/query" {
			query = &rep.Server[i]
		}
	}
	if query == nil {
		t.Fatalf("no /query server-side row: %+v", rep.Server)
	}
	if query.Requests == 0 || query.P50MS <= 0 || query.P99MS < query.P50MS {
		t.Fatalf("server-side /query row malformed: %+v", *query)
	}
	// Server-side time excludes the client's network/encode overhead, so
	// its p50 cannot exceed the client-observed p50 by more than bucket
	// resolution; a grossly larger value means the diff is wrong.
	if query.P50MS > overall.P50MS*10+5 {
		t.Fatalf("server-side p50 %.2fms implausibly above client p50 %.2fms", query.P50MS, overall.P50MS)
	}

	// The report must serialize to the BENCH envelope shape.
	rep.GeneratedAt = "test"
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.GeneratedAt != "test" || len(round.Results) != len(rep.Results) {
		t.Fatalf("round trip: %+v", round)
	}
}

func TestRunPacedToTargetQPS(t *testing.T) {
	ts := testServer(t)
	rep, err := Run(Config{
		BaseURL:     ts.URL,
		Templates:   []Template{{Name: "tri", Weight: 1, Body: map[string]any{"pattern": "a->b, b->c, a->c"}}},
		Duration:    2 * time.Second,
		TargetQPS:   50,
		Concurrency: 4,
		Seed:        2,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	overall := rep.Results[len(rep.Results)-1]
	// 50 QPS over ~2s: the open-loop pacer should land near 100 requests;
	// allow generous slack for CI jitter but catch closed-loop runaway.
	if overall.Requests < 40 || overall.Requests > 160 {
		t.Fatalf("paced run issued %d requests, want ~100", overall.Requests)
	}
	if overall.TargetQPS != 50 {
		t.Fatalf("target QPS %v not recorded", overall.TargetQPS)
	}
}

func TestRunRejectsEmptyMix(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://x", Templates: []Template{{Name: "z", Weight: 0}}}); err == nil {
		t.Fatal("empty mix accepted")
	}
}
