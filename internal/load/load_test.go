package load

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"graphflow"
	"graphflow/internal/server"
)

// testServer mounts a real gfserver handler over a small durable graph.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	b := graphflow.NewBuilder(32)
	for v := uint32(0); v < 32; v++ {
		for d := uint32(1); d <= 3; d++ {
			b.AddEdge(v, (v+d)%32, 0)
		}
	}
	db, err := b.Open(&graphflow.Options{CatalogueZ: 50, CatalogueH: 2, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv, err := server.New(server.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRunMixedScenario(t *testing.T) {
	ts := testServer(t)
	rep, err := Run(Config{
		BaseURL:     ts.URL,
		Templates:   DefaultTemplates(),
		Duration:    5 * time.Second,
		MaxRequests: 300,
		Concurrency: 4,
		Seed:        1,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(DefaultTemplates())+1 {
		t.Fatalf("%d result rows, want %d", len(rep.Results), len(DefaultTemplates())+1)
	}
	overall := rep.Results[len(rep.Results)-1]
	if overall.Name != "load/overall" || overall.Requests == 0 {
		t.Fatalf("overall row %+v", overall)
	}
	if overall.Errors != 0 {
		t.Fatalf("%d errors against in-process server", overall.Errors)
	}
	if overall.P50MS <= 0 || overall.P99MS < overall.P50MS {
		t.Fatalf("percentiles not monotone: %+v", overall)
	}
	if overall.AchievedQPS <= 0 {
		t.Fatalf("achieved QPS %v", overall.AchievedQPS)
	}
	// Every template must have been exercised.
	for _, r := range rep.Results[:len(rep.Results)-1] {
		if r.Requests == 0 {
			t.Fatalf("template %s never ran: %+v", r.Name, rep.Results)
		}
	}
	// The target serves /metrics, so the report must carry server-side
	// percentile rows reconstructed from the request-histogram deltas,
	// covering at least the /query endpoint the mix hammers.
	if len(rep.Server) == 0 {
		t.Fatal("no server-side rows despite a /metrics-serving target")
	}
	var query *ServerResult
	for i := range rep.Server {
		if rep.Server[i].Endpoint == "/query" {
			query = &rep.Server[i]
		}
	}
	if query == nil {
		t.Fatalf("no /query server-side row: %+v", rep.Server)
	}
	if query.Requests == 0 || query.P50MS <= 0 || query.P99MS < query.P50MS {
		t.Fatalf("server-side /query row malformed: %+v", *query)
	}
	// Server-side time excludes the client's network/encode overhead, so
	// its p50 cannot exceed the client-observed p50 by more than bucket
	// resolution; a grossly larger value means the diff is wrong.
	if query.P50MS > overall.P50MS*10+5 {
		t.Fatalf("server-side p50 %.2fms implausibly above client p50 %.2fms", query.P50MS, overall.P50MS)
	}

	// The report must serialize to the BENCH envelope shape.
	rep.GeneratedAt = "test"
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.GeneratedAt != "test" || len(round.Results) != len(rep.Results) {
		t.Fatalf("round trip: %+v", round)
	}
}

func TestRunPacedToTargetQPS(t *testing.T) {
	ts := testServer(t)
	rep, err := Run(Config{
		BaseURL:     ts.URL,
		Templates:   []Template{{Name: "tri", Weight: 1, Body: map[string]any{"pattern": "a->b, b->c, a->c"}}},
		Duration:    2 * time.Second,
		TargetQPS:   50,
		Concurrency: 4,
		Seed:        2,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	overall := rep.Results[len(rep.Results)-1]
	// 50 QPS over ~2s: the open-loop pacer should land near 100 requests;
	// allow generous slack for CI jitter but catch closed-loop runaway.
	if overall.Requests < 40 || overall.Requests > 160 {
		t.Fatalf("paced run issued %d requests, want ~100", overall.Requests)
	}
	if overall.TargetQPS != 50 {
		t.Fatalf("target QPS %v not recorded", overall.TargetQPS)
	}
}

func TestRunRejectsEmptyMix(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://x", Templates: []Template{{Name: "z", Weight: 0}}}); err == nil {
		t.Fatal("empty mix accepted")
	}
}

// TestRunRetriesShedRequests pins the backoff satellite: a server that
// sheds every first attempt with 429 + Retry-After sees the driver
// retry (honouring the hint, clamped to BackoffCap) until the request
// lands, and the envelope reports the shed and retry counts.
func TestRunRetriesShedRequests(t *testing.T) {
	var attempts atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"admission refused: queue_full","code":"queue_full"}`)
			return
		}
		fmt.Fprint(w, `{"count":1,"elapsed_ms":0.1}`)
	}))
	defer stub.Close()

	rep, err := Run(Config{
		BaseURL:     stub.URL,
		Templates:   []Template{{Name: "tri", Weight: 1, Body: map[string]any{"pattern": "a->b, b->c, a->c"}}},
		Duration:    10 * time.Second,
		MaxRequests: 20,
		// One worker so the stub's strict 429/200 alternation holds: every
		// request sheds exactly once and lands on its first retry.
		Concurrency: 1,
		Seed:        3,
		Client:      stub.Client(),
		Vertices:    32,
		BackoffCap:  5 * time.Millisecond, // clamp the 1s Retry-After so the test stays fast
	})
	if err != nil {
		t.Fatal(err)
	}
	overall := rep.Results[len(rep.Results)-1]
	if overall.Errors != 0 {
		t.Fatalf("%d errors: every shed should have been retried through (%+v)", overall.Errors, overall)
	}
	if overall.Sheds == 0 || overall.Retries == 0 {
		t.Fatalf("sheds/retries not reported: %+v", overall)
	}
	if overall.ShedRate <= 0 || overall.ShedRate >= 1 {
		t.Fatalf("shed rate %v out of (0,1)", overall.ShedRate)
	}

	// With retries disabled the same server produces hard errors.
	attempts.Store(0)
	rep, err = Run(Config{
		BaseURL:     stub.URL,
		Templates:   []Template{{Name: "tri", Weight: 1, Body: map[string]any{"pattern": "a->b, b->c, a->c"}}},
		Duration:    10 * time.Second,
		MaxRequests: 10,
		Concurrency: 1,
		Seed:        3,
		Client:      stub.Client(),
		Vertices:    32,
		MaxRetries:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	overall = rep.Results[len(rep.Results)-1]
	if overall.Errors == 0 {
		t.Fatalf("retries disabled but no errors surfaced: %+v", overall)
	}
	if overall.Retries != 0 {
		t.Fatalf("retries disabled but %d retries issued", overall.Retries)
	}
}
