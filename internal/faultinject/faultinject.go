// Package faultinject is the hook-based fault-injection harness for the
// resource-governance chaos sweeps (the same pattern as the WAL crash
// harness: the production path carries a nil-safe hook, tests install a
// deterministic schedule).
//
// An Injector is threaded through exec run configs down to the engine's
// //gf:pollpoint sites and worker/build entry points, where Visit is
// called with the site's Point. A nil *Injector is a no-op everywhere —
// the production path pays one nil check per amortized poll. A non-nil
// injector panics with an Injected value or sleeps at deterministic,
// seeded visit counts, exercising the panic-isolation and slow-stage
// paths without touching production code.
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Point identifies an instrumented site in the engine.
type Point uint8

const (
	// PointPoll is the amortized cancellation pollpoint — hit constantly
	// by every long-running pipeline.
	PointPoll Point = iota
	// PointWorkerStart is the start of one worker's pipeline run.
	PointWorkerStart
	// PointHashBuild is the hash-join build-side insert sink.
	PointHashBuild
	numPoints
)

func (p Point) String() string {
	switch p {
	case PointPoll:
		return "poll"
	case PointWorkerStart:
		return "worker-start"
	case PointHashBuild:
		return "hash-build"
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// Injected is the panic value thrown by an injected fault. It is
// deliberately NOT an error: the engine must treat it as a foreign
// panic (recover, capture the stack, fail the query) exactly as it
// would a real bug.
type Injected struct {
	Point Point
	Visit int64
}

func (i Injected) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s visit %d", i.Point, i.Visit)
}

// Injector fires faults at deterministic visit counts. Configure the
// fields before use; they must not change while the injector is live.
type Injector struct {
	// PanicEvery > 0 panics with an Injected value on every n-th visit
	// to an enabled point (counted per point).
	PanicEvery int64
	// SleepEvery > 0 sleeps Sleep on every n-th visit to an enabled
	// point — the slow-stage fault.
	SleepEvery int64
	// Sleep is the injected stall duration (default 1ms when
	// SleepEvery is set).
	Sleep time.Duration
	// Points is a bitmask of enabled points (1<<PointPoll | ...).
	// Zero enables every point.
	Points uint8

	visits [numPoints]atomic.Int64
	panics atomic.Int64
	sleeps atomic.Int64
}

// Visit is the hook called from an instrumented site. Nil-safe.
func (in *Injector) Visit(p Point) {
	if in == nil {
		return
	}
	if in.Points != 0 && in.Points&(1<<p) == 0 {
		return
	}
	n := in.visits[p].Add(1)
	if in.SleepEvery > 0 && n%in.SleepEvery == 0 {
		in.sleeps.Add(1)
		d := in.Sleep
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
	if in.PanicEvery > 0 && n%in.PanicEvery == 0 {
		in.panics.Add(1)
		panic(Injected{Point: p, Visit: n}) //gf:allowalloc firing a fault is the cold path by construction; production injectors are nil
	}
}

// Visits reports how many times point p has been visited.
func (in *Injector) Visits(p Point) int64 {
	if in == nil {
		return 0
	}
	return in.visits[p].Load()
}

// Panics reports how many faults have been thrown.
func (in *Injector) Panics() int64 {
	if in == nil {
		return 0
	}
	return in.panics.Load()
}

// Sleeps reports how many stalls have been injected.
func (in *Injector) Sleeps() int64 {
	if in == nil {
		return 0
	}
	return in.sleeps.Load()
}
