package query

import (
	"fmt"
	"strconv"
	"strings"

	"graphflow/internal/graph"
)

// ParseCypher parses the MATCH-pattern subset of Cypher that Graphflow
// supports (the system implements "a subset of the Cypher language",
// paper Section 7) into a query Graph. Supported grammar:
//
//	MATCH <path> (, <path>)* [RETURN ...]
//	path    := node (rel node)*
//	node    := '(' name [':' label] ')'
//	rel     := '-[' [':' label] ']->' | '<-[' [':' label] ']-' | '-->' | '<--'
//
// Labels are numeric (the engine's label space). The RETURN clause, if
// present, is ignored — evaluation is by Count/Match on the DB. Example:
//
//	MATCH (a)-[:1]->(b), (b)-->(c), (a)-->(c) RETURN count(*)
func ParseCypher(s string) (*Graph, error) {
	text := strings.TrimSpace(s)
	upper := strings.ToUpper(text)
	if !strings.HasPrefix(upper, "MATCH") {
		return nil, fmt.Errorf("cypher: query must start with MATCH")
	}
	text = strings.TrimSpace(text[len("MATCH"):])
	if i := strings.Index(strings.ToUpper(text), "RETURN"); i >= 0 {
		text = strings.TrimSpace(text[:i])
	}
	if text == "" {
		return nil, fmt.Errorf("cypher: empty pattern")
	}

	q := &Graph{}
	labelSet := map[string]bool{}
	getVertex := func(name string, label graph.Label, hasLabel bool) (int, error) {
		idx := q.VertexIndex(name)
		if idx < 0 {
			q.Vertices = append(q.Vertices, Vertex{Name: name, Label: label})
			labelSet[name] = hasLabel
			return len(q.Vertices) - 1, nil
		}
		if hasLabel {
			if labelSet[name] && q.Vertices[idx].Label != label {
				return -1, fmt.Errorf("cypher: conflicting labels for %q", name)
			}
			q.Vertices[idx].Label = label
			labelSet[name] = true
		}
		return idx, nil
	}

	for _, path := range splitTopLevel(text, ',') {
		p := newCypherLexer(path)
		prev, err := p.node()
		if err != nil {
			return nil, err
		}
		prevIdx, err := getVertex(prev.name, prev.label, prev.hasLabel)
		if err != nil {
			return nil, err
		}
		for !p.done() {
			rel, err := p.rel()
			if err != nil {
				return nil, err
			}
			nxt, err := p.node()
			if err != nil {
				return nil, err
			}
			nxtIdx, err := getVertex(nxt.name, nxt.label, nxt.hasLabel)
			if err != nil {
				return nil, err
			}
			e := Edge{From: prevIdx, To: nxtIdx, Label: rel.label}
			if rel.reversed {
				e.From, e.To = e.To, e.From
			}
			q.Edges = append(q.Edges, e)
			prevIdx = nxtIdx
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// splitTopLevel splits on sep outside parentheses and brackets.
func splitTopLevel(s string, sep rune) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

type cypherNode struct {
	name     string
	label    graph.Label
	hasLabel bool
}

type cypherRel struct {
	label    graph.Label
	reversed bool
}

type cypherLexer struct {
	s   string
	pos int
}

func newCypherLexer(s string) *cypherLexer {
	return &cypherLexer{s: strings.TrimSpace(s)}
}

func (l *cypherLexer) done() bool {
	l.skipSpace()
	return l.pos >= len(l.s)
}

func (l *cypherLexer) skipSpace() {
	for l.pos < len(l.s) && (l.s[l.pos] == ' ' || l.s[l.pos] == '\t' || l.s[l.pos] == '\n') {
		l.pos++
	}
}

func (l *cypherLexer) expect(tok string) error {
	l.skipSpace()
	if !strings.HasPrefix(l.s[l.pos:], tok) {
		return fmt.Errorf("cypher: expected %q at %q", tok, l.s[l.pos:])
	}
	l.pos += len(tok)
	return nil
}

// node parses '(' name [':' label] ')'.
func (l *cypherLexer) node() (cypherNode, error) {
	var n cypherNode
	if err := l.expect("("); err != nil {
		return n, err
	}
	l.skipSpace()
	start := l.pos
	for l.pos < len(l.s) && isIdent(l.s[l.pos]) {
		l.pos++
	}
	n.name = l.s[start:l.pos]
	if n.name == "" {
		return n, fmt.Errorf("cypher: anonymous nodes are not supported (at %q)", l.s[start:])
	}
	l.skipSpace()
	if l.pos < len(l.s) && l.s[l.pos] == ':' {
		l.pos++
		lab, err := l.number()
		if err != nil {
			return n, err
		}
		n.label = lab
		n.hasLabel = true
	}
	if err := l.expect(")"); err != nil {
		return n, err
	}
	return n, nil
}

// rel parses the relationship arrows.
func (l *cypherLexer) rel() (cypherRel, error) {
	var r cypherRel
	l.skipSpace()
	rest := l.s[l.pos:]
	switch {
	case strings.HasPrefix(rest, "-->"):
		l.pos += 3
		return r, nil
	case strings.HasPrefix(rest, "<--"):
		l.pos += 3
		r.reversed = true
		return r, nil
	case strings.HasPrefix(rest, "-["):
		l.pos += 2
		if err := l.relBody(&r); err != nil {
			return r, err
		}
		if err := l.expect("]->"); err != nil {
			return r, err
		}
		return r, nil
	case strings.HasPrefix(rest, "<-["):
		l.pos += 3
		r.reversed = true
		if err := l.relBody(&r); err != nil {
			return r, err
		}
		if err := l.expect("]-"); err != nil {
			return r, err
		}
		return r, nil
	}
	return r, fmt.Errorf("cypher: expected relationship at %q", rest)
}

func (l *cypherLexer) relBody(r *cypherRel) error {
	l.skipSpace()
	// Optional variable name (ignored), optional ':' label.
	for l.pos < len(l.s) && isIdent(l.s[l.pos]) {
		l.pos++
	}
	l.skipSpace()
	if l.pos < len(l.s) && l.s[l.pos] == ':' {
		l.pos++
		lab, err := l.number()
		if err != nil {
			return err
		}
		r.label = lab
	}
	return nil
}

func (l *cypherLexer) number() (graph.Label, error) {
	l.skipSpace()
	start := l.pos
	for l.pos < len(l.s) && l.s[l.pos] >= '0' && l.s[l.pos] <= '9' {
		l.pos++
	}
	if start == l.pos {
		return 0, fmt.Errorf("cypher: expected numeric label at %q", l.s[start:])
	}
	v, err := strconv.ParseUint(l.s[start:l.pos], 10, 16)
	if err != nil {
		return 0, err
	}
	return graph.Label(v), nil
}

func isIdent(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// ParseAny accepts either the native pattern syntax or a Cypher MATCH
// query, dispatching on the MATCH keyword.
func ParseAny(s string) (*Graph, error) {
	if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(s)), "MATCH") {
		return ParseCypher(s)
	}
	return Parse(s)
}
