package query

import (
	"math/rand"
	"testing"
)

// FuzzParsePattern checks that the pattern parser never panics and that
// every accepted pattern round-trips: rendering the parsed query with
// String() and reparsing yields an isomorphic query (identical canonical
// key). Parse builds vertices in edge-discovery order and String emits
// edges in input order, so the round trip should be structurally exact.
func FuzzParsePattern(f *testing.F) {
	for _, s := range []string{
		"a->b",
		"a->b, b->c, a->c",
		"a:1 -[2]-> b:0",
		"a <- b",
		"x -> y; y -> z\nz -> x",
		"a-[1]->b, b-[1]->c, c-[1]->a",
		"v1:2 -> v2, v2 -[65535]-> v1",
		"  spaced name -> other  ",
		"a->b, c->b, c->d, a->d",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		q, err := Parse(pattern)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := q.String()
		rt, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round trip of %q failed: String() = %q does not reparse: %v", pattern, rendered, err)
		}
		if got, want := rt.CanonicalKey(), q.CanonicalKey(); got != want {
			t.Fatalf("round trip of %q changed the query:\n  rendered %q\n  key %q\n  reparsed key %q", pattern, rendered, want, got)
		}
	})
}

// canonResolvable reports whether Canonical fully resolves q's symmetry:
// colour refinement plus exact minimisation over class-respecting
// orderings is only performed while the enumeration stays below
// maxCanonPerms. Beyond that bound distinct spellings may legitimately
// receive distinct keys (a documented cache miss, never a wrong plan),
// so the fuzz equality assertion only applies below it.
func canonResolvable(q *Graph) bool {
	colors := q.refineColors()
	classSize := map[int]int{}
	for _, c := range colors {
		classSize[c]++
	}
	perms := 1
	for _, sz := range classSize {
		for k := 2; k <= sz; k++ {
			perms *= k
			if perms > maxCanonPerms {
				return false
			}
		}
	}
	return true
}

// respell returns an isomorphic copy of q: vertices renumbered by a
// random permutation and renamed, edges remapped and shuffled.
func respell(q *Graph, rng *rand.Rand) *Graph {
	n := len(q.Vertices)
	perm := rng.Perm(n) // perm[origIdx] = new index
	out := &Graph{Vertices: make([]Vertex, n), Edges: make([]Edge, 0, len(q.Edges))}
	names := []string{"x", "yy", "z3", "w", "q_", "r", "s9", "t", "uu", "v"}
	for orig, ni := range perm {
		name := names[ni%len(names)]
		if ni >= len(names) {
			name += string(rune('a' + ni/len(names)))
		}
		out.Vertices[ni] = Vertex{Name: name, Label: q.Vertices[orig].Label}
	}
	for _, e := range q.Edges {
		out.Edges = append(out.Edges, Edge{From: perm[e.From], To: perm[e.To], Label: e.Label})
	}
	rng.Shuffle(len(out.Edges), func(i, j int) {
		out.Edges[i], out.Edges[j] = out.Edges[j], out.Edges[i]
	})
	return out
}

// FuzzCanonical checks the plan-cache key invariant: random isomorphic
// respellings of a pattern (vertex renaming, renumbering, edge
// reordering) map to the same canonical key whenever the bounded exact
// minimisation applies, and Canonical never panics regardless.
func FuzzCanonical(f *testing.F) {
	seeds := []string{
		"a->b, b->c, a->c",
		"a->b, b->c, c->d, d->a",
		"a->b, a->c, a->d, b->c, b->d, c->d",
		"a:1->b:2, b:2->c:1",
		"hub->s1, hub->s2, hub->s3",
		"a-[1]->b, b-[2]->c, c-[1]->a",
	}
	for _, s := range seeds {
		f.Add(s, uint64(1))
		f.Add(s, uint64(12345))
	}
	f.Fuzz(func(t *testing.T, pattern string, seed uint64) {
		q, err := Parse(pattern)
		if err != nil {
			return
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		re := respell(q, rng)
		key := q.CanonicalKey()
		reKey := re.CanonicalKey()
		if key == "" || reKey == "" {
			t.Fatalf("empty canonical key for %q", pattern)
		}
		if !canonResolvable(q) {
			// Symmetry beyond the enumeration bound: keys may differ by
			// design. Still require determinism of each spelling's own key.
			if again := re.CanonicalKey(); again != reKey {
				t.Fatalf("unstable key for one spelling of %q: %q vs %q", pattern, reKey, again)
			}
			return
		}
		if key != reKey {
			t.Fatalf("isomorphic respelling of %q changed the canonical key:\n  original  %q -> %q\n  respelled %q -> %q",
				pattern, q.String(), key, re.String(), reKey)
		}
	})
}

// TestRespellIsIsomorphic guards the fuzz helper itself: a respelled
// query must be isomorphic to its source (checked with the exact
// factorial canonicalization on small queries).
func TestRespellIsIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, pat := range []string{"a->b, b->c, a->c", "a:1->b, b->c:2, c:2->a:1", "a-[3]->b, b->c, c->d, d->a"} {
		q := MustParse(pat)
		for i := 0; i < 10; i++ {
			re := respell(q, rng)
			if err := re.Validate(); err != nil {
				t.Fatalf("respell of %q invalid: %v", pat, err)
			}
			if !q.IsIsomorphic(re) {
				t.Fatalf("respell of %q is not isomorphic: %q", pat, re.String())
			}
		}
	}
}

// TestFuzzSeedsPass runs every checked-in seed through both fuzz bodies
// so a seed regression fails fast in a plain `go test` run too.
func TestFuzzSeedsPass(t *testing.T) {
	seeds := []string{
		"a->b", "a->b, b->c, a->c", "a:1 -[2]-> b:0", "a <- b",
		"a->b, b->c, c->d, d->a", "a->b, a->c, a->d, b->c, b->d, c->d",
	}
	rng := rand.New(rand.NewSource(7))
	for _, s := range seeds {
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("seed %q does not parse: %v", s, err)
		}
		if rt, err := Parse(q.String()); err != nil || rt.CanonicalKey() != q.CanonicalKey() {
			t.Fatalf("seed %q does not round-trip (err %v)", s, err)
		}
		if canonResolvable(q) {
			if re := respell(q, rng); re.CanonicalKey() != q.CanonicalKey() {
				t.Fatalf("seed %q respelling changed key", s)
			}
		}
	}
}
