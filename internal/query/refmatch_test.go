package query

import (
	"testing"

	"graphflow/internal/graph"
)

// k4 returns the complete directed graph on 4 vertices (both directions).
func k4(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				b.AddEdge(graph.VertexID(i), graph.VertexID(j), 0)
			}
		}
	}
	return b.MustBuild()
}

func TestRefCountTriangleOnK4(t *testing.T) {
	g := k4(t)
	// Every ordered triple of distinct vertices matches the asymmetric
	// triangle on a bidirectional K4: 4*3*2 = 24.
	if got := RefCount(g, Q1()); got != 24 {
		t.Errorf("triangles on K4 = %d, want 24", got)
	}
}

func TestRefCountDirectedTriangle(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(0, 2, 0)
	g := b.MustBuild()
	if got := RefCount(g, Q1()); got != 1 {
		t.Errorf("asymmetric triangle count = %d, want 1", got)
	}
	cyc := MustParse("a->b, b->c, c->a")
	if got := RefCount(g, cyc); got != 0 {
		t.Errorf("cyclic triangle count = %d, want 0", got)
	}
}

func TestRefCountLabels(t *testing.T) {
	b := graph.NewBuilder(3)
	b.SetVertexLabel(2, 1)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 1)
	g := b.MustBuild()
	// Path with matching labels.
	q := MustParse("a -> b, b -[1]-> c:1")
	if got := RefCount(g, q); got != 1 {
		t.Errorf("labeled path count = %d, want 1", got)
	}
	// Wrong edge label.
	q2 := MustParse("a -> b, b -[1]-> c")
	if got := RefCount(g, q2); got != 0 {
		t.Errorf("mismatched vertex label count = %d, want 0", got)
	}
}

func TestRefCountHomomorphismSemantics(t *testing.T) {
	// 4-cycle query on a graph with a 2-cycle: a1..a4 can fold onto the two
	// vertices (a1=a3's image allowed since not adjacent in Q2).
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 0, 0)
	g := b.MustBuild()
	// Matches: a1=0,a2=1,a3=0,a4=1 and a1=1,a2=0,a3=1,a4=0.
	if got := RefCount(g, Q2()); got != 2 {
		t.Errorf("4-cycle homomorphisms on 2-cycle = %d, want 2", got)
	}
}

func TestRefEnumerateEmit(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	g := b.MustBuild()
	q := MustParse("x->y, y->z")
	var got [][]graph.VertexID
	n := RefEnumerate(g, q, func(a []graph.VertexID) {
		got = append(got, append([]graph.VertexID(nil), a...))
	})
	if n != 1 || len(got) != 1 {
		t.Fatalf("path matches = %d (%v), want 1", n, got)
	}
	if got[0][q.VertexIndex("x")] != 0 || got[0][q.VertexIndex("z")] != 2 {
		t.Errorf("assignment = %v", got[0])
	}
}
