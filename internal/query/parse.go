package query

import (
	"fmt"
	"strconv"
	"strings"

	"graphflow/internal/graph"
)

// Parse builds a query Graph from a textual pattern. The syntax is a
// comma- or semicolon-separated list of directed edges:
//
//	a1 -> a2, a2 -> a3, a1 -> a3          unlabeled triangle
//	a:1 -[2]-> b:0                        vertex labels after ':', edge label in -[l]->
//	a <- b                                reversed arrow, equivalent to b -> a
//
// Vertex names are arbitrary identifiers; a vertex's label may be given on
// any of its occurrences but must not conflict across occurrences.
func Parse(pattern string) (*Graph, error) {
	q := &Graph{}
	labelSeen := map[string]bool{} // name -> label was explicitly set

	getVertex := func(tok string) (int, error) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return -1, fmt.Errorf("query: empty vertex token")
		}
		name := tok
		var label graph.Label
		hasLabel := false
		if i := strings.IndexByte(tok, ':'); i >= 0 {
			name = strings.TrimSpace(tok[:i])
			ls := strings.TrimSpace(tok[i+1:])
			l, err := strconv.ParseUint(ls, 10, 16)
			if err != nil {
				return -1, fmt.Errorf("query: bad vertex label %q: %v", ls, err)
			}
			label = graph.Label(l)
			hasLabel = true
		}
		if name == "" {
			return -1, fmt.Errorf("query: empty vertex name in %q", tok)
		}
		// Names containing arrow fragments parse in some clause positions
		// but cannot be re-rendered unambiguously (String would emit a
		// pattern that fails to reparse); reject them outright.
		for _, bad := range []string{"->", "<-", "-["} {
			if strings.Contains(name, bad) {
				return -1, fmt.Errorf("query: vertex name %q contains arrow sequence %q", name, bad)
			}
		}
		idx := q.VertexIndex(name)
		if idx < 0 {
			q.Vertices = append(q.Vertices, Vertex{Name: name, Label: label})
			labelSeen[name] = hasLabel
			return len(q.Vertices) - 1, nil
		}
		if hasLabel {
			if labelSeen[name] && q.Vertices[idx].Label != label {
				return -1, fmt.Errorf("query: conflicting labels for vertex %q", name)
			}
			q.Vertices[idx].Label = label
			labelSeen[name] = true
		}
		return idx, nil
	}

	splitEdges := func(r rune) bool { return r == ',' || r == ';' || r == '\n' }
	for _, part := range strings.FieldsFunc(pattern, splitEdges) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		src, dst, label, err := parseEdge(part)
		if err != nil {
			return nil, err
		}
		fi, err := getVertex(src)
		if err != nil {
			return nil, err
		}
		ti, err := getVertex(dst)
		if err != nil {
			return nil, err
		}
		q.Edges = append(q.Edges, Edge{From: fi, To: ti, Label: label})
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// parseEdge splits one edge clause into source token, destination token and
// edge label, normalising '<-' arrows.
func parseEdge(clause string) (src, dst string, label graph.Label, err error) {
	// Try forward arrows first: "-[l]->" then "->".
	if i := strings.Index(clause, "-["); i >= 0 {
		j := strings.Index(clause[i:], "]->")
		if j < 0 {
			return "", "", 0, fmt.Errorf("query: malformed labeled arrow in %q", clause)
		}
		ls := strings.TrimSpace(clause[i+2 : i+j])
		l, perr := strconv.ParseUint(ls, 10, 16)
		if perr != nil {
			return "", "", 0, fmt.Errorf("query: bad edge label %q: %v", ls, perr)
		}
		return clause[:i], clause[i+j+3:], graph.Label(l), nil
	}
	if i := strings.Index(clause, "->"); i >= 0 {
		return clause[:i], clause[i+2:], 0, nil
	}
	if i := strings.Index(clause, "<-"); i >= 0 {
		return clause[i+2:], clause[:i], 0, nil
	}
	return "", "", 0, fmt.Errorf("query: no arrow in edge clause %q", clause)
}

// MustParse is Parse but panics on error; for tests, examples and the
// built-in query set.
func MustParse(pattern string) *Graph {
	q, err := Parse(pattern)
	if err != nil {
		panic(err)
	}
	return q
}
