package query

import "graphflow/internal/graph"

// RefCount counts the matches of q in g by straightforward backtracking.
// It is the correctness oracle for every engine in the repository: slow,
// simple, and obviously right.
//
// Match semantics are the paper's join semantics (homomorphisms): a match
// assigns a data vertex to every query vertex such that every query edge
// maps to a data edge with matching labels. Distinct query vertices may map
// to the same data vertex unless an edge constraint forbids it (the store
// drops self-loops, so adjacent query vertices always bind distinct data
// vertices). This is exactly the semantics of the multiway self-join
// formulation in Section 1.
func RefCount(g *graph.Graph, q *Graph) int64 {
	return RefEnumerate(g, q, nil)
}

// RefEnumerate counts matches and, if emit is non-nil, calls it with each
// complete assignment (indexed by query vertex). The assignment slice is
// reused; callers must copy it to retain it.
func RefEnumerate(g *graph.Graph, q *Graph, emit func(assignment []graph.VertexID)) int64 {
	n := len(q.Vertices)
	if n == 0 {
		return 0
	}
	order := connectedOrder(q)
	assign := make([]graph.VertexID, n)
	bound := make([]bool, n)
	var count int64

	var rec func(pos int)
	rec = func(pos int) {
		if pos == n {
			count++
			if emit != nil {
				emit(assign)
			}
			return
		}
		v := order[pos]
		// Candidates: constrain by one already-bound neighbour's adjacency
		// if available, else all vertices with the right label.
		candidates := candidateList(g, q, v, assign, bound)
		for _, c := range candidates {
			if !consistent(g, q, v, c, assign, bound) {
				continue
			}
			assign[v] = c
			bound[v] = true
			rec(pos + 1)
			bound[v] = false
		}
	}
	rec(0)
	return count
}

// connectedOrder returns a vertex order in which every vertex after the
// first has at least one earlier neighbour (queries are connected).
func connectedOrder(q *Graph) []int {
	n := len(q.Vertices)
	order := make([]int, 0, n)
	inOrder := make([]bool, n)
	// Start from the max-degree vertex to prune early.
	start, bestDeg := 0, -1
	for v := 0; v < n; v++ {
		if d := q.Degree(v); d > bestDeg {
			start, bestDeg = v, d
		}
	}
	order = append(order, start)
	inOrder[start] = true
	for len(order) < n {
		next, nextDeg := -1, -1
		for v := 0; v < n; v++ {
			if inOrder[v] {
				continue
			}
			connected := false
			for _, e := range q.Edges {
				if (e.From == v && inOrder[e.To]) || (e.To == v && inOrder[e.From]) {
					connected = true
					break
				}
			}
			if connected && q.Degree(v) > nextDeg {
				next, nextDeg = v, q.Degree(v)
			}
		}
		if next < 0 { // disconnected query: just take any remaining vertex
			for v := 0; v < n; v++ {
				if !inOrder[v] {
					next = v
					break
				}
			}
		}
		order = append(order, next)
		inOrder[next] = true
	}
	return order
}

// candidateList returns candidate data vertices for query vertex v given
// the current partial assignment.
func candidateList(g *graph.Graph, q *Graph, v int, assign []graph.VertexID, bound []bool) []graph.VertexID {
	// Prefer the smallest adjacency list of a bound neighbour.
	var best []graph.VertexID
	haveBest := false
	for _, e := range q.Edges {
		var list []graph.VertexID
		if e.From == v && bound[e.To] {
			list = g.Neighbors(assign[e.To], graph.Backward, labelOrWildcard(e.Label), vLabelOrWildcard(q, v), nil)
		} else if e.To == v && bound[e.From] {
			list = g.Neighbors(assign[e.From], graph.Forward, labelOrWildcard(e.Label), vLabelOrWildcard(q, v), nil)
		} else {
			continue
		}
		if !haveBest || len(list) < len(best) {
			best = list
			haveBest = true
		}
	}
	if haveBest {
		return best
	}
	// No bound neighbour (first vertex): every vertex with matching label.
	// Label 0 is the concrete "default" label, not a wildcard: unlabeled
	// graphs and queries both use 0 throughout, so exact matching is right.
	var all []graph.VertexID
	want := q.Vertices[v].Label
	for u := 0; u < g.NumVertices(); u++ {
		if g.VertexLabel(graph.VertexID(u)) == want {
			all = append(all, graph.VertexID(u))
		}
	}
	return all
}

// consistent verifies all edges between v and bound vertices, and the label
// of the candidate.
func consistent(g *graph.Graph, q *Graph, v int, c graph.VertexID, assign []graph.VertexID, bound []bool) bool {
	if g.VertexLabel(c) != q.Vertices[v].Label {
		return false
	}
	for _, e := range q.Edges {
		if e.From == v && bound[e.To] {
			if !g.HasEdge(c, assign[e.To], labelOrWildcard(e.Label)) {
				return false
			}
		} else if e.To == v && bound[e.From] {
			if !g.HasEdge(assign[e.From], c, labelOrWildcard(e.Label)) {
				return false
			}
		}
	}
	return true
}

// labelOrWildcard maps query label 0 (unlabeled) to an exact label-0 match:
// graphs and queries use label 0 consistently for "unlabeled", and labelled
// workloads always assign concrete labels, so 0 is an exact label here.
func labelOrWildcard(l graph.Label) graph.Label { return l }

func vLabelOrWildcard(q *Graph, v int) graph.Label { return q.Vertices[v].Label }
