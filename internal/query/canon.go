package query

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalCode returns a string that is identical for isomorphic queries
// (respecting vertex labels, edge labels and edge directions) and distinct
// for non-isomorphic ones. It is computed exactly by minimising an encoding
// over all vertex permutations; intended for the small subgraphs stored in
// the catalogue (h+1 <= 5 vertices) and for plan deduplication on queries
// up to ~8 vertices.
func (q *Graph) CanonicalCode() string {
	code, _ := q.CanonicalCodeWithPerm()
	return code
}

// CanonicalCodeWithPerm returns the canonical code together with the
// canonical renumbering: perm[oldIdx] = canonical index of vertex oldIdx
// under the minimising permutation. The catalogue uses the renumbering to
// align adjacency-list descriptors across isomorphic instances of a key.
func (q *Graph) CanonicalCodeWithPerm() (string, []int) {
	n := len(q.Vertices)
	if n == 0 {
		return "", nil
	}
	best := ""
	var bestInv []int
	perm := make([]int, n) // perm[newIdx] = oldIdx
	inv := make([]int, n)  // inv[oldIdx] = newIdx
	used := make([]bool, n)

	var rec func(pos int)
	encode := func() string {
		lines := make([]string, 0, n+len(q.Edges))
		for newIdx := 0; newIdx < n; newIdx++ {
			lines = append(lines, fmt.Sprintf("v%d:%d", newIdx, q.Vertices[perm[newIdx]].Label))
		}
		es := make([]string, 0, len(q.Edges))
		for _, e := range q.Edges {
			es = append(es, fmt.Sprintf("e%d>%d:%d", inv[e.From], inv[e.To], e.Label))
		}
		sort.Strings(es)
		lines = append(lines, es...)
		return strings.Join(lines, ";")
	}
	rec = func(pos int) {
		if pos == n {
			code := encode()
			if best == "" || code < best {
				best = code
				bestInv = append(bestInv[:0], inv...)
			}
			return
		}
		for old := 0; old < n; old++ {
			if used[old] {
				continue
			}
			used[old] = true
			perm[pos] = old
			inv[old] = pos
			rec(pos + 1)
			used[old] = false
		}
	}
	rec(0)
	return best, append([]int(nil), bestInv...)
}

// IsIsomorphic reports whether q and other are isomorphic as labelled
// directed graphs.
func (q *Graph) IsIsomorphic(other *Graph) bool {
	if len(q.Vertices) != len(other.Vertices) || len(q.Edges) != len(other.Edges) {
		return false
	}
	return q.CanonicalCode() == other.CanonicalCode()
}

// Automorphisms returns all vertex permutations p (p[i] = image of i) that
// map q onto itself respecting labels and directions. Used to deduplicate
// query-vertex orderings that perform identical work (paper Section 3.2.3
// notes equivalent plans arising from query symmetries).
func (q *Graph) Automorphisms() [][]int {
	n := len(q.Vertices)
	edgeSet := make(map[Edge]struct{}, len(q.Edges))
	for _, e := range q.Edges {
		edgeSet[e] = struct{}{}
	}
	var out [][]int
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(pos int)
	check := func() bool {
		for _, e := range q.Edges {
			if _, ok := edgeSet[Edge{From: perm[e.From], To: perm[e.To], Label: e.Label}]; !ok {
				return false
			}
		}
		return true
	}
	rec = func(pos int) {
		if pos == n {
			if check() {
				out = append(out, append([]int(nil), perm...))
			}
			return
		}
		for img := 0; img < n; img++ {
			if used[img] || q.Vertices[img].Label != q.Vertices[pos].Label {
				continue
			}
			used[img] = true
			perm[pos] = img
			rec(pos + 1)
			used[img] = false
		}
	}
	rec(0)
	return out
}
