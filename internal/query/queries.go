package query

import (
	"fmt"
	"math/rand"

	"graphflow/internal/graph"
)

// The 14 benchmark queries of Figure 6. The paper's figure gives drawings
// only; the concrete directed versions below follow the structures the text
// pins down: Q1 is the asymmetric triangle (Section 3.2.1), Q3 the tailed
// triangle (Figure 2b), Q4 the diamond-X (Figure 1), Q5 the diamond-X with
// symmetric (cyclic) triangles (Figure 2a / Table 6), Q6/Q7/Q14 the 4-, 5-
// and 7-cliques (21 query edges for Q14, matching Section 8.1.3), Q8 two
// triangles sharing a vertex (Section 8.2), Q9 the Figure 10 query, Q10 the
// diamond+triangle join (Section 8.3), Q11/Q13 acyclic, Q12 the 6-cycle.

// Q1 is the asymmetric triangle: a1->a2, a2->a3, a1->a3.
func Q1() *Graph { return MustParse("a1->a2, a2->a3, a1->a3") }

// Q2 is the directed 4-cycle.
func Q2() *Graph { return MustParse("a1->a2, a2->a3, a3->a4, a4->a1") }

// Q3 is the tailed triangle (Figure 2b): triangle a1,a2,a3 with tail a2->a4.
func Q3() *Graph { return MustParse("a1->a2, a2->a3, a1->a3, a2->a4") }

// Q4 is the diamond-X of Figure 1: two asymmetric triangles sharing edge
// a2->a3.
func Q4() *Graph { return MustParse("a1->a2, a1->a3, a2->a3, a2->a4, a3->a4") }

// Q5 is the diamond-X with symmetric (cyclic) triangles of Figure 2a: two
// directed 3-cycles sharing the edge a2->a3, so both a1 and a4 are found by
// intersecting a3's forward with a2's backward list — the intersection-cache
// showcase of Table 6.
func Q5() *Graph { return MustParse("a1->a2, a2->a3, a3->a1, a3->a4, a4->a2") }

// Q6 is the 4-clique (acyclic orientation).
func Q6() *Graph { return clique(4) }

// Q7 is the 5-clique (acyclic orientation).
func Q7() *Graph { return clique(5) }

// Q8 is two triangles sharing vertex a3 ("small cyclic structures that do
// not share edges", Section 8.2).
func Q8() *Graph {
	return MustParse("a1->a2, a2->a3, a1->a3, a3->a4, a4->a5, a3->a5")
}

// Q9 is the Figure 10 query: triangles (a1,a2,a3) and (a3,a4,a5) sharing
// a3, plus a6 adjacent to both triangles; its best plan joins the two
// triangles and then closes a6 with a 2-way intersection — the hybrid shape
// outside EmptyHeaded's plan space.
func Q9() *Graph {
	return MustParse("a1->a2, a2->a3, a1->a3, a3->a4, a4->a5, a3->a5, a2->a6, a4->a6")
}

// Q10 is a diamond joined with a triangle on a4 (Section 8.3).
func Q10() *Graph {
	return MustParse("a1->a2, a1->a3, a2->a4, a3->a4, a4->a5, a5->a6, a4->a6")
}

// Q11 is the directed 4-path on 5 vertices (acyclic).
func Q11() *Graph { return MustParse("a1->a2, a2->a3, a3->a4, a4->a5") }

// Q12 is the directed 6-cycle, the paper's "most interesting query": its
// efficient hybrid plans (binary-join two 3-paths, then close with an
// intersection) are not GHD-shaped.
func Q12() *Graph {
	return MustParse("a1->a2, a2->a3, a3->a4, a4->a5, a5->a6, a6->a1")
}

// Q13 is the directed 5-path on 6 vertices (acyclic).
func Q13() *Graph { return MustParse("a1->a2, a2->a3, a3->a4, a4->a5, a5->a6") }

// Q14 is the 7-clique: 21 query edges, the hardest query (Section 8.5).
func Q14() *Graph { return clique(7) }

func clique(n int) *Graph {
	q := &Graph{}
	for i := 0; i < n; i++ {
		q.Vertices = append(q.Vertices, Vertex{Name: fmt.Sprintf("a%d", i+1)})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			q.Edges = append(q.Edges, Edge{From: i, To: j})
		}
	}
	return q
}

// Benchmark returns query QJ for J in 1..14, or nil.
func Benchmark(j int) *Graph {
	switch j {
	case 1:
		return Q1()
	case 2:
		return Q2()
	case 3:
		return Q3()
	case 4:
		return Q4()
	case 5:
		return Q5()
	case 6:
		return Q6()
	case 7:
		return Q7()
	case 8:
		return Q8()
	case 9:
		return Q9()
	case 10:
		return Q10()
	case 11:
		return Q11()
	case 12:
		return Q12()
	case 13:
		return Q13()
	case 14:
		return Q14()
	}
	return nil
}

// WithRandomEdgeLabels returns a copy of q whose edges carry labels drawn
// uniformly from [0, numLabels): the query side of the paper's QJi
// workloads. numLabels <= 1 returns an unchanged copy.
func WithRandomEdgeLabels(q *Graph, numLabels int, seed int64) *Graph {
	out := q.Clone()
	if numLabels <= 1 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range out.Edges {
		out.Edges[i].Label = graph.Label(rng.Intn(numLabels))
	}
	return out
}
