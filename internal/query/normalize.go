package query

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the cheap canonical form used as the plan-cache
// key. Unlike CanonicalCode (exact but factorial in the vertex count, for
// catalogue keys of <= 5 vertices), Canonical runs in polynomial time on
// typical queries: colour refinement narrows the candidate orderings,
// and the exact minimum encoding is only enumerated when the residual
// symmetry is small. The construction is sound by encoding the complete
// renumbered graph into the key: two queries receive the same key only if
// their canonical forms are identical as labelled graphs, i.e. only if
// they are isomorphic. Heavily symmetric queries that colour refinement
// cannot fully split may receive distinct keys for distinct spellings —
// that costs a cache miss, never a wrong plan.

// maxCanonPerms bounds the class-respecting permutations enumerated for
// the exact minimum; beyond it the greedy refined ordering is used as-is.
const maxCanonPerms = 4096

// Canonical returns a structurally-normalised copy of q — vertices
// renamed a1..an in a deterministic, structure-derived order and edges
// sorted — together with perm, where perm[origIdx] is the canonical index
// of original vertex origIdx. Isomorphic queries written with different
// vertex names or edge orders map to the same canonical form whenever
// colour refinement plus bounded enumeration resolves the symmetry
// (always, for the paper's benchmark shapes).
func (q *Graph) Canonical() (*Graph, []int) {
	n := len(q.Vertices)
	if n == 0 {
		return &Graph{}, nil
	}
	colors := q.refineColors()

	// Group vertices into classes ordered by colour value. Colour values
	// are ranks of sorted structural signatures, so the class order is
	// identical for isomorphic inputs.
	classes := map[int][]int{}
	maxColor := 0
	for v, c := range colors {
		classes[c] = append(classes[c], v)
		if c > maxColor {
			maxColor = c
		}
	}
	var ordered [][]int
	perms := 1
	for c := 0; c <= maxColor; c++ {
		cls, ok := classes[c]
		if !ok {
			continue
		}
		ordered = append(ordered, cls)
		for k := 2; k <= len(cls); k++ {
			if perms <= maxCanonPerms {
				perms *= k
			}
		}
	}

	var inv []int // inv[origIdx] = canonical index
	if perms <= maxCanonPerms {
		inv = minEncodingOrder(q, ordered)
	} else {
		inv = make([]int, n)
		pos := 0
		for _, cls := range ordered {
			for _, v := range cls {
				inv[v] = pos
				pos++
			}
		}
	}
	return q.renumber(inv), inv
}

// CanonicalKey returns a string key for the canonical form of q: equal
// keys imply isomorphic queries (same labels, edge directions and edge
// labels), and one query always yields the same key.
func (q *Graph) CanonicalKey() string {
	canon, _ := q.Canonical()
	return canon.Key()
}

// Key serialises q's exact current vertex order and edge list. Call it on
// the output of Canonical to obtain a cache key; on a non-canonical graph
// it is order-sensitive.
func (q *Graph) Key() string { return q.encodeKey() }

// renumber returns the copy of q with vertex origIdx mapped to inv[origIdx],
// vertices renamed a1..an, and edges sorted.
func (q *Graph) renumber(inv []int) *Graph {
	n := len(q.Vertices)
	out := &Graph{Vertices: make([]Vertex, n), Edges: make([]Edge, 0, len(q.Edges))}
	for v, canon := range inv {
		out.Vertices[canon] = Vertex{Name: fmt.Sprintf("a%d", canon+1), Label: q.Vertices[v].Label}
	}
	for _, e := range q.Edges {
		out.Edges = append(out.Edges, Edge{From: inv[e.From], To: inv[e.To], Label: e.Label})
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		a, b := out.Edges[i], out.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label < b.Label
	})
	return out
}

// encodeKey serialises the graph assuming its vertex order is already
// canonical: vertex labels in order, then the sorted edge list.
func (q *Graph) encodeKey() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n%d:", len(q.Vertices))
	for i, v := range q.Vertices {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", v.Label)
	}
	sb.WriteByte('|')
	for i, e := range q.Edges {
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%d>%d:%d", e.From, e.To, e.Label)
	}
	return sb.String()
}

// refineColors runs 1-dimensional colour refinement (Weisfeiler-Leman):
// vertices start coloured by (label, out-degree, in-degree) and are
// iteratively split by the multiset of (direction, edge label, neighbour
// colour) over incident edges, until the partition stabilises. Colour
// values are ranks of sorted signature strings, so they depend only on
// structure, never on input vertex order.
func (q *Graph) refineColors() []int {
	n := len(q.Vertices)
	sigs := make([]string, n)
	for v := range q.Vertices {
		out, in := 0, 0
		for _, e := range q.Edges {
			if e.From == v {
				out++
			}
			if e.To == v {
				in++
			}
		}
		sigs[v] = fmt.Sprintf("%d|%d|%d", q.Vertices[v].Label, out, in)
	}
	colors := rankStrings(sigs)
	distinct := countDistinct(colors)
	for iter := 0; iter < n; iter++ {
		for v := range sigs {
			var parts []string
			for _, e := range q.Edges {
				if e.From == v {
					parts = append(parts, fmt.Sprintf(">%d:%d", e.Label, colors[e.To]))
				}
				if e.To == v {
					parts = append(parts, fmt.Sprintf("<%d:%d", e.Label, colors[e.From]))
				}
			}
			sort.Strings(parts)
			sigs[v] = fmt.Sprintf("%d#%s", colors[v], strings.Join(parts, ","))
		}
		colors = rankStrings(sigs)
		d := countDistinct(colors)
		if d == distinct {
			break
		}
		distinct = d
	}
	return colors
}

// rankStrings maps each string to the rank of its value in the sorted
// distinct-value order.
func rankStrings(sigs []string) []int {
	uniq := append([]string(nil), sigs...)
	sort.Strings(uniq)
	rank := map[string]int{}
	for _, s := range uniq {
		if _, ok := rank[s]; !ok {
			rank[s] = len(rank)
		}
	}
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i] = rank[s]
	}
	return out
}

func countDistinct(colors []int) int {
	seen := map[int]struct{}{}
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// minEncodingOrder enumerates every ordering that keeps each colour class
// contiguous (classes in colour order, vertices permuted within their
// class) and returns the inv mapping minimising the edge encoding. For
// isomorphic inputs the minimum encoding — and hence the canonical form —
// is identical, because refinement colours and class sizes are
// isomorphism-invariant.
func minEncodingOrder(q *Graph, classes [][]int) []int {
	n := len(q.Vertices)
	inv := make([]int, n)
	bestInv := make([]int, n)
	best := ""
	starts := make([]int, len(classes))
	pos := 0
	for i, cls := range classes {
		starts[i] = pos
		pos += len(cls)
	}
	encode := func() string {
		keys := make([]string, len(q.Edges))
		for i, e := range q.Edges {
			keys[i] = fmt.Sprintf("%03d>%03d:%d", inv[e.From], inv[e.To], e.Label)
		}
		sort.Strings(keys)
		return strings.Join(keys, ";")
	}
	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(classes) {
			code := encode()
			if best == "" || code < best {
				best = code
				copy(bestInv, inv)
			}
			return
		}
		cls := classes[ci]
		used := make([]bool, len(cls))
		var place func(offset int)
		place = func(offset int) {
			if offset == len(cls) {
				rec(ci + 1)
				return
			}
			for i, v := range cls {
				if used[i] {
					continue
				}
				used[i] = true
				inv[v] = starts[ci] + offset
				place(offset + 1)
				used[i] = false
			}
		}
		place(0)
	}
	rec(0)
	return bestInv
}
