package query

import (
	"strings"
	"testing"
)

func TestCanonicalKeyIsomorphicSpellings(t *testing.T) {
	// The same structure under renamed vertices and reordered edges must
	// share a canonical key.
	groups := [][]string{
		{
			"a->b, b->c, a->c",
			"x->y, y->z, x->z",
			"b->c, a->b, a->c",
			"q <- p, q->r, p->r", // p->q, q->r, p->r
		},
		{
			"a->b, b->c, c->a",
			"z->x, x->y, y->z",
		},
		{
			"a:1 -> b:2",
			"u:1 -> v:2",
		},
		{
			"a -[3]-> b, b -> c, a -> c",
			"x -[3]-> y, y -> z, x -> z",
		},
	}
	for gi, group := range groups {
		var key string
		for _, pat := range group {
			q := MustParse(pat)
			k := q.CanonicalKey()
			if key == "" {
				key = k
			} else if k != key {
				t.Errorf("group %d: %q key %q != %q", gi, pat, k, key)
			}
		}
	}
}

func TestCanonicalKeyDistinguishes(t *testing.T) {
	patterns := []string{
		"a->b, b->c, a->c", // asymmetric triangle
		"a->b, b->c, c->a", // cyclic triangle
		"a->b, b->c",       // path
		"a->b, a->c",       // out-fork
		"b->a, c->a",       // in-fork
		"a:1->b, b->c, a->c",
		"a-[1]->b, b->c, a->c",
		"a->b, b->c, c->d, a->d",
		"a->b, b->c, c->d, d->a",
	}
	seen := map[string]string{}
	for _, pat := range patterns {
		k := MustParse(pat).CanonicalKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("patterns %q and %q share key %q", prev, pat, k)
		}
		seen[k] = pat
	}
}

func TestCanonicalNormalizesNamesAndEdges(t *testing.T) {
	q := MustParse("zz->yy, yy->xx, zz->xx")
	canon, perm := q.Canonical()
	if len(perm) != 3 {
		t.Fatalf("perm length %d", len(perm))
	}
	for i, v := range canon.Vertices {
		want := []string{"a1", "a2", "a3"}[i]
		if v.Name != want {
			t.Errorf("canonical vertex %d named %q, want %q", i, v.Name, want)
		}
	}
	for i := 1; i < len(canon.Edges); i++ {
		a, b := canon.Edges[i-1], canon.Edges[i]
		if a.From > b.From || (a.From == b.From && a.To > b.To) {
			t.Errorf("edges not sorted: %+v before %+v", a, b)
		}
	}
	if err := canon.Validate(); err != nil {
		t.Errorf("canonical graph invalid: %v", err)
	}
	// perm must be a bijection applied consistently.
	for orig, c := range perm {
		if q.Vertices[orig].Label != canon.Vertices[c].Label {
			t.Errorf("label mismatch through perm at %d", orig)
		}
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	q := MustParse("a->b, b->c, c->d, a->d, a->c")
	want := q.CanonicalKey()
	for i := 0; i < 20; i++ {
		if got := q.CanonicalKey(); got != want {
			t.Fatalf("run %d: key %q != %q", i, got, want)
		}
	}
}

func TestCanonicalMatchesExactIsomorphism(t *testing.T) {
	// For small queries the cheap canonical key must agree with the exact
	// (factorial) canonical code on isomorphism.
	pairs := []struct {
		a, b string
		iso  bool
	}{
		{"a->b, b->c, a->c", "j->k, j->l, k->l", true},
		{"a->b, b->c, a->c", "a->b, b->c, c->a", false},
		{"a->b, b->c, c->d, d->a", "w->x, x->y, y->z, z->w", true},
		{"a->b, a->c, a->d", "b->a, c->a, d->a", false},
	}
	for _, p := range pairs {
		qa, qb := MustParse(p.a), MustParse(p.b)
		exact := qa.IsIsomorphic(qb)
		if exact != p.iso {
			t.Fatalf("exact isomorphism of %q vs %q = %v, want %v", p.a, p.b, exact, p.iso)
		}
		cheap := qa.CanonicalKey() == qb.CanonicalKey()
		if cheap != exact {
			t.Errorf("canonical-key equality %v disagrees with exact isomorphism %v for %q vs %q",
				cheap, exact, p.a, p.b)
		}
	}
}

func TestCanonicalKeySoundOnSymmetricQuery(t *testing.T) {
	// A 6-cycle gives colour refinement nothing to split on; whatever
	// ordering is chosen, the key must still be stable and must differ
	// from a near-miss structure.
	cyc := MustParse("a->b, b->c, c->d, d->e, e->f, f->a")
	k1 := cyc.CanonicalKey()
	k2 := MustParse("u->v, v->w, w->x, x->y, y->z, z->u").CanonicalKey()
	if k1 != k2 {
		t.Errorf("isomorphic 6-cycles got distinct keys %q / %q", k1, k2)
	}
	other := MustParse("a->b, b->c, c->d, d->e, e->f, a->f") // one edge flipped
	if other.CanonicalKey() == k1 {
		t.Error("non-isomorphic query shares the 6-cycle key")
	}
	if !strings.HasPrefix(k1, "n6:") {
		t.Errorf("key %q missing vertex-count prefix", k1)
	}
}
