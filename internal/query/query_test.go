package query

import (
	"math/bits"
	"strings"
	"testing"
)

func TestParseTriangle(t *testing.T) {
	q, err := Parse("a1->a2, a2->a3, a1->a3")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.NumVertices() != 3 || q.NumEdges() != 3 {
		t.Fatalf("parsed %d vertices, %d edges", q.NumVertices(), q.NumEdges())
	}
	if q.VertexIndex("a2") != 1 {
		t.Errorf("a2 index = %d", q.VertexIndex("a2"))
	}
}

func TestParseLabels(t *testing.T) {
	q, err := Parse("a:1 -[2]-> b:3, b -> a")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Vertices[0].Label != 1 || q.Vertices[1].Label != 3 {
		t.Errorf("vertex labels = %v", q.Vertices)
	}
	if q.Edges[0].Label != 2 || q.Edges[1].Label != 0 {
		t.Errorf("edge labels = %v", q.Edges)
	}
}

func TestParseReversedArrow(t *testing.T) {
	q := MustParse("a <- b, a -> c")
	// b->a and a->c.
	if q.Edges[0].From != q.VertexIndex("b") || q.Edges[0].To != q.VertexIndex("a") {
		t.Errorf("reversed arrow parsed wrong: %+v", q.Edges[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",               // no edges
		"a->a",           // self loop
		"a->b, a->b",     // duplicate edge
		"a->b, c->d",     // disconnected
		"a:1->b, a:2->c", // conflicting labels
		"a b",            // no arrow
		"a -[x]-> b",     // bad edge label
		"a:zz -> b",      // bad vertex label
		"a -[1]- b",      // malformed arrow
	}
	for _, p := range bad {
		if _, err := Parse(p); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", p)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for j := 1; j <= 14; j++ {
		q := Benchmark(j)
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("Q%d: reparse failed: %v (pattern %q)", j, err, q.String())
		}
		if !q.IsIsomorphic(q2) {
			t.Errorf("Q%d: round trip not isomorphic", j)
		}
	}
}

func TestBenchmarkQueries(t *testing.T) {
	wantVE := map[int][2]int{
		1: {3, 3}, 2: {4, 4}, 3: {4, 4}, 4: {4, 5}, 5: {4, 5},
		6: {4, 6}, 7: {5, 10}, 8: {5, 6}, 9: {6, 8}, 10: {6, 7},
		11: {5, 4}, 12: {6, 6}, 13: {6, 5}, 14: {7, 21},
	}
	for j := 1; j <= 14; j++ {
		q := Benchmark(j)
		if q == nil {
			t.Fatalf("Benchmark(%d) = nil", j)
		}
		if err := q.Validate(); err != nil {
			t.Errorf("Q%d invalid: %v", j, err)
		}
		if got := [2]int{q.NumVertices(), q.NumEdges()}; got != wantVE[j] {
			t.Errorf("Q%d = %v vertices/edges, want %v", j, got, wantVE[j])
		}
	}
	if Benchmark(0) != nil || Benchmark(15) != nil {
		t.Error("out-of-range Benchmark should be nil")
	}
}

func TestIsConnected(t *testing.T) {
	q := Q4() // diamond-X
	if !q.IsConnected(AllMask(4)) {
		t.Error("full diamond-X should be connected")
	}
	// a1 and a4 are not adjacent in diamond-X.
	if q.IsConnected(Bit(0) | Bit(3)) {
		t.Error("{a1,a4} should be disconnected")
	}
	if !q.IsConnected(Bit(0) | Bit(1)) {
		t.Error("{a1,a2} should be connected")
	}
	if !q.IsConnected(Bit(2)) {
		t.Error("singleton should be connected")
	}
	if q.IsConnected(0) {
		t.Error("empty mask should not be connected")
	}
}

func TestConnectedSubsets(t *testing.T) {
	q := Q1() // triangle: all non-empty subsets connected
	subs := q.ConnectedSubsets(1)
	if len(subs) != 7 {
		t.Errorf("triangle connected subsets = %d, want 7", len(subs))
	}
	// Popcount ordering.
	for i := 1; i < len(subs); i++ {
		if bits.OnesCount32(subs[i]) < bits.OnesCount32(subs[i-1]) {
			t.Errorf("subsets not popcount-ordered")
		}
	}
	// Path a1->a2->a3: {a1,a3} disconnected.
	p := MustParse("a1->a2, a2->a3")
	subs = p.ConnectedSubsets(2)
	for _, m := range subs {
		if m == Bit(0)|Bit(2) {
			t.Errorf("{a1,a3} reported connected in path")
		}
	}
	if len(subs) != 3 { // {a1,a2}, {a2,a3}, all
		t.Errorf("path connected subsets(>=2) = %d, want 3", len(subs))
	}
}

func TestProject(t *testing.T) {
	q := Q4()
	sub, orig := q.Project(Bit(0) | Bit(1) | Bit(2)) // a1,a2,a3 triangle
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("projection = %d/%d, want 3/3", sub.NumVertices(), sub.NumEdges())
	}
	if len(orig) != 3 || orig[0] != 0 || orig[2] != 2 {
		t.Errorf("orig mapping = %v", orig)
	}
	if !sub.IsIsomorphic(Q1()) {
		t.Error("diamond-X projection on a1..a3 should be the asymmetric triangle")
	}
}

func TestEdgesBetween(t *testing.T) {
	q := Q4()
	// Extending {a2,a3} by a4: edges a2->a4 and a3->a4.
	es := q.EdgesBetween(Bit(1)|Bit(2), 3)
	if len(es) != 2 {
		t.Fatalf("EdgesBetween = %v", es)
	}
	for _, e := range es {
		if e.To != 3 {
			t.Errorf("expected edges into a4, got %+v", e)
		}
	}
}

func TestCanonicalCode(t *testing.T) {
	// Isomorphic triangles with different vertex orders.
	q1 := MustParse("x->y, y->z, x->z")
	q2 := MustParse("b->c, a->b, a->c")
	if q1.CanonicalCode() != q2.CanonicalCode() {
		t.Error("isomorphic triangles got different codes")
	}
	// Direction matters: cyclic triangle differs from asymmetric.
	cyc := MustParse("a->b, b->c, c->a")
	if cyc.CanonicalCode() == q1.CanonicalCode() {
		t.Error("cyclic and asymmetric triangles should differ")
	}
	// Labels matter.
	lab := MustParse("x -[1]-> y, y->z, x->z")
	if lab.CanonicalCode() == q1.CanonicalCode() {
		t.Error("edge label should change the code")
	}
	vlab := MustParse("x:1->y, y->z, x->z")
	if vlab.CanonicalCode() == q1.CanonicalCode() {
		t.Error("vertex label should change the code")
	}
}

func TestIsIsomorphic(t *testing.T) {
	if !Q12().IsIsomorphic(MustParse("b->c, c->d, d->e, e->f, f->a, a->b")) {
		t.Error("6-cycles should be isomorphic")
	}
	if Q1().IsIsomorphic(Q2()) {
		t.Error("triangle vs 4-cycle should differ")
	}
	if Q11().IsIsomorphic(Q13()) {
		t.Error("different-length paths should differ")
	}
}

func TestAutomorphisms(t *testing.T) {
	// Asymmetric triangle is rigid: only identity.
	if n := len(Q1().Automorphisms()); n != 1 {
		t.Errorf("asymmetric triangle automorphisms = %d, want 1", n)
	}
	// Cyclic triangle has the 3 rotations.
	cyc := MustParse("a->b, b->c, c->a")
	if n := len(cyc.Automorphisms()); n != 3 {
		t.Errorf("cyclic triangle automorphisms = %d, want 3", n)
	}
	// Directed 6-cycle: 6 rotations.
	if n := len(Q12().Automorphisms()); n != 6 {
		t.Errorf("6-cycle automorphisms = %d, want 6", n)
	}
	// Diamond-X of Fig 1: swapping a1<->a4 is NOT an automorphism (directions),
	// but the query has a symmetry swapping nothing; verify identity present.
	autos := Q4().Automorphisms()
	foundIdentity := false
	for _, p := range autos {
		id := true
		for i, x := range p {
			if x != i {
				id = false
			}
		}
		if id {
			foundIdentity = true
		}
	}
	if !foundIdentity {
		t.Error("identity not among automorphisms")
	}
}

func TestWithRandomEdgeLabels(t *testing.T) {
	q := WithRandomEdgeLabels(Q4(), 3, 99)
	if q.NumEdges() != 5 {
		t.Fatalf("labeled copy lost edges")
	}
	distinct := map[int]bool{}
	for _, e := range q.Edges {
		if int(e.Label) > 2 {
			t.Errorf("label out of range: %d", e.Label)
		}
		distinct[int(e.Label)] = true
	}
	// Original untouched.
	for _, e := range Q4().Edges {
		if e.Label != 0 {
			t.Error("original mutated")
		}
	}
	same := WithRandomEdgeLabels(Q4(), 1, 99)
	for _, e := range same.Edges {
		if e.Label != 0 {
			t.Error("numLabels=1 should keep labels 0")
		}
	}
}

func TestValidateTooManyVertices(t *testing.T) {
	q := &Graph{}
	for i := 0; i <= MaxVertices; i++ {
		q.Vertices = append(q.Vertices, Vertex{})
	}
	for i := 0; i < MaxVertices; i++ {
		q.Edges = append(q.Edges, Edge{From: i, To: i + 1})
	}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "maximum") {
		t.Errorf("expected max-vertices error, got %v", err)
	}
}
