// Package query models subgraph queries: directed, connected graphs with
// optional vertex and edge labels (paper Section 2). It also provides the
// pattern parser, exact canonicalization for small subgraphs (used as
// catalogue keys), projection and connectivity utilities used by the
// optimizer's dynamic program, and the 14 benchmark queries of Figure 6.
package query

import (
	"fmt"
	"math/bits"
	"strings"

	"graphflow/internal/graph"
)

// MaxVertices bounds the number of query vertices supported by the bitmask
// machinery (vertex subsets are uint32 masks).
const MaxVertices = 30

// Vertex is a query vertex: a user-visible name plus a label constraint.
type Vertex struct {
	Name  string
	Label graph.Label
}

// Edge is a directed query edge between vertex indices with a label
// constraint.
type Edge struct {
	From, To int
	Label    graph.Label
}

// Graph is a subgraph query. Vertices are referenced by index everywhere in
// the planner; names only matter for parsing and printing.
type Graph struct {
	Vertices []Vertex
	Edges    []Edge
}

// NumVertices returns the number of query vertices.
func (q *Graph) NumVertices() int { return len(q.Vertices) }

// NumEdges returns the number of query edges.
func (q *Graph) NumEdges() int { return len(q.Edges) }

// VertexIndex returns the index of the named vertex, or -1.
func (q *Graph) VertexIndex(name string) int {
	for i, v := range q.Vertices {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the structural assumptions of Section 2: at least one
// edge, no self-loops, vertex indices in range, no duplicate edges (same
// endpoints, direction and label), connectivity, and the MaxVertices bound.
func (q *Graph) Validate() error {
	if len(q.Vertices) > MaxVertices {
		return fmt.Errorf("query: %d vertices exceeds the supported maximum %d", len(q.Vertices), MaxVertices)
	}
	if len(q.Edges) == 0 {
		return fmt.Errorf("query: no edges")
	}
	seen := map[Edge]struct{}{}
	for _, e := range q.Edges {
		if e.From < 0 || e.From >= len(q.Vertices) || e.To < 0 || e.To >= len(q.Vertices) {
			return fmt.Errorf("query: edge (%d->%d) out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("query: self-loop on vertex %d", e.From)
		}
		if _, dup := seen[e]; dup {
			return fmt.Errorf("query: duplicate edge %d->%d", e.From, e.To)
		}
		seen[e] = struct{}{}
	}
	names := map[string]struct{}{}
	for _, v := range q.Vertices {
		if v.Name != "" {
			if _, dup := names[v.Name]; dup {
				return fmt.Errorf("query: duplicate vertex name %q", v.Name)
			}
			names[v.Name] = struct{}{}
		}
	}
	full := AllMask(len(q.Vertices))
	if !q.IsConnected(full) {
		return fmt.Errorf("query: not connected")
	}
	return nil
}

// Mask is a set of query-vertex indices.
type Mask = uint32

// AllMask returns the mask containing vertices 0..n-1.
func AllMask(n int) Mask { return Mask(1)<<uint(n) - 1 }

// Bit returns the mask for a single vertex.
func Bit(v int) Mask { return Mask(1) << uint(v) }

// IsConnected reports whether the vertices in mask induce a connected
// subgraph (edges considered undirected).
func (q *Graph) IsConnected(mask Mask) bool {
	if mask == 0 {
		return false
	}
	if bits.OnesCount32(mask) == 1 {
		return true
	}
	start := Mask(1) << uint(bits.TrailingZeros32(mask))
	frontier := start
	reached := start
	for frontier != 0 {
		next := Mask(0)
		for _, e := range q.Edges {
			fb, tb := Bit(e.From), Bit(e.To)
			if fb&mask == 0 || tb&mask == 0 {
				continue
			}
			if frontier&fb != 0 && reached&tb == 0 {
				next |= tb
			}
			if frontier&tb != 0 && reached&fb == 0 {
				next |= fb
			}
		}
		reached |= next
		frontier = next
	}
	return reached == mask
}

// EdgesWithin returns the query edges whose both endpoints are in mask —
// the edge set of the projection ΠVk(Q) (Section 4.1: projections are
// induced subgraphs).
func (q *Graph) EdgesWithin(mask Mask) []Edge {
	var out []Edge
	for _, e := range q.Edges {
		if mask&Bit(e.From) != 0 && mask&Bit(e.To) != 0 {
			out = append(out, e)
		}
	}
	return out
}

// EdgesBetween returns the query edges connecting vertex v to vertices in
// mask (in either direction). These become the adjacency-list descriptors
// when an E/I operator extends the mask-subquery by v.
func (q *Graph) EdgesBetween(mask Mask, v int) []Edge {
	var out []Edge
	vb := Bit(v)
	for _, e := range q.Edges {
		if Bit(e.From) == vb && mask&Bit(e.To) != 0 {
			out = append(out, e)
		} else if Bit(e.To) == vb && mask&Bit(e.From) != 0 {
			out = append(out, e)
		}
	}
	return out
}

// Project returns the induced subquery on mask, together with the mapping
// from new vertex index to original vertex index (ordered ascending).
func (q *Graph) Project(mask Mask) (*Graph, []int) {
	var orig []int
	newIdx := make(map[int]int)
	for v := 0; v < len(q.Vertices); v++ {
		if mask&Bit(v) != 0 {
			newIdx[v] = len(orig)
			orig = append(orig, v)
		}
	}
	sub := &Graph{}
	for _, v := range orig {
		sub.Vertices = append(sub.Vertices, q.Vertices[v])
	}
	for _, e := range q.EdgesWithin(mask) {
		sub.Edges = append(sub.Edges, Edge{From: newIdx[e.From], To: newIdx[e.To], Label: e.Label})
	}
	return sub, orig
}

// ConnectedSubsets enumerates every connected vertex subset of q with at
// least minSize vertices, in increasing popcount order. The optimizer's DP
// iterates these.
func (q *Graph) ConnectedSubsets(minSize int) []Mask {
	n := len(q.Vertices)
	var out []Mask
	full := AllMask(n)
	for mask := Mask(1); mask <= full; mask++ {
		if bits.OnesCount32(mask) < minSize {
			continue
		}
		if q.IsConnected(mask) {
			out = append(out, mask)
		}
	}
	// Sort by popcount, then value, so DP dependencies precede dependents.
	sortMasksByPopcount(out)
	return out
}

func sortMasksByPopcount(masks []Mask) {
	// Insertion-friendly stable sort; subset counts are small (2^m).
	lessThan := func(a, b Mask) bool {
		pa, pb := bits.OnesCount32(a), bits.OnesCount32(b)
		if pa != pb {
			return pa < pb
		}
		return a < b
	}
	for i := 1; i < len(masks); i++ {
		for j := i; j > 0 && lessThan(masks[j], masks[j-1]); j-- {
			masks[j], masks[j-1] = masks[j-1], masks[j]
		}
	}
}

// String renders the query in the pattern syntax accepted by Parse.
func (q *Graph) String() string {
	var sb strings.Builder
	for i, e := range q.Edges {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(q.vertexString(e.From))
		if e.Label != 0 {
			fmt.Fprintf(&sb, " -[%d]-> ", e.Label)
		} else {
			sb.WriteString(" -> ")
		}
		sb.WriteString(q.vertexString(e.To))
	}
	return sb.String()
}

func (q *Graph) vertexString(i int) string {
	v := q.Vertices[i]
	name := v.Name
	if name == "" {
		name = fmt.Sprintf("a%d", i+1)
	}
	if v.Label != 0 {
		return fmt.Sprintf("%s:%d", name, v.Label)
	}
	return name
}

// Clone returns a deep copy.
func (q *Graph) Clone() *Graph {
	return &Graph{
		Vertices: append([]Vertex(nil), q.Vertices...),
		Edges:    append([]Edge(nil), q.Edges...),
	}
}

// Undirected degree of vertex v inside the query (used by heuristics and
// the CFL-style core/forest split).
func (q *Graph) Degree(v int) int {
	d := 0
	for _, e := range q.Edges {
		if e.From == v || e.To == v {
			d++
		}
	}
	return d
}
