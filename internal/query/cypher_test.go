package query

import (
	"testing"
)

func TestParseCypherTriangle(t *testing.T) {
	q, err := ParseCypher("MATCH (a)-->(b), (b)-->(c), (a)-->(c) RETURN count(*)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsIsomorphic(Q1()) {
		t.Errorf("cypher triangle not isomorphic to Q1: %s", q)
	}
}

func TestParseCypherPathChain(t *testing.T) {
	// One path expression with chained relationships.
	q, err := ParseCypher("MATCH (a)-->(b)-->(c)-->(d)")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 4 || q.NumEdges() != 3 {
		t.Fatalf("chain parsed to %d/%d", q.NumVertices(), q.NumEdges())
	}
}

func TestParseCypherLabelsAndDirections(t *testing.T) {
	q, err := ParseCypher("MATCH (a:1)-[:2]->(b), (b)<-[e:3]-(c)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Vertices[q.VertexIndex("a")].Label != 1 {
		t.Errorf("vertex label lost")
	}
	var e1, e2 *Edge
	for i := range q.Edges {
		switch q.Edges[i].Label {
		case 2:
			e1 = &q.Edges[i]
		case 3:
			e2 = &q.Edges[i]
		}
	}
	if e1 == nil || e2 == nil {
		t.Fatalf("edge labels lost: %v", q.Edges)
	}
	// (b)<-[:3]-(c) means c->b.
	if e2.From != q.VertexIndex("c") || e2.To != q.VertexIndex("b") {
		t.Errorf("reversed relationship parsed wrong: %+v", e2)
	}
}

func TestParseCypherReversedArrowNoLabel(t *testing.T) {
	q, err := ParseCypher("MATCH (a)<--(b), (a)-->(c)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Edges[0].From != q.VertexIndex("b") {
		t.Errorf("<-- should reverse: %+v", q.Edges[0])
	}
}

func TestParseCypherErrors(t *testing.T) {
	bad := []string{
		"(a)-->(b)",                  // missing MATCH
		"MATCH",                      // empty pattern
		"MATCH (a)-->(a)",            // self loop
		"MATCH ()-->(b)",             // anonymous node
		"MATCH (a)-->(b), (c)-->(d)", // disconnected
		"MATCH (a:x)-->(b)",          // non-numeric label
		"MATCH (a)--(b)",             // undirected unsupported
		"MATCH (a-->(b)",             // malformed
	}
	for _, s := range bad {
		if _, err := ParseCypher(s); err == nil {
			t.Errorf("ParseCypher(%q) succeeded, want error", s)
		}
	}
}

func TestParseAnyDispatch(t *testing.T) {
	q1, err := ParseAny("MATCH (a)-->(b), (b)-->(c), (a)-->(c)")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := ParseAny("a->b, b->c, a->c")
	if err != nil {
		t.Fatal(err)
	}
	if !q1.IsIsomorphic(q2) {
		t.Error("ParseAny dispatch produced different queries")
	}
	if _, err := ParseAny("  match (a)-->(b), (b)-->(a2), (a)-->(a2)"); err != nil {
		t.Errorf("lowercase match should dispatch to cypher: %v", err)
	}
}
