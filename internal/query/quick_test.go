package query

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphflow/internal/graph"
)

// randomQuery is a quick.Generator for small connected directed queries.
type randomQuery struct{ Q *Graph }

// Generate implements quick.Generator: a random connected query with 2-6
// vertices, built by vertex extension so connectivity holds by
// construction.
func (randomQuery) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 2 + rng.Intn(5)
	q := &Graph{}
	for i := 0; i < n; i++ {
		q.Vertices = append(q.Vertices, Vertex{Label: graph.Label(rng.Intn(2))})
	}
	seen := map[[2]int]bool{}
	addEdge := func(a, b int) {
		key := [2]int{min(a, b), max(a, b)}
		if seen[key] || a == b {
			return
		}
		seen[key] = true
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		q.Edges = append(q.Edges, Edge{From: a, To: b, Label: graph.Label(rng.Intn(2))})
	}
	// Spanning: vertex i attaches to a random earlier vertex.
	for i := 1; i < n; i++ {
		addEdge(i, rng.Intn(i))
	}
	// Extras.
	for k := 0; k < rng.Intn(2*n); k++ {
		addEdge(rng.Intn(n), rng.Intn(n))
	}
	return reflect.ValueOf(randomQuery{q})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestQuickRandomQueriesValidate(t *testing.T) {
	f := func(rq randomQuery) bool {
		return rq.Q.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalCodeIsomorphismInvariant(t *testing.T) {
	// Relabelling vertices with a random permutation never changes the
	// canonical code.
	f := func(rq randomQuery, seed int64) bool {
		q := rq.Q
		rng := rand.New(rand.NewSource(seed))
		n := len(q.Vertices)
		perm := rng.Perm(n)
		shuffled := &Graph{Vertices: make([]Vertex, n)}
		for i, v := range q.Vertices {
			shuffled.Vertices[perm[i]] = v
		}
		for _, e := range q.Edges {
			shuffled.Edges = append(shuffled.Edges, Edge{From: perm[e.From], To: perm[e.To], Label: e.Label})
		}
		return q.CanonicalCode() == shuffled.CanonicalCode()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalPermIsConsistent(t *testing.T) {
	// Applying the returned permutation to the query and re-encoding gives
	// the same code (the permutation actually realises the code).
	f := func(rq randomQuery) bool {
		q := rq.Q
		code, perm := q.CanonicalCodeWithPerm()
		relabel := &Graph{Vertices: make([]Vertex, len(q.Vertices))}
		for i, v := range q.Vertices {
			relabel.Vertices[perm[i]] = v
		}
		for _, e := range q.Edges {
			relabel.Edges = append(relabel.Edges, Edge{From: perm[e.From], To: perm[e.To], Label: e.Label})
		}
		code2, _ := relabel.CanonicalCodeWithPerm()
		return code == code2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickProjectionsConnectedSubsetsConsistent(t *testing.T) {
	// Every mask reported connected yields a projection that validates
	// (when it has edges) and whose vertex count matches the popcount.
	f := func(rq randomQuery) bool {
		q := rq.Q
		for _, mask := range q.ConnectedSubsets(2) {
			sub, orig := q.Project(mask)
			if len(orig) != sub.NumVertices() {
				return false
			}
			if sub.NumEdges() > 0 && !sub.IsConnected(AllMask(sub.NumVertices())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickAutomorphismsFormGroup(t *testing.T) {
	// The automorphism set contains the identity and is closed under
	// composition (sufficient group checks for small sets).
	f := func(rq randomQuery) bool {
		q := rq.Q
		autos := q.Automorphisms()
		if len(autos) == 0 {
			return false
		}
		asKey := func(p []int) string {
			b := make([]byte, len(p))
			for i, x := range p {
				b[i] = byte(x)
			}
			return string(b)
		}
		set := map[string]bool{}
		idFound := false
		for _, p := range autos {
			set[asKey(p)] = true
			id := true
			for i, x := range p {
				if x != i {
					id = false
				}
			}
			if id {
				idFound = true
			}
		}
		if !idFound {
			return false
		}
		if len(autos) > 12 {
			return true // skip O(k^2) closure check for big groups
		}
		for _, p := range autos {
			for _, r := range autos {
				comp := make([]int, len(p))
				for i := range p {
					comp[i] = p[r[i]]
				}
				if !set[asKey(comp)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickRefCountPermutationInvariant(t *testing.T) {
	// Vertex renaming never changes the match count.
	g := func() *graph.Graph {
		b := graph.NewBuilder(30)
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 120; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(30)), graph.VertexID(rng.Intn(30)), graph.Label(rng.Intn(2)))
		}
		return b.MustBuild()
	}()
	f := func(rq randomQuery, seed int64) bool {
		q := rq.Q
		// Vertex labels beyond the data graph's would be vacuous; clamp.
		for i := range q.Vertices {
			q.Vertices[i].Label = 0
		}
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(q.Vertices))
		shuffled := &Graph{Vertices: make([]Vertex, len(q.Vertices))}
		for i, v := range q.Vertices {
			shuffled.Vertices[perm[i]] = v
		}
		for _, e := range q.Edges {
			shuffled.Edges = append(shuffled.Edges, Edge{From: perm[e.From], To: perm[e.To], Label: e.Label})
		}
		return RefCount(g, q) == RefCount(g, shuffled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
