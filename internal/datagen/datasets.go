package datagen

import "graphflow/internal/graph"

// Dataset names mirror Table 8 of the paper. Each named constructor fixes
// generator parameters and a seed so every experiment is reproducible. The
// scale parameter multiplies the default vertex counts (scale 1 is
// laptop-sized; the paper's originals are 10-1000x larger — see DESIGN.md
// substitution #1).

// Amazon returns the Amazon-like product co-purchase graph: near-uniform
// degrees, moderate clustering.
func Amazon(scale int) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	return CoPurchase(CoPurchaseConfig{N: 4000 * scale, K: 5, Rewire: 0.15, Seed: 1001})
}

// Epinions returns the Epinions-like social trust graph: skewed degrees,
// high clustering, small.
func Epinions(scale int) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	return Social(SocialConfig{N: 3000 * scale, MPerV: 7, Closure: 0.35, Reciprocal: 0.25, Seed: 1002})
}

// LiveJournal returns the LiveJournal-like social graph: larger, skewed,
// highly clustered.
func LiveJournal(scale int) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	return Social(SocialConfig{N: 12000 * scale, MPerV: 8, Closure: 0.3, Reciprocal: 0.35, Seed: 1003})
}

// Twitter returns the Twitter-like follower graph used only in the
// scalability experiment: the largest, most skewed dataset.
func Twitter(scale int) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	return Social(SocialConfig{N: 25000 * scale, MPerV: 12, Closure: 0.15, Reciprocal: 0.1, Seed: 1004})
}

// BerkStan returns the BerkStan-like web graph: extreme in-degree skew.
func BerkStan(scale int) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	return Web(WebConfig{N: 5000 * scale, OutDeg: 8, Copy: 0.7, Seed: 1005})
}

// Google returns the Google-web-like graph: strong but milder skew.
func Google(scale int) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	return Web(WebConfig{N: 6000 * scale, OutDeg: 6, Copy: 0.55, Seed: 1006})
}

// Human returns the labelled graph standing in for the CFL paper's human
// protein-interaction dataset (4674 vertices, 86282 edges, 44 labels),
// matching its scale and label count for the Table 12 experiment. Labels
// are placed on edges (our engine's selective dimension) so that the
// query workload retains the large output sizes the original experiment's
// 10^5/10^8 caps imply.
func Human() *graph.Graph {
	g := Social(SocialConfig{N: 4674, MPerV: 9, Closure: 0.4, Reciprocal: 0.5, Seed: 1007})
	return Relabel(g, 1, 44, 1008)
}

// ByName returns the named dataset at the given scale, or nil if the name is
// unknown. Recognised names (case-sensitive, as in Table 8): "Amazon",
// "Epinions", "LiveJournal", "Twitter", "BerkStan", "Google", "Human".
func ByName(name string, scale int) *graph.Graph {
	switch name {
	case "Amazon", "Am":
		return Amazon(scale)
	case "Epinions", "Ep":
		return Epinions(scale)
	case "LiveJournal", "LJ":
		return LiveJournal(scale)
	case "Twitter", "Tw":
		return Twitter(scale)
	case "BerkStan", "BS":
		return BerkStan(scale)
	case "Google", "Go":
		return Google(scale)
	case "Human":
		return Human()
	}
	return nil
}

// Names lists the recognised dataset names.
func Names() []string {
	return []string{"Amazon", "Epinions", "LiveJournal", "Twitter", "BerkStan", "Google", "Human"}
}
