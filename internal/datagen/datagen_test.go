package datagen

import (
	"math/rand"
	"testing"

	"graphflow/internal/graph"
)

func TestSocialShape(t *testing.T) {
	g := Social(SocialConfig{N: 2000, MPerV: 6, Closure: 0.4, Reciprocal: 0.3, Seed: 7})
	if g.NumVertices() != 2000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() < 5000 {
		t.Fatalf("edges = %d, too few", g.NumEdges())
	}
	st := g.ComputeStats(500, rand.New(rand.NewSource(1)))
	if st.Clustering < 0.05 {
		t.Errorf("social clustering = %v, want clearly positive", st.Clustering)
	}
	// Preferential attachment must produce skew: max degree far above mean.
	if float64(st.In.Max) < 5*st.In.Mean {
		t.Errorf("in-degree skew too small: max=%d mean=%v", st.In.Max, st.In.Mean)
	}
}

func TestWebInDegreeSkew(t *testing.T) {
	g := Web(WebConfig{N: 3000, OutDeg: 7, Copy: 0.7, Seed: 8})
	st := g.ComputeStats(500, rand.New(rand.NewSource(1)))
	// Copying model: in-degree much more skewed than out-degree.
	if st.In.Max <= st.Out.Max {
		t.Errorf("web graph should have in-skew > out-skew: in.max=%d out.max=%d", st.In.Max, st.Out.Max)
	}
	if float64(st.In.Max) < 10*st.In.Mean {
		t.Errorf("in-degree skew too small: max=%d mean=%v", st.In.Max, st.In.Mean)
	}
}

func TestCoPurchaseUniformity(t *testing.T) {
	g := CoPurchase(CoPurchaseConfig{N: 3000, K: 5, Rewire: 0.15, Seed: 9})
	st := g.ComputeStats(500, rand.New(rand.NewSource(1)))
	// Lattice-based: bounded degree, no heavy tail.
	if float64(st.Out.Max) > 6*st.Out.Mean {
		t.Errorf("co-purchase out-degree unexpectedly skewed: max=%d mean=%v", st.Out.Max, st.Out.Mean)
	}
	if st.Clustering < 0.01 {
		t.Errorf("co-purchase clustering = %v, want positive", st.Clustering)
	}
}

func TestRelabel(t *testing.T) {
	g := CoPurchase(CoPurchaseConfig{N: 500, K: 3, Rewire: 0.1, Seed: 3})
	lg := Relabel(g, 3, 5, 11)
	if lg.NumVertices() != g.NumVertices() || lg.NumEdges() != g.NumEdges() {
		t.Fatalf("relabel changed topology: %v vs %v", lg, g)
	}
	if lg.NumVertexLabels() < 2 || lg.NumEdgeLabels() < 2 {
		t.Errorf("labels not assigned: v=%d e=%d", lg.NumVertexLabels(), lg.NumEdgeLabels())
	}
	// Unlabeled dimensions stay label 0.
	un := Relabel(g, 1, 1, 11)
	if un.NumVertexLabels() != 1 || un.NumEdgeLabels() != 1 {
		t.Errorf("relabel(1,1) should keep single labels")
	}
}

func TestDeterminism(t *testing.T) {
	a := Epinions(1)
	b := Epinions(1)
	if a.NumEdges() != b.NumEdges() || a.NumVertices() != b.NumVertices() {
		t.Fatalf("same seed produced different graphs")
	}
	// Spot-check adjacency equality on a few vertices.
	for v := graph.VertexID(0); v < 50; v++ {
		la := a.Neighbors(v, graph.Forward, 0, 0, nil)
		lb := b.Neighbors(v, graph.Forward, 0, 0, nil)
		if len(la) != len(lb) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		g := ByName(name, 1)
		if g == nil || g.NumEdges() == 0 {
			t.Errorf("dataset %s empty", name)
		}
	}
	if ByName("nope", 1) != nil {
		t.Errorf("unknown name should return nil")
	}
	if g := ByName("Ep", 1); g == nil {
		t.Errorf("abbreviation lookup failed")
	}
}

func TestHumanDataset(t *testing.T) {
	g := Human()
	if g.NumVertices() != 4674 {
		t.Errorf("human vertices = %d, want 4674", g.NumVertices())
	}
	if g.NumEdgeLabels() < 30 {
		t.Errorf("human edge labels = %d, want ~44", g.NumEdgeLabels())
	}
}
