// Package datagen generates the synthetic datasets that stand in for the
// paper's SNAP/Twitter graphs (Table 8).
//
// The module is offline, so the six public graphs cannot be downloaded.
// Instead each generator controls exactly the structural axes the paper says
// drive query-vertex-ordering effects (Section 3.2, Section 8.1.2):
//
//   - forward/backward adjacency-list size skew (degree distributions),
//   - average clustering coefficient (cyclicity: triangle/clique density),
//   - size.
//
// Social graphs come from directed preferential attachment with triangle
// closure; web graphs from a copying model with heavy in-degree skew;
// product co-purchase graphs from a community lattice with rewiring. The
// named constructors (Amazon, Epinions, ...) fix seeds and scaled-down sizes
// so experiments are reproducible; Scale multiplies the default sizes.
package datagen

import (
	"math/rand"

	"graphflow/internal/graph"
)

// SocialConfig parameterises the preferential-attachment generator.
type SocialConfig struct {
	N       int     // number of vertices
	MPerV   int     // edges added per new vertex
	Closure float64 // probability an edge closes a triangle (clustering knob)
	// Reciprocal is the probability a new edge also gets its reverse,
	// controlling forward/backward symmetry.
	Reciprocal float64
	Seed       int64
}

// Social generates a directed social-network-like graph: heavy-tailed in-
// and out-degrees, tunable clustering. With high Closure it resembles
// Epinions/LiveJournal in the properties the paper's experiments exercise.
func Social(cfg SocialConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.N < 3 {
		cfg.N = 3
	}
	if cfg.MPerV < 1 {
		cfg.MPerV = 1
	}
	b := graph.NewBuilder(cfg.N)
	// Seed triangle.
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(0, 2, 0)
	// ends holds one entry per edge endpoint for preferential attachment.
	ends := []graph.VertexID{0, 1, 1, 2, 0, 2}
	// adjacency for closure: out-neighbour sample lists.
	out := make([][]graph.VertexID, cfg.N)
	out[0] = []graph.VertexID{1, 2}
	out[1] = []graph.VertexID{2}

	addEdge := func(s, d graph.VertexID) {
		if s == d {
			return
		}
		b.AddEdge(s, d, 0)
		ends = append(ends, s, d)
		out[s] = append(out[s], d)
		if cfg.Reciprocal > 0 && rng.Float64() < cfg.Reciprocal {
			b.AddEdge(d, s, 0)
			ends = append(ends, d, s)
			out[d] = append(out[d], s)
		}
	}

	for v := 3; v < cfg.N; v++ {
		src := graph.VertexID(v)
		for e := 0; e < cfg.MPerV; e++ {
			var dst graph.VertexID
			if e > 0 && rng.Float64() < cfg.Closure && len(out[src]) > 0 {
				// Triangle closure: link to a neighbour of an existing
				// neighbour, creating a directed triangle.
				mid := out[src][rng.Intn(len(out[src]))]
				if len(out[mid]) == 0 {
					dst = ends[rng.Intn(len(ends))]
				} else {
					dst = out[mid][rng.Intn(len(out[mid]))]
				}
			} else {
				// Preferential attachment: endpoints of random edges.
				dst = ends[rng.Intn(len(ends))]
			}
			if dst == src {
				continue
			}
			// Randomise orientation slightly so both directions are skewed.
			if rng.Float64() < 0.8 {
				addEdge(src, dst)
			} else {
				addEdge(dst, src)
			}
		}
	}
	return b.MustBuild()
}

// WebConfig parameterises the copying-model web-graph generator.
type WebConfig struct {
	N      int
	OutDeg int     // out-links per new page
	Copy   float64 // probability of copying the prototype's link (skew knob)
	Seed   int64
}

// Web generates a web-like graph using the classic copying model: each new
// page copies a prototype page's out-links with probability Copy, otherwise
// links uniformly. This yields the heavy in-degree skew and large hub
// backward lists characteristic of BerkStan/Google, which is what makes
// adjacency-list *direction* choices matter (paper Section 3.2.1).
func Web(cfg WebConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.N < 3 {
		cfg.N = 3
	}
	if cfg.OutDeg < 1 {
		cfg.OutDeg = 1
	}
	b := graph.NewBuilder(cfg.N)
	out := make([][]graph.VertexID, cfg.N)
	// Seed path.
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(2, 0, 0)
	out[0] = []graph.VertexID{1}
	out[1] = []graph.VertexID{2}
	out[2] = []graph.VertexID{0}

	for v := 3; v < cfg.N; v++ {
		src := graph.VertexID(v)
		proto := graph.VertexID(rng.Intn(v))
		for e := 0; e < cfg.OutDeg; e++ {
			var dst graph.VertexID
			if rng.Float64() < cfg.Copy && e < len(out[proto]) {
				dst = out[proto][e]
			} else {
				dst = graph.VertexID(rng.Intn(v))
			}
			if dst == src {
				continue
			}
			b.AddEdge(src, dst, 0)
			out[src] = append(out[src], dst)
		}
	}
	return b.MustBuild()
}

// CoPurchaseConfig parameterises the product co-purchase generator.
type CoPurchaseConfig struct {
	N      int
	K      int     // lattice half-width: products link to the next K products
	Rewire float64 // probability an edge is rewired to a random product
	Seed   int64
}

// CoPurchase generates an Amazon-like co-purchase graph: a directed ring
// lattice (products in the same category link to each other) with random
// rewiring. Degrees are near-uniform and clustering moderate, the regime in
// which the paper's Amazon numbers sit.
func CoPurchase(cfg CoPurchaseConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.N < 4 {
		cfg.N = 4
	}
	if cfg.K < 1 {
		cfg.K = 1
	}
	b := graph.NewBuilder(cfg.N)
	for v := 0; v < cfg.N; v++ {
		for k := 1; k <= cfg.K; k++ {
			dst := (v + k) % cfg.N
			if rng.Float64() < cfg.Rewire {
				dst = rng.Intn(cfg.N)
			}
			if dst == v {
				continue
			}
			b.AddEdge(graph.VertexID(v), graph.VertexID(dst), 0)
			// Co-purchase relationships are often reciprocal.
			if rng.Float64() < 0.4 {
				b.AddEdge(graph.VertexID(dst), graph.VertexID(v), 0)
			}
		}
	}
	return b.MustBuild()
}

// Relabel returns a copy of g whose vertex labels are drawn uniformly from
// [0, numVertexLabels) and edge labels uniformly from [0, numEdgeLabels).
// This implements the paper's QJi workloads (Section 8.1.3): "we randomly
// generate a label l on each edge, where l in {l1..li}". Passing 1 for
// either count leaves that dimension unlabeled (all zero).
func Relabel(g *graph.Graph, numVertexLabels, numEdgeLabels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(g.NumVertices())
	if numVertexLabels > 1 {
		for v := 0; v < g.NumVertices(); v++ {
			b.SetVertexLabel(graph.VertexID(v), graph.Label(rng.Intn(numVertexLabels)))
		}
	}
	g.Edges(func(src, dst graph.VertexID, _ graph.Label) bool {
		l := graph.Label(0)
		if numEdgeLabels > 1 {
			l = graph.Label(rng.Intn(numEdgeLabels))
		}
		b.AddEdge(src, dst, l)
		return true
	})
	return b.MustBuild()
}
