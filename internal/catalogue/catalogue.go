// Package catalogue implements the subgraph catalogue of Section 5: the
// statistics store the optimizer uses to estimate i-cost, hash-join cost and
// intermediate-result cardinalities.
//
// Each entry is keyed by (Q_{k-1}, A, a_k^{l_k}): a small subquery, a set of
// adjacency-list descriptors extending it by one query vertex, and the new
// vertex's label. The entry stores the average sizes of the intersected
// lists (the |A| column of Table 7) and the average number of extensions µ
// (the selectivity column). Entries are built by sampling: z random edges
// are scanned and extended through chains of E/I operators covering every
// pattern of at most H vertices (Section 5.1).
package catalogue

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// targetMarker is OR-ed into the extension target's vertex label inside
// entry keys, so canonicalization distinguishes the new vertex from the
// base subquery's vertices. Real labels must stay below it.
const targetMarker graph.Label = 0x4000

// Config controls catalogue construction.
type Config struct {
	// H is the maximum number of vertices of a base subquery; entries
	// extend up-to-H-vertex subgraphs to (H+1)-vertex subgraphs. Default 3.
	H int
	// Z is the number of edges sampled uniformly at random by the SCAN of
	// each sampling plan. Default 1000.
	Z int
	// MaxInstances caps the partial matches carried per sampling step, to
	// bound construction time on dense graphs. Default 1000.
	MaxInstances int
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.H <= 0 {
		c.H = 3
	}
	if c.Z <= 0 {
		c.Z = 1000
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = 1000
	}
	return c
}

// Entry is one catalogue row: averages over the sampled instances of its
// key's base subquery.
type Entry struct {
	// ListSizes are the average sizes of the descriptor lists, in canonical
	// descriptor order.
	ListSizes []float64 `json:"lists"`
	// Mu is the average number of extensions per base instance.
	Mu float64 `json:"mu"`
	// Samples is the number of base instances measured.
	Samples int `json:"samples"`
}

// Catalogue is the complete statistics store for one graph.
type Catalogue struct {
	Cfg     Config            `json:"config"`
	Entries map[string]*Entry `json:"entries"`

	// Exact base statistics, computed in one pass over the graph.
	NumVertices int              `json:"numVertices"`
	EdgeCount   map[string]int64 `json:"edgeCount"`   // "el/sl/dl" -> count
	FwdTotal    map[string]int64 `json:"fwdTotal"`    // "el/nl" -> total fwd partition size
	BwdTotal    map[string]int64 `json:"bwdTotal"`    // "el/nl" -> total bwd partition size
	VertexCount map[string]int64 `json:"vertexCount"` // "vl" -> count
}

func edgeCountKey(el, sl, dl graph.Label) string { return fmt.Sprintf("%d/%d/%d", el, sl, dl) }
func listKey(el, nl graph.Label) string          { return fmt.Sprintf("%d/%d", el, nl) }

// ScanCount returns the exact number of edges matching the given labels —
// the selectivity µ(l_e) used to seed 2-vertex subqueries in Algorithm 1.
func (c *Catalogue) ScanCount(el, srcLabel, dstLabel graph.Label) float64 {
	return float64(c.EdgeCount[edgeCountKey(el, srcLabel, dstLabel)])
}

// VertexCountByLabel returns the exact number of vertices carrying the
// label; used as the cardinality of single-query-vertex prefixes when the
// optimizer reasons about intersection-cache reuse across scan tuples
// grouped by source vertex.
func (c *Catalogue) VertexCountByLabel(vl graph.Label) float64 {
	return float64(c.VertexCount[fmt.Sprintf("%d", vl)])
}

// DefaultListSize returns the graph-wide average adjacency-partition size
// for (dir, edge label, neighbour label): the fallback when an entry is
// missing.
func (c *Catalogue) DefaultListSize(dir graph.Direction, el, nl graph.Label) float64 {
	if c.NumVertices == 0 {
		return 0
	}
	var total int64
	if dir == graph.Forward {
		total = c.FwdTotal[listKey(el, nl)]
	} else {
		total = c.BwdTotal[listKey(el, nl)]
	}
	return float64(total) / float64(c.NumVertices)
}

// Build constructs the catalogue for g — any graph View, so live
// snapshots get per-epoch statistics without materialising a CSR.
func Build(g graph.View, cfg Config) *Catalogue {
	cfg = cfg.withDefaults()
	c := &Catalogue{
		Cfg:         cfg,
		Entries:     map[string]*Entry{},
		NumVertices: g.NumVertices(),
		EdgeCount:   map[string]int64{},
		FwdTotal:    map[string]int64{},
		BwdTotal:    map[string]int64{},
		VertexCount: map[string]int64{},
	}
	for v := 0; v < g.NumVertices(); v++ {
		c.VertexCount[fmt.Sprintf("%d", g.VertexLabel(graph.VertexID(v)))]++
	}
	// Exact single-edge statistics.
	g.Edges(func(src, dst graph.VertexID, el graph.Label) bool {
		sl, dl := g.VertexLabel(src), g.VertexLabel(dst)
		c.EdgeCount[edgeCountKey(el, sl, dl)]++
		c.FwdTotal[listKey(el, dl)]++
		c.BwdTotal[listKey(el, sl)]++
		return true
	})

	b := &builder{g: g, c: c, rng: rand.New(rand.NewSource(cfg.Seed)), visited: map[string]bool{}}
	b.run()
	b.finalize()
	return c
}

// Save writes the catalogue as JSON.
func (c *Catalogue) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// Load reads a catalogue written by Save.
func Load(r io.Reader) (*Catalogue, error) {
	var c Catalogue
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, err
	}
	if c.Entries == nil {
		c.Entries = map[string]*Entry{}
	}
	if c.VertexCount == nil {
		c.VertexCount = map[string]int64{}
	}
	return &c, nil
}

// Len returns the number of extension entries.
func (c *Catalogue) Len() int { return len(c.Entries) }

// Extension describes extending Base by one new query vertex. Edges
// reference Base's vertex indices plus Base.NumVertices() for the target.
type Extension struct {
	Base        *query.Graph
	Edges       []query.Edge
	TargetLabel graph.Label
}

// Key returns the canonical entry key and, for each input edge, its rank in
// the canonical descriptor order (so callers can align ListSizes with their
// own descriptor order).
func (e Extension) Key() (string, []int) {
	kg := e.Base.Clone()
	target := len(kg.Vertices)
	kg.Vertices = append(kg.Vertices, query.Vertex{Label: e.TargetLabel | targetMarker})
	kg.Edges = append(kg.Edges, e.Edges...)
	code, perm := kg.CanonicalCodeWithPerm()

	type tup struct {
		src   int
		dir   graph.Direction
		label graph.Label
		orig  int
	}
	tuples := make([]tup, len(e.Edges))
	for i, ed := range e.Edges {
		src, dir := ed.From, graph.Backward
		if ed.From == target {
			// target -> src: candidates come from src's backward list.
			src = ed.To
		} else {
			// src -> target: candidates from src's forward list.
			dir = graph.Forward
		}
		tuples[i] = tup{src: perm[src], dir: dir, label: ed.Label, orig: i}
	}
	sort.Slice(tuples, func(a, b int) bool {
		x, y := tuples[a], tuples[b]
		if x.src != y.src {
			return x.src < y.src
		}
		if x.dir != y.dir {
			return x.dir < y.dir
		}
		return x.label < y.label
	})
	ranks := make([]int, len(e.Edges))
	for rank, t := range tuples {
		ranks[t.orig] = rank
	}
	return code, ranks
}
