package catalogue

import "graphflow/internal/graph"

// bitsetProbeCostFactor models the per-element premium of probing a hub
// bitset over streaming a sorted run: probes are random word loads, so
// one probed element costs about two sequentially merged ones.
const bitsetProbeCostFactor = 2.0

// EffectiveICost converts the per-descriptor (average or actual)
// adjacency-list sizes of one E/I extension into the expected per-tuple
// intersection work under the degree-adaptive kernel engine.
//
// Equation 1 charges the sum of all accessed list sizes — correct for
// pure sorted-merge intersections. With hub bitset indexes, a list at or
// above the hub threshold is not scanned: the running intersection
// result (bounded by the smallest list) is probed into its bitset at
// O(result) instead, so the list contributes min(size, factor·smallest).
// The smallest list is always walked in full. hubThreshold follows the
// store's knob convention: 0 takes graph.DefaultHubThreshold, negative
// means no indexes exist and the estimate degrades to the plain sum.
func EffectiveICost(sizes []float64, hubThreshold int) float64 {
	if len(sizes) <= 1 || hubThreshold < 0 {
		total := 0.0
		for _, s := range sizes {
			total += s
		}
		return total
	}
	th := float64(graph.DefaultHubThreshold)
	if hubThreshold > 0 {
		th = float64(hubThreshold)
	}
	smallest := sizes[0]
	for _, s := range sizes[1:] {
		if s < smallest {
			smallest = s
		}
	}
	total := smallest
	skippedSmallest := false
	for _, s := range sizes {
		if !skippedSmallest && s == smallest {
			skippedSmallest = true
			continue
		}
		if probe := bitsetProbeCostFactor * smallest; s >= th && probe < s {
			total += probe
		} else {
			total += s
		}
	}
	return total
}

// StarLeafICost prices one set computation of a star-suffix leaf: the
// intersection work of materializing a leaf's extension set once for a
// prefix group. Under factorized execution the set is computed per
// distinct prefix and reused across the whole cross-product, so the
// optimizer charges this per prefix group rather than per output tuple
// — the same arithmetic as EffectiveICost, named separately because it
// is the unit the factorized multiplier (reuseMult) multiplies against.
func StarLeafICost(sizes []float64, hubThreshold int) float64 {
	return EffectiveICost(sizes, hubThreshold)
}
