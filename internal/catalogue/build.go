package catalogue

import (
	"math/rand"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// maxPatternsExpanded bounds the number of distinct labelled patterns the
// sampler expands, and maxWorkUnits bounds total instance measurements,
// for heavily labelled graphs whose pattern space explodes (the paper's
// Table 11 reports 11.9M entries at h=4; we bound construction time
// rather than memory — entries sampled before the budget runs out are
// unaffected).
const (
	maxPatternsExpanded = 50000
	maxWorkUnits        = 30_000_000
)

// builder drives the sampling construction of Section 5.1: a DFS over
// labelled patterns, carrying the sampled instances of each pattern, and
// measuring every one-vertex extension of every pattern with at most H
// vertices.
type builder struct {
	g        graph.View
	c        *Catalogue
	rng      *rand.Rand
	visited  map[string]bool
	acc      map[string]*accum
	expanded int
	work     int64
	queue    []queued
}

// queued is a pattern awaiting expansion, with its sampled instances.
type queued struct {
	pattern   *query.Graph
	instances []instance
}

type accum struct {
	listSums []float64
	muSum    float64
	samples  int
}

type instance []graph.VertexID

func (b *builder) run() {
	b.acc = map[string]*accum{}
	// Sample Z edges uniformly (reservoir), grouped by their labels.
	type groupKey struct{ el, sl, dl graph.Label }
	type sampledEdge struct {
		src, dst graph.VertexID
		key      groupKey
	}
	reservoir := make([]sampledEdge, 0, b.c.Cfg.Z)
	seen := 0
	b.g.Edges(func(src, dst graph.VertexID, el graph.Label) bool {
		se := sampledEdge{src, dst, groupKey{el, b.g.VertexLabel(src), b.g.VertexLabel(dst)}}
		if len(reservoir) < b.c.Cfg.Z {
			reservoir = append(reservoir, se)
		} else if j := b.rng.Intn(seen + 1); j < b.c.Cfg.Z {
			reservoir[j] = se
		}
		seen++
		return true
	})
	groups := map[groupKey][]instance{}
	for _, se := range reservoir {
		groups[se.key] = append(groups[se.key], instance{se.src, se.dst})
	}
	// Breadth-first over pattern sizes: all k-vertex patterns are measured
	// before any (k+1)-vertex pattern, so a larger H never degrades the
	// coverage of small patterns when the work budget runs out.
	for key, instances := range groups {
		pattern := &query.Graph{
			Vertices: []query.Vertex{{Label: key.sl}, {Label: key.dl}},
			Edges:    []query.Edge{{From: 0, To: 1, Label: key.el}},
		}
		b.queue = append(b.queue, queued{pattern, instances})
	}
	for len(b.queue) > 0 {
		next := b.queue[0]
		b.queue = b.queue[1:]
		b.expand(next.pattern, next.instances)
	}
}

// expand measures every one-vertex extension of pattern over its sampled
// instances, recording entries, and recurses into extended patterns while
// they remain extensible (size+1 <= H).
func (b *builder) expand(pattern *query.Graph, instances []instance) {
	k := pattern.NumVertices()
	if k > b.c.Cfg.H || len(instances) == 0 || b.work > maxWorkUnits {
		return
	}
	code := pattern.CanonicalCode()
	if b.visited[code] {
		return
	}
	b.visited[code] = true
	b.expanded++
	if b.expanded > maxPatternsExpanded {
		return
	}
	if len(instances) > b.c.Cfg.MaxInstances {
		b.rng.Shuffle(len(instances), func(i, j int) { instances[i], instances[j] = instances[j], instances[i] })
		instances = instances[:b.c.Cfg.MaxInstances]
	}

	numEL := b.g.NumEdgeLabels()
	numVL := b.g.NumVertexLabels()
	target := k
	// Structural extensions: non-empty subsets of the 2k possible directed
	// edges between the new vertex and the base vertices. Bit 2*v is
	// v->target, bit 2*v+1 is target->v.
	for subset := 1; subset < (1 << uint(2*k)); subset++ {
		var structEdges []query.Edge
		for v := 0; v < k; v++ {
			if subset&(1<<uint(2*v)) != 0 {
				structEdges = append(structEdges, query.Edge{From: v, To: target})
			}
			if subset&(1<<uint(2*v+1)) != 0 {
				structEdges = append(structEdges, query.Edge{From: target, To: v})
			}
		}
		// Label combos: edge labels per extension edge x target label.
		b.labelCombos(len(structEdges), numEL, numVL, func(elabels []graph.Label, tl graph.Label) {
			edges := make([]query.Edge, len(structEdges))
			for i, e := range structEdges {
				e.Label = elabels[i]
				edges[i] = e
			}
			b.measure(pattern, edges, tl, instances)
		})
	}
}

// labelCombos invokes fn for every assignment of nEdges edge labels and one
// target vertex label.
func (b *builder) labelCombos(nEdges, numEL, numVL int, fn func([]graph.Label, graph.Label)) {
	elabels := make([]graph.Label, nEdges)
	var rec func(i int)
	rec = func(i int) {
		if i == nEdges {
			for tl := 0; tl < numVL; tl++ {
				fn(elabels, graph.Label(tl))
			}
			return
		}
		for el := 0; el < numEL; el++ {
			elabels[i] = graph.Label(el)
			rec(i + 1)
		}
	}
	rec(0)
}

// measure runs the extension over the instance sample, records the entry,
// and recurses into the extended pattern.
func (b *builder) measure(pattern *query.Graph, edges []query.Edge, tl graph.Label, instances []instance) {
	if b.work > maxWorkUnits {
		return
	}
	b.work += int64(len(instances)) * int64(len(edges))
	target := pattern.NumVertices()
	ext := Extension{Base: pattern, Edges: edges, TargetLabel: tl}

	listSums := make([]float64, len(edges))
	totalExt := 0
	anyList := false
	var newInstances []instance
	recurse := target+1 <= b.c.Cfg.H

	lists := make([][]graph.VertexID, len(edges))
	var it graph.Intersector
	var out, scratch []graph.VertexID
	for _, inst := range instances {
		for i, e := range edges {
			src, dir := e.To, graph.Forward
			if e.From == target {
				// target -> e.To: candidates in e.To's backward list.
				src, dir = e.To, graph.Backward
			} else {
				src, dir = e.From, graph.Forward
			}
			lists[i] = b.g.Neighbors(inst[src], dir, e.Label, tl, nil)
			listSums[i] += float64(len(lists[i]))
			if len(lists[i]) > 0 {
				anyList = true
			}
		}
		out, scratch = it.IntersectK(lists, nil, out, scratch)
		totalExt += len(out)
		if recurse && len(out) > 0 && len(newInstances) < b.c.Cfg.MaxInstances {
			for _, w := range out {
				ni := make(instance, len(inst)+1)
				copy(ni, inst)
				ni[len(inst)] = w
				newInstances = append(newInstances, ni)
				if len(newInstances) >= b.c.Cfg.MaxInstances {
					break
				}
			}
		}
	}
	if !anyList {
		// Combination absent from the data: leave the entry missing so the
		// estimator falls back to defaults, rather than flooding the
		// catalogue with all-zero rows.
		return
	}
	key, ranks := ext.Key()
	a := b.acc[key]
	if a == nil {
		a = &accum{listSums: make([]float64, len(edges))}
		b.acc[key] = a
	}
	for i := range edges {
		a.listSums[ranks[i]] += listSums[i]
	}
	a.muSum += float64(totalExt)
	a.samples += len(instances)

	if recurse && len(newInstances) > 0 {
		np := pattern.Clone()
		np.Vertices = append(np.Vertices, query.Vertex{Label: tl})
		np.Edges = append(np.Edges, edges...)
		// Enqueue rather than recurse: see the breadth-first note in run().
		b.queue = append(b.queue, queued{np, newInstances})
	}
}

// finalize converts accumulated sums into averaged entries.
func (b *builder) finalize() {
	for key, a := range b.acc {
		e := &Entry{ListSizes: make([]float64, len(a.listSums)), Samples: a.samples}
		if a.samples > 0 {
			for i, s := range a.listSums {
				e.ListSizes[i] = s / float64(a.samples)
			}
			e.Mu = a.muSum / float64(a.samples)
		}
		b.c.Entries[key] = e
	}
}
