package catalogue

import (
	"bytes"
	"math"
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/graph"
	"graphflow/internal/query"
)

func buildSmall(t testing.TB, g *graph.Graph, h, z int) *Catalogue {
	t.Helper()
	return Build(g, Config{H: h, Z: z, MaxInstances: 500, Seed: 42})
}

func TestScanCountsExact(t *testing.T) {
	b := graph.NewBuilder(4)
	b.SetVertexLabel(3, 1)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	c := buildSmall(t, g, 2, 100)
	if got := c.ScanCount(0, 0, 0); got != 2 {
		t.Errorf("ScanCount(0,0,0) = %v, want 2", got)
	}
	if got := c.ScanCount(1, 0, 1); got != 1 {
		t.Errorf("ScanCount(1,0,1) = %v, want 1", got)
	}
	if got := c.ScanCount(1, 1, 1); got != 0 {
		t.Errorf("ScanCount(1,1,1) = %v, want 0", got)
	}
}

func TestDefaultListSize(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 0)
	b.AddEdge(0, 2, 0)
	b.AddEdge(0, 3, 0)
	b.AddEdge(1, 2, 0)
	g := b.MustBuild()
	c := buildSmall(t, g, 2, 100)
	if got := c.DefaultListSize(graph.Forward, 0, 0); got != 1.0 {
		t.Errorf("avg fwd = %v, want 1.0 (4 edges / 4 vertices)", got)
	}
	if got := c.DefaultListSize(graph.Backward, 0, 0); got != 1.0 {
		t.Errorf("avg bwd = %v, want 1.0", got)
	}
}

// triangleGraph builds a graph with a known number of asymmetric-triangle
// extensions: every edge u->v extends to exactly the common forward
// neighbours.
func triangleGraph() *graph.Graph {
	b := graph.NewBuilder(5)
	// Edges 0->1, 0->2, 1->2, 1->3, 0->3: edge 0->1 has fwd∩fwd = {2,3}.
	b.AddEdge(0, 1, 0)
	b.AddEdge(0, 2, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(1, 3, 0)
	b.AddEdge(0, 3, 0)
	return b.MustBuild()
}

func TestExtensionStatsTriangleClose(t *testing.T) {
	g := triangleGraph()
	c := buildSmall(t, g, 3, 100)
	// Extension: single edge a1->a2 extended by a3 with a1->a3, a2->a3.
	base := query.MustParse("a1->a2")
	edges := []query.Edge{{From: 0, To: 2}, {From: 1, To: 2}}
	sizes, mu, found := c.ExtensionStats(base, edges, 0)
	if !found {
		t.Fatal("triangle-close entry missing")
	}
	if len(sizes) != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
	// Exact check: all 5 edges sampled (z=100 > m). Per-edge triangle
	// counts: 0->1:{2,3}=2, 0->2:{}=0 (2 has no fwd), 1->2:0, 1->3:0,
	// 0->3:0. µ = 2/5.
	if math.Abs(mu-0.4) > 1e-9 {
		t.Errorf("µ = %v, want 0.4", mu)
	}
}

func TestEntryKeyAlignment(t *testing.T) {
	// The same extension expressed with the two descriptor orders must hit
	// the same entry with consistently permuted sizes.
	base := query.MustParse("a1->a2")
	e1 := []query.Edge{{From: 0, To: 2}, {From: 1, To: 2}}
	e2 := []query.Edge{{From: 1, To: 2}, {From: 0, To: 2}}
	k1, r1 := (Extension{Base: base, Edges: e1, TargetLabel: 0}).Key()
	k2, r2 := (Extension{Base: base, Edges: e2, TargetLabel: 0}).Key()
	if k1 != k2 {
		t.Fatalf("keys differ:\n%s\n%s", k1, k2)
	}
	if r1[0] != r2[1] || r1[1] != r2[0] {
		t.Errorf("ranks not consistently permuted: %v vs %v", r1, r2)
	}
}

func TestKeyDistinguishesDirections(t *testing.T) {
	base := query.MustParse("a1->a2")
	fwd := []query.Edge{{From: 0, To: 2}, {From: 1, To: 2}} // asymmetric close
	cyc := []query.Edge{{From: 2, To: 0}, {From: 1, To: 2}} // cyclic close
	k1, _ := (Extension{Base: base, Edges: fwd, TargetLabel: 0}).Key()
	k2, _ := (Extension{Base: base, Edges: cyc, TargetLabel: 0}).Key()
	if k1 == k2 {
		t.Error("different directions produced the same key")
	}
}

func TestKeyDistinguishesTarget(t *testing.T) {
	// Extending a path by the middle vs the end must differ even when the
	// resulting shapes are isomorphic as unmarked graphs.
	pathBase := query.MustParse("a1->a2, a2->a3")
	endExt := []query.Edge{{From: 2, To: 3}}
	k1, _ := (Extension{Base: pathBase, Edges: endExt, TargetLabel: 0}).Key()

	edgeBase := query.MustParse("a1->a2")
	midExt := []query.Edge{{From: 1, To: 2}}
	k2, _ := (Extension{Base: edgeBase, Edges: midExt, TargetLabel: 0}).Key()
	if k1 == k2 {
		t.Error("keys must encode the base subquery, not just the result")
	}
}

func TestEstimateCardinalityExactOnEdges(t *testing.T) {
	g := datagen.Amazon(1)
	c := buildSmall(t, g, 3, 2000)
	// Single-edge query: estimate must be the exact edge count.
	q := query.MustParse("a->b")
	got := c.EstimateCardinality(q)
	if got != float64(g.NumEdges()) {
		t.Errorf("edge cardinality = %v, want %d", got, g.NumEdges())
	}
}

func TestEstimateCardinalityTriangleReasonable(t *testing.T) {
	g := datagen.Epinions(1)
	c := buildSmall(t, g, 3, 2000)
	q := query.Q1()
	truth := float64(query.RefCount(g, q))
	est := c.EstimateCardinality(q)
	if truth == 0 {
		t.Skip("no triangles in dataset")
	}
	qerr := math.Max(est/truth, truth/est)
	if est <= 0 || qerr > 50 {
		t.Errorf("triangle estimate %v vs truth %v (q-error %.1f) unreasonable", est, truth, qerr)
	}
}

func TestMissingEntryFallbackLargerThanH(t *testing.T) {
	g := datagen.Amazon(1)
	c := buildSmall(t, g, 2, 500) // H=2: 3-vertex bases are beyond H
	base := query.Q1()            // triangle base (3 vertices > H)
	edges := []query.Edge{{From: 0, To: 3}, {From: 1, To: 3}, {From: 2, To: 3}}
	sizes, mu, _ := c.ExtensionStats(base, edges, 0)
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	if mu < 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
		t.Errorf("reduced µ = %v", mu)
	}
	for _, s := range sizes {
		if s < 0 || math.IsNaN(s) {
			t.Errorf("bad size %v", s)
		}
	}
}

func TestDefaultStatsWhenUnsampled(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	g := b.MustBuild()
	c := buildSmall(t, g, 2, 10)
	// Ask for an extension pattern absent from the tiny graph: cyclic close.
	base := query.MustParse("a1->a2")
	edges := []query.Edge{{From: 2, To: 0}, {From: 1, To: 2}}
	sizes, mu, found := c.ExtensionStats(base, edges, 0)
	if found {
		// It may legitimately be found with µ=0 if lists were non-empty.
		if mu != 0 {
			t.Errorf("cyclic close on a path should have µ=0, got %v", mu)
		}
		return
	}
	if len(sizes) != 2 || mu < 0 {
		t.Errorf("default stats broken: %v %v", sizes, mu)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := datagen.Amazon(1)
	c := buildSmall(t, g, 3, 500)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	c2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("entries lost: %d vs %d", c2.Len(), c.Len())
	}
	if c2.NumVertices != c.NumVertices {
		t.Errorf("base stats lost")
	}
	// Same estimate after round trip.
	q := query.Q1()
	if a, b := c.EstimateCardinality(q), c2.EstimateCardinality(q); a != b {
		t.Errorf("estimates differ after round trip: %v vs %v", a, b)
	}
}

func TestMoreSamplesDontExplodeEntries(t *testing.T) {
	g := datagen.Google(1)
	small := Build(g, Config{H: 2, Z: 100, MaxInstances: 200, Seed: 1})
	big := Build(g, Config{H: 3, Z: 100, MaxInstances: 200, Seed: 1})
	if small.Len() == 0 || big.Len() == 0 {
		t.Fatal("empty catalogues")
	}
	if big.Len() < small.Len() {
		t.Errorf("larger H should produce at least as many entries: h2=%d h3=%d", small.Len(), big.Len())
	}
}

func TestLabeledCatalogue(t *testing.T) {
	g := datagen.Relabel(datagen.Amazon(1), 1, 3, 7)
	c := Build(g, Config{H: 2, Z: 500, MaxInstances: 300, Seed: 3})
	if c.Len() == 0 {
		t.Fatal("no entries for labeled graph")
	}
	// Scan counts must partition the edges across labels.
	var total float64
	for el := graph.Label(0); el < 3; el++ {
		total += c.ScanCount(el, 0, 0)
	}
	if int(total) != g.NumEdges() {
		t.Errorf("label scan counts sum to %v, want %d", total, g.NumEdges())
	}
}
