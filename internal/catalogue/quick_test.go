package catalogue

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// randomExtension generates small labelled extensions for key-invariance
// properties.
type randomExtension struct {
	Base  *query.Graph
	Edges []query.Edge
	TL    graph.Label
}

// Generate implements quick.Generator: a connected base with 1-3 vertices
// plus 1-3 extension edges to a new target.
func (randomExtension) Generate(rng *rand.Rand, _ int) reflect.Value {
	nb := 1 + rng.Intn(3)
	base := &query.Graph{}
	for i := 0; i < nb; i++ {
		base.Vertices = append(base.Vertices, query.Vertex{Label: graph.Label(rng.Intn(2))})
	}
	for i := 1; i < nb; i++ {
		from, to := i, rng.Intn(i)
		if rng.Intn(2) == 0 {
			from, to = to, from
		}
		base.Edges = append(base.Edges, query.Edge{From: from, To: to, Label: graph.Label(rng.Intn(2))})
	}
	target := nb
	used := map[[2]int]bool{} // (src, dir)
	var edges []query.Edge
	for len(edges) == 0 || (len(edges) < 3 && rng.Intn(2) == 0) {
		src := rng.Intn(nb)
		dir := rng.Intn(2)
		if used[[2]int{src, dir}] {
			break
		}
		used[[2]int{src, dir}] = true
		if dir == 0 {
			edges = append(edges, query.Edge{From: src, To: target, Label: graph.Label(rng.Intn(2))})
		} else {
			edges = append(edges, query.Edge{From: target, To: src, Label: graph.Label(rng.Intn(2))})
		}
	}
	return reflect.ValueOf(randomExtension{base, edges, graph.Label(rng.Intn(2))})
}

// TestQuickKeyInvariantUnderEdgeOrder: permuting the descriptor order
// never changes the key, and ranks are a consistent permutation.
func TestQuickKeyInvariantUnderEdgeOrder(t *testing.T) {
	f := func(re randomExtension, seed int64) bool {
		ext1 := Extension{Base: re.Base, Edges: re.Edges, TargetLabel: re.TL}
		k1, r1 := ext1.Key()
		perm := rand.New(rand.NewSource(seed)).Perm(len(re.Edges))
		shuffled := make([]query.Edge, len(re.Edges))
		for i, p := range perm {
			shuffled[p] = re.Edges[i]
		}
		k2, r2 := (Extension{Base: re.Base, Edges: shuffled, TargetLabel: re.TL}).Key()
		if k1 != k2 {
			return false
		}
		// The rank of edge i under ordering 1 must equal the rank of its
		// image under ordering 2.
		for i := range re.Edges {
			if r1[i] != r2[perm[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickKeyInvariantUnderBaseRelabelling: renaming the base's vertices
// with a permutation never changes the key.
func TestQuickKeyInvariantUnderBaseRelabelling(t *testing.T) {
	f := func(re randomExtension, seed int64) bool {
		k1, _ := (Extension{Base: re.Base, Edges: re.Edges, TargetLabel: re.TL}).Key()
		nb := re.Base.NumVertices()
		perm := rand.New(rand.NewSource(seed)).Perm(nb)
		base2 := &query.Graph{Vertices: make([]query.Vertex, nb)}
		for i, v := range re.Base.Vertices {
			base2.Vertices[perm[i]] = v
		}
		for _, e := range re.Base.Edges {
			base2.Edges = append(base2.Edges, query.Edge{From: perm[e.From], To: perm[e.To], Label: e.Label})
		}
		target := nb
		edges2 := make([]query.Edge, len(re.Edges))
		for i, e := range re.Edges {
			if e.From == target {
				edges2[i] = query.Edge{From: target, To: perm[e.To], Label: e.Label}
			} else {
				edges2[i] = query.Edge{From: perm[e.From], To: target, Label: e.Label}
			}
		}
		k2, _ := (Extension{Base: base2, Edges: edges2, TargetLabel: re.TL}).Key()
		return k1 == k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickEstimatesWellFormed: stats are non-negative and finite for
// arbitrary extensions, found or not.
func TestQuickEstimatesWellFormed(t *testing.T) {
	b := graph.NewBuilder(60)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 280; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(60)), graph.VertexID(rng.Intn(60)), graph.Label(rng.Intn(2)))
	}
	g := b.MustBuild()
	c := Build(g, Config{H: 2, Z: 100, MaxInstances: 80, Seed: 2})
	f := func(re randomExtension) bool {
		sizes, mu, _ := c.ExtensionStats(re.Base, re.Edges, re.TL)
		if len(sizes) != len(re.Edges) {
			return false
		}
		if mu < 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
			return false
		}
		for _, s := range sizes {
			if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
