package catalogue

import (
	"math"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// ExtensionStats estimates the statistics for extending base by a new
// vertex labelled tl through the given edges (which reference base's
// vertices plus base.NumVertices() as the target): the average size of each
// descriptor's adjacency list (aligned with the edges order) and the
// average number of extensions µ.
//
// Resolution order (Section 5.2):
//  1. exact catalogue entry;
//  2. if base is larger than H, the minimum-µ estimate over all reduced
//     entries obtained by removing (|base|-H)-vertex subsets and their
//     descriptors;
//  3. graph-wide average list sizes with an independence assumption for µ.
//
// The boolean reports whether a catalogue entry (direct or reduced) was
// found.
func (c *Catalogue) ExtensionStats(base *query.Graph, edges []query.Edge, tl graph.Label) ([]float64, float64, bool) {
	k := base.NumVertices()
	if k <= c.Cfg.H {
		// Only bases of at most H vertices can have entries, and skipping
		// the direct lookup for larger bases also avoids canonicalizing
		// large graphs (factorial cost).
		if entry, ranks := c.lookup(base, edges, tl); entry != nil {
			sizes := make([]float64, len(edges))
			for i := range edges {
				sizes[i] = entry.ListSizes[ranks[i]]
			}
			return sizes, entry.Mu, true
		}
	}
	// Missing entry: reduce the base by removing vertex subsets until a
	// recorded entry matches (Section 5.2's rule, generalised: bases at or
	// below H can also miss when construction was budget-bounded, so keep
	// shrinking toward well-sampled small patterns before giving up).
	maxTarget := k - 1
	if c.Cfg.H < maxTarget {
		maxTarget = c.Cfg.H
	}
	for target := maxTarget; target >= 1; target-- {
		if sizes, mu, ok := c.reducedStats(base, edges, tl, k-target); ok {
			return sizes, mu, true
		}
	}
	return c.defaultStats(base, edges, tl)
}

// minEntrySamples is the smallest sample count an entry needs before the
// estimator trusts it: budget-bounded construction can leave entries
// averaged over a handful of instances, whose µ (often 0) would otherwise
// poison cardinality chains. Thinner entries fall through to the
// reduction rule.
const minEntrySamples = 5

func (c *Catalogue) lookup(base *query.Graph, edges []query.Edge, tl graph.Label) (*Entry, []int) {
	key, ranks := Extension{Base: base, Edges: edges, TargetLabel: tl}.Key()
	if e, ok := c.Entries[key]; ok && len(e.ListSizes) == len(edges) && e.Samples >= minEntrySamples {
		return e, ranks
	}
	return nil, nil
}

// reducedStats implements the missing-entry rule: remove every
// removeCount-subset of base vertices (dropping descriptors anchored on
// removed vertices), look the reduced entries up, and keep the minimum µ.
// Removed descriptors contribute default list sizes.
func (c *Catalogue) reducedStats(base *query.Graph, edges []query.Edge, tl graph.Label, removeCount int) ([]float64, float64, bool) {
	k := base.NumVertices()
	if removeCount <= 0 || removeCount >= k {
		return nil, 0, false
	}
	target := k

	bestMu := math.Inf(1)
	var bestSizes []float64
	found := false

	full := query.AllMask(k)
	// Enumerate subsets of size removeCount to remove.
	var subsets []query.Mask
	var gen func(start int, left int, cur query.Mask)
	gen = func(start, left int, cur query.Mask) {
		if left == 0 {
			subsets = append(subsets, cur)
			return
		}
		for v := start; v < k; v++ {
			gen(v+1, left-1, cur|query.Bit(v))
		}
	}
	gen(0, removeCount, 0)

	for _, rm := range subsets {
		keep := full &^ rm
		if !base.IsConnected(keep) {
			continue
		}
		// Keep descriptors anchored on surviving vertices.
		var keptIdx []int
		for i, e := range edges {
			anchor := e.From
			if anchor == target {
				anchor = e.To
			}
			if keep&query.Bit(anchor) != 0 {
				keptIdx = append(keptIdx, i)
			}
		}
		if len(keptIdx) == 0 {
			continue
		}
		reduced, orig := base.Project(keep)
		newIdx := make(map[int]int, len(orig))
		for ni, ov := range orig {
			newIdx[ov] = ni
		}
		redTarget := reduced.NumVertices()
		redEdges := make([]query.Edge, 0, len(keptIdx))
		for _, i := range keptIdx {
			e := edges[i]
			if e.From == target {
				redEdges = append(redEdges, query.Edge{From: redTarget, To: newIdx[e.To], Label: e.Label})
			} else {
				redEdges = append(redEdges, query.Edge{From: newIdx[e.From], To: redTarget, Label: e.Label})
			}
		}
		entry, ranks := c.lookup(reduced, redEdges, tl)
		if entry == nil {
			continue
		}
		if entry.Mu < bestMu {
			bestMu = entry.Mu
			bestSizes = make([]float64, len(edges))
			for i := range edges {
				bestSizes[i] = -1 // filled below or defaulted
			}
			for j, i := range keptIdx {
				bestSizes[i] = entry.ListSizes[ranks[j]]
			}
			found = true
		}
	}
	if !found {
		return nil, 0, false
	}
	// Default the dropped descriptors' list sizes.
	for i, s := range bestSizes {
		if s < 0 {
			dir, el := descriptorOf(edges[i], base.NumVertices())
			bestSizes[i] = c.DefaultListSize(dir, el, tl)
		}
	}
	return bestSizes, bestMu, true
}

// defaultStats is the last-resort estimate: graph-wide average partition
// sizes and an independence-assumption µ (the first list filtered by each
// further list's hit probability |Li|/n).
func (c *Catalogue) defaultStats(base *query.Graph, edges []query.Edge, tl graph.Label) ([]float64, float64, bool) {
	sizes := make([]float64, len(edges))
	for i, e := range edges {
		dir, el := descriptorOf(e, base.NumVertices())
		sizes[i] = c.DefaultListSize(dir, el, tl)
	}
	mu := 0.0
	if len(sizes) > 0 && c.NumVertices > 0 {
		mu = sizes[0]
		for _, s := range sizes[1:] {
			mu *= s / float64(c.NumVertices)
		}
	}
	return sizes, mu, false
}

// descriptorOf maps an extension edge to its (direction, edge label) as
// seen from the anchor vertex.
func descriptorOf(e query.Edge, target int) (graph.Direction, graph.Label) {
	if e.From == target {
		return graph.Backward, e.Label
	}
	return graph.Forward, e.Label
}

// EstimateCardinality estimates |Q| as the paper does: pick a WCO-style
// extension chain for q and multiply the scan selectivity by the µ of each
// extension step (Section 5.2, estimate 1).
func (c *Catalogue) EstimateCardinality(q *query.Graph) float64 {
	n := q.NumVertices()
	if n < 2 || len(q.Edges) == 0 {
		return 0
	}
	// Start from the most selective scan edge.
	bestEdge, bestCount := 0, math.Inf(1)
	for i, e := range q.Edges {
		cnt := c.ScanCount(e.Label, q.Vertices[e.From].Label, q.Vertices[e.To].Label)
		if cnt < bestCount {
			bestEdge, bestCount = i, cnt
		}
	}
	e0 := q.Edges[bestEdge]
	card := bestCount
	mask := query.Bit(e0.From) | query.Bit(e0.To)
	for card > 0 && mask != query.AllMask(n) {
		// Greedily extend by the vertex with the most connections to the
		// current mask (maximally constrained first, as a sampling plan
		// would).
		next, nextDeg := -1, -1
		for v := 0; v < n; v++ {
			if mask&query.Bit(v) != 0 {
				continue
			}
			d := len(q.EdgesBetween(mask, v))
			if d > nextDeg {
				next, nextDeg = v, d
			}
		}
		if next < 0 || nextDeg == 0 {
			return 0 // disconnected query
		}
		_, mu := c.extensionForMask(q, mask, next)
		card *= mu
		mask |= query.Bit(next)
	}
	return card
}

// extensionForMask prepares the Extension for growing the mask-projection
// of q by vertex v and returns its stats.
func (c *Catalogue) extensionForMask(q *query.Graph, mask query.Mask, v int) ([]float64, float64) {
	base, orig := q.Project(mask)
	newIdx := make(map[int]int, len(orig))
	for ni, ov := range orig {
		newIdx[ov] = ni
	}
	target := base.NumVertices()
	var edges []query.Edge
	for _, e := range q.EdgesBetween(mask, v) {
		if e.From == v {
			edges = append(edges, query.Edge{From: target, To: newIdx[e.To], Label: e.Label})
		} else {
			edges = append(edges, query.Edge{From: newIdx[e.From], To: target, Label: e.Label})
		}
	}
	sizes, mu, _ := c.ExtensionStats(base, edges, q.Vertices[v].Label)
	return sizes, mu
}
