// Package graph implements the in-memory graph store of Graphflow-Go.
//
// The store follows Section 2 and Section 7 of Mhedhbi & Salihoglu (VLDB
// 2019): every vertex indexes both its forward (outgoing) and backward
// (incoming) adjacency lists. Each per-vertex list is partitioned first by
// the edge label and then by the label of the neighbour vertex, and the
// neighbours inside a partition are sorted by vertex ID so that multiway
// intersections run over sorted runs.
//
// Graphs are immutable after Build; all read methods are safe for
// concurrent use.
package graph

import (
	"fmt"
)

// VertexID identifies a vertex in the data graph.
type VertexID uint32

// Label identifies a vertex label or an edge label. Label 0 is the default
// label carried by unlabeled graphs and queries.
type Label uint16

// WildcardLabel matches any label when used in a lookup.
const WildcardLabel Label = 0xFFFF

// Direction selects the forward (outgoing) or backward (incoming) adjacency
// index of a vertex.
type Direction uint8

const (
	// Forward addresses the outgoing adjacency list of a vertex.
	Forward Direction = iota
	// Backward addresses the incoming adjacency list of a vertex.
	Backward
)

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction {
	if d == Forward {
		return Backward
	}
	return Forward
}

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Forward {
		return "fwd"
	}
	return "bwd"
}

// adjacency stores one direction of the graph in CSR form. The neighbour
// segment of vertex v spans nbrs[offsets[v]:offsets[v+1]] and is sorted by
// (edge label, neighbour label, neighbour ID). The partition directory for v
// spans partition arrays pOff[v]:pOff[v+1]; each directory entry records the
// labels of the partition and its absolute start index in nbrs. Partition
// ends are implicit (the next partition's start, or the segment end).
type adjacency struct {
	offsets []int
	nbrs    []VertexID

	pOff    []int32
	pELabel []Label
	pNLabel []Label
	pStart  []int

	// pBitset, when non-nil, aligns with the partition directory: entry i
	// is the bitset index of partition i, materialised at build time for
	// hub partitions at or above the graph's hub threshold (nil for the
	// rest). The sorted run stays canonical; the bitset is a secondary
	// representation the degree-adaptive intersection kernels dispatch on.
	pBitset []*Bitset
}

// Graph is an immutable directed graph with vertex and edge labels.
type Graph struct {
	n       int
	m       int
	vLabels []Label
	fwd     adjacency
	bwd     adjacency

	numVertexLabels int // 1 + max vertex label
	numEdgeLabels   int // 1 + max edge label

	// hubThreshold is the effective partition-size floor of the hub bitset
	// index (resolved; negative when indexing is disabled).
	hubThreshold int
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of distinct directed edges (parallel edges
// with the same label are deduplicated at build time).
func (g *Graph) NumEdges() int { return g.m }

// NumVertexLabels returns one more than the largest vertex label in use.
func (g *Graph) NumVertexLabels() int { return g.numVertexLabels }

// NumEdgeLabels returns one more than the largest edge label in use.
func (g *Graph) NumEdgeLabels() int { return g.numEdgeLabels }

// VertexLabel returns the label of v.
func (g *Graph) VertexLabel(v VertexID) Label { return g.vLabels[v] }

func (g *Graph) adj(dir Direction) *adjacency {
	if dir == Forward {
		return &g.fwd
	}
	return &g.bwd
}

// segment returns the whole neighbour run of v in the given direction,
// sorted by (edge label, neighbour label, ID).
func (a *adjacency) segment(v VertexID) []VertexID {
	return a.nbrs[a.offsets[v]:a.offsets[v+1]]
}

// findPartition returns the directory index of v's partition matching
// (eLabel, nLabel) exactly, and whether one exists.
func (a *adjacency) findPartition(v VertexID, eLabel, nLabel Label) (int, bool) {
	lo, hi := int(a.pOff[v]), int(a.pOff[v+1])
	// Binary search the partition directory on (eLabel, nLabel).
	// Open-coded rather than sort.Search: the closure would escape and
	// cost a heap allocation on every descriptor lookup of every E/I
	// extension.
	i, j := lo, hi
	for i < j {
		mid := int(uint(i+j) >> 1)
		if a.pELabel[mid] < eLabel || (a.pELabel[mid] == eLabel && a.pNLabel[mid] < nLabel) {
			i = mid + 1
		} else {
			j = mid
		}
	}
	if i >= hi || a.pELabel[i] != eLabel || a.pNLabel[i] != nLabel {
		return 0, false
	}
	return i, true
}

// partitionRange returns the [start, end) bounds in a.nbrs of the partition
// of v matching (eLabel, nLabel) exactly, or (0, 0) if absent.
func (a *adjacency) partitionRange(v VertexID, eLabel, nLabel Label) (int, int) {
	i, ok := a.findPartition(v, eLabel, nLabel)
	if !ok {
		return 0, 0
	}
	start := a.pStart[i]
	end := a.offsets[v+1]
	if i+1 < int(a.pOff[v+1]) {
		end = a.pStart[i+1]
	}
	return start, end
}

// Neighbors returns the sorted neighbour list of v in direction dir,
// restricted to edges labelled eLabel and neighbours labelled nLabel. Either
// label may be WildcardLabel. The returned slice aliases internal storage
// for exact lookups; wildcard lookups that need merging copy into buf (which
// may be nil) and return it.
//
// Exact lookups are O(log p) in the number of partitions of v; wildcard
// lookups pay a k-way merge over the matching partitions.
func (g *Graph) Neighbors(v VertexID, dir Direction, eLabel, nLabel Label, buf []VertexID) []VertexID {
	a := g.adj(dir)
	if eLabel != WildcardLabel && nLabel != WildcardLabel {
		s, e := a.partitionRange(v, eLabel, nLabel)
		return a.nbrs[s:e]
	}
	// Collect matching partitions, then merge.
	lo, hi := int(a.pOff[v]), int(a.pOff[v+1])
	var runs [][]VertexID
	for i := lo; i < hi; i++ {
		if eLabel != WildcardLabel && a.pELabel[i] != eLabel {
			continue
		}
		if nLabel != WildcardLabel && a.pNLabel[i] != nLabel {
			continue
		}
		start := a.pStart[i]
		end := a.offsets[v+1]
		if i+1 < hi {
			end = a.pStart[i+1]
		}
		if start < end {
			runs = append(runs, a.nbrs[start:end])
		}
	}
	switch len(runs) {
	case 0:
		return buf[:0]
	case 1:
		return runs[0]
	}
	return mergeSortedRuns(runs, buf)
}

// NeighborBitset returns the bitset index of the exact (eLabel, nLabel)
// partition of v in direction dir, or nil when the partition is below
// the hub threshold, indexing is disabled, or either label is a
// wildcard (wildcard lookups merge several partitions, whose union
// carries duplicate semantics a bitset cannot represent).
func (g *Graph) NeighborBitset(v VertexID, dir Direction, eLabel, nLabel Label) *Bitset {
	a := g.adj(dir)
	if a.pBitset == nil || eLabel == WildcardLabel || nLabel == WildcardLabel {
		return nil
	}
	i, ok := a.findPartition(v, eLabel, nLabel)
	if !ok {
		return nil
	}
	return a.pBitset[i]
}

// buildHubIndex materialises bitsets for every partition at or above the
// resolved threshold, in both directions.
func (g *Graph) buildHubIndex(threshold int) {
	th := resolveHubThreshold(threshold)
	g.hubThreshold = th
	g.fwd.buildHubIndex(th)
	g.bwd.buildHubIndex(th)
}

func (a *adjacency) buildHubIndex(th int) {
	a.pBitset = nil
	if th < 0 {
		return
	}
	// Partition ends are globally pStart[i+1] (segments tile nbrs, and an
	// owner's last partition ends exactly where the next non-empty owner's
	// first partition starts) or len(nbrs) for the final partition.
	for i := range a.pStart {
		end := len(a.nbrs)
		if i+1 < len(a.pStart) {
			end = a.pStart[i+1]
		}
		if end-a.pStart[i] >= th {
			if a.pBitset == nil {
				a.pBitset = make([]*Bitset, len(a.pStart))
			}
			a.pBitset[i] = NewBitsetFromSorted(a.nbrs[a.pStart[i]:end])
		}
	}
}

// RebuildHubIndex replaces the hub bitset index with one built at the
// given threshold (0 takes DefaultHubThreshold, negative disables). It
// mutates the otherwise-immutable graph and is NOT safe to run
// concurrently with readers: call it before the graph is shared (the DB
// layer does so at open time, before the store is published).
func (g *Graph) RebuildHubIndex(threshold int) {
	g.buildHubIndex(threshold)
}

// HubStats summarises the hub bitset index of one graph.
type HubStats struct {
	// Threshold is the effective partition-size floor (negative when
	// indexing is disabled).
	Threshold int
	// Partitions is the number of indexed partitions across both
	// directions.
	Partitions int
	// Bytes is the memory held by the bitset words.
	Bytes int64
}

// HubThreshold returns the effective hub-index partition-size floor the
// graph was built with (negative when indexing is disabled).
func (g *Graph) HubThreshold() int { return g.hubThreshold }

// HubIndexStats reports the hub bitset index's size and memory.
func (g *Graph) HubIndexStats() HubStats {
	st := HubStats{Threshold: g.hubThreshold}
	for _, a := range []*adjacency{&g.fwd, &g.bwd} {
		for _, b := range a.pBitset {
			if b != nil {
				st.Partitions++
				st.Bytes += int64(b.WordLen()) * 8
			}
		}
	}
	return st
}

// Degree returns the size of the (eLabel, nLabel) partition of v in
// direction dir; labels may be WildcardLabel.
func (g *Graph) Degree(v VertexID, dir Direction, eLabel, nLabel Label) int {
	a := g.adj(dir)
	if eLabel != WildcardLabel && nLabel != WildcardLabel {
		s, e := a.partitionRange(v, eLabel, nLabel)
		return e - s
	}
	lo, hi := int(a.pOff[v]), int(a.pOff[v+1])
	total := 0
	for i := lo; i < hi; i++ {
		if eLabel != WildcardLabel && a.pELabel[i] != eLabel {
			continue
		}
		if nLabel != WildcardLabel && a.pNLabel[i] != nLabel {
			continue
		}
		end := a.offsets[v+1]
		if i+1 < hi {
			end = a.pStart[i+1]
		}
		total += end - a.pStart[i]
	}
	return total
}

// OutDegree returns the total forward degree of v across all labels.
func (g *Graph) OutDegree(v VertexID) int {
	return g.fwd.offsets[v+1] - g.fwd.offsets[v]
}

// InDegree returns the total backward degree of v across all labels.
func (g *Graph) InDegree(v VertexID) int {
	return g.bwd.offsets[v+1] - g.bwd.offsets[v]
}

// HasEdge reports whether the directed edge src->dst with label eLabel
// exists. eLabel may be WildcardLabel.
func (g *Graph) HasEdge(src, dst VertexID, eLabel Label) bool {
	// Search the partition matching the destination's label; cheaper than a
	// wildcard merge.
	if eLabel != WildcardLabel {
		list := g.Neighbors(src, Forward, eLabel, g.vLabels[dst], nil)
		return containsSorted(list, dst)
	}
	lo, hi := int(g.fwd.pOff[src]), int(g.fwd.pOff[src+1])
	for i := lo; i < hi; i++ {
		if g.fwd.pNLabel[i] != g.vLabels[dst] {
			continue
		}
		end := g.fwd.offsets[src+1]
		if i+1 < hi {
			end = g.fwd.pStart[i+1]
		}
		if containsSorted(g.fwd.nbrs[g.fwd.pStart[i]:end], dst) {
			return true
		}
	}
	return false
}

// EdgeFunc is the callback type for Edges.
type EdgeFunc func(src, dst VertexID, eLabel Label) bool

// Edges calls fn for every directed edge, grouped by source vertex; fn
// returning false stops the iteration early.
func (g *Graph) Edges(fn EdgeFunc) {
	for v := 0; v < g.n; v++ {
		src := VertexID(v)
		lo, hi := int(g.fwd.pOff[src]), int(g.fwd.pOff[src+1])
		for i := lo; i < hi; i++ {
			end := g.fwd.offsets[src+1]
			if i+1 < hi {
				end = g.fwd.pStart[i+1]
			}
			el := g.fwd.pELabel[i]
			for _, dst := range g.fwd.nbrs[g.fwd.pStart[i]:end] {
				if !fn(src, dst, el) {
					return
				}
			}
		}
	}
}

// EdgesOf calls fn for every forward edge of src only.
func (g *Graph) EdgesOf(src VertexID, fn EdgeFunc) {
	lo, hi := int(g.fwd.pOff[src]), int(g.fwd.pOff[src+1])
	for i := lo; i < hi; i++ {
		end := g.fwd.offsets[src+1]
		if i+1 < hi {
			end = g.fwd.pStart[i+1]
		}
		el := g.fwd.pELabel[i]
		for _, dst := range g.fwd.nbrs[g.fwd.pStart[i]:end] {
			if !fn(src, dst, el) {
				return
			}
		}
	}
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{V=%d E=%d vlabels=%d elabels=%d}", g.n, g.m, g.numVertexLabels, g.numEdgeLabels)
}

// MergeRuns merges any number of ID-sorted runs into buf (which may be
// nil) and returns it. Duplicates across runs are preserved, matching the
// semantics of wildcard Neighbors lookups. The delta overlay uses it to
// reproduce the base graph's wildcard merge over its per-vertex runs.
func MergeRuns(runs [][]VertexID, buf []VertexID) []VertexID {
	switch len(runs) {
	case 0:
		return buf[:0]
	case 1:
		buf = append(buf[:0], runs[0]...)
		return buf
	}
	return mergeSortedRuns(runs, buf)
}

func containsSorted(list []VertexID, x VertexID) bool {
	// Open-coded binary search; sort.Search's closure would heap-escape
	// on the HasEdge hot path.
	i, j := 0, len(list)
	for i < j {
		mid := int(uint(i+j) >> 1)
		if list[mid] < x {
			i = mid + 1
		} else {
			j = mid
		}
	}
	return i < len(list) && list[i] == x
}

// mergeSortedRuns merges k ID-sorted runs into buf.
func mergeSortedRuns(runs [][]VertexID, buf []VertexID) []VertexID {
	out := buf[:0]
	switch len(runs) {
	case 2:
		a, b := runs[0], runs[1]
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i] <= b[j] {
				out = append(out, a[i])
				i++
			} else {
				out = append(out, b[j])
				j++
			}
		}
		out = append(out, a[i:]...)
		out = append(out, b[j:]...)
		return out
	}
	idx := make([]int, len(runs)) //gf:allowalloc k-way (>2 run) wildcard merges are rare; the 2-run fast path above covers label-pair lookups
	for {
		best := -1
		var bestV VertexID
		for r, run := range runs {
			if idx[r] < len(run) {
				if best == -1 || run[idx[r]] < bestV {
					best, bestV = r, run[idx[r]]
				}
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, bestV)
		idx[best]++
	}
}
