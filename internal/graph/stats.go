package graph

import "math/rand"

// DegreeStats summarises one direction of a graph's degree distribution.
type DegreeStats struct {
	Mean float64
	Max  int
	// P99 is the 99th-percentile degree (approximated from the exact degree
	// multiset; exact for the graph sizes used here).
	P99 int
}

// Stats captures the structural properties that drive query-vertex-ordering
// effects in the paper: forward/backward list size distributions and the
// clustering coefficient (cyclicity).
type Stats struct {
	Vertices   int
	Edges      int
	Out        DegreeStats
	In         DegreeStats
	Clustering float64 // sampled average local clustering coefficient (undirected view)
}

// ComputeStats collects Stats, sampling at most sampleVertices vertices for
// the clustering coefficient (all vertices if sampleVertices <= 0 or larger
// than the graph).
func (g *Graph) ComputeStats(sampleVertices int, rng *rand.Rand) Stats {
	return ComputeStatsOf(g, sampleVertices, rng)
}

// ComputeStatsOf is ComputeStats over any View — notably live snapshots,
// so post-mutation stats reflect the delta overlay, not just the base CSR.
func ComputeStatsOf(g View, sampleVertices int, rng *rand.Rand) Stats {
	st := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges()}
	st.Out = degreeStatsOf(g, Forward)
	st.In = degreeStatsOf(g, Backward)
	st.Clustering = SampleClusteringCoefficientOf(g, sampleVertices, rng)
	return st
}

func degreeStatsOf(g View, dir Direction) DegreeStats {
	var ds DegreeStats
	n := g.NumVertices()
	if n == 0 {
		return ds
	}
	degs := make([]int, n)
	total := 0
	for v := 0; v < n; v++ {
		var d int
		if dir == Forward {
			d = g.OutDegree(VertexID(v))
		} else {
			d = g.InDegree(VertexID(v))
		}
		degs[v] = d
		total += d
		if d > ds.Max {
			ds.Max = d
		}
	}
	ds.Mean = float64(total) / float64(n)
	// nth_element-free percentile: counting since degrees are small ints.
	counts := make([]int, ds.Max+1)
	for _, d := range degs {
		counts[d]++
	}
	target := (99 * n) / 100
	seen := 0
	for d, c := range counts {
		seen += c
		if seen > target {
			ds.P99 = d
			break
		}
	}
	return ds
}

// SampleClusteringCoefficient estimates the average local clustering
// coefficient over the undirected view of the graph. It samples k vertices
// (all if k <= 0 or k >= n). A nil rng means deterministic iteration over
// the first vertices.
func (g *Graph) SampleClusteringCoefficient(k int, rng *rand.Rand) float64 {
	return SampleClusteringCoefficientOf(g, k, rng)
}

// SampleClusteringCoefficientOf is SampleClusteringCoefficient over any View.
func SampleClusteringCoefficientOf(g View, k int, rng *rand.Rand) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	if k <= 0 || k > n {
		k = n
	}
	var sum float64
	counted := 0
	var unbuf []VertexID
	for i := 0; i < k; i++ {
		var v VertexID
		if rng != nil {
			v = VertexID(rng.Intn(n))
		} else {
			v = VertexID(i)
		}
		unbuf = undirectedNeighborsOf(g, v, unbuf[:0])
		d := len(unbuf)
		if d < 2 {
			continue
		}
		links := 0
		for ai := 0; ai < d; ai++ {
			for bi := ai + 1; bi < d; bi++ {
				a, b := unbuf[ai], unbuf[bi]
				if g.HasEdge(a, b, WildcardLabel) || g.HasEdge(b, a, WildcardLabel) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(d*(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// undirectedNeighborsOf returns the deduplicated union of v's forward and
// backward neighbours across all labels.
func undirectedNeighborsOf(g View, v VertexID, buf []VertexID) []VertexID {
	buf = buf[:0]
	seen := make(map[VertexID]struct{})
	collect := func(list []VertexID) {
		for _, u := range list {
			if u == v {
				continue
			}
			if _, ok := seen[u]; !ok {
				seen[u] = struct{}{}
				buf = append(buf, u)
			}
		}
	}
	collect(g.Neighbors(v, Forward, WildcardLabel, WildcardLabel, nil))
	collect(g.Neighbors(v, Backward, WildcardLabel, WildcardLabel, nil))
	return buf
}
