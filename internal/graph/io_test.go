package graph

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
)

func TestLoadEdgeList(t *testing.T) {
	in := `# comment
v 1 2
0 1
1 2 1
2 0
`
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("loaded %v", g)
	}
	if g.VertexLabel(1) != 2 {
		t.Errorf("vertex 1 label = %d, want 2", g.VertexLabel(1))
	}
	if !g.HasEdge(1, 2, 1) {
		t.Error("edge 1->2 label 1 missing")
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []string{
		"v 1\n",              // short vertex line
		"0\n",                // short edge line
		"0 1 2 3\n",          // long edge line
		"x 1\n",              // non-numeric
		"0 99999999999999\n", // overflow
	}
	for _, in := range cases {
		if _, err := LoadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("LoadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(5)
	b.SetVertexLabel(2, 3)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 2)
	b.AddEdge(3, 4, 0)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
	if g2.VertexLabel(2) != 3 {
		t.Errorf("label lost in round trip")
	}
	if !g2.HasEdge(1, 2, 2) {
		t.Errorf("edge lost in round trip")
	}
}

func TestLoadEdgeListGzip(t *testing.T) {
	in := "# leading comment\n0 1\n# interleaved comment\n1 2 1\n2 0\n"
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(in)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatalf("LoadEdgeList(gzip): %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("gzip load got %v, want 3 vertices / 3 edges", g)
	}
	if !g.HasEdge(1, 2, 1) {
		t.Error("edge 1->2 label 1 missing after gzip load")
	}
	// Plain input whose first bytes coincide with nothing special must be
	// unaffected by the sniffing path.
	g2, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadEdgeList(plain): %v", err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("plain load %d edges, gzip load %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestLoadEdgeListTruncatedGzip(t *testing.T) {
	// A bare gzip magic with no stream behind it must error, not hang or
	// parse as text.
	if _, err := LoadEdgeList(bytes.NewReader([]byte{0x1f, 0x8b})); err == nil {
		t.Error("LoadEdgeList on truncated gzip succeeded, want error")
	}
}

func TestLoadEmpty(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g.NumVertices() != 0 {
		t.Errorf("want empty graph, got %v", g)
	}
}
