package graph

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadEdgeList parses a whitespace-separated edge list:
//
//	# comment lines start with '#'
//	v <vertexID> <vertexLabel>      (optional vertex-label lines)
//	<src> <dst> [edgeLabel]
//
// Vertices are created implicitly up to the largest ID seen. The format is a
// superset of the SNAP edge-list format the paper's datasets ship in.
//
// Gzip-compressed input is detected by its magic bytes and decompressed
// transparently, so .txt.gz dataset dumps load without an external gunzip
// step.
func LoadEdgeList(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("graph: gzip input: %w", err)
		}
		defer zr.Close()
		return loadEdgeListPlain(zr)
	}
	return loadEdgeListPlain(br)
}

func loadEdgeListPlain(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	type edge struct {
		src, dst uint64
		label    Label
	}
	var edges []edge
	vlabels := map[uint64]Label{}
	var maxID uint64
	haveVertex := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "v" {
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: vertex line needs 'v id label'", lineNo)
			}
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			lab, err := strconv.ParseUint(fields[2], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			vlabels[id] = Label(lab)
			if id > maxID {
				maxID = id
			}
			haveVertex = true
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: edge line needs 'src dst [label]'", lineNo)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		var lab uint64
		if len(fields) == 3 {
			lab, err = strconv.ParseUint(fields[2], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		}
		edges = append(edges, edge{src, dst, Label(lab)})
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		haveVertex = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !haveVertex {
		return NewBuilder(0).Build()
	}
	b := NewBuilder(int(maxID) + 1)
	for id, lab := range vlabels {
		b.SetVertexLabel(VertexID(id), lab)
	}
	for _, e := range edges {
		b.AddEdge(VertexID(e.src), VertexID(e.dst), e.label)
	}
	return b.Build()
}

// WriteEdgeList writes the graph in the format accepted by LoadEdgeList.
// Vertex-label lines are emitted only for non-zero labels.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# graphflow edge list: %d vertices, %d edges\n", g.n, g.m)
	for v := 0; v < g.n; v++ {
		if l := g.vLabels[v]; l != 0 {
			fmt.Fprintf(bw, "v %d %d\n", v, l)
		}
	}
	var outErr error
	g.Edges(func(src, dst VertexID, l Label) bool {
		var err error
		if l == 0 {
			_, err = fmt.Fprintf(bw, "%d %d\n", src, dst)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d %d\n", src, dst, l)
		}
		if err != nil {
			outErr = err
			return false
		}
		return true
	})
	if outErr != nil {
		return outErr
	}
	return bw.Flush()
}
