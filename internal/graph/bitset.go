package graph

import "math/bits"

// DefaultHubThreshold is the partition size at which the builder
// materialises a bitset adjacency index alongside the sorted CSR run.
// The EmptyHeaded-style rule of thumb: below it, sorted-array kernels
// (merge, galloping) win on cache locality; above it, O(1) membership
// probes and word-wide ANDs win. Tune per store with the hub-threshold
// knob (Builder.SetHubThreshold / graphflow.Options.HubDegreeThreshold).
const DefaultHubThreshold = 256

// resolveHubThreshold maps the public knob convention onto an effective
// partition-size floor: 0 takes the default, negative disables indexing
// entirely (no partition qualifies).
func resolveHubThreshold(t int) int {
	if t == 0 {
		return DefaultHubThreshold
	}
	return t
}

// Bitset is a bitmap over vertex IDs: the alternative representation of
// one hub vertex's adjacency partition. The sorted VertexID run stays
// the canonical representation (iteration order, duplicates semantics);
// the bitset is a secondary index that turns membership into one word
// load and pairwise intersection into a word AND. The words are
// range-compressed to the partition's ID span — clustered neighbour IDs
// cost far less than ceil(V/8) bytes — with wordBase recording where
// the span starts. Bitsets are immutable after construction and safe
// for concurrent readers.
type Bitset struct {
	words    []uint64
	wordBase int // index (in 64-ID units) of words[0] within the universe
	count    int
}

// NewBitsetFromSorted builds the bitset of an ID-sorted neighbour run,
// spanning only the run's [min, max] ID range.
func NewBitsetFromSorted(list []VertexID) *Bitset {
	b := &Bitset{count: len(list)}
	if len(list) == 0 {
		return b
	}
	b.wordBase = int(list[0] >> 6)
	b.words = make([]uint64, int(list[len(list)-1]>>6)-b.wordBase+1)
	for _, v := range list {
		b.words[int(v>>6)-b.wordBase] |= 1 << (v & 63)
	}
	return b
}

// Contains reports whether v is set. IDs outside the bitset's span —
// including vertices appended to a live overlay after the base was
// frozen — are reported absent rather than read out of bounds.
func (b *Bitset) Contains(v VertexID) bool {
	w := int(v>>6) - b.wordBase
	return w >= 0 && w < len(b.words) && b.words[w]&(1<<(v&63)) != 0
}

// Len returns the number of set bits (the partition's degree).
func (b *Bitset) Len() int { return b.count }

// WordLen returns the number of 64-bit words spanning the partition's ID
// range — the memory unit of the index and the upper bound of a word-AND
// scan.
func (b *Bitset) WordLen() int { return len(b.words) }

// spanOverlap returns the [lo, hi) word range both bitsets cover — the
// exact range the word-AND kernel scans.
func spanOverlap(a, b *Bitset) (lo, hi int) {
	lo, hi = a.wordBase, a.wordBase+len(a.words)
	if b.wordBase > lo {
		lo = b.wordBase
	}
	if e := b.wordBase + len(b.words); e < hi {
		hi = e
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// andSpan returns the number of words a word-AND of a and b scans: the
// overlap of their ID spans. Zero means the spans are disjoint and the
// intersection is empty without reading a single word.
func andSpan(a, b *Bitset) int {
	lo, hi := spanOverlap(a, b)
	return hi - lo
}

// IntersectBitset writes list ∩ b into out (truncated first; may be nil)
// and returns it: the probe kernel, O(len(list)) regardless of the hub's
// degree. The result keeps list's sorted order. Safe when out aliases
// list (writes never outrun reads).
func IntersectBitset(list []VertexID, b *Bitset, out []VertexID) []VertexID {
	out = out[:0]
	for _, x := range list {
		if b.Contains(x) {
			out = append(out, x)
		}
	}
	return out
}

// IntersectBitsets writes the IDs common to a and b into out (truncated
// first; may be nil), in ascending order: the word-AND kernel, O(span
// overlap) plus the output size. Worth it only when both sides are dense
// enough that scanning every overlapping word beats walking the shorter
// sorted list — or when the spans are disjoint, which costs nothing.
func IntersectBitsets(a, b *Bitset, out []VertexID) []VertexID {
	out = out[:0]
	lo, hi := spanOverlap(a, b)
	for w := lo; w < hi; w++ {
		m := a.words[w-a.wordBase] & b.words[w-b.wordBase]
		base := VertexID(w) << 6
		for m != 0 {
			out = append(out, base+VertexID(bits.TrailingZeros64(m)))
			m &= m - 1
		}
	}
	return out
}

// BitsetFetchFloor returns the smallest list length for which fetching a
// hub bitset index can pay off in a k-way intersection over lists: the
// long side of a probe (>= BitsetProbeRatio x the shortest list) or a
// plausible word-AND participant (dense against nWords, the universe's
// word count). ok is false when some list is empty — the intersection is
// already known empty and no index should be consulted at all. E/I
// operators share this pre-filter so the executor and the adaptive
// evaluator fetch identical candidate sets.
func BitsetFetchFloor(lists [][]VertexID, nWords int) (floor int, ok bool) {
	minLen := len(lists[0])
	for _, l := range lists[1:] {
		if len(l) < minLen {
			minLen = len(l)
		}
	}
	if minLen == 0 {
		return 0, false
	}
	floor = BitsetProbeRatio * minLen
	if w := (nWords + 1) / 2; w < floor {
		floor = w
	}
	return floor, true
}
