package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// sortedSet is a quick.Generator producing random sorted VertexID sets.
type sortedSet []VertexID

// Generate implements quick.Generator.
func (sortedSet) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(size + 1)
	seen := map[VertexID]struct{}{}
	for len(seen) < n {
		seen[VertexID(rng.Intn(4*(n+1)))] = struct{}{}
	}
	out := make(sortedSet, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return reflect.ValueOf(out)
}

func TestQuickIntersectCommutative(t *testing.T) {
	f := func(a, b sortedSet) bool {
		ab := Intersect([]VertexID(a), []VertexID(b), nil)
		ba := Intersect([]VertexID(b), []VertexID(a), nil)
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectSubsetAndSorted(t *testing.T) {
	f := func(a, b sortedSet) bool {
		out := Intersect([]VertexID(a), []VertexID(b), nil)
		// Sorted, duplicate-free, and a subset of both inputs.
		for i := 1; i < len(out); i++ {
			if out[i] <= out[i-1] {
				return false
			}
		}
		for _, x := range out {
			if !containsSorted([]VertexID(a), x) || !containsSorted([]VertexID(b), x) {
				return false
			}
		}
		// Every common element is present.
		for _, x := range a {
			if containsSorted([]VertexID(b), x) && !containsSorted(out, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectIdempotent(t *testing.T) {
	f := func(a sortedSet) bool {
		out := Intersect([]VertexID(a), []VertexID(a), nil)
		if len(out) != len(a) {
			return false
		}
		for i := range out {
			if out[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectKMatchesPairwise(t *testing.T) {
	f := func(a, b, c sortedSet) bool {
		k, _ := IntersectK([][]VertexID{a, b, c}, nil, nil)
		two := Intersect([]VertexID(a), []VertexID(b), nil)
		want := Intersect(two, []VertexID(c), nil)
		if len(k) != len(want) {
			return false
		}
		for i := range k {
			if k[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomGraphSpec drives graph-construction properties.
type randomGraphSpec struct {
	N     uint8
	Edges []struct{ S, D, L uint8 }
}

func TestQuickBuilderInvariants(t *testing.T) {
	f := func(spec randomGraphSpec) bool {
		n := int(spec.N%40) + 1
		b := NewBuilder(n)
		added := 0
		for _, e := range spec.Edges {
			s, d := VertexID(int(e.S)%n), VertexID(int(e.D)%n)
			b.AddEdge(s, d, Label(e.L%3))
			added++
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		// Edge count bounded by additions; every adjacency partition sorted;
		// forward and backward views agree edge for edge.
		if g.NumEdges() > added {
			return false
		}
		total := 0
		ok := true
		g.Edges(func(src, dst VertexID, l Label) bool {
			total++
			if src == dst {
				ok = false // self loops dropped
			}
			// The backward index must contain the mirror entry.
			back := g.Neighbors(dst, Backward, l, g.VertexLabel(src), nil)
			if !containsSorted(back, src) {
				ok = false
			}
			return true
		})
		if !ok || total != g.NumEdges() {
			return false
		}
		// Wildcard neighbour lists are globally sorted.
		for v := 0; v < n; v++ {
			lst := g.Neighbors(VertexID(v), Forward, WildcardLabel, WildcardLabel, nil)
			for i := 1; i < len(lst); i++ {
				if lst[i] < lst[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickDegreeSumsEqualEdges(t *testing.T) {
	f := func(spec randomGraphSpec) bool {
		n := int(spec.N%30) + 2
		b := NewBuilder(n)
		for _, e := range spec.Edges {
			b.AddEdge(VertexID(int(e.S)%n), VertexID(int(e.D)%n), 0)
		}
		g := b.MustBuild()
		outSum, inSum := 0, 0
		for v := 0; v < n; v++ {
			outSum += g.OutDegree(VertexID(v))
			inSum += g.InDegree(VertexID(v))
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
