package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	vLabels      []Label
	edges        []edgeRec
	hubThreshold int
}

type edgeRec struct {
	src, dst VertexID
	label    Label
}

// NewBuilder returns a Builder for a graph with numVertices vertices, all
// initially carrying label 0.
func NewBuilder(numVertices int) *Builder {
	return &Builder{vLabels: make([]Label, numVertices)}
}

// NumVertices returns the current vertex count.
func (b *Builder) NumVertices() int { return len(b.vLabels) }

// NumEdgesAdded returns the number of AddEdge calls so far (before
// deduplication).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// AddVertex appends a vertex with the given label and returns its ID.
func (b *Builder) AddVertex(label Label) VertexID {
	b.vLabels = append(b.vLabels, label)
	return VertexID(len(b.vLabels) - 1)
}

// SetVertexLabel assigns a label to an existing vertex.
func (b *Builder) SetVertexLabel(v VertexID, label Label) {
	b.vLabels[v] = label
}

// SetHubThreshold sets the partition size at which Build materialises a
// bitset adjacency index alongside the sorted run (0 takes
// DefaultHubThreshold; negative disables hub indexing).
func (b *Builder) SetHubThreshold(t int) {
	b.hubThreshold = t
}

// AddEdge records the directed edge src->dst with the given edge label.
// Self-loops and duplicate edges are permitted here; Build drops self-loops
// and deduplicates.
func (b *Builder) AddEdge(src, dst VertexID, label Label) {
	b.edges = append(b.edges, edgeRec{src, dst, label})
}

// Build constructs the immutable Graph. The Builder may be reused afterwards
// (its accumulated state is unchanged).
func (b *Builder) Build() (*Graph, error) {
	n := len(b.vLabels)
	for _, e := range b.edges {
		if int(e.src) >= n || int(e.dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d->%d) references vertex beyond %d", e.src, e.dst, n-1)
		}
		if e.label == WildcardLabel {
			return nil, fmt.Errorf("graph: edge (%d->%d) uses reserved wildcard label", e.src, e.dst)
		}
	}
	maxV, maxE := Label(0), Label(0)
	for _, l := range b.vLabels {
		if l == WildcardLabel {
			return nil, fmt.Errorf("graph: vertex uses reserved wildcard label")
		}
		if l > maxV {
			maxV = l
		}
	}
	edges := make([]edgeRec, 0, len(b.edges))
	for _, e := range b.edges {
		if e.src == e.dst {
			continue // drop self-loops; subgraph queries bind distinct vertices
		}
		if e.label > maxE {
			maxE = e.label
		}
		edges = append(edges, e)
	}

	g := &Graph{
		n:               n,
		vLabels:         append([]Label(nil), b.vLabels...),
		numVertexLabels: int(maxV) + 1,
		numEdgeLabels:   int(maxE) + 1,
	}
	g.fwd, g.m = buildAdjacency(edges, g.vLabels, n, false)
	g.bwd, _ = buildAdjacency(edges, g.vLabels, n, true)
	g.buildHubIndex(b.hubThreshold)
	return g, nil
}

// MustBuild is Build but panics on error; convenient in tests and examples.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// buildAdjacency sorts the edges into the CSR layout described on the
// adjacency type. When reversed is true the incoming index is built (the
// "neighbour" is the edge source).
func buildAdjacency(edges []edgeRec, vLabels []Label, n int, reversed bool) (adjacency, int) {
	type entry struct {
		owner  VertexID
		eLabel Label
		nLabel Label
		nbr    VertexID
	}
	ents := make([]entry, 0, len(edges))
	for _, e := range edges {
		owner, nbr := e.src, e.dst
		if reversed {
			owner, nbr = e.dst, e.src
		}
		ents = append(ents, entry{owner, e.label, vLabels[nbr], nbr})
	}
	sort.Slice(ents, func(i, j int) bool {
		a, b := ents[i], ents[j]
		if a.owner != b.owner {
			return a.owner < b.owner
		}
		if a.eLabel != b.eLabel {
			return a.eLabel < b.eLabel
		}
		if a.nLabel != b.nLabel {
			return a.nLabel < b.nLabel
		}
		return a.nbr < b.nbr
	})
	// Deduplicate identical (owner, eLabel, nbr) entries.
	dedup := ents[:0]
	for i, e := range ents {
		if i > 0 {
			p := dedup[len(dedup)-1]
			if p.owner == e.owner && p.eLabel == e.eLabel && p.nbr == e.nbr {
				continue
			}
		}
		dedup = append(dedup, e)
	}
	ents = dedup

	var a adjacency
	a.offsets = make([]int, n+1)
	a.nbrs = make([]VertexID, len(ents))
	a.pOff = make([]int32, n+1)

	// First pass: counts per owner and per (owner, eLabel, nLabel) partition.
	for _, e := range ents {
		a.offsets[e.owner+1]++
	}
	for v := 0; v < n; v++ {
		a.offsets[v+1] += a.offsets[v]
	}
	// Emit neighbours and partition directory in one sweep (ents are fully
	// sorted, so partitions are contiguous).
	for i := 0; i < len(ents); {
		v := ents[i].owner
		j := i
		for j < len(ents) && ents[j].owner == v {
			j++
		}
		for k := i; k < j; k++ {
			a.nbrs[a.offsets[v]+(k-i)] = ents[k].nbr
			if k == i || ents[k].eLabel != ents[k-1].eLabel || ents[k].nLabel != ents[k-1].nLabel {
				a.pELabel = append(a.pELabel, ents[k].eLabel)
				a.pNLabel = append(a.pNLabel, ents[k].nLabel)
				a.pStart = append(a.pStart, a.offsets[v]+(k-i))
			}
		}
		a.pOff[v+1] = int32(len(a.pStart))
		i = j
	}
	// Owners without entries never had pOff[v+1] assigned; make the array
	// monotone so their directories are empty ranges.
	last := int32(0)
	for v := 1; v <= n; v++ {
		if a.pOff[v] < last {
			a.pOff[v] = last
		}
		last = a.pOff[v]
	}
	return a, len(ents)
}
