package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// buildTriangle returns the labelled 4-vertex graph used across tests:
//
//	0 -> 1 (edge label 0), 0 -> 2 (label 1), 1 -> 2 (label 0), 2 -> 3 (label 0)
//	vertex labels: 0:a(0) 1:b(1) 2:a(0) 3:b(1)
func buildLabelled(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	b.SetVertexLabel(1, 1)
	b.SetVertexLabel(3, 1)
	b.AddEdge(0, 1, 0)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 2, 0)
	b.AddEdge(2, 3, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := buildLabelled(t)
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.NumVertexLabels() != 2 || g.NumEdgeLabels() != 2 {
		t.Errorf("label counts = (%d,%d), want (2,2)", g.NumVertexLabels(), g.NumEdgeLabels())
	}
	if g.VertexLabel(1) != 1 || g.VertexLabel(2) != 0 {
		t.Errorf("vertex labels wrong: %d %d", g.VertexLabel(1), g.VertexLabel(2))
	}
}

func TestNeighborsExact(t *testing.T) {
	g := buildLabelled(t)
	got := g.Neighbors(0, Forward, 0, 1, nil)
	if !reflect.DeepEqual(append([]VertexID(nil), got...), []VertexID{1}) {
		t.Errorf("fwd(0, e0, n1) = %v, want [1]", got)
	}
	got = g.Neighbors(0, Forward, 1, 0, nil)
	if !reflect.DeepEqual(append([]VertexID(nil), got...), []VertexID{2}) {
		t.Errorf("fwd(0, e1, n0) = %v, want [2]", got)
	}
	if n := g.Neighbors(0, Forward, 1, 1, nil); len(n) != 0 {
		t.Errorf("fwd(0, e1, n1) = %v, want empty", n)
	}
	got = g.Neighbors(2, Backward, WildcardLabel, WildcardLabel, nil)
	want := []VertexID{0, 1}
	cp := append([]VertexID(nil), got...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	if !reflect.DeepEqual(cp, want) {
		t.Errorf("bwd(2, *, *) = %v, want %v", cp, want)
	}
}

func TestNeighborsWildcardMergeSorted(t *testing.T) {
	// Vertex 0 has neighbours under different labels; the wildcard result
	// must be globally ID-sorted.
	b := NewBuilder(6)
	b.SetVertexLabel(2, 1)
	b.SetVertexLabel(4, 1)
	b.AddEdge(0, 5, 0)
	b.AddEdge(0, 2, 0) // label-1 neighbour
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 4, 1) // label-1 neighbour under edge label 1
	b.AddEdge(0, 3, 0)
	g := b.MustBuild()
	got := g.Neighbors(0, Forward, WildcardLabel, WildcardLabel, nil)
	want := []VertexID{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(append([]VertexID(nil), got...), want) {
		t.Errorf("wildcard merge = %v, want %v", got, want)
	}
	// Restricting the neighbour label must also merge across edge labels.
	got = g.Neighbors(0, Forward, WildcardLabel, 1, nil)
	want = []VertexID{2, 4}
	if !reflect.DeepEqual(append([]VertexID(nil), got...), want) {
		t.Errorf("wildcard edge-label merge = %v, want %v", got, want)
	}
}

func TestDegreeAndHasEdge(t *testing.T) {
	g := buildLabelled(t)
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", d)
	}
	if d := g.InDegree(2); d != 2 {
		t.Errorf("InDegree(2) = %d, want 2", d)
	}
	if d := g.Degree(0, Forward, 0, WildcardLabel); d != 1 {
		t.Errorf("Degree(0,fwd,e0,*) = %d, want 1", d)
	}
	if !g.HasEdge(0, 1, 0) || !g.HasEdge(0, 2, WildcardLabel) {
		t.Error("HasEdge missed existing edges")
	}
	if g.HasEdge(1, 0, WildcardLabel) || g.HasEdge(0, 1, 1) {
		t.Error("HasEdge reported nonexistent edges")
	}
}

func TestSelfLoopsDroppedAndDeduplicated(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 0, 0)
	b.AddEdge(0, 1, 0)
	b.AddEdge(0, 1, 0)
	b.AddEdge(0, 1, 1) // distinct label: kept
	g := b.MustBuild()
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 (dedup + self-loop drop)", g.NumEdges())
	}
}

func TestBuildErrors(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5, 0)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted out-of-range vertex")
	}
	b2 := NewBuilder(2)
	b2.AddEdge(0, 1, WildcardLabel)
	if _, err := b2.Build(); err == nil {
		t.Error("Build accepted wildcard edge label")
	}
	b3 := NewBuilder(2)
	b3.SetVertexLabel(0, WildcardLabel)
	if _, err := b3.Build(); err == nil {
		t.Error("Build accepted wildcard vertex label")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := buildLabelled(t)
	type e struct {
		s, d VertexID
		l    Label
	}
	var got []e
	g.Edges(func(s, d VertexID, l Label) bool {
		got = append(got, e{s, d, l})
		return true
	})
	if len(got) != 4 {
		t.Fatalf("Edges visited %d, want 4", len(got))
	}
	// Early stop.
	count := 0
	g.Edges(func(s, d VertexID, l Label) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d, want 2", count)
	}
	// Per-vertex iteration agrees with the full sweep.
	var per []e
	for v := 0; v < g.NumVertices(); v++ {
		g.EdgesOf(VertexID(v), func(s, d VertexID, l Label) bool {
			per = append(per, e{s, d, l})
			return true
		})
	}
	if !reflect.DeepEqual(got, per) {
		t.Errorf("EdgesOf disagrees with Edges: %v vs %v", per, got)
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct{ a, b, want []VertexID }{
		{nil, nil, nil},
		{[]VertexID{1, 2, 3}, nil, nil},
		{[]VertexID{1, 2, 3}, []VertexID{2, 3, 4}, []VertexID{2, 3}},
		{[]VertexID{1, 5, 9}, []VertexID{2, 6, 10}, nil},
		{[]VertexID{1, 2, 3}, []VertexID{1, 2, 3}, []VertexID{1, 2, 3}},
	}
	for _, c := range cases {
		got := Intersect(c.a, c.b, nil)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntersectGalloping(t *testing.T) {
	long := make([]VertexID, 10000)
	for i := range long {
		long[i] = VertexID(i * 3)
	}
	short := []VertexID{0, 3, 7, 2997, 29997, 50000}
	got := Intersect(short, long, nil)
	want := []VertexID{0, 3, 2997, 29997}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("galloping intersect = %v, want %v", got, want)
	}
	// Symmetry.
	got2 := Intersect(long, short, nil)
	if !reflect.DeepEqual(got2, want) {
		t.Errorf("galloping intersect (swapped) = %v, want %v", got2, want)
	}
}

func TestIntersectK(t *testing.T) {
	lists := [][]VertexID{
		{1, 2, 3, 4, 5, 6},
		{2, 4, 6, 8},
		{4, 5, 6, 7},
	}
	got, _ := IntersectK(lists, nil, nil)
	want := []VertexID{4, 6}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IntersectK = %v, want %v", got, want)
	}
	one, _ := IntersectK(lists[:1], nil, nil)
	if !reflect.DeepEqual(one, lists[0]) {
		t.Errorf("IntersectK single = %v", one)
	}
	empty, _ := IntersectK(nil, nil, nil)
	if len(empty) != 0 {
		t.Errorf("IntersectK() = %v, want empty", empty)
	}
}

// intersectRef is a map-based reference for the property test.
func intersectRef(a, b []VertexID) []VertexID {
	set := map[VertexID]struct{}{}
	for _, x := range a {
		set[x] = struct{}{}
	}
	var out []VertexID
	for _, x := range b {
		if _, ok := set[x]; ok {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		a := randomSortedSet(rng, rng.Intn(200))
		b := randomSortedSet(rng, rng.Intn(200)*rng.Intn(40)) // occasionally much longer
		got := Intersect(a, b, nil)
		want := intersectRef(a, b)
		if len(got) != len(want) {
			t.Fatalf("iter %d: len mismatch: got %v want %v", iter, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d: got %v want %v", iter, got, want)
			}
		}
	}
}

func randomSortedSet(rng *rand.Rand, n int) []VertexID {
	seen := map[VertexID]struct{}{}
	for len(seen) < n {
		seen[VertexID(rng.Intn(5*(n+1)))] = struct{}{}
	}
	out := make([]VertexID, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestStats(t *testing.T) {
	// A triangle plus pendant: clustering of the triangle corners is 1.
	b := NewBuilder(4)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(0, 2, 0)
	b.AddEdge(2, 3, 0)
	g := b.MustBuild()
	st := g.ComputeStats(0, nil)
	if st.Vertices != 4 || st.Edges != 4 {
		t.Errorf("stats counts = %+v", st)
	}
	if st.Out.Max != 2 {
		t.Errorf("out max = %d, want 2", st.Out.Max)
	}
	// Vertices 0 and 1 have clustering 1 (their two neighbours are linked);
	// vertex 2 has 3 neighbours with 1 link = 1/3; vertex 3 has degree 1.
	want := (1.0 + 1.0 + 1.0/3.0) / 3.0
	if diff := st.Clustering - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("clustering = %v, want %v", st.Clustering, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph: %v", g)
	}
	st := g.ComputeStats(0, nil)
	if st.Clustering != 0 || st.Out.Mean != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestIsolatedVerticesPartitionOffsets(t *testing.T) {
	// Vertices 0 and 4 have edges; 1..3 are isolated and must have empty
	// partition directories.
	b := NewBuilder(6)
	b.AddEdge(0, 5, 0)
	b.AddEdge(4, 5, 0)
	g := b.MustBuild()
	for v := VertexID(0); v < 6; v++ {
		_ = g.Neighbors(v, Forward, 0, 0, nil) // must not panic
		_ = g.Neighbors(v, Backward, WildcardLabel, WildcardLabel, nil)
	}
	if d := g.OutDegree(2); d != 0 {
		t.Errorf("isolated OutDegree = %d", d)
	}
	if got := g.Neighbors(4, Forward, 0, 0, nil); len(got) != 1 || got[0] != 5 {
		t.Errorf("Neighbors(4) = %v", got)
	}
}
