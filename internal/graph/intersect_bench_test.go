package graph

import (
	"math/rand"
	"testing"
)

// benchLists builds the canonical E/I shape: k ID-sorted adjacency runs
// over one universe, with controllable skew.
func benchLists(lengths []int, maxGap int, seed int64) ([][]VertexID, []*Bitset) {
	rng := rand.New(rand.NewSource(seed))
	lists := make([][]VertexID, len(lengths))
	for i, l := range lengths {
		lists[i] = randomSortedList(rng, l, maxGap)
	}
	bits := make([]*Bitset, len(lists))
	for i := range lists {
		bits[i] = NewBitsetFromSorted(lists[i])
	}
	return lists, bits
}

// BenchmarkIntersectKSorted is the allocation guard of the E/I hot path:
// a 3-way intersection over plain sorted lists through the Intersector
// must report 0 allocs/op (CI greps for it; TestIntersectorZeroAllocs is
// the in-process equivalent).
func BenchmarkIntersectKSorted(b *testing.B) {
	lists, _ := benchLists([]int{40, 900, 700}, 4, 1)
	var it Intersector
	var out, scratch []VertexID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, scratch = it.IntersectK(lists, nil, out, scratch)
	}
	_ = out
}

// BenchmarkIntersectHubSkewed is the headline case of the degree-adaptive
// engine: a short frontier list against a hub adjacency three orders of
// magnitude larger. "sorted" is the pre-existing kernel family (gallop
// picks this shape up); "adaptive" dispatches to the hub's bitset index.
func BenchmarkIntersectHubSkewed(b *testing.B) {
	lists, bits := benchLists([]int{64, 1 << 17}, 3, 2)
	b.Run("sorted", func(b *testing.B) {
		var out []VertexID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = Intersect(lists[0], lists[1], out)
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		var it Intersector
		var out, scratch []VertexID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, scratch = it.IntersectK(lists, bits, out, scratch)
		}
		_ = scratch
	})
}

// BenchmarkIntersectUniform is the no-regression case: two similar-size
// lists, where the adaptive engine must keep choosing the sorted merge
// (bitsets exist but the dispatch heuristics leave them alone unless the
// lists are dense enough for a word-AND to win).
func BenchmarkIntersectUniform(b *testing.B) {
	lists, bits := benchLists([]int{5000, 6000}, 200, 3)
	b.Run("sorted", func(b *testing.B) {
		var out []VertexID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = Intersect(lists[0], lists[1], out)
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		var it Intersector
		var out, scratch []VertexID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, scratch = it.IntersectK(lists, bits, out, scratch)
		}
		_ = scratch
	})
}

// BenchmarkIntersectDenseAnd exercises the word-AND kernel: two dense
// hub lists over a compact universe, where scanning 64 IDs per word load
// beats element-at-a-time merging.
func BenchmarkIntersectDenseAnd(b *testing.B) {
	lists, bits := benchLists([]int{40000, 50000}, 2, 4)
	b.Run("sorted", func(b *testing.B) {
		var out []VertexID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = Intersect(lists[0], lists[1], out)
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		var it Intersector
		var out, scratch []VertexID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, scratch = it.IntersectK(lists, bits, out, scratch)
		}
		_ = scratch
	})
}
