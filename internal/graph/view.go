package graph

// View is the read surface of a graph: everything the executor, the
// optimizer's catalogue sampler and the statistics collectors need, and
// nothing that exposes the underlying storage layout. The immutable CSR
// *Graph satisfies it, and so does internal/live's Snapshot (a mutable
// delta overlay over a CSR base), which is how compiled plans run
// unmodified against a consistent epoch of a changing graph.
//
// Every method must be safe for concurrent use, and the sorted-adjacency
// invariants documented on Graph carry over: Neighbors returns runs
// sorted by vertex ID (per (edge label, neighbour label) partition), so
// Intersect/IntersectK work directly on the returned slices.
type View interface {
	// NumVertices returns the number of vertices.
	NumVertices() int
	// NumEdges returns the number of distinct directed labelled edges.
	NumEdges() int
	// NumVertexLabels returns one more than the largest vertex label in use.
	NumVertexLabels() int
	// NumEdgeLabels returns one more than the largest edge label in use.
	NumEdgeLabels() int
	// VertexLabel returns the label of v.
	VertexLabel(v VertexID) Label
	// Neighbors returns the sorted neighbour list of v in direction dir,
	// restricted to edges labelled eLabel and neighbours labelled nLabel
	// (either may be WildcardLabel). The returned slice may alias internal
	// storage; wildcard lookups that need merging may copy into buf.
	Neighbors(v VertexID, dir Direction, eLabel, nLabel Label, buf []VertexID) []VertexID
	// NeighborBitset returns the bitset index over the exact (eLabel,
	// nLabel) partition of v in direction dir, or nil when no index is
	// materialised (partition below the hub threshold, indexing disabled,
	// wildcard labels, or — for live snapshots — a vertex whose adjacency
	// lives in the mutable overlay). When non-nil, the bitset holds
	// exactly the IDs Neighbors would return for the same arguments, so
	// the degree-adaptive intersection kernels may use either
	// representation interchangeably.
	NeighborBitset(v VertexID, dir Direction, eLabel, nLabel Label) *Bitset
	// Degree returns the size of the (eLabel, nLabel) partition of v in
	// direction dir; labels may be WildcardLabel.
	Degree(v VertexID, dir Direction, eLabel, nLabel Label) int
	// OutDegree returns the total forward degree of v across all labels.
	OutDegree(v VertexID) int
	// InDegree returns the total backward degree of v across all labels.
	InDegree(v VertexID) int
	// HasEdge reports whether the directed edge src->dst with label eLabel
	// exists; eLabel may be WildcardLabel.
	HasEdge(src, dst VertexID, eLabel Label) bool
	// Edges calls fn for every directed edge, grouped by source vertex; fn
	// returning false stops the iteration early.
	Edges(fn EdgeFunc)
	// EdgesOf calls fn for every forward edge of src only.
	EdgesOf(src VertexID, fn EdgeFunc)
}

var _ View = (*Graph)(nil)

// PartitionFunc is the callback type for Partitions. nbrs aliases internal
// storage and must not be retained or modified.
type PartitionFunc func(eLabel, nLabel Label, nbrs []VertexID) bool

// Partitions calls fn for each (edge label, neighbour label) partition of
// v's adjacency in direction dir, in (eLabel, nLabel) order, passing the
// ID-sorted neighbour run. fn returning false stops early. The delta
// overlay uses it to materialise a vertex's base adjacency when the
// vertex is first mutated.
func (g *Graph) Partitions(v VertexID, dir Direction, fn PartitionFunc) {
	a := g.adj(dir)
	lo, hi := int(a.pOff[v]), int(a.pOff[v+1])
	for i := lo; i < hi; i++ {
		end := a.offsets[v+1]
		if i+1 < hi {
			end = a.pStart[i+1]
		}
		if !fn(a.pELabel[i], a.pNLabel[i], a.nbrs[a.pStart[i]:end]) {
			return
		}
	}
}
