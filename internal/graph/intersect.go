package graph

// gallopThreshold is the size ratio beyond which the sorted-array kernel
// switches from in-tandem merging to galloping (exponential) search into
// the longer list.
const gallopThreshold = 32

// BitsetProbeRatio is the size ratio beyond which probing the longer
// list's bitset index (when one exists) beats scanning it: the probe
// kernel pays one random word load per short-list element, the merge
// kernel pays a sequential pass over both lists. Exported so E/I
// operators can pre-filter which descriptors are worth a bitset lookup.
const BitsetProbeRatio = 4

// KernelCounters tallies intersection-kernel dispatches by kind. The
// engine picks a kernel per pairwise intersection, so one k-way E/I call
// can increment several counters.
type KernelCounters struct {
	// Merge counts in-tandem sorted-merge intersections.
	Merge int64
	// Gallop counts galloping (exponential search) intersections.
	Gallop int64
	// BitsetProbe counts short-list probes into a hub bitset index.
	BitsetProbe int64
	// BitsetAnd counts word-wise ANDs of two hub bitset indexes.
	BitsetAnd int64
}

// Add accumulates other into c.
func (c *KernelCounters) Add(other KernelCounters) {
	c.Merge += other.Merge
	c.Gallop += other.Gallop
	c.BitsetProbe += other.BitsetProbe
	c.BitsetAnd += other.BitsetAnd
}

// Intersect writes the sorted intersection of the ID-sorted lists a and b
// into out (which is truncated first and may be nil) and returns it.
//
// The kernel is the paper's iterative 2-way in-tandem intersection; when one
// list is much longer than the other it gallops into the longer list, which
// matters on skewed adjacency lists.
//
//gf:noalloc
func Intersect(a, b, out []VertexID) []VertexID {
	r, _ := intersectSorted(a, b, out)
	return r
}

// intersectSorted is Intersect reporting whether the galloping variant
// ran (false: in-tandem merge), so callers can attribute kernel counters
// without a second length comparison.
func intersectSorted(a, b, out []VertexID) ([]VertexID, bool) {
	out = out[:0]
	if len(a) == 0 || len(b) == 0 {
		return out, false
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopThreshold*len(a) {
		return gallopIntersect(a, b, out), true
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x == y:
			out = append(out, x)
			i++
			j++
		case x < y:
			i++
		default:
			j++
		}
	}
	return out, false
}

// gallopIntersect intersects a short list into a much longer one.
func gallopIntersect(short, long, out []VertexID) []VertexID {
	lo := 0
	for _, x := range short {
		// Exponential probe from lo.
		step := 1
		hi := lo
		for hi < len(long) && long[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(long) {
			hi = len(long)
		}
		// Binary search long[lo:hi] for the first element >= x. Open-coded
		// rather than sort.Search: the closure sort.Search takes captures
		// long and x and escapes, costing one heap allocation per probed
		// element on this zero-alloc path.
		i, j := lo, hi
		for i < j {
			mid := int(uint(i+j) >> 1)
			if long[mid] < x {
				i = mid + 1
			} else {
				j = mid
			}
		}
		k := i
		if k < len(long) && long[k] == x {
			out = append(out, x)
			lo = k + 1
		} else {
			lo = k
		}
		if lo >= len(long) {
			break
		}
	}
	return out
}

// listRef pairs one adjacency run with its optional bitset index inside
// an Intersector's reusable ordering scratch.
type listRef struct {
	list []VertexID
	bits *Bitset
}

// Intersector is the degree-adaptive k-way intersection engine plus the
// per-caller scratch it needs to run allocation-free: the shortest-first
// ordering of list headers that IntersectK previously allocated per call
// now lives here, owned by the E/I stage state (one Intersector per
// worker stage, reused across every tuple). Kernel dispatches are
// tallied in Counters. An Intersector is not safe for concurrent use;
// the zero value is ready.
type Intersector struct {
	// Counters tallies kernel dispatches; callers flush and reset it when
	// aggregating profiles.
	Counters KernelCounters
	refs     []listRef
}

// intersectPair intersects the two smallest refs into out, dispatching
// on representation: word-AND when both sides are indexed and dense
// enough that scanning every word beats walking the short list, a bitset
// probe when the long side is indexed and much longer, and the sorted
// merge/gallop kernel otherwise.
func (it *Intersector) intersectPair(a, b listRef, out []VertexID) []VertexID {
	la, lb := len(a.list), len(b.list)
	if la > lb {
		a, b = b, a
		la, lb = lb, la
	}
	if la == 0 {
		return out[:0]
	}
	switch {
	case a.bits != nil && b.bits != nil && 2*andSpan(a.bits, b.bits) <= la+lb:
		// Dense enough that scanning the span overlap beats walking the
		// lists; a zero overlap proves emptiness without reading a word.
		it.Counters.BitsetAnd++
		return IntersectBitsets(a.bits, b.bits, out)
	case b.bits != nil && lb >= BitsetProbeRatio*la:
		it.Counters.BitsetProbe++
		return IntersectBitset(a.list, b.bits, out)
	default:
		r, galloped := intersectSorted(a.list, b.list, out)
		if galloped {
			it.Counters.Gallop++
		} else {
			it.Counters.Merge++
		}
		return r
	}
}

// intersectInto intersects the running result r with ref, writing into
// out. r is a plain sorted list (intermediate results lose their index),
// so only the probe and sorted kernels apply.
func (it *Intersector) intersectInto(r []VertexID, ref listRef, out []VertexID) []VertexID {
	if ref.bits != nil && len(ref.list) >= BitsetProbeRatio*len(r) {
		it.Counters.BitsetProbe++
		return IntersectBitset(r, ref.bits, out)
	}
	res, galloped := intersectSorted(r, ref.list, out)
	if galloped {
		it.Counters.Gallop++
	} else {
		it.Counters.Merge++
	}
	return res
}

// IntersectK intersects any number of ID-sorted lists, shortest-first,
// picking a kernel per pairwise step from the lists' sizes and available
// bitset indexes. bits, when non-nil, must align with lists (nil entries
// mean no index). The result is written into out, ping-ponging with
// scratch between steps exactly like the package-level IntersectK; the
// caller keeps both returned buffers. After warm-up the call performs no
// allocations.
//
//gf:noalloc
func (it *Intersector) IntersectK(lists [][]VertexID, bits []*Bitset, out, scratch []VertexID) (result, newScratch []VertexID) {
	switch len(lists) {
	case 0:
		return out[:0], scratch
	case 1:
		out = append(out[:0], lists[0]...)
		return out, scratch
	}
	// Order shortest first to bound intermediate sizes. Insertion sort:
	// descriptor counts are tiny and sort.Slice would allocate its
	// closure on every call.
	// bits may be shorter than lists (callers pass an empty slice when
	// the pre-filter proves no index can help); missing entries mean no
	// index.
	it.refs = it.refs[:0]
	for i, l := range lists {
		ref := listRef{list: l}
		if i < len(bits) {
			ref.bits = bits[i]
		}
		it.refs = append(it.refs, ref)
	}
	refs := it.refs
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && len(refs[j].list) < len(refs[j-1].list); j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}

	out = it.intersectPair(refs[0], refs[1], out)
	for i := 2; i < len(refs) && len(out) > 0; i++ {
		scratch = it.intersectInto(out, refs[i], scratch)
		out, scratch = scratch, out
	}
	return out, scratch
}

// IntersectK intersects any number of ID-sorted lists using iterative 2-way
// intersections, shortest-first, as the paper's E/I operator does. It writes
// the result into out and returns it; scratch is reused between calls (pass
// nil on first use and keep the returned scratch).
//
// This entry point allocates a fresh ordering scratch per call; hot
// paths hold an Intersector instead, which also enables the bitset
// kernels over hub-indexed lists.
//
//gf:noalloc
func IntersectK(lists [][]VertexID, out, scratch []VertexID) (result, newScratch []VertexID) {
	var it Intersector
	return it.IntersectK(lists, nil, out, scratch)
}
