package graph

import "sort"

// gallopThreshold is the size ratio beyond which Intersect switches from
// in-tandem merging to galloping (exponential) search into the longer list.
const gallopThreshold = 32

// Intersect writes the sorted intersection of the ID-sorted lists a and b
// into out (which is truncated first and may be nil) and returns it.
//
// The kernel is the paper's iterative 2-way in-tandem intersection; when one
// list is much longer than the other it gallops into the longer list, which
// matters on skewed adjacency lists.
func Intersect(a, b, out []VertexID) []VertexID {
	out = out[:0]
	if len(a) == 0 || len(b) == 0 {
		return out
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopThreshold*len(a) {
		return gallopIntersect(a, b, out)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x == y:
			out = append(out, x)
			i++
			j++
		case x < y:
			i++
		default:
			j++
		}
	}
	return out
}

// gallopIntersect intersects a short list into a much longer one.
func gallopIntersect(short, long, out []VertexID) []VertexID {
	lo := 0
	for _, x := range short {
		// Exponential probe from lo.
		step := 1
		hi := lo
		for hi < len(long) && long[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(long) {
			hi = len(long)
		}
		k := lo + sort.Search(hi-lo, func(i int) bool { return long[lo+i] >= x })
		if k < len(long) && long[k] == x {
			out = append(out, x)
			lo = k + 1
		} else {
			lo = k
		}
		if lo >= len(long) {
			break
		}
	}
	return out
}

// IntersectK intersects any number of ID-sorted lists using iterative 2-way
// intersections, shortest-first, as the paper's E/I operator does. It writes
// the result into out and returns it; scratch is reused between calls (pass
// nil on first use and keep the returned scratch).
func IntersectK(lists [][]VertexID, out, scratch []VertexID) (result, newScratch []VertexID) {
	switch len(lists) {
	case 0:
		return out[:0], scratch
	case 1:
		out = append(out[:0], lists[0]...)
		return out, scratch
	}
	// Order shortest first to bound intermediate sizes.
	ordered := make([][]VertexID, len(lists))
	copy(ordered, lists)
	sort.Slice(ordered, func(i, j int) bool { return len(ordered[i]) < len(ordered[j]) })

	out = Intersect(ordered[0], ordered[1], out)
	for i := 2; i < len(ordered) && len(out) > 0; i++ {
		scratch = Intersect(out, ordered[i], scratch)
		out, scratch = scratch, out
	}
	return out, scratch
}
