package graph

// NeighborReader is a reusable, allocation-free front end over
// View.Neighbors for hot loops that look up one adjacency run per tuple
// or per scan vertex (the vectorized scan, the E/I descriptor gather and
// the adaptive evaluator's chain steps).
//
// Exact-label lookups return the View's internal run directly (no copy,
// no allocation). Wildcard lookups need a k-way merge into caller
// memory; the reader owns that buffer and pre-grows it from the vertex's
// degree before the merge, so the merge never reallocates mid-flight and
// the grown buffer is retained for subsequent lookups — unlike passing a
// fixed buf to Neighbors, where any growth happens in a fresh array the
// caller cannot safely adopt (the returned slice may alias immutable
// graph storage, which must never be written through).
//
// A NeighborReader is not safe for concurrent use; each worker (and each
// descriptor position within an E/I stage) owns its own. The zero value
// is ready.
type NeighborReader struct {
	buf []VertexID
}

// Read returns the (eLabel, nLabel) neighbour run of v in direction dir,
// sorted by ID. The result is valid until the next Read on the same
// reader and must not be modified (it may alias graph storage).
//
//gf:noalloc
func (r *NeighborReader) Read(g View, v VertexID, dir Direction, eLabel, nLabel Label) []VertexID {
	if eLabel != WildcardLabel && nLabel != WildcardLabel {
		// Exact lookups never touch buf: the View returns its internal
		// sorted run.
		return g.Neighbors(v, dir, eLabel, nLabel, nil)
	}
	if need := g.Degree(v, dir, eLabel, nLabel); need > cap(r.buf) {
		r.buf = make([]VertexID, 0, need+need/2) //gf:allowalloc guarded warm-up growth, amortized across lookups (25% headroom)
	}
	return g.Neighbors(v, dir, eLabel, nLabel, r.buf)
}

// AppendTo appends the (eLabel, nLabel) neighbour run of v to dst and
// returns the extended slice — the columnar fill primitive of the batch
// scan: the destination column is the buffer, so exact-label runs land
// with one copy and wildcard merges write through the reader's scratch
// first. dst never aliases graph storage afterwards.
//
//gf:noalloc
func (r *NeighborReader) AppendTo(g View, v VertexID, dir Direction, eLabel, nLabel Label, dst []VertexID) []VertexID {
	return append(dst, r.Read(g, v, dir, eLabel, nLabel)...) //gf:allowalloc appends into the caller-owned column, whose growth the caller amortizes by reuse
}
