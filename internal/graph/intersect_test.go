package graph

import (
	"math/rand"
	"testing"
)

// naiveIntersect is the quadratic-free reference: a map-membership fold
// sharing no code with any production kernel.
func naiveIntersect(lists ...[]VertexID) []VertexID {
	if len(lists) == 0 {
		return nil
	}
	out := []VertexID{}
	for _, x := range lists[0] {
		in := true
		for _, l := range lists[1:] {
			found := false
			for _, y := range l {
				if y == x {
					found = true
					break
				}
			}
			if !found {
				in = false
				break
			}
		}
		if in {
			out = append(out, x)
		}
	}
	return out
}

func equalIDs(a, b []VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAllKernels runs every applicable kernel on (a, b) and compares
// each against the naive reference: the sorted merge/gallop entry point,
// the bitset probe in both orientations, the word-AND, and the
// Intersector dispatcher under every bitset-availability combination.
func checkAllKernels(t *testing.T, a, b []VertexID) {
	t.Helper()
	want := naiveIntersect(a, b)
	if got := Intersect(a, b, nil); !equalIDs(got, want) {
		t.Fatalf("Intersect(%v, %v) = %v, want %v", a, b, got, want)
	}
	ba, bb := NewBitsetFromSorted(a), NewBitsetFromSorted(b)
	if got := IntersectBitset(a, bb, nil); !equalIDs(got, want) {
		t.Fatalf("IntersectBitset(%v, bits(%v)) = %v, want %v", a, b, got, want)
	}
	if got := IntersectBitset(b, ba, nil); !equalIDs(got, want) {
		t.Fatalf("IntersectBitset(%v, bits(%v)) = %v, want %v", b, a, got, want)
	}
	if got := IntersectBitsets(ba, bb, nil); !equalIDs(got, want) {
		t.Fatalf("IntersectBitsets(%v, %v) = %v, want %v", a, b, got, want)
	}
	var it Intersector
	for _, bits := range [][]*Bitset{nil, {nil, nil}, {ba, nil}, {nil, bb}, {ba, bb}} {
		got, _ := it.IntersectK([][]VertexID{a, b}, bits, nil, nil)
		if !equalIDs(got, want) {
			t.Fatalf("Intersector.IntersectK(%v, %v, bits=%v) = %v, want %v", a, b, bits, got, want)
		}
	}
}

// TestIntersectExhaustiveSmallPairs checks every kernel against the
// naive reference over ALL pairs of sorted lists drawn from the universe
// {0..7}: 256 x 256 subset pairs, every representation combination.
func TestIntersectExhaustiveSmallPairs(t *testing.T) {
	subsets := make([][]VertexID, 256)
	for m := 0; m < 256; m++ {
		s := []VertexID{}
		for v := 0; v < 8; v++ {
			if m&(1<<v) != 0 {
				s = append(s, VertexID(v))
			}
		}
		subsets[m] = s
	}
	for _, a := range subsets {
		for _, b := range subsets {
			checkAllKernels(t, a, b)
		}
	}
}

// randomSortedList draws a strictly increasing list of the given length.
func randomSortedList(rng *rand.Rand, length, maxGap int) []VertexID {
	out := make([]VertexID, 0, length)
	v := VertexID(0)
	for i := 0; i < length; i++ {
		v += VertexID(1 + rng.Intn(maxGap))
		out = append(out, v)
	}
	return out
}

// TestIntersectGallopBoundary sweeps list-size ratios across the
// gallopThreshold switch point (and the BitsetProbeRatio one), checking
// the kernels against the reference exactly where dispatch flips.
func TestIntersectGallopBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ratios := []int{
		1, 2,
		BitsetProbeRatio - 1, BitsetProbeRatio, BitsetProbeRatio + 1,
		gallopThreshold - 1, gallopThreshold, gallopThreshold + 1, 3 * gallopThreshold,
	}
	for _, shortLen := range []int{1, 2, 3, 7} {
		for _, ratio := range ratios {
			for trial := 0; trial < 8; trial++ {
				a := randomSortedList(rng, shortLen, 6)
				b := randomSortedList(rng, shortLen*ratio, 3)
				checkAllKernels(t, a, b)
			}
		}
	}
}

// TestIntersectKDifferential fuzzes the k-way engine: random list
// counts, skewed random sizes, and random per-list bitset availability
// must all reproduce the naive reference.
func TestIntersectKDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var it Intersector
	var out, scratch []VertexID
	for trial := 0; trial < 300; trial++ {
		k := 2 + rng.Intn(4)
		lists := make([][]VertexID, k)
		for i := range lists {
			length := 1 + rng.Intn(40)
			if rng.Intn(3) == 0 { // skewed hub list
				length = 100 + rng.Intn(400)
			}
			lists[i] = randomSortedList(rng, length, 4)
		}
		bits := make([]*Bitset, k)
		for i := range bits {
			if rng.Intn(2) == 0 {
				bits[i] = NewBitsetFromSorted(lists[i])
			}
		}
		want := naiveIntersect(lists...)
		out, scratch = it.IntersectK(lists, bits, out, scratch)
		if !equalIDs(out, want) {
			t.Fatalf("trial %d: IntersectK(k=%d) = %v, want %v", trial, k, out, want)
		}
		// The compatibility wrapper (no bitsets) must agree too.
		got, _ := IntersectK(lists, nil, nil)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: wrapper IntersectK = %v, want %v", trial, got, want)
		}
	}
}

// TestBitsetBeyondUniverse checks that probing IDs past the bitset's
// universe — live-overlay vertices appended after a base was frozen —
// reports absent instead of reading out of bounds.
func TestBitsetBeyondUniverse(t *testing.T) {
	b := NewBitsetFromSorted([]VertexID{1, 3})
	if b.Contains(VertexID(1000)) {
		t.Fatal("Contains(1000) on a 4-vertex universe = true")
	}
	got := IntersectBitset([]VertexID{1, 64, 1000}, b, nil)
	if !equalIDs(got, []VertexID{1}) {
		t.Fatalf("IntersectBitset beyond universe = %v, want [1]", got)
	}
}

// TestIntersectorZeroAllocs asserts the E/I hot path's contract, kernel
// by kernel: after warm-up (AllocsPerRun runs the body once before
// measuring), a k-way intersection performs zero allocations no matter
// which kernel the sizes and indexes select. Each case checks the
// Intersector's own dispatch counters first, so a kernel silently
// falling back to another would fail loudly instead of vacuously
// passing the alloc check. It is the dynamic counterpart of the
// //gf:noalloc annotations gfvet enforces statically.
func TestIntersectorZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	short := randomSortedList(rng, 40, 60)
	mid := randomSortedList(rng, 700, 4)
	long := randomSortedList(rng, 900, 3)
	skewed := randomSortedList(rng, 64*len(short), 2)
	cases := []struct {
		name   string
		lists  [][]VertexID
		bits   []*Bitset
		kernel func(c KernelCounters) int64
	}{
		{
			name:   "merge",
			lists:  [][]VertexID{mid, long},
			kernel: func(c KernelCounters) int64 { return c.Merge },
		},
		{
			name:   "gallop",
			lists:  [][]VertexID{short, skewed},
			kernel: func(c KernelCounters) int64 { return c.Gallop },
		},
		{
			name:   "bitsetProbe",
			lists:  [][]VertexID{short, long},
			bits:   []*Bitset{nil, NewBitsetFromSorted(long)},
			kernel: func(c KernelCounters) int64 { return c.BitsetProbe },
		},
		{
			name:   "bitsetAnd",
			lists:  [][]VertexID{mid, long},
			bits:   []*Bitset{NewBitsetFromSorted(mid), NewBitsetFromSorted(long)},
			kernel: func(c KernelCounters) int64 { return c.BitsetAnd },
		},
		{
			name:   "kWayMixed",
			lists:  [][]VertexID{long, short, mid},
			bits:   []*Bitset{NewBitsetFromSorted(long), nil, NewBitsetFromSorted(mid)},
			kernel: func(c KernelCounters) int64 { return c.Merge + c.Gallop + c.BitsetProbe + c.BitsetAnd },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var it Intersector
			var out, scratch []VertexID
			out, scratch = it.IntersectK(tc.lists, tc.bits, out, scratch)
			if got := tc.kernel(it.Counters); got == 0 {
				t.Fatalf("intended kernel never dispatched (counters %+v)", it.Counters)
			}
			if allocs := testing.AllocsPerRun(100, func() {
				out, scratch = it.IntersectK(tc.lists, tc.bits, out, scratch)
			}); allocs != 0 {
				t.Errorf("%s-path IntersectK allocates %.1f per run, want 0", tc.name, allocs)
			}
		})
	}
}

// decodeFuzzList turns fuzz bytes into a strictly increasing ID list:
// each byte is a positive delta, capped at 256 elements so bitset
// universes stay small.
func decodeFuzzList(data []byte) []VertexID {
	if len(data) > 256 {
		data = data[:256]
	}
	out := make([]VertexID, 0, len(data))
	v := VertexID(0)
	for _, d := range data {
		v += VertexID(d) + 1
		out = append(out, v)
	}
	return out
}

// FuzzIntersect cross-checks every intersection kernel against the naive
// reference on fuzzer-chosen sorted lists, including the k-way engine
// over three lists with full bitset availability.
func FuzzIntersect(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{2, 2, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{7})
	f.Add([]byte{5, 1, 9, 1, 1, 30}, []byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ad, bd []byte) {
		a, b := decodeFuzzList(ad), decodeFuzzList(bd)
		want := naiveIntersect(a, b)
		if got := Intersect(a, b, nil); !equalIDs(got, want) {
			t.Fatalf("Intersect = %v, want %v", got, want)
		}
		ba, bb := NewBitsetFromSorted(a), NewBitsetFromSorted(b)
		if got := IntersectBitset(a, bb, nil); !equalIDs(got, want) {
			t.Fatalf("IntersectBitset = %v, want %v", got, want)
		}
		if got := IntersectBitsets(ba, bb, nil); !equalIDs(got, want) {
			t.Fatalf("IntersectBitsets = %v, want %v", got, want)
		}
		var it Intersector
		for _, bits := range [][]*Bitset{nil, {ba, bb}, {nil, bb}} {
			if got, _ := it.IntersectK([][]VertexID{a, b}, bits, nil, nil); !equalIDs(got, want) {
				t.Fatalf("IntersectK(bits=%v) = %v, want %v", bits, got, want)
			}
		}
		// Three-way: a ∩ b ∩ a must equal a ∩ b.
		three := [][]VertexID{a, b, a}
		if got, _ := it.IntersectK(three, []*Bitset{ba, bb, ba}, nil, nil); !equalIDs(got, want) {
			t.Fatalf("IntersectK(a,b,a) = %v, want %v", got, want)
		}
	})
}
