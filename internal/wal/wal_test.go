package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"graphflow/internal/graph"
)

func testRecords() []Record {
	return []Record{
		{Epoch: 1, AddVertices: []graph.Label{0, 1, 2}},
		{Epoch: 2, AddEdges: []EdgeOp{{0, 1, 0}, {1, 2, 1}}},
		{Epoch: 3, DeleteEdges: []EdgeOp{{0, 1, 0}}, AddEdges: []EdgeOp{{2, 0, 0}}},
		{Epoch: 7, AddVertices: []graph.Label{5}, AddEdges: []EdgeOp{{3, 0, 3}}},
	}
}

func openAppendClose(t *testing.T, dir string, recs []Record) {
	t.Helper()
	l, info, err := Open(dir, 0, Options{Policy: SyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.TornTail {
		t.Fatalf("fresh open replayed %+v", info)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, dir string) ([]Record, ReplayInfo) {
	t.Helper()
	var got []Record
	l, info, err := Open(dir, 0, Options{Policy: SyncOff}, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	return got, info
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range testRecords() {
		dec, err := decodeRecord(r.encode(nil))
		if err != nil {
			t.Fatalf("decode(%+v): %v", r, err)
		}
		if !reflect.DeepEqual(r, dec) {
			t.Fatalf("round trip: wrote %+v, read %+v", r, dec)
		}
	}
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	openAppendClose(t, dir, recs)
	got, info := replayAll(t, dir)
	if info.TornTail {
		t.Fatal("unexpected torn tail")
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed %+v, want %+v", got, recs)
	}
}

// TestTornTailEveryOffset truncates the log at every byte offset and
// checks that replay recovers exactly the records whose frames are fully
// inside the prefix, flagging (and truncating) the torn remainder.
func TestTornTailEveryOffset(t *testing.T) {
	src := t.TempDir()
	recs := testRecords()
	openAppendClose(t, src, recs)
	path := filepath.Join(src, segmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Frame end offsets delimit how many records each prefix holds.
	ends := make([]int, 0, len(recs))
	off := 0
	for _, r := range recs {
		off += frameHeaderSize + len(r.encode(nil))
		ends = append(ends, off)
	}
	if off != len(data) {
		t.Fatalf("frame math: computed %d bytes, file has %d", off, len(data))
	}
	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantN := 0
		for _, e := range ends {
			if e <= cut {
				wantN++
			}
		}
		got, info := replayAll(t, dir)
		if len(got) != wantN {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), wantN)
		}
		if wantN > 0 && !reflect.DeepEqual(got, recs[:wantN]) {
			t.Fatalf("cut %d: wrong records", cut)
		}
		// A cut exactly at a frame boundary (or the empty file) is clean;
		// anything mid-frame is a torn tail.
		atBoundary := cut == 0
		for _, e := range ends {
			if cut == e {
				atBoundary = true
			}
		}
		if info.TornTail == atBoundary {
			t.Fatalf("cut %d: torn=%v but boundary=%v", cut, info.TornTail, atBoundary)
		}
		// After truncation the reopened log must be clean.
		got2, info2 := replayAll(t, dir)
		if info2.TornTail || len(got2) != wantN {
			t.Fatalf("cut %d: second replay torn=%v n=%d", cut, info2.TornTail, len(got2))
		}
	}
}

// TestCorruptMidSegmentFails flips a payload byte in the middle of the
// log: the CRC catches it, and because valid frames (in a newer segment)
// follow, recovery must fail loudly instead of dropping data.
func TestCorruptMidSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0, Options{Policy: SyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Epoch: 1, AddEdges: []EdgeOp{{0, 1, 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(5); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Epoch: 6, AddEdges: []EdgeOp{{1, 2, 0}}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Corrupt the first (older) segment's payload.
	p := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, 0, Options{Policy: SyncOff}, nil); err == nil {
		t.Fatal("corrupt non-final segment did not fail recovery")
	}
}

func TestRotateAndDrop(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0, Options{Policy: SyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Epoch: 1, AddEdges: []EdgeOp{{0, 1, 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Epoch: 2, AddEdges: []EdgeOp{{1, 0, 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.DropSegmentsBefore(1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, info := replayAll(t, dir)
	if info.TornTail || len(got) != 1 || got[0].Epoch != 2 {
		t.Fatalf("after drop: replay %+v info %+v", got, info)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	b := graph.NewBuilder(5)
	b.SetVertexLabel(1, 2)
	b.SetVertexLabel(4, 1)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 0)
	b.AddEdge(4, 0, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 42, g); err != nil {
		t.Fatal(err)
	}
	got, epoch, ok, err := LoadNewestCheckpoint(dir, 0)
	if err != nil || !ok || epoch != 42 {
		t.Fatalf("load: ok=%v epoch=%d err=%v", ok, epoch, err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("checkpoint graph V=%d E=%d, want V=%d E=%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got.VertexLabel(graph.VertexID(v)) != g.VertexLabel(graph.VertexID(v)) {
			t.Fatalf("vertex %d label mismatch", v)
		}
	}
	g.Edges(func(src, dst graph.VertexID, l graph.Label) bool {
		if !got.HasEdge(src, dst, l) {
			t.Fatalf("edge %d->%d missing after round trip", src, dst)
		}
		return true
	})

	// Corrupt checkpoints must fail loudly, not fall back.
	path := filepath.Join(dir, checkpointName(42))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadNewestCheckpoint(dir, 0); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}
}
