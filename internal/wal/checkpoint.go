package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"graphflow/internal/graph"
)

// Checkpoint files serialise one epoch's full logical graph — vertex
// labels plus the directed labelled edge set — so recovery loads the
// newest checkpoint and replays only the WAL records past its epoch.
// Files are named ckpt-<epoch>.snap and written atomically: the payload
// goes to a .tmp name, is fsynced, then renamed into place (and the
// directory fsynced), so a crash mid-write leaves only ignorable temp
// files and every *.snap on disk is complete. Corruption of a completed
// checkpoint is detected by a trailing CRC32 and fails recovery loudly
// rather than silently falling back to an older state.
//
// Layout (little-endian):
//
//	magic "GFWCKPT1" | epoch u64 | numVertices u64 | labels u16 each
//	| numEdges u64 | (src u32, dst u32, label u16) each | CRC32 of payload
const checkpointMagic = "GFWCKPT1"

// checkpointName returns the file name of the checkpoint at epoch.
func checkpointName(epoch uint64) string {
	return fmt.Sprintf("ckpt-%020d.snap", epoch)
}

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	e, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".snap"), 10, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// CheckpointModTime reports when the checkpoint at epoch was written
// (its file mtime). ok is false when no such checkpoint exists — the
// caller's checkpoint-age gauge then has nothing to age against.
func CheckpointModTime(dir string, epoch uint64) (time.Time, bool) {
	fi, err := os.Stat(filepath.Join(dir, checkpointName(epoch)))
	if err != nil {
		return time.Time{}, false
	}
	return fi.ModTime(), true
}

// crcWriter tees writes through a running CRC32.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crcTable, p[:n])
	return n, err
}

// WriteCheckpoint atomically serialises g as the checkpoint at epoch in
// dir. The caller is responsible for rotating and pruning WAL segments
// around it.
func WriteCheckpoint(dir string, epoch uint64, g *graph.Graph) error {
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds

	bw := bufio.NewWriterSize(tmp, 1<<16)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(checkpointMagic)); err != nil {
		tmp.Close()
		return err
	}
	var scratch [10]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := cw.Write(scratch[:8])
		return err
	}
	if err := writeU64(epoch); err != nil {
		tmp.Close()
		return err
	}
	n := g.NumVertices()
	if err := writeU64(uint64(n)); err != nil {
		tmp.Close()
		return err
	}
	for v := 0; v < n; v++ {
		binary.LittleEndian.PutUint16(scratch[:2], uint16(g.VertexLabel(graph.VertexID(v))))
		if _, err := cw.Write(scratch[:2]); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := writeU64(uint64(g.NumEdges())); err != nil {
		tmp.Close()
		return err
	}
	var edgeErr error
	g.Edges(func(src, dst graph.VertexID, l graph.Label) bool {
		binary.LittleEndian.PutUint32(scratch[0:4], uint32(src))
		binary.LittleEndian.PutUint32(scratch[4:8], uint32(dst))
		binary.LittleEndian.PutUint16(scratch[8:10], uint16(l))
		if _, err := cw.Write(scratch[:10]); err != nil {
			edgeErr = err
			return false
		}
		return true
	})
	if edgeErr != nil {
		tmp.Close()
		return edgeErr
	}
	binary.LittleEndian.PutUint32(scratch[:4], cw.crc)
	if _, err := bw.Write(scratch[:4]); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	final := filepath.Join(dir, checkpointName(epoch))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs the directory so the rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadNewestCheckpoint finds the highest-epoch checkpoint in dir,
// validates it, and rebuilds its graph through the ordinary Builder with
// the given hub-index threshold. ok is false when dir holds no
// checkpoints (recovery then starts from the caller's base graph at
// epoch 0). A present-but-corrupt checkpoint is an error: silently
// falling back to an older state would lose acknowledged writes.
func LoadNewestCheckpoint(dir string, hubThreshold int) (g *graph.Graph, epoch uint64, ok bool, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, false, err
	}
	var epochs []uint64
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if e, ok := parseCheckpointName(ent.Name()); ok {
			epochs = append(epochs, e)
		}
	}
	if len(epochs) == 0 {
		return nil, 0, false, nil
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	newest := epochs[len(epochs)-1]
	g, err = loadCheckpoint(filepath.Join(dir, checkpointName(newest)), newest, hubThreshold)
	if err != nil {
		return nil, 0, false, err
	}
	return g, newest, true, nil
}

// DropCheckpointsBefore removes checkpoints older than limit, once a
// newer one is durable.
func DropCheckpointsBefore(dir string, limit uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if e, ok := parseCheckpointName(ent.Name()); ok && e < limit {
			if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

func loadCheckpoint(path string, wantEpoch uint64, hubThreshold int) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := filepath.Base(path)
	if len(data) < len(checkpointMagic)+4 || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("wal: checkpoint %s: bad magic", name)
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("wal: checkpoint %s: CRC mismatch", name)
	}
	b := payload[len(checkpointMagic):]
	need := func(n int) error {
		if len(b) < n {
			return fmt.Errorf("wal: checkpoint %s: truncated payload", name)
		}
		return nil
	}
	if err := need(16); err != nil {
		return nil, err
	}
	epoch := binary.LittleEndian.Uint64(b[:8])
	if epoch != wantEpoch {
		return nil, fmt.Errorf("wal: checkpoint %s: header epoch %d does not match file name", name, epoch)
	}
	nv := binary.LittleEndian.Uint64(b[8:16])
	b = b[16:]
	if nv > maxDecodeCount {
		return nil, fmt.Errorf("wal: checkpoint %s: vertex count %d out of range", name, nv)
	}
	if err := need(int(nv) * 2); err != nil {
		return nil, err
	}
	gb := graph.NewBuilder(int(nv))
	gb.SetHubThreshold(hubThreshold)
	for v := 0; v < int(nv); v++ {
		gb.SetVertexLabel(graph.VertexID(v), graph.Label(binary.LittleEndian.Uint16(b[v*2:])))
	}
	b = b[nv*2:]
	if err := need(8); err != nil {
		return nil, err
	}
	ne := binary.LittleEndian.Uint64(b[:8])
	b = b[8:]
	if ne > maxDecodeCount {
		return nil, fmt.Errorf("wal: checkpoint %s: edge count %d out of range", name, ne)
	}
	if err := need(int(ne) * 10); err != nil {
		return nil, err
	}
	for i := 0; i < int(ne); i++ {
		off := i * 10
		gb.AddEdge(
			graph.VertexID(binary.LittleEndian.Uint32(b[off:])),
			graph.VertexID(binary.LittleEndian.Uint32(b[off+4:])),
			graph.Label(binary.LittleEndian.Uint16(b[off+8:])),
		)
	}
	if len(b) != int(ne)*10 {
		return nil, fmt.Errorf("wal: checkpoint %s: %d trailing bytes", name, len(b)-int(ne)*10)
	}
	return gb.Build()
}

// RemoveStaleTemp deletes leftover checkpoint temp files from a crash
// mid-write; called once at store open.
func RemoveStaleTemp(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if !ent.IsDir() && strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}
