package wal

import (
	"encoding/binary"
	"fmt"

	"graphflow/internal/graph"
)

// EdgeOp names one directed labelled edge in a logged batch. It mirrors
// the live store's EdgeOp; the wal package stays below internal/live in
// the import graph, so the live store converts at the boundary.
type EdgeOp struct {
	Src, Dst graph.VertexID
	Label    graph.Label
}

// Record is one durable mutation batch plus the epoch its application
// produced. Replay filters on Epoch: records at or below a checkpoint's
// epoch are already folded into the checkpointed base and are skipped.
type Record struct {
	Epoch       uint64
	AddVertices []graph.Label
	AddEdges    []EdgeOp
	DeleteEdges []EdgeOp
}

// encode appends the record's varint wire form to buf.
func (r Record) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, r.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(r.AddVertices)))
	for _, l := range r.AddVertices {
		buf = binary.AppendUvarint(buf, uint64(l))
	}
	buf = appendOps(buf, r.AddEdges)
	buf = appendOps(buf, r.DeleteEdges)
	return buf
}

func appendOps(buf []byte, ops []EdgeOp) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, e := range ops {
		buf = binary.AppendUvarint(buf, uint64(e.Src))
		buf = binary.AppendUvarint(buf, uint64(e.Dst))
		buf = binary.AppendUvarint(buf, uint64(e.Label))
	}
	return buf
}

// decoder reads varints off a payload, latching the first error.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("wal: short or invalid varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) label() graph.Label {
	v := d.uvarint()
	if d.err == nil && v > 0xFFFF {
		d.err = fmt.Errorf("wal: label %d out of range", v)
	}
	return graph.Label(v)
}

func (d *decoder) vertex() graph.VertexID {
	v := d.uvarint()
	if d.err == nil && v > 0xFFFFFFFF {
		d.err = fmt.Errorf("wal: vertex id %d out of range", v)
	}
	return graph.VertexID(v)
}

// maxDecodeCount bounds per-record slice allocations against corrupt
// counts that passed the CRC (practically impossible, cheap to guard).
const maxDecodeCount = 1 << 28

func (d *decoder) count() int {
	v := d.uvarint()
	if d.err == nil && v > maxDecodeCount {
		d.err = fmt.Errorf("wal: count %d out of range", v)
	}
	return int(v)
}

func (d *decoder) ops() []EdgeOp {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]EdgeOp, 0, n)
	for i := 0; i < n; i++ {
		src, dst := d.vertex(), d.vertex()
		lab := d.label()
		if d.err != nil {
			return nil
		}
		out = append(out, EdgeOp{Src: src, Dst: dst, Label: lab})
	}
	return out
}

// decodeRecord parses one CRC-validated payload.
func decodeRecord(payload []byte) (Record, error) {
	d := &decoder{b: payload}
	var rec Record
	rec.Epoch = d.uvarint()
	nv := d.count()
	for i := 0; i < nv && d.err == nil; i++ {
		rec.AddVertices = append(rec.AddVertices, d.label())
	}
	rec.AddEdges = d.ops()
	rec.DeleteEdges = d.ops()
	if d.err != nil {
		return Record{}, d.err
	}
	if len(d.b) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after record", len(d.b))
	}
	return rec, nil
}
