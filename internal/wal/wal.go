// Package wal is the durability layer of the live store: an append-only
// write-ahead log of mutation batches plus atomic full-graph checkpoints,
// both living in one data directory.
//
// The log is a sequence of segment files wal-<epoch>.log. Each record is
// framed as
//
//	uint32 payload length | uint32 CRC32 (IEEE) of payload | payload
//
// (little-endian) where the payload encodes one mutation batch and the
// epoch it produced. A segment named wal-<E>.log holds only records with
// epochs greater than E; segments are rotated at checkpoint time, so the
// records covered by a durable checkpoint live entirely in older segments
// and can be deleted without scanning.
//
// Appends are written with a single write(2) per record — no user-space
// buffering spans records — and made durable according to a SyncPolicy:
// fsync per append (the default), a background interval fsync, or none
// (the OS page cache decides). Replay validates every frame; a torn final
// record (short header, short payload, or CRC mismatch at the tail of the
// newest segment) is dropped silently and the segment truncated to its
// last valid frame, which is exactly the state a crash mid-append leaves
// behind. The same damage in a non-final segment is data loss and fails
// recovery loudly.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphflow/internal/metrics"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncBatch fsyncs after every appended batch, before the epoch is
	// published: an acknowledged mutation survives power loss.
	SyncBatch SyncPolicy = iota
	// SyncInterval fsyncs from a background goroutine on a fixed period;
	// a crash may lose the last interval's worth of acknowledged batches.
	SyncInterval
	// SyncOff never fsyncs explicitly: records still hit the file with one
	// write(2) per append (surviving a process kill), but power loss may
	// drop whatever the page cache held.
	SyncOff
)

// ParseSyncPolicy maps the textual flag values onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "batch":
		return SyncBatch, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want batch, interval or off)", s)
}

// DefaultSyncInterval is the period of the SyncInterval background fsync
// when Options.Interval is zero.
const DefaultSyncInterval = 100 * time.Millisecond

// Options tunes a Log.
type Options struct {
	Policy   SyncPolicy
	Interval time.Duration // SyncInterval period; 0 takes DefaultSyncInterval
}

// frameHeaderSize is the per-record framing overhead: payload length plus
// CRC32, both uint32.
const frameHeaderSize = 8

// maxRecordSize rejects absurd frame lengths during replay so a corrupt
// length field cannot drive a giant allocation.
const maxRecordSize = 1 << 30

var crcTable = crc32.MakeTable(crc32.IEEE)

// segmentName returns the file name of the segment that holds records
// with epochs greater than start.
func segmentName(start uint64) string {
	return fmt.Sprintf("wal-%020d.log", start)
}

// parseSegmentName extracts the start epoch from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	e, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// listSegments returns the data directory's segment start epochs in
// ascending order.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var starts []uint64
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if s, ok := parseSegmentName(ent.Name()); ok {
			starts = append(starts, s)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// Log is the append end of the write-ahead log. All methods are safe for
// concurrent use, though the live store serialises appends under its own
// writer lock anyway.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // current segment, opened for append
	start    uint64   // current segment's start epoch
	size     int64    // bytes in the current segment
	total    int64    // bytes across all live segments
	appended int64    // records appended since open
	dirty    bool     // writes since the last fsync
	closed   bool

	// fsyncSeconds observes the latency of every durability fsync (the
	// SyncBatch per-append sync, the interval syncer's sync, and segment
	// rotation). The histogram lives here, not in a registry, so it
	// records from the moment the log opens; a metrics registry adopts
	// it later via FsyncHistogram.
	fsyncSeconds *metrics.Histogram

	stop chan struct{} // interval syncer shutdown
	done chan struct{}
}

// fsyncBuckets spans the realistic fsync range: tens of microseconds on
// battery-backed or lying storage up to hundreds of milliseconds on a
// busy spinning disk.
var fsyncBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// FsyncHistogram exposes the log's fsync-latency histogram for
// registration in a metrics registry.
func (l *Log) FsyncHistogram() *metrics.Histogram { return l.fsyncSeconds }

// syncFile fsyncs the current segment and observes the latency.
func (l *Log) syncFile() error {
	t0 := time.Now()
	err := l.f.Sync()
	l.fsyncSeconds.ObserveDuration(time.Since(t0))
	return err
}

// ReplayInfo reports what opening the log recovered.
type ReplayInfo struct {
	// Records is the number of valid records replayed.
	Records int
	// TornTail is true when the newest segment ended in a partial or
	// corrupt record that was dropped and truncated away.
	TornTail bool
	// Bytes is the total size of the valid log after truncation.
	Bytes int64
}

// Open replays every segment in dir (ascending start epoch), invoking fn
// for each valid record, truncates a torn tail off the newest segment,
// and returns a Log appending to that segment. When dir holds no
// segments, an empty one starting at startEpoch is created. fn may be nil
// when the caller only needs the append end.
func Open(dir string, startEpoch uint64, opts Options, fn func(Record) error) (*Log, ReplayInfo, error) {
	if opts.Interval <= 0 {
		opts.Interval = DefaultSyncInterval
	}
	starts, err := listSegments(dir)
	if err != nil {
		return nil, ReplayInfo{}, err
	}
	var info ReplayInfo
	var total int64
	for i, s := range starts {
		last := i == len(starts)-1
		path := filepath.Join(dir, segmentName(s))
		valid, n, torn, err := replaySegment(path, fn)
		if err != nil {
			return nil, ReplayInfo{}, err
		}
		info.Records += n
		if torn {
			if !last {
				return nil, ReplayInfo{}, fmt.Errorf("wal: segment %s is corrupt mid-log (valid prefix %d bytes) but newer segments exist", segmentName(s), valid)
			}
			info.TornTail = true
			if err := os.Truncate(path, valid); err != nil {
				return nil, ReplayInfo{}, fmt.Errorf("wal: truncating torn tail of %s: %w", segmentName(s), err)
			}
		}
		total += valid
	}
	l := &Log{
		dir: dir, opts: opts,
		fsyncSeconds: metrics.NewHistogram(fsyncBuckets),
		stop:         make(chan struct{}), done: make(chan struct{}),
	}
	cur := startEpoch
	if len(starts) > 0 {
		cur = starts[len(starts)-1]
	}
	if err := l.openSegment(cur); err != nil {
		return nil, ReplayInfo{}, err
	}
	// total already includes the (truncated) newest segment when one
	// existed; a freshly created segment is empty.
	l.total = total
	info.Bytes = l.total
	if opts.Policy == SyncInterval {
		go l.syncLoop()
	} else {
		close(l.done)
	}
	return l, info, nil
}

// openSegment opens (creating if needed) the segment starting at epoch
// for append, recording its current size. Caller holds l.mu or is the
// constructor.
func (l *Log) openSegment(start uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(start)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.f, l.start, l.size = f, start, st.Size()
	return nil
}

// syncLoop is the SyncInterval background fsync goroutine.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.stop:
			return
		}
	}
}

// Append frames and writes one record, making it durable per the sync
// policy before returning. The live store calls this before publishing
// the record's epoch, so an acknowledged batch is never newer than the
// log.
func (l *Log) Append(rec Record) error {
	payload := rec.encode(nil)
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	frame := append(hdr[:], payload...)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.total += int64(len(frame))
	l.appended++
	l.dirty = true
	if l.opts.Policy == SyncBatch {
		if err := l.syncFile(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.dirty = false
	}
	return nil
}

// Sync flushes pending writes to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || !l.dirty {
		return nil
	}
	if err := l.syncFile(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// Rotate syncs and closes the current segment and starts a fresh one
// whose records will all carry epochs greater than start. The caller
// (the live store's compaction path) must serialise Rotate against
// Append through its own writer lock; Rotate additionally holds the
// log's lock so interval fsyncs stay safe.
func (l *Log) Rotate(start uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if start <= l.start {
		return fmt.Errorf("wal: rotate to epoch %d not after current segment %d", start, l.start)
	}
	if l.dirty {
		if err := l.syncFile(); err != nil {
			return err
		}
		l.dirty = false
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(start)
}

// DropSegmentsBefore deletes segments whose start epoch is below limit —
// called after a checkpoint at epoch limit is durable, when every record
// those segments hold is covered by the checkpoint. The current segment
// is never dropped.
func (l *Log) DropSegmentsBefore(limit uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	starts, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, s := range starts {
		if s >= limit || s == l.start {
			continue
		}
		path := filepath.Join(l.dir, segmentName(s))
		st, err := os.Stat(path)
		if err == nil {
			l.total -= st.Size()
		}
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the total bytes across live segments.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Appended returns how many records this process appended since Open.
func (l *Log) Appended() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Close syncs and closes the log; further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.dirty {
		err = l.syncFile()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	return err
}

// replaySegment reads one segment, invoking fn per valid record. It
// returns the byte length of the valid prefix, the record count, and
// whether the segment ended in a torn (partial or corrupt) record.
func replaySegment(path string, fn func(Record) error) (valid int64, n int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, 0, false, err
	}
	off := 0
	for {
		if off == len(data) {
			return int64(off), n, false, nil
		}
		if len(data)-off < frameHeaderSize {
			return int64(off), n, true, nil
		}
		ln := binary.LittleEndian.Uint32(data[off : off+4])
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if ln > maxRecordSize || len(data)-off-frameHeaderSize < int(ln) {
			return int64(off), n, true, nil
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(ln)]
		if crc32.Checksum(payload, crcTable) != crc {
			return int64(off), n, true, nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			// The frame checksummed correctly but the payload is not a
			// record we understand — not a torn tail, a real corruption or
			// version problem.
			return int64(off), n, false, fmt.Errorf("wal: %s at offset %d: %w", filepath.Base(path), off, derr)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return int64(off), n, false, err
			}
		}
		off += frameHeaderSize + int(ln)
		n++
	}
}
