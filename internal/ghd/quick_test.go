package ghd

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphflow/internal/query"
)

// lpInstance generates random feasible covering LPs: minimize sum x over
// Ax >= b with 0/1 A and b = 1, plus a guaranteed-cover column of ones.
type lpInstance struct {
	A [][]float64
}

// Generate implements quick.Generator.
func (lpInstance) Generate(rng *rand.Rand, _ int) reflect.Value {
	m := 1 + rng.Intn(5)
	n := 1 + rng.Intn(6)
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			a[i][j] = float64(rng.Intn(2))
		}
		a[i][n] = 1 // all-ones column keeps the LP feasible
	}
	return reflect.ValueOf(lpInstance{a})
}

func TestQuickSimplexFeasibleBoundedCorrect(t *testing.T) {
	f := func(inst lpInstance) bool {
		m := len(inst.A)
		n := len(inst.A[0])
		c := make([]float64, n)
		for j := range c {
			c[j] = 1
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = 1
		}
		opt, x, err := solveLP(c, inst.A, b)
		if err != nil {
			return false
		}
		// Solution must be feasible...
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				if x[j] < -1e-9 {
					return false
				}
				lhs += inst.A[i][j] * x[j]
			}
			if lhs < 1-1e-6 {
				return false
			}
		}
		// ...its value must equal the reported optimum...
		sum := 0.0
		for _, v := range x {
			sum += v
		}
		if math.Abs(sum-opt) > 1e-6 {
			return false
		}
		// ...and the optimum is at most 1 (the all-ones column alone covers
		// everything with weight 1) and at least 0.
		return opt >= -1e-9 && opt <= 1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomConnQuery mirrors the optimizer package's generator (kept local:
// test helpers cannot be imported across packages).
type randomConnQuery struct{ Q *query.Graph }

// Generate implements quick.Generator.
func (randomConnQuery) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 2 + rng.Intn(4)
	q := &query.Graph{}
	for i := 0; i < n; i++ {
		q.Vertices = append(q.Vertices, query.Vertex{})
	}
	seen := map[[2]int]bool{}
	add := func(a, b int) {
		if a == b {
			return
		}
		k := [2]int{a, b}
		if a > b {
			k = [2]int{b, a}
		}
		if seen[k] {
			return
		}
		seen[k] = true
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		q.Edges = append(q.Edges, query.Edge{From: a, To: b})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
	}
	for k := 0; k < rng.Intn(2*n); k++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	return reflect.ValueOf(randomConnQuery{q})
}

func TestQuickFECBounds(t *testing.T) {
	// For any connected query: m/2-ish lower bounds apply; we check the
	// universal ones: fec >= n/2 (every edge covers 2 vertices) and
	// fec <= n-1 (a spanning set of edges with weight 1 covers everything,
	// n-1 edges suffice... use m as the loose upper bound).
	f := func(rq randomConnQuery) bool {
		q := rq.Q
		n := float64(q.NumVertices())
		fec := FractionalEdgeCover(q, query.AllMask(q.NumVertices()))
		if math.IsInf(fec, 1) {
			return false // connected queries with >=1 edge are coverable
		}
		return fec >= n/2-1e-6 && fec <= float64(q.NumEdges())+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecompositionWidthsConsistent(t *testing.T) {
	// Every enumerated decomposition's width equals the max bag cover, and
	// the single-bag decomposition is always present.
	f := func(rq randomConnQuery) bool {
		q := rq.Q
		ds := Enumerate(q, 2)
		if len(ds) == 0 {
			return false
		}
		sawFull := false
		full := query.AllMask(q.NumVertices())
		for _, d := range ds {
			maxW := 0.0
			for _, bag := range d.Bags {
				w := FractionalEdgeCover(q, bag)
				if w > maxW {
					maxW = w
				}
			}
			if math.Abs(maxW-d.Width) > 1e-6 {
				return false
			}
			if len(d.Bags) == 1 && d.Bags[0] == full {
				sawFull = true
			}
		}
		return sawFull
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinWidthIsMinimum(t *testing.T) {
	f := func(rq randomConnQuery) bool {
		ds := Enumerate(rq.Q, 2)
		best := MinWidth(ds)
		if len(best) == 0 {
			return false
		}
		for _, d := range ds {
			if d.Width < best[0].Width-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
