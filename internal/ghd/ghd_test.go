package ghd

import (
	"math"
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/exec"
	"graphflow/internal/query"
)

func TestSolveLPBasic(t *testing.T) {
	// min x1 + x2 s.t. x1 + x2 >= 1, x1 >= 0.5 -> opt 1 (x1=0.5..1).
	opt, x, err := solveLP(
		[]float64{1, 1},
		[][]float64{{1, 1}, {1, 0}},
		[]float64{1, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-1) > 1e-6 {
		t.Errorf("opt = %v, want 1", opt)
	}
	if x[0] < 0.5-1e-9 {
		t.Errorf("x = %v violates x1 >= 0.5", x)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	// x1 >= 1 and -x1 >= 0 is infeasible (x1 <= 0 and x1 >= 1).
	_, _, err := solveLP([]float64{1}, [][]float64{{1}, {-1}}, []float64{1, 0})
	if err == nil {
		t.Error("expected infeasibility")
	}
}

func TestFractionalEdgeCoverKnownValues(t *testing.T) {
	cases := []struct {
		q    *query.Graph
		want float64
	}{
		{query.Q1(), 1.5},  // triangle: AGM exponent 3/2
		{query.Q2(), 2.0},  // 4-cycle: 2
		{query.Q12(), 3.0}, // 6-cycle: 3
		{query.MustParse("a->b"), 1.0},
		{query.Q11(), 3.0}, // 4-path: n - max matching = 5 - 2 = 3
		{query.Q6(), 2.0},  // 4-clique: 4/2 = 2
		{query.Q7(), 2.5},  // 5-clique: 5/2
	}
	for _, c := range cases {
		got := FractionalEdgeCover(c.q, query.AllMask(c.q.NumVertices()))
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("fec(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestFractionalEdgeCoverInfeasibleBag(t *testing.T) {
	q := query.Q1()
	// Bag {a1, a2} of the triangle has edge a1->a2: feasible, cover 1.
	if got := FractionalEdgeCover(q, query.Bit(0)|query.Bit(1)); math.Abs(got-1) > 1e-6 {
		t.Errorf("edge bag cover = %v, want 1", got)
	}
}

func TestEnumerateSingleAndTwoBag(t *testing.T) {
	ds := Enumerate(query.Q8(), 2)
	if len(ds) == 0 {
		t.Fatal("no decompositions")
	}
	// Q8 (two triangles sharing a3): the two-triangle decomposition has
	// width 1.5, beating the single bag.
	best := MinWidth(ds)
	if len(best) == 0 {
		t.Fatal("no min-width decomposition")
	}
	if math.Abs(best[0].Width-1.5) > 1e-6 {
		t.Errorf("Q8 min width = %v, want 1.5", best[0].Width)
	}
	if len(best[0].Bags) != 2 {
		t.Errorf("Q8 best decomposition should have 2 bags, got %d", len(best[0].Bags))
	}
}

func TestEnumerateSingleBagForClique(t *testing.T) {
	// Cliques cannot be usefully decomposed: the single bag must win.
	ds := MinWidth(Enumerate(query.Q6(), 2))
	if len(ds[0].Bags) != 1 {
		t.Errorf("4-clique min-width GHD should be a single bag, got %d bags (width %v)", len(ds[0].Bags), ds[0].Width)
	}
}

func TestLexicographicOrders(t *testing.T) {
	q := query.Q1()
	d := Decomposition{Bags: []query.Mask{query.AllMask(3)}, Parent: []int{-1}}
	orders := LexicographicOrders(q, d)
	want := []int{0, 1, 2} // a1, a2, a3 — already connected
	got := orders[0]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lex order = %v, want %v", got, want)
		}
	}
}

func TestBuildPlanSingleBagMatchesReference(t *testing.T) {
	g := datagen.Amazon(1)
	q := query.Q1()
	ds := MinWidth(Enumerate(q, 2))
	p, err := BuildPlan(q, ds[0], LexicographicOrders(q, ds[0]))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := (&exec.Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := query.RefCount(g, q); got != want {
		t.Errorf("EH triangle count = %d, want %d", got, want)
	}
}

func TestBuildPlanTwoBagMatchesReference(t *testing.T) {
	g := datagen.CoPurchase(datagen.CoPurchaseConfig{N: 400, K: 4, Rewire: 0.2, Seed: 21})
	q := query.Q8()
	ds := MinWidth(Enumerate(q, 2))
	var twoBag *Decomposition
	for i := range ds {
		if len(ds[i].Bags) == 2 {
			twoBag = &ds[i]
			break
		}
	}
	if twoBag == nil {
		t.Fatal("no 2-bag min-width GHD for Q8")
	}
	p, err := BuildPlan(q, *twoBag, LexicographicOrders(q, *twoBag))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := (&exec.Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := query.RefCount(g, q); got != want {
		t.Errorf("EH two-bag count = %d, want %d", got, want)
	}
}

func TestBuildPlanQ10(t *testing.T) {
	// Q10's projection-compliant GHD: diamond + triangle joined on a4
	// (Appendix A). Verify a 2-bag plan evaluates correctly.
	g := datagen.CoPurchase(datagen.CoPurchaseConfig{N: 300, K: 4, Rewire: 0.25, Seed: 23})
	q := query.Q10()
	ds := MinWidth(Enumerate(q, 2))
	if len(ds) == 0 {
		t.Fatal("no decompositions")
	}
	p, err := BuildPlan(q, ds[0], LexicographicOrders(q, ds[0]))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := (&exec.Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := query.RefCount(g, q); got != want {
		t.Errorf("EH Q10 count = %d, want %d (decomp %v)", got, want, ds[0])
	}
}

func TestThreeBagChains(t *testing.T) {
	// A 6-path decomposes into three overlapping 3-vertex path bags.
	q := query.Q13()
	ds := Enumerate(q, 3)
	found := false
	for _, d := range ds {
		if len(d.Bags) == 3 {
			found = true
			// Verify correctness of one such plan.
			g := datagen.CoPurchase(datagen.CoPurchaseConfig{N: 200, K: 3, Rewire: 0.3, Seed: 29})
			p, err := BuildPlan(q, d, LexicographicOrders(q, d))
			if err != nil {
				continue
			}
			got, _, err := (&exec.Runner{Graph: g}).Count(p)
			if err != nil {
				t.Fatal(err)
			}
			if want := query.RefCount(g, q); got != want {
				t.Errorf("3-bag chain count = %d, want %d (%v)", got, want, d)
			}
			break
		}
	}
	if !found {
		t.Error("no 3-bag chain enumerated for the 6-path")
	}
}
