// Package ghd reimplements EmptyHeaded's planning strategy (the paper's
// closest baseline, Section 8.4): queries are decomposed into generalized
// hypertree decompositions (GHDs); each bag is evaluated with a WCO plan
// whose query-vertex ordering EmptyHeaded does not optimise (it uses the
// lexicographic order of the user's variables); bags are materialised and
// hash-joined up the tree. The decomposition picked is one of minimum
// width, where a bag's width is its AGM exponent — the optimal value of
// its fractional-edge-cover LP, solved exactly by the simplex solver in
// this package.
//
// Bags here are induced subqueries (the projection constraint); Appendix A
// of the paper verifies that the GHDs EmptyHeaded picks for all Figure 6
// queries satisfy this constraint, so the emulation is faithful on the
// entire benchmark suite.
package ghd

import (
	"fmt"
	"math"
	"sort"

	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// Decomposition is a GHD: a tree of bags (connected vertex subsets of the
// query). Parent[i] is the tree parent of bag i (-1 for the root).
type Decomposition struct {
	Bags   []query.Mask
	Parent []int
	// Width is max over bags of the bag's fractional edge cover number.
	Width float64
}

// String summarises the decomposition.
func (d Decomposition) String() string {
	return fmt.Sprintf("ghd{bags=%d width=%.2f}", len(d.Bags), d.Width)
}

// FractionalEdgeCover returns the minimum fractional edge cover of the
// projection of q onto mask: the bag's AGM-bound exponent. Infeasible bags
// (an isolated vertex) return +Inf.
func FractionalEdgeCover(q *query.Graph, mask query.Mask) float64 {
	sub, _ := q.Project(mask)
	nEdges := len(sub.Edges)
	nVerts := len(sub.Vertices)
	if nVerts == 0 {
		return 0
	}
	if nEdges == 0 {
		return math.Inf(1)
	}
	c := make([]float64, nEdges)
	for j := range c {
		c[j] = 1
	}
	a := make([][]float64, nVerts)
	b := make([]float64, nVerts)
	for i := 0; i < nVerts; i++ {
		a[i] = make([]float64, nEdges)
		b[i] = 1
	}
	for j, e := range sub.Edges {
		a[e.From][j] = 1
		a[e.To][j] = 1
	}
	opt, _, err := solveLP(c, a, b)
	if err != nil {
		return math.Inf(1)
	}
	return opt
}

// Enumerate lists candidate GHDs for q with up to maxBags bags (1, 2, or
// 3-bag chains), each bag connected, every query edge inside at least one
// bag, and adjacent bags sharing vertices; 3-bag chains additionally
// satisfy the running-intersection property. Widths are filled in.
func Enumerate(q *query.Graph, maxBags int) []Decomposition {
	n := q.NumVertices()
	full := query.AllMask(n)
	fec := map[query.Mask]float64{}
	cover := func(mask query.Mask) float64 {
		if w, ok := fec[mask]; ok {
			return w
		}
		w := FractionalEdgeCover(q, mask)
		fec[mask] = w
		return w
	}

	var out []Decomposition
	out = append(out, Decomposition{Bags: []query.Mask{full}, Parent: []int{-1}, Width: cover(full)})
	if maxBags < 2 {
		return out
	}
	conn := q.ConnectedSubsets(2)
	covered := func(bags []query.Mask) bool {
		for _, e := range q.Edges {
			eb := query.Bit(e.From) | query.Bit(e.To)
			inside := false
			for _, bag := range bags {
				if eb&^bag == 0 {
					inside = true
					break
				}
			}
			if !inside {
				return false
			}
		}
		return true
	}

	seen := map[string]bool{}
	addPair := func(m1, m2 query.Mask) {
		if m1 > m2 {
			m1, m2 = m2, m1
		}
		key := fmt.Sprintf("2:%d:%d", m1, m2)
		if seen[key] {
			return
		}
		seen[key] = true
		w := math.Max(cover(m1), cover(m2))
		out = append(out, Decomposition{Bags: []query.Mask{m1, m2}, Parent: []int{-1, 0}, Width: w})
	}
	for _, m1 := range conn {
		if m1 == full {
			continue
		}
		for _, m2 := range conn {
			if m2 == full || m1 >= m2 {
				continue
			}
			if m1|m2 != full || m1&m2 == 0 {
				continue
			}
			if m1&^m2 == 0 || m2&^m1 == 0 {
				continue // one bag subsumes the other
			}
			if covered([]query.Mask{m1, m2}) {
				addPair(m1, m2)
			}
		}
	}
	if maxBags < 3 {
		sortDecompositions(out)
		return out
	}
	for _, m1 := range conn {
		for _, m2 := range conn {
			if m1 == m2 || m1&m2 == 0 {
				continue
			}
			for _, m3 := range conn {
				if m3 == m1 || m3 == m2 || m2&m3 == 0 {
					continue
				}
				if m1|m2|m3 != full {
					continue
				}
				// Running intersection for the chain m1-m2-m3.
				if (m1&m3)&^m2 != 0 {
					continue
				}
				if m1&^(m2|m3) == 0 || m3&^(m1|m2) == 0 || m2&^m1 == 0 || m2&^m3 == 0 {
					continue // degenerate chains
				}
				if !covered([]query.Mask{m1, m2, m3}) {
					continue
				}
				key := fmt.Sprintf("3:%d:%d:%d", m1, m2, m3)
				rev := fmt.Sprintf("3:%d:%d:%d", m3, m2, m1)
				if seen[key] || seen[rev] {
					continue
				}
				seen[key] = true
				w := math.Max(cover(m1), math.Max(cover(m2), cover(m3)))
				out = append(out, Decomposition{
					Bags:   []query.Mask{m2, m1, m3}, // root the chain at the middle
					Parent: []int{-1, 0, 0},
					Width:  w,
				})
			}
		}
	}
	sortDecompositions(out)
	return out
}

func sortDecompositions(ds []Decomposition) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Width != ds[j].Width {
			return ds[i].Width < ds[j].Width
		}
		return len(ds[i].Bags) < len(ds[j].Bags)
	})
}

// MinWidth returns the minimum-width decompositions among ds (EmptyHeaded
// picks one of these, breaking ties arbitrarily; we keep them all so the
// Figure 9 spectrum can evaluate each).
func MinWidth(ds []Decomposition) []Decomposition {
	if len(ds) == 0 {
		return nil
	}
	best := math.Inf(1)
	for _, d := range ds {
		if d.Width < best {
			best = d.Width
		}
	}
	var out []Decomposition
	for _, d := range ds {
		if d.Width <= best+1e-9 {
			out = append(out, d)
		}
	}
	return out
}

// BuildPlan assembles the physical plan for decomposition d: each bag is a
// WCO chain following orders[bagIdx] (query vertex indices; every prefix
// must be connected within the bag), and each child bag's materialised
// matches are hash-joined into its parent, bottom-up.
func BuildPlan(q *query.Graph, d Decomposition, orders map[int][]int) (*plan.Plan, error) {
	if len(d.Bags) == 0 {
		return nil, fmt.Errorf("ghd: empty decomposition")
	}
	children := make([][]int, len(d.Bags))
	root := -1
	for i, p := range d.Parent {
		if p < 0 {
			root = i
		} else {
			children[p] = append(children[p], i)
		}
	}
	if root < 0 {
		return nil, fmt.Errorf("ghd: no root bag")
	}
	var build func(bag int) (plan.Node, error)
	build = func(bag int) (plan.Node, error) {
		node, err := bagWCOChain(q, d.Bags[bag], orders[bag])
		if err != nil {
			return nil, fmt.Errorf("bag %d: %w", bag, err)
		}
		for _, ch := range children[bag] {
			chNode, err := build(ch)
			if err != nil {
				return nil, err
			}
			// EmptyHeaded materialises the child bag and joins it in.
			hj, err := plan.NewHashJoin(chNode, node)
			if err != nil {
				return nil, fmt.Errorf("ghd: joining bag %d into %d: %w", ch, bag, err)
			}
			node = hj
		}
		return node, nil
	}
	rootNode, err := build(root)
	if err != nil {
		return nil, err
	}
	p := &plan.Plan{Query: q, Root: rootNode}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("ghd: invalid plan: %w", err)
	}
	return p, nil
}

// bagWCOChain builds the SCAN + E/I chain matching the bag's projection in
// the given vertex order.
func bagWCOChain(q *query.Graph, bag query.Mask, order []int) (plan.Node, error) {
	if len(order) < 2 {
		return nil, fmt.Errorf("ghd: order too short")
	}
	var first *query.Edge
	for _, e := range q.EdgesWithin(bag) {
		if (e.From == order[0] && e.To == order[1]) || (e.From == order[1] && e.To == order[0]) {
			ec := e
			first = &ec
			break
		}
	}
	if first == nil {
		return nil, fmt.Errorf("ghd: order %v does not start with a bag edge", order)
	}
	var node plan.Node = plan.NewScan(q, *first)
	covered := query.Bit(order[0]) | query.Bit(order[1])
	for _, v := range order[2:] {
		if bag&query.Bit(v) == 0 {
			return nil, fmt.Errorf("ghd: order vertex a%d outside bag", v+1)
		}
		// Descriptors must stay inside the bag: NewExtend derives them from
		// the full query, which equals the bag projection when the bag is
		// induced — enforced by construction (bags are vertex subsets).
		ext, err := newBagExtend(q, bag, node, v)
		if err != nil {
			return nil, err
		}
		node = ext
		covered |= query.Bit(v)
	}
	if covered != bag {
		return nil, fmt.Errorf("ghd: order %v does not cover bag", order)
	}
	return node, nil
}

// newBagExtend builds an E/I whose descriptors are the bag-internal edges
// between v and the already-matched vertices.
func newBagExtend(q *query.Graph, bag query.Mask, child plan.Node, v int) (*plan.Extend, error) {
	// plan.NewExtend uses all query edges between the child cover and v;
	// since the child cover is a subset of the bag and bags are induced
	// subqueries, those edges are exactly the bag-internal ones.
	return plan.NewExtend(q, child, v)
}

// LexicographicOrders returns EmptyHeaded's default ("bad") bag orderings:
// the lexicographic order of vertex names, adjusted minimally so every
// prefix is connected, with the heuristic that non-root bags start from
// the vertices shared with their parent (Section 8.4).
func LexicographicOrders(q *query.Graph, d Decomposition) map[int][]int {
	orders := map[int][]int{}
	for i, bag := range d.Bags {
		var shared query.Mask
		if d.Parent[i] >= 0 {
			shared = bag & d.Bags[d.Parent[i]]
		}
		orders[i] = lexOrder(q, bag, shared)
	}
	return orders
}

// lexOrder produces a connected-prefix ordering of the bag vertices,
// preferring preferred-mask vertices first and lexicographically smaller
// names within each class.
func lexOrder(q *query.Graph, bag query.Mask, preferred query.Mask) []int {
	var verts []int
	for v := 0; v < q.NumVertices(); v++ {
		if bag&query.Bit(v) != 0 {
			verts = append(verts, v)
		}
	}
	sort.Slice(verts, func(i, j int) bool {
		a, b := verts[i], verts[j]
		pa, pb := preferred&query.Bit(a) != 0, preferred&query.Bit(b) != 0
		if pa != pb {
			return pa
		}
		return q.Vertices[a].Name < q.Vertices[b].Name
	})
	var order []int
	mask := query.Mask(0)
	remaining := append([]int(nil), verts...)
	for len(remaining) > 0 {
		picked := -1
		for idx, v := range remaining {
			if len(order) == 0 {
				picked = idx
				_ = v
				break
			}
			if len(order) == 1 {
				// Second vertex must form a scannable edge with the first.
				ok := false
				for _, e := range q.EdgesWithin(bag) {
					if (e.From == order[0] && e.To == v) || (e.To == order[0] && e.From == v) {
						ok = true
						break
					}
				}
				if ok {
					picked = idx
					break
				}
				continue
			}
			if len(q.EdgesBetween(mask, v)) > 0 {
				picked = idx
				break
			}
		}
		if picked < 0 {
			picked = 0 // should not happen on connected bags
		}
		v := remaining[picked]
		order = append(order, v)
		mask |= query.Bit(v)
		remaining = append(remaining[:picked], remaining[picked+1:]...)
	}
	return order
}
