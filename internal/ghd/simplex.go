package ghd

import (
	"fmt"
	"math"
)

// solveLP minimises c·x subject to A·x >= b, x >= 0, with all b >= 0,
// using the two-phase primal simplex method with Bland's rule (which
// guarantees termination). The problem sizes here are tiny — fractional
// edge covers have one variable per query edge and one constraint per
// query vertex — so a dense tableau is ideal.
func solveLP(c []float64, a [][]float64, b []float64) (float64, []float64, error) {
	m, n := len(a), len(c)
	if m == 0 || n == 0 {
		return 0, nil, fmt.Errorf("ghd: empty LP")
	}
	for i := range b {
		if b[i] < 0 {
			return 0, nil, fmt.Errorf("ghd: negative rhs unsupported")
		}
	}
	// Columns: n original, m surplus, m artificial, then RHS.
	cols := n + 2*m
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, cols+1)
		copy(t[i], a[i])
		t[i][n+i] = -1       // surplus
		t[i][n+m+i] = 1      // artificial
		t[i][cols] = b[i]    // rhs
		basis[i] = n + m + i // artificials start basic
	}

	// Phase 1: minimise the sum of artificials.
	phase1 := make([]float64, cols)
	for j := n + m; j < cols; j++ {
		phase1[j] = 1
	}
	if opt := simplexIterate(t, basis, phase1, cols); opt > 1e-7 {
		return 0, nil, fmt.Errorf("ghd: infeasible LP")
	}
	// Drive any remaining artificial out of the basis if possible; if an
	// artificial row is identically zero the constraint was redundant.
	for i := 0; i < m; i++ {
		if basis[i] >= n+m {
			pivoted := false
			for j := 0; j < n+m && !pivoted; j++ {
				if math.Abs(t[i][j]) > 1e-9 {
					pivot(t, basis, i, j, cols)
					pivoted = true
				}
			}
		}
	}

	// Phase 2: artificial columns are frozen by giving them a prohibitive
	// cost through exclusion in the entering rule (simplexIterate never
	// enters columns >= limit when limit is passed via cost length).
	phase2 := make([]float64, cols)
	copy(phase2, c)
	for j := n + m; j < cols; j++ {
		phase2[j] = math.Inf(1) // never profitable to enter
	}
	opt := simplexIterate(t, basis, phase2, cols)

	x := make([]float64, n)
	for i, bj := range basis {
		if bj < n {
			x[bj] = t[i][cols]
		}
	}
	return opt, x, nil
}

// simplexIterate runs primal simplex on tableau t with the given cost
// vector, returning the optimal objective value.
func simplexIterate(t [][]float64, basis []int, cost []float64, cols int) float64 {
	m := len(t)
	// Build the reduced-cost row: cost - sum over basic rows.
	obj := make([]float64, cols+1)
	copy(obj, cost)
	for j := range obj[:cols] {
		if math.IsInf(obj[j], 1) {
			obj[j] = 0 // frozen columns handled by skip below
		}
	}
	frozen := make([]bool, cols)
	for j := 0; j < cols; j++ {
		if math.IsInf(cost[j], 1) {
			frozen[j] = true
		}
	}
	for i := 0; i < m; i++ {
		cb := 0.0
		if !frozen[basis[i]] {
			cb = cost[basis[i]]
		}
		if cb != 0 {
			for j := 0; j <= cols; j++ {
				obj[j] -= cb * t[i][j]
			}
		}
	}
	for iter := 0; iter < 10000; iter++ {
		// Bland's rule: smallest-index column with negative reduced cost.
		enter := -1
		for j := 0; j < cols; j++ {
			if frozen[j] {
				continue
			}
			if obj[j] < -1e-9 {
				enter = j
				break
			}
		}
		if enter < 0 {
			break
		}
		// Ratio test, Bland tie-break on basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > 1e-9 {
				r := t[i][cols] / t[i][enter]
				if r < bestRatio-1e-12 || (math.Abs(r-bestRatio) <= 1e-12 && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return math.Inf(-1) // unbounded; cannot happen for edge covers
		}
		pivotWithObj(t, basis, obj, leave, enter, cols)
	}
	return -obj[cols]
}

func pivot(t [][]float64, basis []int, row, col, cols int) {
	p := t[row][col]
	for j := 0; j <= cols; j++ {
		t[row][j] /= p
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= cols; j++ {
			t[i][j] -= f * t[row][j]
		}
	}
	basis[row] = col
}

func pivotWithObj(t [][]float64, basis []int, obj []float64, row, col, cols int) {
	pivot(t, basis, row, col, cols)
	f := obj[col]
	if f != 0 {
		for j := 0; j <= cols; j++ {
			obj[j] -= f * t[row][j]
		}
	}
}
