package difftest

import (
	"math/rand"
	"testing"
)

// runCorpus checks numGraphs random graphs × patternsPer random patterns
// against the BJ reference.
func runCorpus(t *testing.T, firstSeed int64, numGraphs, patternsPer int) {
	t.Helper()
	skipped := 0
	for gi := 0; gi < numGraphs; gi++ {
		seed := firstSeed + int64(gi)
		g := GenGraph(seed)
		db, err := OpenDB(g)
		if err != nil {
			t.Fatalf("graph seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 7919))
		for pi := 0; pi < patternsPer; pi++ {
			q := GenPattern(rng)
			res, err := ComparePair(db, g, q)
			if err != nil {
				t.Fatalf("graph seed %d pattern %d: %v", seed, pi, err)
			}
			if res.Skipped {
				skipped++
				continue
			}
			if res.Got != res.Want {
				t.Errorf("graph seed %d: %s plan of %q counted %d, BJ reference %d",
					seed, res.PlanKind, res.Pattern, res.Got, res.Want)
			}
			if res.GotWCO != res.Want {
				t.Errorf("graph seed %d: WCO plan of %q counted %d, BJ reference %d",
					seed, res.Pattern, res.GotWCO, res.Want)
			}
		}
	}
	total := numGraphs * patternsPer
	if skipped > total/2 {
		t.Errorf("%d/%d pairs skipped on the reference budget; corpus too thin", skipped, total)
	}
	t.Logf("corpus: %d pairs, %d skipped", total-skipped, skipped)
}

// TestDifferentialBounded is the always-on corpus: small enough for the
// race-enabled CI job, broad enough to catch planner/executor drift.
func TestDifferentialBounded(t *testing.T) {
	runCorpus(t, 1000, 10, 15)
}

// TestDifferentialExtended is the larger corpus, skipped under -short.
func TestDifferentialExtended(t *testing.T) {
	if testing.Short() {
		t.Skip("extended differential corpus skipped in -short mode")
	}
	runCorpus(t, 5000, 40, 25)
}
