package difftest

import (
	"math/rand"
	"testing"

	"graphflow"
	"graphflow/internal/query"
)

// runCorpus checks numGraphs random graphs × patternsPer random patterns
// against the BJ reference.
func runCorpus(t *testing.T, firstSeed int64, numGraphs, patternsPer int) {
	t.Helper()
	skipped := 0
	for gi := 0; gi < numGraphs; gi++ {
		seed := firstSeed + int64(gi)
		g := GenGraph(seed)
		db, err := OpenDB(g)
		if err != nil {
			t.Fatalf("graph seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 7919))
		for pi := 0; pi < patternsPer; pi++ {
			q := GenPattern(rng)
			res, err := ComparePair(db, g, q)
			if err != nil {
				t.Fatalf("graph seed %d pattern %d: %v", seed, pi, err)
			}
			if res.Skipped {
				skipped++
				continue
			}
			if res.Got != res.Want {
				t.Errorf("graph seed %d: %s plan of %q counted %d, BJ reference %d",
					seed, res.PlanKind, res.Pattern, res.Got, res.Want)
			}
			if res.GotWCO != res.Want {
				t.Errorf("graph seed %d: WCO plan of %q counted %d, BJ reference %d",
					seed, res.Pattern, res.GotWCO, res.Want)
			}
		}
	}
	total := numGraphs * patternsPer
	if skipped > total/2 {
		t.Errorf("%d/%d pairs skipped on the reference budget; corpus too thin", skipped, total)
	}
	t.Logf("corpus: %d pairs, %d skipped", total-skipped, skipped)
}

// TestDifferentialBounded is the always-on corpus: small enough for the
// race-enabled CI job, broad enough to catch planner/executor drift.
func TestDifferentialBounded(t *testing.T) {
	runCorpus(t, 1000, 10, 15)
}

// TestDifferentialExtended is the larger corpus, skipped under -short.
func TestDifferentialExtended(t *testing.T) {
	if testing.Short() {
		t.Skip("extended differential corpus skipped in -short mode")
	}
	runCorpus(t, 5000, 40, 25)
}

// TestDifferentialHubThresholds runs the random (graph, pattern) corpus
// with the hub bitset threshold forced to its two extremes — 1, indexing
// every adjacency partition so all eligible intersections dispatch to
// the bitset probe/AND kernels, and -1, indexing none so everything
// stays on the sorted merge/gallop kernels — and requires the two
// engines (hybrid and WCO-restricted plans on each) to agree with each
// other and with the BJ reference. Any representation-dependent
// divergence in the degree-adaptive engine shows up as a count mismatch.
func TestDifferentialHubThresholds(t *testing.T) {
	numGraphs, patternsPer := 6, 8
	skipped := 0
	for gi := 0; gi < numGraphs; gi++ {
		seed := int64(20000 + gi)
		g := GenGraph(seed)
		dbAll, err := OpenDBHub(g, 1)
		if err != nil {
			t.Fatalf("graph seed %d (all hubs): %v", seed, err)
		}
		dbNone, err := OpenDBHub(g, -1)
		if err != nil {
			t.Fatalf("graph seed %d (no hubs): %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 104729))
		for pi := 0; pi < patternsPer; pi++ {
			q := GenPattern(rng)
			resAll, err := ComparePair(dbAll, g, q)
			if err != nil {
				t.Fatalf("graph seed %d pattern %d (all hubs): %v", seed, pi, err)
			}
			resNone, err := ComparePair(dbNone, g, q)
			if err != nil {
				t.Fatalf("graph seed %d pattern %d (no hubs): %v", seed, pi, err)
			}
			if resAll.Skipped || resNone.Skipped {
				skipped++
				continue
			}
			for _, c := range []struct {
				name string
				got  int64
			}{
				{"all-hubs hybrid", resAll.Got},
				{"all-hubs WCO", resAll.GotWCO},
				{"no-hubs hybrid", resNone.Got},
				{"no-hubs WCO", resNone.GotWCO},
			} {
				if c.got != resAll.Want {
					t.Errorf("graph seed %d: %s count of %q = %d, BJ reference %d",
						seed, c.name, resAll.Pattern, c.got, resAll.Want)
				}
			}
		}
	}
	total := numGraphs * patternsPer
	if skipped > total/2 {
		t.Errorf("%d/%d pairs skipped on the reference budget; corpus too thin", skipped, total)
	}
	t.Logf("hub-threshold corpus: %d pairs, %d skipped", total-skipped, skipped)
}

// runLiveCorpus checks numTrials live-mutation trials of batchesPer
// rounds each: every round is one (graph, mutation batch, pattern)
// triple whose hybrid and WCO counts on the live snapshot must equal the
// BJ reference on a from-scratch rebuild of the same logical graph.
func runLiveCorpus(t *testing.T, firstSeed int64, numTrials, batchesPer int) {
	t.Helper()
	checked, skipped := 0, 0
	for i := 0; i < numTrials; i++ {
		seed := firstSeed + int64(i)
		results, err := RunLiveTrial(seed, batchesPer)
		if err != nil {
			t.Fatalf("live trial seed %d: %v", seed, err)
		}
		for _, res := range results {
			if res.Skipped {
				skipped++
				continue
			}
			checked++
			if res.Got != res.Want {
				t.Errorf("seed %d: %s plan of %q on live snapshot counted %d, rebuild reference %d",
					seed, res.PlanKind, res.Pattern, res.Got, res.Want)
			}
			if res.GotWCO != res.Want {
				t.Errorf("seed %d: WCO plan of %q on live snapshot counted %d, rebuild reference %d",
					seed, res.Pattern, res.GotWCO, res.Want)
			}
		}
	}
	total := numTrials * batchesPer
	if skipped > total/2 {
		t.Errorf("%d/%d live triples skipped on the reference budget; corpus too thin", skipped, total)
	}
	t.Logf("live corpus: %d triples checked, %d skipped", checked, skipped)
}

// TestDifferentialLiveBounded is the always-on mutation corpus.
func TestDifferentialLiveBounded(t *testing.T) {
	runLiveCorpus(t, 9000, 12, 2)
}

// TestDifferentialLiveExtended covers >= 200 (graph, mutation batch,
// pattern) triples; skipped under -short, run with -race in CI.
func TestDifferentialLiveExtended(t *testing.T) {
	if testing.Short() {
		t.Skip("extended live-mutation corpus skipped in -short mode")
	}
	runLiveCorpus(t, 12000, 110, 2)
}

// TestDifferentialSnapshotIsolation checks that a query started before
// a mutation batch never observes it: a Match over the asymmetric
// triangles of a K4 applies a triangle-adding batch from inside its
// callback, and the enumeration must still deliver exactly the
// pre-mutation matches while the next query sees the new triangle.
func TestDifferentialSnapshotIsolation(t *testing.T) {
	b := graphflow.NewBuilder(4)
	for i := uint32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j, 0)
		}
	}
	db, err := b.Open(&graphflow.Options{CatalogueZ: 50, CatalogueH: 2, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	const tri = "a->b, b->c, a->c"
	before, err := db.Count(tri, nil)
	if err != nil {
		t.Fatal(err)
	}
	if before != 4 {
		t.Fatalf("K4 asymmetric triangles = %d, want 4", before)
	}

	rows := int64(0)
	mutated := false
	err = db.Match(tri, func(map[string]uint32) bool {
		rows++
		if !mutated {
			mutated = true
			// Add a disjoint triangle on three fresh vertices mid-query.
			if _, err := db.Apply(graphflow.Batch{
				AddVertices: []uint16{0, 0, 0},
				AddEdges: []graphflow.EdgeOp{
					{Src: 4, Dst: 5, Label: 0},
					{Src: 5, Dst: 6, Label: 0},
					{Src: 4, Dst: 6, Label: 0},
				},
			}); err != nil {
				t.Errorf("mid-query Apply: %v", err)
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows != before {
		t.Fatalf("query running across the batch saw %d matches, want the pre-mutation %d", rows, before)
	}
	after, err := db.Count(tri, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after != before+1 {
		t.Fatalf("post-mutation count = %d, want %d", after, before+1)
	}
}

// TestDifferentialBatchSizes runs the random (graph, pattern) corpus
// through the batch-size matrix: every entry must produce identical
// counts (sequential and parallel) and identical sorted tuple sets at
// batch sizes {1, 3, 64, 1024} and under the tuple-at-a-time oracle.
func TestDifferentialBatchSizes(t *testing.T) {
	numGraphs, patternsPer := 6, 8
	if testing.Short() {
		numGraphs, patternsPer = 3, 5
	}
	for gi := 0; gi < numGraphs; gi++ {
		seed := int64(30000 + gi)
		g := GenGraph(seed)
		db, err := OpenDB(g)
		if err != nil {
			t.Fatalf("graph seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 31337))
		for pi := 0; pi < patternsPer; pi++ {
			if err := CompareBatchMatrix(db, GenPattern(rng)); err != nil {
				t.Errorf("graph seed %d pattern %d: %v", seed, pi, err)
			}
		}
	}
}

// TestDifferentialFactorized sweeps factorized star-suffix execution
// against the tuple-at-a-time oracle: identical full counts with
// factorization on and off, exact Limit caps under Workers=4 (the
// shared-budget product claiming), and identical sorted tuple sets from
// the lazy unfold. The corpus mixes random patterns (some with star
// suffixes, some without) with fixed star-heavy shapes where whole
// suffixes factorize.
func TestDifferentialFactorized(t *testing.T) {
	numGraphs, patternsPer := 5, 6
	if testing.Short() {
		numGraphs, patternsPer = 3, 4
	}
	// Star-heavy fixed shapes: a 3-leaf star, a triangle with two leaves
	// hanging off it, and a two-hop path fanning into a 2-leaf star.
	stars := []string{
		"a->b, a->c, a->d",
		"a->b, b->c, a->c, a->d, c->e",
		"a->b, b->c, c->d, c->e",
	}
	for gi := 0; gi < numGraphs; gi++ {
		seed := int64(40000 + gi)
		g := GenGraph(seed)
		db, err := OpenDB(g)
		if err != nil {
			t.Fatalf("graph seed %d: %v", seed, err)
		}
		for si, s := range stars {
			q, err := query.Parse(s)
			if err != nil {
				t.Fatalf("star %d: %v", si, err)
			}
			if err := CompareFactorized(db, q); err != nil {
				t.Errorf("graph seed %d star %d: %v", seed, si, err)
			}
		}
		rng := rand.New(rand.NewSource(seed * 48611))
		for pi := 0; pi < patternsPer; pi++ {
			if err := CompareFactorized(db, GenPattern(rng)); err != nil {
				t.Errorf("graph seed %d pattern %d: %v", seed, pi, err)
			}
		}
	}
}

// TestDifferentialFactorizedLive runs the factorized sweep across live
// mutation batches: after each batch the factorized counts and caps on
// the live snapshot must agree with the oracle on the same snapshot.
func TestDifferentialFactorizedLive(t *testing.T) {
	numTrials, batchesPer := 4, 2
	if testing.Short() {
		numTrials = 2
	}
	for i := 0; i < numTrials; i++ {
		seed := int64(46000 + i)
		rng := rand.New(rand.NewSource(seed))
		g := GenGraph(seed)
		db, err := OpenLiveDB(g, []int{10, -1}[rng.Intn(2)])
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sh := NewShadow(g)
		for b := 0; b < batchesPer; b++ {
			batch := GenBatch(rng, sh)
			if _, err := db.Apply(batch); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, b, err)
			}
			sh.Apply(batch)
			if err := CompareFactorized(db, GenPattern(rng)); err != nil {
				t.Errorf("seed %d batch %d: %v", seed, b, err)
			}
		}
		db.WaitCompaction()
	}
}

// TestDifferentialBatchLimits is the Limit/RunUntil cap regression: at
// every batch size (and the oracle), with Workers > 1, Count with a
// Limit and Match with a Limit must deliver exactly the capped number of
// results — never limit±overshoot from racing batch flushes.
func TestDifferentialBatchLimits(t *testing.T) {
	const pattern = "a->b, b->c, a->c"
	// Deterministically pick the first corpus graph with enough matches
	// for the caps to bite.
	var db *graphflow.DB
	var full int64
	for seed := int64(424242); seed < 424262; seed++ {
		g := GenGraph(seed)
		d, err := OpenDB(g)
		if err != nil {
			t.Fatal(err)
		}
		n, err := d.Count(pattern, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n >= 20 {
			db, full = d, n
			break
		}
	}
	if db == nil {
		t.Fatal("no corpus graph with >= 20 triangles in seed window")
	}
	sizes := append([]int{-1}, BatchSizes...)
	for _, bs := range sizes {
		for _, limit := range []int64{1, 5, full - 1, full + 50} {
			wantN := limit
			if limit > full {
				wantN = full
			}
			opts := &graphflow.QueryOptions{BatchSize: bs, Workers: 4, Limit: limit}
			n, err := db.Count(pattern, opts)
			if err != nil {
				t.Fatal(err)
			}
			if n != wantN {
				t.Errorf("bs=%d limit=%d: Count = %d, want %d", bs, limit, n, wantN)
			}
			delivered := int64(0)
			err = db.Match(pattern, func(map[string]uint32) bool {
				delivered++
				return true
			}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if delivered != wantN {
				t.Errorf("bs=%d limit=%d: Match delivered %d rows, want %d", bs, limit, delivered, wantN)
			}
		}
	}
}
