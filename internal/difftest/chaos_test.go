package difftest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"graphflow"
	"graphflow/internal/exec"
	"graphflow/internal/faultinject"
	"graphflow/internal/resource"
	"graphflow/internal/server"
)

// The chaos sweep: storms of concurrent queries where a deterministic
// fraction is sabotaged — starved of memory budget or killed by an
// injected panic — while the rest must keep returning exact counts.
// After the storm every resource the engine hands out must be back:
// governor reservations at zero, admission slots free, goroutines at
// baseline. Bounded to run as a CI smoke test under -race.

var chaosPatterns = []string{
	"a->b, b->c, a->c", // cyclic: exercises intersection + hash-join plans
	"a->b, a->c, a->d", // star: exercises the factorized tail
}

// chaosMode is the deterministic per-query sabotage schedule.
type chaosMode int

const (
	modeClean chaosMode = iota
	modeBudget
	modePanic
	numModes
)

// TestChaosExecStorm storms the public query API directly: every third
// query is budget-starved, every third is panic-injected, and the
// surviving third must return the exact oracle count throughout. The
// engine must map each sabotage to its structured error, leak nothing,
// and keep serving.
func TestChaosExecStorm(t *testing.T) {
	db, err := OpenDB(GenGraph(41))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	oracle := make(map[string]int64, len(chaosPatterns))
	for _, p := range chaosPatterns {
		n, err := db.Count(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		oracle[p] = n
	}

	lc := NewLeakCheck()
	const workers, rounds = 8, 24
	errCh := make(chan error, workers*rounds)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pat := chaosPatterns[(w+i)%len(chaosPatterns)]
				switch chaosMode((w*rounds + i) % int(numModes)) {
				case modeClean:
					n, err := db.Count(pat, &graphflow.QueryOptions{Workers: 2})
					if err != nil {
						errCh <- fmt.Errorf("clean %q: %v", pat, err)
					} else if n != oracle[pat] {
						errCh <- fmt.Errorf("clean %q = %d, oracle %d", pat, n, oracle[pat])
					}
				case modeBudget:
					_, err := db.Count(pat, &graphflow.QueryOptions{MemBudgetBytes: 512})
					if !errors.Is(err, resource.ErrBudgetExceeded) {
						errCh <- fmt.Errorf("budget-starved %q: err = %v, want ErrBudgetExceeded", pat, err)
					}
				case modePanic:
					inj := &faultinject.Injector{PanicEvery: 1, Points: 1 << faultinject.PointWorkerStart}
					_, err := db.Count(pat, &graphflow.QueryOptions{Faults: inj})
					var pe *exec.PanicError
					if !errors.As(err, &pe) {
						errCh <- fmt.Errorf("panic-injected %q: err = %v, want *PanicError", pat, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Everything handed out during the storm must be back.
	if used := db.Governor().InUse(); used != 0 {
		t.Errorf("governor still holds %d bytes after the storm", used)
	}
	if err := lc.Check(); err != nil {
		t.Error(err)
	}
	for _, p := range chaosPatterns {
		n, err := db.Count(p, nil)
		if err != nil || n != oracle[p] {
			t.Errorf("post-storm %q = %d, %v; oracle %d", p, n, err, oracle[p])
		}
	}
}

// TestChaosServerStorm runs the same storm over HTTP against a server
// with tight admission (3 slots, short queue) and a server-wide
// injector that panics a fraction of queries. Every response must be
// one of the governed outcomes — 200 with the exact count, 422 with a
// structured budget error, 429/503 with Retry-After, 500 from an
// injected panic — the server must stay healthy throughout, and slots,
// reservations and goroutines must return to baseline.
func TestChaosServerStorm(t *testing.T) {
	db, err := OpenDB(GenGraph(42))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	pattern := chaosPatterns[0]
	oracle, err := db.Count(pattern, nil)
	if err != nil {
		t.Fatal(err)
	}

	inj := &faultinject.Injector{PanicEvery: 40, Points: 1 << faultinject.PointWorkerStart}
	srv, err := server.New(server.Config{
		DB:            db,
		MaxConcurrent: 3,
		MaxQueueDepth: 4,
		MaxQueueWait:  200 * time.Millisecond,
		Faults:        inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	post := func(body string) (int, []byte, http.Header) {
		resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Errorf("transport: %v", err)
			return 0, nil, nil
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data, resp.Header
	}

	// Warm up (plan cache, connection pool) before the leak baseline.
	if code, body, _ := post(`{"pattern": "` + pattern + `"}`); code != http.StatusOK {
		t.Fatalf("warm-up: %d %s", code, body)
	}
	lc := NewLeakCheck()

	const workers, rounds = 12, 12
	var mu sync.Mutex
	outcomes := make(map[int]int)
	var stormErrs []string
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				budgeted := (w+i)%3 == 0
				body := `{"pattern": "` + pattern + `"}`
				if budgeted {
					body = `{"pattern": "` + pattern + `", "mem_budget_bytes": 512}`
				}
				code, data, hdr := post(body)
				var fail string
				switch code {
				case http.StatusOK:
					var qr struct {
						Count int64 `json:"count"`
					}
					if err := json.Unmarshal(data, &qr); err != nil || qr.Count != oracle {
						fail = fmt.Sprintf("200 count = %d (err %v), oracle %d", qr.Count, err, oracle)
					}
				case http.StatusUnprocessableEntity:
					if !budgeted || !bytes.Contains(data, []byte("budget_exceeded")) {
						fail = fmt.Sprintf("unexpected 422 (budgeted=%v): %s", budgeted, data)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					if hdr.Get("Retry-After") == "" {
						fail = fmt.Sprintf("%d shed without Retry-After: %s", code, data)
					}
				case http.StatusInternalServerError:
					if !bytes.Contains(data, []byte("panic")) {
						fail = fmt.Sprintf("500 without a panic body: %s", data)
					}
				default:
					fail = fmt.Sprintf("ungoverned status %d: %s", code, data)
				}
				mu.Lock()
				outcomes[code]++
				if fail != "" {
					stormErrs = append(stormErrs, fail)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for _, e := range stormErrs {
		t.Error(e)
	}
	if outcomes[http.StatusOK] == 0 {
		t.Errorf("no query survived the storm: %v", outcomes)
	}
	t.Logf("storm outcomes by status: %v (injector fired %d times)", outcomes, inj.Panics())

	// The server must still be healthy and fully drained.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after storm: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Requests struct {
			InFlight     int   `json:"in_flight"`
			Queued       int   `json:"queued"`
			BudgetAborts int64 `json:"budget_aborts"`
			Panics       int64 `json:"panics"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests.InFlight != 0 || st.Requests.Queued != 0 {
		t.Errorf("admission not drained: in_flight %d, queued %d", st.Requests.InFlight, st.Requests.Queued)
	}
	if got := st.Requests.BudgetAborts; got != int64(outcomes[http.StatusUnprocessableEntity]) {
		t.Errorf("stats budget_aborts = %d, observed %d 422s", got, outcomes[http.StatusUnprocessableEntity])
	}
	if got := st.Requests.Panics; got != int64(outcomes[http.StatusInternalServerError]) {
		t.Errorf("stats panics = %d, observed %d 500s", got, outcomes[http.StatusInternalServerError])
	}
	if used := db.Governor().InUse(); used != 0 {
		t.Errorf("governor still holds %d bytes after the storm", used)
	}
	// Idle keep-alive connections hold goroutines on both sides; release
	// them before the leak comparison.
	client.CloseIdleConnections()
	if err := lc.Check(); err != nil {
		t.Error(err)
	}
}
