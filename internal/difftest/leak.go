package difftest

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// This file is the zero-dependency goroutine-leak gate used by the
// chaos sweep and the CI -race step: snapshot the goroutines before a
// storm, snapshot them after, and fail with the leaked stacks if the
// count did not return to baseline. Runtime-internal goroutines come
// and go (GC workers, timer goroutines), so the comparison retries for
// a grace period and ignores goroutines created by the runtime itself.

// LeakCheck captures the current goroutine population as a baseline.
// Call Check (typically deferred) after the workload to assert every
// goroutine it started has exited.
type LeakCheck struct {
	baseline map[string]int
}

// NewLeakCheck snapshots the current goroutines.
func NewLeakCheck() *LeakCheck {
	return &LeakCheck{baseline: goroutineCensus()}
}

// Check reports nil once the live goroutines are back to the baseline
// population, retrying for up to five seconds to let workers drain; on
// timeout it returns an error listing each leaked goroutine's creation
// site and count.
func (lc *LeakCheck) Check() error {
	deadline := time.Now().Add(5 * time.Second)
	var leaked map[string]int
	for {
		leaked = diffCensus(lc.baseline, goroutineCensus())
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	sites := make([]string, 0, len(leaked))
	for site, n := range leaked {
		sites = append(sites, fmt.Sprintf("%d leaked from %s", n, site))
	}
	sort.Strings(sites)
	return fmt.Errorf("goroutine leak: %s", strings.Join(sites, "; "))
}

// goroutineCensus counts live goroutines by creation site (the
// "created by" line of their stack), skipping runtime-internal ones
// whose lifecycle the test cannot control.
func goroutineCensus() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	census := make(map[string]int)
	for _, g := range strings.Split(string(buf), "\n\n") {
		site := creationSite(g)
		if site == "" || strings.HasPrefix(site, "runtime.") || strings.HasPrefix(site, "testing.") {
			continue
		}
		census[site]++
	}
	return census
}

// creationSite extracts the function named on a goroutine dump's
// "created by" line ("" for the main goroutine and runtime workers
// without one).
func creationSite(stack string) string {
	i := strings.LastIndex(stack, "created by ")
	if i < 0 {
		return ""
	}
	line := stack[i+len("created by "):]
	if j := strings.IndexByte(line, '\n'); j >= 0 {
		line = line[:j]
	}
	// Trim the " in goroutine N" suffix newer runtimes append.
	if j := strings.Index(line, " in goroutine"); j >= 0 {
		line = line[:j]
	}
	return strings.TrimSpace(line)
}

// diffCensus returns the sites whose goroutine count now exceeds the
// baseline.
func diffCensus(before, after map[string]int) map[string]int {
	leaked := make(map[string]int)
	for site, n := range after {
		if extra := n - before[site]; extra > 0 {
			leaked[site] = extra
		}
	}
	return leaked
}
