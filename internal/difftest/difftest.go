// Package difftest is a differential correctness harness: it generates
// random labelled graphs and random connected query patterns, evaluates
// each pair through the full public pipeline (parse → canonicalize →
// optimize → compile → execute, hybrid plans included), and checks the
// count against the deliberately naive binary-join reference of
// internal/baseline. The two engines share no join code — BJCount is an
// edge-at-a-time nested loop over materialised tuples — so agreement
// across a corpus is strong evidence that the optimizer's plan space,
// the canonical form and the executor are consistent.
//
// The live-mutation harness (RunLiveTrial) extends the comparison to the
// versioned store: random mutation batches are applied to a live DB and
// to an implementation-independent Shadow edge set, and after every
// batch the hybrid and WCO counts on the live snapshot must match the BJ
// reference on a graph rebuilt from scratch out of the Shadow.
package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"graphflow"
	"graphflow/internal/baseline"
	"graphflow/internal/datagen"
	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// maxBJIntermediate aborts reference evaluations whose intermediate
// relations explode; the harness skips those pairs rather than spending
// minutes on a single naive join.
const maxBJIntermediate = 400_000

// GenGraph returns a random labelled graph whose shape (preferential
// attachment with triangle closure) exercises the skew and cyclicity the
// optimizer keys on, relabelled with a few vertex and edge labels so
// label filters take part in the comparison.
func GenGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := datagen.Social(datagen.SocialConfig{
		N:          100 + rng.Intn(150),
		MPerV:      2 + rng.Intn(2),
		Closure:    0.2 + 0.5*rng.Float64(),
		Reciprocal: 0.4 * rng.Float64(),
		Seed:       rng.Int63(),
	})
	return datagen.Relabel(g, 1+rng.Intn(3), 1+rng.Intn(2), rng.Int63())
}

// GenPattern returns a random connected query with 2-5 vertices: a
// random spanning tree plus a few extra cycle-closing edges, random
// directions, and labels drawn from the same small alphabets as
// GenGraph. At most one edge per vertex pair — the optimizer rejects
// parallel query edges.
func GenPattern(rng *rand.Rand) *query.Graph {
	for {
		n := 2 + rng.Intn(4)
		q := &query.Graph{}
		for v := 0; v < n; v++ {
			q.Vertices = append(q.Vertices, query.Vertex{
				Name:  fmt.Sprintf("v%d", v),
				Label: graph.Label(rng.Intn(3)),
			})
		}
		paired := map[[2]int]bool{}
		addEdge := func(a, b int) {
			if a == b {
				return
			}
			pair := [2]int{min(a, b), max(a, b)}
			if paired[pair] {
				return
			}
			paired[pair] = true
			e := query.Edge{From: a, To: b, Label: graph.Label(rng.Intn(2))}
			if rng.Intn(2) == 0 {
				e.From, e.To = e.To, e.From
			}
			q.Edges = append(q.Edges, e)
		}
		// Spanning tree: attach each vertex to an earlier one.
		for v := 1; v < n; v++ {
			addEdge(rng.Intn(v), v)
		}
		// Extra edges close cycles — the shapes where WCO and hybrid plans
		// diverge most from binary joins.
		for i := rng.Intn(4); i > 0; i-- {
			addEdge(rng.Intn(n), rng.Intn(n))
		}
		if q.Validate() == nil {
			return q
		}
		// Redraw on the (rare) structurally invalid outcome.
	}
}

// OpenDB wraps g in a DB with a deliberately tiny catalogue (H=2, small
// sample): on labelled graphs a full catalogue samples a huge labelled
// pattern space, and the corpus trades catalogue fidelity for volume —
// plan *choice* may differ from a production DB, correctness must not.
func OpenDB(g *graph.Graph) (*graphflow.DB, error) {
	return OpenLiveDB(g, 0)
}

// OpenLiveDB is OpenDB with an explicit compaction threshold, for trials
// that interleave mutations with queries. A small positive threshold
// races the background compactor against queries and writers; a negative
// one keeps the overlay growing so overlay reads stay exercised.
func OpenLiveDB(g *graph.Graph, compactThreshold int) (*graphflow.DB, error) {
	return openDB(g, compactThreshold, 0)
}

// OpenDBHub is OpenDB with a forced hub bitset threshold, for the
// threshold-forcing corpus: 1 indexes every adjacency partition (the
// "all hubs" extreme — partitions are non-empty, so a floor of 1 catches
// them all and every multiway intersection may dispatch to the bitset
// kernels), a negative value indexes none (every intersection stays on
// the sorted merge/gallop kernels).
func OpenDBHub(g *graph.Graph, hubThreshold int) (*graphflow.DB, error) {
	return openDB(g, 0, hubThreshold)
}

func openDB(g *graph.Graph, compactThreshold, hubThreshold int) (*graphflow.DB, error) {
	b := graphflow.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		b.SetVertexLabel(uint32(v), uint16(g.VertexLabel(graph.VertexID(v))))
	}
	g.Edges(func(src, dst graph.VertexID, l graph.Label) bool {
		b.AddEdge(uint32(src), uint32(dst), uint16(l))
		return true
	})
	return b.Open(&graphflow.Options{
		CatalogueZ:         100,
		CatalogueH:         2,
		CompactThreshold:   compactThreshold,
		HubDegreeThreshold: hubThreshold,
	})
}

// Shadow is an implementation-independent record of the logical graph a
// live DB should hold: plain vertex labels and a directed-edge set. The
// harness applies every mutation batch to both the live DB and the
// Shadow, then rebuilds a frozen graph from the Shadow to check the live
// snapshot against a from-scratch build that shares none of the overlay
// code.
type Shadow struct {
	VLabels []graph.Label
	Edges   map[ShadowEdge]bool
}

// ShadowEdge is one directed labelled edge of a Shadow.
type ShadowEdge struct {
	Src, Dst graph.VertexID
	Label    graph.Label
}

// NewShadow records g's logical content.
func NewShadow(g *graph.Graph) *Shadow {
	sh := &Shadow{Edges: map[ShadowEdge]bool{}}
	for v := 0; v < g.NumVertices(); v++ {
		sh.VLabels = append(sh.VLabels, g.VertexLabel(graph.VertexID(v)))
	}
	g.Edges(func(src, dst graph.VertexID, l graph.Label) bool {
		sh.Edges[ShadowEdge{src, dst, l}] = true
		return true
	})
	return sh
}

// Apply mirrors the live store's batch semantics: vertices append first,
// self-loops and duplicates drop, absent deletes are no-ops.
func (sh *Shadow) Apply(b graphflow.Batch) {
	for _, l := range b.AddVertices {
		sh.VLabels = append(sh.VLabels, graph.Label(l))
	}
	for _, e := range b.AddEdges {
		if e.Src == e.Dst {
			continue
		}
		sh.Edges[ShadowEdge{graph.VertexID(e.Src), graph.VertexID(e.Dst), graph.Label(e.Label)}] = true
	}
	for _, e := range b.DeleteEdges {
		delete(sh.Edges, ShadowEdge{graph.VertexID(e.Src), graph.VertexID(e.Dst), graph.Label(e.Label)})
	}
}

// Build freezes the shadow into a CSR graph through the ordinary Builder
// path — the "rebuilt from scratch at the same epoch" reference.
func (sh *Shadow) Build() *graph.Graph {
	b := graph.NewBuilder(len(sh.VLabels))
	for v, l := range sh.VLabels {
		b.SetVertexLabel(graph.VertexID(v), l)
	}
	for e := range sh.Edges {
		b.AddEdge(e.Src, e.Dst, e.Label)
	}
	return b.MustBuild()
}

// sortedEdges returns the shadow's edges in deterministic order, so
// delete sampling is reproducible per seed.
func (sh *Shadow) sortedEdges() []ShadowEdge {
	out := make([]ShadowEdge, 0, len(sh.Edges))
	for e := range sh.Edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Label < b.Label
	})
	return out
}

// GenBatch draws a random mutation batch against the shadow's current
// dimensions: a few vertex appends, edge adds (including duplicates,
// self-loops and edges to the new vertices) and deletes (mostly existing
// edges, some absent).
func GenBatch(rng *rand.Rand, sh *Shadow) graphflow.Batch {
	var b graphflow.Batch
	for i := rng.Intn(3); i > 0; i-- {
		b.AddVertices = append(b.AddVertices, uint16(rng.Intn(3)))
	}
	nAfter := len(sh.VLabels) + len(b.AddVertices)
	for i := 1 + rng.Intn(25); i > 0; i-- {
		b.AddEdges = append(b.AddEdges, graphflow.EdgeOp{
			Src:   uint32(rng.Intn(nAfter)),
			Dst:   uint32(rng.Intn(nAfter)),
			Label: uint16(rng.Intn(2)),
		})
	}
	existing := sh.sortedEdges()
	for i := rng.Intn(15); i > 0 && len(existing) > 0; i-- {
		e := existing[rng.Intn(len(existing))]
		b.DeleteEdges = append(b.DeleteEdges, graphflow.EdgeOp{Src: uint32(e.Src), Dst: uint32(e.Dst), Label: uint16(e.Label)})
	}
	for i := rng.Intn(4); i > 0; i-- {
		b.DeleteEdges = append(b.DeleteEdges, graphflow.EdgeOp{
			Src:   uint32(rng.Intn(nAfter)),
			Dst:   uint32(rng.Intn(nAfter)),
			Label: uint16(rng.Intn(2)),
		})
	}
	return b
}

// BatchSizes is the matrix the vectorized engine is differentially
// tested at: single-row batches (maximum flush pressure), an odd size
// that never divides fan-outs evenly, a mid size, and the engine
// default.
var BatchSizes = []int{1, 3, 64, 1024}

// maxRowCollect bounds how many result tuples CompareBatchMatrix
// materialises for set comparison; beyond it only counts are compared
// (the corpus's reference budget keeps most entries well below this).
const maxRowCollect = 30_000

// collectRows enumerates every match of pattern at the given batch size
// as deterministic row strings, sorted.
func collectRows(db *graphflow.DB, pattern string, batchSize int) ([]string, error) {
	var names []string
	var rows []string
	err := db.Match(pattern, func(m map[string]uint32) bool {
		if names == nil {
			for k := range m {
				names = append(names, k)
			}
			sort.Strings(names)
		}
		var sb strings.Builder
		for _, k := range names {
			fmt.Fprintf(&sb, "%s=%d;", k, m[k])
		}
		rows = append(rows, sb.String())
		return true
	}, &graphflow.QueryOptions{BatchSize: batchSize})
	if err != nil {
		return nil, err
	}
	sort.Strings(rows)
	return rows, nil
}

// CompareBatchMatrix evaluates q on db under the tuple-at-a-time oracle
// (BatchSize < 0) and at every entry of BatchSizes, requiring identical
// counts (sequential and Workers=4) and identical sorted tuple sets.
// Any engine divergence — scan fill, run-grouped intersection, grouped
// probe, flush/limit accounting, morsel scheduling — surfaces as an
// error naming the batch size.
func CompareBatchMatrix(db *graphflow.DB, q *query.Graph) error {
	pattern := q.String()
	want, err := db.Count(pattern, &graphflow.QueryOptions{BatchSize: -1})
	if err != nil {
		return fmt.Errorf("oracle count of %q: %w", pattern, err)
	}
	var wantRows []string
	if want <= maxRowCollect {
		if wantRows, err = collectRows(db, pattern, -1); err != nil {
			return fmt.Errorf("oracle rows of %q: %w", pattern, err)
		}
	}
	for _, bs := range BatchSizes {
		got, err := db.Count(pattern, &graphflow.QueryOptions{BatchSize: bs})
		if err != nil {
			return fmt.Errorf("batch %d count of %q: %w", bs, pattern, err)
		}
		if got != want {
			return fmt.Errorf("batch %d count of %q = %d, oracle %d", bs, pattern, got, want)
		}
		gotPar, err := db.Count(pattern, &graphflow.QueryOptions{BatchSize: bs, Workers: 4})
		if err != nil {
			return fmt.Errorf("batch %d parallel count of %q: %w", bs, pattern, err)
		}
		if gotPar != want {
			return fmt.Errorf("batch %d parallel count of %q = %d, oracle %d", bs, pattern, gotPar, want)
		}
		if wantRows == nil {
			continue
		}
		rows, err := collectRows(db, pattern, bs)
		if err != nil {
			return fmt.Errorf("batch %d rows of %q: %w", bs, pattern, err)
		}
		if len(rows) != len(wantRows) {
			return fmt.Errorf("batch %d of %q: %d rows, oracle %d", bs, pattern, len(rows), len(wantRows))
		}
		for i := range rows {
			if rows[i] != wantRows[i] {
				return fmt.Errorf("batch %d of %q: row %d = %s, oracle %s", bs, pattern, i, rows[i], wantRows[i])
			}
		}
	}
	return nil
}

// CompareFactorized pits factorized star-suffix execution against the
// tuple-at-a-time oracle on one (db, pattern) pair: full counts with
// factorization explicitly on and off (sequential and Workers=4), exact
// Limit caps across a spectrum that lands limits mid-cross-product (the
// shared-budget claiming must sum to exactly min(limit, total) even
// across racing workers), and identical sorted tuple sets from the lazy
// unfold. Patterns without a star-shaped suffix degrade to plain batch
// execution, so the sweep is safe on any corpus pattern.
func CompareFactorized(db *graphflow.DB, q *query.Graph) error {
	pattern := q.String()
	want, err := db.Count(pattern, &graphflow.QueryOptions{BatchSize: -1})
	if err != nil {
		return fmt.Errorf("oracle count of %q: %w", pattern, err)
	}
	for _, workers := range []int{0, 4} {
		for _, off := range []bool{false, true} {
			got, err := db.Count(pattern, &graphflow.QueryOptions{Workers: workers, DisableFactorization: off})
			if err != nil {
				return fmt.Errorf("factorized(off=%v) workers=%d count of %q: %w", off, workers, pattern, err)
			}
			if got != want {
				return fmt.Errorf("factorized(off=%v) workers=%d count of %q = %d, oracle %d", off, workers, pattern, got, want)
			}
		}
	}
	// Exact Limit caps: cross-product counting claims whole products
	// against a shared budget, and the final product is truncated to the
	// remainder, so every cap must be hit exactly — including limits that
	// land in the middle of one prefix's product and limits past the total.
	for _, limit := range []int64{1, 2, want / 2, want - 1, want, want + 13} {
		if limit <= 0 {
			continue
		}
		wantLim := limit
		if wantLim > want {
			wantLim = want
		}
		for _, workers := range []int{0, 4} {
			got, err := db.Count(pattern, &graphflow.QueryOptions{Workers: workers, Limit: limit})
			if err != nil {
				return fmt.Errorf("factorized limit=%d workers=%d count of %q: %w", limit, workers, pattern, err)
			}
			if got != wantLim {
				return fmt.Errorf("factorized limit=%d workers=%d count of %q = %d, want exactly %d", limit, workers, pattern, got, wantLim)
			}
		}
	}
	// The lazy unfold must deliver the oracle's exact tuple set.
	if want <= maxRowCollect {
		wantRows, err := collectRows(db, pattern, -1)
		if err != nil {
			return fmt.Errorf("oracle rows of %q: %w", pattern, err)
		}
		rows, err := collectRows(db, pattern, 0)
		if err != nil {
			return fmt.Errorf("factorized rows of %q: %w", pattern, err)
		}
		if len(rows) != len(wantRows) {
			return fmt.Errorf("factorized match of %q: %d rows, oracle %d", pattern, len(rows), len(wantRows))
		}
		for i := range rows {
			if rows[i] != wantRows[i] {
				return fmt.Errorf("factorized match of %q: row %d = %s, oracle %s", pattern, i, rows[i], wantRows[i])
			}
		}
	}
	return nil
}

// Result is the outcome of one graph/pattern comparison.
type Result struct {
	Pattern  string
	Want     int64 // reference BJ count
	Got      int64 // hybrid-plan count through the public API
	GotWCO   int64 // WCO-restricted count
	PlanKind string
	Skipped  bool // reference blew the intermediate-size budget
}

// ComparePair counts q on db via the optimizer's chosen (possibly
// hybrid) plan and via the WCO-restricted plan space, and checks both
// against the baseline BJ reference on g.
func ComparePair(db *graphflow.DB, g *graph.Graph, q *query.Graph) (Result, error) {
	res := Result{Pattern: q.String()}
	want, _, err := baseline.BJCount(g, q, baseline.BJConfig{
		EagerClose:      true,
		MaxIntermediate: maxBJIntermediate,
	})
	if err == baseline.ErrTooLarge {
		res.Skipped = true
		return res, nil
	}
	if err != nil {
		return res, fmt.Errorf("reference BJ on %q: %w", res.Pattern, err)
	}
	res.Want = want

	got, st, err := db.CountStats(res.Pattern, nil)
	if err != nil {
		return res, fmt.Errorf("hybrid count of %q: %w", res.Pattern, err)
	}
	res.Got = got
	res.PlanKind = st.PlanKind

	gotWCO, err := db.Count(res.Pattern, &graphflow.QueryOptions{WCOOnly: true})
	if err != nil {
		return res, fmt.Errorf("wco count of %q: %w", res.Pattern, err)
	}
	res.GotWCO = gotWCO
	return res, nil
}

// RunLiveTrial drives one live-mutation trial: a random graph opened as
// a live DB, then `batches` rounds of (apply random mutation batch,
// occasionally force compaction, compare a random pattern's hybrid and
// WCO counts on the live snapshot against the BJ reference on a
// from-scratch rebuild of the shadow). Each round is one (graph,
// mutation batch, pattern) triple. Returns per-round results; a Result
// with Skipped set means the reference blew its budget for that round.
func RunLiveTrial(seed int64, batches int) ([]Result, error) {
	rng := rand.New(rand.NewSource(seed))
	g := GenGraph(seed)
	// Rotate compaction regimes: racing background compactor, frequent
	// compaction, and no compaction (pure overlay reads).
	threshold := []int{10, 100, -1}[rng.Intn(3)]
	db, err := OpenLiveDB(g, threshold)
	if err != nil {
		return nil, fmt.Errorf("seed %d: open live DB: %w", seed, err)
	}
	sh := NewShadow(g)
	var out []Result
	for i := 0; i < batches; i++ {
		b := GenBatch(rng, sh)
		if _, err := db.Apply(b); err != nil {
			return out, fmt.Errorf("seed %d batch %d: apply: %w", seed, i, err)
		}
		sh.Apply(b)
		if rng.Intn(4) == 0 {
			if err := db.Compact(); err != nil {
				return out, fmt.Errorf("seed %d batch %d: compact: %w", seed, i, err)
			}
		}
		rebuilt := sh.Build()
		if db.NumEdges() != rebuilt.NumEdges() || db.NumVertices() != rebuilt.NumVertices() {
			return out, fmt.Errorf("seed %d batch %d: live counts V=%d E=%d, rebuild V=%d E=%d",
				seed, i, db.NumVertices(), db.NumEdges(), rebuilt.NumVertices(), rebuilt.NumEdges())
		}
		res, err := ComparePair(db, rebuilt, GenPattern(rng))
		if err != nil {
			return out, fmt.Errorf("seed %d batch %d: %w", seed, i, err)
		}
		out = append(out, res)
	}
	db.WaitCompaction()
	return out, nil
}
