// Package difftest is a differential correctness harness: it generates
// random labelled graphs and random connected query patterns, evaluates
// each pair through the full public pipeline (parse → canonicalize →
// optimize → compile → execute, hybrid plans included), and checks the
// count against the deliberately naive binary-join reference of
// internal/baseline. The two engines share no join code — BJCount is an
// edge-at-a-time nested loop over materialised tuples — so agreement
// across a corpus is strong evidence that the optimizer's plan space,
// the canonical form and the executor are consistent.
package difftest

import (
	"fmt"
	"math/rand"

	"graphflow"
	"graphflow/internal/baseline"
	"graphflow/internal/datagen"
	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// maxBJIntermediate aborts reference evaluations whose intermediate
// relations explode; the harness skips those pairs rather than spending
// minutes on a single naive join.
const maxBJIntermediate = 400_000

// GenGraph returns a random labelled graph whose shape (preferential
// attachment with triangle closure) exercises the skew and cyclicity the
// optimizer keys on, relabelled with a few vertex and edge labels so
// label filters take part in the comparison.
func GenGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := datagen.Social(datagen.SocialConfig{
		N:          100 + rng.Intn(150),
		MPerV:      2 + rng.Intn(2),
		Closure:    0.2 + 0.5*rng.Float64(),
		Reciprocal: 0.4 * rng.Float64(),
		Seed:       rng.Int63(),
	})
	return datagen.Relabel(g, 1+rng.Intn(3), 1+rng.Intn(2), rng.Int63())
}

// GenPattern returns a random connected query with 2-5 vertices: a
// random spanning tree plus a few extra cycle-closing edges, random
// directions, and labels drawn from the same small alphabets as
// GenGraph. At most one edge per vertex pair — the optimizer rejects
// parallel query edges.
func GenPattern(rng *rand.Rand) *query.Graph {
	for {
		n := 2 + rng.Intn(4)
		q := &query.Graph{}
		for v := 0; v < n; v++ {
			q.Vertices = append(q.Vertices, query.Vertex{
				Name:  fmt.Sprintf("v%d", v),
				Label: graph.Label(rng.Intn(3)),
			})
		}
		paired := map[[2]int]bool{}
		addEdge := func(a, b int) {
			if a == b {
				return
			}
			pair := [2]int{min(a, b), max(a, b)}
			if paired[pair] {
				return
			}
			paired[pair] = true
			e := query.Edge{From: a, To: b, Label: graph.Label(rng.Intn(2))}
			if rng.Intn(2) == 0 {
				e.From, e.To = e.To, e.From
			}
			q.Edges = append(q.Edges, e)
		}
		// Spanning tree: attach each vertex to an earlier one.
		for v := 1; v < n; v++ {
			addEdge(rng.Intn(v), v)
		}
		// Extra edges close cycles — the shapes where WCO and hybrid plans
		// diverge most from binary joins.
		for i := rng.Intn(4); i > 0; i-- {
			addEdge(rng.Intn(n), rng.Intn(n))
		}
		if q.Validate() == nil {
			return q
		}
		// Redraw on the (rare) structurally invalid outcome.
	}
}

// OpenDB wraps g in a DB with a deliberately tiny catalogue (H=2, small
// sample): on labelled graphs a full catalogue samples a huge labelled
// pattern space, and the corpus trades catalogue fidelity for volume —
// plan *choice* may differ from a production DB, correctness must not.
func OpenDB(g *graph.Graph) (*graphflow.DB, error) {
	b := graphflow.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		b.SetVertexLabel(uint32(v), uint16(g.VertexLabel(graph.VertexID(v))))
	}
	g.Edges(func(src, dst graph.VertexID, l graph.Label) bool {
		b.AddEdge(uint32(src), uint32(dst), uint16(l))
		return true
	})
	return b.Open(&graphflow.Options{CatalogueZ: 100, CatalogueH: 2})
}

// Result is the outcome of one graph/pattern comparison.
type Result struct {
	Pattern  string
	Want     int64 // reference BJ count
	Got      int64 // hybrid-plan count through the public API
	GotWCO   int64 // WCO-restricted count
	PlanKind string
	Skipped  bool // reference blew the intermediate-size budget
}

// ComparePair counts q on db via the optimizer's chosen (possibly
// hybrid) plan and via the WCO-restricted plan space, and checks both
// against the baseline BJ reference on g.
func ComparePair(db *graphflow.DB, g *graph.Graph, q *query.Graph) (Result, error) {
	res := Result{Pattern: q.String()}
	want, _, err := baseline.BJCount(g, q, baseline.BJConfig{
		EagerClose:      true,
		MaxIntermediate: maxBJIntermediate,
	})
	if err == baseline.ErrTooLarge {
		res.Skipped = true
		return res, nil
	}
	if err != nil {
		return res, fmt.Errorf("reference BJ on %q: %w", res.Pattern, err)
	}
	res.Want = want

	got, st, err := db.CountStats(res.Pattern, nil)
	if err != nil {
		return res, fmt.Errorf("hybrid count of %q: %w", res.Pattern, err)
	}
	res.Got = got
	res.PlanKind = st.PlanKind

	gotWCO, err := db.Count(res.Pattern, &graphflow.QueryOptions{WCOOnly: true})
	if err != nil {
		return res, fmt.Errorf("wco count of %q: %w", res.Pattern, err)
	}
	res.GotWCO = gotWCO
	return res, nil
}
