package difftest

import "testing"

// TestDifferentialCrashRecovery kills the WAL at every byte offset —
// each record boundary and every position inside a record — and
// verifies the recovered store against the shadow edge set. The name
// keeps it inside the CI differential step's -run filter, so it runs
// under -race there.
func TestDifferentialCrashRecovery(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		if err := RunCrashTrial(t.TempDir(), seed, 6, -1); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialCrashRecoveryWithCheckpoint interleaves a compaction
// (checkpoint + WAL prune) into the trial, so every kill offset
// exercises checkpoint-load-plus-tail-replay recovery instead of pure
// log replay.
func TestDifferentialCrashRecoveryWithCheckpoint(t *testing.T) {
	seeds := []int64{4, 5}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		if err := RunCrashTrial(t.TempDir(), seed, 6, 2); err != nil {
			t.Fatal(err)
		}
	}
}
