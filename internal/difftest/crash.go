package difftest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"graphflow"
	"graphflow/internal/graph"
	"graphflow/internal/live"
)

// This file is the crash-injection half of the differential harness: it
// drives random mutation batches into a durable live store, then
// simulates a crash at EVERY byte offset of the write-ahead log — each
// record boundary and every position inside a record — reopens the
// store from the damaged directory, and checks the recovered vertex
// labels, edge set and epoch against the shadow state as of the last
// record that survived intact. A cut inside a record must be reported
// (and repaired) as a torn tail; a cut at a boundary must recover
// cleanly. With a compaction in the middle of the trial the same sweep
// exercises checkpoint-plus-tail-replay recovery.

// liveBatch converts the public batch shape onto the live store's.
func liveBatch(b graphflow.Batch) live.Batch {
	var lb live.Batch
	for _, l := range b.AddVertices {
		lb.AddVertices = append(lb.AddVertices, graph.Label(l))
	}
	for _, e := range b.AddEdges {
		lb.AddEdges = append(lb.AddEdges, live.EdgeOp{
			Src: graph.VertexID(e.Src), Dst: graph.VertexID(e.Dst), Label: graph.Label(e.Label),
		})
	}
	for _, e := range b.DeleteEdges {
		lb.DeleteEdges = append(lb.DeleteEdges, live.EdgeOp{
			Src: graph.VertexID(e.Src), Dst: graph.VertexID(e.Dst), Label: graph.Label(e.Label),
		})
	}
	return lb
}

// crashState is the expected recovered state after k surviving records.
type crashState struct {
	epoch   uint64
	vlabels []graph.Label
	edges   map[ShadowEdge]bool
}

func captureState(epoch uint64, sh *Shadow) crashState {
	st := crashState{epoch: epoch, vlabels: append([]graph.Label(nil), sh.VLabels...), edges: map[ShadowEdge]bool{}}
	for e := range sh.Edges {
		st.edges[e] = true
	}
	return st
}

// newestSegment returns the path and name of the highest-numbered WAL
// segment in dir (zero-padded names make lexical order numeric).
func newestSegment(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".log") {
			names = append(names, ent.Name())
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("no WAL segment in %s", dir)
	}
	sort.Strings(names)
	return names[len(names)-1], nil
}

// cloneDirTruncated copies src into a fresh directory, truncating the
// named segment to cut bytes — the on-disk picture a crash at that
// offset would leave behind.
func cloneDirTruncated(src, dst, segment string, cut int) error {
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			return err
		}
		if ent.Name() == segment {
			data = data[:cut]
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// checkRecovered compares a recovered snapshot against the expected
// shadow state.
func checkRecovered(db *live.DB, want crashState) error {
	s := db.Snapshot()
	if s.Epoch() != want.epoch {
		return fmt.Errorf("epoch %d, want %d", s.Epoch(), want.epoch)
	}
	if s.NumVertices() != len(want.vlabels) {
		return fmt.Errorf("%d vertices, want %d", s.NumVertices(), len(want.vlabels))
	}
	for v, l := range want.vlabels {
		if got := s.VertexLabel(graph.VertexID(v)); got != l {
			return fmt.Errorf("vertex %d label %d, want %d", v, got, l)
		}
	}
	if s.NumEdges() != len(want.edges) {
		return fmt.Errorf("%d edges, want %d", s.NumEdges(), len(want.edges))
	}
	var stray *ShadowEdge
	s.Edges(func(src, dst graph.VertexID, l graph.Label) bool {
		if !want.edges[ShadowEdge{src, dst, l}] {
			stray = &ShadowEdge{src, dst, l}
			return false
		}
		return true
	})
	if stray != nil {
		return fmt.Errorf("recovered edge %d->%d(%d) not in shadow", stray.Src, stray.Dst, stray.Label)
	}
	return nil
}

// RunCrashTrial drives `batches` random mutation batches into a durable
// live store rooted at a scratch directory under tmpDir, then for every
// byte offset of the final WAL segment simulates a crash at that offset
// and verifies recovery. compactAt >= 0 forces a compaction (checkpoint
// + WAL prune) after that many batches, so the sweep covers
// checkpoint-plus-tail recovery; negative keeps the whole history in
// the log.
func RunCrashTrial(tmpDir string, seed int64, batches, compactAt int) error {
	rng := rand.New(rand.NewSource(seed))
	base := GenGraph(seed)
	dir := filepath.Join(tmpDir, fmt.Sprintf("crash-%d", seed))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	db, err := live.Open(base, live.Config{CompactThreshold: -1, Dir: dir})
	if err != nil {
		return fmt.Errorf("seed %d: open durable store: %w", seed, err)
	}
	sh := NewShadow(base)

	// states[k] is the expected recovery outcome when exactly k records
	// of the final segment survive; boundaries[k-1] is that segment's
	// size after the k-th record.
	states := []crashState{captureState(0, sh)}
	var boundaries []int
	segSize := func() (int, error) {
		name, err := newestSegment(dir)
		if err != nil {
			return 0, err
		}
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		return int(fi.Size()), nil
	}
	for i := 0; i < batches; i++ {
		b := GenBatch(rng, sh)
		before := db.WALStats().Appended
		res, err := db.Apply(liveBatch(b))
		if err != nil {
			return fmt.Errorf("seed %d batch %d: apply: %w", seed, i, err)
		}
		sh.Apply(b)
		if db.WALStats().Appended > before {
			sz, err := segSize()
			if err != nil {
				return err
			}
			boundaries = append(boundaries, sz)
			states = append(states, captureState(res.Epoch, sh))
		}
		if i == compactAt {
			if err := db.Compact(); err != nil {
				return fmt.Errorf("seed %d batch %d: compact: %w", seed, i, err)
			}
			// The checkpoint now covers everything so far; the log was
			// rotated and pruned, and the sweep restarts on the new (empty)
			// segment with the compacted epoch as the zero-record state.
			ws := db.WALStats()
			if ws.Checkpoints == 0 || ws.CheckpointEpoch != db.Epoch() {
				return fmt.Errorf("seed %d: compaction did not checkpoint: %+v", seed, ws)
			}
			boundaries = nil
			states = []crashState{captureState(db.Epoch(), sh)}
		}
	}
	if err := db.Close(); err != nil {
		return fmt.Errorf("seed %d: close: %w", seed, err)
	}

	segment, err := newestSegment(dir)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(dir, segment))
	if err != nil {
		return err
	}
	if len(boundaries) == 0 || boundaries[len(boundaries)-1] != len(data) {
		return fmt.Errorf("seed %d: boundary math: %v vs segment of %d bytes", seed, boundaries, len(data))
	}

	for cut := 0; cut <= len(data); cut++ {
		cdir := filepath.Join(tmpDir, fmt.Sprintf("cut-%d-%d", seed, cut))
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			return err
		}
		if err := cloneDirTruncated(dir, cdir, segment, cut); err != nil {
			return err
		}
		k := 0
		atBoundary := cut == 0
		for _, bnd := range boundaries {
			if bnd <= cut {
				k++
			}
			if bnd == cut {
				atBoundary = true
			}
		}
		rdb, err := live.Open(base, live.Config{CompactThreshold: -1, Dir: cdir})
		if err != nil {
			return fmt.Errorf("seed %d cut %d: recovery open: %w", seed, cut, err)
		}
		ws := rdb.WALStats()
		if ws.Replayed != k {
			rdb.Close()
			return fmt.Errorf("seed %d cut %d: replayed %d records, want %d", seed, cut, ws.Replayed, k)
		}
		if ws.TornTailDropped == atBoundary {
			rdb.Close()
			return fmt.Errorf("seed %d cut %d: torn=%v but boundary=%v", seed, cut, ws.TornTailDropped, atBoundary)
		}
		if err := checkRecovered(rdb, states[k]); err != nil {
			rdb.Close()
			return fmt.Errorf("seed %d cut %d (k=%d): %w", seed, cut, k, err)
		}
		// The store must stay writable after recovery: one more batch
		// proves the repaired log accepts appends.
		if _, err := rdb.Apply(live.Batch{AddVertices: []graph.Label{0}}); err != nil {
			rdb.Close()
			return fmt.Errorf("seed %d cut %d: post-recovery apply: %w", seed, cut, err)
		}
		if err := rdb.Close(); err != nil {
			return fmt.Errorf("seed %d cut %d: close: %w", seed, cut, err)
		}
		if err := os.RemoveAll(cdir); err != nil {
			return err
		}
	}
	return nil
}
