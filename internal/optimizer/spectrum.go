package optimizer

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// SpectrumPlan is one plan of a query's plan spectrum (Figure 7): the plan,
// its estimated cost, and its class ("wco", "bj", "hybrid").
type SpectrumPlan struct {
	Plan *plan.Plan
	Cost float64
	Kind string
}

// EnumeratePlans enumerates the query's plan spectrum: WCO, BJ and hybrid
// plans from the full plan space of Section 4.1, deduplicated under the
// query's automorphisms, with at most maxPerMask distinct subplans kept per
// subquery (cheapest first) to bound combinatorial growth. maxPerMask <= 0
// selects a default of 24.
func EnumeratePlans(q *query.Graph, opts Options, maxPerMask int) ([]SpectrumPlan, error) {
	opts = opts.withDefaults()
	if opts.Catalogue == nil {
		return nil, fmt.Errorf("optimizer: Options.Catalogue is required")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := checkNoParallelEdges(q); err != nil {
		return nil, err
	}
	if maxPerMask <= 0 {
		maxPerMask = 24
	}
	ctx := newContext(q, opts)

	type cand struct {
		node plan.Node
		cost float64
	}
	memo := map[query.Mask][]cand{}

	var plansFor func(mask query.Mask) []cand
	plansFor = func(mask query.Mask) []cand {
		if got, ok := memo[mask]; ok {
			return got
		}
		var out []cand
		seen := map[string]bool{}
		add := func(n plan.Node, cost float64) {
			sig := planSignature(n, nil)
			if seen[sig] {
				return
			}
			seen[sig] = true
			out = append(out, cand{n, cost})
		}
		if bits.OnesCount32(mask) == 2 {
			for _, e := range q.EdgesWithin(mask) {
				add(plan.NewScan(q, e), 0)
			}
		} else {
			// E/I extensions.
			for v := 0; v < q.NumVertices(); v++ {
				if mask&query.Bit(v) == 0 {
					continue
				}
				rest := mask &^ query.Bit(v)
				if !q.IsConnected(rest) || len(q.EdgesBetween(rest, v)) == 0 {
					continue
				}
				for _, child := range plansFor(rest) {
					ext, err := plan.NewExtend(q, child.node, v)
					if err != nil {
						continue
					}
					add(ext, child.cost+ctx.extendCost(rest, v, child.node))
				}
			}
			// Binary joins.
			lowest := query.Mask(1) << uint(bits.TrailingZeros32(mask))
			edgesWithin := q.EdgesWithin(mask)
			for c1 := mask; c1 > 0; c1 = (c1 - 1) & mask {
				if c1&lowest == 0 || c1 == mask || !q.IsConnected(c1) {
					continue
				}
				rest := mask &^ c1
				if rest == 0 {
					continue
				}
				for s := c1; ; s = (s - 1) & c1 {
					c2 := rest | s
					if s != 0 && c2 != mask && q.IsConnected(c2) {
						if validJoinSplit(c1, c2, edgesWithin) {
							b, p := c1, c2
							if ctx.cardinality(c2) < ctx.cardinality(c1) {
								b, p = c2, c1
							}
							for _, bc := range plansFor(b) {
								for _, pc := range plansFor(p) {
									hj, err := plan.NewHashJoin(bc.node, pc.node)
									if err != nil {
										continue
									}
									add(hj, bc.cost+pc.cost+ctx.joinCost(b, p))
								}
							}
						}
					}
					if s == 0 {
						break
					}
				}
			}
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].cost < out[j].cost })
		if len(out) > maxPerMask {
			// Keep the cheapest plans but preserve operator diversity:
			// join-rooted subplans usually cost more than WCO chains, yet
			// they are what the hybrid region of the spectrum is made of
			// (e.g. the Figure 1d 6-cycle plan needs a join of two paths to
			// survive here).
			keep := out[:0:0]
			joinQuota := maxPerMask / 3
			var joins, others []cand
			for _, c := range out {
				if _, isJ := c.node.(*plan.HashJoin); isJ {
					joins = append(joins, c)
				} else {
					others = append(others, c)
				}
			}
			if len(joins) > joinQuota {
				joins = joins[:joinQuota]
			}
			keep = append(keep, joins...)
			for _, c := range others {
				if len(keep) >= maxPerMask {
					break
				}
				keep = append(keep, c)
			}
			sort.SliceStable(keep, func(i, j int) bool { return keep[i].cost < keep[j].cost })
			out = keep
		}
		memo[mask] = out
		return out
	}

	full := query.AllMask(q.NumVertices())
	autos := q.Automorphisms()
	finalSeen := map[string]bool{}
	var result []SpectrumPlan
	for _, c := range plansFor(full) {
		// Deduplicate under query automorphisms: the minimum signature over
		// all relabelings identifies plans doing identical work on
		// symmetric queries.
		minSig := ""
		for _, pi := range autos {
			sig := planSignature(c.node, pi)
			if minSig == "" || sig < minSig {
				minSig = sig
			}
		}
		if finalSeen[minSig] {
			continue
		}
		finalSeen[minSig] = true
		p := &plan.Plan{Query: q, Root: c.node, EstimatedCost: c.cost, EstimatedCardinality: ctx.cardinality(full)}
		result = append(result, SpectrumPlan{Plan: p, Cost: c.cost, Kind: p.Kind()})
	}
	sort.SliceStable(result, func(i, j int) bool { return result[i].Cost < result[j].Cost })
	return result, nil
}

// validJoinSplit checks the projection-constraint coverage and the
// E/I-convertibility omission for a join split (Section 4.3).
func validJoinSplit(c1, c2 query.Mask, edgesWithin []query.Edge) bool {
	if c1&c2 == 0 {
		return false
	}
	for _, e := range edgesWithin {
		eb := query.Bit(e.From) | query.Bit(e.To)
		if eb&^c1 != 0 && eb&^c2 != 0 {
			return false
		}
	}
	if singleEdgeAttachment(c1, c2) || singleEdgeAttachment(c2, c1) {
		return false
	}
	return true
}

// planSignature serialises the plan tree with query vertices optionally
// relabelled through pi (pi[v] = image of v; nil means identity).
func planSignature(n plan.Node, pi []int) string {
	m := func(v int) int {
		if pi == nil {
			return v
		}
		return pi[v]
	}
	var rec func(n plan.Node) string
	rec = func(n plan.Node) string {
		switch op := n.(type) {
		case *plan.Scan:
			return fmt.Sprintf("S(%d>%d:%d)", m(op.SrcVertex), m(op.DstVertex), op.EdgeLabel)
		case *plan.Extend:
			childOut := op.Child.Out()
			ds := make([]string, len(op.Descriptors))
			for i, d := range op.Descriptors {
				ds[i] = fmt.Sprintf("%d%s%d", m(childOut[d.TupleIdx]), d.Dir, d.EdgeLabel)
			}
			sort.Strings(ds)
			return fmt.Sprintf("E(%d<[%s];%s)", m(op.TargetVertex), strings.Join(ds, ","), rec(op.Child))
		case *plan.HashJoin:
			return fmt.Sprintf("J(%s;%s)", rec(op.Build), rec(op.Probe))
		default:
			return "?"
		}
	}
	return rec(n)
}
