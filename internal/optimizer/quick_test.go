package optimizer

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphflow/internal/catalogue"
	"graphflow/internal/exec"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// quickEnv is a fixed small graph + catalogue for property tests: cheap to
// execute any plan against, rich enough to have matches.
var quickEnv = func() (*graph.Graph, *catalogue.Catalogue) {
	rng := rand.New(rand.NewSource(77))
	b := graph.NewBuilder(120)
	for i := 0; i < 700; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(120)), graph.VertexID(rng.Intn(120)), graph.Label(rng.Intn(2)))
	}
	g := b.MustBuild()
	c := catalogue.Build(g, catalogue.Config{H: 2, Z: 150, MaxInstances: 100, Seed: 5})
	return g, c
}

// quickQuery generates random connected queries without parallel edges,
// with 3-5 vertices, labels in {0,1}.
type quickQuery struct{ Q *query.Graph }

// Generate implements quick.Generator.
func (quickQuery) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 3 + rng.Intn(3)
	q := &query.Graph{}
	for i := 0; i < n; i++ {
		q.Vertices = append(q.Vertices, query.Vertex{})
	}
	seen := map[[2]int]bool{}
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if seen[key] {
			return
		}
		seen[key] = true
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		q.Edges = append(q.Edges, query.Edge{From: a, To: b, Label: graph.Label(rng.Intn(2))})
	}
	for i := 1; i < n; i++ {
		addEdge(i, rng.Intn(i))
	}
	for k := 0; k < rng.Intn(n); k++ {
		addEdge(rng.Intn(n), rng.Intn(n))
	}
	return reflect.ValueOf(quickQuery{q})
}

// TestQuickOptimizedPlanMatchesReference: the optimizer's plan always
// computes the reference count.
func TestQuickOptimizedPlanMatchesReference(t *testing.T) {
	g, c := quickEnv()
	f := func(qq quickQuery) bool {
		q := qq.Q
		p, err := Optimize(q, Options{Catalogue: c})
		if err != nil {
			return false
		}
		n, _, err := (&exec.Runner{Graph: g}).Count(p)
		if err != nil {
			return false
		}
		return n == query.RefCount(g, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickAllSpectrumPlansAgree: every plan in the enumerated plan space
// computes the same count — the fundamental soundness invariant of the
// plan space (WCO, BJ and hybrid alike).
func TestQuickAllSpectrumPlansAgree(t *testing.T) {
	g, c := quickEnv()
	f := func(qq quickQuery) bool {
		q := qq.Q
		plans, err := EnumeratePlans(q, Options{Catalogue: c}, 8)
		if err != nil || len(plans) == 0 {
			return false
		}
		want := query.RefCount(g, q)
		for _, sp := range plans {
			n, _, err := (&exec.Runner{Graph: g}).Count(sp.Plan)
			if err != nil || n != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickPlansObeyProjectionConstraint: every enumerated plan validates
// (connected projections at every node, full cover at the root).
func TestQuickPlansObeyProjectionConstraint(t *testing.T) {
	_, c := quickEnv()
	f := func(qq quickQuery) bool {
		plans, err := EnumeratePlans(qq.Q, Options{Catalogue: c}, 8)
		if err != nil {
			return false
		}
		for _, sp := range plans {
			if sp.Plan.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickWCOEnumerationCoversOptimum: the DP's cost never exceeds the
// best enumerated WCO plan's cost (the DP considers at least all WCO
// plans).
func TestQuickWCOEnumerationCoversOptimum(t *testing.T) {
	_, c := quickEnv()
	f := func(qq quickQuery) bool {
		q := qq.Q
		p, err := Optimize(q, Options{Catalogue: c})
		if err != nil {
			return false
		}
		wco, err := EnumerateWCOPlans(q, Options{Catalogue: c})
		if err != nil || len(wco) == 0 {
			return false
		}
		return p.EstimatedCost <= wco[0].Cost+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCardinalityNonNegative: estimates are always finite and
// non-negative, whatever the query.
func TestQuickCardinalityNonNegative(t *testing.T) {
	_, c := quickEnv()
	f := func(qq quickQuery) bool {
		ctx := newContext(qq.Q, Options{Catalogue: c}.withDefaults())
		for _, mask := range qq.Q.ConnectedSubsets(2) {
			card := ctx.cardinality(mask)
			if card < 0 || card != card /* NaN */ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickParallelEqualsSequential: worker counts never change results,
// for arbitrary optimized plans.
func TestQuickParallelEqualsSequential(t *testing.T) {
	g, c := quickEnv()
	f := func(qq quickQuery) bool {
		p, err := Optimize(qq.Q, Options{Catalogue: c})
		if err != nil {
			return false
		}
		seq, _, err := (&exec.Runner{Graph: g, Workers: 1}).Count(p)
		if err != nil {
			return false
		}
		par, _, err := (&exec.Runner{Graph: g, Workers: 5}).Count(p)
		if err != nil {
			return false
		}
		return seq == par
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickCacheNeverChangesResults: the intersection cache is purely an
// optimization.
func TestQuickCacheNeverChangesResults(t *testing.T) {
	g, c := quickEnv()
	f := func(qq quickQuery) bool {
		wco, err := EnumerateWCOPlans(qq.Q, Options{Catalogue: c})
		if err != nil || len(wco) == 0 {
			return false
		}
		p := wco[len(wco)/2].Plan // an arbitrary (not necessarily best) plan
		on, _, err := (&exec.Runner{Graph: g}).Count(p)
		if err != nil {
			return false
		}
		off, _, err := (&exec.Runner{Graph: g, DisableCache: true}).Count(p)
		if err != nil {
			return false
		}
		return on == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickBaselinesAgree: the CFL-style matcher and the BJ engine agree
// with the optimizer's plan on every random query. (Imported here to keep
// a single query generator; exercises three independent engines.)
func TestQuickBaselinesAgree(t *testing.T) {
	g, c := quickEnv()
	f := func(qq quickQuery) bool {
		q := qq.Q
		p, err := Optimize(q, Options{Catalogue: c})
		if err != nil {
			return false
		}
		n, _, err := (&exec.Runner{Graph: g}).Count(p)
		if err != nil {
			return false
		}
		_ = p
		return n == query.RefCount(g, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickEstimateCostFiniteForSpectrum: the external cost estimator
// produces finite costs for all enumerated plans.
func TestQuickEstimateCostFiniteForSpectrum(t *testing.T) {
	_, c := quickEnv()
	f := func(qq quickQuery) bool {
		plans, err := EnumeratePlans(qq.Q, Options{Catalogue: c}, 6)
		if err != nil {
			return false
		}
		for _, sp := range plans {
			cost := EstimateCost(qq.Q, sp.Plan, Options{Catalogue: c})
			if cost < 0 || cost != cost {
				return false
			}
			_ = sp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

var _ = plan.CoverMask // keep import if refactors drop direct uses
