// Package optimizer implements the paper's primary contribution: the
// cost-based dynamic-programming optimizer of Section 4 that enumerates
// WCO, binary-join and hybrid plans over connected vertex subsets of the
// query, ranked by i-cost (Section 3.3) combined with the hash-join cost
// model of Section 4.2 and the catalogue estimates of Section 5.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"graphflow/internal/catalogue"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// Default hash-join weights (i-cost units per hashed/probed tuple). They
// can be recalibrated per machine with Calibrate.
const (
	DefaultW1 = 3.0
	DefaultW2 = 1.0
)

// Options configures one optimization.
type Options struct {
	// Catalogue supplies the statistics; required.
	Catalogue *catalogue.Catalogue
	// W1 and W2 are the hash-join cost weights (Section 4.2); zero values
	// take the defaults.
	W1, W2 float64
	// WCOOnly restricts the plan space to WCO plans (the BiGJoin/earlier
	// Graphflow configuration used as a baseline).
	WCOOnly bool
	// NoHybrid restricts hash joins to never be followed by intersections
	// above them — not used by the main optimizer, reserved for baselines.
	//
	// CacheOblivious disables intersection-cache-aware costing (the
	// cache-oblivious optimizer discussed in Section 5.2).
	CacheOblivious bool
	// HubThreshold is the store's hub bitset indexing knob (0 takes
	// graph.DefaultHubThreshold, negative means no bitset indexes). The
	// cost model uses it to price E/I operators with the degree-adaptive
	// kernel engine: intersections against hub-indexed lists cost the
	// probe, not the scan, which steers plan choice toward intersections
	// the engine executes cheaply.
	HubThreshold int
	// FullEnumerationLimit is the largest query-vertex count for which all
	// WCO orderings are enumerated exactly (Section 4.4); default 10.
	FullEnumerationLimit int
	// BeamWidth is the number of subqueries kept per level for larger
	// queries (Section 4.4); default 5.
	BeamWidth int
	// Factorized prices star-shaped suffixes at set-computation cost: the
	// cache-conscious multiplier collapse walks back through *every*
	// trailing leaf none of the new extension's descriptors read, instead
	// of just the single last-added vertex, so a run of k trailing leaves
	// is charged card(prefix) × per-leaf i-cost rather than the output
	// cardinality of the growing cross-product. This matches what the
	// factorized execution tier actually does (one extension set per leaf
	// per distinct prefix) and steers plan choice toward orderings that
	// leave star leaves last.
	Factorized bool
}

func (o Options) withDefaults() Options {
	if o.W1 == 0 {
		o.W1 = DefaultW1
	}
	if o.W2 == 0 {
		o.W2 = DefaultW2
	}
	if o.FullEnumerationLimit == 0 {
		o.FullEnumerationLimit = 10
	}
	if o.BeamWidth == 0 {
		o.BeamWidth = 5
	}
	return o
}

// planInfo is a DP table row: the best plan found for one subquery mask.
type planInfo struct {
	node plan.Node
	cost float64
}

// Optimize returns the lowest-estimated-cost plan for q (Algorithm 1).
func Optimize(q *query.Graph, opts Options) (*plan.Plan, error) {
	opts = opts.withDefaults()
	if opts.Catalogue == nil {
		return nil, fmt.Errorf("optimizer: Options.Catalogue is required")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := checkNoParallelEdges(q); err != nil {
		return nil, err
	}
	ctx := newContext(q, opts)
	m := q.NumVertices()

	var table map[query.Mask]*planInfo
	if m > opts.FullEnumerationLimit {
		table = beamSearch(ctx)
	} else {
		table = dynamicProgram(ctx)
	}
	full := query.AllMask(m)
	best, ok := table[full]
	if !ok || best == nil {
		return nil, fmt.Errorf("optimizer: no plan found")
	}
	p := &plan.Plan{
		Query:                q,
		Root:                 best.node,
		EstimatedCost:        best.cost,
		EstimatedCardinality: ctx.cardinality(full),
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: produced invalid plan: %w", err)
	}
	return p, nil
}

// checkNoParallelEdges rejects queries with more than one edge between the
// same vertex pair: a SCAN matches exactly one query edge and the engine
// has no residual-filter operator (the paper's queries have none either).
func checkNoParallelEdges(q *query.Graph) error {
	seen := map[[2]int]bool{}
	for _, e := range q.Edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return fmt.Errorf("optimizer: parallel edges between a%d and a%d are not supported", a+1, b+1)
		}
		seen[[2]int{a, b}] = true
	}
	return nil
}

// dynamicProgram runs Algorithm 1 exactly: seed 2-vertex subqueries, fold
// in the best full WCO enumeration per mask, then grow masks by E/I
// extensions and binary joins.
func dynamicProgram(ctx *context) map[query.Mask]*planInfo {
	q := ctx.q
	table := map[query.Mask]*planInfo{}

	// Line 2: initialise each query edge to its scan.
	for _, e := range q.Edges {
		mask := query.Bit(e.From) | query.Bit(e.To)
		cost := 0.0 // scanning is the unavoidable input cost; plans differ beyond it
		cand := &planInfo{node: plan.NewScan(q, e), cost: cost}
		if cur, ok := table[mask]; !ok || cand.cost < cur.cost {
			table[mask] = cand
		}
	}

	// Line 1: enumerate all WCO plans; record the cheapest per prefix mask
	// (intersection-cache effects make the best WCO plan for Qk not
	// necessarily extend the best plan for Qk-1).
	wcoBest := enumerateWCOBest(ctx)

	masks := q.ConnectedSubsets(3)
	for _, mask := range masks {
		var best *planInfo
		consider := func(pi *planInfo) {
			if pi != nil && (best == nil || pi.cost < best.cost) {
				best = pi
			}
		}
		// (i) best WCO plan for this subquery.
		consider(wcoBest[mask])
		if !ctx.opts.WCOOnly {
			// (ii) extend a smaller best plan by one vertex.
			for v := 0; v < q.NumVertices(); v++ {
				if mask&query.Bit(v) == 0 {
					continue
				}
				rest := mask &^ query.Bit(v)
				child, ok := table[rest]
				if !ok || !q.IsConnected(rest) || len(q.EdgesBetween(rest, v)) == 0 {
					continue
				}
				ext, err := plan.NewExtend(q, child.node, v)
				if err != nil {
					continue
				}
				consider(&planInfo{node: ext, cost: child.cost + ctx.extendCost(rest, v, child.node)})
			}
			// (iii) binary join of two smaller best plans.
			for _, cand := range joinCandidates(ctx, mask, table) {
				consider(cand)
			}
		} else if best == nil {
			// WCOOnly: extensions of stored WCO plans only.
			for v := 0; v < q.NumVertices(); v++ {
				if mask&query.Bit(v) == 0 {
					continue
				}
				rest := mask &^ query.Bit(v)
				child, ok := table[rest]
				if !ok || len(q.EdgesBetween(rest, v)) == 0 {
					continue
				}
				ext, err := plan.NewExtend(q, child.node, v)
				if err != nil {
					continue
				}
				consider(&planInfo{node: ext, cost: child.cost + ctx.extendCost(rest, v, child.node)})
			}
		}
		if best != nil {
			table[mask] = best
		}
	}
	return table
}

// joinCandidates enumerates binary joins computing mask from two connected
// subqueries already in the table. Following Section 4.3, joins that a
// single E/I could replace (one side adds exactly one vertex) are omitted —
// case (ii) covers them more cheaply.
func joinCandidates(ctx *context, mask query.Mask, table map[query.Mask]*planInfo) []*planInfo {
	q := ctx.q
	var out []*planInfo
	lowest := query.Mask(1) << uint(bits.TrailingZeros32(mask))
	edgesWithin := q.EdgesWithin(mask)

	// Enumerate c1 as submasks of mask containing the lowest bit.
	for c1 := mask; c1 > 0; c1 = (c1 - 1) & mask {
		if c1&lowest == 0 || c1 == mask {
			continue
		}
		info1, ok := table[c1]
		if !ok {
			continue
		}
		// c2 must cover mask\c1 plus a non-empty shared part of c1.
		rest := mask &^ c1
		if rest == 0 {
			continue
		}
		shared := c1
		for s := shared; ; s = (s - 1) & shared {
			c2 := rest | s
			if s != 0 && c2 != mask {
				if info2, ok := table[c2]; ok && c1&c2 != 0 {
					if cand := tryJoin(ctx, mask, c1, c2, info1, info2, edgesWithin); cand != nil {
						out = append(out, cand)
					}
				}
			}
			if s == 0 {
				break
			}
		}
	}
	return out
}

func tryJoin(ctx *context, mask, c1, c2 query.Mask, i1, i2 *planInfo, edgesWithin []query.Edge) *planInfo {
	// Every edge of the mask-projection must lie inside one side (the
	// projection constraint makes Qk = Qc1 ∪ Qc2).
	for _, e := range edgesWithin {
		eb := query.Bit(e.From) | query.Bit(e.To)
		if eb&^c1 != 0 && eb&^c2 != 0 {
			return nil
		}
	}
	// Joins replaceable by a single-list E/I are omitted (Section 4.3's
	// a1->a2->a3 example): one side is a single query edge hanging off one
	// shared vertex. Joins of larger sub-queries stay — the diamond-X
	// triangles join of Figure 1c is a legitimate hybrid plan.
	if singleEdgeAttachment(c1, c2) || singleEdgeAttachment(c2, c1) {
		return nil
	}
	// Orient: build on the smaller estimated side.
	build, probe := c1, c2
	bi, pi := i1, i2
	if ctx.cardinality(c2) < ctx.cardinality(c1) {
		build, probe = c2, c1
		bi, pi = i2, i1
	}
	hj, err := plan.NewHashJoin(bi.node, pi.node)
	if err != nil {
		return nil
	}
	cost := bi.cost + pi.cost + ctx.joinCost(build, probe)
	return &planInfo{node: hj, cost: cost}
}

// singleEdgeAttachment reports whether side is a 2-vertex subquery sharing
// exactly one vertex with other — the hash joins a single-descriptor E/I
// always beats.
func singleEdgeAttachment(side, other query.Mask) bool {
	return bits.OnesCount32(side) == 2 && bits.OnesCount32(side&other) == 1
}

// beamSearch is the Section 4.4 path for very large queries: WCO plans are
// not enumerated separately, and only the BeamWidth cheapest subqueries are
// kept per level.
func beamSearch(ctx *context) map[query.Mask]*planInfo {
	q := ctx.q
	m := q.NumVertices()
	table := map[query.Mask]*planInfo{}
	levels := make([][]query.Mask, m+1)

	for _, e := range q.Edges {
		mask := query.Bit(e.From) | query.Bit(e.To)
		if cur, ok := table[mask]; !ok || cur.cost > 0 {
			table[mask] = &planInfo{node: plan.NewScan(q, e), cost: 0}
		}
	}
	for mask := range table {
		levels[2] = append(levels[2], mask)
	}
	sort.Slice(levels[2], func(i, j int) bool { return levels[2][i] < levels[2][j] })

	for k := 3; k <= m; k++ {
		cands := map[query.Mask]*planInfo{}
		considerExt := func(rest query.Mask, v int) {
			child := table[rest]
			mask := rest | query.Bit(v)
			ext, err := plan.NewExtend(q, child.node, v)
			if err != nil {
				return
			}
			cost := child.cost + ctx.extendCost(rest, v, child.node)
			if cur, ok := cands[mask]; !ok || cost < cur.cost {
				cands[mask] = &planInfo{node: ext, cost: cost}
			}
		}
		for _, rest := range levels[k-1] {
			for v := 0; v < m; v++ {
				if rest&query.Bit(v) != 0 || len(q.EdgesBetween(rest, v)) == 0 {
					continue
				}
				considerExt(rest, v)
			}
		}
		// Joins of stored smaller levels.
		for k1 := 2; k1 <= k-2; k1++ {
			for _, c1 := range levels[k1] {
				for k2 := k - k1; k2 <= k-1; k2++ {
					if k2 < 2 || k2 > m {
						continue
					}
					for _, c2 := range levels[k2] {
						mask := c1 | c2
						if bits.OnesCount32(mask) != k || c1&c2 == 0 {
							continue
						}
						if cand := tryJoin(ctx, mask, c1, c2, table[c1], table[c2], q.EdgesWithin(mask)); cand != nil {
							if cur, ok := cands[mask]; !ok || cand.cost < cur.cost {
								cands[mask] = cand
							}
						}
					}
				}
			}
		}
		// Keep the BeamWidth cheapest (always keep the full mask).
		type entry struct {
			mask query.Mask
			pi   *planInfo
		}
		var list []entry
		for mask, pi := range cands {
			list = append(list, entry{mask, pi})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].pi.cost != list[j].pi.cost {
				return list[i].pi.cost < list[j].pi.cost
			}
			return list[i].mask < list[j].mask
		})
		keep := ctx.opts.BeamWidth
		for i, ent := range list {
			if i >= keep && ent.mask != query.AllMask(m) {
				continue
			}
			table[ent.mask] = ent.pi
			levels[k] = append(levels[k], ent.mask)
		}
	}
	return table
}

// EstimateCost exposes the cost model for a given externally-built plan:
// the sum of its operators' estimated costs. Used by the spectrum and
// baseline experiments to rank arbitrary plans consistently.
func EstimateCost(q *query.Graph, p *plan.Plan, opts Options) float64 {
	opts = opts.withDefaults()
	ctx := newContext(q, opts)
	var rec func(n plan.Node) float64
	rec = func(n plan.Node) float64 {
		switch op := n.(type) {
		case *plan.Scan:
			return 0
		case *plan.Extend:
			childMask := plan.CoverMask(op.Child)
			return rec(op.Child) + ctx.extendCost(childMask, op.TargetVertex, op.Child)
		case *plan.HashJoin:
			return rec(op.Build) + rec(op.Probe) + ctx.joinCost(plan.CoverMask(op.Build), plan.CoverMask(op.Probe))
		default:
			return math.Inf(1)
		}
	}
	return rec(p.Root)
}
