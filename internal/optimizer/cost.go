package optimizer

import (
	"math/bits"

	"graphflow/internal/catalogue"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// context carries the per-query state of one optimization: the catalogue,
// the options, and memoized cardinality and extension-statistics caches.
type context struct {
	q    *query.Graph
	cat  *catalogue.Catalogue
	opts Options

	card     map[query.Mask]float64
	extStats map[extKey]extStat
	sigMemo  map[extKey]string
}

type extKey struct {
	mask query.Mask
	v    int
}

// extStat holds the catalogue estimates for extending mask by v: per-edge
// average list sizes aligned with edges.
type extStat struct {
	edges []query.Edge // edges of q between mask and v
	sizes []float64
	mu    float64
}

func newContext(q *query.Graph, opts Options) *context {
	return &context{
		q:        q,
		cat:      opts.Catalogue,
		opts:     opts,
		card:     map[query.Mask]float64{},
		extStats: map[extKey]extStat{},
		sigMemo:  map[extKey]string{},
	}
}

// extension returns the memoized catalogue statistics for extending the
// subquery on mask by query vertex v.
func (c *context) extension(mask query.Mask, v int) extStat {
	key := extKey{mask, v}
	if st, ok := c.extStats[key]; ok {
		return st
	}
	base, orig := c.q.Project(mask)
	newIdx := make(map[int]int, len(orig))
	for ni, ov := range orig {
		newIdx[ov] = ni
	}
	target := base.NumVertices()
	qEdges := c.q.EdgesBetween(mask, v)
	extEdges := make([]query.Edge, len(qEdges))
	for i, e := range qEdges {
		if e.From == v {
			extEdges[i] = query.Edge{From: target, To: newIdx[e.To], Label: e.Label}
		} else {
			extEdges[i] = query.Edge{From: newIdx[e.From], To: target, Label: e.Label}
		}
	}
	sizes, mu, _ := c.cat.ExtensionStats(base, extEdges, c.q.Vertices[v].Label)
	st := extStat{edges: qEdges, sizes: sizes, mu: mu}
	c.extStats[key] = st
	return st
}

// cardinality estimates the number of matches of the projection of q onto
// mask (Section 5.2, estimate 1): a deterministic extension chain whose µ
// values multiply out. Memoized per mask.
func (c *context) cardinality(mask query.Mask) float64 {
	if v, ok := c.card[mask]; ok {
		return v
	}
	var out float64
	switch bits.OnesCount32(mask) {
	case 0:
		out = 0
	case 1:
		v := bits.TrailingZeros32(mask)
		out = c.cat.VertexCountByLabel(c.q.Vertices[v].Label)
	case 2:
		es := c.q.EdgesWithin(mask)
		if len(es) == 0 {
			out = 0
		} else {
			e := es[0]
			out = c.cat.ScanCount(e.Label, c.q.Vertices[e.From].Label, c.q.Vertices[e.To].Label)
		}
	default:
		// Remove the most-connected removable vertex: its µ is estimated
		// from the largest base, so the chain stays maximally informed.
		bestV, bestDeg := -1, -1
		for v := 0; v < c.q.NumVertices(); v++ {
			if mask&query.Bit(v) == 0 {
				continue
			}
			rest := mask &^ query.Bit(v)
			if !c.q.IsConnected(rest) {
				continue
			}
			d := len(c.q.EdgesBetween(rest, v))
			if d > bestDeg || (d == bestDeg && v < bestV) {
				bestV, bestDeg = v, d
			}
		}
		if bestV < 0 {
			out = 0
		} else {
			rest := mask &^ query.Bit(bestV)
			st := c.extension(rest, bestV)
			out = c.cardinality(rest) * st.mu
		}
	}
	c.card[mask] = out
	return out
}

// extendCost returns the estimated i-cost of an E/I operator that extends
// the subquery on childMask (already computed by childPlan) with vertex v
// (Equations 1-2 with the cache-conscious refinement of Section 5.2).
//
// The executor's intersection cache reuses the previous extension set when
// consecutive tuples agree on every descriptor anchor. Tuples stream in
// chain order, so consecutive tuples share all slots except the child's
// most recently added vertex: if no descriptor reads that vertex, the
// number of distinct intersections collapses from card(childMask) to
// card(childMask minus the last-added vertex). A SCAN groups its tuples by
// source vertex, so its "last added" is the destination.
func (c *context) extendCost(childMask query.Mask, v int, childPlan plan.Node) float64 {
	st := c.extension(childMask, v)
	return c.reuseMult(childMask, st.edges, v, childPlan) *
		catalogue.StarLeafICost(st.sizes, c.opts.HubThreshold)
}

// reuseMult estimates the number of distinct intersections the E/I
// operator extending childMask by v performs. Cache-consciously, tuples
// stream in chain order — consecutive tuples differ only in a trailing
// run of recently-added vertices — so every trailing vertex no
// descriptor of v reads can be stripped from the multiplier: its
// variation keeps v's descriptor key constant, and the single-entry
// intersection cache serves the whole run. Without Factorized pricing
// the walk conservatively stops after one step (the PR-4 refinement);
// with it, the walk continues through a whole star-shaped suffix of
// leaves, collapsing the multiplier to the prefix cardinality — the
// set-computation pricing the factorized execution tier realizes.
func (c *context) reuseMult(childMask query.Mask, edges []query.Edge, v int, childPlan plan.Node) float64 {
	mask := childMask
	if !c.opts.CacheOblivious {
		node := childPlan
		for {
			last, ok := lastAddedVertex(node)
			if !ok || anchorsTouch(edges, v, last) {
				break
			}
			mask &^= query.Bit(last)
			if !c.opts.Factorized {
				break
			}
			ext, isExt := node.(*plan.Extend)
			if !isExt {
				// A SCAN's destination is already stripped; its source is
				// the outermost loop and always remains.
				break
			}
			node = ext.Child
		}
	}
	return c.cardinality(mask)
}

// joinCost returns the cost of hash-joining build and probe subqueries
// (Section 4.2): w1*n1 + w2*n2 in i-cost units.
func (c *context) joinCost(buildMask, probeMask query.Mask) float64 {
	return c.opts.W1*c.cardinality(buildMask) + c.opts.W2*c.cardinality(probeMask)
}

// lastAddedVertex reports the query vertex whose value varies fastest in
// the output stream of node: the target of an E/I, or the destination of a
// SCAN. Hash-join outputs interleave build rows, so no reuse is assumed.
func lastAddedVertex(n plan.Node) (int, bool) {
	switch op := n.(type) {
	case *plan.Extend:
		return op.TargetVertex, true
	case *plan.Scan:
		return op.DstVertex, true
	default:
		return 0, false
	}
}

// anchorsTouch reports whether any extension edge (anchoring an adjacency
// list) reads the given vertex.
func anchorsTouch(edges []query.Edge, target, vertex int) bool {
	for _, e := range edges {
		anchor := e.From
		if anchor == target {
			anchor = e.To
		}
		if anchor == vertex {
			return true
		}
	}
	return false
}
