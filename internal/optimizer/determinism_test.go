package optimizer

import (
	"testing"

	"graphflow/internal/catalogue"
	"graphflow/internal/datagen"
	"graphflow/internal/query"
)

// TestOptimizeDeterministic re-optimizes each benchmark shape many times
// and requires bit-identical plans: cached plans must be reproducible for
// a given canonical query, so nothing in the DP may depend on map
// iteration order or other run-to-run state.
func TestOptimizeDeterministic(t *testing.T) {
	g := datagen.ByName("Epinions", 1)
	cat := catalogue.Build(g, catalogue.Config{H: 3, Z: 200, Seed: 1})
	patterns := []string{
		"a->b, b->c, a->c",
		"a->b, b->c, c->d, a->d",
		"a->b, b->c, c->d, d->a, a->c",
		"a->b, a->c, b->d, c->d, b->c",
		"a->b, b->c, c->d, d->e, a->e, b->e",
	}
	for _, pat := range patterns {
		canon, _ := query.MustParse(pat).Canonical()
		var want string
		for i := 0; i < 10; i++ {
			p, err := Optimize(canon, Options{Catalogue: cat})
			if err != nil {
				t.Fatalf("%s: %v", pat, err)
			}
			got := p.Describe()
			if want == "" {
				want = got
			} else if got != want {
				t.Fatalf("%s: run %d produced a different plan:\n%s\nvs\n%s", pat, i, got, want)
			}
		}
	}
}

// TestOptimizeCanonicalSpellingsAgree checks that isomorphic spellings,
// routed through the canonical form, optimize to the identical plan —
// the property that lets one cached plan serve every spelling.
func TestOptimizeCanonicalSpellingsAgree(t *testing.T) {
	g := datagen.ByName("Epinions", 1)
	cat := catalogue.Build(g, catalogue.Config{H: 3, Z: 200, Seed: 1})
	spellings := []string{
		"a->b, b->c, a->c",
		"x->y, y->z, x->z",
		"c->b, a->c, a->b", // c->b? relabel: a->c, c->b, a->b: same asymmetric triangle
	}
	var want string
	for _, pat := range spellings {
		canon, _ := query.MustParse(pat).Canonical()
		p, err := Optimize(canon, Options{Catalogue: cat})
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		if want == "" {
			want = p.Describe()
		} else if got := p.Describe(); got != want {
			t.Fatalf("%s: plan differs across isomorphic spellings:\n%s\nvs\n%s", pat, got, want)
		}
	}
}
