package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"graphflow/internal/catalogue"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// enumerateWCOBest walks every query vertex ordering with connected
// prefixes and records, for every prefix mask, the cheapest WCO plan
// reaching it (line 1 of Algorithm 1). The full-query entries double as
// the complete WCO plan space.
func enumerateWCOBest(ctx *context) map[query.Mask]*planInfo {
	q := ctx.q
	best := map[query.Mask]*planInfo{}
	consider := func(mask query.Mask, node plan.Node, cost float64) {
		if cur, ok := best[mask]; !ok || cost < cur.cost {
			best[mask] = &planInfo{node: node, cost: cost}
		}
	}
	var rec func(mask query.Mask, node plan.Node, cost float64)
	rec = func(mask query.Mask, node plan.Node, cost float64) {
		consider(mask, node, cost)
		if mask == query.AllMask(q.NumVertices()) {
			return
		}
		for v := 0; v < q.NumVertices(); v++ {
			if mask&query.Bit(v) != 0 || len(q.EdgesBetween(mask, v)) == 0 {
				continue
			}
			ext, err := plan.NewExtend(q, node, v)
			if err != nil {
				continue
			}
			// extendCost reads the child's trailing chain off node, so the
			// last-added vertex needs no explicit threading.
			rec(mask|query.Bit(v), ext, cost+ctx.extendCost(mask, v, node))
		}
	}
	for _, e := range q.Edges {
		scan := plan.NewScan(q, e)
		mask := query.Bit(e.From) | query.Bit(e.To)
		rec(mask, scan, 0)
	}
	return best
}

// WCOPlan is one query-vertex ordering with its plan and estimated cost.
type WCOPlan struct {
	Order []int // query vertex indices in matching order
	Plan  *plan.Plan
	Cost  float64
}

// EnumerateWCOPlans returns every WCO plan (query vertex ordering with
// connected prefixes) for q, deduplicated so that orderings performing
// identical sequences of operations — equivalent under the query's
// symmetries, such as a2a3a1a4 vs a2a3a4a1 on the symmetric diamond-X —
// appear once (Section 3.2.3). Results are sorted by estimated cost.
func EnumerateWCOPlans(q *query.Graph, opts Options) ([]WCOPlan, error) {
	opts = opts.withDefaults()
	if opts.Catalogue == nil {
		return nil, fmt.Errorf("optimizer: Options.Catalogue is required")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := checkNoParallelEdges(q); err != nil {
		return nil, err
	}
	ctx := newContext(q, opts)
	seen := map[string]bool{}
	var out []WCOPlan

	var rec func(order []int, mask query.Mask, lastAdded int, node plan.Node, cost float64, sig []string)
	rec = func(order []int, mask query.Mask, lastAdded int, node plan.Node, cost float64, sig []string) {
		if mask == query.AllMask(q.NumVertices()) {
			signature := strings.Join(sig, "|")
			if !seen[signature] {
				seen[signature] = true
				out = append(out, WCOPlan{
					Order: append([]int(nil), order...),
					Plan:  &plan.Plan{Query: q, Root: node, EstimatedCost: cost, EstimatedCardinality: ctx.cardinality(mask)},
					Cost:  cost,
				})
			}
			return
		}
		for v := 0; v < q.NumVertices(); v++ {
			if mask&query.Bit(v) != 0 || len(q.EdgesBetween(mask, v)) == 0 {
				continue
			}
			ext, err := plan.NewExtend(q, node, v)
			if err != nil {
				continue
			}
			stepSig := ctx.stepSignature(mask, v, lastAdded)
			rec(append(order, v), mask|query.Bit(v), v, ext,
				cost+ctx.extendCost(mask, v, node), append(sig, stepSig))
		}
	}
	for _, e := range q.Edges {
		scan := plan.NewScan(q, e)
		mask := query.Bit(e.From) | query.Bit(e.To)
		scanSig := scanSignature(q, e)
		rec([]int{e.From, e.To}, mask, e.To, scan, 0, []string{scanSig})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out, nil
}

// stepSignature canonically describes one E/I step: the labelled prefix
// pattern with the extension marked, plus whether the step can reuse the
// intersection cache. Orderings with identical step sequences perform
// identical work.
func (c *context) stepSignature(mask query.Mask, v, lastAdded int) string {
	cached := "-"
	if !anchorsTouch(c.q.EdgesBetween(mask, v), v, lastAdded) {
		cached = "c"
	}
	if sig, ok := c.sigMemo[extKey{mask, v}]; ok {
		return sig + cached
	}
	base, orig := c.q.Project(mask)
	newIdx := make(map[int]int, len(orig))
	for ni, ov := range orig {
		newIdx[ov] = ni
	}
	target := base.NumVertices()
	var edges []query.Edge
	for _, e := range c.q.EdgesBetween(mask, v) {
		if e.From == v {
			edges = append(edges, query.Edge{From: target, To: newIdx[e.To], Label: e.Label})
		} else {
			edges = append(edges, query.Edge{From: newIdx[e.From], To: target, Label: e.Label})
		}
	}
	key, _ := (catalogue.Extension{Base: base, Edges: edges, TargetLabel: c.q.Vertices[v].Label}).Key()
	c.sigMemo[extKey{mask, v}] = key
	return key + cached
}

func scanSignature(q *query.Graph, e query.Edge) string {
	return fmt.Sprintf("scan:%d/%d/%d", e.Label, q.Vertices[e.From].Label, q.Vertices[e.To].Label)
}
