package optimizer

import (
	"time"

	"graphflow/internal/exec"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// Calibrate empirically derives the hash-join weights w1 and w2 (Section
// 4.2): it profiles an intersection-heavy WCO plan to obtain the wall-time
// of one i-cost unit, then profiles a hash-join plan to obtain per-hashed-
// and per-probed-tuple times, and expresses the latter in i-cost units.
// Falls back to the defaults if the micro-profiles are too small to be
// reliable.
func Calibrate(g *graph.Graph) (w1, w2 float64) {
	w1, w2 = DefaultW1, DefaultW2
	runner := &exec.Runner{Graph: g}

	// i-cost unit time: close triangles over the whole graph.
	q := query.Q1()
	scan := plan.NewScan(q, q.Edges[0])
	ext, err := plan.NewExtend(q, scan, 2)
	if err != nil {
		return w1, w2
	}
	wcoPlan := &plan.Plan{Query: q, Root: ext}
	start := time.Now()
	_, prof, err := runner.Count(wcoPlan)
	if err != nil || prof.ICost < 1000 {
		return w1, w2
	}
	icostUnit := time.Since(start).Seconds() / float64(prof.ICost)

	// Hash-join time: join two scans of a 3-path (a1->a2 joined a2->a3).
	q3 := query.MustParse("a1->a2, a2->a3")
	left := plan.NewScan(q3, q3.Edges[0])
	right := plan.NewScan(q3, q3.Edges[1])
	hj, err := plan.NewHashJoin(left, right)
	if err != nil {
		return w1, w2
	}
	hjPlan := &plan.Plan{Query: q3, Root: hj}
	start = time.Now()
	_, hjProf, err := runner.Count(hjPlan)
	if err != nil || hjProf.HashedTuples < 1000 || hjProf.ProbedTuples < 1000 {
		return w1, w2
	}
	elapsed := time.Since(start).Seconds()
	// Split the join time between build and probe using a fixed 2:1 cost
	// ratio for insert vs probe (hashing + allocation vs lookup), then
	// normalise to i-cost units.
	denom := 2*float64(hjProf.HashedTuples) + float64(hjProf.ProbedTuples)
	if denom == 0 || icostUnit == 0 {
		return w1, w2
	}
	perUnit := elapsed / denom
	w1 = clampWeight(2 * perUnit / icostUnit)
	w2 = clampWeight(perUnit / icostUnit)
	return w1, w2
}

// clampWeight bounds calibrated weights to a sane range so noisy
// micro-profiles cannot produce degenerate cost models.
func clampWeight(w float64) float64 {
	const lo, hi = 0.25, 32.0
	if w < lo {
		return lo
	}
	if w > hi {
		return hi
	}
	return w
}
