package optimizer

import (
	"fmt"
	"testing"

	"graphflow/internal/catalogue"
	"graphflow/internal/datagen"
	"graphflow/internal/exec"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// testEnv builds a graph + catalogue pair once per test binary.
var (
	amazonG   = datagen.Amazon(1)
	amazonCat = catalogue.Build(amazonG, catalogue.Config{H: 3, Z: 500, MaxInstances: 300, Seed: 7})
	webG      = datagen.Google(1)
	webCat    = catalogue.Build(webG, catalogue.Config{H: 3, Z: 500, MaxInstances: 300, Seed: 7})
)

func amazonOpts() Options { return Options{Catalogue: amazonCat} }

func countWith(t *testing.T, g *graph.Graph, p *plan.Plan) int64 {
	t.Helper()
	n, _, err := (&exec.Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return n
}

func TestOptimizeAllBenchmarksCorrect(t *testing.T) {
	small := datagen.CoPurchase(datagen.CoPurchaseConfig{N: 300, K: 4, Rewire: 0.2, Seed: 5})
	smallCat := catalogue.Build(small, catalogue.Config{H: 2, Z: 200, MaxInstances: 100, Seed: 3})
	for j := 1; j <= 14; j++ {
		q := query.Benchmark(j)
		p, err := Optimize(q, amazonOpts())
		if err != nil {
			t.Fatalf("Q%d: Optimize: %v", j, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Q%d: invalid plan: %v", j, err)
		}
		if j >= 9 && testing.Short() {
			continue
		}
		// Correctness vs reference matcher on a downsized graph.
		ps, err := Optimize(q, Options{Catalogue: smallCat})
		if err != nil {
			t.Fatalf("Q%d small: %v", j, err)
		}
		got := countWith(t, small, ps)
		want := query.RefCount(small, q)
		if got != want {
			t.Errorf("Q%d: optimized plan count = %d, reference = %d\n%s", j, got, want, ps.Describe())
		}
	}
}

func TestOptimizePicksWCOForTriangle(t *testing.T) {
	p, err := Optimize(query.Q1(), amazonOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsWCO() {
		t.Errorf("triangle plan should be WCO:\n%s", p.Describe())
	}
}

func TestOptimizePicksWCOForClique(t *testing.T) {
	// Densely cyclic queries favour WCO plans (Section 8.2).
	p, err := Optimize(query.Q6(), amazonOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsWCO() {
		t.Errorf("4-clique plan should be WCO:\n%s", p.Describe())
	}
}

func TestWCOOnlyOption(t *testing.T) {
	p, err := Optimize(query.Q8(), Options{Catalogue: amazonCat, WCOOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsWCO() {
		t.Errorf("WCOOnly produced a non-WCO plan:\n%s", p.Describe())
	}
}

func TestEnumerateWCOPlansTriangle(t *testing.T) {
	plans, err := EnumerateWCOPlans(query.Q1(), amazonOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The asymmetric triangle has exactly 3 distinct QVOs (Section 3.2.1).
	if len(plans) != 3 {
		t.Fatalf("triangle WCO plans = %d, want 3", len(plans))
	}
	// Sorted by cost.
	for i := 1; i < len(plans); i++ {
		if plans[i].Cost < plans[i-1].Cost {
			t.Errorf("plans not cost-sorted")
		}
	}
	// All plans must count the same result.
	want := countWith(t, amazonG, plans[0].Plan)
	for _, wp := range plans[1:] {
		if got := countWith(t, amazonG, wp.Plan); got != want {
			t.Errorf("order %v: count = %d, want %d", wp.Order, got, want)
		}
	}
}

func TestEnumerateWCOPlansDedupSymmetry(t *testing.T) {
	// Q5 (symmetric diamond-X) has 8 raw orderings of interest; symmetric
	// pairs like a2a3a1a4 / a2a3a4a1 must be merged (Section 3.2.3).
	plans, err := EnumerateWCOPlans(query.Q5(), amazonOpts())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, wp := range plans {
		sig := planSignature(wp.Plan.Root, nil)
		if seen[sig] {
			t.Errorf("duplicate plan signature in deduped enumeration")
		}
		seen[sig] = true
	}
	if len(plans) == 0 || len(plans) > 12 {
		t.Errorf("Q5 deduped WCO plan count = %d, expected a handful", len(plans))
	}
}

func TestCacheConsciousBeatsObliviousOnQ5(t *testing.T) {
	// The cache-conscious optimizer must pick an ordering that reuses the
	// intersection cache on the symmetric diamond-X (Section 5.2 discussion
	// of Table 6); the executor profile then shows cache hits.
	p, err := Optimize(query.Q5(), amazonOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsWCO() {
		t.Skipf("picked non-WCO plan:\n%s", p.Describe())
	}
	_, prof, err := (&exec.Runner{Graph: amazonG}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.CacheHits == 0 {
		t.Errorf("cache-conscious plan shows no cache hits:\n%s", p.Describe())
	}
}

func TestQ9HybridPlanShape(t *testing.T) {
	// Figure 10: on suitable data the optimizer mixes joins and
	// intersections for Q9. We assert the plan is valid and correct, and
	// that the plan space search at least considered hybrid shapes by
	// verifying the estimated cost is no worse than the best WCO plan.
	p, err := Optimize(query.Q9(), amazonOpts())
	if err != nil {
		t.Fatal(err)
	}
	wco, err := EnumerateWCOPlans(query.Q9(), amazonOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(wco) == 0 {
		t.Fatal("no WCO plans")
	}
	if p.EstimatedCost > wco[0].Cost+1e-9 {
		t.Errorf("DP plan cost %v worse than best WCO %v", p.EstimatedCost, wco[0].Cost)
	}
}

func TestEnumeratePlansSpectrumClasses(t *testing.T) {
	plans, err := EnumeratePlans(query.Q4(), amazonOpts(), 16)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, sp := range plans {
		kinds[sp.Kind]++
	}
	if kinds["wco"] == 0 {
		t.Errorf("spectrum missing WCO plans: %v", kinds)
	}
	if kinds["hybrid"] == 0 {
		t.Errorf("diamond-X spectrum should contain hybrid plans: %v", kinds)
	}
	// All spectrum plans must be correct.
	small := datagen.CoPurchase(datagen.CoPurchaseConfig{N: 250, K: 4, Rewire: 0.2, Seed: 9})
	want := query.RefCount(small, query.Q4())
	for i, sp := range plans {
		if i >= 8 {
			break // correctness spot-check on the cheapest few
		}
		got := countWith(t, small, sp.Plan)
		if got != want {
			t.Errorf("spectrum plan %d (%s) count = %d, want %d\n%s", i, sp.Kind, got, want, sp.Plan.Describe())
		}
	}
}

func TestSpectrumContainsNonGHDPlanForSixCycle(t *testing.T) {
	// The 6-cycle's signature hybrid plan (Figure 1d): join two paths, then
	// close the cycle with an intersection — an E/I above a hash join.
	plans, err := EnumeratePlans(query.Q12(), amazonOpts(), 24)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range plans {
		if ext, ok := sp.Plan.Root.(*plan.Extend); ok && len(ext.Descriptors) >= 2 {
			hasJoinBelow := false
			plan.Walk(ext.Child, func(n plan.Node) {
				if _, isJ := n.(*plan.HashJoin); isJ {
					hasJoinBelow = true
				}
			})
			if hasJoinBelow {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("6-cycle spectrum lacks the intersect-after-join hybrid shape (Figure 1d)")
	}
}

func TestBeamSearchLargeQuery(t *testing.T) {
	// A 12-vertex path exceeds the full-enumeration limit and must go
	// through beam search, still yielding a valid, correct plan.
	pattern := "a1->a2"
	for i := 2; i < 12; i++ {
		pattern += ", " + vname(i) + "->" + vname(i+1)
	}
	q := query.MustParse(pattern)
	if q.NumVertices() != 12 {
		t.Fatalf("test query has %d vertices", q.NumVertices())
	}
	p, err := Optimize(q, amazonOpts())
	if err != nil {
		t.Fatal(err)
	}
	small := datagen.CoPurchase(datagen.CoPurchaseConfig{N: 120, K: 2, Rewire: 0.3, Seed: 4})
	smallCat := catalogue.Build(small, catalogue.Config{H: 2, Z: 100, MaxInstances: 50, Seed: 3})
	p2, err := Optimize(q, Options{Catalogue: smallCat})
	if err != nil {
		t.Fatal(err)
	}
	got := countWith(t, small, p2)
	want := query.RefCount(small, q)
	if got != want {
		t.Errorf("beam plan count = %d, want %d", got, want)
	}
	_ = p
}

func vname(i int) string { return fmt.Sprintf("a%d", i) }

func TestEstimateCostMatchesOptimizerOnWCO(t *testing.T) {
	plans, err := EnumerateWCOPlans(query.Q3(), amazonOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, wp := range plans {
		ext := EstimateCost(query.Q3(), wp.Plan, amazonOpts())
		if diff := ext - wp.Cost; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("EstimateCost = %v, enumeration cost = %v", ext, wp.Cost)
		}
	}
}

func TestParallelEdgeRejection(t *testing.T) {
	q := &query.Graph{
		Vertices: []query.Vertex{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Edges: []query.Edge{
			{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2},
		},
	}
	if _, err := Optimize(q, amazonOpts()); err == nil {
		t.Error("parallel opposite edges should be rejected")
	}
}

func TestMissingCatalogue(t *testing.T) {
	if _, err := Optimize(query.Q1(), Options{}); err == nil {
		t.Error("missing catalogue should error")
	}
}

func TestICostRanksQVOsLikeRuntimeProxy(t *testing.T) {
	// The paper's central claim for Tables 4-6: actual i-cost ranks plans
	// in the same order as runtimes. Runtime is noisy in unit tests, so we
	// use actual i-cost vs estimated cost rank agreement on the web graph,
	// where direction effects are extreme.
	opts := Options{Catalogue: webCat}
	plans, err := EnumerateWCOPlans(query.Q1(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("want 3 triangle QVOs, got %d", len(plans))
	}
	runner := &exec.Runner{Graph: webG}
	type res struct{ est, actual float64 }
	var rs []res
	for _, wp := range plans {
		_, prof, err := runner.Count(wp.Plan)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, res{wp.Cost, float64(prof.ICost)})
	}
	// The estimated-cheapest plan must be among the actually-cheapest two.
	bestActual := 0
	for i, r := range rs {
		if r.actual < rs[bestActual].actual {
			bestActual = i
		}
	}
	if rs[0].actual > 3*rs[bestActual].actual {
		t.Errorf("estimated-best plan has actual i-cost %v, best is %v", rs[0].actual, rs[bestActual].actual)
	}
}

func TestCalibrateProducesSaneWeights(t *testing.T) {
	w1, w2 := Calibrate(datagen.Epinions(1))
	if w1 <= 0 || w2 <= 0 {
		t.Errorf("weights = %v, %v", w1, w2)
	}
	if w1 < w2 {
		t.Errorf("hash insert should cost at least a probe: w1=%v w2=%v", w1, w2)
	}
}
