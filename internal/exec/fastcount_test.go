package exec

import (
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

func TestFastCountMatchesExact(t *testing.T) {
	g := datagen.Epinions(1)
	for _, j := range []int{1, 3, 4, 5} {
		q := query.Benchmark(j)
		// Any WCO order built from the first edge.
		order := connectedOrderForTest(q)
		p := buildWCO(t, q, order)
		slow, slowProf, err := (&Runner{Graph: g}).Count(p)
		if err != nil {
			t.Fatal(err)
		}
		fast, fastProf, err := (&Runner{Graph: g, FastCount: true}).Count(p)
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Errorf("Q%d: fast count = %d, exact = %d", j, fast, slow)
		}
		if fastProf.Matches != slow {
			t.Errorf("Q%d: fast profile matches = %d", j, fastProf.Matches)
		}
		// Factorized counting does strictly less enumeration work but the
		// same intersections: i-cost must match.
		if fastProf.ICost != slowProf.ICost {
			t.Errorf("Q%d: i-cost changed: fast=%d slow=%d", j, fastProf.ICost, slowProf.ICost)
		}
	}
}

func TestFastCountScanOnly(t *testing.T) {
	g := datagen.Amazon(1)
	q := query.MustParse("a->b")
	p := &plan.Plan{Query: q, Root: plan.NewScan(q, q.Edges[0])}
	fast, _, err := (&Runner{Graph: g, FastCount: true}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if fast != int64(g.NumEdges()) {
		t.Errorf("fast scan count = %d, want %d", fast, g.NumEdges())
	}
}

func TestFastCountIgnoredWithEmit(t *testing.T) {
	// Run with an emit callback must still enumerate every tuple even when
	// FastCount is set.
	g := datagen.Amazon(1)
	q := query.Q1()
	p := buildWCO(t, q, []int{0, 1, 2})
	want, _, err := (&Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	_, err = (&Runner{Graph: g, FastCount: true}).Run(p, func([]graph.VertexID) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Errorf("emit with FastCount enumerated %d, want %d", n, want)
	}
}

// connectedOrderForTest returns a valid QVO starting at edge 0.
func connectedOrderForTest(q *query.Graph) []int {
	e := q.Edges[0]
	order := []int{e.From, e.To}
	mask := query.Bit(e.From) | query.Bit(e.To)
	for len(order) < q.NumVertices() {
		for v := 0; v < q.NumVertices(); v++ {
			if mask&query.Bit(v) != 0 || len(q.EdgesBetween(mask, v)) == 0 {
				continue
			}
			order = append(order, v)
			mask |= query.Bit(v)
			break
		}
	}
	return order
}
