package exec

import (
	"math"

	"graphflow/internal/graph"
)

// This file is the factorized execution tier (the Section 10
// factorization direction, following the LogicBlox-style grouped
// representation): when the driver pipeline ends in a star-shaped suffix
// — trailing E/I stages whose target vertices are pairwise non-adjacent
// leaves hanging off the prefix (plan.StarSuffixLen) — the suffix's
// matches above one prefix tuple are exactly the cross-product of the
// leaves' extension sets. The factorizedTail stage therefore computes
// each leaf's set once per prefix tuple (through the same run-grouped
// extendState cache machinery as the vectorized E/I operator, so PR-4's
// degree-adaptive kernels and PR-5's run-level reuse carry over) and
// represents the result as prefix × set₁ × … × setₖ:
//
//   - Count multiplies set cardinalities — no suffix tuple is ever built.
//   - CountUpTo charges each product against a shared atomic budget and
//     stops the run the moment it is exhausted, hitting the cap exactly
//     without unfolding.
//   - Run/RunUntil lazily unfold the product column-major into the
//     ordinary batch emission path, producing identical tuples in
//     identical order to full enumeration.
//
// The engine's join semantics are homomorphic (query vertices may bind
// the same data vertex), so the product is exact even when two leaves
// share a label; Distinct filtering is a caller-side concern and the
// public layer falls back to full enumeration for it.

// factorizedTail evaluates a star-shaped suffix of leaves as the final
// stage of the driver pipeline's batch chain.
type factorizedTail struct {
	idx         int
	prefixWidth int
	// leaves are run-grouped extension computers, one per suffix stage in
	// chain order; their out batches are unused (the tail owns the unfold
	// batch), only the embedded extendState cache machinery runs.
	leaves []*batchExtendState
	// sets holds the current prefix row's extension set per leaf; entries
	// alias leaf cache storage and stay valid until that leaf's next
	// computation.
	sets [][]graph.VertexID
	// odo is the odometer over the outer leaves (all but the last) during
	// lazy unfolding.
	odo []int
	// out is the lazily-unfolded output batch (emit mode only).
	out *tupleBatch
}

func newFactorizedTail(rc *runContext, specs []*extendSpec, idx, inWidth int) *factorizedTail {
	t := &factorizedTail{
		idx:         idx,
		prefixWidth: inWidth,
		sets:        make([][]graph.VertexID, len(specs)),
		odo:         make([]int, len(specs)),
		out:         newTupleBatch(inWidth+len(specs), rc.batch),
	}
	for _, spec := range specs {
		t.leaves = append(t.leaves, &batchExtendState{
			es: extendState{spec: spec, useCache: !rc.cfg.DisableCache},
		})
	}
	return t
}

func (s *factorizedTail) outWidth() int { return s.prefixWidth + len(s.leaves) }

func (s *factorizedTail) reset(rc *runContext) {
	for _, leaf := range s.leaves {
		leaf.reset(rc)
	}
	for i := range s.sets {
		s.sets[i] = nil
	}
	s.out.clear()
}

// leafSet computes (or serves from the leaf's intersection cache) leaf
// i's extension set for prefix row r. Unlike the batch E/I operator's
// consecutive-row run probe, the tail always goes through the keyed
// cache: rows whose sets were skipped (an earlier leaf came up empty)
// leave no stale run state behind.
func (s *factorizedTail) leafSet(w *worker, in *tupleBatch, r, i int) []graph.VertexID {
	leaf := s.leaves[i]
	leaf.vals = leaf.vals[:0]
	for _, d := range leaf.es.spec.op.Descriptors {
		leaf.vals = append(leaf.vals, in.cols[d.TupleIdx][r])
	}
	ext := leaf.es.extensionSetFor(w, leaf.vals)
	s.sets[i] = ext
	return ext
}

//gf:noalloc
func (s *factorizedTail) pushBatch(w *worker, in *tupleBatch) {
	counting := w.emit == nil
	budget := w.rc.countBudget
	for r := 0; r < in.n; r++ {
		w.profile.FactorizedPrefixes++
		product := int64(1)
		for i := range s.leaves {
			n := int64(len(s.leafSet(w, in, r, i)))
			if n == 0 {
				product = 0
				break
			}
			if product > math.MaxInt64/n {
				// Saturate instead of wrapping: a product this size could
				// never be enumerated anyway, and a Limit budget only needs
				// "at least the remaining allowance".
				product = math.MaxInt64
			} else {
				product *= n
			}
		}
		if product == 0 {
			continue
		}
		if !counting {
			s.unfoldRow(w, in, r)
			continue
		}
		take := product
		if budget != nil {
			rem := budget.Add(-product)
			if rem <= 0 {
				if take += rem; take < 0 {
					take = 0
				}
				w.profile.Matches += take
				w.profile.FactorizedAvoided += take
				panic(stopRun{})
			}
		}
		w.profile.Matches += take
		w.profile.FactorizedAvoided += take
	}
}

// unfoldRow lazily materializes prefix row r's cross-product into the
// output batch, column-major and in full-enumeration order: the
// odometer steps the outer leaves (rightmost fastest) while the last
// leaf's whole set is spliced per step, exactly the nested loop order of
// the non-factorized stage chain.
func (s *factorizedTail) unfoldRow(w *worker, in *tupleBatch, r int) {
	k := len(s.leaves)
	last := s.sets[k-1]
	odo := s.odo[:k-1]
	for i := range odo {
		odo[i] = 0
	}
	for {
		s.fillRun(w, in, r, last)
		i := k - 2
		for ; i >= 0; i-- {
			odo[i]++
			if odo[i] < len(s.sets[i]) {
				break
			}
			odo[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// fillRun appends one odometer step's rows — prefix and outer-leaf
// values replicated, the last leaf's set spliced — chunked at batch
// capacity.
func (s *factorizedTail) fillRun(w *worker, in *tupleBatch, r int, last []graph.VertexID) {
	out, pw := s.out, s.prefixWidth
	lastCol := pw + len(s.leaves) - 1
	off := 0
	for off < len(last) {
		k := len(last) - off
		if space := w.batchSize - out.n; k > space {
			k = space
		}
		for c := 0; c < pw; c++ {
			out.cols[c] = appendFill(out.cols[c], in.cols[c][r], k)
		}
		for i := 0; i < len(s.leaves)-1; i++ {
			out.cols[pw+i] = appendFill(out.cols[pw+i], s.sets[i][s.odo[i]], k)
		}
		out.cols[lastCol] = append(out.cols[lastCol], last[off:off+k]...)
		out.n += k
		off += k
		if out.n >= w.batchSize {
			w.profile.Batches.Extend++
			w.dispatchBatch(s.idx+1, out)
			out.clear()
		}
	}
}

func (s *factorizedTail) flush(w *worker) {
	if s.out.n > 0 {
		w.profile.Batches.Extend++
		w.dispatchBatch(s.idx+1, s.out)
		s.out.clear()
	}
}
