package exec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"graphflow/internal/graph"
)

// This file is the vectorized execution engine: tuples flow through the
// pipeline as columnar batches (struct-of-arrays, one column per bound
// query vertex) instead of one at a time, so the per-tuple costs of the
// oracle engine — an interface dispatch plus a next() closure per stage
// per tuple — are paid once per batch and the inner loops become plain
// column sweeps. The scan fills edge batches straight from adjacency
// runs, E/I stages intersect once per distinct prefix run within a batch
// (the intersection cache makes equal-key runs contiguous cache hits),
// hash probes group equal keys into one lookup, and the cancellation
// poll and match accounting move to batch granularity with exact row
// counts. The tuple-at-a-time path (worker.runRange/runStage) is kept as
// the differential-test oracle behind RunConfig.TupleAtATime.

// DefaultBatchSize is the row capacity of one columnar tuple batch when
// RunConfig.BatchSize is zero. 1024 rows keeps a 6-wide batch (the
// deepest common pipelines) within L2 while amortizing dispatch to
// nothing.
const DefaultBatchSize = 1024

// Morsel scheduling constants: the scan's vertex domain is handed to
// workers in small morsels through an atomic cursor (instead of the old
// fixed n/(workers*8) chunks), and a scan vertex whose adjacency run is
// hub-sized has its edges split into sub-morsels other workers can steal,
// so one hub no longer pins its whole extension subtree on one worker.
const (
	// morselVertices is the scan-range morsel size.
	morselVertices = 1024
	// hubSplitDegree is the adjacency length at which a scan vertex's
	// edge list is split across workers.
	hubSplitDegree = 4096
	// hubChunkEdges is the edge count of one split hub morsel.
	hubChunkEdges = 2048
)

// BatchCounters counts columnar batches dispatched by each stage kind —
// the observability surface of the vectorized engine (surfaced per query
// and aggregated in gfserver's /stats).
type BatchCounters struct {
	// Scan counts edge batches filled by scan stages.
	Scan int64
	// Extend counts output batches produced by E/I stages.
	Extend int64
	// Probe counts output batches produced by hash-probe stages.
	Probe int64
}

// Add accumulates other into c.
func (c *BatchCounters) Add(other BatchCounters) {
	c.Scan += other.Scan
	c.Extend += other.Extend
	c.Probe += other.Probe
}

// tupleBatch is a columnar block of tuples: cols[s][r] is slot s of row
// r. Columns share one row count; capacity is fixed at construction and
// rows are appended column-wise, so steady-state refills never allocate.
type tupleBatch struct {
	cols [][]graph.VertexID
	n    int
}

func newTupleBatch(width, capacity int) *tupleBatch {
	b := &tupleBatch{cols: make([][]graph.VertexID, width)}
	for i := range b.cols {
		b.cols[i] = make([]graph.VertexID, 0, capacity)
	}
	return b
}

// clear resets the batch to zero rows, keeping column capacity.
func (b *tupleBatch) clear() {
	for i := range b.cols {
		b.cols[i] = b.cols[i][:0]
	}
	b.n = 0
}

// appendFill appends k copies of v to dst.
func appendFill(dst []graph.VertexID, v graph.VertexID, k int) []graph.VertexID {
	for i := 0; i < k; i++ {
		dst = append(dst, v)
	}
	return dst
}

// batchStage is the per-run mutable state of one operator in the
// vectorized engine.
type batchStage interface {
	// pushBatch processes every row of in, dispatching full output
	// batches downstream as they fill; a partial output batch is retained
	// across calls (flush sends it).
	pushBatch(w *worker, in *tupleBatch)
	// flush dispatches the retained partial output batch downstream.
	flush(w *worker)
	// outWidth is the stage's output tuple width.
	outWidth() int
	// reset readies the stage for reuse by a pooled worker in a fresh
	// run: mutable per-run state (cache validity, counters, hash-table
	// pointers, retained batches) is cleared, allocated scratch is kept.
	reset(rc *runContext)
}

// dispatchBatch hands a produced batch to stage i (len(bstages) is the
// sink). Every produced row at every stage flows through here — the
// batch-granular counterpart of countOutput: exact row accounting for
// the profile plus the amortized cancellation poll.
//
//gf:noalloc
func (w *worker) dispatchBatch(i int, b *tupleBatch) {
	if b.n == 0 {
		return
	}
	sink := i == len(w.bstages)
	// Sink rows delivered to an emit callback are counted per row just
	// before their emit call (in sinkBatch), so a profile observed after
	// early termination never includes rows emit was not offered.
	if !sink || w.emit == nil {
		if w.isRoot && sink {
			w.profile.Matches += int64(b.n)
		} else {
			w.profile.Intermediate += int64(b.n)
		}
	}
	w.cancelCountdown -= b.n
	if w.cancelCountdown <= 0 {
		w.pollCancel()
	}
	// Stage-time attribution: charge the open interval to the producer's
	// slot, run the consumer under its own, restore on return. Nested
	// dispatches (a stage filling downstream batches mid-push) stack
	// naturally, so every slot accumulates self time only.
	prev := w.enterStage(i + 1)
	if sink {
		w.sinkBatch(b)
	} else {
		w.bstages[i].pushBatch(w, b)
	}
	w.leaveStage(prev)
}

// sinkBatch delivers final tuples to emit, row-at-a-time (the emit
// contract is a flat tuple). A false return unwinds via stopRun exactly
// like the oracle. With no emit the rows were already counted by
// dispatchBatch.
func (w *worker) sinkBatch(b *tupleBatch) {
	if w.emit == nil {
		return
	}
	width := len(b.cols)
	if cap(w.tuple) < width {
		w.tuple = make([]graph.VertexID, width) //gf:allowalloc one-time growth to the sink width, reused for every emitted row
	}
	t := w.tuple[:width]
	w.tuple = t
	root := w.isRoot
	for r := 0; r < b.n; r++ {
		if root {
			w.profile.Matches++
		} else {
			w.profile.Intermediate++
		}
		for c := 0; c < width; c++ {
			t[c] = b.cols[c][r]
		}
		if !w.emit(t) {
			panic(stopRun{})
		}
	}
}

// flushBatches drains every retained partial batch down the pipeline in
// stage order (upstream residue first, so downstream flushes see it).
// Called once per worker after its last morsel.
func (w *worker) flushBatches() {
	if w.scanBatch != nil && w.scanBatch.n > 0 {
		w.profile.Batches.Scan++
		w.dispatchBatch(0, w.scanBatch)
		w.scanBatch.clear()
	}
	for _, s := range w.bstages {
		s.flush(w)
	}
}

// runBatchRange is the vectorized scan: it fills columnar edge batches
// directly from the adjacency runs of vertices [start, end) and drives
// each full batch through the stage chain. Hub-sized adjacency runs are
// split into morsels for sibling workers when a queue is attached.
//
//gf:noalloc
func (w *worker) runBatchRange(start, end int) {
	scan := w.pipe.scan
	srcLabel := scan.SrcLabel
	for v := start; v < end; v++ {
		if w.stopped.Load() {
			return
		}
		src := graph.VertexID(v)
		if w.g.VertexLabel(src) != srcLabel {
			continue
		}
		nbrs := w.scanReader.Read(w.g, src, graph.Forward, scan.EdgeLabel, scan.DstLabel)
		if len(nbrs) == 0 {
			continue
		}
		w.scanOut += int64(len(nbrs))
		if w.mq != nil && len(nbrs) >= hubSplitDegree {
			// Wildcard lookups live in the scan reader's buffer, which the
			// next Read clobbers; exact-label runs alias immutable storage
			// and can be shared across workers without a copy.
			needCopy := scan.EdgeLabel == graph.WildcardLabel || scan.DstLabel == graph.WildcardLabel
			w.mq.pushHubs(src, nbrs[hubChunkEdges:], needCopy)
			nbrs = nbrs[:hubChunkEdges]
		}
		w.fillEdges(src, nbrs)
	}
}

// fillEdges appends (src, nbr) rows to the scan batch, dispatching the
// batch downstream every time it fills.
func (w *worker) fillEdges(src graph.VertexID, nbrs []graph.VertexID) {
	b := w.scanBatch
	off := 0
	for off < len(nbrs) {
		k := len(nbrs) - off
		if space := w.batchSize - b.n; k > space {
			k = space
		}
		b.cols[0] = appendFill(b.cols[0], src, k)
		b.cols[1] = append(b.cols[1], nbrs[off:off+k]...)
		b.n += k
		off += k
		if b.n >= w.batchSize {
			w.profile.Batches.Scan++
			w.dispatchBatch(0, b)
			b.clear()
		}
	}
}

// batchExtendState is the vectorized E/I operator: one intersection per
// distinct descriptor-key run (served through the shared extendState
// cache), then a bulk columnar fan-out of the extension set.
type batchExtendState struct {
	es   extendState
	idx  int
	out  *tupleBatch
	vals []graph.VertexID
}

func (s *batchExtendState) outWidth() int { return len(s.out.cols) }

func (s *batchExtendState) reset(rc *runContext) {
	s.es.reset(!rc.cfg.DisableCache)
	if s.out != nil {
		s.out.clear()
	}
}

// sameRun reports whether row r of in presents the same descriptor
// vertices as row r-1 — the contiguous-prefix-run probe of the sorted
// batch. Rows inside a run reuse the previous extension set without
// touching the cache machinery at all (the reuse is still attributed as
// a cache hit, matching the oracle's accounting exactly).
func (s *batchExtendState) sameRun(in *tupleBatch, r int) bool {
	for _, d := range s.es.spec.op.Descriptors {
		col := in.cols[d.TupleIdx]
		if col[r] != col[r-1] {
			return false
		}
	}
	return true
}

// extFor returns row r's extension set: prev when the batch run
// continues (attributed as a cache hit), a fresh (possibly cache-served)
// intersection otherwise. runs is false when the cache is disabled —
// Table 3's "Cache Off" recomputes per row, exactly like the oracle.
func (s *batchExtendState) extFor(w *worker, in *tupleBatch, r int, runs bool, prev []graph.VertexID) []graph.VertexID {
	if runs && r > 0 && s.sameRun(in, r) {
		w.profile.CacheHits++
		s.es.hits++
		return prev
	}
	s.vals = s.vals[:0]
	for _, d := range s.es.spec.op.Descriptors {
		s.vals = append(s.vals, in.cols[d.TupleIdx][r])
	}
	return s.es.extensionSetFor(w, s.vals)
}

//gf:noalloc
func (s *batchExtendState) pushBatch(w *worker, in *tupleBatch) {
	width := len(in.cols)
	runs := s.es.useCache
	if w.countFast && w.isRoot && s.idx == len(w.bstages)-1 {
		// Factorized counting (Section 10): the last extension's Cartesian
		// product is counted, not enumerated.
		var ext []graph.VertexID
		//gf:nopoll bounded by one batch (<= w.batchSize rows); dispatchBatch polled before delivering it
		for r := 0; r < in.n; r++ {
			ext = s.extFor(w, in, r, runs, ext)
			w.profile.Matches += int64(len(ext))
		}
		return
	}
	var ext []graph.VertexID
	for r := 0; r < in.n; r++ {
		ext = s.extFor(w, in, r, runs, ext)
		s.es.outTuples += int64(len(ext))
		off := 0
		for off < len(ext) {
			k := len(ext) - off
			if space := w.batchSize - s.out.n; k > space {
				k = space
			}
			for c := 0; c < width; c++ {
				s.out.cols[c] = appendFill(s.out.cols[c], in.cols[c][r], k)
			}
			s.out.cols[width] = append(s.out.cols[width], ext[off:off+k]...)
			s.out.n += k
			off += k
			if s.out.n >= w.batchSize {
				w.profile.Batches.Extend++
				w.dispatchBatch(s.idx+1, s.out)
				s.out.clear()
			}
		}
	}
}

func (s *batchExtendState) flush(w *worker) {
	if s.out.n > 0 {
		w.profile.Batches.Extend++
		w.dispatchBatch(s.idx+1, s.out)
		s.out.clear()
	}
}

// batchProbeState is the vectorized hash-probe: consecutive rows with
// equal join-key values share one table lookup (sorted batches make key
// runs contiguous), and matching build rows fan out column-wise.
type batchProbeState struct {
	ps  probeState
	idx int
	out *tupleBatch

	key      []graph.VertexID
	keyValid bool
	rows     [][]graph.VertexID
}

func (s *batchProbeState) outWidth() int { return len(s.out.cols) }

func (s *batchProbeState) reset(rc *runContext) {
	// The hash table is per-run state: re-fetch it from the new run's
	// materialised tables.
	s.ps.table = rc.tables[s.ps.spec.op]
	s.ps.outTuples, s.ps.probes = 0, 0
	s.keyValid = false
	s.rows = nil
	s.out.clear()
}

//gf:noalloc
func (s *batchProbeState) pushBatch(w *worker, in *tupleBatch) {
	slots := s.ps.spec.probeSlots
	appendIdx := s.ps.spec.appendIdx
	width := len(in.cols)
	for r := 0; r < in.n; r++ {
		// probes stays a per-input-row counter (like the oracle's), so
		// Analyze's per-node numbers are engine- and batch-size-
		// independent; the grouped lookup below is purely an optimization.
		w.profile.ProbedTuples++
		s.ps.probes++
		same := s.keyValid
		if same {
			for i, sl := range slots {
				if s.key[i] != in.cols[sl][r] {
					same = false
					break
				}
			}
		}
		if !same {
			s.key = s.key[:0]
			for _, sl := range slots {
				s.key = append(s.key, in.cols[sl][r])
			}
			s.rows = s.ps.table.lookupKey(s.key)
			s.keyValid = true
		}
		if len(s.rows) == 0 {
			continue
		}
		s.ps.outTuples += int64(len(s.rows))
		// Column-major fan-out: replicate the probe-side prefix with bulk
		// fills and splice each build column in one pass, chunked at batch
		// capacity.
		off := 0
		for off < len(s.rows) {
			k := len(s.rows) - off
			if space := w.batchSize - s.out.n; k > space {
				k = space
			}
			for c := 0; c < width; c++ {
				s.out.cols[c] = appendFill(s.out.cols[c], in.cols[c][r], k)
			}
			for j, bi := range appendIdx {
				col := s.out.cols[width+j]
				for t := off; t < off+k; t++ {
					col = append(col, s.rows[t][bi])
				}
				s.out.cols[width+j] = col
			}
			s.out.n += k
			off += k
			if s.out.n >= w.batchSize {
				w.profile.Batches.Probe++
				w.dispatchBatch(s.idx+1, s.out)
				s.out.clear()
			}
		}
	}
}

func (s *batchProbeState) flush(w *worker) {
	if s.out.n > 0 {
		w.profile.Batches.Probe++
		w.dispatchBatch(s.idx+1, s.out)
		s.out.clear()
	}
}

// hubMorsel is one stolen slice of a hub vertex's scan adjacency.
type hubMorsel struct {
	src  graph.VertexID
	nbrs []graph.VertexID
}

// morselQueue is the shared scan scheduler of one parallel pipeline run:
// an atomic cursor deals vertex-range morsels, and a mutex-guarded side
// queue holds split hub morsels (rare, hub vertices only). scanning
// tracks workers currently inside a vertex range — they may still
// enqueue hubs, so the queue is only exhausted when it is empty AND no
// range is being scanned.
type morselQueue struct {
	n      int
	cursor atomic.Int64

	mu   sync.Mutex
	hubs []hubMorsel

	scanning atomic.Int64
}

func newMorselQueue(n int) *morselQueue { return &morselQueue{n: n} }

// nextRange deals the next vertex-range morsel.
func (q *morselQueue) nextRange() (int, int, bool) {
	start := int(q.cursor.Add(morselVertices)) - morselVertices
	if start >= q.n {
		return 0, 0, false
	}
	end := start + morselVertices
	if end > q.n {
		end = q.n
	}
	return start, end, true
}

// pushHubs splits nbrs into hubChunkEdges-sized morsels and enqueues
// them. When needCopy is set the slices are copied out of the caller's
// reusable buffer; otherwise they alias immutable graph storage.
//
//gf:allowalloc hub splitting is the cold path (vertices over hubSplitDegree only) and hands memory across workers
func (q *morselQueue) pushHubs(src graph.VertexID, nbrs []graph.VertexID, needCopy bool) {
	if needCopy {
		nbrs = append([]graph.VertexID(nil), nbrs...)
	}
	q.mu.Lock()
	for off := 0; off < len(nbrs); off += hubChunkEdges {
		end := off + hubChunkEdges
		if end > len(nbrs) {
			end = len(nbrs)
		}
		q.hubs = append(q.hubs, hubMorsel{src: src, nbrs: nbrs[off:end]})
	}
	q.mu.Unlock()
}

// popHub steals one pending hub morsel.
func (q *morselQueue) popHub() (hubMorsel, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.hubs) == 0 {
		return hubMorsel{}, false
	}
	hm := q.hubs[len(q.hubs)-1]
	q.hubs = q.hubs[:len(q.hubs)-1]
	return hm, true
}

// drained reports whether no morsel of either kind remains and no
// scanning worker can still produce one.
func (q *morselQueue) drained() bool {
	if q.scanning.Load() != 0 {
		return false
	}
	q.mu.Lock()
	empty := len(q.hubs) == 0
	q.mu.Unlock()
	return empty
}

// runWorkerLoop is one parallel worker's schedule: steal split hub
// morsels first (they represent the skewed work), then deal vertex
// ranges from the cursor, and exit only when the queue is fully drained.
func (w *worker) runWorkerLoop(q *morselQueue) {
	for !w.stopped.Load() {
		if hm, ok := q.popHub(); ok {
			w.recovered(func() { w.fillEdges(hm.src, hm.nbrs) })
			continue
		}
		// scanning is raised BEFORE the cursor advances: a sibling whose
		// own nextRange came up empty can then only observe scanning == 0
		// if this worker had not yet claimed a range either — so it can
		// never conclude "drained" while a range that may still enqueue
		// hub morsels is in flight.
		q.scanning.Add(1)
		if start, end, ok := q.nextRange(); ok {
			w.runRecovered(start, end)
			q.scanning.Add(-1)
			continue
		}
		q.scanning.Add(-1)
		if q.drained() {
			break
		}
		// A sibling is still scanning and may enqueue hub morsels; yield
		// rather than spin hard.
		runtime.Gosched()
	}
	if w.scanBatch != nil && !w.stopped.Load() {
		w.recovered(w.flushBatches)
	}
}
