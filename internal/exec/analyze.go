package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"graphflow/internal/plan"
)

// OpStats is the per-operator breakdown of one execution: the EXPLAIN
// ANALYZE view of a plan.
type OpStats struct {
	// Operator is the plan node's description.
	Operator string
	// OutTuples counts tuples the operator produced.
	OutTuples int64
	// ICost is the operator's accessed-adjacency-list total (E/I only).
	ICost int64
	// CacheHits counts intersection-cache hits (E/I only).
	CacheHits int64
	// Probes counts probe lookups (HASH-JOIN only).
	Probes int64
	// BuildRows is the materialised build-side size (HASH-JOIN only).
	BuildRows int64
	// Nanos is the operator's attributed self wall time (batch-engine
	// stage slots; a pipeline's terminal operator also absorbs its sink —
	// result delivery or build-side insertion).
	Nanos int64
	// Children mirror the plan tree.
	Children []*OpStats
}

// Describe renders the analyzed tree, one operator per line.
func (s *OpStats) Describe() string {
	var sb strings.Builder
	var rec func(n *OpStats, depth int)
	rec = func(n *OpStats, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Operator)
		fmt.Fprintf(&sb, "  [out=%d", n.OutTuples)
		if n.ICost > 0 || n.CacheHits > 0 {
			fmt.Fprintf(&sb, " icost=%d hits=%d", n.ICost, n.CacheHits)
		}
		if n.Probes > 0 || n.BuildRows > 0 {
			fmt.Fprintf(&sb, " probes=%d build=%d", n.Probes, n.BuildRows)
		}
		if n.Nanos > 0 {
			fmt.Fprintf(&sb, " time=%s", formatNanos(n.Nanos))
		}
		sb.WriteString("]\n")
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(s, 0)
	return sb.String()
}

// nodeCounters accumulates per-plan-node counters across workers.
type nodeCounters struct {
	mu sync.Mutex
	m  map[plan.Node]*OpStats
}

func (nc *nodeCounters) add(n plan.Node, out, icost, hits, probes, build int64) {
	nc.mu.Lock()
	st := nc.m[n]
	if st == nil {
		st = &OpStats{}
		nc.m[n] = st
	}
	st.OutTuples += out
	st.ICost += icost
	st.CacheHits += hits
	st.Probes += probes
	st.BuildRows += build
	nc.mu.Unlock()
}

// addNanos attributes wall time to a plan node's stats.
func (nc *nodeCounters) addNanos(n plan.Node, nanos int64) {
	if nanos == 0 {
		return
	}
	nc.mu.Lock()
	st := nc.m[n]
	if st == nil {
		st = &OpStats{}
		nc.m[n] = st
	}
	st.Nanos += nanos
	nc.mu.Unlock()
}

// formatNanos renders a duration compactly for the analyzed tree:
// sub-millisecond times keep microsecond precision, everything else is
// rounded to 10µs so the output stays diffable.
func formatNanos(n int64) string {
	d := time.Duration(n)
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// Analyze evaluates the plan and returns the per-operator statistics tree
// along with the aggregate profile. It runs sequentially so counters need
// no sharding; use Run for performance measurements.
func (r *Runner) Analyze(p *plan.Plan) (*OpStats, Profile, error) {
	cp, err := Compile(r.Graph, p)
	if err != nil {
		return nil, Profile{}, err
	}
	return cp.Analyze(RunConfig{DisableCache: r.DisableCache, MaxBuildRows: r.MaxBuildRows})
}

// Analyze runs the compiled plan sequentially, collecting per-operator
// counters. cfg.Workers, cfg.FastCount and cfg.Factorized are ignored:
// analysis enumerates every match on one goroutine so every operator's
// numbers reflect full enumeration.
func (cp *CompiledPlan) Analyze(cfg RunConfig) (*OpStats, Profile, error) {
	return cp.AnalyzeCtx(context.Background(), cfg)
}

// AnalyzeCtx is Analyze under a context: the EXPLAIN ANALYZE run honors
// cancellation and deadlines like any other query, so a server can
// bound it by its request timeout. A cancelled analysis returns the
// context's error.
func (cp *CompiledPlan) AnalyzeCtx(ctx context.Context, cfg RunConfig) (*OpStats, Profile, error) {
	cfg.Workers = 1
	cfg.FastCount = false
	cfg.Factorized = false
	nc := &nodeCounters{m: map[plan.Node]*OpStats{}}
	prof, err := cp.run(ctx, cfg, nc, nil)
	if err != nil {
		return nil, Profile{}, err
	}
	var build func(n plan.Node) *OpStats
	build = func(n plan.Node) *OpStats {
		st := nc.m[n]
		if st == nil {
			st = &OpStats{}
		}
		st.Operator = n.String()
		for _, c := range n.Children() {
			st.Children = append(st.Children, build(c))
		}
		return st
	}
	return build(cp.root), prof, nil
}
