// Package exec evaluates query plans against a graph (paper Section 7).
//
// Execution is push-based: each pipeline drives tuples from a SCAN through
// a chain of EXTEND/INTERSECT and hash-join probes. Hash-join build sides
// are materialised bottom-up before their probe pipelines run. The E/I
// operator implements the intersection cache of Section 3.1, and every
// operator maintains the profiling counters (i-cost, intermediate matches,
// cache hits) that the paper's demonstrative experiments report.
//
// The parallel runtime follows Section 7: each worker gets its own copy of
// the pipeline state and consumes ranges of the SCAN's vertices from a
// shared work queue (work stealing over scan ranges).
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"graphflow/internal/graph"
	"graphflow/internal/plan"
)

// Profile aggregates the runtime counters of one plan execution.
type Profile struct {
	// ICost is the actual intersection cost: the summed sizes of adjacency
	// lists accessed by E/I operators (Equation 1). Cached intersections
	// access no lists and contribute nothing.
	ICost int64
	// Intermediate is the number of partial matches produced by non-root
	// operators (the "part. m." column of Tables 4-6).
	Intermediate int64
	// Matches is the number of results produced by the root.
	Matches int64
	// CacheHits counts E/I extensions served from the intersection cache.
	CacheHits int64
	// HashedTuples and ProbedTuples count hash-join build and probe work
	// (the n1/n2 of the paper's hash-join cost model).
	HashedTuples, ProbedTuples int64
}

// Add accumulates other into p.
func (p *Profile) Add(other Profile) {
	p.ICost += other.ICost
	p.Intermediate += other.Intermediate
	p.Matches += other.Matches
	p.CacheHits += other.CacheHits
	p.HashedTuples += other.HashedTuples
	p.ProbedTuples += other.ProbedTuples
}

// Runner executes plans against a graph.
type Runner struct {
	Graph *graph.Graph
	// Workers is the number of parallel workers; <=1 means sequential.
	Workers int
	// DisableCache turns off the E/I intersection cache (Table 3's
	// "Cache Off" configuration).
	DisableCache bool
	// MaxBuildRows aborts execution when a hash-join build side
	// materialises more than this many tuples (0 = unlimited) — the
	// equivalent of the paper's Mm (out of memory) outcomes.
	MaxBuildRows int64
	// FastCount enables factorized counting when no tuples are emitted:
	// the final E/I operator contributes the size of each extension set
	// instead of enumerating it (the factorization direction of the
	// paper's Section 10). Counts are identical; Matches in the profile is
	// still exact.
	FastCount bool

	// analyze, when set by Analyze, collects per-operator statistics.
	analyze *nodeCounters
}

// ErrBuildTooLarge is returned when MaxBuildRows is exceeded.
var ErrBuildTooLarge = fmt.Errorf("exec: hash-join build side exceeds MaxBuildRows")

// Count evaluates the plan and returns the number of matches and the
// execution profile.
func (r *Runner) Count(p *plan.Plan) (int64, Profile, error) {
	if r.FastCount {
		prof, err := r.Run(p, nil)
		return prof.Matches, prof, err
	}
	var n int64
	prof, err := r.Run(p, func(tuple []graph.VertexID) { n++ })
	return n, prof, err
}

// limitReached aborts execution from inside an emit callback; CountUpTo
// recovers it.
type limitReached struct{}

// CountUpTo evaluates the plan, stopping once limit matches have been
// produced (the output caps of the Appendix C experiments). Sequential
// only: a Workers value above 1 is ignored.
func (r *Runner) CountUpTo(p *plan.Plan, limit int64) (n int64, prof Profile, err error) {
	seq := &Runner{Graph: r.Graph, Workers: 1, DisableCache: r.DisableCache, MaxBuildRows: r.MaxBuildRows}
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(limitReached); !ok {
				panic(rec)
			}
		}
	}()
	prof, err = seq.Run(p, func(tuple []graph.VertexID) {
		n++
		if n >= limit {
			panic(limitReached{})
		}
	})
	return n, prof, err
}

// Run evaluates the plan, invoking emit for every match. The tuple slice
// passed to emit is only valid during the call and is laid out according to
// p.Root.Out(). When Workers > 1, emit may be called concurrently from
// multiple goroutines unless it is nil.
func (r *Runner) Run(p *plan.Plan, emit func([]graph.VertexID)) (Profile, error) {
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > 1 && emit != nil {
		// Results must not interleave within a single emit call; guard it.
		var mu sync.Mutex
		inner := emit
		emit = func(t []graph.VertexID) {
			mu.Lock()
			inner(t)
			mu.Unlock()
		}
	}
	env := &environment{runner: r, tables: map[plan.Node]*hashTable{}}
	if err := env.buildTables(p.Root, workers); err != nil {
		return Profile{}, err
	}
	prof := env.profile
	driverProf, err := r.runPipeline(p.Root, env, workers, true, emit)
	if err != nil {
		return Profile{}, err
	}
	prof.Add(driverProf)
	return prof, nil
}

// RunSubplan evaluates an arbitrary subplan node (which need not cover the
// whole query), emitting its tuples in node.Out() layout. The adaptive
// evaluator uses this to drive the non-adapted part of a plan.
func (r *Runner) RunSubplan(node plan.Node, emit func([]graph.VertexID)) (Profile, error) {
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > 1 && emit != nil {
		var mu sync.Mutex
		inner := emit
		emit = func(t []graph.VertexID) {
			mu.Lock()
			inner(t)
			mu.Unlock()
		}
	}
	env := &environment{runner: r, tables: map[plan.Node]*hashTable{}}
	if err := env.buildTables(node, workers); err != nil {
		return Profile{}, err
	}
	prof := env.profile
	driverProf, err := r.runPipeline(node, env, workers, true, emit)
	if err != nil {
		return Profile{}, err
	}
	prof.Add(driverProf)
	return prof, nil
}

// environment holds materialised hash tables shared by all workers, plus
// the profile accumulated while building them.
type environment struct {
	runner  *Runner
	tables  map[plan.Node]*hashTable
	profile Profile
}

// buildTables materialises the build side of every hash join reachable
// through probe/child edges from n, bottom-up.
func (e *environment) buildTables(n plan.Node, workers int) error {
	switch op := n.(type) {
	case *plan.Scan:
		return nil
	case *plan.Extend:
		return e.buildTables(op.Child, workers)
	case *plan.HashJoin:
		// The build side may itself contain joins.
		if err := e.buildTables(op.Build, workers); err != nil {
			return err
		}
		ht := newHashTable(op)
		var mu sync.Mutex
		overflow := false
		prof, err := e.runner.runPipeline(op.Build, e, workers, false, func(t []graph.VertexID) {
			mu.Lock()
			if e.runner.MaxBuildRows > 0 && int64(ht.len()) >= e.runner.MaxBuildRows {
				overflow = true
			} else {
				ht.insert(t)
			}
			mu.Unlock()
		})
		if err != nil {
			return err
		}
		if overflow {
			return ErrBuildTooLarge
		}
		prof.HashedTuples += int64(ht.len())
		// Build-side outputs are intermediate results.
		prof.Intermediate += int64(ht.len())
		e.profile.Add(prof)
		e.tables[op] = ht
		return e.buildTables(op.Probe, workers)
	default:
		return fmt.Errorf("exec: unknown node %T", n)
	}
}

// runPipeline runs the probe-side pipeline rooted at n: the chain of
// operators reached by following Extend.Child and HashJoin.Probe down to a
// SCAN. isRoot marks whether n is the plan root (its outputs are final
// matches rather than intermediate results).
func (r *Runner) runPipeline(n plan.Node, env *environment, workers int, isRoot bool, emit func([]graph.VertexID)) (Profile, error) {
	scan, chain, err := flattenPipeline(n)
	if err != nil {
		return Profile{}, err
	}
	if workers <= 1 {
		w := newWorker(r, env, scan, chain, isRoot, emit)
		w.runRange(0, r.Graph.NumVertices())
		collectStageStats(w)
		return w.profile, nil
	}
	return r.runParallel(env, scan, chain, isRoot, emit, workers)
}

func (r *Runner) runParallel(env *environment, scan *plan.Scan, chain []plan.Node, isRoot bool, emit func([]graph.VertexID), workers int) (Profile, error) {
	n := r.Graph.NumVertices()
	chunk := n/(workers*8) + 1
	var next atomic.Int64
	var wg sync.WaitGroup
	profs := make([]Profile, workers)
	if workers > runtime.NumCPU()*4 {
		workers = runtime.NumCPU() * 4
	}
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := newWorker(r, env, scan, chain, isRoot, emit)
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					break
				}
				end := start + chunk
				if end > n {
					end = n
				}
				w.runRange(start, end)
			}
			collectStageStats(w)
			profs[wi] = w.profile
		}(wi)
	}
	wg.Wait()
	var total Profile
	for _, p := range profs {
		total.Add(p)
	}
	return total, nil
}

// flattenPipeline decomposes the probe path of n into its driving SCAN and
// the chain of operators applied above it (bottom-up order).
func flattenPipeline(n plan.Node) (*plan.Scan, []plan.Node, error) {
	var chain []plan.Node
	cur := n
	for {
		switch op := cur.(type) {
		case *plan.Scan:
			// chain currently holds top..bottom; reverse to bottom-up.
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			return op, chain, nil
		case *plan.Extend:
			chain = append(chain, op)
			cur = op.Child
		case *plan.HashJoin:
			chain = append(chain, op)
			cur = op.Probe
		default:
			return nil, nil, fmt.Errorf("exec: unknown node %T", cur)
		}
	}
}
