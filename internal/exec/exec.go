// Package exec evaluates query plans against a graph (paper Section 7).
//
// Execution is split into two phases. Compile lowers a plan into an
// immutable CompiledPlan: flattened push-based pipelines — each drives
// tuples from a SCAN through a chain of EXTEND/INTERSECT and hash-join
// probes — with all layout work (stage widths, probe slot maps, join key
// slots) done once. Running a CompiledPlan materialises a fresh per-run
// context holding every piece of mutable state: hash tables, tuple
// buffers, intersection caches and profiling counters. Because the
// compiled form is never written after construction, one CompiledPlan
// can be executed by many goroutines at the same time — the property
// prepared queries rely on.
//
// The E/I operator implements the intersection cache of Section 3.1, and
// every operator maintains the profiling counters (i-cost, intermediate
// matches, cache hits) that the paper's demonstrative experiments report.
//
// The parallel runtime follows Section 7: each worker gets its own copy
// of the pipeline state and consumes ranges of the SCAN's vertices from a
// shared work queue (work stealing over scan ranges).
package exec

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"graphflow/internal/faultinject"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/resource"
)

// Profile aggregates the runtime counters of one plan execution.
type Profile struct {
	// ICost is the actual intersection cost: the summed sizes of adjacency
	// lists accessed by E/I operators (Equation 1). Cached intersections
	// access no lists and contribute nothing.
	ICost int64
	// Intermediate is the number of partial matches produced by non-root
	// operators (the "part. m." column of Tables 4-6).
	Intermediate int64
	// Matches is the number of results produced by the root.
	Matches int64
	// CacheHits counts E/I extensions served from the intersection cache.
	CacheHits int64
	// HashedTuples and ProbedTuples count hash-join build and probe work
	// (the n1/n2 of the paper's hash-join cost model).
	HashedTuples, ProbedTuples int64
	// Kernels tallies intersection-kernel dispatches by kind (merge,
	// gallop, bitset probe, bitset AND) across every E/I operator: the
	// observability surface of the degree-adaptive intersection engine.
	// ICost stays the representation-oblivious Equation 1 metric, so the
	// two together show how much of the nominal i-cost the bitset kernels
	// short-circuited.
	Kernels graph.KernelCounters
	// Batches counts columnar batches dispatched per stage kind by the
	// vectorized engine (all zero under the tuple-at-a-time oracle).
	Batches BatchCounters
	// FactorizedPrefixes counts prefix tuples evaluated by a
	// factorizedTail stage: for each, every star-suffix leaf's extension
	// set was computed (or served from a cache) exactly once.
	FactorizedPrefixes int64
	// FactorizedAvoided counts result tuples accounted for directly on
	// the factorized prefix × set₁ × … × setₖ form — counted into Matches
	// (or charged against a Limit budget) without ever being materialized.
	FactorizedAvoided int64
	// Stages attributes wall time to each operator kind of the vectorized
	// engine. Sampling is amortized to two time.Now calls per dispatched
	// batch per stage (allocation-free), so it is always on; under
	// parallel runs the numbers sum across workers — busy time per stage,
	// not elapsed wall clock. The tuple-at-a-time oracle reports zeros.
	Stages StageNanos
}

// StageNanos is per-stage-kind attributed run time in nanoseconds:
// Scan covers adjacency reads and batch fills (plus morsel
// acquisition), Extend the E/I intersect fan-out, Probe the hash-probe
// lookups, Factorized the star-suffix tail, Build the hash-join
// build-side insert sink, and Emit the root sink's row delivery.
type StageNanos struct {
	Scan       int64
	Extend     int64
	Probe      int64
	Factorized int64
	Build      int64
	Emit       int64
}

// Add accumulates other into s.
func (s *StageNanos) Add(other StageNanos) {
	s.Scan += other.Scan
	s.Extend += other.Extend
	s.Probe += other.Probe
	s.Factorized += other.Factorized
	s.Build += other.Build
	s.Emit += other.Emit
}

// Total is the summed attributed time across all stage kinds.
func (s StageNanos) Total() int64 {
	return s.Scan + s.Extend + s.Probe + s.Factorized + s.Build + s.Emit
}

// Add accumulates other into p.
func (p *Profile) Add(other Profile) {
	p.ICost += other.ICost
	p.Intermediate += other.Intermediate
	p.Matches += other.Matches
	p.CacheHits += other.CacheHits
	p.HashedTuples += other.HashedTuples
	p.ProbedTuples += other.ProbedTuples
	p.Kernels.Add(other.Kernels)
	p.Batches.Add(other.Batches)
	p.FactorizedPrefixes += other.FactorizedPrefixes
	p.FactorizedAvoided += other.FactorizedAvoided
	p.Stages.Add(other.Stages)
}

// RunConfig carries the per-run execution knobs. The zero value is a
// sequential run with the intersection cache on.
type RunConfig struct {
	// Workers is the number of parallel workers; <=1 means sequential.
	Workers int
	// DisableCache turns off the E/I intersection cache (Table 3's
	// "Cache Off" configuration).
	DisableCache bool
	// MaxBuildRows aborts execution when a hash-join build side
	// materialises more than this many tuples (0 = unlimited) — the
	// equivalent of the paper's Mm (out of memory) outcomes.
	MaxBuildRows int64
	// FastCount enables factorized counting when no tuples are emitted:
	// the final E/I operator contributes the size of each extension set
	// instead of enumerating it (the factorization direction of the
	// paper's Section 10). Counts are identical; Matches in the profile is
	// still exact.
	FastCount bool
	// BatchSize is the row capacity of the vectorized engine's columnar
	// tuple batches. 0 picks a plan-adaptive capacity (see
	// CompiledPlan.EffectiveBatchSize); an explicit value stays
	// authoritative, with values below 1 clamping to 1. Ignored under
	// TupleAtATime.
	BatchSize int
	// TupleAtATime selects the legacy tuple-at-a-time engine — kept as
	// the differential-test oracle for the vectorized default.
	TupleAtATime bool
	// Factorized enables the factorized execution tier: when the driver
	// pipeline ends in a star-shaped suffix (trailing E/I stages whose
	// targets are pairwise non-adjacent leaves off the prefix), the
	// suffix is evaluated as one extension set per leaf per prefix tuple
	// and the result is represented as prefix × set₁ × … × setₖ. Counts
	// multiply set cardinalities, limits are charged against the product,
	// and enumeration lazily unfolds identical tuples in identical order.
	// Opt-in; batch engine only (the tuple-at-a-time oracle always
	// enumerates).
	Factorized bool
	// MemBudget, when non-nil, meters this run's major allocators —
	// hash-join build tables, worker batch checkouts, extension-set
	// cache growth — against a per-query (and, through its governor, a
	// process-wide) memory ceiling. Exhaustion is observed at the
	// amortized //gf:pollpoint sites and surfaces as a *resource.
	// BudgetError wrapping resource.ErrBudgetExceeded; the steady-state
	// hot loops stay allocation-free. The budget is not closed by the
	// run — its owner returns the reservation to the governor.
	MemBudget *resource.Budget
	// Faults, when non-nil, is the fault-injection hook consulted at the
	// engine's instrumented points (pollpoints, worker start, hash-build
	// insert). Production runs leave it nil; the chaos harness installs
	// deterministic panic/stall schedules through it.
	Faults *faultinject.Injector
}

// batchSize resolves an explicitly configured batch row capacity.
func (c *RunConfig) batchSize() int {
	switch {
	case c.BatchSize == 0:
		return DefaultBatchSize
	case c.BatchSize < 1:
		return 1
	}
	return c.BatchSize
}

// minAdaptiveBatchSize floors the cardinality clamp of the plan-adaptive
// batch-size rule: below this, per-batch dispatch overhead dominates.
const minAdaptiveBatchSize = 64

// AdaptiveBatchSize returns the depth-scaled default batch row capacity
// for a pipeline with the given number of stages above its scan. Shallow
// pipelines get small batches — a 2-stage triangle pipeline touches every
// column of every batch, so the scaffolding cost of wide 1024-row
// batches is pure overhead at that depth — while deep pipelines keep
// DefaultBatchSize to amortize per-batch dispatch across more stages.
func AdaptiveBatchSize(depth int) int {
	switch {
	case depth <= 1:
		return DefaultBatchSize / 4
	case depth == 2:
		return DefaultBatchSize / 2
	}
	return DefaultBatchSize
}

// EffectiveBatchSize reports the batch row capacity one run of cp under
// cfg uses: an explicit cfg.BatchSize is authoritative; otherwise the
// capacity is picked per plan — AdaptiveBatchSize of the deepest
// pipeline, halved down to the optimizer's cardinality estimate when the
// expected result set is far smaller than the batch (never below
// minAdaptiveBatchSize).
func (cp *CompiledPlan) EffectiveBatchSize(cfg RunConfig) int {
	if cfg.BatchSize != 0 {
		return cfg.batchSize()
	}
	depth := 0
	for _, p := range cp.pipes {
		if len(p.stages) > depth {
			depth = len(p.stages)
		}
	}
	bs := AdaptiveBatchSize(depth)
	if cp.estCard > 0 {
		for bs > minAdaptiveBatchSize && float64(bs) > 4*cp.estCard {
			bs /= 2
		}
	}
	return bs
}

// ErrBuildTooLarge is returned when MaxBuildRows is exceeded.
var ErrBuildTooLarge = fmt.Errorf("exec: hash-join build side exceeds MaxBuildRows")

// Memory-accounting coefficients. The budget meters bytes of tuple
// storage, not malloc-exact footprints: VertexID is 4 bytes, and every
// materialised hash-table row additionally pays its slice header plus
// amortised map-entry overhead.
const (
	vertexIDBytes        = 4
	hashRowOverheadBytes = 48
)

// PanicError is a worker panic recovered into a per-query error: the
// run drains cleanly (no leaked goroutines, no stuck admission slots)
// and the query fails with the panic value and captured stack instead
// of the process dying.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: query panicked: %v", e.Value)
}

// runContext owns every piece of mutable state of one execution of a
// CompiledPlan: the materialised hash tables, the aggregate profile, and
// the optional per-operator analysis counters. A fresh runContext is
// created per run, so concurrent runs never share mutable state.
type runContext struct {
	cp      *CompiledPlan
	cfg     RunConfig
	ctx     context.Context
	tables  map[*plan.HashJoin]*hashTable
	analyze *nodeCounters
	profile Profile
	// batch is the resolved batch row capacity of this run (see
	// CompiledPlan.EffectiveBatchSize).
	batch int
	// countBudget, when non-nil, is the shared remaining-match allowance
	// of a factorized CountUpTo: each factorizedTail prefix atomically
	// claims min(product, remaining) and stops the run when it is
	// exhausted, so the total claimed never exceeds the limit even
	// across workers.
	countBudget *atomic.Int64
	// mem is the run's memory budget (nil = unmetered); see
	// RunConfig.MemBudget.
	mem *resource.Budget
	// faults is the fault-injection hook (nil in production).
	faults *faultinject.Injector
	// failure records the first worker panic recovered during the run;
	// runErr surfaces it as the run's error.
	failure atomic.Pointer[PanicError]
}

// fail records rec (with the current stack) as the run's failure; the
// first panic wins, later ones are dropped.
func (rc *runContext) fail(rec any) {
	rc.failure.CompareAndSwap(nil, &PanicError{Value: rec, Stack: debug.Stack()})
}

// recoverPanic converts a panic escaping a worker goroutine into the
// run's failure record: wg.Done (deferred after this, so run before it)
// always executes, sibling workers observe stopped, and the driver
// reports the failure through runErr — panic isolation for the whole
// parallel runtime.
func (rc *runContext) recoverPanic(stopped *atomic.Bool) {
	if rec := recover(); rec != nil {
		rc.fail(rec)
		stopped.Store(true)
	}
}

// runErr reports why the run ended early, in severity order: a
// recovered worker panic, then memory-budget exhaustion, then context
// cancellation.
func (rc *runContext) runErr() error {
	if pe := rc.failure.Load(); pe != nil {
		return pe
	}
	if rc.mem.Exceeded() {
		return rc.mem.Err()
	}
	return rc.ctxErr()
}

// Run evaluates the compiled plan, invoking emit for every match. The
// tuple slice passed to emit is only valid during the call and is laid
// out according to the plan root's Out(). When cfg.Workers > 1, emit is
// serialised internally — matches never interleave within a call.
func (cp *CompiledPlan) Run(cfg RunConfig, emit func([]graph.VertexID)) (Profile, error) {
	return cp.RunCtx(context.Background(), cfg, emit)
}

// RunCtx is Run bounded by ctx: execution stops promptly once ctx is
// cancelled or its deadline passes, and the ctx error is returned
// together with the partial profile accumulated so far. Workers poll the
// context every cancelCheckInterval produced tuples, so cancellation
// latency is bounded even mid-pipeline.
func (cp *CompiledPlan) RunCtx(ctx context.Context, cfg RunConfig, emit func([]graph.VertexID)) (Profile, error) {
	var inner func([]graph.VertexID) bool
	if emit != nil {
		if cfg.Workers > 1 {
			var mu sync.Mutex
			inner = func(t []graph.VertexID) bool {
				mu.Lock()
				emit(t)
				mu.Unlock()
				return true
			}
		} else {
			inner = func(t []graph.VertexID) bool {
				emit(t)
				return true
			}
		}
	}
	return cp.run(ctx, cfg, nil, inner)
}

// RunConcurrent is Run without the emit serialisation: when cfg.Workers
// > 1, emit is called concurrently from multiple goroutines and must be
// safe for that. Use it when the callback does its own (cheaper)
// synchronisation, e.g. a single atomic counter.
func (cp *CompiledPlan) RunConcurrent(cfg RunConfig, emit func([]graph.VertexID)) (Profile, error) {
	return cp.RunConcurrentCtx(context.Background(), cfg, emit)
}

// RunConcurrentCtx is RunConcurrent bounded by ctx (see RunCtx).
func (cp *CompiledPlan) RunConcurrentCtx(ctx context.Context, cfg RunConfig, emit func([]graph.VertexID)) (Profile, error) {
	var inner func([]graph.VertexID) bool
	if emit != nil {
		inner = func(t []graph.VertexID) bool {
			emit(t)
			return true
		}
	}
	return cp.run(ctx, cfg, nil, inner)
}

// RunUntil is Run with early termination: enumeration halts once emit
// returns false. Pending workers stop at their next scan vertex, so a few
// extra tuples may still be produced after the first false return, but
// emit itself is serialised when cfg.Workers > 1 and is never invoked
// again once it has returned false.
func (cp *CompiledPlan) RunUntil(cfg RunConfig, emit func([]graph.VertexID) bool) (Profile, error) {
	return cp.RunUntilCtx(context.Background(), cfg, emit)
}

// RunUntilCtx is RunUntil bounded by ctx (see RunCtx). Early termination
// via emit is not an error; cancellation via ctx returns ctx's error.
func (cp *CompiledPlan) RunUntilCtx(ctx context.Context, cfg RunConfig, emit func([]graph.VertexID) bool) (Profile, error) {
	inner := emit
	if cfg.Workers > 1 {
		var mu sync.Mutex
		stopped := false
		inner = func(t []graph.VertexID) bool {
			mu.Lock()
			defer mu.Unlock()
			if stopped {
				return false
			}
			if !emit(t) {
				stopped = true
				return false
			}
			return true
		}
	}
	return cp.run(ctx, cfg, nil, inner)
}

// Count evaluates the compiled plan and returns the number of matches
// and the execution profile.
func (cp *CompiledPlan) Count(cfg RunConfig) (int64, Profile, error) {
	return cp.CountCtx(context.Background(), cfg)
}

// CountCtx is Count bounded by ctx (see RunCtx). On cancellation the
// partial count is returned alongside ctx's error.
func (cp *CompiledPlan) CountCtx(ctx context.Context, cfg RunConfig) (int64, Profile, error) {
	// The factorized tier only counts by set-cardinality product when no
	// emit callback exists, so a factorized batch count runs emit-free:
	// rows that do reach the sink (non-star stages) are counted by
	// dispatchBatch, rows absorbed by a factorized tail by its product.
	if cfg.FastCount || (cfg.Factorized && !cfg.TupleAtATime) {
		prof, err := cp.run(ctx, cfg, nil, nil)
		return prof.Matches, prof, err
	}
	var n atomic.Int64
	prof, err := cp.run(ctx, cfg, nil, func([]graph.VertexID) bool {
		n.Add(1)
		return true
	})
	return n.Load(), prof, err
}

// CountUpTo evaluates the compiled plan, stopping once limit matches have
// been produced (the output caps of the Appendix C experiments). Honors
// cfg.Workers: with parallel workers the count still stops at limit, but
// which matches are counted is nondeterministic.
func (cp *CompiledPlan) CountUpTo(cfg RunConfig, limit int64) (int64, Profile, error) {
	return cp.CountUpToCtx(context.Background(), cfg, limit)
}

// CountUpToCtx is CountUpTo bounded by ctx (see RunCtx).
func (cp *CompiledPlan) CountUpToCtx(ctx context.Context, cfg RunConfig, limit int64) (int64, Profile, error) {
	if limit > 0 && cfg.Factorized && !cfg.TupleAtATime && cp.StarSuffixLen() > 0 {
		// Factorized limit: the tail charges each prefix's set-cardinality
		// product against a shared budget, so the cap is hit exactly
		// without unfolding a single suffix tuple.
		cfg.FastCount = false
		var budget atomic.Int64
		budget.Store(limit)
		prof, err := cp.runBudget(ctx, cfg, nil, nil, &budget)
		return prof.Matches, prof, err
	}
	cfg.FastCount = false
	var n atomic.Int64
	prof, err := cp.run(ctx, cfg, nil, func([]graph.VertexID) bool {
		// Workers may race past the cap by one tuple each before observing
		// the stop; the overshoot is clamped below, so the reported count
		// never exceeds limit.
		return n.Add(1) < limit
	})
	c := n.Load()
	if c > limit {
		c = limit
	}
	return c, prof, err
}

// run is the execution driver: it materialises the per-run context,
// builds every hash table, then drives the root pipeline. emit, when
// non-nil, must tolerate concurrent calls if cfg.Workers > 1 (the public
// wrappers serialise user callbacks before reaching here) and returns
// false to request early termination. A nil ctx disables cancellation.
func (cp *CompiledPlan) run(ctx context.Context, cfg RunConfig, analyze *nodeCounters, emit func([]graph.VertexID) bool) (Profile, error) {
	return cp.runBudget(ctx, cfg, analyze, emit, nil)
}

// runBudget is run with an optional factorized count budget (see
// runContext.countBudget).
func (cp *CompiledPlan) runBudget(ctx context.Context, cfg RunConfig, analyze *nodeCounters, emit func([]graph.VertexID) bool, countBudget *atomic.Int64) (Profile, error) {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > runtime.NumCPU()*4 {
		workers = runtime.NumCPU() * 4
	}
	rc := &runContext{
		cp: cp, cfg: cfg, ctx: ctx, tables: make(map[*plan.HashJoin]*hashTable),
		analyze: analyze, batch: cp.EffectiveBatchSize(cfg), countBudget: countBudget,
		mem: cfg.MemBudget, faults: cfg.Faults,
	}
	for _, pipe := range cp.pipes {
		if err := rc.runErr(); err != nil {
			return rc.profile, err
		}
		if pipe.feeds != nil {
			if err := rc.buildTable(pipe, workers); err != nil {
				return Profile{}, err
			}
			continue
		}
		prof, err := rc.runPipeline(pipe, workers, true, emit)
		if err != nil {
			return Profile{}, err
		}
		rc.profile.Add(prof)
	}
	// Workers unwind on early termination without an error of their own;
	// runErr is the single source of truth for why the run ended early:
	// a recovered panic, budget exhaustion, or the context.
	if err := rc.runErr(); err != nil {
		return rc.profile, err
	}
	return rc.profile, nil
}

// ctxErr reports the run context's cancellation state.
func (rc *runContext) ctxErr() error {
	if rc.ctx == nil {
		return nil
	}
	return rc.ctx.Err()
}

// buildTable runs one build pipeline and materialises its hash join's
// table in the run context.
func (rc *runContext) buildTable(pipe *compiledPipeline, workers int) error {
	ht := newHashTable(pipe.keySlots, pipe.outWidth)
	var mu sync.Mutex
	overflow := false
	rowBytes := int64(pipe.outWidth)*vertexIDBytes + hashRowOverheadBytes
	prof, err := rc.runPipeline(pipe, workers, false, func(t []graph.VertexID) bool {
		mu.Lock()
		defer mu.Unlock()
		rc.faults.Visit(faultinject.PointHashBuild)
		if rc.cfg.MaxBuildRows > 0 && int64(ht.len()) >= rc.cfg.MaxBuildRows {
			overflow = true
			return false
		}
		// Every materialised build row is charged to the query's memory
		// budget before it is copied in; a refused reservation latches the
		// budget's exceeded state (surfaced by runErr) and stops the build.
		if !rc.mem.Reserve(rowBytes) {
			return false
		}
		ht.insert(t)
		return true
	})
	if err != nil {
		return err
	}
	if overflow {
		return ErrBuildTooLarge
	}
	prof.HashedTuples += int64(ht.len())
	// Build-side outputs are intermediate results.
	prof.Intermediate += int64(ht.len())
	rc.profile.Add(prof)
	rc.tables[pipe.feeds] = ht
	return nil
}

// runPipeline executes one pipeline with the given worker count. isRoot
// marks whether the pipeline's outputs are final matches rather than
// intermediate results. Parallel runs schedule the scan through a shared
// morsel queue (small vertex ranges dealt by an atomic cursor, split hub
// adjacency morsels stealable by any worker) instead of the old fixed
// n/(workers*8) chunking, so a single hub vertex no longer pins its
// whole extension subtree on one worker.
func (rc *runContext) runPipeline(pipe *compiledPipeline, workers int, isRoot bool, emit func([]graph.VertexID) bool) (Profile, error) {
	n := rc.cp.graph.NumVertices()
	var stopped atomic.Bool
	if workers <= 1 {
		var prof Profile
		// The recover mirrors the parallel goroutine bodies: a panic
		// outside the worker's own recovered sections (construction, batch
		// flush bookkeeping) still lands in the run's failure record
		// instead of unwinding the caller.
		func() {
			defer rc.recoverPanic(&stopped)
			w := newWorker(rc, pipe, isRoot, emit, &stopped, nil)
			w.runRecovered(0, n)
			if w.scanBatch != nil && !stopped.Load() {
				w.recovered(w.flushBatches)
			}
			w.finish()
			prof = w.profile
			w.release()
		}()
		return prof, nil
	}
	var wg sync.WaitGroup
	profs := make([]Profile, workers)
	if rc.cfg.TupleAtATime {
		// The oracle keeps the PR-4 fixed chunking, so it stays a faithful
		// baseline for the morsel scheduler as well as for results.
		chunk := n/(workers*8) + 1
		var next atomic.Int64
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				defer rc.recoverPanic(&stopped)
				w := newWorker(rc, pipe, isRoot, emit, &stopped, nil)
				for !stopped.Load() {
					start := int(next.Add(int64(chunk))) - chunk
					if start >= n {
						break
					}
					end := start + chunk
					if end > n {
						end = n
					}
					w.runRecovered(start, end)
				}
				w.finish()
				profs[wi] = w.profile
			}(wi)
		}
		wg.Wait()
	} else {
		q := newMorselQueue(n)
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				defer rc.recoverPanic(&stopped)
				w := newWorker(rc, pipe, isRoot, emit, &stopped, q)
				w.runWorkerLoop(q)
				w.finish()
				profs[wi] = w.profile
				w.release()
			}(wi)
		}
		wg.Wait()
	}
	var total Profile
	for _, p := range profs {
		total.Add(p)
	}
	return total, nil
}

// Runner executes plans against a graph: the single-shot facade over
// Compile + CompiledPlan.Run kept for callers that do not reuse plans.
type Runner struct {
	Graph graph.View
	// Workers is the number of parallel workers; <=1 means sequential.
	Workers int
	// DisableCache turns off the E/I intersection cache.
	DisableCache bool
	// MaxBuildRows aborts execution when a hash-join build side
	// materialises more than this many tuples (0 = unlimited).
	MaxBuildRows int64
	// FastCount enables factorized counting when no tuples are emitted.
	FastCount bool
	// Factorized enables the factorized execution tier (see
	// RunConfig.Factorized).
	Factorized bool
	// MemBudget meters the run's major allocators (see
	// RunConfig.MemBudget).
	MemBudget *resource.Budget
	// Faults is the fault-injection hook (see RunConfig.Faults).
	Faults *faultinject.Injector
}

func (r *Runner) config() RunConfig {
	return RunConfig{
		Workers:      r.Workers,
		DisableCache: r.DisableCache,
		MaxBuildRows: r.MaxBuildRows,
		FastCount:    r.FastCount,
		Factorized:   r.Factorized,
		MemBudget:    r.MemBudget,
		Faults:       r.Faults,
	}
}

// Count evaluates the plan and returns the number of matches and the
// execution profile.
func (r *Runner) Count(p *plan.Plan) (int64, Profile, error) {
	return r.CountCtx(context.Background(), p)
}

// CountCtx is Count bounded by ctx (see CompiledPlan.RunCtx).
func (r *Runner) CountCtx(ctx context.Context, p *plan.Plan) (int64, Profile, error) {
	cp, err := Compile(r.Graph, p)
	if err != nil {
		return 0, Profile{}, err
	}
	return cp.CountCtx(ctx, r.config())
}

// CountUpTo evaluates the plan, stopping once limit matches have been
// produced. Honors Workers: with parallel workers the count still stops
// at limit, but which matches are counted is nondeterministic.
func (r *Runner) CountUpTo(p *plan.Plan, limit int64) (int64, Profile, error) {
	cp, err := Compile(r.Graph, p)
	if err != nil {
		return 0, Profile{}, err
	}
	return cp.CountUpTo(r.config(), limit)
}

// Run evaluates the plan, invoking emit for every match. The tuple slice
// passed to emit is only valid during the call and is laid out according
// to p.Root.Out(). When Workers > 1, emit calls are serialised.
func (r *Runner) Run(p *plan.Plan, emit func([]graph.VertexID)) (Profile, error) {
	return r.RunPlanCtx(context.Background(), p, emit)
}

// RunPlanCtx is Run bounded by ctx (see CompiledPlan.RunCtx).
func (r *Runner) RunPlanCtx(ctx context.Context, p *plan.Plan, emit func([]graph.VertexID)) (Profile, error) {
	cp, err := Compile(r.Graph, p)
	if err != nil {
		return Profile{}, err
	}
	return cp.RunCtx(ctx, r.config(), emit)
}

// RunSubplan evaluates an arbitrary subplan node (which need not cover the
// whole query), emitting its tuples in node.Out() layout. The adaptive
// evaluator uses this to drive the non-adapted part of a plan.
func (r *Runner) RunSubplan(node plan.Node, emit func([]graph.VertexID)) (Profile, error) {
	return r.RunSubplanCtx(context.Background(), node, emit)
}

// RunSubplanCtx is RunSubplan bounded by ctx (see CompiledPlan.RunCtx).
func (r *Runner) RunSubplanCtx(ctx context.Context, node plan.Node, emit func([]graph.VertexID)) (Profile, error) {
	cp, err := CompileNode(r.Graph, node)
	if err != nil {
		return Profile{}, err
	}
	return cp.RunCtx(ctx, r.config(), emit)
}
