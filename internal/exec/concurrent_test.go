package exec

import (
	"sync"
	"testing"

	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// compileTestPlan builds a small graph and a plan for the given pattern
// using a hand-rolled WCO chain (scan the first edge, extend by the
// remaining vertices in index order when possible).
func compiledTriangle(t *testing.T) (*CompiledPlan, *graph.Graph, int64) {
	t.Helper()
	b := graph.NewBuilder(64)
	// A couple of overlapping triangles plus noise edges.
	edges := [][2]int{
		{0, 1}, {1, 2}, {0, 2},
		{2, 3}, {3, 4}, {2, 4},
		{4, 5}, {5, 6}, {4, 6},
		{6, 7}, {7, 8},
		{10, 11}, {11, 12}, {10, 12}, {12, 13}, {10, 13},
	}
	for _, e := range edges {
		b.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("a->b, b->c, a->c")
	scan := plan.NewScan(q, q.Edges[0])
	ext, err := plan.NewExtend(q, scan, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Plan{Query: q, Root: ext}
	cp, err := Compile(g, p)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cp.Count(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("test graph has no triangles")
	}
	return cp, g, want
}

// TestCompiledPlanConcurrentRuns drives one CompiledPlan from many
// goroutines at once — sequential and parallel runs, counting and
// enumerating — and checks every run sees the full result set. Run under
// -race this is the core safety property of the compile-once/run-many
// split: no mutable state on the compiled side.
func TestCompiledPlanConcurrentRuns(t *testing.T) {
	cp, _, want := compiledTriangle(t)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := RunConfig{Workers: 1 + i%3, FastCount: i%2 == 0}
			var n int64
			if i%4 == 3 {
				// Enumerate through emit instead of counting.
				cfg.FastCount = false
				var mu sync.Mutex
				_, err := cp.Run(cfg, func(tuple []graph.VertexID) {
					mu.Lock()
					n++
					mu.Unlock()
				})
				if err != nil {
					errs <- err.Error()
					return
				}
			} else {
				var err error
				n, _, err = cp.Count(cfg)
				if err != nil {
					errs <- err.Error()
					return
				}
			}
			if n != want {
				errs <- "wrong count"
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestRunUntilStopsEarly checks that RunUntil halts enumeration promptly
// once emit returns false, instead of draining the full result set.
func TestRunUntilStopsEarly(t *testing.T) {
	cp, _, want := compiledTriangle(t)
	if want < 2 {
		t.Skip("need at least two matches")
	}
	calls := 0
	prof, err := cp.RunUntil(RunConfig{}, func([]graph.VertexID) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("emit called %d times after requesting stop, want 1", calls)
	}
	if prof.Matches >= want {
		t.Errorf("profile shows %d matches; early stop should not drain all %d", prof.Matches, want)
	}
}

// TestRunUntilStopsEarlyParallel is the same property with workers: a few
// extra emits may race in before the stop propagates, but enumeration
// must not complete.
func TestRunUntilStopsEarlyParallel(t *testing.T) {
	cp, _, want := compiledTriangle(t)
	calls := int64(0)
	_, err := cp.RunUntil(RunConfig{Workers: 4}, func([]graph.VertexID) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("serialised emit called %d times after stop, want 1", calls)
	}
	_ = want
}

// TestCountUpToMatchesLimit checks the compiled CountUpTo cap.
func TestCountUpToMatchesLimit(t *testing.T) {
	cp, _, want := compiledTriangle(t)
	if want < 2 {
		t.Skip("need at least two matches")
	}
	n, _, err := cp.CountUpTo(RunConfig{}, want-1)
	if err != nil {
		t.Fatal(err)
	}
	if n != want-1 {
		t.Errorf("CountUpTo = %d, want %d", n, want-1)
	}
}
