package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"graphflow/internal/graph"
	"graphflow/internal/query"
)

// heavyPlan returns a compiled WCO plan whose full evaluation takes long
// enough (hundreds of milliseconds at least) that mid-run cancellation is
// observable: a 4-clique over a dense random graph.
func heavyPlan(t testing.TB) *CompiledPlan {
	t.Helper()
	g := smallRandomGraph(7, 2000, 60)
	q := query.MustParse("a->b, a->c, a->d, b->c, b->d, c->d")
	p := buildWCO(t, q, []int{0, 1, 2, 3})
	cp, err := Compile(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestCountCtxExpiredContextReturnsImmediately(t *testing.T) {
	cp := heavyPlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := cp.CountCtx(ctx, RunConfig{FastCount: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("cancelled run took %v, want near-instant", el)
	}
}

// TestCountCtxDeadlineBoundsLatency is the acceptance test for the
// amortized cancellation check: a WCO-heavy count whose context expires
// mid-run must return context.DeadlineExceeded well before the full
// evaluation would have finished.
func TestCountCtxDeadlineBoundsLatency(t *testing.T) {
	cp := heavyPlan(t)

	// Establish that the query genuinely runs long; skip (never fail) on
	// absurdly fast machines where the premise does not hold.
	full := time.Now()
	n, _, err := cp.Count(RunConfig{FastCount: true})
	if err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(full)
	if fullDur < 100*time.Millisecond {
		t.Skipf("full count of %d matches took only %v; too fast to observe mid-run cancellation", n, fullDur)
	}

	const deadline = 20 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, _, err = cp.CountCtx(ctx, RunConfig{FastCount: true})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The bound is deliberately loose (scheduler noise, slow CI), but far
	// below fullDur: the run must not have drained the plan.
	if elapsed > fullDur/2 && elapsed > 500*time.Millisecond {
		t.Errorf("cancellation latency %v (deadline %v, full run %v): not bounded", elapsed, deadline, fullDur)
	}
}

func TestCountCtxParallelCancellation(t *testing.T) {
	cp := heavyPlan(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := cp.CountCtx(ctx, RunConfig{Workers: 4, FastCount: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("parallel cancelled run took %v", el)
	}
}

func TestRunUntilCtxEarlyStopIsNotAnError(t *testing.T) {
	cp, _, _ := compiledTriangle(t)
	seen := 0
	_, err := cp.RunUntilCtx(context.Background(), RunConfig{}, func([]graph.VertexID) bool {
		seen++
		return seen < 3
	})
	if err != nil {
		t.Fatalf("early stop returned error %v", err)
	}
	if seen != 3 {
		t.Errorf("emit called %d times, want 3", seen)
	}
}

func TestCountUpToCtxHonorsWorkers(t *testing.T) {
	cp, _, total := compiledTriangle(t)
	limit := total / 2
	if limit < 1 {
		t.Skip("triangle fixture too small")
	}
	for _, workers := range []int{1, 4} {
		n, _, err := cp.CountUpTo(RunConfig{Workers: workers}, limit)
		if err != nil {
			t.Fatal(err)
		}
		if n != limit {
			t.Errorf("workers=%d: CountUpTo = %d, want %d", workers, n, limit)
		}
	}
	// A limit above the total yields the exact total regardless of workers.
	for _, workers := range []int{1, 4} {
		n, _, err := cp.CountUpTo(RunConfig{Workers: workers}, total+100)
		if err != nil {
			t.Fatal(err)
		}
		if n != total {
			t.Errorf("workers=%d: uncapped CountUpTo = %d, want %d", workers, n, total)
		}
	}
}
