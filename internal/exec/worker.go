package exec

import (
	"graphflow/internal/graph"
	"graphflow/internal/plan"
)

// worker owns the per-thread state of one pipeline: the operator chain
// compiled into stages with local intersection caches and buffers. Workers
// share only the read-only graph and hash tables.
type worker struct {
	g       *graph.Graph
	env     *environment
	scan    *plan.Scan
	stages  []stage
	isRoot  bool
	emit    func([]graph.VertexID)
	tuple   []graph.VertexID
	profile Profile
	// countFast enables factorized counting: when the final stage is an
	// E/I operator and no tuples need to be emitted, the extension set's
	// size is added to the match count without enumerating the Cartesian
	// product (the factorization optimization of the paper's Section 10).
	countFast bool
	// analyze, when non-nil, receives per-operator counters on completion.
	analyze *nodeCounters
	scanOut int64
}

// stage is one compiled operator above the scan.
type stage interface {
	// push processes the current w.tuple prefix of length inWidth and calls
	// next() for each output (with w.tuple grown accordingly).
	push(w *worker, next func())
	inWidth() int
}

func newWorker(r *Runner, env *environment, scan *plan.Scan, chain []plan.Node, isRoot bool, emit func([]graph.VertexID)) *worker {
	w := &worker{g: r.Graph, env: env, scan: scan, isRoot: isRoot, emit: emit,
		countFast: r.FastCount && emit == nil, analyze: r.analyze}
	width := 2
	for _, n := range chain {
		switch op := n.(type) {
		case *plan.Extend:
			w.stages = append(w.stages, &extendStage{
				op:       op,
				width:    width,
				useCache: !r.DisableCache,
			})
			width++
		case *plan.HashJoin:
			ht := env.tables[op]
			w.stages = append(w.stages, &probeStage{op: op, table: ht, width: width})
			width += len(op.Build.Out()) - len(op.JoinVertices)
		}
	}
	w.tuple = make([]graph.VertexID, 0, width)
	return w
}

// runRange scans the forward adjacency of vertices [start, end) matching
// the scan's labels and drives each edge tuple through the stages.
func (w *worker) runRange(start, end int) {
	srcLabel := w.scan.SrcLabel
	for v := start; v < end; v++ {
		src := graph.VertexID(v)
		if w.g.VertexLabel(src) != srcLabel {
			continue
		}
		nbrs := w.g.Neighbors(src, graph.Forward, w.scan.EdgeLabel, w.scan.DstLabel, nil)
		for _, dst := range nbrs {
			w.tuple = append(w.tuple[:0], src, dst)
			w.scanOut++
			w.countOutput(0)
			w.runStage(0)
		}
	}
}

func (w *worker) runStage(i int) {
	if i == len(w.stages) {
		if w.emit != nil {
			w.emit(w.tuple)
		}
		return
	}
	if w.countFast && w.isRoot && i == len(w.stages)-1 {
		if es, ok := w.stages[i].(*extendStage); ok {
			w.profile.Matches += int64(len(es.extensionSet(w)))
			return
		}
	}
	w.stages[i].push(w, func() {
		w.countOutput(i + 1)
		w.runStage(i + 1)
	})
}

// countOutput attributes a produced tuple to either intermediate results or
// final matches. Stage index len(stages) output is the root's output when
// this pipeline is the plan root.
func (w *worker) countOutput(stageIdx int) {
	if w.isRoot && stageIdx == len(w.stages) {
		w.profile.Matches++
	} else {
		w.profile.Intermediate++
	}
}

// extendStage implements EXTEND/INTERSECT with the intersection cache.
type extendStage struct {
	op       *plan.Extend
	width    int
	useCache bool

	// Intersection cache (Section 3.1): if consecutive tuples present the
	// same source vertices to the descriptors, the extension set is reused.
	cacheKey   []graph.VertexID
	cacheValid bool
	cacheBuf   []graph.VertexID // owns the cached extension set (flat array)
	scratch    []graph.VertexID
	lists      [][]graph.VertexID

	// Per-operator analysis counters (collected by collectStageStats).
	outTuples, icost, hits int64
}

func (s *extendStage) inWidth() int { return s.width }

func (s *extendStage) push(w *worker, next func()) {
	s.extendWith(w, s.extensionSet(w), next)
}

// extensionSet computes (or serves from the intersection cache) the
// extension set of the current tuple.
func (s *extendStage) extensionSet(w *worker) []graph.VertexID {
	descs := s.op.Descriptors
	// Cache lookup.
	if s.useCache {
		if s.cacheValid && len(s.cacheKey) == len(descs) {
			hit := true
			for i, d := range descs {
				if s.cacheKey[i] != w.tuple[d.TupleIdx] {
					hit = false
					break
				}
			}
			if hit {
				w.profile.CacheHits++
				s.hits++
				return s.cacheBuf
			}
		}
		s.cacheKey = s.cacheKey[:0]
		for _, d := range descs {
			s.cacheKey = append(s.cacheKey, w.tuple[d.TupleIdx])
		}
	}
	// Gather descriptor lists; i-cost counts every accessed list's size
	// (Equation 1).
	s.lists = s.lists[:0]
	for _, d := range descs {
		list := w.g.Neighbors(w.tuple[d.TupleIdx], d.Dir, d.EdgeLabel, s.op.TargetLabel, nil)
		w.profile.ICost += int64(len(list))
		s.icost += int64(len(list))
		s.lists = append(s.lists, list)
	}
	var ext []graph.VertexID
	if len(s.lists) == 1 {
		ext = s.lists[0]
	} else {
		ext, s.scratch = graph.IntersectK(s.lists, s.cacheBuf[:0], s.scratch)
	}
	if s.useCache {
		if len(s.lists) == 1 {
			// Copy: the list aliases (immutable) graph storage; the cache
			// buffer must survive later multiway intersections that reuse it.
			s.cacheBuf = append(s.cacheBuf[:0], ext...)
		} else {
			s.cacheBuf = ext
		}
		s.cacheValid = true
		return s.cacheBuf
	}
	return ext
}

func (s *extendStage) extendWith(w *worker, ext []graph.VertexID, next func()) {
	base := len(w.tuple)
	s.outTuples += int64(len(ext))
	for _, x := range ext {
		w.tuple = append(w.tuple[:base], x)
		next()
	}
	w.tuple = w.tuple[:base]
}

// probeStage implements the probe side of HASH-JOIN.
type probeStage struct {
	op    *plan.HashJoin
	table *hashTable
	width int

	probeSlots []int // slots in the probe tuple carrying the join vertices
	appendIdx  []int // slots in the build tuple to append to the output
	init       bool

	// Per-operator analysis counters.
	outTuples, probes int64
}

func (s *probeStage) inWidth() int { return s.width }

func (s *probeStage) ensureInit() {
	if s.init {
		return
	}
	s.init = true
	probeOut := s.op.Probe.Out()
	slotOf := map[int]int{}
	for slot, v := range probeOut {
		slotOf[v] = slot
	}
	for _, v := range s.op.JoinVertices {
		s.probeSlots = append(s.probeSlots, slotOf[v])
	}
	joinSet := map[int]bool{}
	for _, v := range s.op.JoinVertices {
		joinSet[v] = true
	}
	for slot, v := range s.op.Build.Out() {
		if !joinSet[v] {
			s.appendIdx = append(s.appendIdx, slot)
		}
	}
}

func (s *probeStage) push(w *worker, next func()) {
	s.ensureInit()
	w.profile.ProbedTuples++
	s.probes++
	base := len(w.tuple)
	rows := s.table.lookup(w.tuple, s.probeSlots)
	s.outTuples += int64(len(rows))
	for _, row := range rows {
		w.tuple = w.tuple[:base]
		for _, bi := range s.appendIdx {
			w.tuple = append(w.tuple, row[bi])
		}
		next()
	}
	w.tuple = w.tuple[:base]
}
