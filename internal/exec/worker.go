package exec

import (
	"sync/atomic"
	"time"

	"graphflow/internal/faultinject"
	"graphflow/internal/graph"
)

// worker owns the per-goroutine state of one pipeline run: the tuple
// buffer and the stage states (intersection caches, scratch buffers,
// per-operator counters) minted from the compiled stage specs. Workers
// share only the read-only graph, the compiled plan and the run's hash
// tables.
type worker struct {
	g      graph.View
	rc     *runContext
	pipe   *compiledPipeline
	stages []stageState
	isRoot bool
	// emit receives each output tuple and returns false to request early
	// termination of the whole pipeline. nil for pure counting.
	emit    func([]graph.VertexID) bool
	stopped *atomic.Bool
	tuple   []graph.VertexID
	profile Profile
	// Vectorized-engine state (nil/zero when cfg.TupleAtATime selects the
	// oracle): the per-worker scan batch, the batch stage chain, the
	// configured batch row capacity and the shared morsel queue hub
	// morsels are pushed to when a scan vertex's adjacency is split.
	bstages   []batchStage
	scanBatch *tupleBatch
	batchSize int
	// factorized records whether the stage chain ends in a factorizedTail
	// — part of the pooled worker's shape, checked on reuse.
	factorized bool
	mq         *morselQueue
	// scanReader is the reusable neighbor fill for the scan stage (both
	// engines), replacing the old Neighbors(..., nil) per-vertex lookup.
	scanReader graph.NeighborReader
	// countFast enables factorized counting: when the final stage is an
	// E/I operator and no tuples need to be emitted, the extension set's
	// size is added to the match count without enumerating the Cartesian
	// product (the factorization optimization of the paper's Section 10).
	countFast bool
	scanOut   int64
	// cancelCountdown amortizes context polling: it is decremented on
	// every produced tuple and the context is only consulted when it
	// reaches zero, so the hot extend/probe loops pay one integer
	// decrement per tuple.
	cancelCountdown int
	// nWords is the graph's bitset word count ((V+63)/64): the cost of a
	// word-AND, precomputed for the bitset-candidate check in E/I stages.
	nWords int
	// Per-stage wall-time attribution (batch engine only): stageNanos[0]
	// is the scan slot, stageNanos[1+i] stage i's slot, and the final
	// entry the sink (emit or build insert). dispatchBatch charges the
	// interval since lastStamp to curStage around every pushBatch, so
	// each slot accumulates self time — two time.Now calls per batch per
	// stage, no allocation, always on. The slice is minted once per
	// worker shape and survives pooling.
	stageNanos []int64
	curStage   int
	lastStamp  time.Time
	// memBytes is the metered size of the worker's batch scratch (scan
	// batch plus every stage's retained output batch), charged to the
	// run's memory budget on checkout — including pooled reuse, since
	// the reusing query is the one holding the memory.
	memBytes int64
	// poisoned marks a worker whose run ended in a recovered foreign
	// panic: its scratch may be inconsistent, so release never pools it.
	poisoned bool
}

// cancelCheckInterval is the number of produced tuples between context
// polls. Small enough that even a single deep pipeline observes
// cancellation within microseconds on modern hardware, large enough that
// the poll never shows up in profiles.
const cancelCheckInterval = 4096

// stageState is the per-run mutable counterpart of one stageSpec.
type stageState interface {
	// push processes the current w.tuple prefix and calls next() for each
	// output (with w.tuple grown accordingly).
	push(w *worker, next func())
}

func newWorker(rc *runContext, pipe *compiledPipeline, isRoot bool, emit func([]graph.VertexID) bool, stopped *atomic.Bool, mq *morselQueue) *worker {
	fact := !rc.cfg.TupleAtATime && rc.cfg.Factorized && isRoot && pipe.starSuffix < len(pipe.stages)
	if !rc.cfg.TupleAtATime {
		// Reuse pooled worker scratch when its shape matches this run; a
		// mismatched worker (different batch capacity or tail shape) is
		// simply dropped for the garbage collector.
		if pooled, _ := pipe.pool.Get().(*worker); pooled != nil &&
			pooled.batchSize == rc.batch && pooled.factorized == fact {
			pooled.rebind(rc, emit, stopped, mq)
			pooled.chargeCheckout()
			return pooled
		}
	}
	w := &worker{
		g: rc.cp.graph, rc: rc, pipe: pipe, isRoot: isRoot,
		emit: emit, stopped: stopped, mq: mq,
		countFast:       rc.cfg.FastCount && emit == nil,
		cancelCountdown: cancelCheckInterval,
		nWords:          (rc.cp.graph.NumVertices() + 63) / 64,
	}
	if rc.cfg.TupleAtATime {
		for _, spec := range pipe.stages {
			w.stages = append(w.stages, spec.newState(rc))
		}
	} else {
		w.batchSize = rc.batch
		w.scanBatch = newTupleBatch(2, w.batchSize)
		width := 2
		cut := len(pipe.stages)
		if fact {
			cut = pipe.starSuffix
		}
		for i, spec := range pipe.stages[:cut] {
			st := spec.newBatchState(rc, i, width)
			width = st.outWidth()
			w.bstages = append(w.bstages, st)
		}
		if fact {
			specs := make([]*extendSpec, 0, len(pipe.stages)-cut)
			for _, spec := range pipe.stages[cut:] {
				specs = append(specs, spec.(*extendSpec))
			}
			w.bstages = append(w.bstages, newFactorizedTail(rc, specs, cut, width))
			w.factorized = true
		}
	}
	w.tuple = make([]graph.VertexID, 0, pipe.outWidth)
	if w.scanBatch != nil {
		w.stageNanos = make([]int64, len(w.bstages)+2)
		w.lastStamp = time.Now()
		words := 2 * w.batchSize
		for _, st := range w.bstages {
			words += st.outWidth() * w.batchSize
		}
		w.memBytes = int64(words) * vertexIDBytes
	}
	w.chargeCheckout()
	return w
}

// chargeCheckout reserves the worker's batch scratch against the run's
// memory budget and visits the worker-start fault point. A refused
// reservation latches the budget's exceeded state and raises the shared
// stopped flag, so the worker's scan loop exits at its first vertex and
// the driver reports the budget error.
func (w *worker) chargeCheckout() {
	if !w.rc.mem.Reserve(w.memBytes) {
		w.stopped.Store(true)
	}
	w.rc.faults.Visit(faultinject.PointWorkerStart)
}

// rebind readies a pooled batch-engine worker for a fresh run: the
// per-run bindings are replaced and every stage resets its mutable state
// (cache validity, per-operator counters, hash-table pointers) while
// keeping its allocated scratch.
func (w *worker) rebind(rc *runContext, emit func([]graph.VertexID) bool, stopped *atomic.Bool, mq *morselQueue) {
	w.rc = rc
	w.emit = emit
	w.stopped = stopped
	w.mq = mq
	w.countFast = rc.cfg.FastCount && emit == nil
	w.cancelCountdown = cancelCheckInterval
	w.profile = Profile{}
	w.scanOut = 0
	w.tuple = w.tuple[:0]
	w.scanBatch.clear()
	for _, s := range w.bstages {
		s.reset(rc)
	}
	for i := range w.stageNanos {
		w.stageNanos[i] = 0
	}
	w.curStage = 0
	w.lastStamp = time.Now()
}

// release returns a batch-engine worker's scratch to its pipeline's pool
// once its profile has been collected. Oracle workers are not pooled —
// the tuple-at-a-time engine is the differential baseline, kept free of
// reuse machinery. Poisoned workers (a foreign panic unwound through
// their stages, so batches and caches may be mid-mutation) are dropped
// for the garbage collector. References that could pin caller state
// (emit closures, the run context) are dropped before pooling.
func (w *worker) release() {
	if w.scanBatch == nil || w.poisoned {
		return
	}
	w.rc = nil
	w.emit = nil
	w.stopped = nil
	w.mq = nil
	w.pipe.pool.Put(w)
}

// stopRun unwinds a pipeline when emit requests early termination; the
// worker's range loop recovers it.
type stopRun struct{}

// recovered runs f, converting a stopRun unwind into the shared stopped
// flag so sibling workers cease at their next check. A foreign panic —
// an engine bug, a panicking emit callback, or an injected fault — is
// isolated to this query: it is recorded (with its stack) as the run's
// failure instead of unwinding the process, the worker is poisoned so
// its possibly inconsistent scratch never re-enters the pool, and the
// runner drains cleanly through the same stopped flag.
func (w *worker) recovered(f func()) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if _, ok := rec.(stopRun); !ok {
			w.poisoned = true
			w.rc.fail(rec)
		}
		w.stopped.Store(true)
	}()
	f()
}

// runRecovered scans [start, end) under the stopRun recover, dispatching
// to the engine the run was configured with.
func (w *worker) runRecovered(start, end int) {
	w.recovered(func() {
		if w.scanBatch != nil {
			w.runBatchRange(start, end)
			return
		}
		w.runRange(start, end)
	})
}

// runRange is the tuple-at-a-time (oracle) scan loop: it drives each edge
// tuple of vertices [start, end) through the stages individually.
func (w *worker) runRange(start, end int) {
	scan := w.pipe.scan
	srcLabel := scan.SrcLabel
	for v := start; v < end; v++ {
		if w.stopped.Load() {
			return
		}
		src := graph.VertexID(v)
		if w.g.VertexLabel(src) != srcLabel {
			continue
		}
		nbrs := w.scanReader.Read(w.g, src, graph.Forward, scan.EdgeLabel, scan.DstLabel)
		for _, dst := range nbrs {
			w.tuple = append(w.tuple[:0], src, dst)
			w.scanOut++
			w.countOutput(0)
			w.runStage(0)
		}
	}
}

func (w *worker) runStage(i int) {
	if i == len(w.stages) {
		if w.emit != nil && !w.emit(w.tuple) {
			panic(stopRun{})
		}
		return
	}
	if w.countFast && w.isRoot && i == len(w.stages)-1 {
		if es, ok := w.stages[i].(*extendState); ok {
			w.profile.Matches += int64(len(es.extensionSet(w)))
			return
		}
	}
	w.stages[i].push(w, func() {
		w.countOutput(i + 1)
		w.runStage(i + 1)
	})
}

// countOutput attributes a produced tuple to either intermediate results or
// final matches. Stage index len(stages) output is the root's output when
// this pipeline is the plan root. Every produced tuple at every stage
// flows through here, which makes it the natural hook for the amortized
// cancellation check: long-running pipelines produce tuples constantly,
// so polling every cancelCheckInterval tuples bounds cancellation
// latency without a per-tuple context load.
func (w *worker) countOutput(stageIdx int) {
	if w.isRoot && stageIdx == len(w.stages) {
		w.profile.Matches++
	} else {
		w.profile.Intermediate++
	}
	w.cancelCountdown--
	if w.cancelCountdown <= 0 {
		w.pollCancel()
	}
}

// pollCancel consults the run's context and memory budget and unwinds
// the pipeline via the same stopRun machinery as emit-driven early
// termination when either demands a stop. The run driver reads runErr
// afterwards, so the reason (panic > budget > context) is never lost in
// the unwind. It is the ctxpoll analyzer's anchor: a stage loop
// complies by reaching this call — which also makes it the one place
// budget exhaustion and injected faults are observed, preserving the
// zero-alloc steady state of the hot loops.
//
//gf:pollpoint
func (w *worker) pollCancel() {
	w.cancelCountdown = cancelCheckInterval
	w.rc.faults.Visit(faultinject.PointPoll)
	if w.rc.mem.Exceeded() {
		w.stopped.Store(true)
		panic(stopRun{})
	}
	if w.rc.ctx != nil && w.rc.ctx.Err() != nil {
		w.stopped.Store(true)
		panic(stopRun{})
	}
}

// eachState calls ext for every E/I state and probe for every hash-probe
// state, whichever engine the worker was built for.
func (w *worker) eachState(ext func(*extendState), probe func(*probeState)) {
	for _, s := range w.stages {
		switch st := s.(type) {
		case *extendState:
			ext(st)
		case *probeState:
			probe(st)
		}
	}
	for _, s := range w.bstages {
		switch st := s.(type) {
		case *batchExtendState:
			ext(&st.es)
		case *batchProbeState:
			probe(&st.ps)
		case *factorizedTail:
			for _, leaf := range st.leaves {
				ext(&leaf.es)
			}
		}
	}
}

// enterStage charges the interval since lastStamp to the current stage
// slot and switches attribution to idx, returning the previous slot for
// leaveStage to restore. Two time.Now calls bracket every dispatched
// batch — amortized over the batch's rows, and allocation-free, so the
// steady-state hot path stays 0 allocs/op with timing always on.
func (w *worker) enterStage(idx int) int {
	now := time.Now()
	w.stageNanos[w.curStage] += now.Sub(w.lastStamp).Nanoseconds()
	w.lastStamp = now
	prev := w.curStage
	w.curStage = idx
	return prev
}

// leaveStage closes the current slot's interval and restores prev.
func (w *worker) leaveStage(prev int) {
	now := time.Now()
	w.stageNanos[w.curStage] += now.Sub(w.lastStamp).Nanoseconds()
	w.lastStamp = now
	w.curStage = prev
}

// foldStageTimes folds the indexed per-slot nanos into the profile's
// per-stage-kind attribution (and, when an analysis collector is
// attached, into per-plan-node wall times). Slot kinds follow the
// worker's stage chain; the sink slot is build-insert time for build
// pipelines and emit time for the root.
func (w *worker) foldStageTimes() {
	if w.stageNanos == nil {
		return
	}
	// Close the open interval (trailing scan time since the last batch).
	now := time.Now()
	w.stageNanos[w.curStage] += now.Sub(w.lastStamp).Nanoseconds()
	w.lastStamp = now
	w.curStage = 0

	st := &w.profile.Stages
	st.Scan += w.stageNanos[0]
	for i, s := range w.bstages {
		n := w.stageNanos[i+1]
		switch s.(type) {
		case *batchExtendState:
			st.Extend += n
		case *batchProbeState:
			st.Probe += n
		case *factorizedTail:
			st.Factorized += n
		}
	}
	sinkN := w.stageNanos[len(w.bstages)+1]
	if w.pipe.feeds != nil {
		st.Build += sinkN
	} else {
		st.Emit += sinkN
	}
	if nc := w.rc.analyze; nc != nil {
		// Analyze disables factorization, so bstages[i] maps 1:1 onto
		// pipe.stages[i]; sink time lands on the pipeline's own node.
		nc.addNanos(w.pipe.scan, w.stageNanos[0])
		for i := range w.bstages {
			if i < len(w.pipe.stages) {
				nc.addNanos(w.pipe.stages[i].planNode(), w.stageNanos[i+1])
			}
		}
		nc.addNanos(w.pipe.node, sinkN)
	}
	for i := range w.stageNanos {
		w.stageNanos[i] = 0
	}
}

// finish flushes per-operator counters into the worker's profile and the
// run's analysis collector, if one is attached.
func (w *worker) finish() {
	w.foldStageTimes()
	w.eachState(func(st *extendState) {
		w.profile.Kernels.Add(st.it.Counters)
		st.it.Counters = graph.KernelCounters{}
	}, func(*probeState) {})
	nc := w.rc.analyze
	if nc == nil {
		return
	}
	nc.add(w.pipe.scan, w.scanOut, 0, 0, 0, 0)
	w.scanOut = 0
	w.eachState(func(st *extendState) {
		nc.add(st.spec.op, st.outTuples, st.icost, st.hits, 0, 0)
		st.outTuples, st.icost, st.hits = 0, 0, 0
	}, func(st *probeState) {
		nc.add(st.spec.op, st.outTuples, 0, 0, st.probes, int64(st.table.len()))
		st.outTuples, st.probes = 0, 0
	})
}

// extendState implements EXTEND/INTERSECT with the intersection cache.
// Both engines share it: the oracle gathers descriptor values from the
// flat tuple, the batch engine from its columns; extensionSetFor is the
// common core.
type extendState struct {
	spec     *extendSpec
	useCache bool

	// Intersection cache (Section 3.1): if consecutive tuples present the
	// same source vertices to the descriptors, the extension set is reused.
	// In the batch engine this is also the run-grouping mechanism: sorted
	// batches make equal-prefix runs contiguous, so one intersection
	// serves the whole run as a column sweep of cache hits.
	cacheKey   []graph.VertexID
	cacheValid bool
	// cacheExt is the served extension set: for multiway intersections it
	// is cacheBuf (owned storage the kernels write into), for
	// single-descriptor extensions it aliases the immutable adjacency run
	// directly — valid for the whole run since the epoch snapshot is
	// pinned — so plain extends never copy their neighbour list.
	cacheExt []graph.VertexID
	cacheBuf []graph.VertexID // owns the cached extension set (flat array)
	scratch  []graph.VertexID
	lists    [][]graph.VertexID
	bits     []*graph.Bitset
	// readers own the per-descriptor neighbor fill buffers (one each, so
	// a multiway gather never clobbers an earlier descriptor's run).
	readers []graph.NeighborReader
	valBuf  []graph.VertexID

	// it is the degree-adaptive k-way intersection engine. It owns the
	// shortest-first ordering scratch (previously allocated per call
	// inside graph.IntersectK) and the per-kernel dispatch counters, so
	// the E/I hot path runs allocation-free after warm-up.
	it graph.Intersector

	// meteredCap is the cache/scratch capacity (in vertices) already
	// charged to the current run's memory budget; only growth beyond it
	// is reserved, so the steady state pays one integer compare.
	meteredCap int

	// Per-operator analysis counters (collected by worker.finish).
	outTuples, icost, hits int64
}

// reset readies the state for reuse by a pooled worker: cache validity
// and per-operator counters are cleared, allocated scratch (cache
// buffers, readers, intersector state) is kept.
func (s *extendState) reset(useCache bool) {
	s.useCache = useCache
	s.cacheValid = false
	// The retained buffers are now held on behalf of the next run: its
	// budget is recharged for their full capacity on first use.
	s.meteredCap = 0
	s.outTuples, s.icost, s.hits = 0, 0, 0
}

//gf:noalloc
func (s *extendState) push(w *worker, next func()) {
	s.extendWith(w, s.extensionSet(w), next)
}

// extensionSet computes (or serves from the intersection cache) the
// extension set of the current tuple.
func (s *extendState) extensionSet(w *worker) []graph.VertexID {
	s.valBuf = s.valBuf[:0]
	for _, d := range s.spec.op.Descriptors {
		s.valBuf = append(s.valBuf, w.tuple[d.TupleIdx])
	}
	return s.extensionSetFor(w, s.valBuf)
}

// extensionSetFor computes (or serves from the intersection cache) the
// extension set for the given descriptor source vertices, one per
// descriptor in declaration order.
//
//gf:noalloc
func (s *extendState) extensionSetFor(w *worker, vals []graph.VertexID) []graph.VertexID {
	op := s.spec.op
	descs := op.Descriptors
	// Cache lookup.
	if s.useCache {
		if s.cacheValid && len(s.cacheKey) == len(vals) {
			hit := true
			for i, v := range vals {
				if s.cacheKey[i] != v {
					hit = false
					break
				}
			}
			if hit {
				w.profile.CacheHits++
				s.hits++
				return s.cacheExt
			}
		}
		s.cacheKey = append(s.cacheKey[:0], vals...)
	}
	if s.readers == nil {
		s.readers = make([]graph.NeighborReader, len(descs)) //gf:allowalloc one-time per-descriptor reader setup, retained across tuples
	}
	// Gather descriptor lists; i-cost counts every accessed list's size
	// (Equation 1).
	s.lists = s.lists[:0]
	for i, d := range descs {
		list := s.readers[i].Read(w.g, vals[i], d.Dir, d.EdgeLabel, op.TargetLabel)
		w.profile.ICost += int64(len(list))
		s.icost += int64(len(list))
		s.lists = append(s.lists, list)
	}
	var ext []graph.VertexID
	if len(s.lists) == 1 {
		ext = s.lists[0]
	} else {
		// Multiway extension: fetch hub bitset indexes only for the lists
		// the shared pre-filter says could win a bitset kernel. Extensions
		// over ordinary-degree vertices (and dead ends with an empty list)
		// pay nothing for the index's existence.
		s.bits = s.bits[:0]
		if floor, ok := graph.BitsetFetchFloor(s.lists, w.nWords); ok {
			for i, d := range descs {
				var bs *graph.Bitset
				if len(s.lists[i]) >= floor {
					bs = w.g.NeighborBitset(vals[i], d.Dir, d.EdgeLabel, op.TargetLabel)
				}
				s.bits = append(s.bits, bs)
			}
		}
		ext, s.scratch = s.it.IntersectK(s.lists, s.bits, s.cacheBuf[:0], s.scratch)
		// Charge kernel-buffer growth (the factorized extension-set caches
		// of the memory budget) — capacity deltas only, so a warm cache
		// costs one compare per intersection. Exhaustion is observed at
		// the next pollpoint.
		if n := cap(ext) + cap(s.scratch); n > s.meteredCap {
			w.rc.mem.Reserve(int64(n-s.meteredCap) * vertexIDBytes)
			s.meteredCap = n
		}
	}
	if s.useCache {
		if len(s.lists) > 1 {
			// cacheBuf stays the owned kernel output buffer; the
			// single-descriptor alias is never assigned to it, so the next
			// multiway intersection cannot scribble over graph storage.
			s.cacheBuf = ext
		}
		s.cacheExt = ext
		s.cacheValid = true
	}
	return ext
}

func (s *extendState) extendWith(w *worker, ext []graph.VertexID, next func()) {
	base := len(w.tuple)
	s.outTuples += int64(len(ext))
	for _, x := range ext {
		w.tuple = append(w.tuple[:base], x)
		next()
	}
	w.tuple = w.tuple[:base]
}

// probeState implements the probe side of HASH-JOIN.
type probeState struct {
	spec  *probeSpec
	table *hashTable

	// Per-operator analysis counters.
	outTuples, probes int64
}

//gf:noalloc
func (s *probeState) push(w *worker, next func()) {
	w.profile.ProbedTuples++
	s.probes++
	base := len(w.tuple)
	rows := s.table.lookup(w.tuple, s.spec.probeSlots)
	s.outTuples += int64(len(rows))
	for _, row := range rows {
		w.tuple = w.tuple[:base]
		for _, bi := range s.spec.appendIdx {
			w.tuple = append(w.tuple, row[bi])
		}
		next()
	}
	w.tuple = w.tuple[:base]
}
