package exec

import (
	"math/rand"
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// buildWCO constructs a WCO plan for q in the given vertex order.
func buildWCO(t testing.TB, q *query.Graph, order []int) *plan.Plan {
	t.Helper()
	var first *query.Edge
	for i := range q.Edges {
		e := q.Edges[i]
		if (e.From == order[0] && e.To == order[1]) || (e.From == order[1] && e.To == order[0]) {
			first = &e
			break
		}
	}
	if first == nil {
		t.Fatalf("order %v does not start with an edge", order)
	}
	var node plan.Node = plan.NewScan(q, *first)
	for _, v := range order[2:] {
		ext, err := plan.NewExtend(q, node, v)
		if err != nil {
			t.Fatalf("NewExtend: %v", err)
		}
		node = ext
	}
	return &plan.Plan{Query: q, Root: node}
}

func smallRandomGraph(seed int64, n, deg int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for d := 0; d < deg; d++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID(rng.Intn(n)), 0)
		}
	}
	return b.MustBuild()
}

func TestScanOnlyPlan(t *testing.T) {
	g := smallRandomGraph(1, 50, 3)
	q := query.MustParse("a->b")
	p := &plan.Plan{Query: q, Root: plan.NewScan(q, q.Edges[0])}
	r := &Runner{Graph: g}
	n, prof, err := r.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(g.NumEdges()) {
		t.Errorf("edge scan = %d, want %d", n, g.NumEdges())
	}
	if prof.Matches != n || prof.Intermediate != 0 {
		t.Errorf("profile: %+v", prof)
	}
}

func TestWCOTriangleMatchesReference(t *testing.T) {
	g := smallRandomGraph(2, 120, 6)
	q := query.Q1()
	want := query.RefCount(g, q)
	r := &Runner{Graph: g}
	for _, order := range [][]int{{0, 1, 2}, {1, 2, 0}, {0, 2, 1}} {
		p := buildWCO(t, q, order)
		got, prof, err := r.Count(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("order %v: count = %d, want %d", order, got, want)
		}
		if prof.ICost <= 0 {
			t.Errorf("order %v: no i-cost recorded", order)
		}
	}
}

func TestAllQVOsAgreeOnDiamondX(t *testing.T) {
	g := smallRandomGraph(3, 80, 5)
	q := query.Q4()
	want := query.RefCount(g, q)
	r := &Runner{Graph: g}
	// All connected-prefix orderings.
	for _, order := range allOrders(q) {
		p := buildWCO(t, q, order)
		got, _, err := r.Count(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("order %v: count = %d, want %d", order, got, want)
		}
	}
}

// allOrders enumerates connected-prefix vertex orders starting at an edge.
func allOrders(q *query.Graph) [][]int {
	n := q.NumVertices()
	var out [][]int
	var rec func(order []int, mask query.Mask)
	rec = func(order []int, mask query.Mask) {
		if len(order) == n {
			out = append(out, append([]int(nil), order...))
			return
		}
		for v := 0; v < n; v++ {
			if mask&query.Bit(v) != 0 {
				continue
			}
			if len(q.EdgesBetween(mask, v)) == 0 {
				continue
			}
			rec(append(order, v), mask|query.Bit(v))
		}
	}
	for _, e := range q.Edges {
		rec([]int{e.From, e.To}, query.Bit(e.From)|query.Bit(e.To))
	}
	return out
}

func TestHashJoinPlanMatchesReference(t *testing.T) {
	g := smallRandomGraph(4, 100, 5)
	q := query.Q8() // two triangles sharing a3
	want := query.RefCount(g, q)
	left := buildWCO(t, q, []int{0, 1, 2}).Root
	right := buildWCO(t, q, []int{2, 3, 4}).Root
	hj, err := plan.NewHashJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Plan{Query: q, Root: hj}
	r := &Runner{Graph: g}
	got, prof, err := r.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("hash join count = %d, want %d", got, want)
	}
	if prof.HashedTuples == 0 || prof.ProbedTuples == 0 {
		t.Errorf("join counters empty: %+v", prof)
	}
}

func TestExtendAfterHashJoin(t *testing.T) {
	// Q9's signature plan shape (Figure 10): join two triangles, then close
	// a6 with a 2-way intersection after the join.
	g := smallRandomGraph(5, 90, 5)
	q := query.Q9()
	want := query.RefCount(g, q)
	tri1 := buildWCO(t, q, []int{0, 1, 2}).Root // a1,a2,a3
	tri2 := buildWCO(t, q, []int{2, 3, 4}).Root // a3,a4,a5
	hj, err := plan.NewHashJoin(tri1, tri2)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := plan.NewExtend(q, hj, 5) // close a6 from a2 and a4
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Descriptors) != 2 {
		t.Fatalf("a6 close should intersect 2 lists, got %d", len(ext.Descriptors))
	}
	p := &plan.Plan{Query: q, Root: ext}
	r := &Runner{Graph: g}
	got, _, err := r.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Q9 hybrid count = %d, want %d", got, want)
	}
}

func TestNestedHashJoins(t *testing.T) {
	// Q10: diamond (a1..a4) joined with triangle (a4,a5,a6), diamond built
	// from a join itself to exercise build-side recursion.
	g := smallRandomGraph(6, 70, 5)
	q := query.Q10()
	want := query.RefCount(g, q)

	pathL := buildWCO(t, q, []int{1, 0, 2}).Root // a2<-a1->a3
	diamond, err := plan.NewExtend(q, pathL, 3)  // close a4
	if err != nil {
		t.Fatal(err)
	}
	tri := buildWCO(t, q, []int{3, 4, 5}).Root // a4,a5,a6 triangle
	hj, err := plan.NewHashJoin(diamond, tri)
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Plan{Query: q, Root: hj}
	r := &Runner{Graph: g}
	got, _, err := r.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Q10 count = %d, want %d", got, want)
	}
}

func TestIntersectionCacheCorrectnessAndHits(t *testing.T) {
	g := datagen.Amazon(1)
	q := query.Q5() // symmetric diamond-X: cache-friendly order exists
	// Order a2,a3,a1,a4: extensions of a1 and a4 use identical descriptors
	// reading slots 0,1 — the second one always hits the cache.
	pCached := buildWCO(t, q, []int{1, 2, 0, 3})
	rOn := &Runner{Graph: g}
	rOff := &Runner{Graph: g, DisableCache: true}
	nOn, profOn, err := rOn.Count(pCached)
	if err != nil {
		t.Fatal(err)
	}
	nOff, profOff, err := rOff.Count(pCached)
	if err != nil {
		t.Fatal(err)
	}
	if nOn != nOff {
		t.Fatalf("cache changed result: %d vs %d", nOn, nOff)
	}
	if profOn.CacheHits == 0 {
		t.Error("expected cache hits on a2a3a1a4 ordering of Q5")
	}
	if profOn.ICost >= profOff.ICost {
		t.Errorf("cache should reduce i-cost: on=%d off=%d", profOn.ICost, profOff.ICost)
	}
	if want := query.RefCount(g, q); nOn != want {
		t.Errorf("count = %d, want %d", nOn, want)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := datagen.Epinions(1)
	q := query.Q1()
	p := buildWCO(t, q, []int{0, 1, 2})
	seq := &Runner{Graph: g, Workers: 1}
	par := &Runner{Graph: g, Workers: 8}
	nSeq, profSeq, err := seq.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	nPar, profPar, err := par.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if nSeq != nPar {
		t.Errorf("parallel count = %d, sequential = %d", nPar, nSeq)
	}
	if profPar.Matches != profSeq.Matches {
		t.Errorf("profiles disagree on matches: %d vs %d", profPar.Matches, profSeq.Matches)
	}
}

func TestParallelHybridMatchesSequential(t *testing.T) {
	g := smallRandomGraph(8, 200, 6)
	q := query.Q8()
	left := buildWCO(t, q, []int{0, 1, 2}).Root
	right := buildWCO(t, q, []int{2, 3, 4}).Root
	hj, err := plan.NewHashJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Plan{Query: q, Root: hj}
	nSeq, _, err := (&Runner{Graph: g, Workers: 1}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	nPar, _, err := (&Runner{Graph: g, Workers: 6}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if nSeq != nPar {
		t.Errorf("parallel hybrid = %d, sequential = %d", nPar, nSeq)
	}
}

func TestRunEmitTuples(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(0, 2, 0)
	g := b.MustBuild()
	q := query.Q1()
	p := buildWCO(t, q, []int{0, 1, 2})
	var tuples [][]graph.VertexID
	r := &Runner{Graph: g}
	_, err := r.Run(p, func(tu []graph.VertexID) {
		tuples = append(tuples, append([]graph.VertexID(nil), tu...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("tuples = %v, want 1 triangle", tuples)
	}
	// Layout is [a1, a2, a3] for this order.
	if tuples[0][0] != 0 || tuples[0][1] != 1 || tuples[0][2] != 2 {
		t.Errorf("tuple = %v, want [0 1 2]", tuples[0])
	}
}

func TestLabeledExecution(t *testing.T) {
	base := smallRandomGraph(9, 100, 5)
	g := datagen.Relabel(base, 1, 3, 17)
	q := query.WithRandomEdgeLabels(query.Q1(), 3, 99)
	want := query.RefCount(g, q)
	p := buildWCO(t, q, []int{0, 1, 2})
	got, _, err := (&Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("labeled count = %d, want %d", got, want)
	}
}

func TestProfileIntermediateCounts(t *testing.T) {
	// Triangle on K3: scan emits 3 edges (intermediate), extend emits 1
	// match.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(0, 2, 0)
	g := b.MustBuild()
	p := buildWCO(t, query.Q1(), []int{0, 1, 2})
	_, prof, err := (&Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Intermediate != 3 {
		t.Errorf("intermediate = %d, want 3 (scanned edges)", prof.Intermediate)
	}
	if prof.Matches != 1 {
		t.Errorf("matches = %d, want 1", prof.Matches)
	}
}
