package exec

import (
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

func TestCountUpToStopsEarly(t *testing.T) {
	g := datagen.Amazon(1)
	q := query.Q1()
	p := buildWCO(t, q, []int{0, 1, 2})
	full, _, err := (&Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if full < 100 {
		t.Skipf("too few triangles (%d)", full)
	}
	n, _, err := (&Runner{Graph: g}).CountUpTo(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("capped count = %d, want 10", n)
	}
	// A limit above the total returns the exact count.
	n, _, err = (&Runner{Graph: g}).CountUpTo(p, full+1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != full {
		t.Errorf("uncapped CountUpTo = %d, want %d", n, full)
	}
}

func TestMaxBuildRows(t *testing.T) {
	g := datagen.Amazon(1)
	q := query.Q8()
	left := buildWCO(t, q, []int{0, 1, 2}).Root
	right := buildWCO(t, q, []int{2, 3, 4}).Root
	hj, err := plan.NewHashJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Plan{Query: q, Root: hj}
	// A tiny budget must trip the guard.
	_, _, err = (&Runner{Graph: g, MaxBuildRows: 5}).Count(p)
	if err != ErrBuildTooLarge {
		t.Errorf("expected ErrBuildTooLarge, got %v", err)
	}
	// A generous budget must not change the result.
	want, _, err := (&Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := (&Runner{Graph: g, MaxBuildRows: 1 << 40}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("budgeted count = %d, want %d", got, want)
	}
}

func TestCountUpToPropagatesBuildLimit(t *testing.T) {
	g := datagen.Amazon(1)
	q := query.Q8()
	left := buildWCO(t, q, []int{0, 1, 2}).Root
	right := buildWCO(t, q, []int{2, 3, 4}).Root
	hj, err := plan.NewHashJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Plan{Query: q, Root: hj}
	_, _, err = (&Runner{Graph: g, MaxBuildRows: 5}).CountUpTo(p, 1000)
	if err != ErrBuildTooLarge {
		t.Errorf("CountUpTo dropped MaxBuildRows: %v", err)
	}
}
