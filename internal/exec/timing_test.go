package exec

import (
	"strings"
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// TestStageTimesAttributed checks the per-stage wall-time attribution:
// a batch-engine count on a real dataset must charge time to the scan
// and E/I slots, the total must be positive, and a parallel run's
// attribution must also land (summed across workers).
func TestStageTimesAttributed(t *testing.T) {
	g := datagen.Epinions(1)
	q := query.Q1()
	p := buildWCO(t, q, []int{0, 1, 2})
	for _, workers := range []int{1, 4} {
		r := &Runner{Graph: g, Workers: workers}
		_, prof, err := r.Count(p)
		if err != nil {
			t.Fatal(err)
		}
		st := prof.Stages
		if st.Scan <= 0 || st.Extend <= 0 {
			t.Errorf("workers=%d: scan=%d extend=%d nanos, want both > 0", workers, st.Scan, st.Extend)
		}
		if st.Total() <= 0 {
			t.Errorf("workers=%d: total stage time %d, want > 0", workers, st.Total())
		}
	}
}

// TestStageTimesHybridPlan checks that a hash-join plan attributes
// build-side sink time to Build and probe time to Probe.
func TestStageTimesHybridPlan(t *testing.T) {
	g := datagen.Amazon(1)
	q := query.Q8()
	left := buildWCO(t, q, []int{0, 1, 2}).Root
	right := buildWCO(t, q, []int{2, 3, 4}).Root
	hj, err := plan.NewHashJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Plan{Query: q, Root: hj}
	_, prof, err := (&Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Stages.Probe <= 0 {
		t.Errorf("probe time = %d nanos, want > 0", prof.Stages.Probe)
	}
	if prof.Stages.Build <= 0 {
		t.Errorf("build time = %d nanos, want > 0", prof.Stages.Build)
	}
}

// TestOracleReportsNoStageTimes pins the contract that the
// tuple-at-a-time oracle is timing-free: it is the differential
// baseline and stays clear of instrumentation.
func TestOracleReportsNoStageTimes(t *testing.T) {
	g := datagen.Epinions(1)
	p := buildWCO(t, query.Q1(), []int{0, 1, 2})
	cp, err := Compile(g, p)
	if err != nil {
		t.Fatal(err)
	}
	_, prof, err := cp.Count(RunConfig{TupleAtATime: true})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Stages != (StageNanos{}) {
		t.Errorf("oracle reported stage times: %+v", prof.Stages)
	}
}

// TestAnalyzeNanos checks that EXPLAIN ANALYZE attributes wall time to
// every plan node and renders it.
func TestAnalyzeNanos(t *testing.T) {
	g := datagen.Epinions(1)
	p := buildWCO(t, query.Q1(), []int{0, 1, 2})
	stats, prof, err := (&Runner{Graph: g}).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	var rec func(s *OpStats)
	rec = func(s *OpStats) {
		if s.Nanos < 0 {
			t.Errorf("%s: negative nanos %d", s.Operator, s.Nanos)
		}
		sum += s.Nanos
		for _, c := range s.Children {
			rec(c)
		}
	}
	rec(stats)
	if sum <= 0 {
		t.Fatalf("no wall time attributed:\n%s", stats.Describe())
	}
	// Per-node times are self times folded from the profile's slots.
	if total := prof.Stages.Total(); sum != total {
		t.Errorf("per-node nanos sum %d != profile stage total %d", sum, total)
	}
	if out := stats.Describe(); !strings.Contains(out, "time=") {
		t.Errorf("describe missing time annotation:\n%s", out)
	}
}
