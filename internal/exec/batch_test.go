package exec

import (
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// batchSizesUnderTest is the matrix every differential comparison runs
// at: single-row batches (maximum flush pressure), an odd size that
// never divides fan-outs evenly, a mid size, and the default.
var batchSizesUnderTest = []int{1, 3, 64, 1024}

// sortedTuples collects every match of cp as a sorted list of formatted
// tuples, for order-insensitive result-set comparison.
func sortedTuples(t *testing.T, cp *CompiledPlan, cfg RunConfig) []string {
	t.Helper()
	var out []string
	_, err := cp.Run(cfg, func(tu []graph.VertexID) {
		out = append(out, fmt.Sprint(tu))
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// plansUnderTest builds a representative plan set over g: scan-only, a
// 1-stage and 2-stage WCO pipeline, and a hybrid with a hash probe.
func plansUnderTest(t *testing.T, g *graph.Graph) map[string]*plan.Plan {
	t.Helper()
	plans := map[string]*plan.Plan{}
	qEdge := query.MustParse("a->b")
	plans["scan"] = &plan.Plan{Query: qEdge, Root: plan.NewScan(qEdge, qEdge.Edges[0])}
	plans["triangle"] = buildWCO(t, query.Q1(), []int{0, 1, 2})
	plans["diamondX"] = buildWCO(t, query.Q4(), []int{0, 1, 2, 3})
	q8 := query.Q8()
	left := buildWCO(t, q8, []int{0, 1, 2}).Root
	right := buildWCO(t, q8, []int{2, 3, 4}).Root
	hj, err := plan.NewHashJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	plans["hybrid"] = &plan.Plan{Query: q8, Root: hj}
	return plans
}

// TestBatchEngineMatchesOracle compares the vectorized engine against
// the tuple-at-a-time oracle on counts and sorted tuple sets, across
// batch sizes, worker counts and plan shapes.
func TestBatchEngineMatchesOracle(t *testing.T) {
	g := smallRandomGraph(11, 160, 6)
	for name, p := range plansUnderTest(t, g) {
		cp, err := Compile(g, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		oracle := RunConfig{TupleAtATime: true}
		wantN, wantProf, err := cp.Count(oracle)
		if err != nil {
			t.Fatal(err)
		}
		wantTuples := sortedTuples(t, cp, oracle)
		for _, bs := range batchSizesUnderTest {
			for _, workers := range []int{1, 4} {
				cfg := RunConfig{BatchSize: bs, Workers: workers}
				gotN, gotProf, err := cp.Count(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if gotN != wantN {
					t.Errorf("%s bs=%d workers=%d: count %d, oracle %d", name, bs, workers, gotN, wantN)
				}
				if gotProf.Matches != wantProf.Matches {
					t.Errorf("%s bs=%d workers=%d: profile matches %d, oracle %d", name, bs, workers, gotProf.Matches, wantProf.Matches)
				}
				if workers == 1 {
					got := sortedTuples(t, cp, cfg)
					if len(got) != len(wantTuples) {
						t.Fatalf("%s bs=%d: %d tuples, oracle %d", name, bs, len(got), len(wantTuples))
					}
					for i := range got {
						if got[i] != wantTuples[i] {
							t.Fatalf("%s bs=%d: tuple[%d] = %s, oracle %s", name, bs, i, got[i], wantTuples[i])
						}
					}
				}
			}
		}
	}
}

// TestBatchProfileParity checks that the sequential batch engine
// reproduces the oracle's cost counters exactly: i-cost, intermediate
// tuples, cache hits and probe inputs (run-grouping must behave exactly
// like the intersection cache it generalises).
func TestBatchProfileParity(t *testing.T) {
	g := smallRandomGraph(12, 200, 5)
	for name, p := range plansUnderTest(t, g) {
		cp, err := Compile(g, p)
		if err != nil {
			t.Fatal(err)
		}
		_, want, err := cp.Count(RunConfig{TupleAtATime: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, bs := range batchSizesUnderTest {
			_, got, err := cp.Count(RunConfig{BatchSize: bs})
			if err != nil {
				t.Fatal(err)
			}
			if got.ICost != want.ICost || got.Intermediate != want.Intermediate ||
				got.CacheHits != want.CacheHits || got.ProbedTuples != want.ProbedTuples ||
				got.HashedTuples != want.HashedTuples {
				t.Errorf("%s bs=%d: profile %+v, oracle %+v", name, bs, got, want)
			}
		}
	}
}

// TestBatchFastCount checks the batch-granular factorized count against
// full enumeration at every batch size.
func TestBatchFastCount(t *testing.T) {
	g := datagen.Epinions(1)
	p := buildWCO(t, query.Q4(), []int{0, 1, 2, 3})
	cp, err := Compile(g, p)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cp.Count(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range batchSizesUnderTest {
		got, prof, err := cp.Count(RunConfig{BatchSize: bs, FastCount: true})
		if err != nil {
			t.Fatal(err)
		}
		if got != want || prof.Matches != want {
			t.Errorf("bs=%d: fast count %d (profile %d), want %d", bs, got, prof.Matches, want)
		}
	}
}

// TestBatchLimitExactUnderParallelism is the Limit/RunUntil cap
// regression: at every batch size, with several workers, CountUpTo must
// report exactly the cap and RunUntil must never call emit after it
// returned false.
func TestBatchLimitExactUnderParallelism(t *testing.T) {
	g := datagen.Amazon(1)
	p := buildWCO(t, query.Q1(), []int{0, 1, 2})
	cp, err := Compile(g, p)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := cp.Count(RunConfig{TupleAtATime: true})
	if err != nil {
		t.Fatal(err)
	}
	if full < 100 {
		t.Skipf("too few triangles (%d)", full)
	}
	for _, bs := range append([]int{0}, batchSizesUnderTest...) {
		for _, limit := range []int64{1, 7, 100} {
			cfg := RunConfig{BatchSize: bs, Workers: 4}
			n, _, err := cp.CountUpTo(cfg, limit)
			if err != nil {
				t.Fatal(err)
			}
			if n != limit {
				t.Errorf("bs=%d limit=%d: CountUpTo = %d", bs, limit, n)
			}
			var calls, after atomic.Int64
			var stopped atomic.Bool
			_, err = cp.RunUntil(cfg, func([]graph.VertexID) bool {
				if stopped.Load() {
					after.Add(1)
				}
				if calls.Add(1) >= limit {
					stopped.Store(true)
					return false
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if after.Load() != 0 {
				t.Errorf("bs=%d limit=%d: emit called %d times after stop", bs, limit, after.Load())
			}
		}
		// A cap above the total must return the exact count.
		n, _, err := cp.CountUpTo(RunConfig{BatchSize: bs, Workers: 4}, full+1000)
		if err != nil {
			t.Fatal(err)
		}
		if n != full {
			t.Errorf("bs=%d: uncapped CountUpTo = %d, want %d", bs, n, full)
		}
	}
}

// hubStarGraph builds a graph with one hub whose forward adjacency is
// far above hubSplitDegree plus a background of triangles, so parallel
// scans must exercise the hub-splitting morsel path.
func hubStarGraph(t *testing.T) *graph.Graph {
	t.Helper()
	n := hubSplitDegree*2 + 64
	b := graph.NewBuilder(n)
	for i := 1; i < hubSplitDegree*2; i++ {
		b.AddEdge(0, graph.VertexID(i), 0)
	}
	// Triangles through hub neighbours so the pipeline has E/I work.
	for i := 1; i+1 < n; i += 2 {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 0)
		b.AddEdge(0, graph.VertexID(i+1), 0)
	}
	return b.MustBuild()
}

// TestHubMorselSplitParity checks that hub-split parallel scans agree
// with the sequential oracle on a graph dominated by one hub vertex.
func TestHubMorselSplitParity(t *testing.T) {
	g := hubStarGraph(t)
	p := buildWCO(t, query.Q1(), []int{0, 1, 2})
	cp, err := Compile(g, p)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cp.Count(RunConfig{TupleAtATime: true})
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("hub graph has no triangles; test is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		got, _, err := cp.Count(RunConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: hub-split count = %d, want %d", workers, got, want)
		}
	}
	// Limits must stay exact across hub splits too.
	n, _, err := cp.CountUpTo(RunConfig{Workers: 4}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if n != 17 {
		t.Errorf("hub-split CountUpTo = %d, want 17", n)
	}
}

// steadyWorker compiles p over g and returns a warmed-up batch worker
// whose buffers have all reached steady-state capacity.
func steadyWorker(tb testing.TB, g *graph.Graph, p *plan.Plan) (*worker, int) {
	tb.Helper()
	cp, err := Compile(g, p)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := RunConfig{FastCount: true}
	rc := &runContext{cp: cp, cfg: cfg, batch: cp.EffectiveBatchSize(cfg)}
	var stopped atomic.Bool
	w := newWorker(rc, cp.pipes[len(cp.pipes)-1], true, nil, &stopped, nil)
	n := g.NumVertices()
	w.runBatchRange(0, n)
	w.flushBatches()
	return w, n
}

// TestZeroAllocs is the dynamic backstop of the //gf:noalloc static
// contract: every steady-state hot loop is table-tested with
// AllocsPerRun after warm-up. Where gfvet's noalloc analyzer stops at
// interface calls and func values, these guards measure straight through
// them. CI runs the whole suite with one `go test -run 'ZeroAllocs'`
// step across packages.
func TestZeroAllocs(t *testing.T) {
	g := datagen.Epinions(1)
	cases := []struct {
		name  string
		setup func(t *testing.T) func()
	}{
		{
			// The batch E/I pipeline: the scan fills reused columns, the
			// intersections reuse stage scratch, no per-tuple closures.
			name: "batchEI",
			setup: func(t *testing.T) func() {
				w, n := steadyWorker(t, g, buildWCO(t, query.Q4(), []int{0, 1, 2, 3}))
				return func() {
					w.runBatchRange(0, n)
					w.flushBatches()
				}
			},
		},
		{
			// The factorized count tail: leaf sets land in reused stage
			// scratch and products are pure arithmetic.
			name: "factorizedCount",
			setup: func(t *testing.T) func() {
				w, n := steadyFactorizedWorker(t, g)
				return func() {
					w.runBatchRange(0, n)
					w.flushBatches()
				}
			},
		},
		{
			// The oracle scan: per-scan-vertex Neighbors lookups go through
			// the reusable per-worker reader.
			name: "oracleScan",
			setup: func(t *testing.T) func() {
				cp, err := Compile(g, buildWCO(t, query.Q1(), []int{0, 1, 2}))
				if err != nil {
					t.Fatal(err)
				}
				rc := &runContext{cp: cp, cfg: RunConfig{TupleAtATime: true, FastCount: true}}
				var stopped atomic.Bool
				w := newWorker(rc, cp.pipes[0], true, nil, &stopped, nil)
				n := g.NumVertices()
				w.runRange(0, n)
				return func() { w.runRange(0, n) }
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := tc.setup(t)
			if allocs := testing.AllocsPerRun(3, body); allocs != 0 {
				t.Errorf("steady-state %s allocates %.1f times per scan, want 0", tc.name, allocs)
			}
		})
	}
}

// BenchmarkBatchEISteadyState is the CI-guarded steady-state benchmark:
// the full scan→E/I→E/I pipeline of the diamond-X over Epinions, batch
// engine, factorized count. CI asserts 0 allocs/op.
func BenchmarkBatchEISteadyState(b *testing.B) {
	g := datagen.Epinions(1)
	w, n := steadyWorker(b, g, buildWCO(b, query.Q4(), []int{0, 1, 2, 3}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.runBatchRange(0, n)
		w.flushBatches()
	}
}

// BenchmarkDeepPipelineBatch/Oracle compare the two engines end-to-end
// on a 4-stage pipeline (6-vertex chained triangles) over a skewed web
// graph — the shape the vectorized engine targets.
func deepPipelinePlan(tb testing.TB) (*graph.Graph, *plan.Plan) {
	// A triangle core followed by fan-out expansions of the core vertex: a
	// 4-stage pipeline whose tail stages extend long sorted prefix runs —
	// the deep-pipeline shape whose per-tuple dispatch overhead the
	// vectorized engine amortizes into column sweeps.
	g := datagen.Web(datagen.WebConfig{N: 2500, OutDeg: 8, Copy: 0.6, Seed: 5})
	q := query.MustParse("a->b, a->c, b->c, a->d, a->e, a->f")
	return g, buildWCO(tb, q, []int{0, 1, 2, 3, 4, 5})
}

func BenchmarkDeepPipelineBatch(b *testing.B) {
	g, p := deepPipelinePlan(b)
	cp, err := Compile(g, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cp.Count(RunConfig{FastCount: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeepPipelineOracle(b *testing.B) {
	g, p := deepPipelinePlan(b)
	cp, err := Compile(g, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cp.Count(RunConfig{FastCount: true, TupleAtATime: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// skewedParallelPlan is the skew-torture case of the morsel scheduler: a
// web graph with one dominant hub region and a deep pipeline, run with 4
// workers. Under PR-4's fixed n/(workers*8) chunking the chunk owning
// the hubs becomes the critical path; morsel dequeue plus hub splitting
// spreads the subtree.
func skewedParallelPlan(tb testing.TB) (*graph.Graph, *plan.Plan) {
	g := datagen.Web(datagen.WebConfig{N: 8000, OutDeg: 10, Copy: 0.85, Seed: 9})
	q := query.MustParse("a->b, a->c, b->c, c->d, d->e, e->f")
	return g, buildWCO(tb, q, []int{0, 1, 2, 3, 4, 5})
}

func BenchmarkSkewParallelBatch(b *testing.B) {
	g, p := skewedParallelPlan(b)
	cp, err := Compile(g, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cp.Count(RunConfig{FastCount: true, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkewParallelOracle(b *testing.B) {
	g, p := skewedParallelPlan(b)
	cp, err := Compile(g, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cp.Count(RunConfig{FastCount: true, Workers: 4, TupleAtATime: true}); err != nil {
			b.Fatal(err)
		}
	}
}
