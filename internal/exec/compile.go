package exec

import (
	"fmt"
	"sync"

	"graphflow/internal/graph"
	"graphflow/internal/plan"
)

// CompiledPlan is the immutable, executable form of a physical plan: the
// plan tree decomposed into flattened pipelines with all static layout
// work (stage widths, probe slot maps, hash-table key slots) done once.
// A CompiledPlan holds no mutable execution state — tuples, profiles,
// intersection caches and hash tables live in the per-run context that
// each Run/Count call materialises (per-pipeline worker scratch is
// recycled through a sync.Pool, which is itself concurrency-safe) — so
// one CompiledPlan may be executed by any number of goroutines
// simultaneously.
type CompiledPlan struct {
	graph graph.View
	root  plan.Node
	// pipes lists every pipeline in execution order: hash-join build
	// pipelines first (each before any pipeline that probes its table),
	// the driver pipeline last.
	pipes []*compiledPipeline
	// estCard is the optimizer's cardinality estimate carried over from
	// the plan (0 when compiled from a bare node): the input to the
	// plan-adaptive batch-size rule.
	estCard float64
}

// compiledPipeline is one flattened probe path: a SCAN plus the chain of
// operators above it, ending either at the plan root (the driver) or at
// the build side of a hash join.
type compiledPipeline struct {
	node   plan.Node // subplan node whose probe path this pipeline drives
	scan   *plan.Scan
	stages []stageSpec
	// feeds, when non-nil, is the hash join whose build side this
	// pipeline materialises; keySlots are the join-vertex slots in the
	// build tuple layout.
	feeds    *plan.HashJoin
	keySlots []int
	outWidth int
	// starSuffix is the index into stages where the pipeline's maximal
	// star-shaped suffix begins (plan.StarSuffixLen mapped onto the
	// flattened chain); len(stages) when there is none. The driver
	// pipeline's suffix, when present, is what RunConfig.Factorized
	// compiles into a factorizedTail stage.
	starSuffix int
	// pool recycles fully-built batch-engine workers (stage states, column
	// batches, intersection caches) across runs of this pipeline, so the
	// steady state of a PreparedQuery re-run allocates almost nothing.
	pool sync.Pool
}

// stageSpec is the static, shareable description of one operator above a
// scan. newState mints the per-run mutable oracle counterpart,
// newBatchState the vectorized one (idx is the stage's position in the
// chain, inWidth its input tuple width).
type stageSpec interface {
	newState(rc *runContext) stageState
	newBatchState(rc *runContext, idx, inWidth int) batchStage
	planNode() plan.Node
}

// extendSpec is the compiled form of an EXTEND/INTERSECT operator.
type extendSpec struct {
	op *plan.Extend
}

func (s *extendSpec) planNode() plan.Node { return s.op }

func (s *extendSpec) newState(rc *runContext) stageState {
	return &extendState{spec: s, useCache: !rc.cfg.DisableCache}
}

func (s *extendSpec) newBatchState(rc *runContext, idx, inWidth int) batchStage {
	return &batchExtendState{
		es:  extendState{spec: s, useCache: !rc.cfg.DisableCache},
		idx: idx,
		out: newTupleBatch(inWidth+1, rc.batch),
	}
}

// probeSpec is the compiled form of a HASH-JOIN probe: the slot maps that
// the old executor derived lazily per worker are computed once here.
type probeSpec struct {
	op         *plan.HashJoin
	probeSlots []int // slots in the probe tuple carrying the join vertices
	appendIdx  []int // slots in the build tuple to append to the output
}

func (s *probeSpec) planNode() plan.Node { return s.op }

func (s *probeSpec) newState(rc *runContext) stageState {
	return &probeState{spec: s, table: rc.tables[s.op]}
}

func (s *probeSpec) newBatchState(rc *runContext, idx, inWidth int) batchStage {
	return &batchProbeState{
		ps:  probeState{spec: s, table: rc.tables[s.op]},
		idx: idx,
		out: newTupleBatch(inWidth+len(s.appendIdx), rc.batch),
	}
}

// Compile validates p and lowers it into a CompiledPlan over g — any
// graph View: the immutable CSR store or a live snapshot of one epoch.
func Compile(g graph.View, p *plan.Plan) (*CompiledPlan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp, err := CompileNode(g, p.Root)
	if err != nil {
		return nil, err
	}
	cp.estCard = p.EstimatedCardinality
	return cp, nil
}

// CompileNode lowers an arbitrary subplan node (which need not cover the
// whole query). The adaptive evaluator compiles partial plans this way.
func CompileNode(g graph.View, root plan.Node) (*CompiledPlan, error) {
	cp := &CompiledPlan{graph: g, root: root}
	if err := cp.addPipeline(root, nil); err != nil {
		return nil, err
	}
	return cp, nil
}

// Root returns the plan node this CompiledPlan executes.
func (cp *CompiledPlan) Root() plan.Node { return cp.root }

// driver returns the pipeline whose outputs are final matches (always
// compiled last).
func (cp *CompiledPlan) driver() *compiledPipeline { return cp.pipes[len(cp.pipes)-1] }

// StarSuffixLen reports the length of the driver pipeline's star-shaped
// suffix: the number of trailing E/I stages RunConfig.Factorized
// evaluates as a factorizedTail (0 = factorization cannot apply to this
// plan).
func (cp *CompiledPlan) StarSuffixLen() int {
	d := cp.driver()
	return len(d.stages) - d.starSuffix
}

// addPipeline flattens the probe path of n into a pipeline, recursively
// compiling the build side of every hash join on the path first so that
// cp.pipes stays in valid execution order.
func (cp *CompiledPlan) addPipeline(n plan.Node, feeds *plan.HashJoin) error {
	scan, chain, err := flattenPipeline(n)
	if err != nil {
		return err
	}
	pipe := &compiledPipeline{node: n, scan: scan, feeds: feeds}
	width := 2
	for _, cn := range chain {
		switch op := cn.(type) {
		case *plan.Extend:
			pipe.stages = append(pipe.stages, &extendSpec{op: op})
			width++
		case *plan.HashJoin:
			if err := cp.addPipeline(op.Build, op); err != nil {
				return err
			}
			spec := &probeSpec{op: op}
			buildOut := op.Build.Out()
			slotOf := make(map[int]int, len(op.Probe.Out()))
			for slot, v := range op.Probe.Out() {
				slotOf[v] = slot
			}
			for _, v := range op.JoinVertices {
				spec.probeSlots = append(spec.probeSlots, slotOf[v])
			}
			joinSet := make(map[int]bool, len(op.JoinVertices))
			for _, v := range op.JoinVertices {
				joinSet[v] = true
			}
			for slot, v := range buildOut {
				if !joinSet[v] {
					spec.appendIdx = append(spec.appendIdx, slot)
				}
			}
			pipe.stages = append(pipe.stages, spec)
			width += len(buildOut) - len(op.JoinVertices)
		}
	}
	pipe.outWidth = width
	// Trailing E/I operators of the probe path are trailing stages of the
	// flattened chain, so the plan-level star suffix maps directly onto a
	// stage index.
	pipe.starSuffix = len(pipe.stages) - plan.StarSuffixLen(n)
	if feeds != nil {
		buildOut := n.Out()
		slotOf := make(map[int]int, len(buildOut))
		for slot, v := range buildOut {
			slotOf[v] = slot
		}
		for _, v := range feeds.JoinVertices {
			pipe.keySlots = append(pipe.keySlots, slotOf[v])
		}
	}
	cp.pipes = append(cp.pipes, pipe)
	return nil
}

// flattenPipeline decomposes the probe path of n into its driving SCAN and
// the chain of operators applied above it (bottom-up order).
func flattenPipeline(n plan.Node) (*plan.Scan, []plan.Node, error) {
	var chain []plan.Node
	cur := n
	for {
		switch op := cur.(type) {
		case *plan.Scan:
			// chain currently holds top..bottom; reverse to bottom-up.
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			return op, chain, nil
		case *plan.Extend:
			chain = append(chain, op)
			cur = op.Child
		case *plan.HashJoin:
			chain = append(chain, op)
			cur = op.Probe
		default:
			return nil, nil, fmt.Errorf("exec: unknown node %T", cur)
		}
	}
}
