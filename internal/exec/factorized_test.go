package exec

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// starPlans builds plans whose star-suffix lengths are known by
// construction, keyed by name with the expected suffix length.
func starPlans(t testing.TB) map[string]struct {
	p      *plan.Plan
	suffix int
} {
	t.Helper()
	out := map[string]struct {
		p      *plan.Plan
		suffix int
	}{}
	// Triangle: the closing vertex anchors on both scan vertices — a
	// 1-leaf star off the scan prefix.
	out["triangle"] = struct {
		p      *plan.Plan
		suffix int
	}{buildWCO(t, query.Q1(), []int{0, 1, 2}), 1}
	// 3-leaf star: both post-scan extends hang off the scan source.
	star := query.MustParse("a->b, a->c, a->d")
	out["tri-star"] = struct {
		p      *plan.Plan
		suffix int
	}{buildWCO(t, star, []int{0, 1, 2, 3}), 2}
	// Path: each extend anchors on the previous target, so only the last
	// extend is a leaf.
	path := query.MustParse("a->b, b->c, c->d")
	out["path"] = struct {
		p      *plan.Plan
		suffix int
	}{buildWCO(t, path, []int{0, 1, 2, 3}), 1}
	// Triangle with a two-leaf star on its closing vertex: the trailing
	// leaves factorize, the triangle-closing extend does not — both
	// leaves anchor on its target, so the suffix stops there.
	tristar := query.MustParse("a->b, b->c, a->c, c->d, c->e")
	out["triangle-star"] = struct {
		p      *plan.Plan
		suffix int
	}{buildWCO(t, tristar, []int{0, 1, 2, 3, 4}), 2}
	// Diamond-X: a4 anchors on a2 and a3, a3 on a1 and a2 — every extend
	// target is read downstream except the last.
	out["diamondX"] = struct {
		p      *plan.Plan
		suffix int
	}{buildWCO(t, query.Q4(), []int{0, 1, 2, 3}), 1}
	return out
}

// TestStarSuffixLen pins the detector to the suffix lengths the plan
// shapes above guarantee, at both the plan and compiled-pipeline layers.
func TestStarSuffixLen(t *testing.T) {
	g := smallRandomGraph(3, 60, 4)
	for name, tc := range starPlans(t) {
		if got := plan.StarSuffixLen(tc.p.Root); got != tc.suffix {
			t.Errorf("%s: plan.StarSuffixLen = %d, want %d", name, got, tc.suffix)
		}
		cp, err := Compile(g, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if got := cp.StarSuffixLen(); got != tc.suffix {
			t.Errorf("%s: CompiledPlan.StarSuffixLen = %d, want %d", name, got, tc.suffix)
		}
	}
	// A scan-only plan has no extends to factorize.
	qEdge := query.MustParse("a->b")
	if got := plan.StarSuffixLen(plan.NewScan(qEdge, qEdge.Edges[0])); got != 0 {
		t.Errorf("scan-only StarSuffixLen = %d, want 0", got)
	}
}

// TestFactorizedCountMatchesOracle compares factorized counts against
// the tuple-at-a-time oracle across plan shapes and worker counts, and
// requires the factorized counters to attest that the tier actually ran.
func TestFactorizedCountMatchesOracle(t *testing.T) {
	g := smallRandomGraph(17, 180, 6)
	for name, tc := range starPlans(t) {
		cp, err := Compile(g, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := cp.Count(RunConfig{TupleAtATime: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			got, prof, err := cp.Count(RunConfig{Factorized: true, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s workers=%d: factorized count %d, oracle %d", name, workers, got, want)
			}
			if prof.FactorizedPrefixes == 0 {
				t.Errorf("%s workers=%d: FactorizedPrefixes = 0; tier did not engage", name, workers)
			}
			if prof.FactorizedAvoided != want {
				t.Errorf("%s workers=%d: FactorizedAvoided = %d, want all %d matches counted by product",
					name, workers, prof.FactorizedAvoided, want)
			}
		}
	}
}

// TestFactorizedMatchUnfoldsIdenticalTuples requires the lazy unfold to
// deliver exactly the tuples of plain batch enumeration, in the same
// order (sequential run): the odometer walks outer leaves slow-to-fast
// with the last leaf innermost, matching nested-loop extension order.
func TestFactorizedMatchUnfoldsIdenticalTuples(t *testing.T) {
	g := smallRandomGraph(23, 140, 5)
	for name, tc := range starPlans(t) {
		cp, err := Compile(g, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		collect := func(cfg RunConfig) []string {
			var out []string
			if _, err := cp.Run(cfg, func(tu []graph.VertexID) {
				out = append(out, fmt.Sprint(tu))
			}); err != nil {
				t.Fatal(err)
			}
			return out
		}
		for _, bs := range []int{0, 1, 3, 64} {
			want := collect(RunConfig{BatchSize: bs})
			got := collect(RunConfig{BatchSize: bs, Factorized: true})
			if len(got) != len(want) {
				t.Fatalf("%s bs=%d: %d tuples, plain batch %d", name, bs, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s bs=%d: tuple[%d] = %s, plain batch %s (order must match)", name, bs, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFactorizedLimitExactUnderParallelism checks the shared-budget
// product claiming: with several workers racing, CountUpTo under the
// factorized tier must report exactly min(limit, total) — limits landing
// mid-product are truncated to the remainder, never overshot.
func TestFactorizedLimitExactUnderParallelism(t *testing.T) {
	g := datagen.Amazon(1)
	star := query.MustParse("a->b, a->c, a->d")
	cp, err := Compile(g, buildWCO(t, star, []int{0, 1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := cp.Count(RunConfig{TupleAtATime: true})
	if err != nil {
		t.Fatal(err)
	}
	if full < 1000 {
		t.Skipf("too few star matches (%d)", full)
	}
	for _, workers := range []int{1, 4, 8} {
		for _, limit := range []int64{1, 2, 7, 100, full - 1, full, full + 1000} {
			want := limit
			if want > full {
				want = full
			}
			n, prof, err := cp.CountUpToCtx(context.Background(),
				RunConfig{Factorized: true, Workers: workers}, limit)
			if err != nil {
				t.Fatal(err)
			}
			if n != want {
				t.Errorf("workers=%d limit=%d: factorized CountUpTo = %d, want exactly %d", workers, limit, n, want)
			}
			if limit <= full && prof.FactorizedPrefixes == 0 {
				t.Errorf("workers=%d limit=%d: budget path did not engage the factorized tier", workers, limit)
			}
		}
	}
}

// TestEffectiveBatchSize pins the plan-adaptive batch-size rule: an
// explicit BatchSize is authoritative, depth scales the default, and
// tiny estimated cardinalities halve the capacity down to the floor.
func TestEffectiveBatchSize(t *testing.T) {
	if got := AdaptiveBatchSize(1); got != DefaultBatchSize/4 {
		t.Errorf("AdaptiveBatchSize(1) = %d, want %d", got, DefaultBatchSize/4)
	}
	if got := AdaptiveBatchSize(2); got != DefaultBatchSize/2 {
		t.Errorf("AdaptiveBatchSize(2) = %d, want %d", got, DefaultBatchSize/2)
	}
	if got := AdaptiveBatchSize(5); got != DefaultBatchSize {
		t.Errorf("AdaptiveBatchSize(5) = %d, want %d", got, DefaultBatchSize)
	}

	g := smallRandomGraph(7, 80, 4)
	tri := Must(t, g, buildWCO(t, query.Q1(), []int{0, 1, 2}))
	// Explicit sizes win, including the clamp of sub-1 values.
	if got := tri.EffectiveBatchSize(RunConfig{BatchSize: 37}); got != 37 {
		t.Errorf("explicit BatchSize: got %d, want 37", got)
	}
	// Triangle pipelines have one post-scan stage: depth-1 default.
	if got := tri.EffectiveBatchSize(RunConfig{}); got > DefaultBatchSize/4 {
		t.Errorf("triangle adaptive batch = %d, want <= %d", got, DefaultBatchSize/4)
	}
	deep := Must(t, g, buildWCO(t, query.MustParse("a->b, b->c, c->d, d->e, e->f"), []int{0, 1, 2, 3, 4, 5}))
	if got := deep.EffectiveBatchSize(RunConfig{}); got > DefaultBatchSize || got < minAdaptiveBatchSize {
		t.Errorf("deep-pipeline adaptive batch = %d, want in [%d, %d]", got, minAdaptiveBatchSize, DefaultBatchSize)
	}
	// A cardinality estimate far below the depth default halves the size
	// down to (but not past) the floor.
	tiny := *tri
	tiny.estCard = 1
	if got := tiny.EffectiveBatchSize(RunConfig{}); got != minAdaptiveBatchSize {
		t.Errorf("tiny-cardinality adaptive batch = %d, want floor %d", got, minAdaptiveBatchSize)
	}
	tiny.estCard = 0 // unknown estimate: no clamp
	if got := tiny.EffectiveBatchSize(RunConfig{}); got != DefaultBatchSize/4 {
		t.Errorf("unknown-cardinality adaptive batch = %d, want %d", got, DefaultBatchSize/4)
	}
}

// Must compiles p over g, failing the test on error.
func Must(t testing.TB, g *graph.Graph, p *plan.Plan) *CompiledPlan {
	t.Helper()
	cp, err := Compile(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestWorkerPoolReuseAcrossRuns checks the worker-pool satellite: after
// a warm-up run, repeated counts on the same CompiledPlan reuse pooled
// worker scratch instead of rebuilding stage states and column batches,
// keeping per-run allocations to a small constant independent of the
// graph and pipeline depth.
func TestWorkerPoolReuseAcrossRuns(t *testing.T) {
	g := datagen.Epinions(1)
	for _, cfg := range []RunConfig{
		{FastCount: true},
		{Factorized: true},
	} {
		cp := Must(t, g, buildWCO(t, query.Q4(), []int{0, 1, 2, 3}))
		if _, _, err := cp.Count(cfg); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, _, err := cp.Count(cfg); err != nil {
				t.Fatal(err)
			}
		})
		// The per-run envelope (runContext, stopped flag, profile
		// bookkeeping) allocates; the worker's column batches and stage
		// scratch must not. The bound is loose enough for harness noise
		// but far below one allocation per stage buffer.
		if allocs > 25 {
			t.Errorf("cfg=%+v: steady-state Count allocates %.0f times per run, want <= 25", cfg, allocs)
		}
	}
}

// steadyFactorizedWorker compiles a star-suffix plan over g and returns
// a warmed-up batch worker whose factorized tail has reached steady
// state.
func steadyFactorizedWorker(tb testing.TB, g *graph.Graph) (*worker, int) {
	tb.Helper()
	// All three extends anchor only on the scanned (a, b) pair — c reads
	// both, d and e read a — so the whole post-scan chain factorizes.
	star := query.MustParse("a->b, a->c, b->c, a->d, a->e")
	cp := Must(tb, g, buildWCO(tb, star, []int{0, 1, 2, 3, 4}))
	if cp.StarSuffixLen() != 3 {
		tb.Fatalf("star suffix = %d, want 3", cp.StarSuffixLen())
	}
	cfg := RunConfig{Factorized: true}
	rc := &runContext{cp: cp, cfg: cfg, batch: cp.EffectiveBatchSize(cfg)}
	var stopped atomic.Bool
	w := newWorker(rc, cp.pipes[len(cp.pipes)-1], true, nil, &stopped, nil)
	n := g.NumVertices()
	w.runBatchRange(0, n)
	w.flushBatches()
	return w, n
}

// BenchmarkFactorizedCountSteadyState is the CI-guarded steady-state
// benchmark of the factorized tier: a triangle with a 2-leaf star over
// Epinions, counted by cross-product arithmetic. CI asserts 0 allocs/op.
func BenchmarkFactorizedCountSteadyState(b *testing.B) {
	g := datagen.Epinions(1)
	w, n := steadyFactorizedWorker(b, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.runBatchRange(0, n)
		w.flushBatches()
	}
}
