package exec

import (
	"strings"
	"testing"

	"graphflow/internal/datagen"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

func TestAnalyzeWCOPlan(t *testing.T) {
	g := datagen.Amazon(1)
	q := query.Q4()
	p := buildWCO(t, q, []int{0, 1, 2, 3})
	r := &Runner{Graph: g}
	stats, prof, err := r.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	// Tree mirrors the plan: extend -> extend -> scan.
	if len(stats.Children) != 1 || len(stats.Children[0].Children) != 1 {
		t.Fatalf("stats tree shape wrong:\n%s", stats.Describe())
	}
	scan := stats.Children[0].Children[0]
	if !strings.Contains(scan.Operator, "SCAN") {
		t.Errorf("leaf should be SCAN: %s", scan.Operator)
	}
	if scan.OutTuples != int64(g.NumEdges()) {
		t.Errorf("scan out = %d, want %d", scan.OutTuples, g.NumEdges())
	}
	// Root's output equals match count; per-op i-cost sums to the profile.
	if stats.OutTuples != prof.Matches {
		t.Errorf("root out = %d, matches = %d", stats.OutTuples, prof.Matches)
	}
	sum := int64(0)
	var rec func(s *OpStats)
	rec = func(s *OpStats) {
		sum += s.ICost
		for _, c := range s.Children {
			rec(c)
		}
	}
	rec(stats)
	if sum != prof.ICost {
		t.Errorf("per-op i-cost sum = %d, profile = %d", sum, prof.ICost)
	}
}

func TestAnalyzeHybridPlan(t *testing.T) {
	g := datagen.Amazon(1)
	q := query.Q8()
	left := buildWCO(t, q, []int{0, 1, 2}).Root
	right := buildWCO(t, q, []int{2, 3, 4}).Root
	hj, err := plan.NewHashJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	p := &plan.Plan{Query: q, Root: hj}
	stats, prof, err := (&Runner{Graph: g}).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Probes == 0 || stats.BuildRows == 0 {
		t.Errorf("join stats missing: %+v", stats)
	}
	if stats.BuildRows != prof.HashedTuples {
		t.Errorf("build rows = %d, hashed = %d", stats.BuildRows, prof.HashedTuples)
	}
	out := stats.Describe()
	if !strings.Contains(out, "HASHJOIN") || !strings.Contains(out, "probes=") {
		t.Errorf("describe output:\n%s", out)
	}
	// Both scans attributed.
	if len(stats.Children) != 2 {
		t.Fatalf("join should have 2 children")
	}
}

func TestAnalyzeMatchesPlainCount(t *testing.T) {
	g := datagen.Epinions(1)
	q := query.Q1()
	p := buildWCO(t, q, []int{0, 1, 2})
	want, _, err := (&Runner{Graph: g}).Count(p)
	if err != nil {
		t.Fatal(err)
	}
	stats, prof, err := (&Runner{Graph: g}).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Matches != want || stats.OutTuples != want {
		t.Errorf("analyze matches = %d/%d, want %d", prof.Matches, stats.OutTuples, want)
	}
}
