package exec

import (
	"encoding/binary"

	"graphflow/internal/graph"
)

// hashTable stores the materialised build side of a HASH-JOIN, keyed by the
// join vertices. Keys of up to two vertices are packed into a uint64 (the
// common case: the paper's joins share one or two query vertices); wider
// keys fall back to byte-string keys.
type hashTable struct {
	keySlots []int // slots in the build tuple layout carrying join vertices
	rowWidth int
	count    int

	packed map[uint64][][]graph.VertexID
	wide   map[string][][]graph.VertexID
}

// newHashTable builds an empty table keyed by keySlots (join-vertex slots
// in the build tuple layout, precomputed at plan compile time).
func newHashTable(keySlots []int, rowWidth int) *hashTable {
	ht := &hashTable{keySlots: keySlots, rowWidth: rowWidth}
	if len(ht.keySlots) <= 2 {
		ht.packed = make(map[uint64][][]graph.VertexID)
	} else {
		ht.wide = make(map[string][][]graph.VertexID)
	}
	return ht
}

func (h *hashTable) len() int { return h.count }

func (h *hashTable) packKey(tuple []graph.VertexID, slots []int) uint64 {
	k := uint64(tuple[slots[0]])
	if len(slots) == 2 {
		k = k<<32 | uint64(tuple[slots[1]])
	}
	return k
}

func (h *hashTable) wideKey(tuple []graph.VertexID, slots []int) string {
	buf := make([]byte, 4*len(slots))
	for i, s := range slots {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(tuple[s]))
	}
	return string(buf)
}

// insert copies the build tuple into the table.
func (h *hashTable) insert(tuple []graph.VertexID) {
	row := append([]graph.VertexID(nil), tuple...)
	h.count++
	if h.packed != nil {
		k := h.packKey(tuple, h.keySlots)
		h.packed[k] = append(h.packed[k], row)
		return
	}
	k := h.wideKey(tuple, h.keySlots)
	h.wide[k] = append(h.wide[k], row)
}

// lookup returns the build rows whose join vertices equal the probe
// tuple's values at probeSlots. The returned rows alias table storage.
func (h *hashTable) lookup(probe []graph.VertexID, probeSlots []int) [][]graph.VertexID {
	if h.packed != nil {
		return h.packed[h.packKey(probe, probeSlots)]
	}
	return h.wide[h.wideKey(probe, probeSlots)]
}
