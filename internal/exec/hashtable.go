package exec

import (
	"encoding/binary"

	"graphflow/internal/graph"
)

// hashTable stores the materialised build side of a HASH-JOIN, keyed by the
// join vertices. Keys of up to two vertices are packed into a uint64 (the
// common case: the paper's joins share one or two query vertices); wider
// keys fall back to byte-string keys.
type hashTable struct {
	keySlots []int // slots in the build tuple layout carrying join vertices
	rowWidth int
	count    int

	packed map[uint64][][]graph.VertexID
	wide   map[string][][]graph.VertexID
}

// newHashTable builds an empty table keyed by keySlots (join-vertex slots
// in the build tuple layout, precomputed at plan compile time).
func newHashTable(keySlots []int, rowWidth int) *hashTable {
	ht := &hashTable{keySlots: keySlots, rowWidth: rowWidth}
	if len(ht.keySlots) <= 2 {
		ht.packed = make(map[uint64][][]graph.VertexID)
	} else {
		ht.wide = make(map[string][][]graph.VertexID)
	}
	return ht
}

func (h *hashTable) len() int { return h.count }

// packedKey is the single encoding of a one- or two-vertex join key as a
// uint64; every packed-map reader and writer goes through it.
func packedKey(v0, v1 graph.VertexID, hasSecond bool) uint64 {
	k := uint64(v0)
	if hasSecond {
		k = k<<32 | uint64(v1)
	}
	return k
}

func (h *hashTable) packKey(tuple []graph.VertexID, slots []int) uint64 {
	if len(slots) == 2 {
		return packedKey(tuple[slots[0]], tuple[slots[1]], true)
	}
	return packedKey(tuple[slots[0]], 0, false)
}

// wideKey is the single encoding of a >2-vertex join key as a byte
// string. nil slots means tuple already is the gathered key (the
// vectorized probe path).
//
//gf:allowalloc wide (>2 join vertices) keys are the cold fallback; the packed uint64 layout covers the paper's plans
func (h *hashTable) wideKey(tuple []graph.VertexID, slots []int) string {
	n := len(slots)
	if slots == nil {
		n = len(tuple)
	}
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		v := tuple[i]
		if slots != nil {
			v = tuple[slots[i]]
		}
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

// insert copies the build tuple into the table.
func (h *hashTable) insert(tuple []graph.VertexID) {
	row := append([]graph.VertexID(nil), tuple...)
	h.count++
	if h.packed != nil {
		k := h.packKey(tuple, h.keySlots)
		h.packed[k] = append(h.packed[k], row)
		return
	}
	k := h.wideKey(tuple, h.keySlots)
	h.wide[k] = append(h.wide[k], row)
}

// lookup returns the build rows whose join vertices equal the probe
// tuple's values at probeSlots. The returned rows alias table storage.
func (h *hashTable) lookup(probe []graph.VertexID, probeSlots []int) [][]graph.VertexID {
	if h.packed != nil {
		return h.packed[h.packKey(probe, probeSlots)]
	}
	return h.wide[h.wideKey(probe, probeSlots)]
}

// lookupKey is lookup over an already-gathered key (one value per join
// vertex, in key-slot order) — the entry point of the vectorized probe,
// which gathers each distinct key run once per batch. Allocation-free on
// the packed (≤2 join vertices) layout.
func (h *hashTable) lookupKey(key []graph.VertexID) [][]graph.VertexID {
	if h.packed != nil {
		if len(key) == 2 {
			return h.packed[packedKey(key[0], key[1], true)]
		}
		return h.packed[packedKey(key[0], 0, false)]
	}
	return h.wide[h.wideKey(key, nil)]
}
