package exec

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"graphflow/internal/faultinject"
	"graphflow/internal/graph"
	"graphflow/internal/plan"
	"graphflow/internal/query"
	"graphflow/internal/resource"
)

// assertGoroutinesReturn fails if the live goroutine count has not
// returned to the pre-run baseline within a grace period — the
// executor must not leak workers on abort, panic or cancellation.
func assertGoroutinesReturn(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// compiledHashJoin compiles Q8's two-triangle hybrid plan over a graph
// big enough that the build side does real work.
func compiledHashJoin(t *testing.T) (*CompiledPlan, int64) {
	t.Helper()
	g := smallRandomGraph(4, 800, 20)
	q := query.Q8()
	left := buildWCO(t, q, []int{0, 1, 2}).Root
	right := buildWCO(t, q, []int{2, 3, 4}).Root
	hj, err := plan.NewHashJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(g, &plan.Plan{Query: q, Root: hj})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cp.Count(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return cp, want
}

// TestBudgetAbortReturnsErrBudgetExceeded pins the per-query budget
// contract: a run whose metered allocations exceed the budget aborts
// with a BudgetError wrapping ErrBudgetExceeded, and the same plan
// (same pooled workers) still counts exactly afterwards.
func TestBudgetAbortReturnsErrBudgetExceeded(t *testing.T) {
	cp, _, total := compiledTriangle(t)
	for _, workers := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		b := resource.NewBudget(512, nil) // cannot cover even one batch checkout
		_, _, err := cp.Count(RunConfig{Workers: workers, MemBudget: b})
		if !errors.Is(err, resource.ErrBudgetExceeded) {
			t.Fatalf("workers=%d: err = %v, want ErrBudgetExceeded", workers, err)
		}
		var be *resource.BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("workers=%d: err %v does not unwrap to *BudgetError", workers, err)
		}
		if be.Limit != 512 || be.Global {
			t.Errorf("workers=%d: BudgetError = %+v, want per-query limit 512", workers, be)
		}
		b.Close()
		assertGoroutinesReturn(t, baseline)

		n, _, err := cp.Count(RunConfig{Workers: workers})
		if err != nil || n != total {
			t.Fatalf("workers=%d: post-abort count = %d, %v; want %d, nil", workers, n, err, total)
		}
	}
}

// TestGovernorExhaustionFlagsGlobal pins the process-wide ceiling: a
// query with no per-query limit still aborts when the shared governor
// pool runs dry, and the error is marked Global. Closing the budget
// returns the reservation so later queries run.
func TestGovernorExhaustionFlagsGlobal(t *testing.T) {
	cp, _, total := compiledTriangle(t)
	gov := resource.NewGovernor(1024)
	b := resource.NewBudget(0, gov)
	_, _, err := cp.Count(RunConfig{MemBudget: b})
	var be *resource.BudgetError
	if !errors.As(err, &be) || !be.Global {
		t.Fatalf("err = %v, want a Global BudgetError", err)
	}
	b.Close()
	if gov.InUse() != 0 {
		t.Fatalf("governor holds %d bytes after Close", gov.InUse())
	}
	b2 := resource.NewBudget(0, resource.NewGovernor(1<<30))
	defer b2.Close()
	n, _, err := cp.Count(RunConfig{MemBudget: b2})
	if err != nil || n != total {
		t.Fatalf("generous governor: count = %d, %v; want %d, nil", n, err, total)
	}
}

// TestBudgetDoesNotDisturbCountBudget pins the independence of the two
// budgets: CountUpTo's tuple budget still caps exactly while a generous
// memory budget meters the same run.
func TestBudgetDoesNotDisturbCountBudget(t *testing.T) {
	cp, _, total := compiledTriangle(t)
	limit := total / 2
	if limit < 1 {
		t.Skip("triangle fixture too small")
	}
	b := resource.NewBudget(1<<30, nil)
	defer b.Close()
	n, _, err := cp.CountUpTo(RunConfig{MemBudget: b}, limit)
	if err != nil || n != limit {
		t.Fatalf("CountUpTo = %d, %v; want %d, nil", n, err, limit)
	}
}

// TestInjectedPanicIsIsolated fires a deterministic panic at each
// instrumented point and checks the contract: the run fails with a
// stack-carrying *PanicError whose value is the injected fault, no
// goroutine leaks, and the same compiled plan counts exactly on the
// next run (poisoned workers were discarded, not pooled).
func TestInjectedPanicIsIsolated(t *testing.T) {
	tri, _, triTotal := compiledTriangle(t)
	hj, hjTotal := compiledHashJoin(t)
	// The poll case needs a plan big enough to cross the amortized
	// cancelCheckInterval; the tiny triangle fixture never polls.
	heavy := heavyPlan(t)
	heavyTotal, _, err := heavy.Count(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		point faultinject.Point
		cp    *CompiledPlan
		total int64
	}{
		{faultinject.PointPoll, heavy, heavyTotal},
		{faultinject.PointWorkerStart, tri, triTotal},
		{faultinject.PointHashBuild, hj, hjTotal},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			baseline := runtime.NumGoroutine()
			inj := &faultinject.Injector{PanicEvery: 1, Points: 1 << tc.point}
			_, _, err := tc.cp.Count(RunConfig{Workers: workers, Faults: inj})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("%s workers=%d: err = %v, want *PanicError", tc.point, workers, err)
			}
			inj2, ok := pe.Value.(faultinject.Injected)
			if !ok || inj2.Point != tc.point {
				t.Fatalf("%s workers=%d: recovered value %v, want Injected at the same point", tc.point, workers, pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Errorf("%s workers=%d: PanicError carries no stack", tc.point, workers)
			}
			if inj.Panics() == 0 {
				t.Errorf("%s workers=%d: injector never fired", tc.point, workers)
			}
			assertGoroutinesReturn(t, baseline)

			n, _, err := tc.cp.Count(RunConfig{Workers: workers})
			if err != nil || n != tc.total {
				t.Fatalf("%s workers=%d: post-panic count = %d, %v; want %d, nil", tc.point, workers, n, err, tc.total)
			}
		}
	}
}

// TestInjectedStallOnlySlows pins the slow-stage fault: sleeps at the
// pollpoint delay the run but never change its answer.
func TestInjectedStallOnlySlows(t *testing.T) {
	cp := heavyPlan(t)
	total, _, err := cp.Count(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	inj := &faultinject.Injector{SleepEvery: 2, Sleep: time.Microsecond, Points: 1 << faultinject.PointPoll}
	n, _, err := cp.Count(RunConfig{Faults: inj})
	if err != nil || n != total {
		t.Fatalf("stalled count = %d, %v; want %d, nil", n, err, total)
	}
	if inj.Sleeps() == 0 {
		t.Error("injector never stalled; fixture too small to reach a pollpoint")
	}
}

// flakyCtx reports Canceled after a fixed number of Err polls — a
// deterministic mid-run cancellation lever that does not depend on
// timer races. Done() stays nil (never readable): the engine must
// notice cancellation through its amortized Err polls alone.
type flakyCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *flakyCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestCancelMidHashBuild cancels while the build side of a hybrid plan
// is still inserting: the run returns context.Canceled promptly, no
// goroutine outlives it, and the pooled workers serve the next run
// exactly.
func TestCancelMidHashBuild(t *testing.T) {
	cp, total := compiledHashJoin(t)
	for _, workers := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		ctx := &flakyCtx{Context: context.Background(), after: 2}
		_, _, err := cp.CountCtx(ctx, RunConfig{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		assertGoroutinesReturn(t, baseline)

		n, _, err := cp.Count(RunConfig{Workers: workers})
		if err != nil || n != total {
			t.Fatalf("workers=%d: post-cancel count = %d, %v; want %d, nil", workers, n, err, total)
		}
	}
}

// TestCancelMidFactorizedUnfold cancels from inside the emit callback
// while a factorized tail's odometer is mid-product: emission stops at
// the next poll with the odometer partially unfolded, the partial rows
// already emitted stand, and a clean rerun enumerates the exact total.
func TestCancelMidFactorizedUnfold(t *testing.T) {
	g := smallRandomGraph(7, 500, 30)
	q := query.MustParse("a->b, a->c, a->d")
	p := buildWCO(t, q, []int{0, 1, 2, 3})
	cp, err := Compile(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if cp.StarSuffixLen() < 2 {
		t.Fatalf("star suffix len %d; fixture no longer exercises the factorized tail", cp.StarSuffixLen())
	}
	var total int64
	fullProf, err := cp.Run(RunConfig{Factorized: true}, func([]graph.VertexID) { total++ })
	if err != nil {
		t.Fatal(err)
	}
	if fullProf.FactorizedPrefixes == 0 {
		t.Fatal("factorized tail never engaged")
	}
	if total < 10000 {
		t.Skipf("only %d rows; too few to observe mid-unfold cancellation", total)
	}

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var emitted int64
	_, err = cp.RunUntilCtx(ctx, RunConfig{Factorized: true}, func([]graph.VertexID) bool {
		if emitted++; emitted == 1000 {
			cancel() // mid-unfold: the odometer is partway through a product
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted < 1000 || emitted >= total {
		t.Fatalf("emitted %d rows before stopping, want in [1000, %d)", emitted, total)
	}
	assertGoroutinesReturn(t, baseline)

	var again int64
	if _, err := cp.Run(RunConfig{Factorized: true}, func([]graph.VertexID) { again++ }); err != nil {
		t.Fatal(err)
	}
	if again != total {
		t.Fatalf("post-cancel rerun enumerated %d rows, want %d", again, total)
	}
}
