package metrics

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %g, want 1.25", got)
	}
}

// TestHistogramBucketBoundaries pins the `le` semantics: an observation
// exactly at a bound lands in that bound's bucket (v <= bound), just
// above it lands in the next, and anything beyond the last finite bound
// lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	h.Observe(1)                    // bucket le=1
	h.Observe(math.Nextafter(1, 2)) // bucket le=2
	h.Observe(2)                    // bucket le=2
	h.Observe(5)                    // bucket le=5
	h.Observe(5.0001)               // +Inf
	h.Observe(-3)                   // le=1 (below the first bound)
	s := h.Snapshot()
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if got, want := s.Sum, 1+math.Nextafter(1, 2)+2+5+5.0001-3; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	// 100 samples uniformly in (0.01, 0.1]: the p50 interpolates to the
	// middle of that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.0999)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 0.01 || p50 > 0.1 {
		t.Fatalf("p50 = %g, want within (0.01, 0.1]", p50)
	}
	// Interpolation: all mass in one bucket, p50 at its midpoint.
	if p50 := s.Quantile(0.5); math.Abs(p50-0.055) > 1e-9 {
		t.Fatalf("p50 = %g, want 0.055 (linear midpoint of (0.01,0.1])", p50)
	}
	// Everything in +Inf clamps to the largest finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if q := h2.Snapshot().Quantile(0.99); q != 2 {
		t.Fatalf("+Inf quantile = %g, want clamp to 2", q)
	}
	// Empty histogram.
	if q := NewHistogram([]float64{1}).Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(DefBuckets)
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-0.003) > 1e-12 {
		t.Fatalf("sum = %g, want 0.003", s.Sum)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// while a scraper concurrently snapshots and serializes it; run under
// -race this is the data-race guard for the lock-free hot path.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hammer_seconds", "race test histogram", []float64{0.001, 0.01, 0.1, 1})
	const (
		writers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := reg.WriteText(&buf); err != nil {
				t.Error(err)
				return
			}
			if errs := Lint(bytes.NewReader(buf.Bytes())); len(errs) > 0 {
				t.Errorf("mid-scrape lint: %v", errs)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%200) / 1000)
			}
		}(w)
	}
	// Stop the scraper once every writer's final count is visible.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for h.Snapshot().Count < writers*perW {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if got := h.Snapshot().Count; got != writers*perW {
		t.Fatalf("count = %d, want %d", got, writers*perW)
	}
}

// TestExpositionGolden locks the text format against a checked-in
// golden file — counters, gauges, func series with labels, and a
// histogram with deterministic observations.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests served.")
	c.Add(3)
	g := reg.Gauge("test_queue_depth", "Current queue depth.")
	g.Set(2)
	reg.GaugeFunc("test_stage_seconds_total", "Per-stage time.", func() float64 { return 1.5 }, "stage", "scan")
	reg.GaugeFunc("test_stage_seconds_total", "Per-stage time.", func() float64 { return 0.25 }, "stage", "probe")
	h := reg.Histogram("test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(2)
	hv := reg.HistogramVec("test_endpoint_seconds", "Per-endpoint latency.", []float64{0.1, 1}, "endpoint")
	hv.With("/query").Observe(0.02)
	hv.With("/ingest").Observe(0.5)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.prom")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// The golden output must also satisfy our own linter.
	if errs := Lint(bytes.NewReader(buf.Bytes())); len(errs) > 0 {
		t.Fatalf("golden exposition fails lint: %v", errs)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("test_labeled_total", "", "path")
	cv.With(`a"b\c` + "\n").Inc()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `path="a\"b\\c\n"`) {
		t.Fatalf("unescaped label in %q", buf.String())
	}
	fams, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got string
	for _, f := range fams {
		if f.Name == "test_labeled_total" && len(f.Series) == 1 {
			got = f.Series[0].Labels["path"]
		}
	}
	if got != `a"b\c`+"\n" {
		t.Fatalf("round-tripped label = %q", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	reg.Counter("dup_total", "")
}

func TestLintCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{
			"duplicate family",
			"# TYPE a_total counter\na_total 1\n# TYPE a_total counter\na_total 2\n",
			"", // parser folds repeated TYPE into one family; duplicate samples are legal-ish — the real dup case is two TYPE values
		},
		{
			"conflicting type",
			"# TYPE a_total counter\n# TYPE a_total gauge\n",
			"conflicting TYPE",
		},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"missing inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			"missing +Inf",
		},
		{
			"count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
			"_count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Lint(strings.NewReader(tc.text))
			if tc.want == "" {
				if len(errs) > 0 {
					t.Fatalf("unexpected lint errors: %v", errs)
				}
				return
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("lint errors %v missing %q", errs, tc.want)
			}
		})
	}
}

// TestParsedBuckets round-trips a histogram through exposition text and
// back into quantile math — the path gfload uses to compute server-side
// percentiles from scraped /metrics diffs.
func TestParsedBuckets(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("rt_seconds", "", []float64{0.01, 0.1, 1}, "endpoint")
	for i := 0; i < 90; i++ {
		hv.With("/query").Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		hv.With("/query").Observe(0.5)
	}
	hv.With("/ingest").Observe(0.002)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var fam *ParsedFamily
	for _, f := range fams {
		if f.Name == "rt_seconds" {
			fam = f
		}
	}
	if fam == nil {
		t.Fatal("rt_seconds family not parsed")
	}
	bounds, counts, ok := fam.Buckets(map[string]string{"endpoint": "/query"})
	if !ok {
		t.Fatal("no /query buckets")
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
	p50 := QuantileFromBuckets(bounds, counts, 0.5)
	if p50 <= 0.01 || p50 > 0.1 {
		t.Fatalf("scraped p50 = %g, want in (0.01, 0.1]", p50)
	}
	p99 := QuantileFromBuckets(bounds, counts, 0.99)
	if p99 <= 0.1 || p99 > 1 {
		t.Fatalf("scraped p99 = %g, want in (0.1, 1]", p99)
	}
}

// TestZeroAllocs guards the instrument hot paths: every mutation method
// that sits on the executor's per-batch or per-query path must not
// allocate. The table mirrors the //gf:noalloc annotations gfvet checks
// statically; CI runs it via the shared `go test -run 'ZeroAllocs'`
// step.
func TestZeroAllocs(t *testing.T) {
	h := NewHistogram(DefBuckets)
	var c Counter
	var g Gauge
	cases := []struct {
		name string
		body func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(-0.25) }},
		{"Histogram.Observe", func() { h.Observe(0.003) }},
		{"Histogram.ObserveDuration", func() { h.ObserveDuration(3 * time.Millisecond) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if a := testing.AllocsPerRun(100, tc.body); a != 0 {
				t.Fatalf("%s allocates %v per run, want 0", tc.name, a)
			}
		})
	}
}
