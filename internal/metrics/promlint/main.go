// Command promlint validates a Prometheus text exposition (from a file
// argument or stdin): every line must parse, no metric family may
// appear twice, and histogram buckets must be monotonically ordered,
// cumulative, and +Inf-terminated with a matching _count. CI pipes a
// live gfserver's /metrics through it. Exits non-zero on any problem.
package main

import (
	"fmt"
	"io"
	"os"

	"graphflow/internal/metrics"
)

func main() {
	var in io.Reader = os.Stdin
	src := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(2)
		}
		defer f.Close()
		in, src = f, os.Args[1]
	}
	errs := metrics.Lint(in)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", src, e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: %s: ok\n", src)
}
