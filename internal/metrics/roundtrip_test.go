package metrics

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// famModel is the reference model of one randomly generated family: what
// the registry was told, against which the scraped exposition is judged.
type famModel struct {
	typ    string
	keys   []string
	series []seriesModel
	bounds []float64 // histograms only
}

type seriesModel struct {
	values []string
	value  float64   // counter/gauge/func families
	obs    []float64 // histogram families
}

// labelWords includes every escape the writer handles, so the round trip
// covers the quoting path, not just clean identifiers.
var labelWords = []string{
	"plain", "x", "with space", `back\slash`, `qu"ote`, "new\nline", "",
	"trailing\\", "unicode-β",
}

func randWord(rng *rand.Rand) string {
	return labelWords[rng.Intn(len(labelWords))]
}

// buildRandomRegistry assembles a registry through every registration
// surface (plain, vec, func, pre-built histogram) with random shapes and
// values, returning the reference model keyed by family name.
func buildRandomRegistry(rng *rand.Rand) (*Registry, map[string]*famModel) {
	r := NewRegistry()
	model := make(map[string]*famModel)

	randBounds := func() []float64 {
		n := 1 + rng.Intn(5)
		bounds := make([]float64, 0, n)
		b := rng.Float64() + 0.01
		for i := 0; i < n; i++ {
			bounds = append(bounds, b)
			b += rng.Float64() + 0.01
		}
		return bounds
	}
	randObs := func(bounds []float64) []float64 {
		obs := make([]float64, rng.Intn(40))
		hi := bounds[len(bounds)-1] * 1.5
		for i := range obs {
			obs[i] = rng.Float64() * hi
		}
		return obs
	}
	randKeys := func(n int) []string {
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", i)
		}
		return keys
	}
	// Distinct label tuples for one vec family: vary the first value by
	// index so two tuples never collide regardless of the random words.
	randTuples := func(nKeys int) [][]string {
		tuples := make([][]string, 1+rng.Intn(3))
		for i := range tuples {
			vals := make([]string, nKeys)
			vals[0] = fmt.Sprintf("s%d-%s", i, randWord(rng))
			for j := 1; j < nKeys; j++ {
				vals[j] = randWord(rng)
			}
			tuples[i] = vals
		}
		return tuples
	}

	nFam := 1 + rng.Intn(8)
	for i := 0; i < nFam; i++ {
		switch rng.Intn(7) {
		case 0: // plain counter
			name := fmt.Sprintf("rt_c%d_total", i)
			c := r.Counter(name, "random counter")
			v := int64(rng.Intn(1000))
			c.Add(v)
			model[name] = &famModel{typ: "counter", series: []seriesModel{{value: float64(v)}}}
		case 1: // plain gauge, negative and fractional values included
			name := fmt.Sprintf("rt_g%d", i)
			g := r.Gauge(name, "random gauge")
			v := (rng.Float64() - 0.5) * 2000
			g.Set(v)
			model[name] = &famModel{typ: "gauge", series: []seriesModel{{value: v}}}
		case 2: // plain histogram
			name := fmt.Sprintf("rt_h%d_seconds", i)
			bounds := randBounds()
			h := r.Histogram(name, "random histogram", bounds)
			obs := randObs(bounds)
			for _, v := range obs {
				h.Observe(v)
			}
			model[name] = &famModel{typ: "histogram", bounds: bounds, series: []seriesModel{{obs: obs}}}
		case 3: // counter vec
			name := fmt.Sprintf("rt_cv%d_total", i)
			keys := randKeys(1 + rng.Intn(3))
			vec := r.CounterVec(name, "random counter vec", keys...)
			fm := &famModel{typ: "counter", keys: keys}
			for _, vals := range randTuples(len(keys)) {
				v := int64(rng.Intn(1000))
				vec.With(vals...).Add(v)
				fm.series = append(fm.series, seriesModel{values: vals, value: float64(v)})
			}
			model[name] = fm
		case 4: // histogram vec
			name := fmt.Sprintf("rt_hv%d_seconds", i)
			keys := randKeys(1 + rng.Intn(2))
			bounds := randBounds()
			vec := r.HistogramVec(name, "random histogram vec", bounds, keys...)
			fm := &famModel{typ: "histogram", keys: keys, bounds: bounds}
			for _, vals := range randTuples(len(keys)) {
				obs := randObs(bounds)
				h := vec.With(vals...)
				for _, v := range obs {
					h.Observe(v)
				}
				fm.series = append(fm.series, seriesModel{values: vals, obs: obs})
			}
			model[name] = fm
		case 5: // func series sharing one family
			name := fmt.Sprintf("rt_f%d_total", i)
			fm := &famModel{typ: "counter", keys: []string{"stage"}}
			for s := 0; s < 1+rng.Intn(3); s++ {
				v := float64(rng.Intn(500))
				r.CounterFunc(name, "random func counter", func() float64 { return v }, "stage", fmt.Sprintf("st%d", s))
				fm.series = append(fm.series, seriesModel{values: []string{fmt.Sprintf("st%d", s)}, value: v})
			}
			model[name] = fm
		case 6: // pre-built histogram registered after the fact
			name := fmt.Sprintf("rt_rh%d_seconds", i)
			bounds := randBounds()
			h := NewHistogram(bounds)
			obs := randObs(bounds)
			for _, v := range obs {
				h.Observe(v)
			}
			r.RegisterHistogram(name, "random pre-built histogram", h)
			model[name] = &famModel{typ: "histogram", bounds: bounds, series: []seriesModel{{obs: obs}}}
		}
	}
	return r, model
}

// refBuckets mirrors Histogram.Observe's bucketing rule (first bound
// with v <= bound, implicit +Inf last) to produce the expected
// de-cumulated counts, sum and total for a series' observations.
func refBuckets(bounds []float64, obs []float64) (counts []int64, sum float64, total int64) {
	counts = make([]int64, len(bounds)+1)
	for _, v := range obs {
		i := 0
		for i < len(bounds) && v > bounds[i] {
			i++
		}
		counts[i]++
		sum += v
	}
	return counts, sum, int64(len(obs))
}

// matchSeries finds the parsed series whose labels equal keys/values
// exactly (ignoring parser-internal bookkeeping labels) and carries the
// given __suffix__ role ("" for plain samples).
func matchSeries(f *ParsedFamily, keys, values []string, suffix string) (ParsedSeries, bool) {
	for _, s := range f.Series {
		if s.Labels["__suffix__"] != suffix {
			continue
		}
		ok := true
		for i, k := range keys {
			if s.Labels[k] != values[i] {
				ok = false
				break
			}
		}
		// Plain families must not carry stray labels beyond the schema
		// (histogram series legitimately add le and __suffix__).
		if suffix == "" {
			extra := 0
			if _, has := s.Labels["__suffix__"]; has {
				extra++
			}
			if len(s.Labels) != len(keys)+extra {
				ok = false
			}
		}
		if ok {
			return s, true
		}
	}
	return ParsedSeries{}, false
}

// TestWriteParseRoundTrip is the exposition property test: for
// randomized registries covering every registration surface, label
// escapes, negative and fractional values, WriteText followed by
// ParseText must reproduce every family (name and type), every series
// (exact label tuple, exact value — the writer formats floats with
// round-trip precision) and every histogram's bounds, de-cumulated
// bucket counts, sum and count.
func TestWriteParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			r, model := buildRandomRegistry(rng)

			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Fatalf("WriteText: %v", err)
			}
			text := buf.String()
			fams, err := ParseText(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ParseText: %v\nexposition:\n%s", err, text)
			}
			byName := make(map[string]*ParsedFamily, len(fams))
			for _, f := range fams {
				byName[f.Name] = f
			}
			if len(byName) != len(model) {
				t.Errorf("parsed %d families, registered %d", len(byName), len(model))
			}

			for name, want := range model {
				f := byName[name]
				if f == nil {
					t.Errorf("family %s missing from scrape", name)
					continue
				}
				if f.Type != want.typ {
					t.Errorf("%s: type = %q, want %q", name, f.Type, want.typ)
				}
				for _, sm := range want.series {
					if want.typ == "histogram" {
						checkHistogramSeries(t, name, f, want, sm)
						continue
					}
					got, ok := matchSeries(f, want.keys, sm.values, "")
					if !ok {
						t.Errorf("%s: series %v missing from scrape", name, sm.values)
						continue
					}
					if got.Value != sm.value {
						t.Errorf("%s%v: value = %v, want %v", name, sm.values, got.Value, sm.value)
					}
				}
			}
		})
	}
}

func checkHistogramSeries(t *testing.T, name string, f *ParsedFamily, want *famModel, sm seriesModel) {
	t.Helper()
	wantCounts, wantSum, wantTotal := refBuckets(want.bounds, sm.obs)
	sel := make(map[string]string, len(want.keys))
	for i, k := range want.keys {
		sel[k] = sm.values[i]
	}
	bounds, counts, ok := f.Buckets(sel)
	if !ok {
		t.Errorf("%s%v: no bucket series in scrape", name, sm.values)
		return
	}
	if len(bounds) != len(want.bounds) {
		t.Errorf("%s%v: %d bounds, want %d", name, sm.values, len(bounds), len(want.bounds))
		return
	}
	for i, b := range bounds {
		// formatValue emits shortest round-trip precision, so the parsed
		// bound is bit-identical to the registered one.
		if b != want.bounds[i] {
			t.Errorf("%s%v: bound[%d] = %v, want %v", name, sm.values, i, b, want.bounds[i])
		}
	}
	var gotTotal int64
	for i, c := range counts {
		gotTotal += c
		if c != wantCounts[i] {
			t.Errorf("%s%v: bucket[%d] = %d, want %d", name, sm.values, i, c, wantCounts[i])
		}
	}
	if gotTotal != wantTotal {
		t.Errorf("%s%v: bucket total = %d, want %d", name, sm.values, gotTotal, wantTotal)
	}
	if s, ok := matchSeries(f, want.keys, sm.values, "sum"); !ok {
		t.Errorf("%s%v: _sum series missing", name, sm.values)
	} else if math.Abs(s.Value-wantSum) > 1e-9*math.Max(1, math.Abs(wantSum)) {
		// Observe accumulates via CAS in observation order; single-threaded
		// that matches the reference fold, but allow float slack anyway.
		t.Errorf("%s%v: sum = %v, want %v", name, sm.values, s.Value, wantSum)
	}
	if s, ok := matchSeries(f, want.keys, sm.values, "count"); !ok {
		t.Errorf("%s%v: _count series missing", name, sm.values)
	} else if int64(s.Value) != wantTotal {
		t.Errorf("%s%v: count = %v, want %d", name, sm.values, s.Value, wantTotal)
	}
}
