// Package metrics is a zero-dependency instrumentation layer: atomic
// counters, gauges and fixed-bucket latency histograms behind a
// registry that serves the Prometheus text exposition format. The hot
// paths (Counter.Inc, Gauge.Set, Histogram.Observe) are single atomic
// operations — no locks, no allocation — so metrics can sit on the
// executor's per-batch path; registration and scraping take a mutex
// but only touch family bookkeeping, never the sample atomics.
//
// The package deliberately implements only what the repo needs: int64
// counters, float64 gauges, cumulative-bucket histograms with
// p50/p95/p99 extraction, one-or-two-label vectors, and closure-backed
// "func" metrics for values that are already counted elsewhere (plan
// cache stats, live-store epochs). No push gateways, no summaries, no
// exemplars.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency histogram layout in seconds:
// roughly exponential from 100µs to 10s, matching the range between a
// cached count on a warm plan and a cold worst-case-optimal join on the
// full graph.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//gf:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotone).
//
//gf:noalloc
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an arbitrary float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//gf:noalloc
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta via a CAS loop.
//
//gf:noalloc
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observations are
// bucketed by upper bound (v <= bound, Prometheus `le` semantics) with
// an implicit +Inf bucket; counts per bucket and the float sum are
// atomics, so Observe is lock-free and allocation-free.
type Histogram struct {
	bounds  []float64 // sorted finite upper bounds
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given finite upper bounds
// (seconds for latency histograms). Bounds must be strictly
// increasing; NewHistogram panics otherwise since the layout is a
// compile-time decision. A trailing +Inf bound is implicit (and
// stripped if passed).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], 1) {
		bounds = bounds[:len(bounds)-1]
	}
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one finite bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// Observe records one sample.
//
//gf:noalloc
func (h *Histogram) Observe(v float64) {
	// Branchless-ish linear scan beats sort.SearchFloat64s for the
	// typical 16-bucket layout and avoids the func-value indirection.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
//
//gf:noalloc
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot captures a consistent-enough view for quantile math and
// exposition: per-bucket counts (non-cumulative), total count and sum.
// Concurrent Observes may land between bucket reads; scrapes tolerate
// that the same way Prometheus clients do.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// HistSnapshot is a point-in-time histogram state; Bounds aliases the
// histogram's immutable layout, Counts is per-bucket (the last entry is
// the +Inf bucket).
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Quantile extracts the q-quantile (0 < q <= 1) by linear
// interpolation inside the straddling bucket, prometheus
// histogram_quantile-style: samples in the +Inf bucket clamp to the
// highest finite bound. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	return QuantileFromBuckets(s.Bounds, s.Counts, q)
}

// QuantileFromBuckets is the quantile core shared with consumers that
// reconstruct bucket layouts from scraped exposition text (gfload).
// bounds are the finite upper bounds; counts is per-bucket
// (len(bounds)+1, last = +Inf overflow).
func QuantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		within := rank - float64(cum-c)
		return lo + (hi-lo)*(within/float64(c))
	}
	return bounds[len(bounds)-1]
}

// CounterVec is a family of counters keyed by label values (e.g. one
// per endpoint). Children are created on first use under a lock; the
// returned *Counter should be cached by hot-path callers.
type CounterVec struct {
	fam *family
}

// With returns the child for the given label values (one per declared
// label key, in order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	s := v.fam.child(values)
	return s.counter
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	fam    *family
	bounds []float64
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	s := v.fam.child(values)
	return s.hist
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	fam *family
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	s := v.fam.child(values)
	return s.gauge
}

// series is one exposed time series: a fixed label-value tuple plus
// exactly one sample source.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          func() float64 // func-backed counter or gauge
}

// value reads the series' scalar sample (not used for histograms).
func (s *series) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	}
	return 0
}

// family is one metric name: help text, type, label schema and its
// series set.
type family struct {
	name      string
	help      string
	typ       string // "counter", "gauge", "histogram"
	labelKeys []string
	bounds    []float64 // histogram families only

	mu     sync.RWMutex
	series []*series
	byKey  map[string]*series
}

// child returns (creating if needed) the series for the label tuple.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labelKeys) {
		panic("metrics: " + f.name + ": wrong label value count")
	}
	key := joinKey(values)
	f.mu.RLock()
	s := f.byKey[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.byKey[key]; s != nil {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case "counter":
		s.counter = &Counter{}
	case "gauge":
		s.gauge = &Gauge{}
	case "histogram":
		s.hist = NewHistogram(f.bounds)
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// sortedSeries snapshots the series list ordered by label values for
// deterministic exposition.
func (f *family) sortedSeries() []*series {
	f.mu.RLock()
	out := make([]*series, len(f.series))
	copy(out, f.series)
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return joinKey(out[i].labelValues) < joinKey(out[j].labelValues)
	})
	return out
}

func joinKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	k := values[0]
	for _, v := range values[1:] {
		k += "\x00" + v
	}
	return k
}
