package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParsedSeries is one sample line of a scraped exposition.
type ParsedSeries struct {
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family of a scraped exposition. For
// histograms the _bucket/_sum/_count suffixed samples are folded back
// under the base name with the suffix preserved in Suffix.
type ParsedFamily struct {
	Name   string
	Type   string // "" when no # TYPE line preceded the samples
	Series []ParsedSeries
}

// Buckets reconstructs a cumulative histogram's (bounds, per-bucket
// counts) from a parsed family's _bucket series, optionally filtered to
// one label tuple (matching every key/value in sel). The returned
// counts are de-cumulated (per bucket, last = +Inf), ready for
// QuantileFromBuckets. ok is false when no bucket series matched.
func (f *ParsedFamily) Buckets(sel map[string]string) (bounds []float64, counts []int64, ok bool) {
	type bkt struct {
		le  float64
		cum int64
	}
	var bkts []bkt
	for _, s := range f.Series {
		le, isBucket := s.Labels["le"]
		if !isBucket || s.Labels["__suffix__"] != "bucket" {
			continue
		}
		match := true
		for k, v := range sel {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		var b float64
		if le == "+Inf" {
			b = inf
		} else {
			var err error
			b, err = strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
		}
		bkts = append(bkts, bkt{le: b, cum: int64(s.Value)})
	}
	if len(bkts) == 0 {
		return nil, nil, false
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	counts = make([]int64, len(bkts))
	prev := int64(0)
	for i, b := range bkts {
		counts[i] = b.cum - prev
		prev = b.cum
		if b.le != inf {
			bounds = append(bounds, b.le)
		}
	}
	return bounds, counts, true
}

var inf = func() float64 {
	f, _ := strconv.ParseFloat("+Inf", 64)
	return f
}()

// ParseText parses a Prometheus text exposition. It understands the
// subset this package emits (# HELP, # TYPE, samples with optional
// labels) and groups histogram _bucket/_sum/_count samples under the
// base family name, tagging each sample's role in the reserved
// "__suffix__" label ("bucket", "sum", "count", or absent for plain
// samples).
func ParseText(r io.Reader) ([]*ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	byName := make(map[string]*ParsedFamily)
	var order []*ParsedFamily
	fam := func(name string) *ParsedFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &ParsedFamily{Name: name}
		byName[name] = f
		order = append(order, f)
		return f
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				f := fam(fields[2])
				if len(fields) >= 4 {
					if f.Type != "" && f.Type != fields[3] {
						return nil, fmt.Errorf("line %d: conflicting TYPE for %s", lineNo, fields[2])
					}
					f.Type = fields[3]
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name {
				if f, ok := byName[trimmed]; ok && f.Type == "histogram" {
					base, suffix = trimmed, sfx[1:]
				}
				break
			}
		}
		if labels == nil {
			labels = make(map[string]string)
		}
		if suffix != "" {
			labels["__suffix__"] = suffix
		}
		fam(base).Series = append(fam(base).Series, ParsedSeries{Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return order, nil
}

// parseSample splits `name{k="v",...} value` into its parts.
func parseSample(line string) (string, map[string]string, float64, error) {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]
	var labels map[string]string
	if rest[0] == '{' {
		close := strings.LastIndexByte(rest, '}')
		if close < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		labels, err = parseLabels(rest[1:close])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[close+1:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "" {
		return "", nil, 0, fmt.Errorf("missing value in %q", line)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", valStr)
	}
	return name, labels, v, nil
}

func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(s[:eq])
		// Find the closing unescaped quote.
		i := eq + 2
		var val strings.Builder
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value")
		}
		labels[key] = val.String()
		s = s[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// Lint validates a scraped exposition: every sample parses, no family
// appears under two TYPE lines, histogram buckets are monotonically
// ordered and cumulative, and every histogram has a +Inf bucket whose
// count equals _count. It returns all problems found.
func Lint(r io.Reader) []error {
	fams, err := ParseText(r)
	if err != nil {
		return []error{err}
	}
	var errs []error
	seen := make(map[string]bool)
	for _, f := range fams {
		if seen[f.Name] {
			errs = append(errs, fmt.Errorf("duplicate metric family %s", f.Name))
		}
		seen[f.Name] = true
		if f.Type != "histogram" {
			continue
		}
		errs = append(errs, lintHistogram(f)...)
	}
	return errs
}

// lintHistogram checks one histogram family, per distinct label tuple.
func lintHistogram(f *ParsedFamily) []error {
	var errs []error
	// Group bucket lines by their non-le, non-suffix label signature.
	type group struct {
		les    []float64
		cums   []int64
		hasInf bool
		count  float64
		hasCnt bool
	}
	groups := make(map[string]*group)
	sig := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k == "le" || k == "__suffix__" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k + "=" + labels[k] + ";")
		}
		return b.String()
	}
	for _, s := range f.Series {
		g := groups[sig(s.Labels)]
		if g == nil {
			g = &group{}
			groups[sig(s.Labels)] = g
		}
		switch s.Labels["__suffix__"] {
		case "bucket":
			le := s.Labels["le"]
			if le == "+Inf" {
				g.hasInf = true
				g.les = append(g.les, inf)
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					errs = append(errs, fmt.Errorf("%s: bad le %q", f.Name, le))
					continue
				}
				g.les = append(g.les, v)
			}
			g.cums = append(g.cums, int64(s.Value))
		case "count":
			g.count = s.Value
			g.hasCnt = true
		}
	}
	for lbls, g := range groups {
		where := f.Name
		if lbls != "" {
			where += "{" + lbls + "}"
		}
		if !g.hasInf {
			errs = append(errs, fmt.Errorf("%s: missing +Inf bucket", where))
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				errs = append(errs, fmt.Errorf("%s: bucket bounds not strictly increasing", where))
				break
			}
		}
		for i := 1; i < len(g.cums); i++ {
			if g.cums[i] < g.cums[i-1] {
				errs = append(errs, fmt.Errorf("%s: bucket counts not cumulative", where))
				break
			}
		}
		if g.hasCnt && g.hasInf && len(g.cums) > 0 && float64(g.cums[len(g.cums)-1]) != g.count {
			errs = append(errs, fmt.Errorf("%s: +Inf bucket %d != _count %g", where, g.cums[len(g.cums)-1], g.count))
		}
	}
	return errs
}
