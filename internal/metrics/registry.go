package metrics

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds metric families and serves them in the Prometheus
// text exposition format. Registration happens at startup under a
// mutex; the sample reads at scrape time are plain atomic loads, so a
// scrape never blocks an Observe.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order; exposition sorts by name anyway
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers and returns a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.newFamily(name, help, "counter", nil, nil, false)
	return f.child(nil).counter
}

// Gauge registers and returns a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.newFamily(name, help, "gauge", nil, nil, false)
	return f.child(nil).gauge
}

// Histogram registers and returns a label-less histogram over bounds
// (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.newFamily(name, help, "histogram", nil, bounds, false)
	return f.child(nil).hist
}

// RegisterHistogram adopts an externally owned histogram (e.g. the WAL
// fsync histogram, which lives in the wal package so observations work
// even when no registry is attached).
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	f := r.newFamily(name, help, "histogram", nil, h.bounds, false)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := &series{hist: h}
	f.byKey[""] = s
	f.series = append(f.series, s)
}

// CounterVec registers a counter family with the given label keys.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	f := r.newFamily(name, help, "counter", labelKeys, nil, false)
	return &CounterVec{fam: f}
}

// GaugeVec registers a gauge family with the given label keys.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	f := r.newFamily(name, help, "gauge", labelKeys, nil, false)
	return &GaugeVec{fam: f}
}

// HistogramVec registers a histogram family with the given label keys
// and bounds (nil = DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelKeys ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.newFamily(name, help, "histogram", labelKeys, bounds, false)
	return &HistogramVec{fam: f, bounds: bounds}
}

// CounterFunc registers a closure-backed counter series. labelPairs is
// an alternating key, value list; repeated registrations under the
// same name must use the same label keys and distinct values — that is
// how multi-series func families (e.g. per-stage exec seconds) are
// assembled.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.funcSeries(name, help, "counter", fn, labelPairs)
}

// GaugeFunc registers a closure-backed gauge series; see CounterFunc
// for labelPairs semantics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.funcSeries(name, help, "gauge", fn, labelPairs)
}

func (r *Registry) funcSeries(name, help, typ string, fn func() float64, labelPairs []string) {
	if len(labelPairs)%2 != 0 {
		panic("metrics: " + name + ": labelPairs must alternate key, value")
	}
	keys := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		keys = append(keys, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.newFamily(name, help, typ, keys, nil, true)
	key := joinKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byKey[key]; dup {
		panic("metrics: duplicate registration of " + name + " series")
	}
	s := &series{labelValues: values, fn: fn}
	f.byKey[key] = s
	f.series = append(f.series, s)
}

// newFamily fetches or creates the family, enforcing name validity and
// schema consistency. Re-registering an existing name panics
// (programmer error, as in prometheus client_golang's MustRegister)
// unless shareable is set — func series share a family so labelled
// multi-series func metrics (e.g. per-stage exec seconds) can be
// assembled one registration at a time.
func (r *Registry) newFamily(name, help, typ string, labelKeys []string, bounds []float64, shareable bool) *family {
	if !validName(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	for _, k := range labelKeys {
		if !validName(k) || k == "le" {
			panic("metrics: invalid label key " + strconv.Quote(k) + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if !shareable {
			panic("metrics: duplicate registration of " + name)
		}
		if f.typ != typ || !sameKeys(f.labelKeys, labelKeys) {
			panic("metrics: conflicting registration of " + name)
		}
		return f
	}
	f := &family{
		name:      name,
		help:      help,
		typ:       typ,
		labelKeys: append([]string(nil), labelKeys...),
		bounds:    bounds,
		byKey:     make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// WriteText writes the full exposition in Prometheus text format,
// families sorted by name, series sorted by label values.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		writeFamily(bw, f)
	}
	return bw.Flush()
}

// Handler serves the exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func writeFamily(w *bufio.Writer, f *family) {
	if f.help != "" {
		w.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
	}
	w.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
	for _, s := range f.sortedSeries() {
		if f.typ == "histogram" {
			writeHistogramSeries(w, f, s)
			continue
		}
		w.WriteString(f.name)
		writeLabels(w, f.labelKeys, s.labelValues, "", 0)
		w.WriteByte(' ')
		w.WriteString(formatValue(s.value()))
		w.WriteByte('\n')
	}
}

func writeHistogramSeries(w *bufio.Writer, f *family, s *series) {
	snap := s.hist.Snapshot()
	var cum int64
	for i, c := range snap.Counts {
		cum += c
		bound := "+Inf"
		if i < len(snap.Bounds) {
			bound = formatValue(snap.Bounds[i])
		}
		w.WriteString(f.name + "_bucket")
		writeLabels(w, f.labelKeys, s.labelValues, bound, 1)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(cum, 10))
		w.WriteByte('\n')
	}
	w.WriteString(f.name + "_sum")
	writeLabels(w, f.labelKeys, s.labelValues, "", 0)
	w.WriteByte(' ')
	w.WriteString(formatValue(snap.Sum))
	w.WriteByte('\n')
	w.WriteString(f.name + "_count")
	writeLabels(w, f.labelKeys, s.labelValues, "", 0)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(snap.Count, 10))
	w.WriteByte('\n')
}

// writeLabels emits {k="v",...}; mode 1 appends le=<le> for histogram
// bucket lines.
func writeLabels(w *bufio.Writer, keys, values []string, le string, mode int) {
	if len(keys) == 0 && mode == 0 {
		return
	}
	w.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(k + "=\"" + escapeLabel(values[i]) + "\"")
	}
	if mode == 1 {
		if len(keys) > 0 {
			w.WriteByte(',')
		}
		w.WriteString("le=\"" + le + "\"")
	}
	w.WriteByte('}')
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
