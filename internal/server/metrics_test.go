package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"graphflow/internal/metrics"
)

// TestMetricsEndpoint drives traffic through every instrumented
// endpoint and checks the exposition is valid Prometheus text (our own
// linter: no duplicate families, cumulative monotone buckets, +Inf
// present) covering the request, plan-cache, live-store and per-stage
// families the observability contract promises.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := do(t, s, http.MethodPost, "/query", map[string]any{"pattern": triangle}); w.Code != http.StatusOK {
		t.Fatalf("/query = %d: %s", w.Code, w.Body)
	}
	if w := do(t, s, http.MethodPost, "/ingest", map[string]any{
		"add_edges": []map[string]any{{"src": 1, "dst": 2, "label": 0}},
	}); w.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", w.Code, w.Body)
	}
	if w := do(t, s, http.MethodGet, "/explain?pattern="+url.QueryEscape(triangle), nil); w.Code != http.StatusOK {
		t.Fatalf("/explain = %d: %s", w.Code, w.Body)
	}

	w := do(t, s, http.MethodGet, "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body := w.Body.Bytes()
	if errs := metrics.Lint(bytes.NewReader(body)); len(errs) > 0 {
		t.Fatalf("exposition fails lint: %v", errs)
	}
	for _, want := range []string{
		"graphflow_http_request_seconds",
		"graphflow_http_responses_total",
		"graphflow_requests_served_total",
		"graphflow_requests_rejected_total",
		"graphflow_requests_in_flight",
		"graphflow_exec_stage_seconds_total",
		"graphflow_exec_kernel_dispatch_total",
		"graphflow_plan_cache_hits_total",
		"graphflow_plan_cache_misses_total",
		"graphflow_graph_vertices",
		"graphflow_graph_epoch",
		"graphflow_overlay_delta_ops",
		"graphflow_wal_enabled",
		"graphflow_compaction_seconds",
		"graphflow_ingest_batches_total",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("exposition missing %s", want)
		}
	}

	// The /query traffic above must appear in the per-endpoint request
	// histogram and in the per-stage time attribution.
	fams, err := metrics.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*metrics.ParsedFamily, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	_, counts, ok := byName["graphflow_http_request_seconds"].Buckets(map[string]string{"endpoint": "/query"})
	if !ok {
		t.Fatal("no /query request histogram series")
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	if n != 1 {
		t.Fatalf("/query request histogram holds %d observations, want 1", n)
	}
	var stageTotal float64
	for _, srs := range byName["graphflow_exec_stage_seconds_total"].Series {
		stageTotal += srs.Value
	}
	if stageTotal <= 0 {
		t.Fatal("per-stage time attribution is zero after a served count query")
	}
}

// TestMetricsResponseCodeLabels checks the middleware labels responses
// by status: a bad request must land in the 400 series, not the 200 one.
func TestMetricsResponseCodeLabels(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, http.MethodPost, "/query", map[string]any{"pattern": triangle})
	do(t, s, http.MethodPost, "/query", `{"pattern":""}`) // 400: missing pattern
	w := do(t, s, http.MethodGet, "/metrics", nil)
	fams, err := metrics.ParseText(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, f := range fams {
		if f.Name != "graphflow_http_responses_total" {
			continue
		}
		for _, srs := range f.Series {
			if srs.Labels["endpoint"] == "/query" {
				got[srs.Labels["code"]] = srs.Value
			}
		}
	}
	if got["200"] != 1 || got["400"] != 1 {
		t.Fatalf("response counts by code = %v, want 200:1 400:1", got)
	}
}

// TestExplainAnalyze exercises EXPLAIN ANALYZE through both spellings
// (?analyze=true and the JSON body field): the response must carry the
// actual match count, per-operator wall times in the plan tree, and the
// stage breakdown.
func TestExplainAnalyze(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, method, path string
		body               any
	}{
		{"query-param", http.MethodGet, "/explain?pattern=" + url.QueryEscape(triangle) + "&analyze=true", nil},
		{"json-body", http.MethodPost, "/explain", map[string]any{"pattern": triangle, "analyze": true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, tc.method, tc.path, tc.body)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d: %s", w.Code, w.Body)
			}
			var resp struct {
				Analyzed   bool    `json:"analyzed"`
				Matches    *int64  `json:"matches"`
				Plan       string  `json:"plan"`
				PlanDigest string  `json:"plan_digest"`
				ElapsedMS  float64 `json:"elapsed_ms"`
				Stages     *struct {
					Scan float64 `json:"scan"`
				} `json:"stage_ms"`
			}
			mustDecode(t, w.Body.Bytes(), &resp)
			if !resp.Analyzed {
				t.Fatal("analyzed = false")
			}
			if resp.Matches == nil || *resp.Matches <= 0 {
				t.Fatalf("matches = %v, want > 0", resp.Matches)
			}
			if !strings.Contains(resp.Plan, "time=") {
				t.Fatalf("analyzed plan lacks per-operator wall times:\n%s", resp.Plan)
			}
			if !strings.Contains(resp.Plan, "out=") {
				t.Fatalf("analyzed plan lacks actual row counts:\n%s", resp.Plan)
			}
			if resp.PlanDigest == "" {
				t.Fatal("empty plan digest")
			}
			if resp.Stages == nil {
				t.Fatal("no stage breakdown")
			}
			if resp.ElapsedMS <= 0 {
				t.Fatalf("elapsed_ms = %v", resp.ElapsedMS)
			}
		})
	}
	// Plain explain still must not execute: no matches field, analyzed false.
	w := do(t, s, http.MethodGet, "/explain?pattern="+url.QueryEscape(triangle), nil)
	var plain struct {
		Analyzed bool   `json:"analyzed"`
		Matches  *int64 `json:"matches"`
	}
	mustDecode(t, w.Body.Bytes(), &plain)
	if plain.Analyzed || plain.Matches != nil {
		t.Fatalf("plain explain executed: %+v", plain)
	}
}

// TestElapsedMSConsistency pins satellite contract: /execute, /ingest
// and /explain all report elapsed_ms, measured from the shared
// middleware's arrival instant.
func TestElapsedMSConsistency(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := do(t, s, http.MethodPost, "/prepare", map[string]any{"name": "tri", "pattern": triangle}); w.Code != http.StatusCreated {
		t.Fatalf("/prepare = %d: %s", w.Code, w.Body)
	}
	for _, tc := range []struct {
		path, method string
		body         any
	}{
		{"/execute/tri", http.MethodPost, map[string]any{}},
		{"/ingest", http.MethodPost, map[string]any{"add_edges": []map[string]any{{"src": 3, "dst": 4, "label": 0}}}},
		{"/explain?pattern=" + url.QueryEscape(triangle), http.MethodGet, nil},
	} {
		w := do(t, s, tc.method, tc.path, tc.body)
		if w.Code != http.StatusOK {
			t.Fatalf("%s = %d: %s", tc.path, w.Code, w.Body)
		}
		var resp struct {
			ElapsedMS *float64 `json:"elapsed_ms"`
		}
		mustDecode(t, w.Body.Bytes(), &resp)
		if resp.ElapsedMS == nil || *resp.ElapsedMS < 0 {
			t.Fatalf("%s: elapsed_ms = %v", tc.path, resp.ElapsedMS)
		}
	}
}

// TestSlowQueryLogged checks the slow-query spine: a threshold of 1ns
// makes every query slow, and the Warn record must carry the pattern,
// plan digest and stage breakdown.
func TestSlowQueryLogged(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Config{
		SlowQueryThreshold: time.Nanosecond,
		Logger:             slog.New(slog.NewTextHandler(&buf, nil)),
	})
	if w := do(t, s, http.MethodPost, "/query", map[string]any{"pattern": triangle}); w.Code != http.StatusOK {
		t.Fatalf("/query = %d: %s", w.Code, w.Body)
	}
	out := buf.String()
	for _, want := range []string{"slow query", "plan_digest=", "plan_kind=", "pattern=", "elapsed_ms=", "scan_ms="} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow-query log missing %q:\n%s", want, out)
		}
	}

	// Above the threshold nothing is logged.
	buf.Reset()
	s2 := newTestServer(t, Config{
		SlowQueryThreshold: time.Hour,
		Logger:             slog.New(slog.NewTextHandler(&buf, nil)),
	})
	do(t, s2, http.MethodPost, "/query", map[string]any{"pattern": triangle})
	if buf.Len() != 0 {
		t.Fatalf("unexpected log output under threshold: %s", buf.String())
	}
}

// TestPerTemplateHistogram checks /execute feeds the per-template
// latency series under the statement's name.
func TestPerTemplateHistogram(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := do(t, s, http.MethodPost, "/prepare", map[string]any{"name": "tmpl-metrics", "pattern": triangle}); w.Code != http.StatusCreated {
		t.Fatalf("/prepare = %d: %s", w.Code, w.Body)
	}
	for i := 0; i < 3; i++ {
		if w := do(t, s, http.MethodPost, "/execute/tmpl-metrics", map[string]any{}); w.Code != http.StatusOK {
			t.Fatalf("/execute = %d: %s", w.Code, w.Body)
		}
	}
	w := do(t, s, http.MethodGet, "/metrics", nil)
	fams, err := metrics.ParseText(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		if f.Name != "graphflow_exec_template_seconds" {
			continue
		}
		_, counts, ok := f.Buckets(map[string]string{"template": "tmpl-metrics"})
		if !ok {
			t.Fatal("no series for template tmpl-metrics")
		}
		var n int64
		for _, c := range counts {
			n += c
		}
		if n != 3 {
			t.Fatalf("template histogram count = %d, want 3", n)
		}
		return
	}
	t.Fatal("graphflow_exec_template_seconds family missing")
}

func mustDecode(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("decoding %s: %v", b, err)
	}
}
