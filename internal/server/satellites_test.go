package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"graphflow"
)

// TestIngestFirstNewVertexZero is a regression test for the omitempty
// bug: the very first vertex of an empty store has ID 0, which a plain
// `omitempty` uint32 silently dropped from the response.
func TestIngestFirstNewVertexZero(t *testing.T) {
	db, err := graphflow.NewBuilder(0).Open(&graphflow.Options{CatalogueZ: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{DB: db})
	w := do(t, s, http.MethodPost, "/ingest", map[string]any{
		"add_vertices": []uint16{0, 1},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), `"first_new_vertex":0`) {
		t.Fatalf("first_new_vertex missing for vertex ID 0: %s", w.Body)
	}
	var resp ingestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.FirstNewVertex == nil || *resp.FirstNewVertex != 0 || resp.AddedVertices != 2 {
		t.Fatalf("ingest response %+v", resp)
	}

	// A batch with no vertex adds must omit the field entirely.
	w = do(t, s, http.MethodPost, "/ingest", map[string]any{
		"add_edges": []map[string]any{{"src": 0, "dst": 1, "label": 0}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", w.Code, w.Body)
	}
	if strings.Contains(w.Body.String(), "first_new_vertex") {
		t.Fatalf("first_new_vertex present without vertex adds: %s", w.Body)
	}
}

// TestBodyLimits checks the per-endpoint request-body caps: a query
// body over MaxBodyBytes gets 413, while /ingest runs under its own
// (much larger) MaxIngestBodyBytes limit.
func TestBodyLimits(t *testing.T) {
	db := ingestDB(t)
	s := newTestServer(t, Config{DB: db, MaxBodyBytes: 128})

	big := `{"pattern": "a->b", "mode": "` + strings.Repeat("x", 200) + `"}`
	w := do(t, s, http.MethodPost, "/query", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /query = %d, want 413: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "128-byte limit") {
		t.Fatalf("413 does not name the limit: %s", w.Body)
	}

	// The same payload size sails through /ingest, whose limit defaulted
	// to 64 MiB.
	edges := make([]map[string]any, 0, 40)
	for i := 0; i < 40; i++ {
		edges = append(edges, map[string]any{"src": 0, "dst": 1, "label": i})
	}
	w = do(t, s, http.MethodPost, "/ingest", map[string]any{"add_edges": edges})
	if w.Code != http.StatusOK {
		t.Fatalf("large /ingest = %d, want 200: %s", w.Code, w.Body)
	}

	// And a tiny ingest cap rejects it with 413.
	s2 := newTestServer(t, Config{DB: ingestDB(t), MaxIngestBodyBytes: 64})
	w = do(t, s2, http.MethodPost, "/ingest", map[string]any{"add_edges": edges})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /ingest = %d, want 413: %s", w.Code, w.Body)
	}
}

// TestQueryOptionSanitization checks the negative-input handling of
// queryOptions: nonsense workers/limit clamp to their automatic
// defaults, while out-of-range batch_size values are rejected.
func TestQueryOptionSanitization(t *testing.T) {
	s := newTestServer(t, Config{})

	cases := []struct {
		name string
		req  queryRequest
		want int
	}{
		{"negative workers", queryRequest{Pattern: triangle, Workers: -5}, http.StatusOK},
		{"negative limit count", queryRequest{Pattern: triangle, Limit: -3}, http.StatusOK},
		{"negative limit match", queryRequest{Pattern: triangle, Mode: "match", Limit: -3}, http.StatusOK},
		{"negative batch_size", queryRequest{Pattern: triangle, BatchSize: -1}, http.StatusBadRequest},
		{"negative batch_size match", queryRequest{Pattern: triangle, Mode: "match", BatchSize: -7}, http.StatusBadRequest},
		{"oversized batch_size", queryRequest{Pattern: triangle, BatchSize: maxRequestBatchSize + 1}, http.StatusBadRequest},
		{"max batch_size ok", queryRequest{Pattern: triangle, BatchSize: maxRequestBatchSize}, http.StatusOK},
	}
	var wantCount int64
	{
		w := do(t, s, http.MethodPost, "/query", queryRequest{Pattern: triangle})
		var resp queryResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Count == nil {
			t.Fatalf("baseline count: %s (%v)", w.Body, err)
		}
		wantCount = *resp.Count
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, http.MethodPost, "/query", tc.req)
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.want, w.Body)
			}
			if tc.want == http.StatusBadRequest {
				if !strings.Contains(w.Body.String(), "batch_size") {
					t.Fatalf("400 does not name batch_size: %s", w.Body)
				}
				return
			}
			// Sanitized requests must still answer correctly.
			var resp queryResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if tc.req.Mode == "" && (resp.Count == nil || *resp.Count != wantCount) {
				t.Fatalf("count %v, want %d", resp.Count, wantCount)
			}
		})
	}
}

// durableIngestBase rebuilds the deterministic base graph a durable
// ingest server boots from; recovery needs the identical base until the
// first checkpoint lands.
func durableIngestBase(t *testing.T, dir string) *graphflow.DB {
	t.Helper()
	b := graphflow.NewBuilder(4)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	db, err := b.Open(&graphflow.Options{CatalogueZ: 50, CatalogueH: 2, DataDir: dir, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestIngestDeleteHeavyOverHTTPWithRecovery drives a delete-heavy
// mutation mix through /ingest against a durable store — including a
// batch that adds and deletes the same edge — checking every epoch and
// count in the responses against a shadow edge set, then reopens the
// data directory and verifies the recovered store matches the shadow.
func TestIngestDeleteHeavyOverHTTPWithRecovery(t *testing.T) {
	dir := t.TempDir()
	db := durableIngestBase(t, dir)
	s := newTestServer(t, Config{DB: db})

	shadow := map[[3]uint32]bool{{0, 1, 0}: true, {1, 2, 0}: true}
	apply := func(add, del [][3]uint32, wantEpoch uint64) {
		t.Helper()
		body := map[string]any{}
		var adds, dels []map[string]any
		for _, e := range add {
			adds = append(adds, map[string]any{"src": e[0], "dst": e[1], "label": e[2]})
		}
		for _, e := range del {
			dels = append(dels, map[string]any{"src": e[0], "dst": e[1], "label": e[2]})
		}
		if adds != nil {
			body["add_edges"] = adds
		}
		if dels != nil {
			body["delete_edges"] = dels
		}
		w := do(t, s, http.MethodPost, "/ingest", body)
		if w.Code != http.StatusOK {
			t.Fatalf("/ingest = %d: %s", w.Code, w.Body)
		}
		var resp ingestResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		wantAdded, wantDeleted := 0, 0
		for _, e := range add {
			if !shadow[e] && e[0] != e[1] {
				shadow[e] = true
				wantAdded++
			}
		}
		for _, e := range del {
			if shadow[e] {
				delete(shadow, e)
				wantDeleted++
			}
		}
		if resp.Epoch != wantEpoch || resp.AddedEdges != wantAdded || resp.DeletedEdges != wantDeleted {
			t.Fatalf("epoch %d added %d deleted %d, want %d/%d/%d (body %s)",
				resp.Epoch, resp.AddedEdges, resp.DeletedEdges, wantEpoch, wantAdded, wantDeleted, w.Body)
		}
		if resp.Edges != len(shadow) {
			t.Fatalf("live edges %d, shadow %d", resp.Edges, len(shadow))
		}
	}

	// Delete-heavy mix: prune the base, re-add, prune again.
	apply(nil, [][3]uint32{{0, 1, 0}, {1, 2, 0}}, 1)
	apply([][3]uint32{{0, 1, 0}, {2, 3, 0}, {3, 0, 1}}, nil, 2)
	// Add and delete the same edge in one batch: the add lands first,
	// the delete then removes it, so the batch is a net no-op for it.
	apply([][3]uint32{{1, 3, 0}}, [][3]uint32{{1, 3, 0}, {2, 3, 0}}, 3)
	// Deleting an absent edge is a no-op and duplicate adds are dropped;
	// a batch where nothing changes does not publish (or log) an epoch.
	apply([][3]uint32{{0, 1, 0}}, [][3]uint32{{3, 3, 1}}, 3)

	finalEpoch := db.Epoch()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the same directory and base: the recovered store must
	// match the shadow set exactly.
	db2 := durableIngestBase(t, dir)
	defer db2.Close()
	if db2.Epoch() != finalEpoch {
		t.Fatalf("recovered epoch %d, want %d", db2.Epoch(), finalEpoch)
	}
	if db2.NumEdges() != len(shadow) {
		t.Fatalf("recovered %d edges, shadow has %d", db2.NumEdges(), len(shadow))
	}
	ls := db2.LiveStats()
	if !ls.WALEnabled || ls.ReplayedBatches != 3 {
		t.Fatalf("recovered LiveStats: %+v", ls)
	}

	// The recovered server keeps serving and reports WAL state in /stats.
	s2 := newTestServer(t, Config{DB: db2})
	w := do(t, s2, http.MethodGet, "/stats", nil)
	var st statsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.WAL.Enabled || st.WAL.ReplayedBatches != 3 {
		t.Fatalf("/stats wal section: %+v", st.WAL)
	}
	if st.WAL.Bytes == 0 {
		t.Fatal("/stats wal bytes is 0 for a non-empty log")
	}
}
