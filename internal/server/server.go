// Package server exposes a graphflow DB over HTTP: ad-hoc counting and
// matching, a named prepared-statement registry backed by the DB's
// compiled-plan cache, plan inspection, and operational stats. Every
// query executes under a per-request deadline threaded through the
// ctx-aware execution core, so a pathological worst-case-optimal query
// cannot pin a worker past its budget, and an admission controller —
// a bounded priority queue with per-tenant quotas over a fixed number
// of execution slots — sheds load with Retry-After once the server is
// saturated. Queries aborted by their memory budget come back as 422
// with a machine-readable code; panics recovered inside the engine are
// logged with their stack and reported as 500 without killing the
// process.
//
// Endpoints (all JSON):
//
//	POST /query            one-shot count or match of a pattern
//	POST /prepare          register a named prepared statement
//	POST /execute/{name}   run a previously prepared statement
//	DELETE /prepare/{name} drop a prepared statement
//	GET/POST /explain      optimizer plan; ?analyze=true runs it and
//	                       annotates each operator with actual rows and wall time
//	POST /ingest           apply one mutation batch (vertices, edge adds/deletes)
//	POST /compact          force a compaction of the delta overlay
//	GET /stats             graph, epoch, plan-cache, prepared and request counters
//	GET /metrics           Prometheus text exposition of every server and DB metric
//	GET /healthz           liveness probe
//
// Every mutating or querying endpoint runs behind one timing middleware:
// request latency histograms (per endpoint) and response counters (per
// endpoint and status code) are observed in exactly one place, and the
// ElapsedMS field every response carries is measured from the same
// request-arrival instant the histograms use. Queries slower than
// Config.SlowQueryThreshold are logged through slog with their plan
// digest and per-stage time breakdown.
//
// Mutations go through the DB's live store: each /ingest batch becomes
// one new epoch, queries already executing keep their snapshot, and
// later queries transparently re-plan against the mutated graph.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphflow"
	"graphflow/internal/exec"
	"graphflow/internal/faultinject"
	"graphflow/internal/metrics"
	"graphflow/internal/resource"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when the client abandoned a request whose query
// was then cancelled. It distinguishes client-initiated cancellation
// from the server-initiated 504 deadline.
const StatusClientClosedRequest = 499

// Config tunes a Server. The zero value of every field takes a sensible
// default; only DB is mandatory.
type Config struct {
	// DB is the database served. Required.
	DB *graphflow.DB
	// DefaultTimeout bounds query execution when the request does not set
	// timeout_ms. Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts. Default 5m.
	MaxTimeout time.Duration
	// MaxConcurrent is the admission limit: at most this many requests
	// plan or execute concurrently; the rest queue (up to MaxQueueDepth
	// for MaxQueueWait) and are then shed with 429. Default 64.
	MaxConcurrent int
	// MaxQueueDepth bounds how many requests may wait for an execution
	// slot before new arrivals are shed immediately. Default
	// 2×MaxConcurrent; negative disables queueing (saturation sheds at
	// once, the pre-queue behaviour).
	MaxQueueDepth int
	// MaxQueueWait bounds how long one queued request waits for a slot
	// before it is shed with 429 queue_timeout. Default 1s; negative
	// disables queueing.
	MaxQueueWait time.Duration
	// TenantHeader names the request header whose value identifies the
	// tenant for quota accounting. Default "X-Tenant"; requests without
	// the header share the unquota'd anonymous tenant.
	TenantHeader string
	// TenantQuotas caps concurrent execution slots per tenant value;
	// tenants at quota are shed with 429 tenant_quota even when slots
	// are free, so one tenant cannot monopolise the server.
	TenantQuotas map[string]int
	// DefaultTenantQuota caps tenants absent from TenantQuotas
	// (0 = unlimited).
	DefaultTenantQuota int
	// MaxRows clamps the number of rows a match request may return.
	// Default 10000.
	MaxRows int
	// MaxWorkers clamps request-supplied worker counts. Default 16.
	MaxWorkers int
	// BatchSize is the vectorized executor's batch row capacity applied
	// to requests that do not set batch_size. 0 picks a plan-adaptive
	// size; negative selects the tuple-at-a-time oracle engine (a
	// debugging configuration, not for production traffic).
	BatchSize int
	// NoFactorize disables factorized execution of star-shaped query
	// suffixes server-wide; individual requests can also opt out with
	// no_factorize.
	NoFactorize bool
	// MaxBodyBytes caps request bodies on the query-shaped endpoints
	// (/query, /prepare, /execute, /explain). Default 1 MiB. Oversized
	// bodies are rejected with 413.
	MaxBodyBytes int64
	// MaxIngestBodyBytes caps /ingest request bodies, which carry bulk
	// edge data and routinely dwarf query bodies. Default 64 MiB.
	MaxIngestBodyBytes int64
	// SlowQueryThreshold, when positive, logs every query whose total
	// request time meets it at Warn level with the pattern or template
	// name, plan digest, plan kind and per-stage time breakdown. 0
	// disables slow-query logging.
	SlowQueryThreshold time.Duration
	// Logger receives the server's structured log records. Nil takes
	// slog.Default() (configure process-wide with internal/logx).
	Logger *slog.Logger
	// Faults, when non-nil, threads a fault injector into every query
	// execution — the chaos-test hook. Leave nil in production.
	Faults *faultinject.Injector
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.MaxQueueDepth == 0 {
		c.MaxQueueDepth = 2 * c.MaxConcurrent
	}
	if c.MaxQueueDepth < 0 {
		c.MaxQueueDepth = 0
	}
	if c.MaxQueueWait == 0 {
		c.MaxQueueWait = time.Second
	}
	if c.MaxQueueWait < 0 {
		c.MaxQueueWait = 0
	}
	if c.TenantHeader == "" {
		c.TenantHeader = "X-Tenant"
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 10000
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxIngestBodyBytes <= 0 {
		c.MaxIngestBodyBytes = 64 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the HTTP serving layer over one DB. It is safe for
// concurrent use; construct with New and mount via Handler or ServeHTTP.
type Server struct {
	cfg Config
	mux *http.ServeMux
	// adm is the admission controller: a slot is held while a request
	// plans or executes a query — the CPU-bound phases — and released
	// before the response is encoded, so a slow-reading client cannot
	// hold admission capacity with no query running.
	adm *admission

	mu       sync.RWMutex
	prepared map[string]*graphflow.PreparedQuery

	served, rejected, deadlined, ingested atomic.Int64

	// budgetAborts counts queries stopped by their memory budget (422);
	// panicked counts queries failed by a recovered execution panic.
	budgetAborts, panicked atomic.Int64

	// Per-kernel intersection dispatch totals accumulated across served
	// count-mode queries (match mode streams rows and does not report
	// per-run statistics), surfaced by /stats as the serving-layer view
	// of the degree-adaptive intersection engine.
	kernelMerge, kernelGallop, kernelBitsetProbe, kernelBitsetAnd atomic.Int64

	// Per-stage batch dispatch totals of the vectorized engine, same
	// accumulation rules as the kernel counters.
	batchScan, batchExtend, batchProbe atomic.Int64

	// Factorized-execution totals across served count-mode queries:
	// prefixes that hit a factorized tail and the tuples whose
	// materialisation the cross-product arithmetic avoided.
	factorizedPrefixes, factorizedAvoided atomic.Int64

	// stageNanos accumulates per-stage executor wall time across served
	// count-mode queries, indexed by stageNames; /metrics exposes it as
	// graphflow_exec_stage_seconds_total{stage=...}.
	stageNanos [len(stageNames)]atomic.Int64

	// reg holds every server and DB metric; /metrics serialises it.
	reg *metrics.Registry
	// httpSeconds/httpResponses are fed exclusively by the instrument
	// middleware so all endpoints share one timing implementation.
	httpSeconds   *metrics.HistogramVec
	httpResponses *metrics.CounterVec
	// templateSeconds tracks /execute latency per prepared-statement name.
	templateSeconds *metrics.HistogramVec
	// shedTotal counts admission refusals by reason; admissionWait is
	// the queueing delay of requests that waited for a slot;
	// budgetAbortBytes records how much memory a budget-aborted query
	// had reserved when it hit its ceiling.
	shedTotal        *metrics.CounterVec
	admissionWait    *metrics.Histogram
	budgetAbortBytes *metrics.Histogram
}

// stageNames indexes Server.stageNanos and labels the per-stage time
// series; order matches the executor's Profile stage breakdown.
var stageNames = [...]string{"scan", "extend", "probe", "factorized", "build", "emit"}

// New builds a Server over cfg.DB.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		adm: newAdmission(cfg.MaxConcurrent, cfg.MaxQueueDepth, cfg.MaxQueueWait,
			cfg.TenantQuotas, cfg.DefaultTenantQuota),
		prepared: make(map[string]*graphflow.PreparedQuery),
	}
	s.registerMetrics()
	mux := http.NewServeMux()
	mux.Handle("POST /query", s.instrument("/query", s.handleQuery))
	mux.Handle("POST /prepare", s.instrument("/prepare", s.handlePrepare))
	mux.Handle("DELETE /prepare/{name}", s.instrument("/prepare/{name}", s.handleUnprepare))
	mux.Handle("POST /execute/{name}", s.instrument("/execute/{name}", s.handleExecute))
	mux.Handle("/explain", s.instrument("/explain", s.handleExplain))
	mux.Handle("POST /ingest", s.instrument("/ingest", s.handleIngest))
	mux.Handle("POST /compact", s.instrument("/compact", s.handleCompact))
	mux.Handle("GET /stats", s.instrument("/stats", s.handleStats))
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s, nil
}

// registerMetrics builds the server's registry: the DB's graphflow_*
// internals plus the serving layer's request, admission, per-template
// and per-stage series. The counter funcs read the same atomics /stats
// reports, so the two views can never disagree.
func (s *Server) registerMetrics() {
	s.reg = metrics.NewRegistry()
	s.cfg.DB.RegisterMetrics(s.reg)
	s.httpSeconds = s.reg.HistogramVec("graphflow_http_request_seconds",
		"End-to-end request latency by endpoint, decode through response write.",
		metrics.DefBuckets, "endpoint")
	s.httpResponses = s.reg.CounterVec("graphflow_http_responses_total",
		"Responses by endpoint and status code.", "endpoint", "code")
	s.templateSeconds = s.reg.HistogramVec("graphflow_exec_template_seconds",
		"Query latency of /execute by prepared-statement name.",
		metrics.DefBuckets, "template")
	s.reg.CounterFunc("graphflow_requests_served_total", "Queries that completed successfully.",
		func() float64 { return float64(s.served.Load()) })
	s.reg.CounterFunc("graphflow_requests_rejected_total", "Requests shed at the admission limit (429).",
		func() float64 { return float64(s.rejected.Load()) })
	s.reg.CounterFunc("graphflow_requests_deadlined_total", "Queries that exceeded their deadline (504).",
		func() float64 { return float64(s.deadlined.Load()) })
	s.reg.GaugeFunc("graphflow_requests_in_flight", "Admission slots currently held.",
		func() float64 { return float64(s.adm.inFlightCount()) })
	s.reg.GaugeFunc("graphflow_admission_queue_depth", "Requests queued for an admission slot.",
		func() float64 { return float64(s.adm.queueDepth()) })
	s.shedTotal = s.reg.CounterVec("graphflow_admission_shed_total",
		"Requests shed at admission by reason.", "reason")
	s.admissionWait = s.reg.Histogram("graphflow_admission_wait_seconds",
		"Time requests spent queued for an admission slot.", metrics.DefBuckets)
	s.reg.CounterFunc("graphflow_query_budget_aborts_total",
		"Queries aborted by a per-query or global memory budget (422).",
		func() float64 { return float64(s.budgetAborts.Load()) })
	s.budgetAbortBytes = s.reg.Histogram("graphflow_query_budget_abort_bytes",
		"Bytes a budget-aborted query had reserved when it hit its ceiling.",
		[]float64{1 << 16, 1 << 20, 1 << 24, 1 << 28, 1 << 32})
	s.reg.CounterFunc("graphflow_query_panics_total",
		"Queries failed by a panic recovered inside the execution engine.",
		func() float64 { return float64(s.panicked.Load()) })
	s.reg.CounterFunc("graphflow_ingest_batches_total", "Mutation batches applied via /ingest.",
		func() float64 { return float64(s.ingested.Load()) })
	s.reg.GaugeFunc("graphflow_prepared_statements", "Registered prepared statements.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.prepared))
		})
	for i, name := range stageNames {
		n := &s.stageNanos[i]
		s.reg.CounterFunc("graphflow_exec_stage_seconds_total",
			"Executor wall time attributed to each pipeline stage across served count queries.",
			func() float64 { return float64(n.Load()) / 1e9 }, "stage", name)
	}
	for _, k := range []struct {
		name string
		c    *atomic.Int64
	}{
		{"merge", &s.kernelMerge}, {"gallop", &s.kernelGallop},
		{"bitset_probe", &s.kernelBitsetProbe}, {"bitset_and", &s.kernelBitsetAnd},
	} {
		c := k.c
		s.reg.CounterFunc("graphflow_exec_kernel_dispatch_total",
			"Intersection-kernel dispatches across served count queries.",
			func() float64 { return float64(c.Load()) }, "kernel", k.name)
	}
	s.reg.CounterFunc("graphflow_exec_factorized_prefixes_total",
		"Prefixes that reached a factorized tail across served count queries.",
		func() float64 { return float64(s.factorizedPrefixes.Load()) })
	s.reg.CounterFunc("graphflow_exec_factorized_avoided_tuples_total",
		"Output tuples counted without materialisation by factorized execution.",
		func() float64 { return float64(s.factorizedAvoided.Load()) })
}

// Metrics returns the server's registry so embedding processes (tests,
// the gfserver binary) can add their own series to the same /metrics
// exposition.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// startTimeKey carries the middleware's request-arrival instant through
// the request context, so handler-level ElapsedMS fields and the
// latency histograms measure from the same clock edge.
type startTimeKey struct{}

// statusRecorder captures the status code a handler wrote so the
// middleware can label the response counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (rec *statusRecorder) WriteHeader(code int) {
	rec.status = code
	rec.ResponseWriter.WriteHeader(code)
}

// instrument is the shared timing middleware: one histogram observation
// and one response-count increment per request, plus the arrival
// timestamp every handler derives ElapsedMS from.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r = r.WithContext(context.WithValue(r.Context(), startTimeKey{}, start))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.httpSeconds.With(endpoint).ObserveDuration(time.Since(start))
		s.httpResponses.With(endpoint, strconv.Itoa(rec.status)).Inc()
	})
}

// requestStart returns the middleware's arrival instant (now, when the
// handler runs outside the instrumented mux, e.g. in direct tests).
func requestStart(r *http.Request) time.Time {
	if t, ok := r.Context().Value(startTimeKey{}).(time.Time); ok {
		return t
	}
	return time.Now()
}

// elapsedMS reports milliseconds since the request arrived, the value
// every response's ElapsedMS field carries.
func elapsedMS(r *http.Request) float64 {
	return float64(time.Since(requestStart(r)).Microseconds()) / 1000
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// queryRequest is the body of /query and /execute/{name}. All fields are
// optional except Pattern (ignored by /execute, which uses the prepared
// statement's pattern).
type queryRequest struct {
	Pattern string `json:"pattern"`
	// Mode is "count" (default) or "match".
	Mode      string `json:"mode"`
	Workers   int    `json:"workers"`
	Limit     int64  `json:"limit"`
	Distinct  bool   `json:"distinct"`
	Adaptive  bool   `json:"adaptive"`
	WCO       bool   `json:"wco"`
	TimeoutMS int64  `json:"timeout_ms"`
	// BatchSize overrides the server's configured executor batch size for
	// this request (0 = server default, negative = tuple-at-a-time oracle).
	BatchSize int `json:"batch_size"`
	// NoFactorize disables factorized execution of star-shaped suffixes
	// for this request (it is on by default for count mode).
	NoFactorize bool `json:"no_factorize"`
	// MemBudgetBytes tightens the per-query memory budget for this
	// request (0 = server default). It can only lower the configured
	// default, never widen it.
	MemBudgetBytes int64 `json:"mem_budget_bytes"`
}

// queryResponse is the body of a successful /query or /execute response.
// Count and Rows are pointers so their zero values still serialise in
// the mode that produced them ("count":0, "rows":[]) while the other
// mode omits the field entirely.
type queryResponse struct {
	Count     *int64               `json:"count,omitempty"`
	Rows      *[]map[string]uint32 `json:"rows,omitempty"`
	Truncated bool                 `json:"truncated,omitempty"`
	PlanKind  string               `json:"plan_kind,omitempty"`
	// Kernels reports the intersection-kernel dispatch counts of this
	// run (count mode only): merge, gallop, bitset_probe, bitset_and.
	Kernels *kernelCounts `json:"kernels,omitempty"`
	// Batches reports the columnar batches each stage kind of the
	// vectorized engine dispatched for this run (count mode only).
	Batches *batchCounts `json:"batches,omitempty"`
	// Factorized reports the factorized-execution counters of this run
	// (count mode only): how many prefixes reached a factorized tail and
	// how many output tuples were counted without materialisation.
	Factorized *factorizedCounts `json:"factorized,omitempty"`
	// Stages attributes this run's executor wall time to pipeline stages
	// (count mode only), in milliseconds.
	Stages    *stageMillis `json:"stage_ms,omitempty"`
	ElapsedMS float64      `json:"elapsed_ms"`
}

// stageMillis is the JSON shape of the per-stage wall-time breakdown.
type stageMillis struct {
	Scan       float64 `json:"scan"`
	Extend     float64 `json:"extend"`
	Probe      float64 `json:"probe"`
	Factorized float64 `json:"factorized"`
	Build      float64 `json:"build"`
	Emit       float64 `json:"emit"`
}

// stageMillisFrom converts a Stats stage breakdown to milliseconds,
// returning nil when no stage time was attributed (oracle engine runs).
func stageMillisFrom(st *graphflow.Stats) *stageMillis {
	total := st.StageScanNanos + st.StageExtendNanos + st.StageProbeNanos +
		st.StageFactorizedNanos + st.StageBuildNanos + st.StageEmitNanos
	if total == 0 {
		return nil
	}
	ms := func(n int64) float64 { return float64(n) / 1e6 }
	return &stageMillis{
		Scan:       ms(st.StageScanNanos),
		Extend:     ms(st.StageExtendNanos),
		Probe:      ms(st.StageProbeNanos),
		Factorized: ms(st.StageFactorizedNanos),
		Build:      ms(st.StageBuildNanos),
		Emit:       ms(st.StageEmitNanos),
	}
}

// factorizedCounts is the JSON shape of factorized-execution counters.
type factorizedCounts struct {
	Prefixes      int64 `json:"prefixes"`
	AvoidedTuples int64 `json:"avoided_tuples"`
}

// batchCounts is the JSON shape of per-stage batch dispatch counters.
type batchCounts struct {
	Scan   int64 `json:"scan"`
	Extend int64 `json:"extend"`
	Probe  int64 `json:"probe"`
}

// kernelCounts is the JSON shape of per-kernel intersection dispatch
// counters.
type kernelCounts struct {
	Merge       int64 `json:"merge"`
	Gallop      int64 `json:"gallop"`
	BitsetProbe int64 `json:"bitset_probe"`
	BitsetAnd   int64 `json:"bitset_and"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable error class, present on
	// resource-governance refusals: "budget_exceeded",
	// "global_budget_exceeded", or an admission shed reason.
	Code string `json:"code,omitempty"`
	// LimitBytes/ReservedBytes detail a budget abort: the ceiling that
	// was hit and the bytes reserved when the query crossed it.
	LimitBytes    int64 `json:"limit_bytes,omitempty"`
	ReservedBytes int64 `json:"reserved_bytes,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody parses the request body into v, reading at most limit
// bytes; a missing body is treated as an empty object so every knob
// defaults. Oversized bodies get 413 with the effective limit named so
// the client knows what to shrink (or which server knob to raise).
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit for this endpoint", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// admit acquires an execution slot through the admission controller,
// queueing up to Config.MaxQueueWait when the server is saturated. On
// success it returns the release closure the handler must call once
// the CPU-bound phase ends. On refusal the shed response — 429 (or 503
// while draining), always with Retry-After — is already written and
// admit returns nil, false.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	tenant := r.Header.Get(s.cfg.TenantHeader)
	res := s.adm.acquire(r.Context(), priorityFrom(r.Header.Get("X-Priority")), tenant)
	if res.waited > 0 {
		s.admissionWait.ObserveDuration(res.waited)
	}
	if res.ok {
		return func() { s.adm.release(tenant) }, true
	}
	if res.clientGone {
		writeError(w, StatusClientClosedRequest, "client closed request while queued for admission")
		return nil, false
	}
	s.rejected.Add(1)
	s.shedTotal.With(res.shed).Inc()
	w.Header().Set("Retry-After", s.retryAfter(res.shed))
	status := http.StatusTooManyRequests
	if res.shed == shedDraining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorResponse{
		Error: fmt.Sprintf("admission refused: %s (limit %d in flight, queue %d deep)",
			res.shed, s.cfg.MaxConcurrent, s.cfg.MaxQueueDepth),
		Code: res.shed,
	})
	return nil, false
}

// retryAfter suggests a client backoff per shed reason, in whole
// seconds (the only unit the header carries portably).
func (s *Server) retryAfter(reason string) string {
	switch reason {
	case shedDraining:
		return "5"
	case shedQueueFull, shedQueueTimeout:
		return strconv.Itoa(int(s.cfg.MaxQueueWait/time.Second) + 1)
	}
	return "1" // tenant_quota: retry as soon as one of your queries ends
}

// Drain refuses new work (queued waiters are shed, new arrivals get
// 503 + Retry-After) and waits until every in-flight request has
// released its slot or ctx expires. Call before closing the DB so a
// late /ingest cannot race a shutdown.
func (s *Server) Drain(ctx context.Context) error {
	select {
	case <-s.adm.beginDrain():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// maxRequestBatchSize bounds request-supplied batch_size values; larger
// batches only waste memory without improving throughput.
const maxRequestBatchSize = 1 << 20

// queryOptions maps a request onto QueryOptions, clamping workers and
// limits to the server's configured ceilings and sanitizing nonsense
// values. Negative workers/limit clamp to 0 (auto / unlimited), but a
// negative or oversized batch_size is rejected with 400: negative values
// would silently route the request onto the tuple-at-a-time oracle
// engine, a debugging path orders of magnitude slower than the
// vectorized default. That path stays reachable through the server-side
// Config.BatchSize knob only.
func (s *Server) queryOptions(req *queryRequest) (*graphflow.QueryOptions, error) {
	workers := req.Workers
	if workers < 0 {
		workers = 0
	}
	if workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}
	limit := req.Limit
	if limit < 0 {
		limit = 0
	}
	if req.BatchSize < 0 {
		return nil, fmt.Errorf("%w: batch_size %d is negative (0 = server default)", errBadRequest, req.BatchSize)
	}
	if req.BatchSize > maxRequestBatchSize {
		return nil, fmt.Errorf("%w: batch_size %d exceeds the maximum %d", errBadRequest, req.BatchSize, maxRequestBatchSize)
	}
	batch := s.cfg.BatchSize
	if req.BatchSize != 0 {
		batch = req.BatchSize
	}
	if req.MemBudgetBytes < 0 {
		return nil, fmt.Errorf("%w: mem_budget_bytes %d is negative (0 = server default)", errBadRequest, req.MemBudgetBytes)
	}
	return &graphflow.QueryOptions{
		Workers:              workers,
		Limit:                limit,
		Distinct:             req.Distinct,
		Adaptive:             req.Adaptive,
		WCOOnly:              req.WCO,
		BatchSize:            batch,
		DisableFactorization: s.cfg.NoFactorize || req.NoFactorize,
		MemBudgetBytes:       req.MemBudgetBytes,
		Faults:               s.cfg.Faults,
	}, nil
}

// timeout resolves the request's execution budget. The millisecond
// value is compared before multiplying so an absurd timeout_ms cannot
// overflow time.Duration into a negative (instantly expired) deadline.
func (s *Server) timeout(req *queryRequest) time.Duration {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if req.TimeoutMS >= s.cfg.MaxTimeout.Milliseconds() {
			return s.cfg.MaxTimeout
		}
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// writeRunError maps an execution error onto resource-governance and
// timeout/cancellation semantics: 422 when the query's memory budget
// aborted it (with the ceiling and reservation in the body), 500 with
// a stack-carrying log record when a panic was recovered inside the
// engine, 504 when the server-side deadline expired, 499 when the
// client went away, 500 otherwise.
func (s *Server) writeRunError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *exec.PanicError
	switch {
	case errors.Is(err, resource.ErrBudgetExceeded):
		s.budgetAborts.Add(1)
		resp := errorResponse{Error: fmt.Sprintf("query aborted: %v", err), Code: "budget_exceeded"}
		var be *resource.BudgetError
		if errors.As(err, &be) {
			s.budgetAbortBytes.Observe(float64(be.Reserved))
			resp.LimitBytes = be.Limit
			resp.ReservedBytes = be.Reserved
			if be.Global {
				resp.Code = "global_budget_exceeded"
			}
		}
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	case errors.As(err, &pe):
		// The engine recovered a panic, poisoned the worker and failed
		// only this query; the stack goes to the log, not the client.
		s.panicked.Add(1)
		s.cfg.Logger.Error("query panicked",
			slog.Any("panic", pe.Value),
			slog.String("stack", string(pe.Stack)))
		writeError(w, http.StatusInternalServerError, "query failed: internal execution panic (see server log)")
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlined.Add(1)
		writeError(w, http.StatusGatewayTimeout, "query exceeded its deadline: %v", err)
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// The request context is the only canceller wired in; its
		// cancellation means the client closed the connection.
		writeError(w, StatusClientClosedRequest, "client closed request: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "query failed: %v", err)
	}
}

// errUnknownMode marks a request whose mode field is neither "count"
// nor "match"; respond maps it to 400.
var errUnknownMode = errors.New("unknown mode")

// errBadRequest marks a request with invalid option values; respond
// maps it to 400.
var errBadRequest = errors.New("bad request")

// execute runs pq under the request's deadline and options. name is the
// prepared-statement name ("" for ad-hoc /query), labelling the
// per-template latency histogram and slow-query log lines. The caller
// must hold an admission slot: planning and execution are the CPU-bound
// phases the semaphore bounds.
func (s *Server) execute(r *http.Request, name string, pq *graphflow.PreparedQuery, req *queryRequest) (queryResponse, error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req))
	defer cancel()

	start := requestStart(r)
	resp := queryResponse{PlanKind: pq.PlanKind()}
	switch req.Mode {
	case "", "count":
		opts, err := s.queryOptions(req)
		if err != nil {
			return resp, err
		}
		opts.Context = ctx
		n, st, err := pq.CountStats(opts)
		if err != nil {
			return resp, err
		}
		resp.Count = &n
		resp.Kernels = &kernelCounts{
			Merge:       st.KernelMerge,
			Gallop:      st.KernelGallop,
			BitsetProbe: st.KernelBitsetProbe,
			BitsetAnd:   st.KernelBitsetAnd,
		}
		resp.Batches = &batchCounts{
			Scan:   st.ScanBatches,
			Extend: st.ExtendBatches,
			Probe:  st.ProbeBatches,
		}
		resp.Factorized = &factorizedCounts{
			Prefixes:      st.FactorizedPrefixes,
			AvoidedTuples: st.FactorizedAvoided,
		}
		resp.Stages = stageMillisFrom(&st)
		s.kernelMerge.Add(st.KernelMerge)
		s.kernelGallop.Add(st.KernelGallop)
		s.kernelBitsetProbe.Add(st.KernelBitsetProbe)
		s.kernelBitsetAnd.Add(st.KernelBitsetAnd)
		s.batchScan.Add(st.ScanBatches)
		s.batchExtend.Add(st.ExtendBatches)
		s.batchProbe.Add(st.ProbeBatches)
		s.factorizedPrefixes.Add(st.FactorizedPrefixes)
		s.factorizedAvoided.Add(st.FactorizedAvoided)
		s.stageNanos[0].Add(st.StageScanNanos)
		s.stageNanos[1].Add(st.StageExtendNanos)
		s.stageNanos[2].Add(st.StageProbeNanos)
		s.stageNanos[3].Add(st.StageFactorizedNanos)
		s.stageNanos[4].Add(st.StageBuildNanos)
		s.stageNanos[5].Add(st.StageEmitNanos)
	case "match":
		opts, err := s.queryOptions(req)
		if err != nil {
			return resp, err
		}
		rowCap := int64(s.cfg.MaxRows)
		capped := opts.Limit <= 0 || opts.Limit > rowCap
		if capped {
			opts.Limit = rowCap
		}
		rows := make([]map[string]uint32, 0, 16)
		err = pq.MatchCtx(ctx, func(m map[string]uint32) bool {
			rows = append(rows, m)
			return true
		}, opts)
		if err != nil {
			return resp, err
		}
		resp.Rows = &rows
		// A full rowCap of rows under the server's ceiling (no caller limit,
		// or one the ceiling clamped) means enumeration may have been cut
		// short rather than exhausted.
		resp.Truncated = capped && int64(len(rows)) == rowCap
	default:
		return resp, fmt.Errorf("%w %q (want \"count\" or \"match\")", errUnknownMode, req.Mode)
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	if name != "" {
		s.templateSeconds.With(name).ObserveDuration(elapsed)
	}
	s.maybeLogSlow(name, pq, req, elapsed, resp.Stages)
	return resp, nil
}

// maybeLogSlow emits the slow-query Warn record when the run met the
// configured threshold: enough to find the query (pattern or template),
// group it across processes (plan digest), and see where the time went
// (per-stage breakdown, when the vectorized engine attributed one).
func (s *Server) maybeLogSlow(name string, pq *graphflow.PreparedQuery, req *queryRequest, elapsed time.Duration, stages *stageMillis) {
	if s.cfg.SlowQueryThreshold <= 0 || elapsed < s.cfg.SlowQueryThreshold {
		return
	}
	attrs := []any{
		slog.Float64("elapsed_ms", float64(elapsed.Microseconds())/1000),
		slog.String("plan_digest", pq.PlanDigest()),
		slog.String("plan_kind", pq.PlanKind()),
	}
	if name != "" {
		attrs = append(attrs, slog.String("template", name))
	} else {
		attrs = append(attrs, slog.String("pattern", req.Pattern))
	}
	if mode := req.Mode; mode == "" {
		attrs = append(attrs, slog.String("mode", "count"))
	} else {
		attrs = append(attrs, slog.String("mode", mode))
	}
	if stages != nil {
		attrs = append(attrs,
			slog.Float64("scan_ms", stages.Scan),
			slog.Float64("extend_ms", stages.Extend),
			slog.Float64("probe_ms", stages.Probe),
			slog.Float64("factorized_ms", stages.Factorized),
			slog.Float64("build_ms", stages.Build),
			slog.Float64("emit_ms", stages.Emit),
		)
	}
	s.cfg.Logger.Warn("slow query", attrs...)
}

// respond writes the outcome of execute.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, resp queryResponse, err error) {
	switch {
	case err == nil:
		s.served.Add(1)
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, errUnknownMode), errors.Is(err, errBadRequest):
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		s.writeRunError(w, r, err)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req, s.cfg.MaxBodyBytes) {
		return
	}
	if req.Pattern == "" {
		writeError(w, http.StatusBadRequest, "missing pattern")
		return
	}
	// Planning runs inside the admission slot too: a flood of novel
	// patterns is optimizer work the admission limit must bound.
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	pq, err := s.prepare(req.Pattern, req.WCO)
	if err != nil {
		release()
		writeError(w, http.StatusBadRequest, "bad pattern: %v", err)
		return
	}
	resp, runErr := s.execute(r, "", pq, &req)
	release()
	s.respond(w, r, resp, runErr)
}

func (s *Server) prepare(pattern string, wco bool) (*graphflow.PreparedQuery, error) {
	if wco {
		return s.cfg.DB.PrepareWCO(pattern)
	}
	return s.cfg.DB.Prepare(pattern)
}

// prepareRequest is the body of /prepare.
type prepareRequest struct {
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
	WCO     bool   `json:"wco"`
}

type prepareResponse struct {
	Name     string `json:"name"`
	PlanKind string `json:"plan_kind"`
	Plan     string `json:"plan"`
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req prepareRequest
	if !decodeBody(w, r, &req, s.cfg.MaxBodyBytes) {
		return
	}
	if req.Name == "" || req.Pattern == "" {
		writeError(w, http.StatusBadRequest, "both name and pattern are required")
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	pq, err := s.prepare(req.Pattern, req.WCO)
	release()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad pattern: %v", err)
		return
	}
	s.mu.Lock()
	if _, exists := s.prepared[req.Name]; exists {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "statement %q already prepared", req.Name)
		return
	}
	s.prepared[req.Name] = pq
	s.mu.Unlock()
	st := pq.Stats()
	writeJSON(w, http.StatusCreated, prepareResponse{Name: req.Name, PlanKind: st.PlanKind, Plan: st.Plan})
}

func (s *Server) handleUnprepare(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.prepared[name]
	delete(s.prepared, name)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no prepared statement %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	pq, ok := s.prepared[name]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no prepared statement %q", name)
		return
	}
	var req queryRequest
	if !decodeBody(w, r, &req, s.cfg.MaxBodyBytes) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	resp, runErr := s.execute(r, name, pq, &req)
	release()
	s.respond(w, r, resp, runErr)
}

// explainRequest is the POST body of /explain. Analyze switches from
// plan inspection to EXPLAIN ANALYZE: the plan is executed
// single-threaded under the request deadline and each operator is
// annotated with its actual tuples, i-cost, cache hits and wall time.
type explainRequest struct {
	Pattern   string `json:"pattern"`
	Analyze   bool   `json:"analyze"`
	TimeoutMS int64  `json:"timeout_ms"`
}

type explainResponse struct {
	PlanKind   string  `json:"plan_kind"`
	Plan       string  `json:"plan"`
	PlanDigest string  `json:"plan_digest"`
	Estimated  float64 `json:"estimated_cardinality"`
	// Analyzed is true when the plan was actually executed; the fields
	// below it are only present in that case.
	Analyzed bool   `json:"analyzed,omitempty"`
	Matches  *int64 `json:"matches,omitempty"`
	// Stages attributes the analysis run's executor wall time to
	// pipeline stages, in milliseconds.
	Stages    *stageMillis `json:"stage_ms,omitempty"`
	ElapsedMS float64      `json:"elapsed_ms"`
}

// handleExplain accepts the pattern either as a ?pattern= query
// parameter (GET) or a JSON body (POST); ?analyze=true (or "analyze":
// true in the body) upgrades the plan dump to EXPLAIN ANALYZE.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pattern := q.Get("pattern")
	analyze := q.Get("analyze") == "true" || q.Get("analyze") == "1"
	var req explainRequest
	if r.Method == http.MethodPost {
		if !decodeBody(w, r, &req, s.cfg.MaxBodyBytes) {
			return
		}
		if pattern == "" {
			pattern = req.Pattern
		}
		analyze = analyze || req.Analyze
	}
	if pattern == "" {
		writeError(w, http.StatusBadRequest, "missing pattern")
		return
	}
	// Admission covers planning, and for analyze the full execution.
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	pq, err := s.cfg.DB.Prepare(pattern)
	if err != nil {
		release()
		writeError(w, http.StatusBadRequest, "bad pattern: %v", err)
		return
	}
	pst := pq.Stats()
	est, _ := s.cfg.DB.EstimateCardinality(pattern)
	resp := explainResponse{
		PlanKind:   pst.PlanKind,
		Plan:       pst.Plan,
		PlanDigest: pq.PlanDigest(),
		Estimated:  est,
	}
	if analyze {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout(&queryRequest{TimeoutMS: req.TimeoutMS}))
		ast, runErr := s.cfg.DB.AnalyzeCtx(ctx, pattern)
		cancel()
		release()
		if runErr != nil {
			s.writeRunError(w, r, runErr)
			return
		}
		resp.Analyzed = true
		resp.Plan = ast.Plan
		resp.Matches = &ast.Matches
		resp.Stages = stageMillisFrom(&ast)
		resp.ElapsedMS = elapsedMS(r)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	release()
	resp.ElapsedMS = elapsedMS(r)
	writeJSON(w, http.StatusOK, resp)
}

// ingestEdge is the JSON form of one directed labelled edge.
type ingestEdge struct {
	Src   uint32 `json:"src"`
	Dst   uint32 `json:"dst"`
	Label uint16 `json:"label"`
}

// ingestRequest is the body of /ingest: one mutation batch, applied
// atomically as a single new epoch. Edges may reference vertices added
// by the same batch (IDs are assigned sequentially from the current
// vertex count).
type ingestRequest struct {
	AddVertices []uint16     `json:"add_vertices"`
	AddEdges    []ingestEdge `json:"add_edges"`
	DeleteEdges []ingestEdge `json:"delete_edges"`
}

type ingestResponse struct {
	Epoch uint64 `json:"epoch"`
	// FirstNewVertex is a pointer so the field is present exactly when
	// the batch added vertices: vertex IDs start at 0, and a plain
	// omitempty uint32 would swallow the very first vertex of an empty
	// store (ID 0), leaving the client unable to tell what it created.
	FirstNewVertex *uint32 `json:"first_new_vertex,omitempty"`
	AddedVertices  int     `json:"added_vertices"`
	AddedEdges     int     `json:"added_edges"`
	DeletedEdges   int     `json:"deleted_edges"`
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	ElapsedMS      float64 `json:"elapsed_ms"`
}

// handleIngest applies one mutation batch. Ingest work runs inside the
// admission semaphore like queries: overlay rebuilding for hot vertices
// is CPU-bound work the limit must cover.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !decodeBody(w, r, &req, s.cfg.MaxIngestBodyBytes) {
		return
	}
	if len(req.AddVertices) == 0 && len(req.AddEdges) == 0 && len(req.DeleteEdges) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: provide add_vertices, add_edges or delete_edges")
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	b := graphflow.Batch{AddVertices: req.AddVertices}
	for _, e := range req.AddEdges {
		b.AddEdges = append(b.AddEdges, graphflow.EdgeOp{Src: e.Src, Dst: e.Dst, Label: e.Label})
	}
	for _, e := range req.DeleteEdges {
		b.DeleteEdges = append(b.DeleteEdges, graphflow.EdgeOp{Src: e.Src, Dst: e.Dst, Label: e.Label})
	}
	res, err := s.cfg.DB.Apply(b)
	release()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad batch: %v", err)
		return
	}
	s.ingested.Add(1)
	var firstNew *uint32
	if res.AddedVertices > 0 {
		v := res.FirstNewVertex
		firstNew = &v
	}
	// Counts come from the ApplyResult, read atomically with the epoch —
	// re-reading the DB here could observe a concurrent later batch.
	writeJSON(w, http.StatusOK, ingestResponse{
		Epoch:          res.Epoch,
		FirstNewVertex: firstNew,
		AddedVertices:  res.AddedVertices,
		AddedEdges:     res.AddedEdges,
		DeletedEdges:   res.DeletedEdges,
		Vertices:       res.Vertices,
		Edges:          res.Edges,
		ElapsedMS:      elapsedMS(r),
	})
}

type compactResponse struct {
	Epoch     uint64 `json:"epoch"`
	BaseEdges int    `json:"base_edges"`
	DeltaOps  int    `json:"delta_ops"`
}

// handleCompact forces a synchronous compaction pass.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	err := s.cfg.DB.Compact()
	release()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "compaction failed: %v", err)
		return
	}
	ls := s.cfg.DB.LiveStats()
	writeJSON(w, http.StatusOK, compactResponse{Epoch: ls.Epoch, BaseEdges: ls.BaseEdges, DeltaOps: ls.DeltaOps})
}

type statsResponse struct {
	Graph struct {
		Vertices    int    `json:"vertices"`
		Edges       int    `json:"edges"`
		Epoch       uint64 `json:"epoch"`
		BaseEdges   int    `json:"base_edges"`
		DeltaOps    int    `json:"delta_ops"`
		Compactions int64  `json:"compactions"`
		Ingested    int64  `json:"ingested_batches"`
		// Hub bitset index of the current base CSR: the partition-size
		// floor, how many partitions are indexed, and the bytes they hold.
		HubThreshold     int   `json:"hub_threshold"`
		HubPartitions    int   `json:"hub_partitions"`
		BitsetIndexBytes int64 `json:"bitset_index_bytes"`
	} `json:"graph"`
	// WAL reports the durability layer's state; all-zero (enabled:false)
	// when the server runs over an ephemeral store.
	WAL struct {
		Enabled         bool   `json:"enabled"`
		Bytes           int64  `json:"bytes"`
		Batches         int64  `json:"batches"`
		ReplayedBatches int    `json:"replayed_batches"`
		TornTailDropped bool   `json:"torn_tail_dropped"`
		CheckpointEpoch uint64 `json:"checkpoint_epoch"`
		Checkpoints     int64  `json:"checkpoints"`
	} `json:"wal"`
	// Kernels totals intersection-kernel dispatches across served
	// count-mode queries.
	Kernels kernelCounts `json:"kernels"`
	// Batches totals the vectorized engine's per-stage batch dispatches
	// across served count-mode queries.
	Batches batchCounts `json:"batches"`
	// Factorized totals factorized-execution work across served
	// count-mode queries.
	Factorized factorizedCounts `json:"factorized"`
	PlanCache  struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Entries   int   `json:"entries"`
	} `json:"plan_cache"`
	Prepared int `json:"prepared_statements"`
	Requests struct {
		Served    int64 `json:"served"`
		Rejected  int64 `json:"rejected"`
		Deadlined int64 `json:"deadlined"`
		InFlight  int   `json:"in_flight"`
		// Queued is the current admission-queue depth; BudgetAborts and
		// Panics count queries stopped by their memory budget (422) and
		// by recovered engine panics (500).
		Queued       int   `json:"queued"`
		BudgetAborts int64 `json:"budget_aborts"`
		Panics       int64 `json:"panics"`
	} `json:"requests"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	ls := s.cfg.DB.LiveStats()
	resp.Graph.Vertices = ls.Vertices
	resp.Graph.Edges = ls.Edges
	resp.Graph.Epoch = ls.Epoch
	resp.Graph.BaseEdges = ls.BaseEdges
	resp.Graph.DeltaOps = ls.DeltaOps
	resp.Graph.Compactions = ls.Compactions
	resp.Graph.Ingested = s.ingested.Load()
	resp.Graph.HubThreshold = ls.HubThreshold
	resp.Graph.HubPartitions = ls.HubPartitions
	resp.Graph.BitsetIndexBytes = ls.BitsetIndexBytes
	resp.WAL.Enabled = ls.WALEnabled
	resp.WAL.Bytes = ls.WALBytes
	resp.WAL.Batches = ls.WALBatches
	resp.WAL.ReplayedBatches = ls.ReplayedBatches
	resp.WAL.TornTailDropped = ls.WALTornTail
	resp.WAL.CheckpointEpoch = ls.CheckpointEpoch
	resp.WAL.Checkpoints = ls.Checkpoints
	resp.Kernels = kernelCounts{
		Merge:       s.kernelMerge.Load(),
		Gallop:      s.kernelGallop.Load(),
		BitsetProbe: s.kernelBitsetProbe.Load(),
		BitsetAnd:   s.kernelBitsetAnd.Load(),
	}
	resp.Batches = batchCounts{
		Scan:   s.batchScan.Load(),
		Extend: s.batchExtend.Load(),
		Probe:  s.batchProbe.Load(),
	}
	resp.Factorized = factorizedCounts{
		Prefixes:      s.factorizedPrefixes.Load(),
		AvoidedTuples: s.factorizedAvoided.Load(),
	}
	pc := s.cfg.DB.PlanCacheStats()
	resp.PlanCache.Hits = pc.Hits
	resp.PlanCache.Misses = pc.Misses
	resp.PlanCache.Evictions = pc.Evictions
	resp.PlanCache.Entries = pc.Entries
	s.mu.RLock()
	resp.Prepared = len(s.prepared)
	s.mu.RUnlock()
	resp.Requests.Served = s.served.Load()
	resp.Requests.Rejected = s.rejected.Load()
	resp.Requests.Deadlined = s.deadlined.Load()
	resp.Requests.InFlight = s.adm.inFlightCount()
	resp.Requests.Queued = s.adm.queueDepth()
	resp.Requests.BudgetAborts = s.budgetAborts.Load()
	resp.Requests.Panics = s.panicked.Load()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
